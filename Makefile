# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race test-scale bench bench-sim bench-graph bench-local bench-harness bench-service bench-service-shards race-service race-substrate race-durable chaos fuzz tables cover conform conformance clean

all: build vet test

build:
	$(GO) build ./...

vet: build
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Web-scale regression tier: million-node tests plus the 10^7-node
# smoke (docs/TESTING.md §Scale tests; CI runs this on a schedule).
test-scale:
	$(GO) test -run 'TestScale' -v ./internal/sim
	$(GO) test -run TestStreamedGeneratorInvariantsLarge -v ./internal/graph
	LISTCOLOR_SCALE=xl $(GO) test -run TestScaleTenMillionSmoke -timeout 30m -v ./internal/sim

# One iteration of every benchmark; full runs use plain `go test -bench`.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 1x .

# Engine round-throughput report (docs/TESTING.md §BENCH_sim.json).
bench-sim:
	$(GO) run ./cmd/benchtab -sim > BENCH_sim.json

# Parallel graph substrate: segmented multi-core CSR builds and the
# range-partitioned defect audit vs their sequential references. The
# rows land in the `graph_build` section of BENCH_sim.json.
bench-graph: bench-sim

# Local-computation selection report (docs/TESTING.md §BENCH_local.json).
bench-local:
	$(GO) run ./cmd/benchtab -local > BENCH_local.json

# Sweep-scheduler throughput report (docs/TESTING.md §BENCH_harness.json).
bench-harness:
	$(GO) run ./cmd/benchtab -harness > BENCH_harness.json

# Incremental-service churn measurements live in the `service` section
# of the same document (docs/TESTING.md §Service tests).
bench-service: bench-harness

# Sharded write-path sweep: same churn script at every shard count,
# byte-identity vs sequential plus the work-distribution account. The
# numbers land in the `shard_sweep` section of BENCH_harness.json.
bench-service-shards: bench-harness

# Concurrent read/write soak of the incremental service under the race
# detector, plus the shard-sweep equivalence check (the CI race job
# runs both alongside the full -race sweep).
race-service:
	$(GO) test -race -count 2 -run 'Concurrent' ./internal/service
	$(GO) test -race -run 'TestShardSweep' ./internal/service

# Durability under the race detector: the kill-point recovery
# differential plus the backpressure soak, both doubled (the CI race
# job runs the same pair).
race-durable:
	$(GO) test -race -count 2 -run 'TestRecovery|TestConcurrentBackpressureSoak' ./internal/service

# Full crash/corruption kill-point matrix at the fixed CI seed: 200
# seed-derived kills (batch boundaries, mid-record tears, flipped
# bytes, truncated tails), each recovered and differenced against the
# uninterrupted reference run. Exits nonzero on any divergence.
chaos:
	$(GO) run ./cmd/colord -chaos 200 -seed 1

# Parallel substrate equivalence under the race detector: segmented
# builds byte-identical to sequential, audit reports identical at
# every worker count, and the snapshot-audit soak under churn.
race-substrate:
	$(GO) test -race -count 2 -run 'TestBuildCSRParallel|TestSegmented|TestRingSegmented' ./internal/graph
	$(GO) test -race -count 2 -run 'TestAuditParallel' ./internal/coloring ./internal/service

fuzz:
	$(GO) test -fuzz FuzzReadEdgeList -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzOrientRoundTrip -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzReadJSON -fuzztime 15s ./internal/coloring
	$(GO) test -fuzz FuzzSolve -fuzztime 30s ./internal/twosweep
	$(GO) test -fuzz FuzzSelectorEquivalence -fuzztime 15s ./internal/twosweep
	$(GO) test -fuzz FuzzRouteEquivalence -fuzztime 15s ./internal/sim
	$(GO) test -fuzz FuzzCorruptedPayloadDecode -fuzztime 15s ./internal/sim
	$(GO) test -fuzz FuzzStreamingCSRBuild -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzParallelCSRBuild -fuzztime 15s ./internal/graph
	$(GO) test -fuzz FuzzWALRecordDecode -fuzztime 15s ./internal/service

# Conformance matrix: CLI summary / heavy go-test tier (docs/TESTING.md).
conform:
	$(GO) run ./cmd/conform -seed 1

conformance:
	$(GO) test -tags conformance -v ./internal/conformance/...

# Regenerate the EXPERIMENTS.md tables (markdown on stdout).
tables:
	$(GO) run ./cmd/benchtab -markdown

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out
