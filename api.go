package listcolor

import (
	"io"
	"math/rand"
	"net/http"

	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/csr"
	"listcolor/internal/defective"
	"listcolor/internal/deltaplus1"
	"listcolor/internal/graph"
	"listcolor/internal/hypergraph"
	"listcolor/internal/linial"
	"listcolor/internal/nbhood"
	"listcolor/internal/quality"
	"listcolor/internal/service"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

// Core types, re-exported from the implementation packages. Methods on
// these types (Graph.AddEdge, Instance.Slack, ...) are part of the
// public API.
type (
	// Graph is a simple undirected graph on vertices 0..n-1.
	Graph = graph.Graph
	// Digraph is an edge-oriented view of a Graph.
	Digraph = graph.Digraph
	// Instance is a list defective coloring instance: per-node sorted
	// color lists with aligned defects, over a space of Space colors.
	Instance = coloring.Instance
	// ArbResult is a list arbdefective coloring: colors plus an
	// orientation (arcs) of the monochromatic edges.
	ArbResult = coloring.ArbResult
	// Config controls simulator runs (driver, CONGEST bandwidth cap,
	// round limits, per-round callbacks).
	Config = sim.Config
	// Stats aggregates a run: rounds, messages, total and max payload
	// bits.
	Stats = sim.Result
	// RoundStats describes one completed round (for Config.OnRound).
	RoundStats = sim.RoundStats
	// Span records one step of a composed algorithm; pass NewSpan's
	// result as Config.Span to collect the composition tree of the
	// recursive pipelines.
	Span = sim.Span
)

// NewSpan returns a root span to install as Config.Span.
func NewSpan(label string) *Span { return sim.NewSpan(label) }

// Driver selection for Config.Driver.
const (
	// Lockstep runs nodes sequentially each round (deterministic
	// reference driver).
	Lockstep = sim.Lockstep
	// Goroutines runs every node as its own goroutine with round
	// barriers; results are identical to Lockstep.
	Goroutines = sim.Goroutines
	// Workers runs each round's node computations on a worker pool;
	// results are identical to Lockstep, and it is the fastest driver
	// for large networks.
	Workers = sim.Workers
)

// ---------------------------------------------------------------------------
// Graph construction.

// NewGraph returns an empty graph on n vertices; add edges with
// AddEdge.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewRing returns the n-cycle.
func NewRing(n int) *Graph { return graph.Ring(n) }

// NewGrid returns the rows×cols grid graph.
func NewGrid(rows, cols int) *Graph { return graph.Grid(rows, cols) }

// NewComplete returns the complete graph K_n.
func NewComplete(n int) *Graph { return graph.Complete(n) }

// NewHypercube returns the d-dimensional hypercube.
func NewHypercube(d int) *Graph { return graph.Hypercube(d) }

// NewRandomRegular returns a seeded random d-regular graph on n
// vertices (n·d must be even, d < n).
func NewRandomRegular(n, d int, seed int64) *Graph {
	return graph.RandomRegular(n, d, rand.New(rand.NewSource(seed)))
}

// NewGNP returns a seeded Erdős–Rényi G(n, p) graph.
func NewGNP(n int, p float64, seed int64) *Graph {
	return graph.GNP(n, p, rand.New(rand.NewSource(seed)))
}

// NewPowerLaw returns a seeded preferential-attachment graph where
// every arriving vertex attaches to k earlier vertices.
func NewPowerLaw(n, k int, seed int64) *Graph {
	return graph.PowerLaw(n, k, rand.New(rand.NewSource(seed)))
}

// ---------------------------------------------------------------------------
// Web-scale graphs (compressed sparse row).

// CSRGraph is an immutable graph in compressed-sparse-row form: two
// flat arrays (int64 row offsets, concatenated sorted neighbor rows)
// instead of per-node adjacency slices. It is the substrate of the
// 10⁶–10⁷-node simulation path (docs/MEMORY.md); convert to an
// adjacency-list Graph with its Graph method where an algorithm
// requires one.
type CSRGraph = graph.CSR

// EdgeStream is a replayable edge producer for streaming CSR builds;
// see BuildCSR.
type EdgeStream = graph.EdgeStream

// BuildCSR builds a CSRGraph on n vertices directly from a replayable
// edge stream, without materializing adjacency maps or per-node
// slices. The stream is invoked twice (count + fill) and must emit the
// identical edge sequence both times.
func BuildCSR(n int, stream EdgeStream) (*CSRGraph, error) {
	return graph.StreamCSR(n, stream)
}

// NewStreamedRing returns the n-cycle as a streamed CSRGraph.
func NewStreamedRing(n int) *CSRGraph { return graph.StreamedRing(n) }

// NewStreamedGNP returns a seeded G(n, p) graph as a streamed
// CSRGraph, built in O(n + m) time by geometric skip sampling.
func NewStreamedGNP(n int, p float64, seed int64) *CSRGraph {
	return graph.StreamedGNP(n, p, seed)
}

// NewStreamedPowerLaw returns a seeded preferential-attachment graph
// (every arriving vertex attaches to k earlier vertices) as a streamed
// CSRGraph.
func NewStreamedPowerLaw(n, k int, seed int64) *CSRGraph {
	return graph.StreamedPowerLaw(n, k, seed)
}

// SegmentedStream is a replayable edge stream that can split into
// ordered replayable segments for the multi-core CSR build; see
// BuildCSRParallel. Segment contents must not depend on the requested
// segment count, so builds are identical at every worker count.
type SegmentedStream = graph.SegmentedStream

// BuildCSRParallel builds the same CSRGraph as BuildCSR(n, ss.Stream())
// — byte-identical arrays, identical errors — using up to workers
// cores over the stream's segments. workers ≤ 0 auto-selects
// (GOMAXPROCS, with a sequential fallback for small n).
func BuildCSRParallel(n int, ss SegmentedStream, workers int) (*CSRGraph, error) {
	return graph.BuildCSRParallel(n, ss, workers)
}

// NewRingSegmented returns the n-cycle as a segmented stream — the
// ring is exactly seekable, so any vertex-range partition concatenates
// to the sequential edge sequence.
func NewRingSegmented(n int) SegmentedStream { return graph.RingSegmented(n) }

// NewGNPSegmented returns a range-keyed G(n, p) family whose fixed row
// chunks are skip-sampled under independently derived seeds: the
// canonical scale workload of the parallel substrate. It is a
// different (equally valid) G(n, p) member than NewStreamedGNP's.
func NewGNPSegmented(n int, p float64, seed int64) SegmentedStream {
	return graph.GNPSegmented(n, p, seed)
}

// SingleSegment adapts a stream that cannot split (such as the
// preferential-attachment stream, which is sequential by construction)
// to the SegmentedStream contract; BuildCSRParallel then takes the
// sequential path.
func SingleSegment(s EdgeStream) SegmentedStream { return graph.SingleSegment(s) }

// LineGraph returns the line graph of g and the mapping from
// line-graph vertices to edges of g. Line graphs have neighborhood
// independence ≤ 2.
func LineGraph(g *Graph) (*Graph, [][2]int) { return graph.LineGraph(g) }

// GeometricGraph is a unit-disk graph (points in [0,1]², adjacent iff
// within Radius). Unit-disk graphs have neighborhood independence
// θ ≤ 5, making them a natural workload for SolveNeighborhood.
type GeometricGraph = graph.GeometricGraph

// NewRandomGeometric returns a seeded random unit-disk graph.
func NewRandomGeometric(n int, radius float64, seed int64) *GeometricGraph {
	return graph.RandomGeometric(n, radius, rand.New(rand.NewSource(seed)))
}

// ---------------------------------------------------------------------------
// Serialization.

// WriteGraph serializes g as a whitespace edge list ("n m" header plus
// one "u v" line per edge).
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadGraph parses the edge-list format written by WriteGraph ('#'
// comments and blank lines allowed).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteInstance serializes the instance as JSON.
func WriteInstance(w io.Writer, in *Instance) error { return coloring.WriteJSON(w, in) }

// ReadInstance parses and validates a JSON instance.
func ReadInstance(r io.Reader) (*Instance, error) { return coloring.ReadJSON(r) }

// ---------------------------------------------------------------------------
// Orientations.

// OrientByID orients every edge toward the smaller vertex id.
func OrientByID(g *Graph) *Digraph { return graph.OrientByID(g) }

// OrientByDegeneracy orients along a degeneracy order, minimizing the
// maximum out-degree over acyclic orientations.
func OrientByDegeneracy(g *Graph) *Digraph { return graph.OrientByDegeneracy(g) }

// OrientRandom orients every edge in a seeded random direction.
func OrientRandom(g *Graph, seed int64) *Digraph {
	return graph.OrientRandom(g, rand.New(rand.NewSource(seed)))
}

// ---------------------------------------------------------------------------
// Instance construction.

// NewInstance returns an empty instance over a color space of the
// given size; fill Lists and Defects directly (sorted lists, aligned
// defect slices).
func NewInstance(n, space int) *Instance {
	return &Instance{
		Lists:   make([][]int, n),
		Defects: make([][]int, n),
		Space:   space,
	}
}

// NewDegreePlusOneInstance returns a (deg+1)-list coloring instance:
// node v gets deg(v)+1 seeded-random distinct colors from [0, space)
// and zero defects. space must exceed Δ(g).
func NewDegreePlusOneInstance(g *Graph, space int, seed int64) *Instance {
	return coloring.DegreePlusOne(g, space, rand.New(rand.NewSource(seed)))
}

// NewUniformInstance gives every node listSize seeded-random distinct
// colors from [0, space), all with the same defect.
func NewUniformInstance(n, space, listSize, defect int, seed int64) *Instance {
	return coloring.Uniform(n, space, listSize, defect, rand.New(rand.NewSource(seed)))
}

// NewMinSlackInstance returns an adversarially tight OLDC instance for
// TwoSweep with parameters p and ε (Theorem 1.1's slack condition met
// with the minimum possible margin).
func NewMinSlackInstance(d *Digraph, space, p int, eps float64, seed int64) *Instance {
	return coloring.MinSlackOriented(d, space, p, eps, rand.New(rand.NewSource(seed)))
}

// NewSlackInstance returns a list defective instance whose slack
// (Definition 1.1) is just above s at every node.
func NewSlackInstance(g *Graph, space int, s float64, seed int64) *Instance {
	return coloring.WithSlack(g, space, s, rand.New(rand.NewSource(seed)))
}

// ---------------------------------------------------------------------------
// Validation.

// ValidateOLDC checks an oriented list defective coloring against the
// instance.
func ValidateOLDC(d *Digraph, inst *Instance, colors []int) error {
	return coloring.ValidateOLDC(d, inst, colors)
}

// ValidateListDefective checks a (plain) list defective coloring.
func ValidateListDefective(g *Graph, inst *Instance, colors []int) error {
	return coloring.ValidateListDefective(g, inst, colors)
}

// ValidateListArbdefective checks a list arbdefective coloring.
func ValidateListArbdefective(g *Graph, inst *Instance, res ArbResult) error {
	return coloring.ValidateListArbdefective(g, inst, res)
}

// ValidateProperList checks a proper list coloring.
func ValidateProperList(g *Graph, inst *Instance, colors []int) error {
	return coloring.ValidateProperList(g, inst, colors)
}

// IsProperColoring reports whether colors is a proper vertex coloring
// of g (nil) or returns the first monochromatic edge.
func IsProperColoring(g *Graph, colors []int) error {
	return graph.IsProperColoring(g, colors)
}

// AuditTopology is the read-only adjacency a defect audit scans —
// satisfied by Graph and CSRGraph alike.
type AuditTopology = coloring.Topology

// AuditReport is the outcome of a whole-graph validity/defect scan:
// conflict mass, absorbed defects, tight nodes, and the first
// (smallest node id) violation. Worker-count independent.
type AuditReport = coloring.AuditReport

// AuditColoring runs the whole-graph validity/defect scan through the
// range-partitioned parallel audit kernel. workers ≤ 0 auto-selects
// (GOMAXPROCS, sequential below a small-n threshold); the report is
// identical at every worker count.
func AuditColoring(topo AuditTopology, inst *Instance, colors []int, workers int) AuditReport {
	return coloring.AuditParallel(topo, inst, colors, workers)
}

// NeighborhoodIndependence returns θ(G) exactly (exponential in Δ in
// the worst case; intended for moderate degrees).
func NeighborhoodIndependence(g *Graph) int {
	return graph.NeighborhoodIndependence(g)
}

// ThetaUpperBound returns a cheap polynomial upper bound on θ(G) via
// greedy clique covers of the neighborhoods.
func ThetaUpperBound(g *Graph) int {
	return graph.GreedyThetaUpperBound(g)
}

// QualityReport summarizes how a valid list defective coloring used
// its budgets (palette exploitation, class balance, defect
// utilization).
type QualityReport = quality.Report

// AnalyzeColoring builds a quality report for a list defective
// coloring; validate the coloring first.
func AnalyzeColoring(g *Graph, inst *Instance, colors []int) (QualityReport, error) {
	return quality.Analyze(g, inst, colors)
}

// ---------------------------------------------------------------------------
// Classical building blocks.

// ColorResult is a coloring together with its palette size and the
// simulation statistics of the run that produced it.
type ColorResult struct {
	Colors  []int
	Palette int
	Stats   Stats
}

// LinialColor computes a proper Θ(Δ²)-coloring of g from node ids in
// O(log* n) rounds ([Lin87]).
func LinialColor(g *Graph, cfg Config) (ColorResult, error) {
	res, err := linial.ColorFromIDs(g, cfg)
	if err != nil {
		return ColorResult{}, err
	}
	return ColorResult{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats}, nil
}

// DefectiveColor computes, from a proper m-coloring, a coloring with
// Θ(1/α²) colors in which every node has at most α·deg(v)
// monochromatic neighbors, in O(log* m) rounds (Lemma 3.4,
// [Kuh09, KS18]).
func DefectiveColor(g *Graph, colors []int, m int, alpha float64, cfg Config) (ColorResult, error) {
	res, err := defective.ColorUndirected(g, colors, m, alpha, cfg)
	if err != nil {
		return ColorResult{}, err
	}
	return ColorResult{Colors: res.Colors, Palette: res.Palette, Stats: res.Stats}, nil
}

// ---------------------------------------------------------------------------
// The paper's algorithms.

// OLDCResult is the output of an oriented list defective coloring run.
type OLDCResult struct {
	Colors []int
	Stats  Stats
	// LocalOps counts the deterministic elementary local operations of
	// the Phase-I selections (Two-Sweep runs only) — the paper's
	// internal-computation measure.
	LocalOps int64
}

// TwoSweep runs Algorithm 1 (Theorem 1.1 with ε = 0): given a proper
// q-coloring initColors and an instance satisfying
// Σ(d_v(x)+1) > max{p, |L_v|/p}·β_v, it solves the OLDC instance in
// 2q+1 rounds, exchanging messages of at most p colors.
func TwoSweep(d *Digraph, inst *Instance, initColors []int, q, p int, cfg Config) (OLDCResult, error) {
	res, err := twosweep.Solve(d, inst, initColors, q, p, cfg)
	if err != nil {
		return OLDCResult{}, err
	}
	return OLDCResult{Colors: res.Colors, Stats: res.Stats, LocalOps: res.LocalOps}, nil
}

// TwoSweepFast runs Algorithm 2 (Theorem 1.1 with ε > 0): under the
// (1+ε) slack condition it solves the OLDC instance in
// O(min{q, (p/ε)² + log* q}) rounds by first computing a defective
// coloring with α = ε/p.
func TwoSweepFast(d *Digraph, inst *Instance, initColors []int, q, p int, eps float64, cfg Config) (OLDCResult, error) {
	res, err := twosweep.SolveFast(d, inst, initColors, q, p, eps, cfg)
	if err != nil {
		return OLDCResult{}, err
	}
	return OLDCResult{Colors: res.Colors, Stats: res.Stats}, nil
}

// ReduceColorSpace runs the Theorem 1.2 algorithm: an OLDC instance
// with Σ(d_v(x)+1) ≥ 3√C·β_v is solved in O(log³C + log* q) rounds
// with O(log q + log C)-bit messages, by recursive color space
// splitting (Lemma 3.5).
func ReduceColorSpace(d *Digraph, inst *Instance, initColors []int, q int, cfg Config) (OLDCResult, error) {
	res, err := csr.Solve(d, inst, initColors, q, cfg)
	if err != nil {
		return OLDCResult{}, err
	}
	return OLDCResult{Colors: res.Colors, Stats: res.Stats}, nil
}

// DegPlusOneResult extends ColorResult with the pipeline's internal
// counters.
type DegPlusOneResult struct {
	Colors    []int
	Stats     Stats
	Scales    int
	OLDCCalls int
}

// ColorDegPlusOne solves a proper (deg+1)-list coloring instance
// (Theorem 1.3's problem) via Linial bootstrap, degree-halving scales
// and the Theorem 1.2 solver on defective classes.
func ColorDegPlusOne(g *Graph, inst *Instance, cfg Config) (DegPlusOneResult, error) {
	res, err := deltaplus1.Solve(g, inst, cfg)
	if err != nil {
		return DegPlusOneResult{}, err
	}
	return DegPlusOneResult{Colors: res.Colors, Stats: res.Stats, Scales: res.Scales, OLDCCalls: res.OLDCCalls}, nil
}

// ArbdefectiveResult is the output of the Theorem 1.5 pipeline.
type ArbdefectiveResult struct {
	Result ArbResult
	Stats  Stats
}

// SolveNeighborhood runs the Theorem 1.5 recursion: a slack-1 list
// arbdefective instance on a graph of neighborhood independence
// ≤ theta is solved in (θ·log Δ)^{O(log log Δ)} + O(log* n) simulated
// rounds. With all-zero defects the output is a proper (deg+1)-list
// coloring.
func SolveNeighborhood(g *Graph, inst *Instance, theta int, cfg Config) (ArbdefectiveResult, error) {
	res, err := nbhood.SolveArb(g, inst, theta, cfg)
	if err != nil {
		return ArbdefectiveResult{}, err
	}
	return ArbdefectiveResult{Result: res.Arb, Stats: res.Stats}, nil
}

// SolveArbdefective solves a slack-1 list arbdefective instance on an
// ARBITRARY graph (no neighborhood-independence assumption), composing
// the paper's Lemma A.1 and Lemma 4.4 reductions over the Theorem 1.2
// solver. Round complexity is Õ(C·log Δ) solver calls — higher than
// SolveNeighborhood's, in exchange for generality.
func SolveArbdefective(g *Graph, inst *Instance, cfg Config) (ArbdefectiveResult, error) {
	res, err := nbhood.SolveArbGeneral(g, inst, cfg)
	if err != nil {
		return ArbdefectiveResult{}, err
	}
	return ArbdefectiveResult{Result: res.Arb, Stats: res.Stats}, nil
}

// SolveNeighborhoodBranch2 runs the second branch of Theorem 1.5's
// min{·,·} (Equation 20): one color-space-splitting level over the
// general-graph solver, giving O(θ²·Δ^{1/4}·polylog) rounds — the
// better choice when θ is large relative to Δ.
func SolveNeighborhoodBranch2(g *Graph, inst *Instance, theta int, cfg Config) (ArbdefectiveResult, error) {
	res, err := nbhood.SolveArbBranch2(g, inst, theta, cfg)
	if err != nil {
		return ArbdefectiveResult{}, err
	}
	return ArbdefectiveResult{Result: res.Arb, Stats: res.Stats}, nil
}

// EdgeColor computes a (2Δ−1)-edge coloring of g by vertex-coloring
// its line graph with the Section 4 machinery. edgeColors[i] is the
// color of g.Edges()[i].
func EdgeColor(g *Graph, cfg Config) (edgeColors []int, palette int, stats Stats, err error) {
	return nbhood.EdgeColor(g, cfg)
}

// Hypergraph is a rank-bounded hypergraph; its line graph has
// neighborhood independence at most its rank, making hyperedge
// coloring a Section 4 application.
type Hypergraph = hypergraph.Hypergraph

// NewHypergraph returns an empty hypergraph on n vertices; add
// hyperedges with AddEdge.
func NewHypergraph(n int) *Hypergraph { return hypergraph.New(n) }

// NewRandomHypergraph returns a seeded random hypergraph with m
// hyperedges of exactly the given rank.
func NewRandomHypergraph(n, m, rank int, seed int64) *Hypergraph {
	return hypergraph.RandomRegularRank(n, m, rank, rand.New(rand.NewSource(seed)))
}

// HyperedgeColor properly colors the hyperedges of a rank-r
// hypergraph (intersecting hyperedges differ) with r·(D−1)+1 colors,
// where D is the maximum vertex degree — the bounded-rank-hypergraph
// application of Theorem 1.5. edgeColors[i] is the color of
// hyperedge i.
func HyperedgeColor(h *Hypergraph, cfg Config) (edgeColors []int, palette int, stats Stats, err error) {
	return nbhood.HyperedgeColor(h, cfg)
}

// ---------------------------------------------------------------------------
// Incremental coloring service.

// ColorService is a long-running incremental coloring maintainer: it
// holds a valid list defective coloring over a mutable overlay of a
// CSRGraph substrate and repairs it locally after every applied batch
// of topology/list updates (bounded deterministic repair rounds,
// billed as maintenance cost). Reads are lock-free snapshot loads;
// writes are serialized. cmd/colord wraps it in an HTTP daemon.
type ColorService = service.Service

// ServiceOp is one churn operation (add_edge, remove_edge, add_node,
// remove_node, set_list) for ColorService.ApplyBatch.
type ServiceOp = service.Op

// ServiceOptions bounds the service's repair rounds per batch and the
// overlay compaction threshold.
type ServiceOptions = service.Options

// ServiceBatchReport is the maintenance account of one applied batch:
// dirty set size, absorbed vs hard conflicts, repair rounds, recolored
// nodes, fallbacks, and message/bit billing.
type ServiceBatchReport = service.BatchReport

// ServiceStats is the service's running maintenance account
// (GET /v1/stats in the HTTP surface).
type ServiceStats = service.Stats

// Churn op actions for ServiceOp.Action.
const (
	OpAddEdge    = service.OpAddEdge
	OpRemoveEdge = service.OpRemoveEdge
	OpAddNode    = service.OpAddNode
	OpRemoveNode = service.OpRemoveNode
	OpSetList    = service.OpSetList
)

// NewColorService starts an incremental coloring service over base.
// A nil colors initializes greedily and repairs to validity; otherwise
// the given coloring is repaired if damaged.
func NewColorService(base *CSRGraph, inst *Instance, colors []int, opts ServiceOptions) (*ColorService, error) {
	return service.New(base, inst, colors, opts)
}

// NewServiceHandler returns the service's HTTP surface
// (POST /v1/updates, GET /v1/color/{node}, GET /v1/colors,
// GET /v1/stats) — the handler cmd/colord serves.
func NewServiceHandler(s *ColorService) http.Handler { return service.NewHandler(s) }

// NewCSRFromGraph converts an adjacency-list Graph to the immutable
// CSR form the service (and the web-scale simulation path) runs on.
func NewCSRFromGraph(g *Graph) *CSRGraph { return graph.CSRFromGraph(g) }

// ---------------------------------------------------------------------------
// Durability and overload resilience.

// DurableColorService wraps a ColorService in the crash-safety layer:
// every batch is appended to a checksummed write-ahead log before it
// applies, periodic checkpoints bound replay, and reopening a data dir
// recovers the exact pre-crash state (torn or corrupted WAL tails are
// detected by CRC and discarded cleanly). Reads still go through the
// wrapped service's lock-free snapshots.
type DurableColorService = service.Durable

// DurableServiceOptions configures the durability layer: data dir,
// WAL sync mode, checkpoint cadence, segment size.
type DurableServiceOptions = service.DurableOptions

// ServiceRecoveryInfo is the account of one recovery: checkpoint
// version, replayed batches/ops, and the discarded torn tail (if any).
type ServiceRecoveryInfo = service.RecoveryInfo

// ServiceDurabilityStats is the durability section of /v1/stats.
type ServiceDurabilityStats = service.DurabilityStats

// WALSyncMode selects the WAL durability/throughput trade:
// WALSyncOff buffers (data loss bounded by a segment rotation),
// WALSyncBatch write-through per batch (survives process crashes, the
// default in colord), WALSyncAlways fsyncs every record (survives
// power loss).
type WALSyncMode = service.SyncMode

const (
	WALSyncOff    = service.SyncOff
	WALSyncBatch  = service.SyncBatch
	WALSyncAlways = service.SyncAlways
)

// ParseWALSyncMode parses "off" | "batch" | "always" (colord's
// -wal-sync flag values).
func ParseWALSyncMode(s string) (WALSyncMode, error) { return service.ParseSyncMode(s) }

// NewDurableColorService wraps an already-constructed service in a
// fresh data dir, checkpointing the current state immediately. A dir
// that already holds a checkpoint is refused — use
// OpenDurableColorService.
func NewDurableColorService(s *ColorService, dopts DurableServiceOptions) (*DurableColorService, error) {
	return service.NewDurable(s, dopts)
}

// OpenDurableColorService recovers a durable service from its data
// dir: load the checkpoint, replay the WAL tail, discard torn
// records. A dir without a checkpoint returns os.ErrNotExist.
func OpenDurableColorService(opts ServiceOptions, dopts DurableServiceOptions) (*DurableColorService, *ServiceRecoveryInfo, error) {
	return service.OpenDurable(opts, dopts)
}

// ServiceIngest is the bounded admission queue in front of the single
// writer: Submit fails fast with service.ErrQueueFull when the queue
// is at capacity (the HTTP surface maps that to 503 + Retry-After),
// and requests whose context expires while queued are skipped at
// dequeue.
type ServiceIngest = service.Ingest

// NewServiceIngest starts an admission queue of the given capacity
// (≤ 0 means 64) over the given apply function — typically
// (*ColorService).ApplyBatch or (*DurableColorService).ApplyBatch.
func NewServiceIngest(apply func([]ServiceOp) (ServiceBatchReport, error), capacity int) *ServiceIngest {
	return service.NewIngest(apply, capacity)
}

// ServiceHealth is the recovering → ready → draining state machine
// behind GET /readyz; writes are refused with 503 while not ready.
type ServiceHealth = service.Health

// ServiceHandlerOptions wires the durability and overload layers into
// the HTTP surface (admission queue, health gate, body cap, request
// deadline, durability stats).
type ServiceHandlerOptions = service.HandlerOptions

// NewServiceHandlerWithOptions returns the hardened HTTP surface:
// POST /v1/updates through the admission queue with a body cap and
// per-request deadline, GET /healthz (liveness), GET /readyz
// (readiness), and /v1/stats with durability and ingest sections.
func NewServiceHandlerWithOptions(s *ColorService, opts ServiceHandlerOptions) http.Handler {
	return service.NewHandlerWithOptions(s, opts)
}

// ServiceChaosConfig parameterizes the crash/corruption kill-point
// matrix (colord -chaos): instance shape, script length, number of
// seed-derived kill points, checkpoint cadence.
type ServiceChaosConfig = service.ChaosConfig

// ServiceChaosReport is the matrix verdict: points run, per-damage-mode
// counts, discarded tails, replayed batches, failures.
type ServiceChaosReport = service.ChaosReport

// RunServiceChaos executes the kill-point matrix: for every
// seed-derived point the durable service is killed (at a batch
// boundary, mid-record, or with post-crash byte flips / truncation),
// recovered, and differenced against an uninterrupted reference run —
// recovered colors, canonical stats and topology fingerprint must be
// identical at the recovered version, the audit must be clean, and the
// recovered service must reach the same final state. A non-nil error
// reports the first divergence.
func RunServiceChaos(cfg ServiceChaosConfig) (ServiceChaosReport, error) {
	return service.RunChaos(cfg)
}

// ---------------------------------------------------------------------------
// Baselines.

// GreedyList is the sequential greedy list coloring baseline.
func GreedyList(g *Graph, inst *Instance) ([]int, error) {
	return baseline.GreedyList(g, inst)
}

// LubyColor is the classical randomized (Δ+1)-coloring baseline
// ([ABI86, Lub86]), run on the simulator.
func LubyColor(g *Graph, seed int64, cfg Config) ([]int, Stats, error) {
	return baseline.Luby(g, seed, cfg)
}
