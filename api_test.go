package listcolor

import (
	"bytes"
	"context"
	"testing"
)

// These tests exercise the public façade end to end — they are the
// library's integration tests, touching every exported entry point on
// small but non-trivial inputs.

func TestPublicTwoSweepPipeline(t *testing.T) {
	g := NewRandomRegular(60, 6, 1)
	d := OrientByID(g)
	base, err := LinialColor(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := 3
	inst := NewMinSlackInstance(d, 100, p, 0, 2)
	res, err := TwoSweep(d, inst, base.Colors, base.Palette, p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
	if res.Stats.Rounds != 2*base.Palette+1 {
		t.Errorf("Rounds = %d, want 2q+1 = %d", res.Stats.Rounds, 2*base.Palette+1)
	}
}

func TestPublicTwoSweepFast(t *testing.T) {
	g := NewGNP(80, 0.1, 3)
	d := OrientRandom(g, 4)
	base, err := LinialColor(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	inst := NewMinSlackInstance(d, 60, 2, 1.0, 5)
	res, err := TwoSweepFast(d, inst, base.Colors, base.Palette, 2, 1.0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
}

func TestPublicReduceColorSpace(t *testing.T) {
	g := NewGrid(6, 6)
	d := OrientByDegeneracy(g)
	base, err := LinialColor(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	space := 64
	inst := NewSlackInstance(g, space, 3*8.0*2, 6) // ample slack ≥ 3√64·β-ish
	res, err := ReduceColorSpace(d, inst, base.Colors, base.Palette, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
}

func TestPublicDegPlusOne(t *testing.T) {
	g := NewRandomRegular(50, 5, 7)
	inst := NewDegreePlusOneInstance(g, g.MaxDegree()+2, 8)
	res, err := ColorDegPlusOne(g, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProperList(g, inst, res.Colors); err != nil {
		t.Error(err)
	}
	if res.Scales < 1 {
		t.Error("no scales recorded")
	}
}

func TestPublicNeighborhoodAndEdgeColor(t *testing.T) {
	g := NewRing(12)
	lg, edgeOf := LineGraph(g)
	if lg.N() != 12 || len(edgeOf) != 12 {
		t.Fatalf("line graph of C12 wrong: %v", lg)
	}
	inst := NewDegreePlusOneInstance(lg, lg.MaxDegree()+2, 9)
	res, err := SolveNeighborhood(lg, inst, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProperList(lg, inst, res.Result.Colors); err != nil {
		t.Error(err)
	}

	edgeColors, palette, _, err := EdgeColor(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if palette != 2*g.MaxDegree()-1 {
		t.Errorf("palette = %d", palette)
	}
	if len(edgeColors) != g.M() {
		t.Errorf("%d edge colors for %d edges", len(edgeColors), g.M())
	}
}

func TestPublicBaselines(t *testing.T) {
	g := NewComplete(8)
	inst := NewDegreePlusOneInstance(g, 10, 10)
	greedy, err := GreedyList(g, inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProperList(g, inst, greedy); err != nil {
		t.Error(err)
	}
	luby, _, err := LubyColor(g, 11, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(luby) != g.N() {
		t.Error("luby length wrong")
	}
}

func TestPublicDefectiveColor(t *testing.T) {
	g := NewHypercube(5)
	base, err := LinialColor(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefectiveColor(g, base.Colors, base.Palette, 0.5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette <= 0 || len(res.Colors) != g.N() {
		t.Error("defective result malformed")
	}
}

func TestPublicGoroutineDriver(t *testing.T) {
	g := NewPowerLaw(60, 3, 12)
	a, err := LinialColor(g, Config{Driver: Lockstep})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinialColor(g, Config{Driver: Goroutines})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("drivers disagree")
		}
	}
}

func TestPublicHypergraphColoring(t *testing.T) {
	h := NewRandomHypergraph(12, 9, 3, 21)
	colors, palette, stats, err := HyperedgeColor(h, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(colors) != h.M() || palette < 1 || stats.Rounds <= 0 {
		t.Errorf("malformed result: %d colors, palette %d, %d rounds", len(colors), palette, stats.Rounds)
	}
	// Manual hypergraph via the builder.
	h2 := NewHypergraph(4)
	if err := h2.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := h2.AddEdge(1, 2, 3); err != nil {
		t.Fatal(err)
	}
	c2, _, _, err := HyperedgeColor(h2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c2[0] == c2[1] {
		t.Error("intersecting hyperedges share a color")
	}
}

func TestPublicGeneralAndBranch2(t *testing.T) {
	g := NewGNP(24, 0.3, 22)
	inst := NewDegreePlusOneInstance(g, g.MaxDegree()+2, 23)
	gen, err := SolveArbdefective(g, inst, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateProperList(g, inst, gen.Result.Colors); err != nil {
		t.Error(err)
	}
	ring := NewRing(14)
	inst2 := NewSlackInstance(ring, 16, 1.4, 24)
	b2, err := SolveNeighborhoodBranch2(ring, inst2, 2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateListArbdefective(ring, inst2, b2.Result); err != nil {
		t.Error(err)
	}
}

func TestPublicWorkersDriver(t *testing.T) {
	g := NewRandomRegular(120, 6, 25)
	a, err := LinialColor(g, Config{Driver: Lockstep})
	if err != nil {
		t.Fatal(err)
	}
	b, err := LinialColor(g, Config{Driver: Workers})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("Workers driver disagrees with Lockstep")
		}
	}
}

func TestPublicSerialization(t *testing.T) {
	g := NewGrid(3, 3)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Error("graph round trip changed shape")
	}
	inst := NewUniformInstance(5, 9, 3, 1, 26)
	buf.Reset()
	if err := WriteInstance(&buf, inst); err != nil {
		t.Fatal(err)
	}
	inst2, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.N() != inst.N() || inst2.Space != inst.Space {
		t.Error("instance round trip changed shape")
	}
}

func TestPublicGeometric(t *testing.T) {
	gg := NewRandomGeometric(50, 0.2, 27)
	if err := gg.Validate(); err != nil {
		t.Fatal(err)
	}
	if gg.Distance(0, 1) < 0 {
		t.Error("negative distance")
	}
	if theta := ThetaUpperBound(gg.Graph); theta < 1 && gg.M() > 0 {
		t.Errorf("theta bound %d", theta)
	}
}

func TestPublicInstanceHelpers(t *testing.T) {
	in := NewInstance(2, 5)
	in.Lists[0] = []int{0, 2}
	in.Defects[0] = []int{1, 0}
	in.Lists[1] = []int{1}
	in.Defects[1] = []int{0}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.SlackSum(0) != 3 {
		t.Errorf("SlackSum = %d", in.SlackSum(0))
	}
	u := NewUniformInstance(4, 10, 3, 1, 13)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicQualityReport(t *testing.T) {
	g := NewRing(8)
	inst := NewDegreePlusOneInstance(g, 4, 30)
	colors, err := GreedyList(g, inst)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeColoring(g, inst, colors)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ColorsUsed < 2 || rep.Space != 4 {
		t.Errorf("report malformed: %+v", rep)
	}
	if rep.Format() == "" {
		t.Error("empty report format")
	}
}

func TestPublicDurableService(t *testing.T) {
	dir := t.TempDir()
	base := NewStreamedRing(64)
	inst := NewInstance(64, 6)
	full := []int{0, 1, 2, 3, 4, 5}
	zeros := make([]int, 6)
	for v := 0; v < 64; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = zeros
	}
	svc, err := NewColorService(base, inst, nil, ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mode, err := ParseWALSyncMode("batch")
	if err != nil || mode != WALSyncBatch {
		t.Fatalf("ParseWALSyncMode = %v, %v", mode, err)
	}
	d, err := NewDurableColorService(svc, DurableServiceOptions{Dir: dir, Sync: mode})
	if err != nil {
		t.Fatal(err)
	}
	in := NewServiceIngest(d.ApplyBatch, 8)
	h := &ServiceHealth{}
	h.SetReady()
	handler := NewServiceHandlerWithOptions(svc, ServiceHandlerOptions{Ingest: in, Health: h, Durable: d})
	if handler == nil {
		t.Fatal("nil handler")
	}
	if _, err := in.Submit(context.Background(), []ServiceOp{{Action: OpAddEdge, U: 3, V: 30}}); err != nil {
		t.Fatal(err)
	}
	if err := in.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, info, err := OpenDurableColorService(ServiceOptions{}, DurableServiceOptions{Dir: dir, Sync: mode})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if info.Version != 1 || info.ReplayedBatches != 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	if !d2.Service().HasEdge(3, 30) {
		t.Fatal("recovered state lost the applied edge")
	}
	if err := d2.Service().ValidateState(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicServiceChaos(t *testing.T) {
	rep, err := RunServiceChaos(ServiceChaosConfig{Seed: 2, Points: 4, Batches: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 || rep.Points != 4 {
		t.Fatalf("chaos report: %+v", rep)
	}
}
