package listcolor

// One testing.B benchmark per experiment of DESIGN.md's index (E1–E12)
// plus micro-benchmarks of the substrate. Each benchmark reports the
// simulated round count via b.ReportMetric so `go test -bench` output
// doubles as a compact reproduction record; cmd/benchtab produces the
// full tables.

import (
	"math"
	"math/rand"
	"testing"

	"listcolor/internal/baseline"
	"listcolor/internal/bench"
	"listcolor/internal/classic"
	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/nbhood"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

func benchGraph(b *testing.B, n, deg int) (*Graph, *Digraph, []int, int) {
	b.Helper()
	g := NewRandomRegular(n, deg, 1)
	d := OrientByID(g)
	base, err := LinialColor(g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	return g, d, base.Colors, base.Palette
}

// BenchmarkTwoSweepRounds is E1: Algorithm 1 on a fixed workload;
// rounds are exactly 2q+1.
func BenchmarkTwoSweepRounds(b *testing.B) {
	_, d, base, q := benchGraph(b, 256, 8)
	p := 2
	inst := NewMinSlackInstance(d, 4*p*p+16, p, 0, 2)
	b.ReportAllocs()
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := TwoSweep(d, inst, base, q, p, Config{})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkTwoSweepDefect is E2: minimum-slack adversarial instances,
// validation included in the measured loop.
func BenchmarkTwoSweepDefect(b *testing.B) {
	g, d, base, q := benchGraph(b, 128, 6)
	_ = g
	p := 3
	inst := NewMinSlackInstance(d, 4*p*p+20, p, 0, 3)
	for i := 0; i < b.N; i++ {
		res, err := TwoSweep(d, inst, base, q, p, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ValidateOLDC(d, inst, res.Colors); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFastTwoSweep is E3: the ε > 0 path on a large-q input.
func BenchmarkFastTwoSweep(b *testing.B) {
	n := 1024
	g := NewRandomRegular(n, 6, 4)
	d := OrientByID(g)
	ids := make([]int, n)
	for v := range ids {
		ids[v] = v
	}
	p, eps := 2, 1.0
	inst := NewMinSlackInstance(d, 4*p*p+24, p, eps, 5)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := TwoSweepFast(d, inst, ids, n, p, eps, Config{})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
	b.ReportMetric(float64(2*n+1), "plain-rounds")
}

// BenchmarkColorSpaceReduction is E4, swept over C.
func BenchmarkColorSpaceReduction(b *testing.B) {
	for _, c := range []int{64, 1024} {
		c := c
		b.Run("C="+itoa(c), func(b *testing.B) {
			g, d, base, q := benchGraph(b, 64, 6)
			rng := rand.New(rand.NewSource(6))
			inst := coloring.WithOrientedSlack(d, c, 3*math.Sqrt(float64(c)), rng)
			_ = g
			var rounds, bits int
			for i := 0; i < b.N; i++ {
				res, err := ReduceColorSpace(d, inst, base, q, Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds, bits = res.Stats.Rounds, res.Stats.MaxMessageBits
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(bits), "max-msg-bits")
		})
	}
}

// BenchmarkDegPlusOne is E5, swept over Δ.
func BenchmarkDegPlusOne(b *testing.B) {
	for _, deg := range []int{4, 8, 16} {
		deg := deg
		b.Run("delta="+itoa(deg), func(b *testing.B) {
			g := NewRandomRegular(32*deg, deg, 7)
			inst := NewDegreePlusOneInstance(g, deg+1, 8)
			var rounds int
			for i := 0; i < b.N; i++ {
				res, err := ColorDegPlusOne(g, inst, Config{})
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkLocalComputation is E6: the Phase-I selection, sort vs the
// [MT20, FK23a]-style exhaustive subset search, swept over the list
// size Λ.
func BenchmarkLocalComputation(b *testing.B) {
	for _, lambda := range []int{8, 16, 20} {
		lambda := lambda
		list := make([]int, lambda)
		defects := make([]int, lambda)
		k := make(map[int]int)
		rng := rand.New(rand.NewSource(9))
		for i := range list {
			list[i] = i * 2
			defects[i] = rng.Intn(8)
			k[list[i]] = rng.Intn(5)
		}
		b.Run("sort/lambda="+itoa(lambda), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baseline.SelectSort(list, defects, k, 3)
			}
		})
		b.Run("bruteforce/lambda="+itoa(lambda), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.SelectBruteForce(list, defects, k, 3)
			}
		})
	}
}

// BenchmarkDefectiveFromArb is E7: Theorem 1.4 on a line graph (θ≤2).
func BenchmarkDefectiveFromArb(b *testing.B) {
	lg, _ := LineGraph(NewRandomRegular(14, 3, 10))
	base, err := LinialColor(lg, Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	theta, s := 2, 2
	need := nbhood.Theorem14Slack(theta, lg.MaxDegree(), s)
	inst := coloring.WithSlack(lg, 2*need*lg.MaxDegree()+40, float64(need)+1, rng)
	arb := nbhood.ArbSlack2Solver(theta, sim.Config{})
	var rounds int
	for i := 0; i < b.N; i++ {
		colors, stats, err := nbhood.DefectiveFromArb(lg, inst, base.Colors, base.Palette, theta, s, arb)
		if err != nil {
			b.Fatal(err)
		}
		if err := coloring.ValidateListDefective(lg, inst, colors); err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkNbhoodRecursion is E8: the full Theorem 1.5 pipeline via
// (2Δ−1)-edge coloring.
func BenchmarkNbhoodRecursion(b *testing.B) {
	g := NewComplete(6)
	var rounds int
	for i := 0; i < b.N; i++ {
		_, _, stats, err := EdgeColor(g, Config{})
		if err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkThreeColorDefective is E9.
func BenchmarkThreeColorDefective(b *testing.B) {
	g := NewRing(1024)
	d := OrientByID(g)
	base, err := LinialColor(g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	inst := coloring.ThreeColor(g.N(), d.MaxBeta())
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := TwoSweep(d, inst, base.Colors, base.Palette, 1, Config{})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkBoundedOutdegreeList is E10: zero-defect lists of size
// β²+β+1 on a degeneracy-oriented graph.
func BenchmarkBoundedOutdegreeList(b *testing.B) {
	g := NewGrid(12, 12)
	d := OrientByDegeneracy(g)
	beta := d.MaxBeta()
	p := beta + 1
	base, err := LinialColor(g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	listSize := beta*beta + beta + 1
	inst := NewUniformInstance(g.N(), 4*listSize+8, listSize, 0, 12)
	var rounds int
	for i := 0; i < b.N; i++ {
		res, err := TwoSweep(d, inst, base.Colors, base.Palette, p, Config{})
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkSlackReduction is E11: Lemma 4.4 with the real slack-2
// subroutine plugged in.
func BenchmarkSlackReduction(b *testing.B) {
	g := NewRing(64)
	base, err := LinialColor(g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	inst := coloring.WithSlack(g, 64, 4.5, rng)
	arb := nbhood.ArbSlack2Solver(2, sim.Config{})
	var rounds int
	for i := 0; i < b.N; i++ {
		res, stats, err := nbhood.SlackReduce2(g, inst, base.Colors, base.Palette, 4, arb, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ValidateListArbdefective(g, inst, res); err != nil {
			b.Fatal(err)
		}
		rounds = stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkBaselines is E12: the comparison algorithms on a shared
// workload.
func BenchmarkBaselines(b *testing.B) {
	g := NewRandomRegular(200, 6, 14)
	inst := NewDegreePlusOneInstance(g, 7, 15)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := GreedyList(g, inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("luby", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			_, stats, err := LubyColor(g, int64(i), Config{})
			if err != nil {
				b.Fatal(err)
			}
			rounds = stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("paper", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := ColorDegPlusOne(g, inst, Config{})
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkClassicSweeps is E13: the classical single-sweep and
// product constructions.
func BenchmarkClassicSweeps(b *testing.B) {
	g := NewRandomRegular(100, 8, 17)
	base, err := LinialColor(g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("single-sweep-arb", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			_, _, _, stats, err := classic.SweepArb(g, base.Colors, base.Palette, 2, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
			rounds = stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("product-defective", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			_, stats, err := classic.ProductDefective(g, base.Colors, base.Palette, 3, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
			rounds = stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkUDGTheta is E14: the bounded-θ recursion vs the general
// solver on a unit-disk workload.
func BenchmarkUDGTheta(b *testing.B) {
	gg := NewRandomGeometric(120, 0.1, 18)
	inst := NewDegreePlusOneInstance(gg.Graph, gg.MaxDegree()+1, 19)
	b.Run("theta5", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := SolveNeighborhood(gg.Graph, inst, 5, Config{})
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("general", func(b *testing.B) {
		var rounds int
		for i := 0; i < b.N; i++ {
			res, err := SolveArbdefective(gg.Graph, inst, Config{})
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkSelectorsEndToEnd is E15: the full Two-Sweep protocol under
// both Phase-I selection strategies; the reported local-op metrics are
// deterministic.
func BenchmarkSelectorsEndToEnd(b *testing.B) {
	g := NewRandomRegular(60, 4, 20)
	d := OrientByID(g)
	base, err := LinialColor(g, Config{})
	if err != nil {
		b.Fatal(err)
	}
	p := 3
	inst := NewMinSlackInstance(d, 4*p*p+16, p, 0, 21)
	b.Run("sort", func(b *testing.B) {
		var ops int64
		for i := 0; i < b.N; i++ {
			res, err := twosweep.SolveWithSelector(d, inst, base.Colors, base.Palette, p, twosweep.SortSelector, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
			ops = res.LocalOps
		}
		b.ReportMetric(float64(ops), "local-ops")
	})
	b.Run("subset-search", func(b *testing.B) {
		var ops int64
		for i := 0; i < b.N; i++ {
			res, err := twosweep.SolveWithSelector(d, inst, base.Colors, base.Palette, p, baseline.SubsetSelector, sim.Config{})
			if err != nil {
				b.Fatal(err)
			}
			ops = res.LocalOps
		}
		b.ReportMetric(float64(ops), "local-ops")
	})
}

// BenchmarkSimulatorDrivers micro-benchmarks the engine itself:
// lockstep vs goroutine-per-node on the Linial protocol.
func BenchmarkSimulatorDrivers(b *testing.B) {
	g := NewRandomRegular(512, 8, 16)
	b.Run("lockstep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LinialColor(g, Config{Driver: Lockstep}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := LinialColor(g, Config{Driver: Goroutines}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHarnessQuick runs the entire experiment harness in quick
// mode — the one-stop reproduction benchmark.
func BenchmarkHarnessQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := bench.All(bench.Options{Seed: 1, Quick: true})
		if len(tables) != 15 {
			b.Fatal("harness incomplete")
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestBenchWorkloadsValid is a plain test guarding the benchmark
// workloads: every benchmark's precondition must hold so `-bench` runs
// never fail mid-flight.
func TestBenchWorkloadsValid(t *testing.T) {
	g := NewRandomRegular(256, 8, 1)
	d := OrientByID(g)
	inst := NewMinSlackInstance(d, 32, 2, 0, 2)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	lg, _ := LineGraph(NewRandomRegular(14, 3, 10))
	if theta := NeighborhoodIndependence(lg); theta > 2 {
		t.Fatalf("line graph θ = %d > 2", theta)
	}
	_ = graph.CountColors // anchor the internal import used above
}
