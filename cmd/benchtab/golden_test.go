package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// goldenCases runs benchtab on the deterministic E1 experiment (quick
// sweep, fixed seed; no wall-clock columns) in both output formats.
// The golden files pin the exact table rendering — column alignment,
// separators, claim lines — so formatting regressions show up as
// diffs, not as silently reflowed EXPERIMENTS.md tables.
var goldenCases = []struct {
	name   string
	args   []string
	golden string
}{
	{"text", []string{"-run", "E1", "-quick", "-seed", "1"}, "e1_quick.golden"},
	{"markdown", []string{"-run", "E1", "-quick", "-seed", "1", "-markdown"}, "e1_quick_md.golden"},
	// The same golden under explicit worker budgets: the scheduler's
	// determinism contract says the bytes cannot depend on -parallel.
	{"text-parallel-1", []string{"-run", "E1", "-quick", "-seed", "1", "-parallel", "1"}, "e1_quick.golden"},
	{"text-parallel-4", []string{"-run", "E1", "-quick", "-seed", "1", "-parallel", "4"}, "e1_quick.golden"},
}

func TestGoldenE1(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != 0 {
				t.Fatalf("run(%v) = %d, stderr: %s", tc.args, code, errb.String())
			}
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output differs from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
					path, out.String(), want)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-run", "E99"}, &out, &errb); code != 1 {
		t.Fatalf("run -run E99 = %d, want 1 (stderr: %s)", code, errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("run -nope = %d, want 2", code)
	}
}
