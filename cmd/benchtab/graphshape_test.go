package main

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"listcolor/internal/bench"
)

// TestGraphBenchShape pins the graph_build section of BENCH_sim.json:
// the -graph -quick run (the -sim alias) must emit JSON that
// round-trips into SimBenchReport with no unknown fields and carry one
// graph_build row per (workload, workers) pair, every row reporting
// byte-identity to the sequential build, an equal audit report, and a
// plausible work-distribution account. Timings are machine-dependent
// and only sanity-checked; the identity columns are the contract.
func TestGraphBenchShape(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-graph", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("run -graph -quick = %d, stderr: %s", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep bench.SimBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_sim.json shape drifted: %v", err)
	}
	workloads := len(bench.GraphBuildWorkloads(true))
	if len(rep.GraphBuild) < 2*workloads { // ≥ 2 worker counts per workload
		t.Fatalf("graph_build has %d rows, want ≥ %d", len(rep.GraphBuild), 2*workloads)
	}
	hostW := runtime.GOMAXPROCS(0)
	for _, e := range rep.GraphBuild {
		if !e.IdenticalToSeq {
			t.Errorf("%s workers=%d: parallel build not byte-identical", e.Workload, e.Workers)
		}
		if !e.AuditIdenticalToSeq {
			t.Errorf("%s workers=%d: audit report diverges", e.Workload, e.Workers)
		}
		if e.Nodes <= 0 || e.Edges <= 0 || e.Workers < 2 || e.Segments < 1 {
			t.Errorf("%s: implausible row %+v", e.Workload, e)
		}
		if e.SegmentBalance < 1 {
			t.Errorf("%s workers=%d: segment balance %f < 1 (max/mean)", e.Workload, e.Workers, e.SegmentBalance)
		}
		if e.SeqBuildSec <= 0 || e.ParBuildSec <= 0 || e.AuditSeqSec <= 0 || e.AuditParSec <= 0 ||
			e.BuildSpeedup <= 0 || e.AuditSpeedup <= 0 || e.AuditEdgesPerSec <= 0 {
			t.Errorf("%s workers=%d: non-positive timing in %+v", e.Workload, e.Workers, e)
		}
		if e.Workers > 2*hostW && e.Workers != 4 {
			t.Errorf("%s: unexpected worker count %d for host with GOMAXPROCS=%d", e.Workload, e.Workers, hostW)
		}
	}
}

// TestCommittedGraphBuildRows checks the repo's BENCH_sim.json still
// carries the substrate evidence: graph_build rows at 10⁶ nodes with
// the identity verdicts true.
func TestCommittedGraphBuildRows(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Fatalf("read committed BENCH_sim.json: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rep bench.SimBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("committed BENCH_sim.json shape drifted: %v", err)
	}
	if len(rep.GraphBuild) == 0 {
		t.Fatal("committed BENCH_sim.json has no graph_build rows")
	}
	atScale := false
	for _, e := range rep.GraphBuild {
		if !e.IdenticalToSeq || !e.AuditIdenticalToSeq {
			t.Errorf("committed row %s workers=%d lost an identity verdict", e.Workload, e.Workers)
		}
		if e.Nodes == 1_000_000 {
			atScale = true
		}
	}
	if !atScale {
		t.Error("committed BENCH_sim.json has no graph_build row at n=10⁶")
	}
}
