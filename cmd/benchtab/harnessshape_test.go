package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"listcolor/internal/bench"
)

// TestHarnessBenchShape pins the BENCH_harness.json document shape:
// the -harness -quick run must emit JSON that round-trips into
// HarnessBenchReport with no unknown fields, carries the recorded
// sequential baseline plus one entry per quick worker budget (the
// sequential anchor first), and reports every run's tables as
// byte-identical to the sequential run — the scheduler's determinism
// contract — with at least one workload-cache hit proving graph
// reuse. Timing fields are machine-dependent and only checked for
// sanity.
func TestHarnessBenchShape(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-harness", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("run -harness -quick = %d, stderr: %s", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep bench.HarnessBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_harness.json shape drifted: %v", err)
	}
	if rep.GeneratedAt == "" || rep.Note == "" {
		t.Error("missing generated_at or note")
	}
	if rep.GOMAXPROCS <= 0 || rep.NumCPU <= 0 {
		t.Errorf("implausible host description: gomaxprocs=%d num_cpu=%d", rep.GOMAXPROCS, rep.NumCPU)
	}
	if len(rep.Baseline) == 0 {
		t.Fatal("recorded baseline missing")
	}
	if rep.Baseline[0].Mode != "sequential" || rep.Baseline[0].Workers != 1 {
		t.Errorf("baseline anchor is %s/workers=%d, want sequential/1", rep.Baseline[0].Mode, rep.Baseline[0].Workers)
	}
	budgets := bench.HarnessWorkerBudgets(true)
	if len(rep.Current) != len(budgets) {
		t.Fatalf("current has %d entries, want %d", len(rep.Current), len(budgets))
	}
	for i, e := range rep.Current {
		if e.Workers != budgets[i] {
			t.Errorf("entry %d: workers = %d, want %d", i, e.Workers, budgets[i])
		}
		wantMode := "parallel"
		if e.Workers == 1 {
			wantMode = "sequential"
		}
		if e.Mode != wantMode {
			t.Errorf("entry %d: mode = %q, want %q", i, e.Mode, wantMode)
		}
		if e.WallMs <= 0 || e.SpeedupVsSequential <= 0 {
			t.Errorf("entry %d: implausible measurement %+v", i, e)
		}
		if !e.TablesIdentical {
			t.Errorf("entry %d (workers=%d): tables diverged from the sequential run", i, e.Workers)
		}
		if e.Cache.Hits == 0 {
			t.Errorf("entry %d (workers=%d): no workload-cache hits — graph reuse is broken", i, e.Workers)
		}
	}
	// The service section: one entry per churn workload, each carrying
	// the acceptance measurements (updates/sec, recolor locality, p99
	// read latency under concurrent write load) and a clean post-run
	// validity scan.
	workloads := bench.ServiceWorkloads(true)
	if len(rep.Service) != len(workloads) {
		t.Fatalf("service section has %d entries, want %d", len(rep.Service), len(workloads))
	}
	for i, e := range rep.Service {
		if e.Workload == "" || e.Nodes <= 0 || e.Updates <= 0 || e.Batches <= 0 {
			t.Errorf("service entry %d: incomplete workload description %+v", i, e)
		}
		if e.UpdatesPerSec <= 0 {
			t.Errorf("service entry %d (%s): updates_per_sec = %v", i, e.Workload, e.UpdatesPerSec)
		}
		if e.LocalityMean <= 0 || e.LocalityP95 < e.LocalityP50 || e.LocalityMax < e.LocalityP95 {
			t.Errorf("service entry %d (%s): implausible locality quantiles %+v", i, e.Workload, e)
		}
		if e.Reads <= 0 || e.ReadP50Us <= 0 || e.ReadP99Us < e.ReadP50Us {
			t.Errorf("service entry %d (%s): implausible read latency %+v", i, e.Workload, e)
		}
		if !e.Valid {
			t.Errorf("service entry %d (%s): post-churn coloring failed the validity scan", i, e.Workload)
		}
	}
	// The shard-sweep section: every workload replayed at every shard
	// count, sequential anchor first, byte-identical to the sequential
	// replay at every count, and for shards > 1 the parallel path must
	// actually engage with non-degenerate work distribution.
	sweepShards := bench.ShardSweepShards()
	sweepWorkloads := bench.ShardSweepWorkloads(true)
	if len(rep.ShardSweep) != len(sweepShards)*len(sweepWorkloads) {
		t.Fatalf("shard_sweep has %d entries, want %d", len(rep.ShardSweep), len(sweepShards)*len(sweepWorkloads))
	}
	for i, e := range rep.ShardSweep {
		if e.Shards != sweepShards[i%len(sweepShards)] {
			t.Errorf("sweep entry %d: shards = %d, want %d", i, e.Shards, sweepShards[i%len(sweepShards)])
		}
		if e.Workload == "" || e.Nodes <= 0 || e.Updates <= 0 || e.Batches <= 0 || e.UpdatesPerSec <= 0 {
			t.Errorf("sweep entry %d: incomplete measurement %+v", i, e)
		}
		if !e.IdenticalToSeq {
			t.Errorf("sweep entry %d (%s, shards=%d): diverged from the sequential replay", i, e.Workload, e.Shards)
		}
		if !e.Valid {
			t.Errorf("sweep entry %d (%s, shards=%d): failed the validity scan", i, e.Workload, e.Shards)
		}
		if e.Shards > 1 {
			if e.ParallelBatches == 0 {
				t.Errorf("sweep entry %d (%s, shards=%d): parallel path never engaged", i, e.Workload, e.Shards)
			}
			if e.ShardBalance <= 0 || e.ShardBalance > 1 {
				t.Errorf("sweep entry %d (%s, shards=%d): shard balance %v out of (0,1]", i, e.Workload, e.Shards, e.ShardBalance)
			}
		}
	}
	// The durability section: one entry per WAL sync mode in canonical
	// order, each with churn throughput through the durable write path
	// and a timed kill-and-recover that must land identical to the
	// reference replay. SyncOff may legitimately recover an empty
	// prefix (the buffered tail is the price of the mode); batch and
	// always must replay the full script.
	modes := bench.DurabilitySyncModes()
	if len(rep.Durability) != len(modes) {
		t.Fatalf("durability section has %d entries, want %d", len(rep.Durability), len(modes))
	}
	for i, e := range rep.Durability {
		if e.SyncMode != modes[i].String() {
			t.Errorf("durability entry %d: sync_mode = %q, want %q", i, e.SyncMode, modes[i])
		}
		if e.Workload == "" || e.Nodes <= 0 || e.Updates <= 0 || e.Batches <= 0 || e.UpdatesPerSec <= 0 {
			t.Errorf("durability entry %d: incomplete measurement %+v", i, e)
		}
		if e.WALBytes <= 0 {
			t.Errorf("durability entry %d (%s): no WAL bytes written", i, e.SyncMode)
		}
		if !e.RecoveredIdentical {
			t.Errorf("durability entry %d (%s): recovered state diverged from the reference replay", i, e.SyncMode)
		}
		if !e.Valid {
			t.Errorf("durability entry %d (%s): recovered coloring failed the validity scan", i, e.SyncMode)
		}
		if e.SyncMode != "off" {
			if e.ReplayedBatches != e.Batches || e.RecoveredVersion != uint64(e.Batches) {
				t.Errorf("durability entry %d (%s): replayed %d of %d batches (version %d)",
					i, e.SyncMode, e.ReplayedBatches, e.Batches, e.RecoveredVersion)
			}
			if e.ReplayedOps <= 0 || e.RecoveryMsPer100KOps <= 0 {
				t.Errorf("durability entry %d (%s): implausible recovery account %+v", i, e.SyncMode, e)
			}
		}
	}
}
