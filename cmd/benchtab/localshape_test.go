package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"listcolor/internal/bench"
)

// TestLocalBenchShape pins the BENCH_local.json document shape: the
// -local -quick run must emit JSON that round-trips into
// LocalBenchReport with no unknown fields, carries the recorded
// baseline plus one map-ref/palette entry pair per quick workload, and
// reports identical SelectionOps for both implementations of each
// workload (the differential guarantee the kernel was built under).
// Timing fields are machine-dependent and only checked for sanity.
func TestLocalBenchShape(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-local", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("run -local -quick = %d, stderr: %s", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep bench.LocalBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_local.json shape drifted: %v", err)
	}
	if rep.GeneratedAt == "" || rep.Note == "" {
		t.Error("missing generated_at or note")
	}
	if len(rep.Baseline) == 0 {
		t.Error("recorded baseline missing")
	}
	for _, e := range rep.Baseline {
		if e.Impl != bench.ImplMapRef {
			t.Errorf("baseline entry %s has impl %q, want %q", e.Workload, e.Impl, bench.ImplMapRef)
		}
	}
	quick := bench.LocalWorkloads(true)
	if want := 2 * len(quick); len(rep.Current) != want {
		t.Fatalf("current has %d entries, want %d", len(rep.Current), want)
	}
	ops := map[string]map[string]int64{}
	for _, e := range rep.Current {
		if e.Impl != bench.ImplMapRef && e.Impl != bench.ImplPalette {
			t.Errorf("unknown impl %q", e.Impl)
		}
		if e.NsPerOp <= 0 || e.SelectionOps <= 0 || e.Lambda <= 0 {
			t.Errorf("%s/%s: implausible measurement %+v", e.Workload, e.Impl, e)
		}
		if ops[e.Workload] == nil {
			ops[e.Workload] = map[string]int64{}
		}
		ops[e.Workload][e.Impl] = e.SelectionOps
	}
	for _, w := range quick {
		m := ops[w.Name]
		if m == nil {
			t.Fatalf("workload %s missing from current", w.Name)
		}
		if m[bench.ImplMapRef] != m[bench.ImplPalette] {
			t.Errorf("%s: selection_ops diverge: map-ref %d, palette %d",
				w.Name, m[bench.ImplMapRef], m[bench.ImplPalette])
		}
	}
}
