// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per theorem-validation experiment (E1–E16;
// see DESIGN.md's experiment index).
//
// Examples:
//
//	benchtab                 # run everything
//	benchtab -run E4         # one experiment
//	benchtab -quick          # smaller sweeps
//	benchtab -markdown       # markdown output (for EXPERIMENTS.md)
//	benchtab -sim            # engine round-throughput JSON (BENCH_sim.json)
//	benchtab -graph          # alias for -sim (graph_build substrate rows)
//	benchtab -local          # local selection kernel JSON (BENCH_local.json)
//	benchtab -harness        # sweep-scheduler throughput JSON (BENCH_harness.json)
//	benchtab -parallel 1     # force the sequential scheduler (same bytes)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"listcolor/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID        = fs.String("run", "", "run a single experiment by ID (e.g. E4); empty = all")
		quick        = fs.Bool("quick", false, "smaller parameter sweeps")
		seed         = fs.Int64("seed", 1, "workload seed")
		markdown     = fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		outPath      = fs.String("o", "", "write output to a file instead of stdout")
		simBench     = fs.Bool("sim", false, "measure simulator round throughput and emit BENCH_sim.json content")
		graphBench   = fs.Bool("graph", false, "alias for -sim: the graph_build substrate rows live in BENCH_sim.json")
		localBench   = fs.Bool("local", false, "measure local selection kernel and emit BENCH_local.json content")
		harnessBench = fs.Bool("harness", false, "measure sweep-scheduler throughput and emit BENCH_harness.json content")
		parallel     = fs.Int("parallel", 0, "sweep worker budget (0 = GOMAXPROCS, 1 = sequential); tables are bit-identical for every value")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "benchtab:", err)
			}
		}()
		out = f
	}

	if *simBench || *graphBench {
		if err := runSimBench(out, *quick); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		return 0
	}

	if *localBench {
		if err := runLocalBench(out, *quick); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		return 0
	}

	if *harnessBench {
		if err := runHarnessBench(out, *quick, *seed); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		return 0
	}

	opt := bench.Options{Seed: *seed, Quick: *quick, Parallel: *parallel}
	var tables []bench.Table
	if *runID != "" {
		tb, err := bench.Run(*runID, opt)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		tables = []bench.Table{tb}
	} else {
		tables = bench.All(opt)
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if *markdown {
			fmt.Fprint(out, tb.Markdown())
		} else {
			fmt.Fprint(out, tb.Format())
		}
	}
	return 0
}

// runSimBench measures engine round throughput (bench.RunSimBench) and
// writes the BENCH_sim.json document: current numbers next to the
// recorded pre-arena baseline, so the speedup is visible in one file.
func runSimBench(out io.Writer, quick bool) error {
	cur, err := bench.RunSimBench(quick)
	if err != nil {
		return err
	}
	scale, err := bench.RunSimScale(quick)
	if err != nil {
		return err
	}
	graphBuild, err := bench.RunGraphBuildBench(quick)
	if err != nil {
		return err
	}
	rep := bench.SimBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Note: "Engine round-throughput on the chatter protocol (broadcast 16-bit payload per round). " +
			"baseline = pre-arena router (per-round inbox allocation + per-inbox sort), recorded once; " +
			"current = this build; scale = streamed CSR instances at 10^6-10^7 nodes (docs/MEMORY.md). " +
			"graph_build = parallel substrate: segmented multi-core CSR builds and the range-partitioned " +
			"defect audit vs their sequential references. identical_to_seq / audit_identical_to_seq verify " +
			"the byte-identity contract at every worker count; speedups are bounded by the host's core " +
			"count — on a single-CPU container they hover near 1 and the identity and segment_balance " +
			"columns carry the signal. " +
			"Refresh with `make bench-sim` (or `make bench-graph`).",
		Baseline:   bench.SimBenchBaseline(),
		Current:    cur,
		Scale:      scale,
		GraphBuild: graphBuild,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runHarnessBench measures the sweep scheduler (bench.RunHarnessBench)
// and writes the BENCH_harness.json document: the full registry timed
// sequentially and under increasing worker budgets, with cache reuse
// counters and the byte-identity verdict for every parallel run, next
// to the recorded sequential baseline.
func runHarnessBench(out io.Writer, quick bool, seed int64) error {
	cur, err := bench.RunHarnessBench(quick, seed)
	if err != nil {
		return err
	}
	svc, err := bench.RunServiceBench(quick)
	if err != nil {
		return err
	}
	sweep, err := bench.RunShardSweepBench(quick)
	if err != nil {
		return err
	}
	durab, err := bench.RunDurabilityBench(quick)
	if err != nil {
		return err
	}
	rep := bench.HarnessBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Note: "Sweep-scheduler throughput: one full bench.All per worker budget (best of 3). " +
			"baseline = sequential harness (workers=1), recorded once on the reference container; " +
			"current = this build. tables_identical_to_sequential verifies the determinism contract on every run. " +
			"Speedups are bounded by the host's core count — on a single-CPU container parallel wall time " +
			"matches sequential, and only the byte-identity and cache columns carry information. " +
			"service = incremental coloring service under churn: updates/sec through the single-writer " +
			"apply loop (repair included), recolor locality per batch, and read latency through " +
			"net/http/httptest while a writer keeps applying batches. " +
			"shard_sweep = the sharded write path replaying one deterministic spatially-local churn " +
			"script at every shard count: identical_to_seq verifies colors and per-batch reports are " +
			"byte-identical to shards=1, and shard_balance/parallel_batches/deferred_ops give the " +
			"deterministic work-distribution account. speedup_vs_seq is bounded by the host's core " +
			"count — on a single-CPU container it hovers near 1 and the distribution columns carry " +
			"the signal. " +
			"durability = the crash-safety layer priced per WAL sync mode (off / batch / always): the same " +
			"churn script through the durable write path, then a simulated kill (no final checkpoint, no " +
			"flush) and a timed recovery; recovery_ms_per_100k_ops is the replay-cost unit the checkpoint " +
			"cadence is tuned against, and recovered_identical verifies the recovered colors equal a fresh " +
			"reference replay of the recovered prefix. " +
			"Refresh with `make bench-harness` (or `make bench-service` / `make bench-service-shards`, same file).",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Baseline:   bench.HarnessBenchBaseline(),
		Current:    cur,
		Service:    svc,
		ShardSweep: sweep,
		Durability: durab,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runLocalBench measures the node-local selection kernel
// (bench.RunLocalBench) and writes the BENCH_local.json document:
// current numbers for both the palette kernel and the retained
// map-based reference, next to the recorded pre-kernel baseline.
func runLocalBench(out io.Writer, quick bool) error {
	cur, err := bench.RunLocalBench(quick)
	if err != nil {
		return err
	}
	rep := bench.LocalBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Note: "Phase-I selection local computation (one top-p selection per op; Λ = Δ list over a 2Δ color space). " +
			"baseline = pre-kernel map-based selection (per-call index slice + map k lookups), recorded once; " +
			"current = this build, both implementations. Refresh with `make bench-local`.",
		Baseline: bench.LocalBenchBaseline(),
		Current:  cur,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
