// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per theorem-validation experiment (E1–E12;
// see DESIGN.md's experiment index).
//
// Examples:
//
//	benchtab                 # run everything
//	benchtab -run E4         # one experiment
//	benchtab -quick          # smaller sweeps
//	benchtab -markdown       # markdown output (for EXPERIMENTS.md)
//	benchtab -sim            # engine round-throughput JSON (BENCH_sim.json)
//	benchtab -local          # local selection kernel JSON (BENCH_local.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"listcolor/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runID      = fs.String("run", "", "run a single experiment by ID (e.g. E4); empty = all")
		quick      = fs.Bool("quick", false, "smaller parameter sweeps")
		seed       = fs.Int64("seed", 1, "workload seed")
		markdown   = fs.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		outPath    = fs.String("o", "", "write output to a file instead of stdout")
		simBench   = fs.Bool("sim", false, "measure simulator round throughput and emit BENCH_sim.json content")
		localBench = fs.Bool("local", false, "measure local selection kernel and emit BENCH_local.json content")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "benchtab:", err)
			}
		}()
		out = f
	}

	if *simBench {
		if err := runSimBench(out, *quick); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		return 0
	}

	if *localBench {
		if err := runLocalBench(out, *quick); err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		return 0
	}

	opt := bench.Options{Seed: *seed, Quick: *quick}
	var tables []bench.Table
	if *runID != "" {
		tb, err := bench.Run(*runID, opt)
		if err != nil {
			fmt.Fprintln(stderr, "benchtab:", err)
			return 1
		}
		tables = []bench.Table{tb}
	} else {
		tables = bench.All(opt)
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if *markdown {
			fmt.Fprint(out, tb.Markdown())
		} else {
			fmt.Fprint(out, tb.Format())
		}
	}
	return 0
}

// runSimBench measures engine round throughput (bench.RunSimBench) and
// writes the BENCH_sim.json document: current numbers next to the
// recorded pre-arena baseline, so the speedup is visible in one file.
func runSimBench(out io.Writer, quick bool) error {
	cur, err := bench.RunSimBench(quick)
	if err != nil {
		return err
	}
	rep := bench.SimBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Note: "Engine round-throughput on the chatter protocol (broadcast 16-bit payload per round). " +
			"baseline = pre-arena router (per-round inbox allocation + per-inbox sort), recorded once; " +
			"current = this build. Refresh with `make bench-sim`.",
		Baseline: bench.SimBenchBaseline(),
		Current:  cur,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// runLocalBench measures the node-local selection kernel
// (bench.RunLocalBench) and writes the BENCH_local.json document:
// current numbers for both the palette kernel and the retained
// map-based reference, next to the recorded pre-kernel baseline.
func runLocalBench(out io.Writer, quick bool) error {
	cur, err := bench.RunLocalBench(quick)
	if err != nil {
		return err
	}
	rep := bench.LocalBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Note: "Phase-I selection local computation (one top-p selection per op; Λ = Δ list over a 2Δ color space). " +
			"baseline = pre-kernel map-based selection (per-call index slice + map k lookups), recorded once; " +
			"current = this build, both implementations. Refresh with `make bench-local`.",
		Baseline: bench.LocalBenchBaseline(),
		Current:  cur,
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
