// Command benchtab regenerates the experiment tables recorded in
// EXPERIMENTS.md: one table per theorem-validation experiment (E1–E12;
// see DESIGN.md's experiment index).
//
// Examples:
//
//	benchtab                 # run everything
//	benchtab -run E4         # one experiment
//	benchtab -quick          # smaller sweeps
//	benchtab -markdown       # markdown output (for EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"

	"listcolor/internal/bench"
)

func main() {
	var (
		run      = flag.String("run", "", "run a single experiment by ID (e.g. E4); empty = all")
		quick    = flag.Bool("quick", false, "smaller parameter sweeps")
		seed     = flag.Int64("seed", 1, "workload seed")
		markdown = flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
		outPath  = flag.String("o", "", "write output to a file instead of stdout")
	)
	flag.Parse()

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab:", err)
				os.Exit(1)
			}
		}()
		out = f
	}

	opt := bench.Options{Seed: *seed, Quick: *quick}
	var tables []bench.Table
	if *run != "" {
		tb, err := bench.Run(*run, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		tables = []bench.Table{tb}
	} else {
		tables = bench.All(opt)
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if *markdown {
			fmt.Fprint(out, tb.Markdown())
		} else {
			fmt.Fprint(out, tb.Format())
		}
	}
}
