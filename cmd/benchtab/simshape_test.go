package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"listcolor/internal/bench"
)

// TestSimBenchShape pins the BENCH_sim.json document shape: the -sim
// -quick run must emit JSON that round-trips into SimBenchReport with
// no unknown fields, carry one entry per (workload, driver) pair in
// both current and scale sections, and report plausible throughput and
// memory figures. Timing is machine-dependent and only sanity-checked.
func TestSimBenchShape(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sim", "-quick"}, &out, &errb); code != 0 {
		t.Fatalf("run -sim -quick = %d, stderr: %s", code, errb.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out.Bytes()))
	dec.DisallowUnknownFields()
	var rep bench.SimBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("BENCH_sim.json shape drifted: %v", err)
	}
	if rep.GeneratedAt == "" || rep.Note == "" {
		t.Error("missing generated_at or note")
	}
	if len(rep.Baseline) == 0 {
		t.Error("recorded baseline missing")
	}
	if want := 3 * len(bench.SimWorkloads(true)); len(rep.Current) != want {
		t.Fatalf("current has %d entries, want %d (3 drivers per workload)", len(rep.Current), want)
	}
	for _, e := range rep.Current {
		if e.RoundsPerSec <= 0 || e.NsPerRound <= 0 || e.Nodes <= 0 || e.MsgsPerRound <= 0 {
			t.Errorf("%s/%s: implausible measurement %+v", e.Workload, e.Driver, e)
		}
	}
	if want := 2 * len(bench.SimScaleWorkloads(true)); len(rep.Scale) != want {
		t.Fatalf("scale has %d entries, want %d (lockstep + workers per workload)", len(rep.Scale), want)
	}
	for _, e := range rep.Scale {
		if e.RoundsPerSec <= 0 || e.Nodes <= 0 || e.Edges <= 0 || e.Shards < 1 ||
			e.HeapLiveBytes == 0 || e.PeakRSSBytes == 0 || e.BytesPerNode <= 0 {
			t.Errorf("scale %s/%s: implausible measurement %+v", e.Workload, e.Driver, e)
		}
	}
}

// TestCommittedSimBenchScaleRows checks the repo's BENCH_sim.json
// still carries the web-scale evidence: decodable with no unknown
// fields, with scale rows at 10⁶ and 10⁷ nodes reporting positive
// round throughput and peak RSS.
func TestCommittedSimBenchScaleRows(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_sim.json")
	if err != nil {
		t.Fatalf("read committed BENCH_sim.json: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rep bench.SimBenchReport
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("committed BENCH_sim.json shape drifted: %v", err)
	}
	sizes := map[int]bool{}
	for _, e := range rep.Scale {
		if e.RoundsPerSec <= 0 || e.PeakRSSBytes == 0 {
			t.Errorf("scale row %s/%s lacks throughput or RSS: %+v", e.Workload, e.Driver, e)
		}
		sizes[e.Nodes] = true
	}
	for _, n := range []int{1_000_000, 10_000_000} {
		if !sizes[n] {
			t.Errorf("committed BENCH_sim.json has no scale row at n=%d", n)
		}
	}
}
