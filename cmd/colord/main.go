// Command colord is the incremental coloring daemon: it builds a
// streamed graph substrate, initializes a valid list defective
// coloring, and then maintains it under churn — either as an HTTP
// server (POST /v1/updates, GET /v1/color/{node}, GET /v1/colors,
// GET /v1/stats, GET /healthz, GET /readyz) or as a scripted offline
// churn run that applies a deterministic update stream, scans validity
// between batches, and prints the maintenance account.
//
// With -data-dir the service is durable: every batch is written to a
// checksummed WAL before it applies, periodic checkpoints bound replay,
// and restart recovers the exact pre-crash state (reads serve the
// restored checkpoint while replay runs; /readyz says 503 until it
// finishes). SIGINT/SIGTERM drain gracefully: the listener stops
// accepting, queued batches apply, and a final checkpoint lands before
// exit.
//
// Examples:
//
//	colord -graph ring -n 1000000 -addr :8080
//	colord -graph ring -n 100000 -data-dir /var/lib/colord -wal-sync batch
//	colord -graph gnp -n 100000 -prob 0.0001 -churn 100000 -batch 1000
//	colord -graph powerlaw -n 1000000 -k 4 -churn 100000 -verify
//	colord -chaos 200 -seed 7
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole daemon, testable: flags in, exit code out, and the
// context carries the SIGINT/SIGTERM shutdown signal.
func run(ctx context.Context, args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("colord", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		graphKind = fs.String("graph", "ring", "graph family: ring|gnp|powerlaw (streamed CSR builds)")
		n         = fs.Int("n", 1_000_000, "number of vertices")
		prob      = fs.Float64("prob", 1e-5, "edge probability for gnp")
		k         = fs.Int("k", 3, "attachment count for powerlaw")
		seed      = fs.Int64("seed", 1, "graph, churn and chaos seed")
		headroom  = fs.Int("headroom", 4, "palette size = max degree + headroom (shared full-palette lists)")
		defect    = fs.Int("defect", 0, "defect budget per list color")
		budget    = fs.Int("budget", 0, "repair round budget per batch (0 = 2n+16)")
		compact   = fs.Int("compact", 0, "overlay compaction threshold in patched vertices (0 = max(1024, n/8))")
		shards    = fs.Int("shards", 0, "write-path shards for parallel batch apply (0 or 1 = sequential)")
		addr      = fs.String("addr", ":8080", "HTTP listen address (server mode)")
		pprofAddr = fs.String("pprof", "", "expose net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		churn     = fs.Int("churn", 0, "scripted mode: apply this many updates and exit (0 = serve HTTP)")
		batch     = fs.Int("batch", 1000, "scripted mode: updates per batch")
		verify    = fs.Bool("verify", false, "scripted mode: full conflict scan after every batch")

		dataDir   = fs.String("data-dir", "", "durability: WAL + checkpoint directory (empty = in-memory only)")
		walSync   = fs.String("wal-sync", "batch", "WAL durability: off|batch|always")
		ckptEvery = fs.Int("checkpoint-every", 256, "batches between checkpoints (bounds replay)")
		queueCap  = fs.Int("queue", 256, "server mode: bounded ingest queue capacity (overflow = 503)")
		maxBody   = fs.Int64("max-body", 8<<20, "server mode: POST /v1/updates body cap in bytes (413 above)")
		reqTO     = fs.Duration("request-timeout", 30*time.Second, "server mode: per-write deadline (queue wait + apply)")
		drainTO   = fs.Duration("drain", 10*time.Second, "shutdown: graceful drain deadline")
		chaosPts  = fs.Int("chaos", 0, "run the crash/corruption kill-point matrix with this many points and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *chaosPts > 0 {
		return runChaosMode(out, errw, *seed, *chaosPts)
	}

	syncMode, err := service.ParseSyncMode(*walSync)
	if err != nil {
		fmt.Fprintf(errw, "colord: %v\n", err)
		return 2
	}

	if *pprofAddr != "" {
		// The default mux already carries the pprof handlers via the
		// blank import; serve it on its own hardened listener so
		// profiling traffic never mixes with the service API.
		pprofSrv := hardenedServer(*pprofAddr, http.DefaultServeMux)
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(errw, "colord: pprof listener: %v\n", err)
			}
		}()
		fmt.Fprintf(out, "pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	start := time.Now()
	var base *graph.CSR
	switch *graphKind {
	case "ring":
		base = graph.StreamedRing(*n)
	case "gnp":
		base = graph.StreamedGNP(*n, *prob, *seed)
	case "powerlaw":
		base = graph.StreamedPowerLaw(*n, *k, *seed)
	default:
		fmt.Fprintf(errw, "colord: unknown graph family %q\n", *graphKind)
		return 2
	}
	fmt.Fprintf(out, "substrate: %v built in %.2fs\n", base, time.Since(start).Seconds())

	space := base.RawMaxDegree() + *headroom
	if space < 3 {
		space = 3
	}
	opts := service.Options{
		RoundBudget:      *budget,
		CompactThreshold: *compact,
		Shards:           *shards,
	}
	dopts := service.DurableOptions{
		Dir:             *dataDir,
		Sync:            syncMode,
		CheckpointEvery: *ckptEvery,
	}

	health := &service.Health{}
	health.SetRecovering()

	// The ingest queue forwards to whichever writer exists: the
	// durable wrapper once recovery installs it, or the plain service.
	// The health gate rejects writes until the pointer is set.
	var durable atomic.Pointer[service.Durable]
	var plain atomic.Pointer[service.Service]
	applyBatch := func(ops []service.Op) (service.BatchReport, error) {
		if d := durable.Load(); d != nil {
			return d.ApplyBatch(ops)
		}
		if s := plain.Load(); s != nil {
			return s.ApplyBatch(ops)
		}
		return service.BatchReport{}, errors.New("colord: writer not ready")
	}

	serverMode := *churn == 0
	ingest := service.NewIngest(applyBatch, *queueCap)
	var srv *http.Server
	var serveErr = make(chan error, 1)
	var startOnce sync.Once
	startServing := func(s *service.Service) {
		startOnce.Do(func() {
			handler := service.NewHandlerWithOptions(s, service.HandlerOptions{
				Ingest: ingest,
				Health: health,
				// The durable handle only exists once recovery returns;
				// fetch its stats lazily so a server that starts serving
				// degraded reads mid-replay still reports durability
				// counters afterwards.
				DurableStats: func() *service.DurabilityStats {
					if d := durable.Load(); d != nil {
						ds := d.DurabilityStats()
						return &ds
					}
					return nil
				},
				MaxBody:        *maxBody,
				RequestTimeout: *reqTO,
			})
			srv = hardenedServer(*addr, handler)
			go func() { serveErr <- srv.ListenAndServe() }()
			fmt.Fprintf(out, "listening on %s\n", *addr)
		})
	}

	var svc *service.Service
	var d *service.Durable
	if *dataDir != "" {
		if serverMode {
			// Start serving degraded reads the moment the checkpoint is
			// restored; replay publishes snapshots batch by batch while
			// /readyz answers 503.
			dopts.BeforeReplay = func(s *service.Service, pending int) {
				if pending > 0 {
					fmt.Fprintf(out, "recovery: replaying %d WAL batches (reads live, degraded)\n", pending)
				}
				startServing(s)
			}
		}
		var info *service.RecoveryInfo
		d, info, err = service.OpenDurable(opts, dopts)
		switch {
		case err == nil:
			svc = d.Service()
			fmt.Fprintf(out, "recovered: checkpoint v%d + %d replayed batches -> v%d\n",
				info.CheckpointVersion, info.ReplayedBatches, info.Version)
			if info.Tail != nil {
				fmt.Fprintf(out, "recovered: discarded torn WAL tail (%s)\n", info.Tail.Reason)
			}
		case errors.Is(err, os.ErrNotExist):
			// Fresh data dir: initialize and checkpoint version 0.
			svc, err = initService(out, base, space, *defect, opts)
			if err != nil {
				fmt.Fprintf(errw, "colord: %v\n", err)
				return 1
			}
			d, err = service.NewDurable(svc, dopts)
			if err != nil {
				fmt.Fprintf(errw, "colord: durability init: %v\n", err)
				return 1
			}
			fmt.Fprintf(out, "durability: fresh data dir %s (wal-sync=%s, checkpoint-every=%d)\n",
				*dataDir, syncMode, *ckptEvery)
		default:
			fmt.Fprintf(errw, "colord: recovery: %v\n", err)
			return 1
		}
		durable.Store(d)
		defer d.Close()
	} else {
		svc, err = initService(out, base, space, *defect, opts)
		if err != nil {
			fmt.Fprintf(errw, "colord: %v\n", err)
			return 1
		}
		plain.Store(svc)
	}
	health.SetReady()

	if !serverMode {
		code := runChurn(ctx, out, errw, svc, applyBatch, space, *churn, *batch, *seed, *verify)
		if d != nil {
			if err := d.Close(); err != nil {
				fmt.Fprintf(errw, "colord: final checkpoint: %v\n", err)
				return 1
			}
		}
		return code
	}

	startServing(svc)
	select {
	case err := <-serveErr:
		fmt.Fprintf(errw, "colord: serve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, let in-flight requests finish,
	// apply what the queue already accepted, then checkpoint and close
	// the WAL so restart replays nothing.
	fmt.Fprintf(out, "shutdown: draining (deadline %s)\n", *drainTO)
	health.SetDraining()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(errw, "colord: http shutdown: %v\n", err)
	}
	if err := ingest.Drain(drainCtx); err != nil {
		fmt.Fprintf(errw, "colord: ingest drain: %v\n", err)
	}
	if d != nil {
		if err := d.Close(); err != nil {
			fmt.Fprintf(errw, "colord: final checkpoint: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(out, "shutdown: complete at version %d\n", svc.Snapshot().Version)
	return 0
}

// hardenedServer applies the slowloris-resistant timeouts to every
// listener colord opens (API and pprof alike).
func hardenedServer(addr string, handler http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// initService builds the coloring service over the substrate.
func initService(out io.Writer, base *graph.CSR, space, defect int, opts service.Options) (*service.Service, error) {
	start := time.Now()
	svc, err := service.New(base, sharedPalette(base.N(), space, defect), nil, opts)
	if err != nil {
		return nil, fmt.Errorf("service init: %w", err)
	}
	fmt.Fprintf(out, "coloring: %d nodes over palette [0,%d) initialized in %.2fs\n",
		svc.N(), space, time.Since(start).Seconds())
	return svc, nil
}

// runChaosMode executes the kill-point matrix and prints its report.
func runChaosMode(out, errw io.Writer, seed int64, points int) int {
	fmt.Fprintf(out, "chaos: %d kill points, seed %d\n", points, seed)
	rep, err := service.RunChaos(service.ChaosConfig{
		Seed:   seed,
		Points: points,
		Log: func(format string, args ...any) {
			fmt.Fprintf(out, format+"\n", args...)
		},
	})
	enc, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Fprintln(out, string(enc))
	if err != nil {
		fmt.Fprintf(errw, "colord: chaos: %v\n", err)
		return 1
	}
	fmt.Fprintln(out, "chaos: zero validity violations, full recovery at every kill point")
	return 0
}

// sharedPalette gives every node the full palette [0, space) with a
// uniform defect budget — the maintenance-friendly instance shape:
// feasibility survives any churn that keeps degrees below
// space·(defect+1).
func sharedPalette(n, space, defect int) *coloring.Instance {
	full := make([]int, space)
	defs := make([]int, space)
	for i := range full {
		full[i] = i
		defs[i] = defect
	}
	inst := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = defs
	}
	return inst
}

// runChurn is the scripted mode: a deterministic random edge churn
// stream (inserts and deletes in roughly equal measure, degrees kept
// within palette feasibility), applied in batches through the given
// writer with the maintenance account printed at the end. With -verify
// every batch is followed by a full conflict scan; any violation exits
// nonzero. Context cancellation (SIGTERM) stops between batches — with
// a durable writer the state on disk stays recoverable.
func runChurn(ctx context.Context, out, errw io.Writer, svc *service.Service,
	apply func([]service.Op) (service.BatchReport, error),
	space, churn, batchSize int, seed int64, verify bool) int {
	rng := rand.New(rand.NewSource(seed * 7919))
	applied, batches, maxRounds, violations := 0, 0, 0, 0
	scans, scannedArcs, scanSec := 0, int64(0), 0.0
	start := time.Now()
	probe := newEdgeProbe(svc)
	interrupted := false
	for applied < churn {
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		var ops []service.Op
		for len(ops) < batchSize {
			u, v := rng.Intn(svc.N()), rng.Intn(svc.N())
			if u == v {
				continue
			}
			switch {
			case probe.hasEdge(u, v):
				ops = append(ops, service.Op{Action: service.OpRemoveEdge, U: u, V: v})
				probe.note(u, v, false)
			case probe.degree(u) < space-2 && probe.degree(v) < space-2:
				ops = append(ops, service.Op{Action: service.OpAddEdge, U: u, V: v})
				probe.note(u, v, true)
			}
		}
		rep, err := apply(ops)
		if err != nil {
			fmt.Fprintf(errw, "colord: batch %d: %v\n", batches, err)
			return 1
		}
		probe.reset()
		applied += rep.Applied
		batches++
		if rep.Rounds > maxRounds {
			maxRounds = rep.Rounds
		}
		if verify {
			scanStart := time.Now()
			rep := svc.AuditState(0) // parallel defect-audit kernel, auto worker count
			scanSec += time.Since(scanStart).Seconds()
			scannedArcs += rep.ScannedArcs
			scans++
			if err := rep.Err(); err != nil {
				violations++
				fmt.Fprintf(errw, "VALIDITY VIOLATION after batch %d: %v\n", batches, err)
			}
		}
	}
	elapsed := time.Since(start).Seconds()

	st := svc.Stats()
	fmt.Fprintf(out, "churn: %d updates in %d batches, %.2fs wall (%.0f upd/s), max %d repair rounds/batch\n",
		applied, batches, elapsed, float64(applied)/elapsed, maxRounds)
	enc, _ := json.MarshalIndent(st, "", "  ")
	fmt.Fprintln(out, string(enc))
	if interrupted {
		fmt.Fprintf(out, "churn: interrupted by signal after %d batches (state checkpointed on close)\n", batches)
	}
	if verify {
		if scanSec > 0 {
			fmt.Fprintf(out, "audit: %d scans, %d arcs in %.2fs (%.0f arcs/s)\n",
				scans, scannedArcs, scanSec, float64(scannedArcs)/scanSec)
		}
		if violations > 0 {
			fmt.Fprintf(errw, "colord: %d validity violations\n", violations)
			return 1
		}
		fmt.Fprintln(out, "verified: zero validity violations between batches")
	}
	return 0
}

// edgeProbe answers hasEdge/degree questions for churn generation:
// the service's read API plus the delta of the current (not yet
// applied) batch, reset once the batch lands. Since the generator is
// the only writer, its view stays exact.
type edgeProbe struct {
	svc   *service.Service
	delta map[[2]int]bool // edge states pending in the current batch
	deg   map[int]int     // degree deltas pending in the current batch
}

func newEdgeProbe(svc *service.Service) *edgeProbe {
	return &edgeProbe{svc: svc, delta: make(map[[2]int]bool), deg: make(map[int]int)}
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (p *edgeProbe) hasEdge(u, v int) bool {
	if state, ok := p.delta[key(u, v)]; ok {
		return state
	}
	return p.svc.HasEdge(u, v)
}

func (p *edgeProbe) degree(v int) int {
	return p.svc.DegreeOf(v) + p.deg[v]
}

func (p *edgeProbe) reset() {
	clear(p.delta)
	clear(p.deg)
}

func (p *edgeProbe) note(u, v int, present bool) {
	p.delta[key(u, v)] = present
	d := -1
	if present {
		d = 1
	}
	p.deg[u] += d
	p.deg[v] += d
}
