// Command colord is the incremental coloring daemon: it builds a
// streamed graph substrate, initializes a valid list defective
// coloring, and then maintains it under churn — either as an HTTP
// server (POST /v1/updates, GET /v1/color/{node}, GET /v1/colors,
// GET /v1/stats) or as a scripted offline churn run that applies a
// deterministic update stream, scans validity between batches, and
// prints the maintenance account.
//
// Examples:
//
//	colord -graph ring -n 1000000 -addr :8080
//	colord -graph gnp -n 100000 -prob 0.0001 -churn 100000 -batch 1000
//	colord -graph powerlaw -n 1000000 -k 4 -churn 100000 -verify
//	colord -graph ring -n 1000000 -shards 4 -pprof localhost:6060
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/service"
)

func main() {
	var (
		graphKind = flag.String("graph", "ring", "graph family: ring|gnp|powerlaw (streamed CSR builds)")
		n         = flag.Int("n", 1_000_000, "number of vertices")
		prob      = flag.Float64("prob", 1e-5, "edge probability for gnp")
		k         = flag.Int("k", 3, "attachment count for powerlaw")
		seed      = flag.Int64("seed", 1, "graph and churn seed")
		headroom  = flag.Int("headroom", 4, "palette size = max degree + headroom (shared full-palette lists)")
		defect    = flag.Int("defect", 0, "defect budget per list color")
		budget    = flag.Int("budget", 0, "repair round budget per batch (0 = 2n+16)")
		compact   = flag.Int("compact", 0, "overlay compaction threshold in patched vertices (0 = max(1024, n/8))")
		shards    = flag.Int("shards", 0, "write-path shards for parallel batch apply (0 or 1 = sequential)")
		addr      = flag.String("addr", ":8080", "HTTP listen address (server mode)")
		pprofAddr = flag.String("pprof", "", "expose net/http/pprof on this address (e.g. localhost:6060; empty = off)")
		churn     = flag.Int("churn", 0, "scripted mode: apply this many updates and exit (0 = serve HTTP)")
		batch     = flag.Int("batch", 1000, "scripted mode: updates per batch")
		verify    = flag.Bool("verify", false, "scripted mode: full conflict scan after every batch")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// The default mux already carries the pprof handlers via the
		// blank import; serve it on its own listener so profiling
		// traffic never mixes with the service API.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "colord: pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	start := time.Now()
	var base *graph.CSR
	switch *graphKind {
	case "ring":
		base = graph.StreamedRing(*n)
	case "gnp":
		base = graph.StreamedGNP(*n, *prob, *seed)
	case "powerlaw":
		base = graph.StreamedPowerLaw(*n, *k, *seed)
	default:
		fatalf("unknown graph family %q", *graphKind)
	}
	fmt.Printf("substrate: %v built in %.2fs\n", base, time.Since(start).Seconds())

	space := base.RawMaxDegree() + *headroom
	if space < 3 {
		space = 3
	}
	inst := sharedPalette(base.N(), space, *defect)

	start = time.Now()
	svc, err := service.New(base, inst, nil, service.Options{
		RoundBudget:      *budget,
		CompactThreshold: *compact,
		Shards:           *shards,
	})
	if err != nil {
		fatalf("service init: %v", err)
	}
	fmt.Printf("coloring: %d nodes over palette [0,%d) initialized in %.2fs\n",
		svc.N(), space, time.Since(start).Seconds())

	if *churn > 0 {
		runChurn(svc, space, *churn, *batch, *seed, *verify)
		return
	}

	fmt.Printf("listening on %s\n", *addr)
	if err := http.ListenAndServe(*addr, service.NewHandler(svc)); err != nil {
		fatalf("serve: %v", err)
	}
}

// sharedPalette gives every node the full palette [0, space) with a
// uniform defect budget — the maintenance-friendly instance shape:
// feasibility survives any churn that keeps degrees below
// space·(defect+1).
func sharedPalette(n, space, defect int) *coloring.Instance {
	full := make([]int, space)
	defs := make([]int, space)
	for i := range full {
		full[i] = i
		defs[i] = defect
	}
	inst := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = defs
	}
	return inst
}

// runChurn is the scripted mode: a deterministic random edge churn
// stream (inserts and deletes in roughly equal measure, degrees kept
// within palette feasibility), applied in batches with the
// maintenance account printed at the end. With -verify every batch is
// followed by a full conflict scan; any violation exits nonzero.
func runChurn(svc *service.Service, space, churn, batchSize int, seed int64, verify bool) {
	rng := rand.New(rand.NewSource(seed * 7919))
	applied, batches, maxRounds, violations := 0, 0, 0, 0
	scans, scannedArcs, scanSec := 0, int64(0), 0.0
	start := time.Now()
	probe := newEdgeProbe(svc)
	for applied < churn {
		var ops []service.Op
		for len(ops) < batchSize {
			u, v := rng.Intn(svc.N()), rng.Intn(svc.N())
			if u == v {
				continue
			}
			switch {
			case probe.hasEdge(u, v):
				ops = append(ops, service.Op{Action: service.OpRemoveEdge, U: u, V: v})
				probe.note(u, v, false)
			case probe.degree(u) < space-2 && probe.degree(v) < space-2:
				ops = append(ops, service.Op{Action: service.OpAddEdge, U: u, V: v})
				probe.note(u, v, true)
			}
		}
		rep, err := svc.ApplyBatch(ops)
		if err != nil {
			fatalf("batch %d: %v", batches, err)
		}
		probe.reset()
		applied += rep.Applied
		batches++
		if rep.Rounds > maxRounds {
			maxRounds = rep.Rounds
		}
		if verify {
			scanStart := time.Now()
			rep := svc.AuditState(0) // parallel defect-audit kernel, auto worker count
			scanSec += time.Since(scanStart).Seconds()
			scannedArcs += rep.ScannedArcs
			scans++
			if err := rep.Err(); err != nil {
				violations++
				fmt.Fprintf(os.Stderr, "VALIDITY VIOLATION after batch %d: %v\n", batches, err)
			}
		}
	}
	elapsed := time.Since(start).Seconds()

	st := svc.Stats()
	fmt.Printf("churn: %d updates in %d batches, %.2fs wall (%.0f upd/s), max %d repair rounds/batch\n",
		applied, batches, elapsed, float64(applied)/elapsed, maxRounds)
	out, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(out))
	if verify {
		if scanSec > 0 {
			fmt.Printf("audit: %d scans, %d arcs in %.2fs (%.0f arcs/s)\n",
				scans, scannedArcs, scanSec, float64(scannedArcs)/scanSec)
		}
		if violations > 0 {
			fatalf("%d validity violations", violations)
		}
		fmt.Println("verified: zero validity violations between batches")
	}
}

// edgeProbe answers hasEdge/degree questions for churn generation:
// the service's read API plus the delta of the current (not yet
// applied) batch, reset once the batch lands. Since the generator is
// the only writer, its view stays exact.
type edgeProbe struct {
	svc   *service.Service
	delta map[[2]int]bool // edge states pending in the current batch
	deg   map[int]int     // degree deltas pending in the current batch
}

func newEdgeProbe(svc *service.Service) *edgeProbe {
	return &edgeProbe{svc: svc, delta: make(map[[2]int]bool), deg: make(map[int]int)}
}

func key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (p *edgeProbe) hasEdge(u, v int) bool {
	if state, ok := p.delta[key(u, v)]; ok {
		return state
	}
	return p.svc.HasEdge(u, v)
}

func (p *edgeProbe) degree(v int) int {
	return p.svc.DegreeOf(v) + p.deg[v]
}

func (p *edgeProbe) reset() {
	clear(p.delta)
	clear(p.deg)
}

func (p *edgeProbe) note(u, v int, present bool) {
	p.delta[key(u, v)] = present
	d := -1
	if present {
		d = 1
	}
	p.deg[u] += d
	p.deg[v] += d
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "colord: "+format+"\n", args...)
	os.Exit(1)
}
