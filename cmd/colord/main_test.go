package main

import (
	"testing"

	"listcolor/internal/graph"
	"listcolor/internal/service"
)

func TestSharedPalette(t *testing.T) {
	inst := sharedPalette(10, 5, 1)
	if inst.N() != 10 || inst.Space != 5 {
		t.Fatalf("inst = n %d, space %d", inst.N(), inst.Space)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if d, ok := inst.DefectOf(3, 4); !ok || d != 1 {
		t.Fatalf("DefectOf = (%d, %v)", d, ok)
	}
}

func TestScriptedChurnSmoke(t *testing.T) {
	base := graph.StreamedRing(2000)
	space := base.RawMaxDegree() + 4
	svc, err := service.New(base, sharedPalette(base.N(), space, 0), nil, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	runChurn(svc, space, 2000, 200, 5, true) // exits nonzero on any violation
	st := svc.Stats()
	if st.Updates < 2000 || st.Batches != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if err := svc.ValidateState(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeProbeTracksPendingBatch(t *testing.T) {
	base := graph.StreamedRing(10)
	svc, err := service.New(base, sharedPalette(10, 5, 0), nil, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := newEdgeProbe(svc)
	if !p.hasEdge(0, 1) || p.hasEdge(0, 5) {
		t.Fatal("probe disagrees with substrate")
	}
	p.note(0, 5, true)
	if !p.hasEdge(0, 5) || !p.hasEdge(5, 0) || p.degree(0) != 3 {
		t.Fatal("pending insert not visible")
	}
	p.note(0, 1, false)
	if p.hasEdge(0, 1) || p.degree(0) != 2 {
		t.Fatal("pending delete not visible")
	}
	p.reset()
	if !p.hasEdge(0, 1) || p.hasEdge(0, 5) || p.degree(0) != 2 {
		t.Fatal("reset did not drop pending state")
	}
}
