package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"listcolor/internal/graph"
	"listcolor/internal/service"
)

// syncBuffer lets a test poll run()'s output while the run goroutine
// is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSharedPalette(t *testing.T) {
	inst := sharedPalette(10, 5, 1)
	if inst.N() != 10 || inst.Space != 5 {
		t.Fatalf("inst = n %d, space %d", inst.N(), inst.Space)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if d, ok := inst.DefectOf(3, 4); !ok || d != 1 {
		t.Fatalf("DefectOf = (%d, %v)", d, ok)
	}
}

func TestScriptedChurnSmoke(t *testing.T) {
	base := graph.StreamedRing(2000)
	space := base.RawMaxDegree() + 4
	svc, err := service.New(base, sharedPalette(base.N(), space, 0), nil, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code := run2churn(t, &out, svc, space, 2000, 200, 5, true)
	if code != 0 {
		t.Fatalf("churn exit %d\n%s", code, out.String())
	}
	st := svc.Stats()
	if st.Updates < 2000 || st.Batches != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if err := svc.ValidateState(); err != nil {
		t.Fatal(err)
	}
}

// run2churn drives runChurn directly with the service as the writer.
func run2churn(t *testing.T, out io.Writer, svc *service.Service, space, churn, batch int, seed int64, verify bool) int {
	t.Helper()
	return runChurn(context.Background(), out, out, svc, svc.ApplyBatch, space, churn, batch, seed, verify)
}

func TestEdgeProbeTracksPendingBatch(t *testing.T) {
	base := graph.StreamedRing(10)
	svc, err := service.New(base, sharedPalette(10, 5, 0), nil, service.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := newEdgeProbe(svc)
	if !p.hasEdge(0, 1) || p.hasEdge(0, 5) {
		t.Fatal("probe disagrees with substrate")
	}
	p.note(0, 5, true)
	if !p.hasEdge(0, 5) || !p.hasEdge(5, 0) || p.degree(0) != 3 {
		t.Fatal("pending insert not visible")
	}
	p.note(0, 1, false)
	if p.hasEdge(0, 1) || p.degree(0) != 2 {
		t.Fatal("pending delete not visible")
	}
	p.reset()
	if !p.hasEdge(0, 1) || p.hasEdge(0, 5) || p.degree(0) != 2 {
		t.Fatal("reset did not drop pending state")
	}
}

// TestRunScriptedDurableChurn: a full run() in scripted mode with a
// data dir finishes cleanly and leaves a recoverable checkpoint at the
// final version.
func TestRunScriptedDurableChurn(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	code := run(context.Background(), []string{
		"-graph", "ring", "-n", "512", "-churn", "1024", "-batch", "128",
		"-data-dir", dir, "-wal-sync", "batch", "-checkpoint-every", "3",
		"-seed", "5", "-verify",
	}, &out, &errw)
	if code != 0 {
		t.Fatalf("run exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	d, info, err := service.OpenDurable(service.Options{}, service.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d.Close()
	if info.ReplayedBatches != 0 {
		t.Fatalf("clean close left %d batches to replay", info.ReplayedBatches)
	}
	if info.Version == 0 {
		t.Fatal("no batches committed")
	}
	if err := d.Service().ValidateState(); err != nil {
		t.Fatalf("recovered state invalid: %v", err)
	}
}

// TestRunSIGTERMMidChurnRecoverable is the signal-handling contract:
// cancelling run()'s context (what SIGTERM does via NotifyContext)
// while churn is in flight must stop between batches, checkpoint on
// close, and leave a valid recoverable state on disk.
func TestRunSIGTERMMidChurnRecoverable(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var out, errw syncBuffer
	done := make(chan int, 1)
	go func() {
		// A churn target far beyond what can finish before the cancel.
		done <- run(ctx, []string{
			"-graph", "ring", "-n", "512", "-churn", "100000000", "-batch", "64",
			"-data-dir", dir, "-wal-sync", "batch", "-checkpoint-every", "5",
			"-seed", "7",
		}, &out, &errw)
	}()
	// Let some batches land before the signal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, "checkpoint.ckpt")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint appeared\nstdout:\n%s\nstderr:\n%s", out.String(), errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("interrupted run exit %d\nstderr:\n%s", code, errw.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("run did not stop after cancel")
	}
	if !strings.Contains(out.String(), "interrupted by signal") {
		t.Fatalf("missing interruption notice:\n%s", out.String())
	}
	d, info, err := service.OpenDurable(service.Options{}, service.DurableOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after signal: %v", err)
	}
	defer d.Close()
	if info.Version == 0 {
		t.Fatal("signal landed before any batch committed")
	}
	svc := d.Service()
	if err := svc.ValidateState(); err != nil {
		t.Fatalf("state after signal invalid: %v", err)
	}
	if rep := svc.AuditState(0); rep.Err() != nil {
		t.Fatalf("audit after signal: %v", rep.Err())
	}
}

// TestRunServerGracefulDrain boots the full HTTP server mode against a
// durable dir, cancels the context, and expects a clean drain: exit 0,
// final checkpoint, nothing to replay on reopen.
func TestRunServerGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var out, errw syncBuffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-graph", "ring", "-n", "128", "-addr", "127.0.0.1:0",
			"-data-dir", dir, "-drain", "5s",
		}, &out, &errw)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "listening on") {
		if time.Now().After(deadline) {
			t.Fatalf("server never listened\nstdout:\n%s\nstderr:\n%s", out.String(), errw.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("drain exit %d\nstderr:\n%s", code, errw.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("server did not drain after cancel")
	}
	if !strings.Contains(out.String(), "shutdown: complete") {
		t.Fatalf("missing drain completion:\n%s", out.String())
	}
	if _, info, err := service.OpenDurable(service.Options{}, service.DurableOptions{Dir: dir}); err != nil {
		t.Fatalf("reopen after drain: %v", err)
	} else if info.ReplayedBatches != 0 {
		t.Fatalf("drain left %d batches unreplayed", info.ReplayedBatches)
	}
}

// TestRunChaosFlag: `colord -chaos N` runs the kill-point matrix and
// exits zero with the report on stdout.
func TestRunChaosFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix in -short")
	}
	var out, errw bytes.Buffer
	code := run(context.Background(), []string{"-chaos", "8", "-seed", "3"}, &out, &errw)
	if code != 0 {
		t.Fatalf("chaos exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "zero validity violations") {
		t.Fatalf("missing chaos verdict:\n%s", out.String())
	}
}

// TestRunFlagErrors: bad flags and bad modes exit 2 without panicking.
func TestRunFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-definitely-not-a-flag"},
		{"-graph", "torus", "-churn", "1"},
		{"-wal-sync", "sometimes"},
	}
	for _, args := range cases {
		var out, errw bytes.Buffer
		if code := run(context.Background(), args, &out, &errw); code != 2 {
			t.Fatalf("args %v: exit %d, want 2\nstderr:\n%s", args, code, errw.String())
		}
	}
}
