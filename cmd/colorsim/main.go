// Command colorsim runs any of the library's coloring algorithms on a
// generated graph and reports rounds, messages, bits, and validation.
//
// Examples:
//
//	colorsim -graph regular -n 200 -deg 8 -algo degplus1
//	colorsim -graph ring -n 1000 -algo twosweep -p 2
//	colorsim -graph grid -n 64 -algo edgecolor
//	colorsim -graph gnp -n 150 -prob 0.1 -algo csr -space 256
//	colorsim -graph regular -n 100 -deg 6 -algo luby -congest 32
//	colorsim -graph regular -n 64 -deg 6 -algo degplus1 -faults plan.json -repair
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"listcolor"
	"listcolor/internal/adversary"
	"listcolor/internal/quality"
	"listcolor/internal/repair"
	"listcolor/internal/trace"
	"listcolor/internal/workload"
)

func main() {
	var (
		graphKind = flag.String("graph", "regular", "graph family: "+strings.Join(workload.Names(), "|"))
		n         = flag.Int("n", 100, "number of vertices (grid: side², hypercube: rounded to 2^k)")
		deg       = flag.Int("deg", 4, "degree for regular / attachment count for powerlaw")
		prob      = flag.Float64("prob", 0.1, "edge probability for gnp")
		radius    = flag.Float64("radius", 0.1, "connection radius for udg")
		algo      = flag.String("algo", "degplus1", "algorithm: linial|defective|twosweep|fast|csr|degplus1|nbhood|edgecolor|luby|greedy")
		p         = flag.Int("p", 2, "Two-Sweep parameter p")
		eps       = flag.Float64("eps", 1.0, "Fast-Two-Sweep parameter ε")
		alpha     = flag.Float64("alpha", 0.5, "defective coloring parameter α")
		space     = flag.Int("space", 0, "color space size C (0 = algorithm default)")
		theta     = flag.Int("theta", 2, "neighborhood independence bound for -algo nbhood")
		seed      = flag.Int64("seed", 1, "workload seed")
		congest   = flag.Int("congest", 0, "CONGEST bandwidth cap in bits (0 = LOCAL, unlimited)")
		goroutine = flag.Bool("goroutines", false, "run each node as its own goroutine")
		load      = flag.String("load", "", "load the graph from an edge-list file instead of generating one")
		save      = flag.String("save", "", "save the (generated) graph to an edge-list file")
		traceEach = flag.Int("trace", 0, "print per-round stats every N rounds (0 = off)")
		timeline  = flag.Bool("timeline", false, "print an ASCII timeline of the run")
		analyze   = flag.Bool("analyze", false, "print a quality report (degplus1, nbhood, greedy)")
		spans     = flag.Int("spans", 0, "print the composition span tree to this depth (0 = off)")
		faults    = flag.String("faults", "", "inject the fault plan from this adversary JSON file")
		doRepair  = flag.Bool("repair", false, "run the self-healing repair layer over the (faulted) solve and report recovery")
	)
	flag.Parse()

	var g *listcolor.Graph
	var err error
	if *load != "" {
		g, err = loadGraph(*load)
	} else {
		g, err = workload.Build(*graphKind, workload.Params{
			N: *n, Degree: *deg, Prob: *prob, Radius: *radius, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "colorsim:", err)
		os.Exit(1)
	}
	if *save != "" {
		if err := saveGraph(*save, g); err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
	}
	cfg := listcolor.Config{BandwidthBits: *congest}
	if *goroutine {
		cfg.Driver = listcolor.Goroutines
	}
	if *traceEach > 0 {
		every := *traceEach
		cfg.OnRound = func(rs listcolor.RoundStats) {
			if rs.Round%every == 0 {
				fmt.Printf("  round %6d: active=%d messages=%d bits=%d\n",
					rs.Round, rs.ActiveNodes, rs.Messages, rs.Bits)
			}
		}
	}
	var rec *trace.Recorder
	if *timeline {
		rec = &trace.Recorder{}
		cfg = rec.Attach(cfg)
	}
	var rootSpan *listcolor.Span
	if *spans > 0 {
		rootSpan = listcolor.NewSpan(*algo)
		cfg.Span = rootSpan
	}
	var plan adversary.Plan
	if *faults != "" {
		data, err := os.ReadFile(*faults)
		if err == nil {
			plan, err = adversary.ParsePlan(data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
		fmt.Printf("faults: %d planned events (plan seed %d)\n", len(plan.Events), plan.Seed)
		if rec != nil {
			plan.Annotate(rec)
		}
		if !*doRepair {
			// The repair path applies the plan itself (repair.Run
			// compiles it into its solve config); the plain path
			// installs the hooks here.
			cfg = plan.Apply(cfg)
		}
	}
	fmt.Printf("graph: %v\n", g)
	if err := run(g, *algo, *p, *eps, *alpha, *space, *theta, *seed, *analyze, plan, *doRepair, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "colorsim:", err)
		os.Exit(1)
	}
	if rec != nil {
		// The timeline shows engine-executed rounds; composed
		// algorithms additionally charge analytical coordination rounds
		// that appear in the reported total but not here.
		fmt.Print("timeline (engine-executed rounds):\n" + rec.Timeline(72))
	}
	if rootSpan != nil {
		fmt.Printf("composition spans (%d recorded):\n%s", rootSpan.Count()-1, rootSpan.Render(*spans, 12))
	}
}

func run(g *listcolor.Graph, algo string, p int, eps, alpha float64, space, theta int, seed int64, analyze bool, plan adversary.Plan, doRepair bool, cfg listcolor.Config) error {
	if doRepair {
		return runRepair(g, algo, p, eps, space, theta, seed, plan, cfg)
	}
	maybeAnalyze := func(inst *listcolor.Instance, colors []int) {
		if !analyze {
			return
		}
		rep, err := quality.Analyze(g, inst, colors)
		if err != nil {
			fmt.Printf("analysis failed: %v\n", err)
			return
		}
		fmt.Print(rep.Format())
	}
	report := func(stats listcolor.Stats, what string, palette int, validErr error) {
		fmt.Printf("algorithm: %s\n", what)
		fmt.Printf("rounds: %d   messages: %d   total bits: %d   max message bits: %d\n",
			stats.Rounds, stats.Messages, stats.TotalBits, stats.MaxMessageBits)
		if palette > 0 {
			fmt.Printf("palette: %d colors\n", palette)
		}
		if validErr != nil {
			fmt.Printf("VALIDATION FAILED: %v\n", validErr)
		} else {
			fmt.Println("validation: OK")
		}
	}
	switch algo {
	case "linial":
		res, err := listcolor.LinialColor(g, cfg)
		if err != nil {
			return err
		}
		report(res.Stats, "Linial O(Δ²)-coloring [Lin87]", res.Palette, properErr(g, res.Colors))
	case "defective":
		base, err := listcolor.LinialColor(g, cfg)
		if err != nil {
			return err
		}
		res, err := listcolor.DefectiveColor(g, base.Colors, base.Palette, alpha, cfg)
		if err != nil {
			return err
		}
		report(res.Stats, fmt.Sprintf("defective coloring (Lemma 3.4, α=%.3f)", alpha), res.Palette, nil)
	case "twosweep", "fast":
		d := listcolor.OrientByID(g)
		base, err := listcolor.LinialColor(g, cfg)
		if err != nil {
			return err
		}
		if space == 0 {
			space = 4*p*p + 16
		}
		e := eps
		if algo == "twosweep" {
			e = 0
		}
		inst := listcolor.NewMinSlackInstance(d, space, p, e, seed)
		var res listcolor.OLDCResult
		if algo == "twosweep" {
			res, err = listcolor.TwoSweep(d, inst, base.Colors, base.Palette, p, cfg)
		} else {
			res, err = listcolor.TwoSweepFast(d, inst, base.Colors, base.Palette, p, e, cfg)
		}
		if err != nil {
			return err
		}
		report(res.Stats, fmt.Sprintf("Two-Sweep (Theorem 1.1, p=%d, ε=%.2f)", p, e), space,
			listcolor.ValidateOLDC(d, inst, res.Colors))
	case "csr":
		d := listcolor.OrientByID(g)
		base, err := listcolor.LinialColor(g, cfg)
		if err != nil {
			return err
		}
		if space == 0 {
			space = 256
		}
		inst := listcolor.NewSlackInstance(g, space, 3*math.Sqrt(float64(space))*2, seed)
		res, err := listcolor.ReduceColorSpace(d, inst, base.Colors, base.Palette, cfg)
		if err != nil {
			return err
		}
		report(res.Stats, fmt.Sprintf("color space reduction (Theorem 1.2, C=%d)", space), space,
			listcolor.ValidateOLDC(d, inst, res.Colors))
	case "degplus1":
		if space == 0 {
			space = g.MaxDegree() + 1
		}
		inst := listcolor.NewDegreePlusOneInstance(g, space, seed)
		res, err := listcolor.ColorDegPlusOne(g, inst, cfg)
		if err != nil {
			return err
		}
		report(res.Stats, fmt.Sprintf("(deg+1)-list coloring (Theorem 1.3 pipeline, %d scales, %d OLDC calls)",
			res.Scales, res.OLDCCalls), space, listcolor.ValidateProperList(g, inst, res.Colors))
		maybeAnalyze(inst, res.Colors)
	case "nbhood":
		if space == 0 {
			space = g.MaxDegree() + 1
		}
		inst := listcolor.NewDegreePlusOneInstance(g, space, seed)
		res, err := listcolor.SolveNeighborhood(g, inst, theta, cfg)
		if err != nil {
			return err
		}
		report(res.Stats, fmt.Sprintf("bounded-θ recursion (Theorem 1.5, θ=%d)", theta), space,
			listcolor.ValidateProperList(g, inst, res.Result.Colors))
		maybeAnalyze(inst, res.Result.Colors)
	case "edgecolor":
		colors, palette, stats, err := listcolor.EdgeColor(g, cfg)
		if err != nil {
			return err
		}
		used := map[int]bool{}
		for _, c := range colors {
			used[c] = true
		}
		report(stats, "(2Δ−1)-edge coloring (Theorem 1.5 application)", palette, nil)
		fmt.Printf("colors used: %d of %d\n", len(used), palette)
	case "luby":
		colors, stats, err := listcolor.LubyColor(g, seed, cfg)
		if err != nil {
			return err
		}
		report(stats, "Luby randomized (Δ+1)-coloring [ABI86, Lub86]", g.RawMaxDegree()+1, properErr(g, colors))
	case "greedy":
		if space == 0 {
			space = g.MaxDegree() + 1
		}
		inst := listcolor.NewDegreePlusOneInstance(g, space, seed)
		colors, err := listcolor.GreedyList(g, inst)
		if err != nil {
			return err
		}
		report(listcolor.Stats{Rounds: g.N()}, "sequential greedy list coloring (baseline)", space,
			listcolor.ValidateProperList(g, inst, colors))
		maybeAnalyze(inst, colors)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

// runRepair routes the selected algorithm through the self-healing
// layer: the whole pipeline (including any base-coloring stage) runs
// under the fault plan, the damage is classified, and bounded local
// repair drives the coloring back to validity. Only algorithms that
// solve a list instance on the simulator can be repaired — the repair
// loop re-enters conflicted nodes with their residual lists.
func runRepair(g *listcolor.Graph, algo string, p int, eps float64, space, theta int, seed int64, plan adversary.Plan, cfg listcolor.Config) error {
	addStats := func(dst *listcolor.Stats, s listcolor.Stats) {
		dst.Rounds += s.Rounds
		dst.Messages += s.Messages
		dst.TotalBits += s.TotalBits
		if s.MaxMessageBits > dst.MaxMessageBits {
			dst.MaxMessageBits = s.MaxMessageBits
		}
	}
	tgt := repair.Target{Name: algo, G: g}
	switch algo {
	case "twosweep", "fast":
		d := listcolor.OrientByID(g)
		if space == 0 {
			space = 4*p*p + 16
		}
		e := eps
		if algo == "twosweep" {
			e = 0
		}
		inst := listcolor.NewMinSlackInstance(d, space, p, e, seed)
		tgt.D = d
		tgt.Inst = inst
		tgt.Solve = func(c listcolor.Config) ([]int, listcolor.Stats, error) {
			base, err := listcolor.LinialColor(g, c)
			if err != nil {
				return nil, base.Stats, err
			}
			var res listcolor.OLDCResult
			if algo == "twosweep" {
				res, err = listcolor.TwoSweep(d, inst, base.Colors, base.Palette, p, c)
			} else {
				res, err = listcolor.TwoSweepFast(d, inst, base.Colors, base.Palette, p, e, c)
			}
			addStats(&res.Stats, base.Stats)
			return res.Colors, res.Stats, err
		}
	case "csr":
		d := listcolor.OrientByID(g)
		if space == 0 {
			space = 256
		}
		inst := listcolor.NewSlackInstance(g, space, 3*math.Sqrt(float64(space))*2, seed)
		tgt.D = d
		tgt.Inst = inst
		tgt.Solve = func(c listcolor.Config) ([]int, listcolor.Stats, error) {
			base, err := listcolor.LinialColor(g, c)
			if err != nil {
				return nil, base.Stats, err
			}
			res, err := listcolor.ReduceColorSpace(d, inst, base.Colors, base.Palette, c)
			addStats(&res.Stats, base.Stats)
			return res.Colors, res.Stats, err
		}
	case "degplus1":
		if space == 0 {
			space = g.MaxDegree() + 1
		}
		inst := listcolor.NewDegreePlusOneInstance(g, space, seed)
		tgt.Inst = inst
		tgt.Solve = func(c listcolor.Config) ([]int, listcolor.Stats, error) {
			res, err := listcolor.ColorDegPlusOne(g, inst, c)
			return res.Colors, res.Stats, err
		}
	case "nbhood":
		if space == 0 {
			space = g.MaxDegree() + 1
		}
		inst := listcolor.NewDegreePlusOneInstance(g, space, seed)
		tgt.Inst = inst
		tgt.Solve = func(c listcolor.Config) ([]int, listcolor.Stats, error) {
			res, err := listcolor.SolveNeighborhood(g, inst, theta, c)
			return res.Result.Colors, res.Stats, err
		}
	case "luby":
		// Full-palette lists: Luby's (Δ+1)-coloring is directly
		// list-relative, so the damage report measures fault impact.
		pal := g.RawMaxDegree() + 1
		if space < pal {
			space = pal
		}
		inst := listcolor.NewInstance(g.N(), space)
		all := make([]int, pal)
		for x := range all {
			all[x] = x
		}
		zero := make([]int, pal)
		for v := 0; v < g.N(); v++ {
			inst.Lists[v] = all
			inst.Defects[v] = zero
		}
		tgt.Inst = inst
		tgt.Solve = func(c listcolor.Config) ([]int, listcolor.Stats, error) {
			return listcolor.LubyColor(g, seed, c)
		}
	default:
		return fmt.Errorf("-repair supports twosweep|fast|csr|degplus1|nbhood|luby, not %q", algo)
	}
	rep, err := repair.Run(tgt, plan, repair.Options{Base: cfg})
	if err != nil {
		return err
	}
	fmt.Printf("algorithm: %s under %d-event fault plan, self-healing repair\n", algo, len(plan.Events))
	s := rep.SolveStats
	fmt.Printf("faulted solve: rounds=%d messages=%d bits=%d", s.Rounds, s.Messages, s.TotalBits)
	if rep.SolveErr != nil {
		fmt.Printf("  (error: %v)", rep.SolveErr)
	}
	fmt.Println()
	if rep.UsedFallback {
		fmt.Println("solver output unusable; repair started from the first-list-color baseline")
	}
	fmt.Printf("damage before repair: %d hard (%d uncolored), %d absorbed by defect budgets\n",
		rep.Before.Hard, rep.Before.Uncolored, rep.Before.Absorbed)
	fmt.Printf("repair: %d recovery rounds, %d messages, %d bits\n",
		rep.RecoveryRounds, rep.RepairMessages, rep.RepairBits)
	fmt.Printf("after repair: %d hard, %d absorbed, residual defect %d\n",
		rep.After.Hard, rep.AbsorbedConflicts, rep.ResidualDefect)
	if rep.Converged {
		fmt.Println("validation: OK")
	} else {
		fmt.Println("VALIDATION FAILED: repair budget exhausted")
	}
	return nil
}

func properErr(g *listcolor.Graph, colors []int) error {
	return listcolor.IsProperColoring(g, colors)
}

func loadGraph(path string) (*listcolor.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return listcolor.ReadGraph(f)
}

func saveGraph(path string, g *listcolor.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := listcolor.WriteGraph(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
