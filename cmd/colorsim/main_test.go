package main

import (
	"os"
	"path/filepath"
	"testing"

	"listcolor"
	"listcolor/internal/adversary"
	"listcolor/internal/workload"
)

// TestRunAllAlgorithms drives every algorithm branch of the CLI's run
// function on a small graph — the smoke test keeping the tool from
// rotting as the library evolves.
func TestRunAllAlgorithms(t *testing.T) {
	g, err := workload.Build("regular", workload.Params{N: 24, Degree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{
		"linial", "defective", "twosweep", "fast", "csr",
		"degplus1", "nbhood", "edgecolor", "luby", "greedy",
	}
	for _, algo := range algos {
		if err := run(g, algo, 2, 1.0, 0.5, 0, 2, 1, true, adversary.Plan{}, false, listcolor.Config{}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	if err := run(g, "nosuch", 2, 1.0, 0.5, 0, 2, 1, false, adversary.Plan{}, false, listcolor.Config{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

// TestRunRepairAllAlgorithms drives every -repair branch under a real
// crash+corrupt plan: each must come back with a nil error (damage is
// reported, never returned).
func TestRunRepairAllAlgorithms(t *testing.T) {
	g, err := workload.Build("regular", workload.Params{N: 24, Degree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := adversary.Merge(
		adversary.UniformCrash(g, 7, 0.10, 2, 2),
		adversary.UniformCorrupt(7, 0.10, 1, 0),
	)
	for _, algo := range []string{"twosweep", "fast", "csr", "degplus1", "nbhood", "luby"} {
		if err := run(g, algo, 2, 1.0, 0.5, 0, 2, 1, false, plan, true, listcolor.Config{MaxRounds: 400}); err != nil {
			t.Errorf("repair %s: %v", algo, err)
		}
	}
	if err := run(g, "edgecolor", 2, 1.0, 0.5, 0, 2, 1, false, plan, true, listcolor.Config{}); err == nil {
		t.Error("-repair accepted an instance-free algorithm")
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.el")
	g := listcolor.NewRing(9)
	if err := saveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 9 || got.M() != 9 {
		t.Errorf("round trip: %v", got)
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.el")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadGraph(path); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestRunWithCongestCap(t *testing.T) {
	g, err := workload.Build("ring", workload.Params{N: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A generous cap should pass; a 1-bit cap should fail.
	if err := run(g, "linial", 2, 1.0, 0.5, 0, 2, 1, false, adversary.Plan{}, false, listcolor.Config{BandwidthBits: 64}); err != nil {
		t.Errorf("generous cap failed: %v", err)
	}
	if err := run(g, "linial", 2, 1.0, 0.5, 0, 2, 1, false, adversary.Plan{}, false, listcolor.Config{BandwidthBits: 1}); err == nil {
		t.Error("1-bit cap passed")
	}
}

// TestFaultPlanFileRoundTrip exercises the -faults file format: the
// plan the CLI writes to disk parses back bit-identically.
func TestFaultPlanFileRoundTrip(t *testing.T) {
	plan := adversary.Plan{
		Seed: 42,
		Events: []adversary.Event{
			{Kind: adversary.CrashStop, Node: 3, Start: 2},
			{Kind: adversary.Corrupt, From: -1, To: -1, Start: 1, Rate: 0.25},
		},
	}
	data, err := plan.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := adversary.ParsePlan(raw)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != plan.Seed || len(back.Events) != len(plan.Events) || back.Events[1].Rate != 0.25 {
		t.Errorf("round trip mangled the plan: %+v", back)
	}
}
