package main

import (
	"os"
	"path/filepath"
	"testing"

	"listcolor"
	"listcolor/internal/workload"
)

// TestRunAllAlgorithms drives every algorithm branch of the CLI's run
// function on a small graph — the smoke test keeping the tool from
// rotting as the library evolves.
func TestRunAllAlgorithms(t *testing.T) {
	g, err := workload.Build("regular", workload.Params{N: 24, Degree: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	algos := []string{
		"linial", "defective", "twosweep", "fast", "csr",
		"degplus1", "nbhood", "edgecolor", "luby", "greedy",
	}
	for _, algo := range algos {
		if err := run(g, algo, 2, 1.0, 0.5, 0, 2, 1, true, listcolor.Config{}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	if err := run(g, "nosuch", 2, 1.0, 0.5, 0, 2, 1, false, listcolor.Config{}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestLoadSaveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.el")
	g := listcolor.NewRing(9)
	if err := saveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 9 || got.M() != 9 {
		t.Errorf("round trip: %v", got)
	}
	if _, err := loadGraph(filepath.Join(dir, "missing.el")); err == nil {
		t.Error("missing file accepted")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadGraph(path); err == nil {
		t.Error("garbage file accepted")
	}
}

func TestRunWithCongestCap(t *testing.T) {
	g, err := workload.Build("ring", workload.Params{N: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A generous cap should pass; a 1-bit cap should fail.
	if err := run(g, "linial", 2, 1.0, 0.5, 0, 2, 1, false, listcolor.Config{BandwidthBits: 64}); err != nil {
		t.Errorf("generous cap failed: %v", err)
	}
	if err := run(g, "linial", 2, 1.0, 0.5, 0, 2, 1, false, listcolor.Config{BandwidthBits: 1}); err == nil {
		t.Error("1-bit cap passed")
	}
}
