// Command conform runs the conformance matrix — every solver over the
// shared seeded workload matrix, with driver equivalence, validator,
// theorem-guarantee, metamorphic and differential checks — and prints
// a pass/fail matrix. It exits non-zero when any cell fails.
//
// Usage:
//
//	go run ./cmd/conform [-seed N] [-heavy] [-faults=false] [-parallel N]
//	                     [-workload substr] [-solver substr] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"listcolor/internal/conformance"
	"listcolor/internal/quality"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, w io.Writer) int {
	fs := flag.NewFlagSet("conform", flag.ContinueOnError)
	fs.SetOutput(w)
	seed := fs.Int64("seed", 1, "base seed for workload and instance generation")
	heavy := fs.Bool("heavy", false, "run the widened heavy-tier matrix")
	faults := fs.Bool("faults", true, "also check driver equivalence under message drops")
	workload := fs.String("workload", "", "only workloads whose name contains this substring")
	solver := fs.String("solver", "", "only solvers whose name contains this substring")
	verbose := fs.Bool("v", false, "print every guarantee check with its headroom")
	parallel := fs.Int("parallel", 0, "matrix worker budget (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	results, err := conformance.RunMatrix(conformance.Options{
		Seed:           *seed,
		Heavy:          *heavy,
		Faults:         *faults,
		WorkloadFilter: *workload,
		SolverFilter:   *solver,
		Parallel:       *parallel,
	})
	if err != nil {
		fmt.Fprintf(w, "conform: %v\n", err)
		return 2
	}
	fmt.Fprint(w, conformance.FormatMatrix(results))
	if *verbose {
		for _, r := range results {
			if r.Skipped != "" {
				fmt.Fprintf(w, "\n%s / %s: skipped (%s)\n", r.Workload, r.Solver, r.Skipped)
				continue
			}
			fmt.Fprintf(w, "\n%s / %s:\n%s", r.Workload, r.Solver, quality.FormatChecks(r.Checks))
		}
	}
	for _, r := range results {
		for _, f := range r.Failures {
			fmt.Fprintf(w, "FAIL %s / %s: %s\n", r.Workload, r.Solver, f)
		}
	}
	sum := conformance.Summarize(results)
	fmt.Fprintf(w, "\n%d passed, %d failed, %d skipped (seed %d)\n", sum.Passed, sum.Failed, sum.Skipped, *seed)
	if sum.Failed > 0 {
		return 1
	}
	return 0
}
