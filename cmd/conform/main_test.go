package main

import (
	"strings"
	"testing"
)

// TestRunFilteredMatrix exercises the binary end to end on a small
// filtered slice of the matrix.
func TestRunFilteredMatrix(t *testing.T) {
	var b strings.Builder
	code := run([]string{"-seed", "5", "-workload", "ring16", "-faults=false"}, &b)
	out := b.String()
	if code != 0 {
		t.Fatalf("exit code %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "workload") || !strings.Contains(out, "ring16-id") {
		t.Errorf("matrix header missing:\n%s", out)
	}
	if !strings.Contains(out, "0 failed") {
		t.Errorf("summary missing or failing:\n%s", out)
	}
}

// TestRunBadFlag pins the usage exit code.
func TestRunBadFlag(t *testing.T) {
	var b strings.Builder
	if code := run([]string{"-no-such-flag"}, &b); code != 2 {
		t.Errorf("exit code %d for unknown flag, want 2", code)
	}
}
