// Command inspect reports the structural properties the coloring
// algorithms care about — Δ, degeneracy, neighborhood independence θ,
// orientation out-degrees — and, with -explain, renders the Figure 1
// decomposition of a node's out-neighborhood (N_<(v) vs N_>(v)) for
// the Two-Sweep algorithm as text.
//
// Examples:
//
//	inspect -graph regular -n 60 -deg 6
//	inspect -graph grid -n 36 -explain 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"listcolor"
	"listcolor/internal/workload"
)

func main() {
	var (
		graphKind = flag.String("graph", "regular", "graph family: "+strings.Join(workload.Names(), "|"))
		n         = flag.Int("n", 60, "number of vertices")
		deg       = flag.Int("deg", 4, "degree parameter")
		prob      = flag.Float64("prob", 0.1, "edge probability for gnp")
		radius    = flag.Float64("radius", 0.1, "connection radius for udg")
		seed      = flag.Int64("seed", 1, "generator seed")
		explain   = flag.Int("explain", -1, "render the Figure 1 view of this node (requires ≥ 0)")
		exact     = flag.Bool("theta", false, "compute exact neighborhood independence (exponential in Δ)")
	)
	flag.Parse()

	g, err := workload.Build(*graphKind, workload.Params{
		N: *n, Degree: *deg, Prob: *prob, Radius: *radius, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	d := listcolor.OrientByDegeneracy(g)
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("Δ (paper convention max(2,·)): %d\n", g.MaxDegree())
	fmt.Printf("degeneracy orientation β: %d\n", d.MaxBeta())
	if *exact {
		fmt.Printf("neighborhood independence θ: %d\n", listcolor.NeighborhoodIndependence(g))
	} else {
		fmt.Printf("θ upper bound (greedy clique cover): %d\n", listcolor.ThetaUpperBound(g))
	}
	if *explain >= 0 {
		explainNode(g, *explain)
	}
}

// explainNode prints the Figure 1 decomposition: with an initial
// proper coloring, a node's out-neighbors split into N_<(v) (smaller
// initial color: their sublists S_u are known when v picks S_v in
// Phase I) and N_>(v) (larger initial color: their final colors are
// known when v commits in Phase II).
func explainNode(g *listcolor.Graph, v int) {
	if v >= g.N() {
		fmt.Fprintf(os.Stderr, "inspect: node %d out of range\n", v)
		os.Exit(1)
	}
	base, err := listcolor.LinialColor(g, listcolor.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	d := listcolor.OrientByID(g)
	fmt.Printf("\nFigure 1 view of node %d (initial color %d of %d):\n", v, base.Colors[v], base.Palette)
	var smaller, larger []int
	for _, u := range d.Out(v) {
		if base.Colors[u] < base.Colors[v] {
			smaller = append(smaller, u)
		} else {
			larger = append(larger, u)
		}
	}
	fmt.Printf("  out-neighbors: %v\n", d.Out(v))
	fmt.Printf("  N_<(%d) (already chose S_u before v's Phase I turn): %v\n", v, smaller)
	fmt.Printf("  N_>(%d) (already committed colors before v's Phase II turn): %v\n", v, larger)
	fmt.Printf("  Phase I:  v picks S_v ⊆ L_v maximizing Σ d_v(x) − k_v(x) over the S_u of N_<\n")
	fmt.Printf("  Phase II: v commits to x ∈ S_v with k_v(x) + r_v(x) ≤ d_v(x) over the finals of N_>\n")
}
