package main

import (
	"testing"

	"listcolor"
)

// TestExplainNodeHappyPath drives the Figure 1 renderer on a valid
// node; it prints to stdout, so the test only guards against panics
// and regressions in the decomposition logic.
func TestExplainNodeHappyPath(t *testing.T) {
	g := listcolor.NewGrid(4, 4)
	explainNode(g, 5)
}
