// Package listcolor is a library for distributed list defective graph
// coloring, reproducing "Simpler and More General Distributed Coloring
// Based on Simple List Defective Coloring Algorithms" (Fuchs, Kuhn;
// PODC 2024).
//
// # Problems
//
// In a list defective coloring instance, every node v of a graph gets
// a color list L_v and a defect function d_v: it must output a color
// x ∈ L_v such that at most d_v(x) neighbors pick x too. Three
// variants differ in how conflicts are counted:
//
//   - list defective coloring: all neighbors count;
//   - oriented list defective coloring (OLDC): an edge orientation is
//     given and only out-neighbors count;
//   - list arbdefective coloring: the algorithm must also output an
//     orientation of the monochromatic edges and only out-neighbors
//     under that output orientation count.
//
// Proper (deg+1)-list coloring and (Δ+1)-coloring are the all-defects-
// zero special cases.
//
// # Algorithms
//
// The package exposes the paper's algorithms as functions over graphs
// and instances, all executing on a synchronous message-passing
// simulator of the LOCAL/CONGEST models that counts rounds, messages
// and exact payload bits:
//
//   - TwoSweep / TwoSweepFast: Theorem 1.1, the core contribution —
//     OLDC in O(q) resp. O(min{q, (p/ε)² + log* q}) rounds under the
//     slack condition Σ(d_v(x)+1) > (1+ε)·max{p, |L_v|/p}·β_v.
//   - ReduceColorSpace: Theorem 1.2 — OLDC with slack 3√C·β_v in
//     O(log³C + log* q) rounds with O(log q + log C)-bit messages.
//   - ColorDegPlusOne: Theorem 1.3's problem — proper (deg+1)-list
//     coloring in CONGEST.
//   - SolveNeighborhood / EdgeColor: Section 4 — list arbdefective
//     coloring with slack 1 on graphs of bounded neighborhood
//     independence θ, and (2Δ−1)-edge coloring via line graphs.
//   - LinialColor / DefectiveColor: the classical O(log* n) building
//     blocks ([Lin87] and Lemma 3.4 of the paper).
//
// # Quick start
//
//	g := listcolor.NewRandomRegular(200, 8, 1)
//	inst := listcolor.NewDegreePlusOneInstance(g, 9, 1)
//	res, err := listcolor.ColorDegPlusOne(g, inst, listcolor.Config{})
//	// res.Colors is a proper coloring; res.Stats has rounds/messages.
//
// See the examples directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package listcolor
