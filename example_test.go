package listcolor_test

import (
	"fmt"

	"listcolor"
)

// ExampleTwoSweep demonstrates the paper's core algorithm: an oriented
// list defective coloring computed in exactly 2q+1 rounds.
func ExampleTwoSweep() {
	g := listcolor.NewRing(12)
	d := listcolor.OrientByID(g)
	base, _ := listcolor.LinialColor(g, listcolor.Config{})
	p := 2
	inst := listcolor.NewMinSlackInstance(d, 20, p, 0, 1)
	res, err := listcolor.TwoSweep(d, inst, base.Colors, base.Palette, p, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", listcolor.ValidateOLDC(d, inst, res.Colors) == nil)
	fmt.Println("rounds == 2q+1:", res.Stats.Rounds == 2*base.Palette+1)
	// Output:
	// valid: true
	// rounds == 2q+1: true
}

// ExampleColorDegPlusOne computes a proper (deg+1)-list coloring.
func ExampleColorDegPlusOne() {
	g := listcolor.NewGrid(4, 4)
	inst := listcolor.NewDegreePlusOneInstance(g, g.MaxDegree()+1, 2)
	res, err := listcolor.ColorDegPlusOne(g, inst, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("proper:", listcolor.ValidateProperList(g, inst, res.Colors) == nil)
	// Output:
	// proper: true
}

// ExampleEdgeColor schedules the edges of K4 into 2Δ−1 matchings.
func ExampleEdgeColor() {
	g := listcolor.NewComplete(4)
	colors, palette, _, err := listcolor.EdgeColor(g, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("palette:", palette)
	fmt.Println("edges colored:", len(colors) == g.M())
	// Output:
	// palette: 5
	// edges colored: true
}

// ExampleLinialColor shows the classical O(log* n) bootstrap.
func ExampleLinialColor() {
	g := listcolor.NewRing(1000)
	res, err := listcolor.LinialColor(g, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("proper:", listcolor.IsProperColoring(g, res.Colors) == nil)
	fmt.Println("palette is O(Δ²):", res.Palette <= 16*3*3)
	fmt.Println("rounds ≤ log*(n)+4:", res.Stats.Rounds <= 9)
	// Output:
	// proper: true
	// palette is O(Δ²): true
	// rounds ≤ log*(n)+4: true
}

// ExampleSolveNeighborhood colors a ring (θ = 2) with the Section 4
// recursion.
func ExampleSolveNeighborhood() {
	g := listcolor.NewRing(10)
	inst := listcolor.NewDegreePlusOneInstance(g, 4, 3)
	res, err := listcolor.SolveNeighborhood(g, inst, 2, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("proper:", listcolor.ValidateProperList(g, inst, res.Result.Colors) == nil)
	fmt.Println("no monochromatic arcs:", len(res.Result.Arcs) == 0)
	// Output:
	// proper: true
	// no monochromatic arcs: true
}

// ExampleHyperedgeColor schedules rank-3 hyperedges conflict-free.
func ExampleHyperedgeColor() {
	h := listcolor.NewHypergraph(5)
	_ = h.AddEdge(0, 1, 2)
	_ = h.AddEdge(2, 3, 4)
	_ = h.AddEdge(0, 3)
	colors, _, _, err := listcolor.HyperedgeColor(h, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("edges 0,1 share instrument 2 and differ:", colors[0] != colors[1])
	fmt.Println("edges 0,2 share instrument 0 and differ:", colors[0] != colors[2])
	// Output:
	// edges 0,1 share instrument 2 and differ: true
	// edges 0,2 share instrument 0 and differ: true
}

// ExampleTwoSweepFast shows the ε > 0 variant beating the plain sweep
// on a large initial palette.
func ExampleTwoSweepFast() {
	n := 600
	g := listcolor.NewRandomRegular(n, 6, 4)
	d := listcolor.OrientByID(g)
	ids := make([]int, n)
	for v := range ids {
		ids[v] = v // raw ids as the proper n-coloring: q = n is large
	}
	inst := listcolor.NewMinSlackInstance(d, 40, 2, 1.0, 5)
	res, err := listcolor.TwoSweepFast(d, inst, ids, n, 2, 1.0, listcolor.Config{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", listcolor.ValidateOLDC(d, inst, res.Colors) == nil)
	fmt.Println("beats plain 2q+1 sweep:", res.Stats.Rounds < 2*n+1)
	// Output:
	// valid: true
	// beats plain 2q+1 sweep: true
}

// ExampleConfig_bandwidth shows CONGEST enforcement: the engine fails
// a run whose messages exceed the cap.
func ExampleConfig_bandwidth() {
	g := listcolor.NewRing(64)
	_, err := listcolor.LinialColor(g, listcolor.Config{BandwidthBits: 1})
	fmt.Println("over-cap run rejected:", err != nil)
	_, err = listcolor.LinialColor(g, listcolor.Config{BandwidthBits: 64})
	fmt.Println("within-cap run accepted:", err == nil)
	// Output:
	// over-cap run rejected: true
	// within-cap run accepted: true
}
