// Congestdemo: the message-size story of Theorem 1.2.
//
// The plain Two-Sweep algorithm ships candidate lists of p colors from
// a space of C colors — Θ(p·log C) bits per message. The color space
// reduction (Theorem 1.2) replaces one big instance by ⌈log₄C⌉ tiny
// ones over 4 "colors" each, shrinking messages to O(log q + log C)
// bits — the difference between needing the LOCAL model and fitting
// CONGEST. This demo runs both on the same workload and prints the
// measured maxima; it also proves compliance by re-running the
// Theorem 1.2 algorithm under a hard bandwidth cap.
//
//	go run ./examples/congestdemo
package main

import (
	"fmt"
	"log"
	"math"

	"listcolor"
)

func main() {
	const space = 4096 // large color space to make the contrast visible
	g := listcolor.NewRandomRegular(120, 6, 5)
	d := listcolor.OrientByID(g)
	base, err := listcolor.LinialColor(g, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %v, color space C = %d, q = %d\n", g, space, base.Palette)

	// Instance with the Theorem 1.2 slack 3√C·β_v — rich enough for
	// both algorithms.
	slack := 3 * math.Sqrt(space)
	inst := listcolor.NewSlackInstance(g, space, 2*slack, 9)

	// Plain Two-Sweep with p = ⌈√Λ⌉ (what one would use without the
	// reduction): messages carry up to p colors of log C bits each.
	p := int(math.Ceil(math.Sqrt(float64(inst.MaxListSize()))))
	plain, err := listcolor.TwoSweep(d, inst, base.Colors, base.Palette, p, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := listcolor.ValidateOLDC(d, inst, plain.Colors); err != nil {
		log.Fatal(err)
	}

	reduced, err := listcolor.ReduceColorSpace(d, inst, base.Colors, base.Palette, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := listcolor.ValidateOLDC(d, inst, reduced.Colors); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-34s %10s %16s\n", "algorithm", "rounds", "max message bits")
	fmt.Printf("%-34s %10d %16d\n", fmt.Sprintf("Two-Sweep (p=%d)", p), plain.Stats.Rounds, plain.Stats.MaxMessageBits)
	fmt.Printf("%-34s %10d %16d\n", "color space reduction (Thm 1.2)", reduced.Stats.Rounds, reduced.Stats.MaxMessageBits)

	// Prove CONGEST compliance: re-run under a hard cap of the
	// O(log q + log C) shape. The engine fails the run if any message
	// exceeds it.
	cap := 4*bits(base.Palette*base.Palette) + 4*bits(space) + 16
	if _, err := listcolor.ReduceColorSpace(d, inst, base.Colors, base.Palette,
		listcolor.Config{BandwidthBits: cap}); err != nil {
		log.Fatalf("Theorem 1.2 run violated the %d-bit CONGEST cap: %v", cap, err)
	}
	fmt.Printf("\nTheorem 1.2 run verified under a hard %d-bit per-message cap (CONGEST)\n", cap)
}

func bits(domain int) int {
	b := 1
	for v := domain - 1; v > 1; v >>= 1 {
		b++
	}
	return b
}
