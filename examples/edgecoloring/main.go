// Edgecoloring: schedule a round-robin tournament by (2Δ−1)-edge
// coloring the complete graph K_n with the Section 4 machinery
// (Theorem 1.5 on the line graph, which has neighborhood independence
// θ ≤ 2).
//
// Every edge of K_n is a match; edges of the same color form a
// matching, i.e. a round in which every team plays at most once.
//
//	go run ./examples/edgecoloring
package main

import (
	"fmt"
	"log"
	"sort"

	"listcolor"
)

const teams = 7

func main() {
	g := listcolor.NewComplete(teams)
	fmt.Printf("tournament: %d teams, %d matches\n", teams, g.M())

	edgeColors, palette, stats, err := listcolor.EdgeColor(g, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled into ≤ %d rounds (2Δ−1 palette) in %d simulated CONGEST rounds\n",
		palette, stats.Rounds)

	// Group matches by round and verify each round is a matching.
	edges := g.Edges()
	rounds := make(map[int][][2]int)
	for i, e := range edges {
		rounds[edgeColors[i]] = append(rounds[edgeColors[i]], e)
	}
	var order []int
	for r := range rounds {
		order = append(order, r)
	}
	sort.Ints(order)
	for _, r := range order {
		busy := make(map[int]bool)
		for _, m := range rounds[r] {
			if busy[m[0]] || busy[m[1]] {
				log.Fatalf("round %d double-books a team: %v", r, rounds[r])
			}
			busy[m[0]], busy[m[1]] = true, true
		}
		fmt.Printf("round %2d: %v\n", r, rounds[r])
	}
	fmt.Printf("%d rounds used; every team plays at most once per round\n", len(order))
}
