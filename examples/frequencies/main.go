// Frequencies: wireless channel assignment as ORIENTED LIST DEFECTIVE
// coloring — the paper's problem in its natural habitat.
//
// Each access point may only use channels from its regulatory list
// L_v, and each channel x tolerates a bounded number d_v(x) of
// interfering neighbors (wider channels tolerate fewer). Interference
// is directional: an AP only suffers from the (out-)neighbors it
// points at in the interference orientation. The Two-Sweep algorithm
// (Theorem 1.1) assigns channels meeting every budget in O(q) rounds.
//
//	go run ./examples/frequencies
package main

import (
	"fmt"
	"log"
	"math/rand"

	"listcolor"
)

const (
	numAPs      = 300
	numChannels = 24
	channelsPer = 9 // each AP is licensed for 9 of the 24 channels
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Interference graph: APs on a grid-ish deployment with some
	// long-range links.
	g := listcolor.NewGNP(numAPs, 0.02, 3)
	d := listcolor.OrientByDegeneracy(g) // interference points at earlier-deployed APs
	beta := d.MaxBeta()
	fmt.Printf("deployment: %v, interference out-degree β = %d\n", g, beta)

	// Build the list defective instance: per-AP channel lists with
	// per-channel interference budgets. Budgets are drawn so the
	// Theorem 1.1 slack condition holds with p = 3:
	// Σ(d_v(x)+1) > max{p, |L_v|/p}·β_v.
	p := 3
	inst := listcolor.NewInstance(numAPs, numChannels)
	for v := 0; v < numAPs; v++ {
		// Pick this AP's licensed channels.
		perm := rng.Perm(numChannels)[:channelsPer]
		chans := append([]int(nil), perm...)
		sortInts(chans)
		need := maxInt(p, (channelsPer+p-1)/p)*d.Beta(v) + 1 // minimal admissible budget
		budget := need + rng.Intn(4)                         // a little headroom
		defects := make([]int, channelsPer)
		for b := budget - channelsPer; b > 0; b-- {
			defects[rng.Intn(channelsPer)]++
		}
		inst.Lists[v] = chans
		inst.Defects[v] = defects
	}

	// Bootstrap coloring + Two-Sweep.
	base, err := listcolor.LinialColor(g, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := listcolor.TwoSweep(d, inst, base.Colors, base.Palette, p, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := listcolor.ValidateOLDC(d, inst, res.Colors); err != nil {
		log.Fatalf("assignment violates an interference budget: %v", err)
	}

	// Report.
	perChannel := make(map[int]int)
	worstLoad := 0
	for v, ch := range res.Colors {
		perChannel[ch]++
		load := 0
		for _, u := range d.Out(v) {
			if res.Colors[u] == ch {
				load++
			}
		}
		if load > worstLoad {
			worstLoad = load
		}
	}
	fmt.Printf("assigned %d APs across %d channels (busiest channel hosts %d APs)\n",
		numAPs, len(perChannel), maxMapValue(perChannel))
	fmt.Printf("worst realized interference: %d (every AP within its per-channel budget)\n", worstLoad)
	fmt.Printf("cost: %d rounds (bootstrap %d + two sweeps over q=%d classes), max message %d bits\n",
		base.Stats.Rounds+res.Stats.Rounds, base.Stats.Rounds, base.Palette, res.Stats.MaxMessageBits)

	liveChurn(g, inst, rng)
}

// liveChurn keeps the same deployment running as a live workload: APs
// move, so interference links appear and disappear in batches, and the
// incremental coloring service repairs the channel assignment locally
// after each batch instead of re-solving the deployment. Budgets here
// are undirected — every licensed channel tolerates one interfering
// neighbor — so Σ_x(d_v(x)+1) = 2·channelsPer covers every degree the
// churn guard admits.
func liveChurn(g *listcolor.Graph, inst *listcolor.Instance, rng *rand.Rand) {
	churnInst := listcolor.NewInstance(numAPs, numChannels)
	for v := 0; v < numAPs; v++ {
		churnInst.Lists[v] = inst.Lists[v]
		ones := make([]int, len(inst.Lists[v]))
		for i := range ones {
			ones[i] = 1
		}
		churnInst.Defects[v] = ones
	}
	svc, err := listcolor.NewColorService(listcolor.NewCSRFromGraph(g), churnInst, nil, listcolor.ServiceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const (
		batches  = 40
		perBatch = 25
		maxDeg   = 2*channelsPer - 2 // keep Σ(d_v(x)+1) > deg(v) under churn
	)
	applied, recolored, hard, absorbed := 0, 0, 0, 0
	for b := 0; b < batches; b++ {
		var ops []listcolor.ServiceOp
		for len(ops) < perBatch {
			u, v := rng.Intn(numAPs), rng.Intn(numAPs)
			if u == v {
				continue
			}
			switch {
			case svc.HasEdge(u, v):
				ops = append(ops, listcolor.ServiceOp{Action: listcolor.OpRemoveEdge, U: u, V: v})
			case svc.DegreeOf(u) < maxDeg && svc.DegreeOf(v) < maxDeg:
				ops = append(ops, listcolor.ServiceOp{Action: listcolor.OpAddEdge, U: u, V: v})
			}
		}
		rep, err := svc.ApplyBatch(ops)
		if err != nil {
			log.Fatalf("churn batch %d: %v", b, err)
		}
		applied += rep.Applied
		recolored += rep.Recolored
		hard += rep.Hard
		absorbed += rep.Absorbed
	}
	if err := svc.ValidateState(); err != nil {
		log.Fatalf("live assignment violates a budget after churn: %v", err)
	}
	st := svc.Stats()
	fmt.Printf("\nlive churn: %d link updates in %d batches — %d conflicts absorbed by budgets, %d hard conflicts\n",
		applied, batches, absorbed, hard)
	fmt.Printf("maintenance: %d APs retuned (%.2f per update), %d repair rounds, every budget still met\n",
		recolored, st.RecolorLocality, st.RepairRounds)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxMapValue(m map[int]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
