// Labscheduling: conflict-free scheduling of lab sessions as
// HYPERGRAPH edge coloring — the bounded-rank-hypergraph application
// of Section 4.
//
// Each lab session needs up to r shared instruments; two sessions that
// share any instrument cannot run in the same time slot. Sessions are
// hyperedges over the instrument set, so a proper hyperedge coloring
// is exactly a conflict-free timetable — and since the line graph of a
// rank-r hypergraph has neighborhood independence θ ≤ r, the
// Theorem 1.5 machinery schedules it deterministically with
// r·(D−1)+1 slots (D = the busiest instrument's session count).
//
//	go run ./examples/labscheduling
package main

import (
	"fmt"
	"log"
	"sort"

	"listcolor"
)

const (
	instruments = 18
	sessions    = 24
	rank        = 3 // instruments per session
)

func main() {
	h := listcolor.NewRandomHypergraph(instruments, sessions, rank, 99)
	fmt.Printf("lab: %d instruments, %d sessions, ≤ %d instruments each\n",
		instruments, h.M(), h.Rank())

	busiest := 0
	for v := 0; v < instruments; v++ {
		if d := h.VertexDegree(v); d > busiest {
			busiest = d
		}
	}
	fmt.Printf("busiest instrument appears in %d sessions\n", busiest)

	slots, palette, stats, err := listcolor.HyperedgeColor(h, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheduled into ≤ %d slots (r·(D−1)+1 bound) in %d simulated rounds\n",
		palette, stats.Rounds)

	// Verify and print the timetable.
	bySlot := make(map[int][]int)
	for session, slot := range slots {
		bySlot[slot] = append(bySlot[slot], session)
	}
	var order []int
	for s := range bySlot {
		order = append(order, s)
	}
	sort.Ints(order)
	for _, slot := range order {
		busy := make(map[int]bool)
		for _, session := range bySlot[slot] {
			for _, instrument := range h.Edge(session) {
				if busy[instrument] {
					log.Fatalf("slot %d double-books instrument %d", slot, instrument)
				}
				busy[instrument] = true
			}
		}
		fmt.Printf("slot %2d: sessions %v\n", slot, bySlot[slot])
	}
	fmt.Printf("%d slots used; no instrument is double-booked in any slot\n", len(order))
}
