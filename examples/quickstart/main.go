// Quickstart: compute a (Δ+1)-coloring of a random regular graph with
// the library's deterministic CONGEST pipeline and verify it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"listcolor"
)

func main() {
	// A random 8-regular graph on 400 vertices.
	g := listcolor.NewRandomRegular(400, 8, 42)
	fmt.Printf("input: %v\n", g)

	// Every node gets the full palette [0, Δ+1) — the classical
	// (Δ+1)-coloring as a (deg+1)-list instance with zero defects.
	delta := g.MaxDegree()
	inst := listcolor.NewInstance(g.N(), delta+1)
	full := make([]int, delta+1)
	for i := range full {
		full[i] = i
	}
	for v := 0; v < g.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = make([]int, delta+1)
	}

	res, err := listcolor.ColorDegPlusOne(g, inst, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := listcolor.IsProperColoring(g, res.Colors); err != nil {
		log.Fatalf("coloring invalid: %v", err)
	}

	used := make(map[int]bool)
	for _, c := range res.Colors {
		used[c] = true
	}
	fmt.Printf("proper coloring with %d of %d available colors\n", len(used), delta+1)
	fmt.Printf("simulated CONGEST cost: %d rounds, %d messages, %d total bits (max message %d bits)\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.TotalBits, res.Stats.MaxMessageBits)
	fmt.Printf("pipeline: %d degree-halving scales, %d OLDC sub-instances\n", res.Scales, res.OLDCCalls)
}
