// Sensors: TDMA slot assignment in a wireless sensor network, using
// the bounded-neighborhood-independence machinery of Section 4.
//
// Sensor radios form a unit-disk graph (nodes adjacent iff within
// range), and unit-disk graphs have neighborhood independence θ ≤ 5 —
// exactly the structural assumption of Theorem 1.5. Assigning
// interference-free TDMA slots is a (deg+1)-list coloring; the
// Theorem 1.5 pipeline computes it deterministically in CONGEST.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"
	"math/rand"

	"listcolor"
)

func main() {
	const (
		sensors = 250
		radius  = 0.08
	)
	gg := listcolor.NewRandomGeometric(sensors, radius, 11)
	g := gg.Graph
	fmt.Printf("network: %v (unit-disk, radius %.2f)\n", g, radius)
	fmt.Printf("neighborhood independence: θ ≤ 5 structurally, greedy bound %d\n",
		listcolor.ThetaUpperBound(g))

	// Each sensor needs a TDMA slot different from all neighbors; it
	// can use any of deg+1 slots from a frame of Δ+1.
	frame := g.MaxDegree() + 1
	inst := listcolor.NewDegreePlusOneInstance(g, frame, 12)

	res, err := listcolor.SolveNeighborhood(g, inst, 5, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := listcolor.ValidateProperList(g, inst, res.Result.Colors); err != nil {
		log.Fatalf("slot assignment conflicts: %v", err)
	}

	slots := make(map[int]int)
	for _, s := range res.Result.Colors {
		slots[s]++
	}
	busiest := 0
	for _, c := range slots {
		if c > busiest {
			busiest = c
		}
	}
	fmt.Printf("assigned %d sensors to %d of %d frame slots (busiest slot: %d sensors)\n",
		sensors, len(slots), frame, busiest)
	fmt.Printf("no two in-range sensors share a slot — interference-free schedule\n")
	fmt.Printf("cost: %d simulated CONGEST rounds, %d messages, max message %d bits\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxMessageBits)

	// Compare against the general-graph solver, which ignores θ.
	gen, err := listcolor.SolveArbdefective(g, inst, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("general-graph solver (no θ assumption): %d rounds — the θ ≤ 5 structure pays off: %v\n",
		gen.Stats.Rounds, res.Stats.Rounds < gen.Stats.Rounds)

	liveChurn(g, frame)
}

// liveChurn keeps the schedule alive while the deployment changes:
// radios drift in and out of range (edge churn) and new sensors join
// the field (node churn). The incremental coloring service repairs the
// TDMA schedule locally after each batch — the frame never needs a
// global recompute. Every sensor may fall back to any slot of the
// frame here (full-frame lists, zero defects), and the churn guard
// keeps degrees below the frame size so a free slot always exists.
func liveChurn(g *listcolor.Graph, frame int) {
	rng := rand.New(rand.NewSource(13))
	inst := listcolor.NewInstance(g.N(), frame)
	full := make([]int, frame)
	zeros := make([]int, frame)
	for i := range full {
		full[i] = i
	}
	for v := 0; v < g.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = zeros
	}
	svc, err := listcolor.NewColorService(listcolor.NewCSRFromGraph(g), inst, nil, listcolor.ServiceOptions{})
	if err != nil {
		log.Fatal(err)
	}

	const (
		batches  = 30
		perBatch = 20
	)
	joined := 0
	for b := 0; b < batches; b++ {
		n := svc.N()
		var ops []listcolor.ServiceOp
		if b%5 == 0 {
			// A new sensor comes online and links to a few in-range
			// neighbors; it gets the full frame as its slot list.
			ops = append(ops, listcolor.ServiceOp{Action: listcolor.OpAddNode})
			for t := 0; t < 3; t++ {
				ops = append(ops, listcolor.ServiceOp{Action: listcolor.OpAddEdge, U: n, V: rng.Intn(n)})
			}
			joined++
		}
		for len(ops) < perBatch {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			switch {
			case svc.HasEdge(u, v):
				ops = append(ops, listcolor.ServiceOp{Action: listcolor.OpRemoveEdge, U: u, V: v})
			case svc.DegreeOf(u) < frame-2 && svc.DegreeOf(v) < frame-2:
				ops = append(ops, listcolor.ServiceOp{Action: listcolor.OpAddEdge, U: u, V: v})
			}
		}
		rep, err := svc.ApplyBatch(ops)
		if err != nil {
			log.Fatalf("churn batch %d: %v", b, err)
		}
		if !rep.Converged {
			log.Fatalf("churn batch %d: repair did not converge", b)
		}
	}
	if err := svc.ValidateState(); err != nil {
		log.Fatalf("schedule conflicts after churn: %v", err)
	}
	st := svc.Stats()
	fmt.Printf("\nlive churn: %d updates in %d batches, %d sensors joined (network now %d nodes)\n",
		st.Updates, st.Batches, joined, svc.N())
	fmt.Printf("maintenance: %d slots reassigned (%.2f per update), %d repair rounds, schedule still interference-free\n",
		st.Recolored, st.RecolorLocality, st.RepairRounds)
}
