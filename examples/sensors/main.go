// Sensors: TDMA slot assignment in a wireless sensor network, using
// the bounded-neighborhood-independence machinery of Section 4.
//
// Sensor radios form a unit-disk graph (nodes adjacent iff within
// range), and unit-disk graphs have neighborhood independence θ ≤ 5 —
// exactly the structural assumption of Theorem 1.5. Assigning
// interference-free TDMA slots is a (deg+1)-list coloring; the
// Theorem 1.5 pipeline computes it deterministically in CONGEST.
//
//	go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	"listcolor"
)

func main() {
	const (
		sensors = 250
		radius  = 0.08
	)
	gg := listcolor.NewRandomGeometric(sensors, radius, 11)
	g := gg.Graph
	fmt.Printf("network: %v (unit-disk, radius %.2f)\n", g, radius)
	fmt.Printf("neighborhood independence: θ ≤ 5 structurally, greedy bound %d\n",
		listcolor.ThetaUpperBound(g))

	// Each sensor needs a TDMA slot different from all neighbors; it
	// can use any of deg+1 slots from a frame of Δ+1.
	frame := g.MaxDegree() + 1
	inst := listcolor.NewDegreePlusOneInstance(g, frame, 12)

	res, err := listcolor.SolveNeighborhood(g, inst, 5, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	if err := listcolor.ValidateProperList(g, inst, res.Result.Colors); err != nil {
		log.Fatalf("slot assignment conflicts: %v", err)
	}

	slots := make(map[int]int)
	for _, s := range res.Result.Colors {
		slots[s]++
	}
	busiest := 0
	for _, c := range slots {
		if c > busiest {
			busiest = c
		}
	}
	fmt.Printf("assigned %d sensors to %d of %d frame slots (busiest slot: %d sensors)\n",
		sensors, len(slots), frame, busiest)
	fmt.Printf("no two in-range sensors share a slot — interference-free schedule\n")
	fmt.Printf("cost: %d simulated CONGEST rounds, %d messages, max message %d bits\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.MaxMessageBits)

	// Compare against the general-graph solver, which ignores θ.
	gen, err := listcolor.SolveArbdefective(g, inst, listcolor.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("general-graph solver (no θ assumption): %d rounds — the θ ≤ 5 structure pays off: %v\n",
		gen.Stats.Rounds, res.Stats.Rounds < gen.Stats.Rounds)
}
