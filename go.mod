module listcolor

go 1.22
