// chaos.go lifts the package's fault-plan discipline from the message
// layer to the process layer: a ChaosPlan is a deterministic,
// seed-derived schedule of writer kills and log damage for the durable
// coloring service — kill at a batch boundary, kill mid-record, flip a
// WAL byte, truncate the tail. Like Plan, a ChaosPlan is pure data
// (JSON round-trip) and every choice derives from the seed via
// splitmix64, so a chaos matrix replays the identical kill schedule
// under every driver and across reruns.
package adversary

import (
	"encoding/json"
	"fmt"
)

// ChaosMode is the process-level fault taxonomy.
type ChaosMode string

const (
	// ChaosBoundary kills the writer between batches: the process is
	// gone, the log ends at a record boundary.
	ChaosBoundary ChaosMode = "boundary"
	// ChaosMidRecord kills the writer inside a WAL append: a
	// draw-chosen prefix of the record reaches disk — the torn-write
	// case.
	ChaosMidRecord ChaosMode = "mid-record"
	// ChaosFlipByte kills at a boundary and then flips one draw-chosen
	// byte inside the surviving log — post-crash media damage.
	ChaosFlipByte ChaosMode = "flip-byte"
	// ChaosTruncate kills at a boundary and then cuts a draw-chosen
	// number of bytes off the log's tail — lost final sectors.
	ChaosTruncate ChaosMode = "truncate"
)

// chaosModes is the draw→mode table; order is part of the plan
// format (reordering would change every derived schedule).
var chaosModes = [...]ChaosMode{ChaosBoundary, ChaosMidRecord, ChaosFlipByte, ChaosTruncate}

// SplitMix64Stream returns a deterministic draw stream: successive
// calls walk the splitmix64 orbit from the seed. The chaos script
// generator uses it so churn derives from the plan seed with the same
// discipline as the message-layer bit-flips — never math/rand.
func SplitMix64Stream(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x = splitmix64(x)
		return x
	}
}

// ChaosPoint is one kill: run the script up to batch Batch, then
// apply the mode's damage. Draw seeds the mode's free choice (tear
// prefix, flip offset, truncate length).
type ChaosPoint struct {
	Batch int       `json:"batch"`
	Mode  ChaosMode `json:"mode"`
	Draw  uint64    `json:"draw"`
}

// ChaosPlan is a complete kill schedule over a batches-long script.
type ChaosPlan struct {
	Seed    int64        `json:"seed"`
	Batches int          `json:"batches"`
	Points  []ChaosPoint `json:"points"`
}

// NewChaosPlan derives a points-long kill schedule for a script of
// the given batch count. Every point is a pure function of (seed,
// index): the matrix is identical across reruns and machines.
func NewChaosPlan(seed int64, batches, points int) ChaosPlan {
	p := ChaosPlan{Seed: seed, Batches: batches, Points: make([]ChaosPoint, 0, points)}
	for i := 0; i < points; i++ {
		x := splitmix64(uint64(seed))
		x = splitmix64(x ^ uint64(i)<<1)
		batch := int(x % uint64(batches))
		x = splitmix64(x)
		mode := chaosModes[x%uint64(len(chaosModes))]
		x = splitmix64(x)
		p.Points = append(p.Points, ChaosPoint{Batch: batch, Mode: mode, Draw: x})
	}
	return p
}

// Validate rejects structurally broken chaos plans: unknown modes and
// kill points outside the script.
func (p ChaosPlan) Validate() error {
	if p.Batches < 1 {
		return fmt.Errorf("adversary: chaos plan over %d batches", p.Batches)
	}
	for i, pt := range p.Points {
		ok := false
		for _, m := range chaosModes {
			if pt.Mode == m {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("adversary: chaos point %d: unknown mode %q", i, pt.Mode)
		}
		if pt.Batch < 0 || pt.Batch >= p.Batches {
			return fmt.Errorf("adversary: chaos point %d: batch %d outside [0,%d)", i, pt.Batch, p.Batches)
		}
	}
	return nil
}

// MarshalPlan/UnmarshalPlan mirror Plan's JSON round-trip contract.
func (p ChaosPlan) Marshal() ([]byte, error) { return json.MarshalIndent(p, "", "  ") }

// UnmarshalChaosPlan parses and validates a serialized chaos plan.
func UnmarshalChaosPlan(data []byte) (ChaosPlan, error) {
	var p ChaosPlan
	if err := json.Unmarshal(data, &p); err != nil {
		return ChaosPlan{}, fmt.Errorf("adversary: parsing chaos plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return ChaosPlan{}, err
	}
	return p, nil
}
