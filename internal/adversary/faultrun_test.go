package adversary_test

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"listcolor/internal/adversary"
	"listcolor/internal/baseline"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestCorruptedPayloadsNeverPanicSolver is the protocol-level half of
// the no-panic contract: a real solver bombarded with full-rate
// corruption must finish or fail deterministically — never with
// ErrNodePanic.
func TestCorruptedPayloadsNeverPanicSolver(t *testing.T) {
	g := graph.GNP(40, 0.2, rand.New(rand.NewSource(2)))
	plan := adversary.Merge(
		adversary.UniformCorrupt(21, 1.0, 1, 0), // rate 1 corrupts every delivery
		adversary.UniformCrash(g, 21, 0.1, 2, 3),
	)
	for _, d := range sim.AllDrivers() {
		cfg := plan.Apply(sim.Config{Driver: d, MaxRounds: 500})
		_, _, err := baseline.Luby(g, 99, cfg)
		if errors.Is(err, sim.ErrNodePanic) {
			t.Fatalf("driver %v: solver panicked under corruption: %v", d, err)
		}
	}
}

// TestPlanBitIdenticalAcrossDrivers runs one solver under one compiled
// plan on all three drivers and requires identical colors, stats and
// error text — the adversary analogue of the clean-run determinism
// property.
func TestPlanBitIdenticalAcrossDrivers(t *testing.T) {
	g := graph.GNP(30, 0.25, rand.New(rand.NewSource(8)))
	plan := adversary.Merge(
		adversary.UniformCrash(g, 13, 0.1, 2, 2),
		adversary.CrashRecoverWindows(g, 13, 0.1, 3, 2),
		adversary.PartitionLinks(g, 2, 4),
		adversary.UniformCorrupt(13, 0.2, 1, 0),
	)
	type out struct {
		colors  []int
		res     sim.Result
		errText string
	}
	var outs []out
	for _, d := range sim.AllDrivers() {
		cfg := plan.Apply(sim.Config{Driver: d, MaxRounds: 300})
		colors, res, err := baseline.Luby(g, 5, cfg)
		o := out{colors: colors, res: res}
		if err != nil {
			o.errText = err.Error()
		}
		outs = append(outs, o)
	}
	for i, o := range outs[1:] {
		if !reflect.DeepEqual(o, outs[0]) {
			t.Errorf("driver %v diverged from lockstep under the plan:\n%+v\nvs\n%+v",
				sim.AllDrivers()[i+1], o, outs[0])
		}
	}
}
