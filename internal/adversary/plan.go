// Package adversary builds deterministic, seed-derived fault plans for
// the simulator: crash-stop and crash-recover node failures, link
// failures (edge dead for a round range) and message corruption
// (seeded bit-flips in the CONGEST payload). A Plan is pure data — it
// round-trips through JSON — and compiles to the sim.Config fault
// hooks (NodeDown, DropMessage, CorruptMessage) as pure functions of
// (round, from, to), so a plan injects the identical fault schedule
// under every driver and across reruns.
//
// Determinism discipline: every random choice (which nodes crash,
// which deliveries corrupt, which bits flip) derives from the plan
// seed via splitmix64 — the same discipline as bench.CellSeed — never
// from global randomness or execution order.
package adversary

import (
	"encoding/json"
	"fmt"
	"math"

	"listcolor/internal/sim"
	"listcolor/internal/trace"
)

// Kind is the fault-event taxonomy.
type Kind string

const (
	// CrashStop silences a node permanently from round Start on; its
	// protocol state is frozen and it never sends again.
	CrashStop Kind = "crash-stop"
	// CrashRecover silences a node for rounds [Start, End], state
	// preserved; it resumes in round End+1 (having missed the
	// deliveries of its down window).
	CrashRecover Kind = "crash-recover"
	// LinkDown kills the undirected edge {From, To} for rounds
	// [Start, End]: deliveries in both directions are dropped.
	LinkDown Kind = "link-down"
	// Corrupt flips seeded bits in the payloads delivered on matching
	// edges during [Start, End]. From/To of -1 match any endpoint;
	// Rate, when in (0,1), corrupts only that seeded fraction of
	// matching deliveries.
	Corrupt Kind = "corrupt"
)

// Event is one typed fault. Field use per kind:
//
//	CrashStop:    Node, Start          (End ignored; the crash is final)
//	CrashRecover: Node, Start, End
//	LinkDown:     From, To, Start, End
//	Corrupt:      From, To (-1 = any), Start, End (0 = open), Rate
type Event struct {
	Kind  Kind    `json:"kind"`
	Node  int     `json:"node"`
	From  int     `json:"from"`
	To    int     `json:"to"`
	Start int     `json:"start"`
	End   int     `json:"end"`
	Rate  float64 `json:"rate,omitempty"`
}

// Plan is a complete fault schedule: a seed (driving every bit-flip
// and rate draw) plus the event list. The zero Plan is the empty
// (fault-free) schedule.
type Plan struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// splitmix64 is the standard 64-bit finalizer — the same mixing
// discipline bench.CellSeed uses — so adjacent rounds, edges and
// event indices land on statistically independent draws.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix derives the per-delivery draw for (round, from, to) from the
// plan seed.
func mix(seed int64, round, from, to int) uint64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ uint64(round))
	x = splitmix64(x ^ uint64(from)<<1)
	return splitmix64(x ^ uint64(to)<<1 ^ 1)
}

// Validate rejects structurally broken plans: unknown kinds, negative
// rounds, inverted windows, rates outside [0,1].
func (p Plan) Validate() error {
	for i, e := range p.Events {
		switch e.Kind {
		case CrashStop, CrashRecover, LinkDown, Corrupt:
		default:
			return fmt.Errorf("adversary: event %d: unknown kind %q", i, e.Kind)
		}
		if e.Start < 1 {
			return fmt.Errorf("adversary: event %d (%s): start %d < 1 (round 0 is Init; faults begin at round 1)", i, e.Kind, e.Start)
		}
		if e.Kind == CrashRecover || e.Kind == LinkDown {
			if e.End < e.Start {
				return fmt.Errorf("adversary: event %d (%s): end %d < start %d", i, e.Kind, e.End, e.Start)
			}
		}
		if e.Kind == Corrupt && e.End != 0 && e.End < e.Start {
			return fmt.Errorf("adversary: event %d (%s): end %d < start %d", i, e.Kind, e.End, e.Start)
		}
		if e.Kind == CrashStop || e.Kind == CrashRecover {
			if e.Node < 0 {
				return fmt.Errorf("adversary: event %d (%s): negative node %d", i, e.Kind, e.Node)
			}
		}
		if e.Kind == LinkDown && (e.From < 0 || e.To < 0) {
			return fmt.Errorf("adversary: event %d (link-down): negative endpoint (%d,%d)", i, e.From, e.To)
		}
		if e.Rate < 0 || e.Rate > 1 {
			return fmt.Errorf("adversary: event %d (%s): rate %v outside [0,1]", i, e.Kind, e.Rate)
		}
	}
	return nil
}

// Merge concatenates plans into one; the first plan's seed wins (all
// inputs of a merged schedule should share one seed anyway).
func Merge(plans ...Plan) Plan {
	var out Plan
	for i, p := range plans {
		if i == 0 {
			out.Seed = p.Seed
		}
		out.Events = append(out.Events, p.Events...)
	}
	return out
}

// Hooks are the compiled sim.Config fault hooks of a plan. All three
// are pure functions of their arguments (no captured mutable state),
// so the same Hooks value can drive every driver and any number of
// reruns.
type Hooks struct {
	NodeDown       func(round, v int) sim.NodeStatus
	DropMessage    func(round, from, to int) bool
	CorruptMessage func(round, from, to int, p sim.Payload) (sim.Payload, bool)
}

// Compile partitions the events by kind and returns the pure hook
// functions. Hooks for kinds the plan never uses are nil, so an
// empty plan compiles to the zero (fault-free) Hooks.
func (p Plan) Compile() Hooks {
	var crashes, links, corrupts []Event
	maxNode := -1
	for _, e := range p.Events {
		switch e.Kind {
		case CrashStop, CrashRecover:
			crashes = append(crashes, e)
			if e.Node > maxNode {
				maxNode = e.Node
			}
		case LinkDown:
			links = append(links, e)
		case Corrupt:
			corrupts = append(corrupts, e)
		}
	}
	var h Hooks
	if len(crashes) > 0 {
		// Per-node event lists: crashAt is the earliest crash-stop
		// round (math.MaxInt = never); windows the crash-recover spans.
		crashAt := make([]int, maxNode+1)
		for i := range crashAt {
			crashAt[i] = math.MaxInt
		}
		windows := make([][][2]int, maxNode+1)
		for _, e := range crashes {
			if e.Kind == CrashStop {
				if e.Start < crashAt[e.Node] {
					crashAt[e.Node] = e.Start
				}
			} else {
				windows[e.Node] = append(windows[e.Node], [2]int{e.Start, e.End})
			}
		}
		h.NodeDown = func(round, v int) sim.NodeStatus {
			if v >= len(crashAt) {
				return sim.NodeUp
			}
			if round >= crashAt[v] {
				return sim.NodeCrashed
			}
			for _, w := range windows[v] {
				if round >= w[0] && round <= w[1] {
					return sim.NodeDowned
				}
			}
			return sim.NodeUp
		}
	}
	if len(links) > 0 {
		dead := links
		h.DropMessage = func(round, from, to int) bool {
			for _, e := range dead {
				if round < e.Start || round > e.End {
					continue
				}
				if (e.From == from && e.To == to) || (e.From == to && e.To == from) {
					return true
				}
			}
			return false
		}
	}
	if len(corrupts) > 0 {
		seed := p.Seed
		events := corrupts
		h.CorruptMessage = func(round, from, to int, pay sim.Payload) (sim.Payload, bool) {
			if pay == nil {
				return nil, false
			}
			for i, e := range events {
				if round < e.Start || (e.End != 0 && round > e.End) {
					continue
				}
				if e.From >= 0 && e.From != from {
					continue
				}
				if e.To >= 0 && e.To != to {
					continue
				}
				draw := mix(seed+int64(i)*0x9e37, round, from, to)
				if e.Rate > 0 && e.Rate < 1 {
					if float64(draw>>11)/float64(1<<53) >= e.Rate {
						continue
					}
				}
				return corruptPayload(draw, pay), true
			}
			return pay, false
		}
	}
	return h
}

// corruptPayload renders the payload's wire image and flips 1–3
// seeded bits. Payload types without a canonical encoding (protocol-
// private wrappers) get seeded pseudo-random bytes of the same wire
// size — equally useless to the receiver, equally deterministic.
func corruptPayload(draw uint64, p sim.Payload) sim.Corrupted {
	bits := p.SizeBits()
	data, ok := sim.EncodePayload(p)
	if !ok {
		n := (bits + 7) / 8
		if n == 0 {
			n = 1
		}
		data = make([]byte, n)
		x := draw
		for i := range data {
			x = splitmix64(x)
			data[i] = byte(x)
		}
		return sim.Corrupted{Data: data, Bits: bits}
	}
	buf := append([]byte(nil), data...) // never alias the sender's view
	flips := 1 + int(draw%3)
	x := draw
	for i := 0; i < flips; i++ {
		x = splitmix64(x)
		pos := int(x % uint64(len(buf)*8))
		buf[pos/8] ^= 1 << (pos % 8)
	}
	return sim.Corrupted{Data: buf, Bits: bits}
}

// Apply compiles the plan and installs its hooks into cfg, chaining
// any hooks already present (existing DropMessage runs first; an
// existing CorruptMessage corrupts only deliveries the plan left
// alone; an existing NodeDown verdict wins when it is not NodeUp).
func (p Plan) Apply(cfg sim.Config) sim.Config {
	h := p.Compile()
	if h.NodeDown != nil {
		if prev := cfg.NodeDown; prev != nil {
			next := h.NodeDown
			cfg.NodeDown = func(round, v int) sim.NodeStatus {
				if st := prev(round, v); st != sim.NodeUp {
					return st
				}
				return next(round, v)
			}
		} else {
			cfg.NodeDown = h.NodeDown
		}
	}
	if h.DropMessage != nil {
		if prev := cfg.DropMessage; prev != nil {
			next := h.DropMessage
			cfg.DropMessage = func(round, from, to int) bool {
				return prev(round, from, to) || next(round, from, to)
			}
		} else {
			cfg.DropMessage = h.DropMessage
		}
	}
	if h.CorruptMessage != nil {
		if prev := cfg.CorruptMessage; prev != nil {
			next := h.CorruptMessage
			cfg.CorruptMessage = func(round, from, to int, pay sim.Payload) (sim.Payload, bool) {
				if p2, ok := next(round, from, to, pay); ok {
					return p2, true
				}
				return prev(round, from, to, pay)
			}
		} else {
			cfg.CorruptMessage = h.CorruptMessage
		}
	}
	return cfg
}

// Annotate records every planned fault as a trace event, so a traced
// run shows the injected faults next to the per-round statistics.
func (p Plan) Annotate(rec *trace.Recorder) {
	for _, e := range p.Events {
		var detail string
		switch e.Kind {
		case CrashStop:
			detail = fmt.Sprintf("node %d crashes", e.Node)
		case CrashRecover:
			detail = fmt.Sprintf("node %d down through round %d", e.Node, e.End)
		case LinkDown:
			detail = fmt.Sprintf("link {%d,%d} dead through round %d", e.From, e.To, e.End)
		case Corrupt:
			detail = fmt.Sprintf("corruption on %s (rate %.2f) through round %d", edgeLabel(e.From, e.To), e.Rate, e.End)
		}
		rec.Annotate(e.Start, string(e.Kind), detail)
	}
}

func edgeLabel(from, to int) string {
	if from < 0 && to < 0 {
		return "all edges"
	}
	return fmt.Sprintf("{%d,%d}", from, to)
}

// Encode renders the plan as indented JSON (the cmd/colorsim -faults
// file format).
func (p Plan) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// ParsePlan parses and validates a JSON plan.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("adversary: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}
