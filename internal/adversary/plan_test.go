package adversary

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"listcolor/internal/sim"
	"listcolor/internal/trace"
)

func TestPlanValidate(t *testing.T) {
	ok := func(events ...Event) Plan { return Plan{Seed: 1, Events: events} }
	cases := []struct {
		name string
		plan Plan
		want string // "" = valid; otherwise a substring of the error
	}{
		{"empty", Plan{}, ""},
		{"crash stop", ok(Event{Kind: CrashStop, Node: 2, Start: 1}), ""},
		{"crash recover", ok(Event{Kind: CrashRecover, Node: 0, Start: 2, End: 4}), ""},
		{"link down", ok(Event{Kind: LinkDown, From: 0, To: 1, Start: 1, End: 1}), ""},
		{"corrupt open-ended", ok(Event{Kind: Corrupt, From: -1, To: -1, Start: 1, Rate: 0.5}), ""},
		{"unknown kind", ok(Event{Kind: "meteor", Node: 1, Start: 1}), "unknown kind"},
		{"round zero", ok(Event{Kind: CrashStop, Node: 1, Start: 0}), "round 0 is Init"},
		{"inverted window", ok(Event{Kind: CrashRecover, Node: 1, Start: 5, End: 3}), "end 3 < start 5"},
		{"inverted corrupt", ok(Event{Kind: Corrupt, Start: 5, End: 3}), "end 3 < start 5"},
		{"negative node", ok(Event{Kind: CrashStop, Node: -2, Start: 1}), "negative node"},
		{"negative endpoint", ok(Event{Kind: LinkDown, From: -1, To: 2, Start: 1, End: 2}), "negative endpoint"},
		{"rate too big", ok(Event{Kind: Corrupt, From: -1, To: -1, Start: 1, Rate: 1.5}), "outside [0,1]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestMerge(t *testing.T) {
	a := Plan{Seed: 7, Events: []Event{{Kind: CrashStop, Node: 1, Start: 2}}}
	b := Plan{Seed: 99, Events: []Event{{Kind: Corrupt, From: -1, To: -1, Start: 1, Rate: 0.1}}}
	m := Merge(a, b)
	if m.Seed != 7 {
		t.Errorf("Merge seed = %d, want the first plan's 7", m.Seed)
	}
	if len(m.Events) != 2 || m.Events[0].Kind != CrashStop || m.Events[1].Kind != Corrupt {
		t.Errorf("Merge events = %+v", m.Events)
	}
}

func TestCompileCrashSemantics(t *testing.T) {
	p := Plan{Seed: 1, Events: []Event{
		{Kind: CrashStop, Node: 2, Start: 3},
		{Kind: CrashRecover, Node: 4, Start: 2, End: 4},
	}}
	h := p.Compile()
	if h.DropMessage != nil || h.CorruptMessage != nil {
		t.Fatal("plan without link/corrupt events must compile nil drop/corrupt hooks")
	}
	cases := []struct {
		round, v int
		want     sim.NodeStatus
	}{
		{1, 2, sim.NodeUp},
		{2, 2, sim.NodeUp},
		{3, 2, sim.NodeCrashed},
		{100, 2, sim.NodeCrashed}, // crash-stop is final
		{1, 4, sim.NodeUp},
		{2, 4, sim.NodeDowned},
		{4, 4, sim.NodeDowned},
		{5, 4, sim.NodeUp},  // recovered
		{3, 0, sim.NodeUp},  // untargeted node
		{3, 99, sim.NodeUp}, // out of the event range
	}
	for _, tc := range cases {
		if got := h.NodeDown(tc.round, tc.v); got != tc.want {
			t.Errorf("NodeDown(%d, %d) = %v, want %v", tc.round, tc.v, got, tc.want)
		}
	}
}

func TestCompileLinkDown(t *testing.T) {
	p := Plan{Events: []Event{{Kind: LinkDown, From: 1, To: 3, Start: 2, End: 4}}}
	h := p.Compile()
	if h.NodeDown != nil {
		t.Fatal("link-only plan must compile nil NodeDown")
	}
	for round := 1; round <= 5; round++ {
		inWindow := round >= 2 && round <= 4
		if got := h.DropMessage(round, 1, 3); got != inWindow {
			t.Errorf("round %d drop(1,3) = %v, want %v", round, got, inWindow)
		}
		// The undirected edge dies in both directions.
		if got := h.DropMessage(round, 3, 1); got != inWindow {
			t.Errorf("round %d drop(3,1) = %v, want %v", round, got, inWindow)
		}
		if h.DropMessage(round, 1, 2) {
			t.Errorf("round %d: unrelated edge dropped", round)
		}
	}
}

func TestCompileCorruptDeterministic(t *testing.T) {
	p := Plan{Seed: 1234, Events: []Event{{Kind: Corrupt, From: -1, To: -1, Start: 1}}}
	h1 := p.Compile()
	h2 := p.Compile()
	payload := sim.IntPayload{Value: 5, Domain: 16}
	c1, ok1 := h1.CorruptMessage(2, 0, 1, payload)
	c2, ok2 := h2.CorruptMessage(2, 0, 1, payload)
	if !ok1 || !ok2 {
		t.Fatal("full-rate corrupt event must corrupt every matching delivery")
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Errorf("same plan, same delivery, different corruption: %#v vs %#v", c1, c2)
	}
	cr, isCorrupted := c1.(sim.Corrupted)
	if !isCorrupted {
		t.Fatalf("corrupted payload has type %T, want sim.Corrupted", c1)
	}
	if cr.Bits != payload.SizeBits() {
		t.Errorf("corrupted Bits = %d, want the original %d", cr.Bits, payload.SizeBits())
	}
	orig, _ := sim.EncodePayload(payload)
	if bytes.Equal(cr.Data, orig) {
		t.Error("corruption flipped no bits")
	}
	// A different edge gets a different draw (and typically different bytes).
	c3, _ := h1.CorruptMessage(2, 0, 2, payload)
	if reflect.DeepEqual(c1, c3) {
		t.Log("warning: two edges drew identical corruption (possible but unlikely)")
	}
}

func TestCompileCorruptRateAndWindow(t *testing.T) {
	p := Plan{Seed: 9, Events: []Event{{Kind: Corrupt, From: -1, To: -1, Start: 3, End: 5, Rate: 0.5}}}
	h := p.Compile()
	payload := sim.IntPayload{Value: 1, Domain: 4}
	if _, ok := h.CorruptMessage(2, 0, 1, payload); ok {
		t.Error("corruption fired before its window")
	}
	if _, ok := h.CorruptMessage(6, 0, 1, payload); ok {
		t.Error("corruption fired after its window")
	}
	hits := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		if _, ok := h.CorruptMessage(4, i, i+1, payload); ok {
			hits++
		}
	}
	if hits < trials/4 || hits > trials*3/4 {
		t.Errorf("rate 0.5 corrupted %d/%d deliveries", hits, trials)
	}
	// Pure function: the same delivery always draws the same verdict.
	for i := 0; i < 20; i++ {
		_, a := h.CorruptMessage(4, i, i+1, payload)
		_, b := h.CorruptMessage(4, i, i+1, payload)
		if a != b {
			t.Fatalf("corrupt verdict for delivery %d not stable", i)
		}
	}
}

func TestCorruptWrapperPayloadGetsRandomBytes(t *testing.T) {
	// Protocol-private payload types have no canonical encoding; the
	// adversary substitutes seeded bytes of the same wire size.
	type private struct{ sim.IntPayload }
	p := Plan{Seed: 5, Events: []Event{{Kind: Corrupt, From: -1, To: -1, Start: 1}}}
	h := p.Compile()
	pay := private{sim.IntPayload{Value: 3, Domain: 256}}
	got, ok := h.CorruptMessage(1, 0, 1, pay)
	if !ok {
		t.Fatal("wrapper payload not corrupted")
	}
	cr := got.(sim.Corrupted)
	if cr.Bits != pay.SizeBits() {
		t.Errorf("Bits = %d, want %d", cr.Bits, pay.SizeBits())
	}
	wantLen := (pay.SizeBits() + 7) / 8
	if len(cr.Data) != wantLen {
		t.Errorf("substitute data length %d, want %d", len(cr.Data), wantLen)
	}
	got2, _ := h.CorruptMessage(1, 0, 1, pay)
	if !reflect.DeepEqual(got, got2) {
		t.Error("substitute bytes not deterministic")
	}
}

func TestApplyChainsExistingHooks(t *testing.T) {
	plan := Plan{Seed: 3, Events: []Event{
		{Kind: CrashStop, Node: 1, Start: 5},
		{Kind: LinkDown, From: 0, To: 1, Start: 1, End: 1},
	}}
	base := sim.Config{
		NodeDown: func(round, v int) sim.NodeStatus {
			if v == 2 {
				return sim.NodeDowned
			}
			return sim.NodeUp
		},
		DropMessage: func(round, from, to int) bool { return from == 9 },
	}
	cfg := plan.Apply(base)
	// The pre-existing hook's non-Up verdict wins.
	if got := cfg.NodeDown(1, 2); got != sim.NodeDowned {
		t.Errorf("chained NodeDown(1,2) = %v, want prior NodeDowned", got)
	}
	// The plan's verdict applies where the prior hook says NodeUp.
	if got := cfg.NodeDown(5, 1); got != sim.NodeCrashed {
		t.Errorf("chained NodeDown(5,1) = %v, want plan's NodeCrashed", got)
	}
	// Drops are OR-ed.
	if !cfg.DropMessage(3, 9, 0) {
		t.Error("prior drop predicate lost in chaining")
	}
	if !cfg.DropMessage(1, 0, 1) {
		t.Error("plan's link-down lost in chaining")
	}
	if cfg.DropMessage(2, 0, 1) {
		t.Error("drop fired outside both predicates")
	}
	// An empty plan leaves the config untouched.
	empty := Plan{}.Apply(sim.Config{})
	if empty.NodeDown != nil || empty.DropMessage != nil || empty.CorruptMessage != nil {
		t.Error("empty plan installed hooks")
	}
}

func TestAnnotate(t *testing.T) {
	plan := Plan{Events: []Event{
		{Kind: CrashStop, Node: 3, Start: 2},
		{Kind: Corrupt, From: -1, To: -1, Start: 1, End: 4, Rate: 0.25},
	}}
	var rec trace.Recorder
	plan.Annotate(&rec)
	evs := rec.Events()
	if len(evs) != 2 {
		t.Fatalf("Annotate recorded %d events, want 2", len(evs))
	}
	if evs[0].Round != 2 || evs[0].Kind != string(CrashStop) || !strings.Contains(evs[0].Detail, "node 3") {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != string(Corrupt) || !strings.Contains(evs[1].Detail, "all edges") {
		t.Errorf("event 1 = %+v", evs[1])
	}
	out := rec.Timeline(40)
	if !strings.Contains(out, "no rounds recorded") {
		t.Errorf("timeline without rounds = %q", out)
	}
}

// goldenPlan exercises every event kind and the JSON corner cases
// (wildcard endpoints, open End, fractional rate).
var goldenPlan = Plan{
	Seed: 42,
	Events: []Event{
		{Kind: CrashStop, Node: 3, Start: 2},
		{Kind: CrashRecover, Node: 5, Start: 2, End: 4},
		{Kind: LinkDown, From: 0, To: 1, Start: 1, End: 3},
		{Kind: Corrupt, From: -1, To: -1, Start: 1, End: 0, Rate: 0.25},
	},
}

// TestPlanJSONGolden pins the -faults file format: Encode must produce
// exactly the committed golden bytes, and ParsePlan must invert it.
// Regenerate with: UPDATE_GOLDEN=1 go test ./internal/adversary -run Golden
func TestPlanJSONGolden(t *testing.T) {
	path := filepath.Join("testdata", "plan_golden.json")
	got, err := goldenPlan.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if updateGolden() {
		if err := os.WriteFile(path, append(got, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(append(got, '\n'), want) {
		t.Errorf("Encode drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	back, err := ParsePlan(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, goldenPlan) {
		t.Errorf("ParsePlan(golden) = %+v, want %+v", back, goldenPlan)
	}
}

func TestParsePlanRejectsBrokenInput(t *testing.T) {
	if _, err := ParsePlan([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ParsePlan([]byte(`{"seed":1,"events":[{"kind":"meteor","start":1}]}`)); err == nil {
		t.Error("unknown event kind accepted")
	}
}

func updateGolden() bool { return os.Getenv("UPDATE_GOLDEN") != "" }
