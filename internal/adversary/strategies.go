package adversary

import (
	"sort"

	"listcolor/internal/graph"
)

// strategies.go builds plans from targeting strategies: who gets hit
// is itself a pure function of (graph, seed, parameters), so two runs
// of the same strategy on the same workload produce byte-identical
// plans.

// UniformCrash crash-stops a seeded ~rate fraction of all nodes; each
// selected node crashes at a seeded round in [start, start+spread]
// (spread 0 crashes them all in round start).
func UniformCrash(g *graph.Graph, seed int64, rate float64, start, spread int) Plan {
	p := Plan{Seed: seed}
	for v := 0; v < g.N(); v++ {
		draw := mix(seed, 0, v, 0)
		if float64(draw>>11)/float64(1<<53) >= rate {
			continue
		}
		r := start
		if spread > 0 {
			r += int(splitmix64(draw) % uint64(spread+1))
		}
		p.Events = append(p.Events, Event{Kind: CrashStop, Node: v, Start: r})
	}
	return p
}

// TopDegreeCrash crash-stops the k highest-degree nodes (ties broken
// by smaller id) at round start — the adversary's best shot at hub
// infrastructure.
func TopDegreeCrash(g *graph.Graph, k, start int) Plan {
	order := make([]int, g.N())
	for v := range order {
		order[v] = v
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	if k > len(order) {
		k = len(order)
	}
	var p Plan
	for _, v := range order[:k] {
		p.Events = append(p.Events, Event{Kind: CrashStop, Node: v, Start: start})
	}
	return p
}

// CrashRecoverWindows takes a seeded ~rate fraction of nodes down for
// the window [start, start+length-1] each, state preserved.
func CrashRecoverWindows(g *graph.Graph, seed int64, rate float64, start, length int) Plan {
	if length < 1 {
		length = 1
	}
	p := Plan{Seed: seed}
	for v := 0; v < g.N(); v++ {
		draw := mix(seed, 1, v, 0)
		if float64(draw>>11)/float64(1<<53) >= rate {
			continue
		}
		p.Events = append(p.Events, Event{Kind: CrashRecover, Node: v, Start: start, End: start + length - 1})
	}
	return p
}

// PartitionLinks kills a min-cut-ish edge set for rounds
// [start, end]: a BFS from node 0 grows one side to ⌈n/2⌉ nodes
// (continuing from the smallest unvisited node across components),
// and every edge crossing the resulting bisection goes down — a
// transient network partition along a frontier that is typically much
// smaller than a random edge sample of equal separating power.
func PartitionLinks(g *graph.Graph, start, end int) Plan {
	n := g.N()
	half := (n + 1) / 2
	side := make([]bool, n)
	count := 0
	queue := make([]int, 0, half)
	for s := 0; s < n && count < half; s++ {
		if side[s] {
			continue
		}
		side[s] = true
		count++
		queue = append(queue[:0], s)
		for len(queue) > 0 && count < half {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if side[u] || count >= half {
					continue
				}
				side[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	var p Plan
	for _, e := range g.Edges() {
		if side[e[0]] != side[e[1]] {
			p.Events = append(p.Events, Event{Kind: LinkDown, From: e[0], To: e[1], Start: start, End: end})
		}
	}
	return p
}

// UniformCorrupt flips seeded bits in a ~rate fraction of every
// delivery on every edge during [start, end] (end 0 = forever).
func UniformCorrupt(seed int64, rate float64, start, end int) Plan {
	return Plan{Seed: seed, Events: []Event{
		{Kind: Corrupt, From: -1, To: -1, Start: start, End: end, Rate: rate},
	}}
}
