package adversary

import (
	"math/rand"
	"reflect"
	"testing"

	"listcolor/internal/graph"
)

func TestUniformCrashDeterministicAndRateBounded(t *testing.T) {
	g := graph.GNP(200, 0.05, rand.New(rand.NewSource(1)))
	a := UniformCrash(g, 77, 0.2, 3, 2)
	b := UniformCrash(g, 77, 0.2, 3, 2)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, different plan")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 || len(a.Events) > g.N()/2 {
		t.Errorf("rate 0.2 selected %d of %d nodes", len(a.Events), g.N())
	}
	for _, e := range a.Events {
		if e.Kind != CrashStop {
			t.Fatalf("unexpected kind %s", e.Kind)
		}
		if e.Start < 3 || e.Start > 5 {
			t.Errorf("node %d crashes at %d, want within [3,5]", e.Node, e.Start)
		}
	}
	other := UniformCrash(g, 78, 0.2, 3, 2)
	if reflect.DeepEqual(a.Events, other.Events) {
		t.Error("different seeds selected identical crash sets")
	}
	if got := UniformCrash(g, 77, 0, 3, 0); len(got.Events) != 0 {
		t.Errorf("rate 0 crashed %d nodes", len(got.Events))
	}
}

func TestTopDegreeCrash(t *testing.T) {
	// Star plus pendant path: node 0 has the unique max degree.
	g := graph.New(6)
	for v := 1; v <= 4; v++ {
		g.MustAddEdge(0, v)
	}
	g.MustAddEdge(4, 5)
	p := TopDegreeCrash(g, 2, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(p.Events))
	}
	if p.Events[0].Node != 0 {
		t.Errorf("first crash target %d, want hub 0", p.Events[0].Node)
	}
	// Degree-2 tie between node 4 and nobody else of that degree above
	// the leaves; ties break by smaller id among equal degrees.
	if p.Events[1].Node != 4 {
		t.Errorf("second crash target %d, want 4", p.Events[1].Node)
	}
	// k beyond n clamps.
	if got := TopDegreeCrash(g, 99, 1); len(got.Events) != g.N() {
		t.Errorf("oversized k produced %d events", len(got.Events))
	}
}

func TestCrashRecoverWindows(t *testing.T) {
	g := graph.Ring(100)
	p := CrashRecoverWindows(g, 5, 0.3, 4, 3)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) == 0 {
		t.Fatal("rate 0.3 selected nobody on 100 nodes")
	}
	for _, e := range p.Events {
		if e.Kind != CrashRecover || e.Start != 4 || e.End != 6 {
			t.Fatalf("bad window event %+v", e)
		}
	}
	// Selection draws differ from UniformCrash's (stream index 1 vs 0),
	// so combined plans don't always hit the same victims.
	q := UniformCrash(g, 5, 0.3, 4, 0)
	same := len(p.Events) == len(q.Events)
	if same {
		for i := range p.Events {
			if p.Events[i].Node != q.Events[i].Node {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("crash-recover and crash-stop strategies drew identical victim sets")
	}
}

func TestPartitionLinksBisectsRing(t *testing.T) {
	g := graph.Ring(10)
	p := PartitionLinks(g, 2, 5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// A BFS half of a ring is an arc; exactly two edges cross.
	if len(p.Events) != 2 {
		t.Fatalf("ring bisection cut %d edges, want 2", len(p.Events))
	}
	for _, e := range p.Events {
		if e.Kind != LinkDown || e.Start != 2 || e.End != 5 {
			t.Fatalf("bad link event %+v", e)
		}
	}
	// The cut disconnects the graph: removing those edges splits the ring.
	cut := map[[2]int]bool{}
	for _, e := range p.Events {
		cut[[2]int{e.From, e.To}] = true
		cut[[2]int{e.To, e.From}] = true
	}
	h := g.FilterEdges(func(u, v int) bool { return !cut[[2]int{u, v}] })
	if comps := countComponents(h); comps != 2 {
		t.Errorf("after the cut the ring has %d components, want 2", comps)
	}
}

func countComponents(g *graph.Graph) int {
	seen := make([]bool, g.N())
	comps := 0
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		comps++
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	return comps
}

func TestPartitionLinksDisconnectedInput(t *testing.T) {
	// Two components: BFS must keep growing past the first one.
	g := graph.Union(graph.Ring(3), graph.Ring(7))
	p := PartitionLinks(g, 1, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) == 0 {
		t.Fatal("no cut found on the larger component")
	}
}

func TestUniformCorrupt(t *testing.T) {
	p := UniformCorrupt(11, 0.15, 1, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(p.Events))
	}
	e := p.Events[0]
	if e.Kind != Corrupt || e.From != -1 || e.To != -1 || e.Rate != 0.15 {
		t.Errorf("event = %+v", e)
	}
	if p.Seed != 11 {
		t.Errorf("seed = %d", p.Seed)
	}
}
