// Package baseline implements the comparison algorithms the
// experiments measure the paper's contributions against:
//
//   - GreedyList: the sequential greedy list coloring (the coloring
//     quality yardstick; requires |L_v| ≥ deg(v)+1).
//   - GreedyDefective: the classical one-sweep d-defective greedy with
//     C colors (each node takes the least-conflicting color).
//   - Luby: the randomized O(log n)-round (Δ+1)-coloring of
//     [ABI86, Lub86, Lin87], as a genuine message-passing protocol.
//   - SelectSort / SelectBruteForce: the Phase-I sublist selection of
//     the Two-Sweep algorithm implemented two ways — the paper's
//     near-linear sort (what package twosweep does) and an exhaustive
//     subset search standing in for the exponential-local-computation
//     algorithms of [MT20, FK23a] (whose nodes search subsets of
//     2^{L_v}; Appendix C of the full version reports local
//     computation more than exponential in the list size). Benchmark
//     E6 compares their costs; both return selections of equal quality
//     so the comparison is purely computational.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
)

// ErrStuck is returned when a greedy baseline cannot proceed.
var ErrStuck = errors.New("baseline: greedy stuck")

// GreedyList colors g properly from the instance's lists by a single
// sequential sweep in id order. It requires |L_v| ≥ deg(v)+1 (then a
// free color always exists).
func GreedyList(g *graph.Graph, inst *coloring.Instance) ([]int, error) {
	n := g.N()
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	used := palette.NewSet(inst.Space)
	for v := 0; v < n; v++ {
		used.Clear()
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used.Insert(colors[u])
			}
		}
		chosen := -1
		for _, x := range inst.Lists[v] {
			if !used.Contains(x) {
				chosen = x
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("%w: node %d has no free color", ErrStuck, v)
		}
		colors[v] = chosen
	}
	return colors, nil
}

// GreedyDefective computes a defective coloring with c colors by a
// single sequential sweep: each node takes the color minimizing the
// number of already-colored conflicting neighbors. The resulting
// defect of a node v is at most ⌊deg(v)/c⌋ toward earlier nodes (later
// nodes may add more); the returned slice is the coloring, and callers
// measure the realized defect with graph.MonochromaticDegree.
func GreedyDefective(g *graph.Graph, c int) []int {
	if c < 1 {
		panic("baseline: GreedyDefective needs ≥ 1 color")
	}
	n := g.N()
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	counts := palette.NewCounter(c)
	for v := 0; v < n; v++ {
		counts.Reset()
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				counts.Add(colors[u])
			}
		}
		colors[v] = counts.ArgMin(c)
	}
	return colors
}

// lubyNode is the per-node protocol of the randomized (Δ+1)-coloring:
// every round, each uncolored node proposes a random color from its
// remaining palette; a proposal is kept if no uncolored neighbor
// proposed the same color and no colored neighbor owns it. The
// remaining palette is a kernel bitset; drawing the i-th smallest
// member reproduces exactly the sorted-options draw of the old
// map-based implementation, so colorings are unchanged for a seed.
type lubyNode struct {
	rng      *rand.Rand
	palette  *palette.Set
	proposal int
	result   *int
	space    int
}

func (l *lubyNode) Init(ctx *sim.Context) []sim.Outgoing {
	return l.propose()
}

func (l *lubyNode) propose() []sim.Outgoing {
	x, ok := l.palette.NthSet(l.rng.Intn(l.palette.Len()))
	if !ok {
		panic("baseline: luby palette exhausted")
	}
	l.proposal = x
	return []sim.Outgoing{{To: sim.Broadcast, Payload: sim.PairPayload{
		A: l.proposal, B: 0, DomainA: l.space, DomainB: 2,
	}}}
}

func (l *lubyNode) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	conflict := false
	for _, m := range inbox {
		p, ok := m.Payload.(sim.PairPayload)
		if !ok {
			continue // corrupted in transit: treated as garbage/dropped
		}
		if p.B == 1 { // neighbor finalized this color
			l.palette.Remove(p.A)
			if p.A == l.proposal {
				conflict = true
			}
		} else if p.A == l.proposal {
			conflict = true
		}
	}
	if !conflict {
		*l.result = l.proposal
		return []sim.Outgoing{{To: sim.Broadcast, Payload: sim.PairPayload{
			A: l.proposal, B: 1, DomainA: l.space, DomainB: 2,
		}}}, true
	}
	return l.propose(), false
}

// Luby runs the randomized (Δ+1)-coloring protocol and returns the
// coloring plus simulation statistics. Each node's palette is
// [0, Δ+1); randomness is drawn from per-node generators seeded from
// seed, so runs are reproducible.
func Luby(g *graph.Graph, seed int64, cfg sim.Config) ([]int, sim.Result, error) {
	n := g.N()
	space := g.RawMaxDegree() + 1
	colors := make([]int, n)
	nodes := make([]sim.Node, n)
	for v := 0; v < n; v++ {
		pal := palette.NewSet(space)
		pal.Fill()
		nodes[v] = &lubyNode{
			rng:     rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D)),
			palette: pal,
			result:  &colors[v],
			space:   space,
		}
	}
	stats, err := sim.Run(sim.NewNetwork(g), nodes, cfg)
	if err != nil {
		return nil, stats, fmt.Errorf("baseline: luby: %w", err)
	}
	return colors, stats, nil
}

// BruteForceOLDC searches for ANY valid oriented list defective
// coloring by backtracking over the nodes in id order. It returns the
// coloring and true if one exists. Exponential in n — usable only for
// the tiny instances of cross-validation tests, where it provides the
// ground truth of instance solvability (Theorem 1.1's slack condition
// is sufficient for solvability, so any slack-satisfying instance must
// come back true).
func BruteForceOLDC(d *graph.Digraph, inst *coloring.Instance) ([]int, bool) {
	n := d.N()
	if n > 20 {
		panic("baseline: BruteForceOLDC infeasible beyond 20 nodes")
	}
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	var try func(v int) bool
	feasibleSoFar := func(v int) bool {
		// Check the out-defect of v and of every earlier node that can
		// no longer gain conflicts... conservatively, recheck all
		// assigned nodes' defects against assigned out-neighbors.
		for u := 0; u <= v; u++ {
			allowed, ok := inst.DefectOf(u, colors[u])
			if !ok {
				return false
			}
			conflicts := 0
			for _, w := range d.Out(u) {
				if colors[w] >= 0 && colors[w] == colors[u] {
					conflicts++
				}
			}
			if conflicts > allowed {
				return false
			}
		}
		return true
	}
	try = func(v int) bool {
		if v == n {
			return true
		}
		for _, x := range inst.Lists[v] {
			colors[v] = x
			if feasibleSoFar(v) && try(v+1) {
				return true
			}
		}
		colors[v] = -1
		return false
	}
	if try(0) {
		return colors, true
	}
	return nil, false
}

// Selection is the outcome of a Phase-I sublist selection: the chosen
// colors, the objective value Σ_{x∈S}(d_v(x)+1) − k_v(x) it achieves
// (higher is better; both implementations maximize it exactly), and a
// deterministic count of the elementary operations spent — the
// machine-independent "internal computation" measure the paper's
// complexity comparison is about.
type Selection struct {
	Colors []int
	Value  int
	Ops    int64
}

// SelectSort picks the ≤ p colors maximizing Σ (d(x) − k(x)) by
// sorting — the Two-Sweep algorithm's O(Λ log Λ) local computation.
func SelectSort(list, defects []int, k map[int]int, p int) Selection {
	idx := make([]int, len(list))
	for i := range idx {
		idx[i] = i
	}
	var ops int64
	score := func(i int) int { return defects[i] - k[list[i]] }
	sort.SliceStable(idx, func(a, b int) bool {
		ops++
		return score(idx[a]) > score(idx[b])
	})
	take := p
	if len(list) < take {
		take = len(list)
	}
	sel := Selection{Colors: make([]int, 0, take)}
	for _, i := range idx[:take] {
		ops++
		sel.Colors = append(sel.Colors, list[i])
		sel.Value += defects[i] + 1 - k[list[i]]
	}
	sort.Ints(sel.Colors)
	sel.Ops = ops
	return sel
}

// SelectBruteForce finds the same optimum by exhaustively scoring
// every subset of the list of size ≤ p — Θ(2^Λ·Λ) local computation,
// the cost regime of the subset-searching algorithms in [MT20, FK23a].
// It panics for lists longer than 24 colors (2^24 subsets), which is
// exactly the point the computational-complexity comparison makes.
func SelectBruteForce(list, defects []int, k map[int]int, p int) Selection {
	if len(list) > 24 {
		panic("baseline: brute-force subset search infeasible beyond 24 colors")
	}
	want := p
	if len(list) < want {
		want = len(list)
	}
	var ops int64
	best := Selection{Value: -1 << 62}
	for mask := 1; mask < 1<<uint(len(list)); mask++ {
		ops++
		if popcount(mask) != want {
			continue
		}
		value := 0
		for i := 0; i < len(list); i++ {
			ops++
			if mask&(1<<uint(i)) != 0 {
				value += defects[i] + 1 - k[list[i]]
			}
		}
		if value > best.Value {
			best.Value = value
			best.Colors = best.Colors[:0]
			for i := 0; i < len(list); i++ {
				if mask&(1<<uint(i)) != 0 {
					best.Colors = append(best.Colors, list[i])
				}
			}
		}
	}
	sort.Ints(best.Colors)
	best.Ops = ops
	return best
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// SelectBruteForceCounter is SelectBruteForce reading k from the
// kernel Counter instead of a map. Mask enumeration, scoring order and
// ops accounting are identical, so for any k with the same contents
// the two return the same Selection — the differential tests in
// internal/twosweep pin that equivalence.
func SelectBruteForceCounter(list, defects []int, k *palette.Counter, p int) Selection {
	if len(list) > 24 {
		panic("baseline: brute-force subset search infeasible beyond 24 colors")
	}
	want := p
	if len(list) < want {
		want = len(list)
	}
	var ops int64
	best := Selection{Value: -1 << 62}
	for mask := 1; mask < 1<<uint(len(list)); mask++ {
		ops++
		if popcount(mask) != want {
			continue
		}
		value := 0
		for i := 0; i < len(list); i++ {
			ops++
			if mask&(1<<uint(i)) != 0 {
				value += defects[i] + 1 - k.Get(list[i])
			}
		}
		if value > best.Value {
			best.Value = value
			best.Colors = best.Colors[:0]
			for i := 0; i < len(list); i++ {
				if mask&(1<<uint(i)) != 0 {
					best.Colors = append(best.Colors, list[i])
				}
			}
		}
	}
	sort.Ints(best.Colors)
	best.Ops = ops
	return best
}

// SubsetSelector adapts SelectBruteForceCounter to the Phase-I
// selector signature used by the twosweep package, so the full
// Two-Sweep algorithm can be run end-to-end in the
// exponential-local-computation regime of [MT20, FK23a] for
// comparison (benchmark E15).
func SubsetSelector(list, defects []int, k *palette.Counter, p int, scratch *palette.SelectScratch) ([]int, int64) {
	sel := SelectBruteForceCounter(list, defects, k, p)
	return sel.Colors, sel.Ops
}
