package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

func TestGreedyList(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(40, 5, rng)
	inst := coloring.DegreePlusOne(g, g.MaxDegree()+1, rng)
	colors, err := GreedyList(g, inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateProperList(g, inst, colors); err != nil {
		t.Error(err)
	}
}

func TestGreedyListStuck(t *testing.T) {
	g := graph.Complete(3)
	inst := &coloring.Instance{
		Space:   2,
		Lists:   [][]int{{0, 1}, {0, 1}, {0, 1}},
		Defects: [][]int{{0, 0}, {0, 0}, {0, 0}},
	}
	if _, err := GreedyList(g, inst); err == nil {
		t.Error("K3 with 2 colors should be stuck")
	}
}

func TestGreedyDefectiveBound(t *testing.T) {
	// The classical bound: with c colors every graph has a
	// ⌊Δ/c⌋·2-ish defective coloring greedily; we verify the weaker
	// property that max defect drops as c grows.
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomRegular(60, 8, rng)
	prev := 1 << 30
	for _, c := range []int{1, 2, 4, 8} {
		colors := GreedyDefective(g, c)
		if mc := graph.MaxColor(colors); mc >= c {
			t.Fatalf("c=%d: color %d out of range", c, mc)
		}
		mono := graph.MonochromaticDegree(g, colors)
		worst := 0
		for _, m := range mono {
			if m > worst {
				worst = m
			}
		}
		if worst > prev {
			t.Errorf("c=%d: defect %d worse than with fewer colors (%d)", c, worst, prev)
		}
		prev = worst
	}
	// c = Δ+1 must give a proper coloring... greedy least-used does NOT
	// guarantee properness; but c=1 gives defect exactly deg.
	colors1 := GreedyDefective(g, 1)
	mono := graph.MonochromaticDegree(g, colors1)
	for v, m := range mono {
		if m != g.Degree(v) {
			t.Errorf("c=1: node %d defect %d != deg %d", v, m, g.Degree(v))
		}
	}
}

func TestLubyProper(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.Graph{
		graph.Ring(50),
		graph.RandomRegular(80, 6, rng),
		graph.Complete(10),
	} {
		colors, stats, err := Luby(g, 42, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := graph.IsProperColoring(g, colors); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		if mc := graph.MaxColor(colors); mc > g.RawMaxDegree() {
			t.Errorf("%v: color %d > Δ", g, mc)
		}
		// O(log n) w.h.p.; generous deterministic-ish cap for the test.
		if stats.Rounds > 20*logstar.CeilLog2(g.N()+2)+40 {
			t.Errorf("%v: %d rounds is suspiciously many", g, stats.Rounds)
		}
	}
}

func TestLubyReproducible(t *testing.T) {
	g := graph.Ring(30)
	a, _, err := Luby(g, 7, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Luby(g, 7, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different colorings")
		}
	}
}

func TestSelectEquivalence(t *testing.T) {
	// The sort-based and brute-force selections achieve the same
	// optimal objective value on random inputs.
	f := func(seed int64, rawL, rawP uint8) bool {
		lSize := int(rawL%10) + 1
		p := int(rawP%5) + 1
		rng := rand.New(rand.NewSource(seed))
		list := make([]int, lSize)
		defects := make([]int, lSize)
		k := make(map[int]int)
		for i := range list {
			list[i] = i * 3
			defects[i] = rng.Intn(6)
			k[list[i]] = rng.Intn(4)
		}
		a := SelectSort(list, defects, k, p)
		b := SelectBruteForce(list, defects, k, p)
		return a.Value == b.Value && len(a.Colors) == len(b.Colors)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSelectBruteForcePanicsOnBigLists(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("brute force accepted a 25-color list")
		}
	}()
	SelectBruteForce(make([]int, 25), make([]int, 25), nil, 3)
}

func TestGreedyDefectivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GreedyDefective(0 colors) did not panic")
		}
	}()
	GreedyDefective(graph.Ring(4), 0)
}
