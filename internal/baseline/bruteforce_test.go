package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

func TestBruteForceOLDCFindsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Ring(6)
	d := graph.OrientByID(g)
	inst := coloring.Uniform(6, 12, 4, 1, rng)
	colors, ok := BruteForceOLDC(d, inst)
	if !ok {
		t.Fatal("solvable instance reported unsolvable")
	}
	if err := coloring.ValidateOLDC(d, inst, colors); err != nil {
		t.Error(err)
	}
}

func TestBruteForceOLDCUnsolvable(t *testing.T) {
	// Two nodes, edge 1→0, both must take color 0 with zero defect:
	// node 1's out-conflict is unavoidable.
	g := graph.Path(2)
	d := graph.OrientByID(g)
	inst := &coloring.Instance{
		Space:   1,
		Lists:   [][]int{{0}, {0}},
		Defects: [][]int{{0}, {0}},
	}
	if _, ok := BruteForceOLDC(d, inst); ok {
		t.Error("unsolvable instance reported solvable")
	}
}

// TestSlackImpliesSolvable is the contrapositive check of
// Theorem 1.1's sufficiency: every random tiny instance that satisfies
// the slack condition (for some p) must be solvable by exhaustive
// search. (Instances failing the condition may be solvable or not —
// the condition is sufficient, not necessary.)
func TestSlackImpliesSolvable(t *testing.T) {
	f := func(seed int64, rawN, rawP uint8) bool {
		n := int(rawN%5) + 3 // 3..7 nodes: exhaustive search is instant
		p := int(rawP%2) + 1
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.5, rng)
		d := graph.OrientRandom(g, rng)
		inst := coloring.MinSlackOriented(d, 4*p*p+8, p, 0, rng)
		if !inst.OrientedSlackOK(d, p, 0) {
			return true // generator failed to meet the condition; vacuous
		}
		_, ok := BruteForceOLDC(d, inst)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBruteForcePanicsOnLarge(t *testing.T) {
	g := graph.Ring(25)
	d := graph.OrientByID(g)
	inst := coloring.ThreeColor(25, 2)
	defer func() {
		if recover() == nil {
			t.Error("large instance did not panic")
		}
	}()
	BruteForceOLDC(d, inst)
}
