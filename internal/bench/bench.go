// Package bench is the benchmark harness behind cmd/benchtab and the
// numbers recorded in EXPERIMENTS.md. The paper has no experimental
// section (it is a theory paper), so each "experiment" empirically
// validates one theorem: it generates workloads, runs the
// implementation on the LOCAL/CONGEST simulator, and reports the
// measured rounds / message bits / quality next to the theorem's
// asymptotic claim. DESIGN.md's experiment index maps the IDs E1–E15
// to the theorems.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's asymptotic claim being validated
	Columns []string
	Rows    [][]string
	Notes   string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "   note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*Note:* %s\n", t.Notes)
	}
	return b.String()
}

// Options configures a harness run.
type Options struct {
	// Seed drives all workload generation.
	Seed int64
	// Quick shrinks the sweeps for fast smoke runs.
	Quick bool
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) Table
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		{"E1", "Two-Sweep rounds are exactly 2q+1 (Lemma 3.3)", RunE1},
		{"E2", "Two-Sweep defect guarantee at minimum slack (Lemma 3.2)", RunE2},
		{"E3", "Fast-Two-Sweep rounds: O(min{q,(p/ε)²+log* q}) (Theorem 1.1)", RunE3},
		{"E4", "Color space reduction: rounds O(log³C), messages O(log q+log C) (Theorem 1.2)", RunE4},
		{"E5", "(deg+1)-list coloring pipeline vs Δ (Theorem 1.3)", RunE5},
		{"E6", "Local computation: sort vs subset search (vs [MT20, FK23a])", RunE6},
		{"E7", "Defective from arbdefective: ≤ ⌈logΔ⌉+1 iterations (Theorem 1.4)", RunE7},
		{"E8", "Bounded-θ recursion and (2Δ−1)-edge coloring (Theorem 1.5)", RunE8},
		{"E9", "List defective 3-coloring (Section 1.1 application)", RunE9},
		{"E10", "Proper list coloring with lists of size β²+β+1 (Section 1.1)", RunE10},
		{"E11", "Slack reduction cost: O(μ²)·T_A(μ,C) classes (Lemma 4.4)", RunE11},
		{"E12", "Baseline comparison: rounds and palette (greedy, Luby, this paper)", RunE12},
		{"E13", "Classical single-sweep / product constructions and Claim 4.1", RunE13},
		{"E14", "Bounded-θ recursion vs general solver on unit-disk graphs", RunE14},
		{"E15", "End-to-end local computation: sort vs subset-search selection", RunE15},
	}
	sort.Slice(exps, func(i, j int) bool {
		// E1 < E2 < ... < E10 < E11 < E12 numerically.
		return expNum(exps[i].ID) < expNum(exps[j].ID)
	})
	return exps
}

func expNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// All runs every experiment.
func All(opt Options) []Table {
	var out []Table
	for _, e := range Registry() {
		out = append(out, e.Run(opt))
	}
	return out
}

// Run executes a single experiment by ID.
func Run(id string, opt Options) (Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(opt), nil
		}
	}
	return Table{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// itoa / ftoa helpers keep the row-building code compact.
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.2f", v) }
func btoa(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
