// Package bench is the benchmark harness behind cmd/benchtab and the
// numbers recorded in EXPERIMENTS.md. The paper has no experimental
// section (it is a theory paper), so each "experiment" empirically
// validates one theorem: it generates workloads, runs the
// implementation on the LOCAL/CONGEST simulator, and reports the
// measured rounds / message bits / quality next to the theorem's
// asymptotic claim. DESIGN.md's experiment index maps the IDs E1–E16
// to the theorems (E16 covers the fault/repair subsystem rather than
// a single theorem).
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"listcolor/internal/workload"
)

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's asymptotic claim being validated
	Columns []string
	Rows    [][]string
	Notes   string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "   claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "   note: %s\n", t.Notes)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*Note:* %s\n", t.Notes)
	}
	return b.String()
}

// Options configures a harness run.
type Options struct {
	// Seed drives all workload generation.
	Seed int64
	// Quick shrinks the sweeps for fast smoke runs.
	Quick bool
	// Parallel is the sweep scheduler's worker budget: the maximum
	// number of cells executing concurrently across the whole run.
	// 0 means GOMAXPROCS; 1 runs every cell sequentially in
	// declaration order (the legacy harness behavior). Tables are
	// bit-identical for every value — see scheduler.go's determinism
	// contract.
	Parallel int
	// Cache is the shared workload cache graphs and derived values
	// are reused through; All and Run create one when nil, so callers
	// only set it to observe reuse counters or to share across calls.
	Cache *workload.Cache

	// sem is the run-wide cell semaphore, populated by shared().
	sem chan struct{}
}

// Experiment is a registered experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) Table

	// num is the numeric sort key parsed from ID once at registry
	// construction (E10 must follow E9, not E1).
	num int
}

// registry is built once: the experiment list is static, and parsing
// the numeric IDs inside a sort comparator on every Registry call was
// measurable harness overhead (fmt.Sscanf per comparison).
var (
	registryOnce sync.Once
	registryList []Experiment
)

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	registryOnce.Do(buildRegistry)
	// Fresh top-level slice: callers may reorder without corrupting
	// the shared registry.
	return append([]Experiment(nil), registryList...)
}

func buildRegistry() {
	exps := []Experiment{
		{ID: "E1", Title: "Two-Sweep rounds are exactly 2q+1 (Lemma 3.3)", Run: RunE1},
		{ID: "E2", Title: "Two-Sweep defect guarantee at minimum slack (Lemma 3.2)", Run: RunE2},
		{ID: "E3", Title: "Fast-Two-Sweep rounds: O(min{q,(p/ε)²+log* q}) (Theorem 1.1)", Run: RunE3},
		{ID: "E4", Title: "Color space reduction: rounds O(log³C), messages O(log q+log C) (Theorem 1.2)", Run: RunE4},
		{ID: "E5", Title: "(deg+1)-list coloring pipeline vs Δ (Theorem 1.3)", Run: RunE5},
		{ID: "E6", Title: "Local computation: sort vs subset search (vs [MT20, FK23a])", Run: RunE6},
		{ID: "E7", Title: "Defective from arbdefective: ≤ ⌈logΔ⌉+1 iterations (Theorem 1.4)", Run: RunE7},
		{ID: "E8", Title: "Bounded-θ recursion and (2Δ−1)-edge coloring (Theorem 1.5)", Run: RunE8},
		{ID: "E9", Title: "List defective 3-coloring (Section 1.1 application)", Run: RunE9},
		{ID: "E10", Title: "Proper list coloring with lists of size β²+β+1 (Section 1.1)", Run: RunE10},
		{ID: "E11", Title: "Slack reduction cost: O(μ²)·T_A(μ,C) classes (Lemma 4.4)", Run: RunE11},
		{ID: "E12", Title: "Baseline comparison: rounds and palette (greedy, Luby, this paper)", Run: RunE12},
		{ID: "E13", Title: "Classical single-sweep / product constructions and Claim 4.1", Run: RunE13},
		{ID: "E14", Title: "Bounded-θ recursion vs general solver on unit-disk graphs", Run: RunE14},
		{ID: "E15", Title: "End-to-end local computation: sort vs subset-search selection", Run: RunE15},
		{ID: "E16", Title: "Fault recovery: repair rounds and residual defect vs fault rate", Run: RunE16},
	}
	// Parse each numeric key exactly once, then sort on the ints:
	// E1 < E2 < ... < E10 < E11 < E12 numerically.
	for i := range exps {
		exps[i].num = expNum(exps[i].ID)
	}
	sort.Slice(exps, func(i, j int) bool { return exps[i].num < exps[j].num })
	registryList = exps
}

func expNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// All runs every experiment. With a worker budget above 1 the
// experiments themselves fan out too: each runs on its own goroutine
// while all their cells share the run-wide semaphore, so the heavy
// tail of one experiment overlaps the next instead of serializing
// behind it. Output order (and content — see scheduler.go) is
// identical to the sequential run.
func All(opt Options) []Table {
	reg := Registry()
	out := make([]Table, len(reg))
	if opt.parallelism() <= 1 {
		opt = opt.shared()
		for i, e := range reg {
			out[i] = e.Run(opt)
		}
		return out
	}
	opt = opt.shared()
	var wg sync.WaitGroup
	for i := range reg {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = reg[i].Run(opt)
		}(i)
	}
	wg.Wait()
	return out
}

// Run executes a single experiment by ID.
func Run(id string, opt Options) (Table, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(opt.shared()), nil
		}
	}
	return Table{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// itoa / ftoa helpers keep the row-building code compact.
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func ftoa(v float64) string { return fmt.Sprintf("%.2f", v) }
func btoa(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
