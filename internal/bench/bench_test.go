package bench

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 16 {
		t.Fatalf("registry has %d experiments, want 16", len(reg))
	}
	for i, e := range reg {
		want := i + 1
		if expNum(e.ID) != want {
			t.Errorf("registry[%d] = %s, want E%d", i, e.ID, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("E99", Options{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllQuick smoke-runs every experiment in quick mode and asserts
// every validity cell reads "yes" — this is the end-to-end check that
// all theorem guarantees hold on the benchmark workloads.
func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke run skipped in -short mode")
	}
	tables := All(Options{Seed: 1, Quick: true})
	if len(tables) != 16 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		for _, row := range tb.Rows {
			for i, cell := range row {
				if cell == "NO" {
					t.Errorf("%s: validity violated in row %v (col %s)", tb.ID, row, tb.Columns[i])
				}
			}
		}
		text := tb.Format()
		if !strings.Contains(text, tb.ID) || !strings.Contains(text, "claim:") {
			t.Errorf("%s: Format output malformed", tb.ID)
		}
		md := tb.Markdown()
		if !strings.Contains(md, "| --- |") && !strings.Contains(md, "| --- | ---") {
			t.Errorf("%s: Markdown output malformed:\n%s", tb.ID, md)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		ID: "EX", Title: "demo", Claim: "none",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "hello",
	}
	out := tb.Format()
	for _, want := range []string{"EX", "demo", "a", "long-column", "333", "hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| 333 | 4 |") {
		t.Errorf("Markdown missing row:\n%s", md)
	}
}
