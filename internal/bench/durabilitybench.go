package bench

// durabilitybench.go prices the crash-safety layer: the same churn
// script pushed through the durable write path under each WAL sync
// mode (off / batch / always), then a simulated kill and a timed
// recovery. The entries land in the `durability` section of
// BENCH_harness.json (refreshed by `make bench-harness`); the
// recovery_ms_per_100k_ops column is the replay-cost unit the
// checkpoint cadence is tuned against.

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"listcolor/internal/graph"
	"listcolor/internal/service"
)

// DurabilityBenchEntry is one sync mode's measurement: churn
// throughput with the WAL in the write path, then a kill and a timed
// recovery.
type DurabilityBenchEntry struct {
	Workload string `json:"workload"`
	SyncMode string `json:"sync_mode"`
	Nodes    int    `json:"nodes"`
	Updates  int    `json:"updates"`
	Batches  int    `json:"batches"`
	// UpdatesPerSec is applied updates over the churn wall time with
	// WAL logging (and, per mode, syncing) in the write path.
	UpdatesPerSec float64 `json:"updates_per_sec"`
	WALBytes      int64   `json:"wal_bytes"`
	// Recovery: the process is killed (Abort — no final checkpoint, no
	// flush) and the data dir reopened with a timer around OpenDurable.
	RecoveredVersion uint64  `json:"recovered_version"`
	ReplayedBatches  int     `json:"replayed_batches"`
	ReplayedOps      int     `json:"replayed_ops"`
	RecoveryMs       float64 `json:"recovery_ms"`
	// RecoveryMsPer100KOps normalizes replay cost to 10^5 replayed ops
	// (0 when nothing replayed — SyncOff can lose the whole buffered
	// tail between rotations).
	RecoveryMsPer100KOps float64 `json:"recovery_ms_per_100k_ops"`
	// RecoveredIdentical verifies the recovered colors equal a fresh
	// reference run of the same script prefix — the differential
	// contract, checked on every measurement.
	RecoveredIdentical bool `json:"recovered_identical"`
	Valid              bool `json:"valid"`
}

// DurabilitySyncModes returns the measured WAL sync modes, in the
// order the entries appear.
func DurabilitySyncModes() []service.SyncMode {
	return []service.SyncMode{service.SyncOff, service.SyncBatch, service.SyncAlways}
}

// durabilityWorkload parameterizes the churn script.
type durabilityWorkload struct {
	name    string
	nodes   int
	updates int
	batch   int
}

// DurabilityWorkload returns the measured workload (one shape; the
// sync-mode axis is the interesting one), scaled down under quick.
func DurabilityWorkload(quick bool) durabilityWorkload {
	if quick {
		return durabilityWorkload{name: "ring-durable", nodes: 10_000, updates: 4_000, batch: 200}
	}
	return durabilityWorkload{name: "ring-durable", nodes: 100_000, updates: 40_000, batch: 500}
}

// RunDurabilityBench measures every sync mode over the workload.
func RunDurabilityBench(quick bool) ([]DurabilityBenchEntry, error) {
	w := DurabilityWorkload(quick)
	var out []DurabilityBenchEntry
	for _, mode := range DurabilitySyncModes() {
		e, err := measureDurability(w, mode)
		if err != nil {
			return nil, fmt.Errorf("durability bench %s/%s: %w", w.name, mode, err)
		}
		out = append(out, e)
	}
	return out, nil
}

func measureDurability(w durabilityWorkload, mode service.SyncMode) (DurabilityBenchEntry, error) {
	dir, err := os.MkdirTemp("", "durability-bench-")
	if err != nil {
		return DurabilityBenchEntry{}, err
	}
	defer os.RemoveAll(dir)

	base := graph.StreamedRing(w.nodes)
	space := base.RawMaxDegree() + 4
	if space < 6 {
		space = 6
	}
	svc, err := service.New(base, servicePalette(base.N(), space), nil, service.Options{})
	if err != nil {
		return DurabilityBenchEntry{}, err
	}
	// A huge checkpoint cadence and small segments: the kill below
	// replays (nearly) the whole script, which is the replay cost being
	// measured; small segments give SyncOff regular flush points so its
	// recovery is not trivially empty.
	dopts := service.DurableOptions{Dir: dir, Sync: mode, CheckpointEvery: 1 << 30, SegmentBytes: 64 << 10}
	d, err := service.NewDurable(svc, dopts)
	if err != nil {
		return DurabilityBenchEntry{}, err
	}
	e := DurabilityBenchEntry{Workload: w.name, SyncMode: mode.String(), Nodes: w.nodes}

	// Phase 1: churn throughput through the durable write path. Every
	// applied batch is kept so the recovered state can be differenced
	// against a reference replay of the same prefix.
	rng := rand.New(rand.NewSource(37))
	var script [][]service.Op
	start := time.Now()
	for e.Updates < w.updates {
		ops := churnBatch(svc, rng, space, w.batch)
		rep, err := d.ApplyBatch(ops)
		if err != nil {
			return e, err
		}
		script = append(script, ops)
		e.Updates += rep.Applied
		e.Batches++
	}
	wall := time.Since(start).Seconds()
	if wall > 0 {
		e.UpdatesPerSec = float64(e.Updates) / wall
	}
	e.WALBytes = d.DurabilityStats().WALBytes

	// Phase 2: kill and timed recovery.
	d.Abort()
	t0 := time.Now()
	d2, info, err := service.OpenDurable(service.Options{}, dopts)
	recovery := time.Since(t0)
	if err != nil {
		return e, err
	}
	defer d2.Close()
	e.RecoveredVersion = info.Version
	e.ReplayedBatches = info.ReplayedBatches
	e.ReplayedOps = info.ReplayedOps
	e.RecoveryMs = float64(recovery.Nanoseconds()) / 1e6
	if info.ReplayedOps > 0 {
		e.RecoveryMsPer100KOps = e.RecoveryMs * 1e5 / float64(info.ReplayedOps)
	}
	e.Valid = d2.Service().ValidateState() == nil

	// Phase 3: differential — a fresh service replaying the recovered
	// prefix of the script must land on the identical colors.
	ref, err := service.New(graph.StreamedRing(w.nodes), servicePalette(w.nodes, space), nil, service.Options{})
	if err != nil {
		return e, err
	}
	for i := uint64(0); i < info.Version; i++ {
		if _, err := ref.ApplyBatch(script[i]); err != nil {
			return e, err
		}
	}
	e.RecoveredIdentical = colorsEqual(ref, d2.Service()) &&
		ref.TopologyFingerprint() == d2.Service().TopologyFingerprint()
	return e, nil
}

// colorsEqual compares the full color vectors of two services.
func colorsEqual(a, b *service.Service) bool {
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa.Colors) != len(sb.Colors) {
		return false
	}
	for i := range sa.Colors {
		if sa.Colors[i] != sb.Colors[i] {
			return false
		}
	}
	return true
}
