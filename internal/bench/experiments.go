package bench

import (
	"fmt"
	"math"
	"math/rand"

	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/csr"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
	"listcolor/internal/stats"
	"listcolor/internal/twosweep"
	"listcolor/internal/workload"
)

// bootstrap is the cached Linial bootstrap of a shared graph: the
// proper base coloring every oriented experiment starts from. Cells
// share it read-only through the workload cache, so a graph reused by
// several cells (or experiments) pays for one simulator bootstrap.
type bootstrap struct {
	colors []int
	q      int
	stats  sim.Result
}

// properBase computes (or fetches) the standard Linial bootstrap
// coloring of a shared graph; harness helpers panic on unexpected
// errors because workloads are constructed to satisfy every
// precondition.
func (opt Options) properBase(g *graph.Graph) ([]int, int, sim.Result) {
	b := opt.Cache.Derived(g, "linial-bootstrap", func() any {
		res, err := linial.ColorFromIDs(g, sim.Config{})
		if err != nil {
			panic(fmt.Sprintf("bench: bootstrap: %v", err))
		}
		return bootstrap{res.Colors, res.Palette, res.Stats}
	}).(bootstrap)
	return b.colors, b.q, b.stats
}

// orientRandom returns the shared random orientation of a cached
// graph. seed must be a pure function of the graph's cache key (not
// of the requesting cell), so every cell sharing the graph derives
// the identical orientation no matter which one materializes it.
func (opt Options) orientRandom(g *graph.Graph, seed int64) *graph.Digraph {
	return opt.Cache.Derived(g, "orient:random", func() any {
		return graph.OrientRandom(g, rand.New(rand.NewSource(seed)))
	}).(*graph.Digraph)
}

// RunE1 verifies Lemma 3.3: the Two-Sweep algorithm takes exactly
// 2q+1 rounds and always produces a valid OLDC.
func RunE1(opt Options) Table {
	t := Table{
		ID:      "E1",
		Title:   "Two-Sweep rounds vs q",
		Claim:   "Algorithm 1 solves OLDC in O(q) rounds (exactly 2q+1 in this implementation)",
		Columns: []string{"graph", "n", "β", "q", "rounds", "2q+1", "valid"},
	}
	sizes := []int{64, 128, 256, 512}
	if opt.Quick {
		sizes = []int{64, 128}
	}
	var cells []Cell
	for _, n := range sizes {
		for _, deg := range []int{4, 8} {
			cells = append(cells, Cell{
				Name: fmt.Sprintf("regular(%d,%d)", n, deg),
				Run: func(seed int64) CellOut {
					rng := rand.New(rand.NewSource(seed))
					g := opt.cachedGraph("regular", workload.Params{N: n, Degree: deg}, 0)
					d := opt.orientID(g)
					base, q, _ := opt.properBase(g)
					p := 2
					inst := coloring.MinSlackOriented(d, 4*p*p+16, p, 0, rng)
					res, err := twosweep.Solve(d, inst, base, q, p, sim.Config{})
					if err != nil {
						panic(err)
					}
					valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
					return CellOut{Rows: [][]string{{
						fmt.Sprintf("regular(%d,%d)", n, deg), itoa(n), itoa(d.MaxBeta()),
						itoa(q), itoa(res.Stats.Rounds), itoa(2*q + 1), btoa(valid),
					}}}
				},
			})
		}
	}
	t.Rows = rowsOf(RunCells(opt, "E1", cells))
	t.Notes = "rounds match 2q+1 exactly; q = Linial palette of the bootstrap coloring"
	return t
}

// RunE2 stresses Lemma 3.2 at the minimum slack Equation (2) allows:
// the realized worst defect never exceeds the allowed one.
func RunE2(opt Options) Table {
	t := Table{
		ID:      "E2",
		Title:   "Two-Sweep defect guarantee at minimum slack",
		Claim:   "every node ends with ≤ d_v(x_v) same-colored out-neighbors (Lemma 3.2)",
		Columns: []string{"graph", "p", "min slackΣ", "worst excess", "valid"},
	}
	trials := 6
	if opt.Quick {
		trials = 3
	}
	var cells []Cell
	for trial := 0; trial < trials; trial++ {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("gnp(80,0.1)#%d", trial),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				p := 1 + trial%3
				gp := workload.Params{N: 80, Prob: 0.1}
				// variant = trial: each trial draws its own G(n,p).
				g := opt.cachedGraph("gnp", gp, int64(trial))
				d := opt.orientRandom(g, GraphSeed(opt.Seed, "gnp/orient", gp, int64(trial)))
				base, q, _ := opt.properBase(g)
				inst := coloring.MinSlackOriented(d, 4*p*p+30, p, 0, rng)
				res, err := twosweep.Solve(d, inst, base, q, p, sim.Config{})
				if err != nil {
					panic(err)
				}
				worstExcess := math.MinInt32
				minSlack := math.MaxInt32
				for v := 0; v < g.N(); v++ {
					if s := inst.SlackSum(v); s < minSlack {
						minSlack = s
					}
					allowed, _ := inst.DefectOf(v, res.Colors[v])
					conflicts := 0
					for _, u := range d.Out(v) {
						if res.Colors[u] == res.Colors[v] {
							conflicts++
						}
					}
					if e := conflicts - allowed; e > worstExcess {
						worstExcess = e
					}
				}
				valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
				return CellOut{Rows: [][]string{{
					fmt.Sprintf("gnp(80,0.1)#%d", trial), itoa(p), itoa(minSlack),
					itoa(worstExcess), btoa(valid),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E2", cells))
	t.Notes = "worst excess ≤ 0 means every node is within its allowed defect"
	return t
}

// RunE3 measures the Fast-Two-Sweep crossover: for large q the ε > 0
// path beats the plain 2q+1 sweep, with rounds tracking
// (p/ε)² + log* q.
func RunE3(opt Options) Table {
	t := Table{
		ID:      "E3",
		Title:   "Fast-Two-Sweep rounds vs plain sweep",
		Claim:   "O(min{q, (p/ε)² + log* q}) rounds (Theorem 1.1)",
		Columns: []string{"n(=q)", "p", "ε", "plain 2q+1", "fast rounds", "(p/ε)²+log*q", "fast wins"},
	}
	sizes := []int{200, 800, 3200}
	if opt.Quick {
		sizes = []int{200, 800}
	}
	var cells []Cell
	for _, n := range sizes {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("regular(%d,6)", n),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				g := opt.cachedGraph("regular", workload.Params{N: n, Degree: 6}, 0)
				d := opt.orientID(g)
				// Use raw ids as the initial proper coloring so q = n is large
				// and the defective-preprocessing path genuinely pays off.
				ids := make([]int, n)
				for v := range ids {
					ids[v] = v
				}
				p, eps := 2, 1.0
				inst := coloring.MinSlackOriented(d, 4*p*p+24, p, eps, rng)
				res, err := twosweep.SolveFast(d, inst, ids, n, p, eps, sim.Config{})
				if err != nil {
					panic(err)
				}
				if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
					panic(err)
				}
				bound := int(float64(p*p)/(eps*eps)) + logstar.LogStar(n)
				return CellOut{Rows: [][]string{{
					itoa(n), itoa(p), ftoa(eps), itoa(2*n + 1), itoa(res.Stats.Rounds),
					itoa(bound), btoa(res.Stats.Rounds < 2*n+1),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E3", cells))
	t.Notes = "fast rounds stay flat while the plain sweep grows linearly in q"
	return t
}

// RunE4 validates Theorem 1.2: rounds grow like log³C while message
// sizes stay at O(log q + log C) bits.
func RunE4(opt Options) Table {
	t := Table{
		ID:      "E4",
		Title:   "Color space reduction scaling in C",
		Claim:   "O(log³C + log* q) rounds, O(log q + log C)-bit messages (Theorem 1.2)",
		Columns: []string{"C", "rounds", "rounds/log³C", "max msg bits", "log q+log C", "valid"},
	}
	spaces := []int{16, 64, 256, 1024, 4096}
	if opt.Quick {
		spaces = []int{16, 256}
	}
	var cells []Cell
	for _, c := range spaces {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("C=%d", c),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				// One regular(60,6) graph and one bootstrap shared by
				// every C cell through the cache.
				g := opt.cachedGraph("regular", workload.Params{N: 60, Degree: 6}, 0)
				d := opt.orientID(g)
				base, q, _ := opt.properBase(g)
				inst := coloring.WithOrientedSlack(d, c, 3*math.Sqrt(float64(c)), rng)
				res, err := csr.Solve(d, inst, base, q, sim.Config{})
				if err != nil {
					panic(err)
				}
				valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
				lc := math.Log2(float64(c))
				return CellOut{
					Rows: [][]string{{
						itoa(c), itoa(res.Stats.Rounds), ftoa(float64(res.Stats.Rounds) / (lc * lc * lc)),
						itoa(res.Stats.MaxMessageBits),
						itoa(sim.BitsFor(q) + sim.BitsFor(c)), btoa(valid),
					}},
					X: float64(c), Y: float64(res.Stats.Rounds), HasPoint: true,
				}
			},
		})
	}
	outs := RunCells(opt, "E4", cells)
	t.Rows = rowsOf(outs)
	xs, ys := pointsOf(outs)
	fit := stats.PowerLawExponent(xs, ys)
	t.Notes = fmt.Sprintf("rounds/log³C stays bounded; fitted power-law exponent of rounds vs C is %.2f (R²=%.2f) — "+
		"far below the 0.5 a √C algorithm would show; max message ≈ a small multiple of log q + log C", fit.Slope, fit.R2)
	return t
}

// RunE5 sweeps Δ for the (deg+1)-list coloring pipeline and reports
// the measured growth against both the paper's Õ(√Δ) claim (via the
// [FK23a, Thm 4] framework) and this implementation's Õ(Δ·polylog)
// reduction (Lemma A.1 structure; see the deltaplus1 package comment).
func RunE5(opt Options) Table {
	t := Table{
		ID:      "E5",
		Title:   "(deg+1)-list coloring rounds vs Δ",
		Claim:   "paper: O(√Δ·log⁴Δ + log* n) via [FK23a Thm 4]; this impl: O(Δ·polylog Δ) (Lemma A.1 route)",
		Columns: []string{"Δ", "n", "rounds", "rounds/Δ", "rounds/√Δ", "scales", "OLDC calls", "valid"},
	}
	degrees := []int{4, 8, 16, 32}
	if opt.Quick {
		degrees = []int{4, 8}
	}
	var cells []Cell
	for _, deg := range degrees {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("delta%d", deg),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				n := 40 * deg
				g := opt.cachedGraph("regular", workload.Params{N: n, Degree: deg}, 0)
				inst := coloring.DegreePlusOne(g, deg+1, rng)
				res, err := solveDegPlusOne(g, inst)
				if err != nil {
					panic(err)
				}
				valid := coloring.ValidateProperList(g, inst, res.Colors) == nil
				return CellOut{
					Rows: [][]string{{
						itoa(deg), itoa(n), itoa(res.Stats.Rounds),
						ftoa(float64(res.Stats.Rounds) / float64(deg)),
						ftoa(float64(res.Stats.Rounds) / math.Sqrt(float64(deg))),
						itoa(res.Scales), itoa(res.OLDCCalls), btoa(valid),
					}},
					X: float64(deg), Y: float64(res.Stats.Rounds), HasPoint: true,
				}
			},
		})
	}
	outs := RunCells(opt, "E5", cells)
	t.Rows = rowsOf(outs)
	xs, ys := pointsOf(outs)
	fit := stats.PowerLawExponent(xs, ys)
	t.Notes = fmt.Sprintf("fitted power-law exponent of rounds vs Δ is %.2f (R²=%.2f): the implemented Lemma A.1 route is "+
		"super-linear in Δ, whereas the paper's [FK23a Thm 4] framework would sit near 0.5", fit.Slope, fit.R2)
	return t
}

// RunE6 is the computational-complexity comparison the paper
// highlights: the Two-Sweep Phase-I selection is a sort
// (O(Λ log Λ) local work) while the [MT20, FK23a]-style subset search
// is exponential in the list size. Both sides report deterministic
// elementary-operation counts — wall-clock versions of the same
// comparison live in BENCH_local.json, keeping table cells pure
// functions of their seed (the scheduler's determinism contract).
func RunE6(opt Options) Table {
	t := Table{
		ID:      "E6",
		Title:   "Local computation per node: sort vs exhaustive subset search",
		Claim:   "Two-Sweep local work is near-linear in Λ; [MT20, FK23a] search subsets of 2^{L_v}",
		Columns: []string{"Λ", "sort ops", "subset ops", "ratio", "same optimum"},
	}
	lambdas := []int{4, 8, 12, 16, 20}
	if opt.Quick {
		lambdas = []int{4, 8, 12}
	}
	var cells []Cell
	for _, lambda := range lambdas {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("lambda%d", lambda),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				list := make([]int, lambda)
				defects := make([]int, lambda)
				k := make(map[int]int, lambda)
				kc := palette.NewCounter(2 * lambda)
				for i := range list {
					list[i] = i * 2
					defects[i] = rng.Intn(8)
					k[list[i]] = rng.Intn(5)
					kc.AddN(list[i], k[list[i]])
				}
				p := 3
				// The sort side runs on the palette kernel (the production
				// Phase-I path since the bitset port); the subset side stays on
				// the retained map-based brute force [MT20, FK23a] stand-in.
				scratch := palette.NewSelectScratch()
				colors, sortOps := scratch.SelectTopP(list, defects, kc, p)
				value := 0
				for _, x := range colors {
					for i, lx := range list {
						if lx == x {
							value += defects[i] + 1 - kc.Get(x)
						}
					}
				}
				b := baseline.SelectBruteForce(list, defects, k, p)
				return CellOut{Rows: [][]string{{
					itoa(lambda), itoa(int(sortOps)), itoa(int(b.Ops)),
					ftoa(float64(b.Ops) / float64(sortOps)), btoa(value == b.Value),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E6", cells))
	t.Notes = "deterministic operation counts; the ratio grows exponentially in Λ while both return the same optimal selection value"
	return t
}
