package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/csr"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
	"listcolor/internal/stats"
	"listcolor/internal/twosweep"
)

// properBase computes the standard Linial bootstrap coloring; harness
// helpers panic on unexpected errors because workloads are constructed
// to satisfy every precondition.
func properBase(g *graph.Graph) ([]int, int, sim.Result) {
	res, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		panic(fmt.Sprintf("bench: bootstrap: %v", err))
	}
	return res.Colors, res.Palette, res.Stats
}

// RunE1 verifies Lemma 3.3: the Two-Sweep algorithm takes exactly
// 2q+1 rounds and always produces a valid OLDC.
func RunE1(opt Options) Table {
	t := Table{
		ID:      "E1",
		Title:   "Two-Sweep rounds vs q",
		Claim:   "Algorithm 1 solves OLDC in O(q) rounds (exactly 2q+1 in this implementation)",
		Columns: []string{"graph", "n", "β", "q", "rounds", "2q+1", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	sizes := []int{64, 128, 256, 512}
	if opt.Quick {
		sizes = []int{64, 128}
	}
	for _, n := range sizes {
		for _, deg := range []int{4, 8} {
			g := graph.RandomRegular(n, deg, rng)
			d := graph.OrientByID(g)
			base, q, _ := properBase(g)
			p := 2
			inst := coloring.MinSlackOriented(d, 4*p*p+16, p, 0, rng)
			res, err := twosweep.Solve(d, inst, base, q, p, sim.Config{})
			if err != nil {
				panic(err)
			}
			valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("regular(%d,%d)", n, deg), itoa(n), itoa(d.MaxBeta()),
				itoa(q), itoa(res.Stats.Rounds), itoa(2*q + 1), btoa(valid),
			})
		}
	}
	t.Notes = "rounds match 2q+1 exactly; q = Linial palette of the bootstrap coloring"
	return t
}

// RunE2 stresses Lemma 3.2 at the minimum slack Equation (2) allows:
// the realized worst defect never exceeds the allowed one.
func RunE2(opt Options) Table {
	t := Table{
		ID:      "E2",
		Title:   "Two-Sweep defect guarantee at minimum slack",
		Claim:   "every node ends with ≤ d_v(x_v) same-colored out-neighbors (Lemma 3.2)",
		Columns: []string{"graph", "p", "min slackΣ", "worst excess", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 1))
	trials := 6
	if opt.Quick {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		p := 1 + trial%3
		g := graph.GNP(80, 0.1, rng)
		d := graph.OrientRandom(g, rng)
		base, q, _ := properBase(g)
		inst := coloring.MinSlackOriented(d, 4*p*p+30, p, 0, rng)
		res, err := twosweep.Solve(d, inst, base, q, p, sim.Config{})
		if err != nil {
			panic(err)
		}
		worstExcess := math.MinInt32
		minSlack := math.MaxInt32
		for v := 0; v < g.N(); v++ {
			if s := inst.SlackSum(v); s < minSlack {
				minSlack = s
			}
			allowed, _ := inst.DefectOf(v, res.Colors[v])
			conflicts := 0
			for _, u := range d.Out(v) {
				if res.Colors[u] == res.Colors[v] {
					conflicts++
				}
			}
			if e := conflicts - allowed; e > worstExcess {
				worstExcess = e
			}
		}
		valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("gnp(80,0.1)#%d", trial), itoa(p), itoa(minSlack),
			itoa(worstExcess), btoa(valid),
		})
	}
	t.Notes = "worst excess ≤ 0 means every node is within its allowed defect"
	return t
}

// RunE3 measures the Fast-Two-Sweep crossover: for large q the ε > 0
// path beats the plain 2q+1 sweep, with rounds tracking
// (p/ε)² + log* q.
func RunE3(opt Options) Table {
	t := Table{
		ID:      "E3",
		Title:   "Fast-Two-Sweep rounds vs plain sweep",
		Claim:   "O(min{q, (p/ε)² + log* q}) rounds (Theorem 1.1)",
		Columns: []string{"n(=q)", "p", "ε", "plain 2q+1", "fast rounds", "(p/ε)²+log*q", "fast wins"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 2))
	sizes := []int{200, 800, 3200}
	if opt.Quick {
		sizes = []int{200, 800}
	}
	for _, n := range sizes {
		g := graph.RandomRegular(n, 6, rng)
		d := graph.OrientByID(g)
		// Use raw ids as the initial proper coloring so q = n is large
		// and the defective-preprocessing path genuinely pays off.
		ids := make([]int, n)
		for v := range ids {
			ids[v] = v
		}
		p, eps := 2, 1.0
		inst := coloring.MinSlackOriented(d, 4*p*p+24, p, eps, rng)
		res, err := twosweep.SolveFast(d, inst, ids, n, p, eps, sim.Config{})
		if err != nil {
			panic(err)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			panic(err)
		}
		bound := int(float64(p*p)/(eps*eps)) + logstar.LogStar(n)
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(p), ftoa(eps), itoa(2*n + 1), itoa(res.Stats.Rounds),
			itoa(bound), btoa(res.Stats.Rounds < 2*n+1),
		})
	}
	t.Notes = "fast rounds stay flat while the plain sweep grows linearly in q"
	return t
}

// RunE4 validates Theorem 1.2: rounds grow like log³C while message
// sizes stay at O(log q + log C) bits.
func RunE4(opt Options) Table {
	t := Table{
		ID:      "E4",
		Title:   "Color space reduction scaling in C",
		Claim:   "O(log³C + log* q) rounds, O(log q + log C)-bit messages (Theorem 1.2)",
		Columns: []string{"C", "rounds", "rounds/log³C", "max msg bits", "log q+log C", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 3))
	spaces := []int{16, 64, 256, 1024, 4096}
	if opt.Quick {
		spaces = []int{16, 256}
	}
	g := graph.RandomRegular(60, 6, rng)
	d := graph.OrientByID(g)
	base, q, _ := properBase(g)
	var xs, ys []float64
	for _, c := range spaces {
		inst := coloring.WithOrientedSlack(d, c, 3*math.Sqrt(float64(c)), rng)
		res, err := csr.Solve(d, inst, base, q, sim.Config{})
		if err != nil {
			panic(err)
		}
		valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
		lc := math.Log2(float64(c))
		xs = append(xs, float64(c))
		ys = append(ys, float64(res.Stats.Rounds))
		t.Rows = append(t.Rows, []string{
			itoa(c), itoa(res.Stats.Rounds), ftoa(float64(res.Stats.Rounds) / (lc * lc * lc)),
			itoa(res.Stats.MaxMessageBits),
			itoa(sim.BitsFor(q) + sim.BitsFor(c)), btoa(valid),
		})
	}
	fit := stats.PowerLawExponent(xs, ys)
	t.Notes = fmt.Sprintf("rounds/log³C stays bounded; fitted power-law exponent of rounds vs C is %.2f (R²=%.2f) — "+
		"far below the 0.5 a √C algorithm would show; max message ≈ a small multiple of log q + log C", fit.Slope, fit.R2)
	return t
}

// RunE5 sweeps Δ for the (deg+1)-list coloring pipeline and reports
// the measured growth against both the paper's Õ(√Δ) claim (via the
// [FK23a, Thm 4] framework) and this implementation's Õ(Δ·polylog)
// reduction (Lemma A.1 structure; see the deltaplus1 package comment).
func RunE5(opt Options) Table {
	t := Table{
		ID:      "E5",
		Title:   "(deg+1)-list coloring rounds vs Δ",
		Claim:   "paper: O(√Δ·log⁴Δ + log* n) via [FK23a Thm 4]; this impl: O(Δ·polylog Δ) (Lemma A.1 route)",
		Columns: []string{"Δ", "n", "rounds", "rounds/Δ", "rounds/√Δ", "scales", "OLDC calls", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 4))
	degrees := []int{4, 8, 16, 32}
	if opt.Quick {
		degrees = []int{4, 8}
	}
	var xs, ys []float64
	for _, deg := range degrees {
		n := 40 * deg
		g := graph.RandomRegular(n, deg, rng)
		inst := coloring.DegreePlusOne(g, deg+1, rng)
		res, err := solveDegPlusOne(g, inst)
		if err != nil {
			panic(err)
		}
		valid := coloring.ValidateProperList(g, inst, res.Colors) == nil
		xs = append(xs, float64(deg))
		ys = append(ys, float64(res.Stats.Rounds))
		t.Rows = append(t.Rows, []string{
			itoa(deg), itoa(n), itoa(res.Stats.Rounds),
			ftoa(float64(res.Stats.Rounds) / float64(deg)),
			ftoa(float64(res.Stats.Rounds) / math.Sqrt(float64(deg))),
			itoa(res.Scales), itoa(res.OLDCCalls), btoa(valid),
		})
	}
	fit := stats.PowerLawExponent(xs, ys)
	t.Notes = fmt.Sprintf("fitted power-law exponent of rounds vs Δ is %.2f (R²=%.2f): the implemented Lemma A.1 route is "+
		"super-linear in Δ, whereas the paper's [FK23a Thm 4] framework would sit near 0.5", fit.Slope, fit.R2)
	return t
}

// RunE6 is the computational-complexity comparison the paper
// highlights: the Two-Sweep Phase-I selection is a sort
// (O(Λ log Λ) local work) while the [MT20, FK23a]-style subset search
// is exponential in the list size.
func RunE6(opt Options) Table {
	t := Table{
		ID:      "E6",
		Title:   "Local computation per node: sort vs exhaustive subset search",
		Claim:   "Two-Sweep local work is near-linear in Λ; [MT20, FK23a] search subsets of 2^{L_v}",
		Columns: []string{"Λ", "sort ns/op", "subset ns/op", "ratio", "same optimum"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 5))
	lambdas := []int{4, 8, 12, 16, 20}
	if opt.Quick {
		lambdas = []int{4, 8, 12}
	}
	for _, lambda := range lambdas {
		list := make([]int, lambda)
		defects := make([]int, lambda)
		k := make(map[int]int, lambda)
		kc := palette.NewCounter(2 * lambda)
		for i := range list {
			list[i] = i * 2
			defects[i] = rng.Intn(8)
			k[list[i]] = rng.Intn(5)
			kc.AddN(list[i], k[list[i]])
		}
		p := 3
		// The sort side runs on the palette kernel (the production
		// Phase-I path since the bitset port); the subset side stays on
		// the retained map-based brute force [MT20, FK23a] stand-in.
		scratch := palette.NewSelectScratch()
		sortNs := timeOp(func() { scratch.SelectTopP(list, defects, kc, p) })
		bruteNs := timeOp(func() { baseline.SelectBruteForce(list, defects, k, p) })
		colors, _ := scratch.SelectTopP(list, defects, kc, p)
		value := 0
		for _, x := range colors {
			for i, lx := range list {
				if lx == x {
					value += defects[i] + 1 - kc.Get(x)
				}
			}
		}
		b := baseline.SelectBruteForce(list, defects, k, p)
		t.Rows = append(t.Rows, []string{
			itoa(lambda), itoa(int(sortNs)), itoa(int(bruteNs)),
			ftoa(float64(bruteNs) / float64(sortNs)), btoa(value == b.Value),
		})
	}
	t.Notes = "ratio grows exponentially in Λ while both return the same optimal selection value"
	return t
}

// timeOp measures one operation's cost in ns by running it in a loop
// sized to take ≳1 ms.
func timeOp(f func()) int64 {
	// Calibrate.
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		elapsed := time.Since(start)
		if elapsed > time.Millisecond || iters > 1<<20 {
			return elapsed.Nanoseconds() / int64(iters)
		}
		iters *= 4
	}
}
