package bench

import (
	"fmt"

	"math/rand"

	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/deltaplus1"
	"listcolor/internal/graph"
	"listcolor/internal/hypergraph"
	"listcolor/internal/logstar"
	"listcolor/internal/nbhood"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

func solveDegPlusOne(g *graph.Graph, inst *coloring.Instance) (deltaplus1.Result, error) {
	return deltaplus1.Solve(g, inst, sim.Config{})
}

// RunE7 validates Theorem 1.4 on bounded-θ graphs: the reduction needs
// at most ⌈log Δ⌉+1 arbdefective iterations and the produced defective
// coloring respects every defect.
func RunE7(opt Options) Table {
	t := Table{
		ID:      "E7",
		Title:   "Defective coloring from arbdefective subroutine (bounded θ)",
		Claim:   "T_D(42·θ·logΔ·S, C) ≤ O(logΔ)·T_A(S, C) (Theorem 1.4)",
		Columns: []string{"graph", "θ", "Δ", "⌈logΔ⌉+1", "rounds", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 6))
	type workload struct {
		name  string
		g     *graph.Graph
		theta int
	}
	var loads []workload
	lg1, _ := graph.LineGraph(graph.RandomRegular(14, 3, rng))
	loads = append(loads, workload{"L(regular(14,3))", lg1, 2})
	loads = append(loads, workload{"ring(24)", graph.Ring(24), 2})
	if !opt.Quick {
		h := hypergraph.RandomRegularRank(12, 10, 3, rng)
		loads = append(loads, workload{"L(hypergraph r=3)", h.LineGraph(), 3})
	}
	for _, w := range loads {
		base, q, _ := properBase(w.g)
		s := 2
		need := nbhood.Theorem14Slack(w.theta, w.g.MaxDegree(), s)
		inst := coloring.WithSlack(w.g, 2*need*w.g.MaxDegree()+40, float64(need)+1, rng)
		arb := nbhood.ArbSlack2Solver(w.theta, sim.Config{})
		colors, stats, err := nbhood.DefectiveFromArb(w.g, inst, base, q, w.theta, s, arb)
		if err != nil {
			panic(err)
		}
		valid := coloring.ValidateListDefective(w.g, inst, colors) == nil
		t.Rows = append(t.Rows, []string{
			w.name, itoa(w.theta), itoa(w.g.MaxDegree()),
			itoa(logstar.CeilLog2(w.g.MaxDegree()) + 1), itoa(stats.Rounds), btoa(valid),
		})
	}
	t.Notes = "the reduction runs exactly ⌈logΔ⌉+1 iterations of the arbdefective subroutine"
	return t
}

// RunE8 measures the full Theorem 1.5 pipeline via its flagship
// application, (2Δ−1)-edge coloring.
func RunE8(opt Options) Table {
	t := Table{
		ID:      "E8",
		Title:   "(2Δ−1)-edge coloring via the bounded-θ recursion",
		Claim:   "T_A(1, O(Δ)) ≤ (θ·logΔ)^{O(loglogΔ)} + O(log* n) (Theorem 1.5)",
		Columns: []string{"graph", "Δ", "edges", "palette 2Δ−1", "rounds", "proper"},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"ring(16)", graph.Ring(16)},
		{"K5", graph.Complete(5)},
		{"grid(3,4)", graph.Grid(3, 4)},
	}
	if !opt.Quick {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"K7", graph.Complete(7)})
	}
	for _, w := range graphs {
		edgeColors, palette, stats, err := nbhood.EdgeColor(w.g, sim.Config{})
		if err != nil {
			panic(err)
		}
		proper := true
		edges := w.g.Edges()
		for i := range edges {
			for j := i + 1; j < len(edges); j++ {
				share := edges[i][0] == edges[j][0] || edges[i][0] == edges[j][1] ||
					edges[i][1] == edges[j][0] || edges[i][1] == edges[j][1]
				if share && edgeColors[i] == edgeColors[j] {
					proper = false
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			w.name, itoa(w.g.MaxDegree()), itoa(w.g.M()), itoa(palette),
			itoa(stats.Rounds), btoa(proper),
		})
	}
	t.Notes = "rounds grow quasi-polylogarithmically in Δ; constants are large, as the paper's 42·θ·logΔ slack factors suggest"
	return t
}

// RunE9 reproduces the Section 1.1 application: list d-defective
// 3-coloring in O(Δ + log* n) rounds whenever d > (2Δ−3)/3.
func RunE9(opt Options) Table {
	t := Table{
		ID:      "E9",
		Title:   "List defective 3-coloring",
		Claim:   "d-defective 3-coloring in O(Δ + log* n) rounds for d > (2Δ−3)/3 (§1.1, generalizing [BHL+19])",
		Columns: []string{"graph", "n", "Δ", "d", "rounds", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	sizes := []int{32, 256, 2048}
	if opt.Quick {
		sizes = []int{32, 256}
	}
	for _, n := range sizes {
		for _, deg := range []int{2, 4} {
			g := graph.RandomRegular(n, deg, rng)
			d := graph.OrientByID(g)
			base, q, _ := properBase(g)
			// p = 1: slack needs 3(defect+1) > 3β ⇔ defect ≥ β.
			defect := d.MaxBeta()
			inst := coloring.ThreeColor(n, defect)
			res, err := twosweep.Solve(d, inst, base, q, 1, sim.Config{})
			if err != nil {
				panic(err)
			}
			valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("regular(%d,%d)", n, deg), itoa(n), itoa(g.MaxDegree()),
				itoa(defect), itoa(res.Stats.Rounds), btoa(valid),
			})
		}
	}
	t.Notes = "rounds track q = O(Δ²) from the bootstrap, constant in n beyond the log* n bootstrap"
	return t
}

// RunE10 reproduces the "list coloring with bounded outdegree"
// application: proper list coloring with lists of size β²+β+1 in
// O(β² + log* n) rounds.
func RunE10(opt Options) Table {
	t := Table{
		ID:      "E10",
		Title:   "Proper list coloring with lists of size β²+β+1",
		Claim:   "O(β² + log* n) rounds via Two-Sweep with p = β+1 and zero defects (§1.1)",
		Columns: []string{"graph", "β", "|L|=β²+β+1", "rounds", "proper"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 8))
	type workload struct {
		name string
		g    *graph.Graph
	}
	loads := []workload{
		{"tree(3,5)", graph.CompleteKaryTree(3, 5)},
		{"grid(8,8)", graph.Grid(8, 8)},
		{"regular(128,6)", graph.RandomRegular(128, 6, rng)},
	}
	if opt.Quick {
		loads = loads[:2]
	}
	for _, w := range loads {
		d := graph.OrientByDegeneracy(w.g)
		beta := d.MaxBeta()
		p := beta + 1
		listSize := beta*beta + beta + 1
		base, q, _ := properBase(w.g)
		inst := coloring.Uniform(w.g.N(), 4*listSize+8, listSize, 0, rng)
		res, err := twosweep.Solve(d, inst, base, q, p, sim.Config{})
		if err != nil {
			panic(err)
		}
		proper := coloring.ValidateProperList(w.g, inst, res.Colors) == nil
		t.Rows = append(t.Rows, []string{
			w.name, itoa(beta), itoa(listSize), itoa(res.Stats.Rounds), btoa(proper),
		})
	}
	t.Notes = "degeneracy orientations give small β even when Δ is larger (trees: β=1, grids: β=2)"
	return t
}

// RunE11 measures the Lemma 4.4 slack reduction: the class count
// (defective palette) and the resulting round cost for different μ.
func RunE11(opt Options) Table {
	t := Table{
		ID:      "E11",
		Title:   "Slack reduction class structure",
		Claim:   "T_A(2,C) ≤ O(μ²)·T_A(μ,C) + O(log* q) (Lemma 4.4)",
		Columns: []string{"μ", "classes used", "rounds", "valid"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 9))
	g := graph.Ring(64) // θ = 2
	base, q, _ := properBase(g)
	mus := []int{2, 4, 8}
	if opt.Quick {
		mus = mus[:2]
	}
	for _, mu := range mus {
		inst := coloring.WithSlack(g, 64, float64(mu)+0.5, rng)
		calls := 0
		counting := func(g2 *graph.Graph, inst2 *coloring.Instance, base2 []int, q2 int) (coloring.ArbResult, sim.Result, error) {
			calls++
			return nbhood.ArbSlack2Solver(2, sim.Config{})(g2, inst2, base2, q2)
		}
		res, stats, err := nbhood.SlackReduce2(g, inst, base, q, mu, counting, sim.Config{})
		if err != nil {
			panic(err)
		}
		valid := coloring.ValidateListArbdefective(g, inst, res) == nil
		t.Rows = append(t.Rows, []string{itoa(mu), itoa(calls), itoa(stats.Rounds), btoa(valid)})
	}
	t.Notes = "classes used is bounded by min(O(μ²), q); empty classes cost nothing"
	return t
}

// RunE12 compares the paper's deterministic pipeline against the
// classical baselines on identical (deg+1)-list workloads.
func RunE12(opt Options) Table {
	t := Table{
		ID:      "E12",
		Title:   "Baselines on shared (deg+1)-list workloads",
		Claim:   "deterministic CONGEST coloring vs sequential greedy (quality) and randomized Luby (rounds)",
		Columns: []string{"graph", "algorithm", "rounds", "colors used", "proper"},
	}
	rng := rand.New(rand.NewSource(opt.Seed + 10))
	n, deg := 200, 6
	if opt.Quick {
		n = 80
	}
	g := graph.RandomRegular(n, deg, rng)
	inst := coloring.DegreePlusOne(g, deg+1, rng)
	name := fmt.Sprintf("regular(%d,%d)", n, deg)

	greedy, err := baseline.GreedyList(g, inst)
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{name, "greedy (sequential)", itoa(g.N()), itoa(graph.CountColors(greedy)),
		btoa(coloring.ValidateProperList(g, inst, greedy) == nil)})

	luby, lubyStats, err := baseline.Luby(g, opt.Seed, sim.Config{})
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{name, "Luby (randomized)", itoa(lubyStats.Rounds), itoa(graph.CountColors(luby)),
		btoa(graph.IsProperColoring(g, luby) == nil)})

	det, err := solveDegPlusOne(g, inst)
	if err != nil {
		panic(err)
	}
	t.Rows = append(t.Rows, []string{name, "this paper (det. CONGEST)", itoa(det.Stats.Rounds), itoa(graph.CountColors(det.Colors)),
		btoa(coloring.ValidateProperList(g, inst, det.Colors) == nil)})

	t.Notes = "sequential greedy is the quality yardstick (1 node/round); Luby is fast but randomized; the paper's pipeline is deterministic"
	return t
}
