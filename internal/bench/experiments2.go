package bench

import (
	"fmt"

	"math/rand"

	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/deltaplus1"
	"listcolor/internal/graph"
	"listcolor/internal/logstar"
	"listcolor/internal/nbhood"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
	"listcolor/internal/workload"
)

func solveDegPlusOne(g *graph.Graph, inst *coloring.Instance) (deltaplus1.Result, error) {
	return deltaplus1.Solve(g, inst, sim.Config{})
}

// RunE7 validates Theorem 1.4 on bounded-θ graphs: the reduction needs
// at most ⌈log Δ⌉+1 arbdefective iterations and the produced defective
// coloring respects every defect.
func RunE7(opt Options) Table {
	t := Table{
		ID:      "E7",
		Title:   "Defective coloring from arbdefective subroutine (bounded θ)",
		Claim:   "T_D(42·θ·logΔ·S, C) ≤ O(logΔ)·T_A(S, C) (Theorem 1.4)",
		Columns: []string{"graph", "θ", "Δ", "⌈logΔ⌉+1", "rounds", "valid"},
	}
	type load struct {
		name   string
		family string
		params workload.Params
		theta  int
	}
	loads := []load{
		{"L(regular(14,3))", "linegraph", workload.Params{N: 14, Degree: 3}, 2},
		{"ring(24)", "ring", workload.Params{N: 24}, 2},
	}
	if !opt.Quick {
		loads = append(loads, load{"L(hypergraph r=3)", "hyperline", workload.Params{N: 12, Degree: 3}, 3})
	}
	var cells []Cell
	for _, w := range loads {
		cells = append(cells, Cell{
			Name: w.name,
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				g := opt.cachedGraph(w.family, w.params, 0)
				base, q, _ := opt.properBase(g)
				s := 2
				need := nbhood.Theorem14Slack(w.theta, g.MaxDegree(), s)
				inst := coloring.WithSlack(g, 2*need*g.MaxDegree()+40, float64(need)+1, rng)
				arb := nbhood.ArbSlack2Solver(w.theta, sim.Config{})
				colors, st, err := nbhood.DefectiveFromArb(g, inst, base, q, w.theta, s, arb)
				if err != nil {
					panic(err)
				}
				valid := coloring.ValidateListDefective(g, inst, colors) == nil
				return CellOut{Rows: [][]string{{
					w.name, itoa(w.theta), itoa(g.MaxDegree()),
					itoa(logstar.CeilLog2(g.MaxDegree()) + 1), itoa(st.Rounds), btoa(valid),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E7", cells))
	t.Notes = "the reduction runs exactly ⌈logΔ⌉+1 iterations of the arbdefective subroutine"
	return t
}

// RunE8 measures the full Theorem 1.5 pipeline via its flagship
// application, (2Δ−1)-edge coloring. The workloads are tiny fixed
// graphs whose construction is deterministic and O(n), so the cells
// build them directly instead of going through the workload cache.
func RunE8(opt Options) Table {
	t := Table{
		ID:      "E8",
		Title:   "(2Δ−1)-edge coloring via the bounded-θ recursion",
		Claim:   "T_A(1, O(Δ)) ≤ (θ·logΔ)^{O(loglogΔ)} + O(log* n) (Theorem 1.5)",
		Columns: []string{"graph", "Δ", "edges", "palette 2Δ−1", "rounds", "proper"},
	}
	graphs := []struct {
		name  string
		build func() *graph.Graph
	}{
		{"ring(16)", func() *graph.Graph { return graph.Ring(16) }},
		{"K5", func() *graph.Graph { return graph.Complete(5) }},
		{"grid(3,4)", func() *graph.Graph { return graph.Grid(3, 4) }},
	}
	if !opt.Quick {
		graphs = append(graphs, struct {
			name  string
			build func() *graph.Graph
		}{"K7", func() *graph.Graph { return graph.Complete(7) }})
	}
	var cells []Cell
	for _, w := range graphs {
		cells = append(cells, Cell{
			Name: w.name,
			Run: func(int64) CellOut {
				g := w.build()
				edgeColors, pal, st, err := nbhood.EdgeColor(g, sim.Config{})
				if err != nil {
					panic(err)
				}
				proper := true
				edges := g.Edges()
				for i := range edges {
					for j := i + 1; j < len(edges); j++ {
						share := edges[i][0] == edges[j][0] || edges[i][0] == edges[j][1] ||
							edges[i][1] == edges[j][0] || edges[i][1] == edges[j][1]
						if share && edgeColors[i] == edgeColors[j] {
							proper = false
						}
					}
				}
				return CellOut{Rows: [][]string{{
					w.name, itoa(g.MaxDegree()), itoa(g.M()), itoa(pal),
					itoa(st.Rounds), btoa(proper),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E8", cells))
	t.Notes = "rounds grow quasi-polylogarithmically in Δ; constants are large, as the paper's 42·θ·logΔ slack factors suggest"
	return t
}

// RunE9 reproduces the Section 1.1 application: list d-defective
// 3-coloring in O(Δ + log* n) rounds whenever d > (2Δ−3)/3.
func RunE9(opt Options) Table {
	t := Table{
		ID:      "E9",
		Title:   "List defective 3-coloring",
		Claim:   "d-defective 3-coloring in O(Δ + log* n) rounds for d > (2Δ−3)/3 (§1.1, generalizing [BHL+19])",
		Columns: []string{"graph", "n", "Δ", "d", "rounds", "valid"},
	}
	sizes := []int{32, 256, 2048}
	if opt.Quick {
		sizes = []int{32, 256}
	}
	var cells []Cell
	for _, n := range sizes {
		for _, deg := range []int{2, 4} {
			cells = append(cells, Cell{
				Name: fmt.Sprintf("regular(%d,%d)", n, deg),
				Run: func(int64) CellOut {
					g := opt.cachedGraph("regular", workload.Params{N: n, Degree: deg}, 0)
					d := opt.orientID(g)
					base, q, _ := opt.properBase(g)
					// p = 1: slack needs 3(defect+1) > 3β ⇔ defect ≥ β.
					defect := d.MaxBeta()
					inst := coloring.ThreeColor(n, defect)
					res, err := twosweep.Solve(d, inst, base, q, 1, sim.Config{})
					if err != nil {
						panic(err)
					}
					valid := coloring.ValidateOLDC(d, inst, res.Colors) == nil
					return CellOut{Rows: [][]string{{
						fmt.Sprintf("regular(%d,%d)", n, deg), itoa(n), itoa(g.MaxDegree()),
						itoa(defect), itoa(res.Stats.Rounds), btoa(valid),
					}}}
				},
			})
		}
	}
	t.Rows = rowsOf(RunCells(opt, "E9", cells))
	t.Notes = "rounds track q = O(Δ²) from the bootstrap, constant in n beyond the log* n bootstrap"
	return t
}

// RunE10 reproduces the "list coloring with bounded outdegree"
// application: proper list coloring with lists of size β²+β+1 in
// O(β² + log* n) rounds.
func RunE10(opt Options) Table {
	t := Table{
		ID:      "E10",
		Title:   "Proper list coloring with lists of size β²+β+1",
		Claim:   "O(β² + log* n) rounds via Two-Sweep with p = β+1 and zero defects (§1.1)",
		Columns: []string{"graph", "β", "|L|=β²+β+1", "rounds", "proper"},
	}
	type load struct {
		name   string
		family string
		params workload.Params
	}
	loads := []load{
		{"tree(3,5)", "tree", workload.Params{N: 121, Degree: 3}},
		{"grid(8,8)", "grid", workload.Params{N: 64}},
		{"regular(128,6)", "regular", workload.Params{N: 128, Degree: 6}},
	}
	if opt.Quick {
		loads = loads[:2]
	}
	var cells []Cell
	for _, w := range loads {
		cells = append(cells, Cell{
			Name: w.name,
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				g := opt.cachedGraph(w.family, w.params, 0)
				d := opt.orientDegeneracy(g)
				beta := d.MaxBeta()
				p := beta + 1
				listSize := beta*beta + beta + 1
				base, q, _ := opt.properBase(g)
				inst := coloring.Uniform(g.N(), 4*listSize+8, listSize, 0, rng)
				res, err := twosweep.Solve(d, inst, base, q, p, sim.Config{})
				if err != nil {
					panic(err)
				}
				proper := coloring.ValidateProperList(g, inst, res.Colors) == nil
				return CellOut{Rows: [][]string{{
					w.name, itoa(beta), itoa(listSize), itoa(res.Stats.Rounds), btoa(proper),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E10", cells))
	t.Notes = "degeneracy orientations give small β even when Δ is larger (trees: β=1, grids: β=2)"
	return t
}

// RunE11 measures the Lemma 4.4 slack reduction: the class count
// (defective palette) and the resulting round cost for different μ.
func RunE11(opt Options) Table {
	t := Table{
		ID:      "E11",
		Title:   "Slack reduction class structure",
		Claim:   "T_A(2,C) ≤ O(μ²)·T_A(μ,C) + O(log* q) (Lemma 4.4)",
		Columns: []string{"μ", "classes used", "rounds", "valid"},
	}
	mus := []int{2, 4, 8}
	if opt.Quick {
		mus = mus[:2]
	}
	var cells []Cell
	for _, mu := range mus {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("mu%d", mu),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				g := opt.cachedGraph("ring", workload.Params{N: 64}, 0) // θ = 2
				base, q, _ := opt.properBase(g)
				inst := coloring.WithSlack(g, 64, float64(mu)+0.5, rng)
				calls := 0
				counting := func(g2 *graph.Graph, inst2 *coloring.Instance, base2 []int, q2 int) (coloring.ArbResult, sim.Result, error) {
					calls++
					return nbhood.ArbSlack2Solver(2, sim.Config{})(g2, inst2, base2, q2)
				}
				res, st, err := nbhood.SlackReduce2(g, inst, base, q, mu, counting, sim.Config{})
				if err != nil {
					panic(err)
				}
				valid := coloring.ValidateListArbdefective(g, inst, res) == nil
				return CellOut{Rows: [][]string{{itoa(mu), itoa(calls), itoa(st.Rounds), btoa(valid)}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E11", cells))
	t.Notes = "classes used is bounded by min(O(μ²), q); empty classes cost nothing"
	return t
}

// RunE12 compares the paper's deterministic pipeline against the
// classical baselines on identical (deg+1)-list workloads: one shared
// graph, one shared instance (derived from a seed fixed at the
// experiment level so every algorithm cell reconstructs the identical
// lists), three algorithm cells.
func RunE12(opt Options) Table {
	t := Table{
		ID:      "E12",
		Title:   "Baselines on shared (deg+1)-list workloads",
		Claim:   "deterministic CONGEST coloring vs sequential greedy (quality) and randomized Luby (rounds)",
		Columns: []string{"graph", "algorithm", "rounds", "colors used", "proper"},
	}
	n, deg := 200, 6
	if opt.Quick {
		n = 80
	}
	name := fmt.Sprintf("regular(%d,%d)", n, deg)
	params := workload.Params{N: n, Degree: deg}
	// All three cells regenerate the same instance from this
	// experiment-level seed (cheap, deterministic, and cache-friendly:
	// the graph itself is shared through the workload cache).
	instSeed := CellSeed(opt.Seed, "E12/inst", 0)
	sharedInst := func() (*graph.Graph, *coloring.Instance) {
		g := opt.cachedGraph("regular", params, 0)
		inst := opt.Cache.Derived(g, "inst:degplus1:E12", func() any {
			return coloring.DegreePlusOne(g, deg+1, rand.New(rand.NewSource(instSeed)))
		}).(*coloring.Instance)
		return g, inst
	}
	cells := []Cell{
		{Name: "greedy", Run: func(int64) CellOut {
			g, inst := sharedInst()
			greedy, err := baseline.GreedyList(g, inst)
			if err != nil {
				panic(err)
			}
			return CellOut{Rows: [][]string{{
				name, "greedy (sequential)", itoa(g.N()), itoa(graph.CountColors(greedy)),
				btoa(coloring.ValidateProperList(g, inst, greedy) == nil),
			}}}
		}},
		{Name: "luby", Run: func(int64) CellOut {
			g, _ := sharedInst()
			luby, lubyStats, err := baseline.Luby(g, opt.Seed, sim.Config{})
			if err != nil {
				panic(err)
			}
			return CellOut{Rows: [][]string{{
				name, "Luby (randomized)", itoa(lubyStats.Rounds), itoa(graph.CountColors(luby)),
				btoa(graph.IsProperColoring(g, luby) == nil),
			}}}
		}},
		{Name: "deterministic", Run: func(int64) CellOut {
			g, inst := sharedInst()
			det, err := solveDegPlusOne(g, inst)
			if err != nil {
				panic(err)
			}
			return CellOut{Rows: [][]string{{
				name, "this paper (det. CONGEST)", itoa(det.Stats.Rounds), itoa(graph.CountColors(det.Colors)),
				btoa(coloring.ValidateProperList(g, inst, det.Colors) == nil),
			}}}
		}},
	}
	t.Rows = rowsOf(RunCells(opt, "E12", cells))
	t.Notes = "sequential greedy is the quality yardstick (1 node/round); Luby is fast but randomized; the paper's pipeline is deterministic"
	return t
}
