package bench

import (
	"fmt"
	"math/rand"

	"listcolor/internal/baseline"
	"listcolor/internal/classic"
	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/nbhood"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
	"listcolor/internal/workload"
)

// RunE13 measures the classical single-sweep and product constructions
// the paper generalizes (its introduction's starting points), checking
// their textbook guarantees. All six cells run over two shared graphs:
// the sweep and product cells reuse one regular(100,8) build (and its
// bootstrap), the Claim 4.1 cells one line-graph build.
func RunE13(opt Options) Table {
	t := Table{
		ID:      "E13",
		Title:   "Classical sweeps: arbdefective single sweep and the product construction",
		Claim:   "single sweep: d-arbdefective with ⌈(Δ+1)/(d+1)⌉ colors [BE10]; two sweeps: ≤2⌊Δ/c⌋-defective with c² colors [BE09, BHL+19]; Claim 4.1 on bounded θ",
		Columns: []string{"construction", "graph", "param", "colors", "worst defect", "bound", "ok"},
	}
	regParams := workload.Params{N: 100, Degree: 8}
	lgParams := workload.Params{N: 20, Degree: 4}
	var cells []Cell
	for _, d := range []int{1, 3} {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("sweep-d%d", d),
			Run: func(int64) CellOut {
				g := opt.cachedGraph("regular", regParams, 0)
				base, q, _ := opt.properBase(g)
				_, arcs, c, _, err := classic.SweepArb(g, base, q, d, sim.Config{})
				if err != nil {
					panic(err)
				}
				// Worst OUT-defect under the produced orientation.
				outCount := make([]int, g.N())
				for _, a := range arcs {
					outCount[a[0]]++
				}
				worst := maxOf(outCount)
				return CellOut{Rows: [][]string{{
					"single sweep (arb)", "regular(100,8)", fmt.Sprintf("d=%d", d),
					itoa(c), itoa(worst), itoa(d), btoa(worst <= d),
				}}}
			},
		})
	}
	for _, c := range []int{2, 3} {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("product-c%d", c),
			Run: func(int64) CellOut {
				g := opt.cachedGraph("regular", regParams, 0)
				base, q, _ := opt.properBase(g)
				colors, _, err := classic.ProductDefective(g, base, q, c, sim.Config{})
				if err != nil {
					panic(err)
				}
				worst := maxOf(graph.MonochromaticDegree(g, colors))
				bound := 2 * (g.RawMaxDegree() / c)
				return CellOut{Rows: [][]string{{
					"two-sweep product", "regular(100,8)", fmt.Sprintf("c=%d", c),
					itoa(c * c), itoa(worst), itoa(bound), btoa(worst <= bound),
				}}}
			},
		})
	}
	// Claim 4.1 on a line graph (θ ≤ 2).
	for _, d := range []int{1, 2} {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("claim41-d%d", d),
			Run: func(int64) CellOut {
				lg := opt.cachedGraph("linegraph", lgParams, 0)
				baseL, qL, _ := opt.properBase(lg)
				colors, _, c, _, err := classic.SweepArb(lg, baseL, qL, d, sim.Config{})
				if err != nil {
					panic(err)
				}
				worst := maxOf(graph.MonochromaticDegree(lg, colors))
				bound := (2*d + 1) * 2
				return CellOut{Rows: [][]string{{
					"Claim 4.1 (θ=2)", "L(regular(20,4))", fmt.Sprintf("d=%d", d),
					itoa(c), itoa(worst), itoa(bound), btoa(worst <= bound),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E13", cells))
	t.Notes = "the paper's Algorithm 1 is the list generalization of exactly these constructions"
	return t
}

// RunE14 compares the bounded-θ recursion against the θ-oblivious
// general solver on unit-disk graphs (θ ≤ 5 structurally) — the
// quantitative payoff of Theorem 1.5's structural assumption.
func RunE14(opt Options) Table {
	t := Table{
		ID:      "E14",
		Title:   "Bounded-θ recursion vs θ-oblivious solver on unit-disk graphs",
		Claim:   "Theorem 1.5's (θ·logΔ)^{O(loglogΔ)} beats the general Õ(C·logΔ) reduction when θ = O(1) — asymptotically; at laptop scales the 42·θ·logΔ constants can dominate",
		Columns: []string{"sensors", "Δ", "θ≤5 rounds", "general rounds", "general/θ ratio", "both valid"},
	}
	sizes := []int{80, 160, 240}
	if opt.Quick {
		sizes = sizes[:2]
	}
	var cells []Cell
	for _, n := range sizes {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("udg%d", n),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				// Dense enough that the class subgraphs of the reductions keep
				// internal edges — otherwise both routes collapse to the same
				// edgeless fast path and the comparison is vacuous.
				g := opt.cachedGraph("udg", workload.Params{N: n, Radius: 0.35}, 0)
				inst := coloring.DegreePlusOne(g, g.MaxDegree()+1, rng)
				withTheta, err := nbhood.SolveArb(g, inst, 5, sim.Config{})
				if err != nil {
					panic(err)
				}
				general, err := nbhood.SolveArbGeneral(g, inst, sim.Config{})
				if err != nil {
					panic(err)
				}
				valid := coloring.ValidateProperList(g, inst, withTheta.Arb.Colors) == nil &&
					coloring.ValidateProperList(g, inst, general.Arb.Colors) == nil
				return CellOut{Rows: [][]string{{
					itoa(n), itoa(g.MaxDegree()), itoa(withTheta.Stats.Rounds), itoa(general.Stats.Rounds),
					ftoa(float64(general.Stats.Rounds) / float64(withTheta.Stats.Rounds)), btoa(valid),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E14", cells))
	t.Notes = "unit-disk graphs have θ ≤ 5 structurally; both produce proper colorings. At laptop scales n < Δ², so the " +
		"Linial bootstrap cannot compress below n, every defective class is a singleton, and BOTH pipelines degenerate to " +
		"the same sweep-over-proper-classes fast path — the ratio 1.00 is itself the finding: the asymptotic separation " +
		"(θ·logΔ)^{loglogΔ} vs Õ(C·logΔ) only manifests once n ≫ Δ²·palette, far beyond simulation scale"
	return t
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// RunE15 runs the full Two-Sweep pipeline end-to-end under both
// Phase-I selection strategies — the paper's sort and the
// [MT20, FK23a]-style exhaustive subset search — and compares the
// deterministic local-operation totals. Both produce valid OLDCs of
// identical selection quality; only the internal computation differs.
// Every p cell reuses the one shared regular(60,4) build.
func RunE15(opt Options) Table {
	t := Table{
		ID:      "E15",
		Title:   "End-to-end local computation: Two-Sweep under sort vs subset-search selection",
		Claim:   "the paper's algorithm is computationally much lighter than [MT20, FK23a] at equal output quality (§ Computational complexity)",
		Columns: []string{"Λ=|L_v|", "p", "sort ops", "subset ops", "ratio", "both valid"},
	}
	ps := []int{2, 3, 4}
	if opt.Quick {
		ps = ps[:2]
	}
	var cells []Cell
	for _, p := range ps {
		cells = append(cells, Cell{
			Name: fmt.Sprintf("p%d", p),
			Run: func(seed int64) CellOut {
				rng := rand.New(rand.NewSource(seed))
				lambda := p * p
				g := opt.cachedGraph("regular", workload.Params{N: 60, Degree: 4}, 0)
				d := opt.orientID(g)
				base, q, _ := opt.properBase(g)
				inst := coloring.MinSlackOriented(d, 4*lambda+16, p, 0, rng)
				sortRes, err := twosweep.SolveWithSelector(d, inst, base, q, p, twosweep.SortSelector, sim.Config{})
				if err != nil {
					panic(err)
				}
				subsetRes, err := twosweep.SolveWithSelector(d, inst, base, q, p, baseline.SubsetSelector, sim.Config{})
				if err != nil {
					panic(err)
				}
				valid := coloring.ValidateOLDC(d, inst, sortRes.Colors) == nil &&
					coloring.ValidateOLDC(d, inst, subsetRes.Colors) == nil
				return CellOut{Rows: [][]string{{
					itoa(lambda), itoa(p), itoa(int(sortRes.LocalOps)), itoa(int(subsetRes.LocalOps)),
					ftoa(float64(subsetRes.LocalOps) / float64(sortRes.LocalOps)), btoa(valid),
				}}}
			},
		})
	}
	t.Rows = rowsOf(RunCells(opt, "E15", cells))
	t.Notes = "operation counts are deterministic (comparisons/iterations, not wall time); the ratio grows exponentially in Λ"
	return t
}
