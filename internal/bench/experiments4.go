package bench

import (
	"fmt"
	"math/rand"

	"listcolor/internal/adversary"
	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/deltaplus1"
	"listcolor/internal/repair"
	"listcolor/internal/sim"
	"listcolor/internal/trace"
	"listcolor/internal/twosweep"
	"listcolor/internal/workload"
)

// RunE16 measures the self-healing layer: each solver runs under a
// seed-derived fault plan (crash-stops plus payload corruption at the
// given rate), the damaged output is classified into absorbed vs hard
// conflicts, and bounded local repair re-enters conflicted nodes with
// their residual lists. The table reports how many repair rounds
// recovery took and what defect remains — the paper's slack
// Σ(d_v(x)+1) > β_v is exactly what guarantees every conflicted node
// a repair color, so all cells must reconverge within the 2n+16
// budget.
func RunE16(opt Options) Table {
	t := Table{
		ID:    "E16",
		Title: "Fault recovery: repair rounds and residual defect vs fault rate",
		Claim: "defect slack absorbs fault damage: every solver reconverges under crash+corrupt plans at rates ≤ 10% within the 2n+16 repair budget",
		Columns: []string{
			"solver", "rate", "faults", "hard before", "absorbed",
			"recovery rounds", "residual defect", "valid",
		},
	}
	params := workload.Params{N: 64, Degree: 6}
	rates := []float64{0, 0.02, 0.05, 0.10}
	if opt.Quick {
		rates = []float64{0, 0.10}
	}
	// solveMaxRounds caps the faulted solver run: crash-stalled
	// protocols hit sim.ErrRoundLimit here and hand repair the
	// fallback coloring.
	const solveMaxRounds = 400
	var cells []Cell
	for _, solver := range []string{"twosweep", "degplus1", "luby"} {
		for _, rate := range rates {
			cells = append(cells, Cell{
				Name: fmt.Sprintf("%s@%.2f", solver, rate),
				Run: func(seed int64) CellOut {
					rng := rand.New(rand.NewSource(seed))
					g := opt.cachedGraph("regular", params, 0)
					tgt := repair.Target{Name: solver, G: g}
					switch solver {
					case "twosweep":
						d := opt.orientID(g)
						base, q, _ := opt.properBase(g)
						p := 2
						inst := coloring.MinSlackOriented(d, 4*p*p+16, p, 0, rng)
						tgt.D = d
						tgt.Inst = inst
						tgt.Solve = func(cfg sim.Config) ([]int, sim.Result, error) {
							res, err := twosweep.Solve(d, inst, base, q, p, cfg)
							return res.Colors, res.Stats, err
						}
					case "degplus1":
						inst := coloring.DegreePlusOne(g, g.RawMaxDegree()+8, rng)
						tgt.Inst = inst
						tgt.Solve = func(cfg sim.Config) ([]int, sim.Result, error) {
							res, err := deltaplus1.Solve(g, inst, cfg)
							return res.Colors, res.Stats, err
						}
					case "luby":
						// Full-palette lists: Luby's (Δ+1)-coloring output
						// is directly list-relative, so the damage columns
						// measure fault impact, not a list-mapping artifact.
						tgt.Inst = fullListInstance(g.N(), g.RawMaxDegree()+1)
						tgt.Solve = func(cfg sim.Config) ([]int, sim.Result, error) {
							return baseline.Luby(g, seed, cfg)
						}
					}
					var plan adversary.Plan
					if rate > 0 {
						plan = adversary.Merge(
							adversary.UniformCrash(g, seed, rate, 2, 2),
							adversary.UniformCorrupt(seed, rate, 1, 0),
						)
					}
					// Trace the faulted solve with the plan's fault events
					// annotated; the event count is the table's fault
					// column.
					rec := &trace.Recorder{}
					plan.Annotate(rec)
					inner := tgt.Solve
					tgt.Solve = func(cfg sim.Config) ([]int, sim.Result, error) {
						return inner(rec.Attach(cfg))
					}
					rep, err := repair.Run(tgt, plan, repair.Options{MaxRounds: solveMaxRounds})
					if err != nil {
						panic(err)
					}
					return CellOut{Rows: [][]string{{
						solver, ftoa(rate), itoa(len(rec.Events())),
						itoa(rep.Before.Hard), itoa(rep.AbsorbedConflicts),
						itoa(rep.RecoveryRounds), itoa(rep.ResidualDefect),
						btoa(rep.Converged),
					}}}
				},
			})
		}
	}
	t.Rows = rowsOf(RunCells(opt, "E16", cells))
	t.Notes = "faults = planned fault events (crash-stops + corruption windows); absorbed = post-repair conflicts inside defect budgets; budget 2n+16 repair rounds"
	return t
}

// fullListInstance gives every node the complete palette [0, space)
// with zero defects — the proper-coloring instance a palette-indexed
// solver (Luby) solves natively.
func fullListInstance(n, space int) *coloring.Instance {
	inst := &coloring.Instance{
		Lists:   make([][]int, n),
		Defects: make([][]int, n),
		Space:   space,
	}
	all := make([]int, space)
	for x := range all {
		all[x] = x
	}
	zero := make([]int, space)
	for v := 0; v < n; v++ {
		inst.Lists[v] = all
		inst.Defects[v] = zero
	}
	return inst
}
