package bench

// graphbench.go measures the parallel graph substrate: segmented
// multi-core CSR builds (graph.BuildCSRParallel) against their
// sequential StreamCSR reference, and the range-partitioned defect
// audit (coloring.AuditParallel) against the sequential scan — at
// 10⁶ nodes in the full tier. Every row carries the byte-identity and
// report-equality verdicts plus a deterministic work-distribution
// account (segment balance), so the table stays meaningful on a
// single-CPU container where the speedup columns hover near 1: the
// determinism contract, not the wall clock, is the primary signal
// (the PR 4/8 precedent). cmd/benchtab -sim (or its -graph alias)
// renders the result as the "graph_build" section of BENCH_sim.json.

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

// GraphBuildWorkload is one substrate-benchmark instance: a segmented
// stream plus the audit palette its defect scan uses.
type GraphBuildWorkload struct {
	Name  string
	N     int
	Space int
	Make  func() graph.SegmentedStream
}

// GraphBuildWorkloads returns the substrate instances. Full mode is
// the BENCH_sim.json tier: the 10⁶-node ring and the range-keyed
// G(n, p) at average degree 8 — the canonical scale workload of the
// segmented generators. Quick shrinks n to smoke-test the same code
// path in CI.
func GraphBuildWorkloads(quick bool) []GraphBuildWorkload {
	if quick {
		return []GraphBuildWorkload{
			{Name: "ring20k", N: 20_000, Space: 8,
				Make: func() graph.SegmentedStream { return graph.RingSegmented(20_000) }},
			{Name: "gnpseg20k", N: 20_000, Space: 16,
				Make: func() graph.SegmentedStream { return graph.GNPSegmented(20_000, 8.0/20_000, 1) }},
		}
	}
	return []GraphBuildWorkload{
		{Name: "ring1e6", N: 1_000_000, Space: 8,
			Make: func() graph.SegmentedStream { return graph.RingSegmented(1_000_000) }},
		{Name: "gnpseg1e6", N: 1_000_000, Space: 16,
			Make: func() graph.SegmentedStream { return graph.GNPSegmented(1_000_000, 8.0/1_000_000, 1) }},
	}
}

// GraphBuildEntry is one (workload, workers) substrate measurement.
type GraphBuildEntry struct {
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Edges    int64  `json:"edges"`
	// Segments is how many segments the stream actually split into at
	// this worker count; SegmentBalance is max/mean arcs per segment —
	// the deterministic work-distribution account (1.0 = perfectly
	// even), meaningful regardless of core count.
	Segments       int     `json:"segments"`
	Workers        int     `json:"workers"`
	SegmentBalance float64 `json:"segment_balance"`
	// Build timings: the sequential StreamCSR reference vs the
	// segmented parallel build, and whether the two CSRs are
	// byte-identical (raw rowPtr + column arrays, not fingerprints).
	SeqBuildSec    float64 `json:"seq_build_sec"`
	ParBuildSec    float64 `json:"par_build_sec"`
	BuildSpeedup   float64 `json:"build_speedup"`
	IdenticalToSeq bool    `json:"identical_to_seq"`
	// Audit timings: the sequential whole-graph defect scan vs the
	// range-partitioned kernel at this worker count, with the
	// report-equality verdict (field-for-field, violation text
	// included).
	AuditSeqSec         float64 `json:"audit_seq_sec"`
	AuditParSec         float64 `json:"audit_par_sec"`
	AuditSpeedup        float64 `json:"audit_speedup"`
	AuditEdgesPerSec    float64 `json:"audit_edges_per_sec"`
	AuditIdenticalToSeq bool    `json:"audit_identical_to_seq"`
}

// graphBenchWorkers returns the worker counts each workload is
// measured at: 2, 4, and the host's GOMAXPROCS, deduplicated and
// sorted. All are explicit (> 1), so the segmented machinery is
// exercised even on a single-CPU container.
func graphBenchWorkers() []int {
	set := map[int]bool{2: true, 4: true}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		set[p] = true
	}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// sharedPaletteInstance builds the audit instance of the substrate
// rows: every node may wear any color in [0, space) with zero defect
// budget, the lists and budgets shared across nodes (O(space) extra
// memory at 10⁶ nodes).
func sharedPaletteInstance(n, space int) *coloring.Instance {
	list := make([]int, space)
	zeros := make([]int, space)
	for i := range list {
		list[i] = i
	}
	in := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		in.Lists[v] = list
		in.Defects[v] = zeros
	}
	return in
}

// segmentBalance replays each segment counting arcs and returns
// (segments, max/mean balance). The replay is deterministic, so the
// column is identical on every host.
func segmentBalance(segs []graph.EdgeStream) (int, float64) {
	arcs := make([]int64, len(segs))
	total := int64(0)
	for i, s := range segs {
		var a int64
		s(func(u, v int) { a += 2 })
		arcs[i], total = a, total+a
	}
	if total == 0 || len(segs) == 0 {
		return len(segs), 1
	}
	maxA := arcs[0]
	for _, a := range arcs[1:] {
		if a > maxA {
			maxA = a
		}
	}
	mean := float64(total) / float64(len(segs))
	return len(segs), float64(maxA) / mean
}

// MeasureGraphBuild times the sequential and parallel builds and
// audits of one workload at one worker count and verifies both
// determinism contracts.
func MeasureGraphBuild(w GraphBuildWorkload, workers int) (GraphBuildEntry, error) {
	ss := w.Make()

	runtime.GC()
	t0 := time.Now()
	seq, err := graph.StreamCSR(w.N, ss.Stream())
	seqSec := time.Since(t0).Seconds()
	if err != nil {
		return GraphBuildEntry{}, fmt.Errorf("bench: %s sequential build: %w", w.Name, err)
	}

	runtime.GC()
	t1 := time.Now()
	par, err := graph.BuildCSRParallel(w.N, ss, workers)
	parSec := time.Since(t1).Seconds()
	if err != nil {
		return GraphBuildEntry{}, fmt.Errorf("bench: %s parallel build (workers=%d): %w", w.Name, workers, err)
	}

	segments, balance := segmentBalance(ss.Segments(workers))

	inst := sharedPaletteInstance(w.N, w.Space)
	colors := make([]int, w.N)
	for v := range colors {
		colors[v] = v % w.Space
	}
	runtime.GC()
	a0 := time.Now()
	seqRep := coloring.Audit(par, inst, colors)
	auditSeqSec := time.Since(a0).Seconds()
	a1 := time.Now()
	parRep := coloring.AuditParallel(par, inst, colors, workers)
	auditParSec := time.Since(a1).Seconds()

	e := GraphBuildEntry{
		Workload:            w.Name,
		Nodes:               par.N(),
		Edges:               par.M(),
		Segments:            segments,
		Workers:             workers,
		SegmentBalance:      balance,
		SeqBuildSec:         seqSec,
		ParBuildSec:         parSec,
		BuildSpeedup:        seqSec / parSec,
		IdenticalToSeq:      par.EqualBytes(seq),
		AuditSeqSec:         auditSeqSec,
		AuditParSec:         auditParSec,
		AuditSpeedup:        auditSeqSec / auditParSec,
		AuditEdgesPerSec:    float64(seqRep.ScannedArcs) / 2 / auditParSec,
		AuditIdenticalToSeq: coloring.AuditReportsEqual(seqRep, parRep),
	}
	if !e.IdenticalToSeq {
		return e, fmt.Errorf("bench: %s workers=%d: parallel build is not byte-identical to sequential", w.Name, workers)
	}
	if !e.AuditIdenticalToSeq {
		return e, fmt.Errorf("bench: %s workers=%d: parallel audit report diverges from sequential", w.Name, workers)
	}
	return e, nil
}

// RunGraphBuildBench measures every substrate workload at every
// benchmark worker count.
func RunGraphBuildBench(quick bool) ([]GraphBuildEntry, error) {
	var out []GraphBuildEntry
	for _, w := range GraphBuildWorkloads(quick) {
		for _, workers := range graphBenchWorkers() {
			e, err := MeasureGraphBuild(w, workers)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}
