package bench

import "listcolor/internal/workload"

// HarnessBenchBaseline returns the recorded sequential-harness cost —
// the full registry under the legacy one-cell-at-a-time scheduler
// (workers=1), measured once on the reference container (2026-08-05,
// linux/amd64, single CPU) when the sweep scheduler landed. It is the
// fixed anchor BENCH_harness.json compares the current build against;
// it is not re-measured by `make bench-harness`. The reference
// container exposes one CPU, so parallel speedup there is bounded by
// 1.0 by hardware — the recorded run's value is the sequential wall
// time and the cache-reuse counters; multi-core speedups are
// meaningful only when the current host's num_cpu allows them.
func HarnessBenchBaseline() []HarnessBenchEntry {
	return []HarnessBenchEntry{
		{Mode: "sequential", Workers: 1, Quick: false, Seed: 1, WallMs: 438.0, SpeedupVsSequential: 1.0,
			Cache:           workload.Counters{Hits: 16, Misses: 40, DerivedHits: 22, DerivedMisses: 58},
			TablesIdentical: true},
	}
}
