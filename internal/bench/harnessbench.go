package bench

// harnessbench.go measures the sweep scheduler itself: the same full
// experiment registry is run sequentially (Parallel=1, the legacy
// harness behavior) and under increasing worker budgets, recording
// wall time, the workload cache's reuse counters, and — because the
// determinism contract makes it checkable — whether every parallel
// table came back byte-identical to the sequential run.
// cmd/benchtab -harness renders the result as BENCH_harness.json, the
// harness-throughput perf record the Makefile's bench-harness target
// refreshes.

import (
	"time"

	"listcolor/internal/workload"
)

// HarnessBenchEntry is one scheduler measurement: the full registry
// run once under the given worker budget.
type HarnessBenchEntry struct {
	// Mode is "sequential" (workers=1, legacy behavior) or "parallel".
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	Quick   bool   `json:"quick"`
	Seed    int64  `json:"seed"`
	// WallMs is the best-of-reps wall time of one full bench.All.
	WallMs float64 `json:"wall_ms"`
	// SpeedupVsSequential divides the sequential entry's wall time by
	// this entry's (1.0 for the sequential entry itself).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// Cache is the workload cache's counters after the run: hits > 0
	// proves cross-cell graph reuse, derived hits cover orientations,
	// bootstraps and shared instances.
	Cache workload.Counters `json:"cache"`
	// TablesIdentical reports whether every table of this run was
	// byte-identical (Format output) to the sequential run's — the
	// determinism contract, verified on every measurement.
	TablesIdentical bool `json:"tables_identical_to_sequential"`
}

// HarnessBenchReport is the BENCH_harness.json document: this
// machine's measurements next to the recorded sequential baseline.
type HarnessBenchReport struct {
	GeneratedAt string `json:"generated_at"`
	Note        string `json:"note"`
	// GOMAXPROCS and NumCPU qualify the speedups: on a single-core
	// host every parallel speedup is bounded by 1 regardless of the
	// scheduler.
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Baseline   []HarnessBenchEntry `json:"baseline"`
	Current    []HarnessBenchEntry `json:"current"`
	// Service holds the incremental-service churn measurements
	// (servicebench.go): updates/sec, recolor locality, and p99 read
	// latency under concurrent write load. Refreshed by
	// `make bench-service`.
	Service []ServiceBenchEntry `json:"service"`
	// ShardSweep holds the sharded write-path measurements
	// (shardbench.go): the same deterministic churn script replayed at
	// every shard count, with byte-identity vs the sequential replay
	// and the per-shard work-distribution account. Refreshed by
	// `make bench-service-shards`.
	ShardSweep []ShardSweepEntry `json:"shard_sweep"`
	// Durability holds the crash-safety measurements
	// (durabilitybench.go): churn throughput with the WAL in the write
	// path under each sync mode, and the timed kill-and-recover replay
	// cost per 10^5 ops. Refreshed by `make bench-harness`.
	Durability []DurabilityBenchEntry `json:"durability"`
}

// HarnessWorkerBudgets returns the worker budgets a harness-bench run
// measures: sequential first (the anchor every speedup is relative
// to), then the parallel budgets.
func HarnessWorkerBudgets(quick bool) []int {
	if quick {
		return []int{1, 4}
	}
	return []int{1, 2, 4, 8}
}

// formatAll renders every table of a run, concatenated the way
// cmd/benchtab prints them — the byte string the determinism check
// compares.
func formatAll(tables []Table) string {
	var s string
	for i, tb := range tables {
		if i > 0 {
			s += "\n"
		}
		s += tb.Format()
	}
	return s
}

// RunHarnessBench measures bench.All under every worker budget of
// HarnessWorkerBudgets. Each budget gets a fresh workload cache (so
// the counters describe one run, not the accumulation) and the
// best-of-reps wall time; every parallel run's tables are verified
// byte-identical to the sequential run's.
func RunHarnessBench(quick bool, seed int64) ([]HarnessBenchEntry, error) {
	const reps = 3
	budgets := HarnessWorkerBudgets(quick)
	var out []HarnessBenchEntry
	var seqWall float64
	var seqTables string
	for _, workers := range budgets {
		var best time.Duration
		var cache *workload.Cache
		var rendered string
		for r := 0; r < reps; r++ {
			c := workload.NewCache()
			opt := Options{Seed: seed, Quick: quick, Parallel: workers, Cache: c}
			t0 := time.Now()
			tables := All(opt)
			dt := time.Since(t0)
			if r == 0 || dt < best {
				best = dt
			}
			cache = c
			rendered = formatAll(tables)
		}
		e := HarnessBenchEntry{
			Mode:    "parallel",
			Workers: workers,
			Quick:   quick,
			Seed:    seed,
			WallMs:  float64(best.Nanoseconds()) / 1e6,
			Cache:   cache.Counters(),
		}
		if workers == 1 {
			e.Mode = "sequential"
			seqWall = e.WallMs
			seqTables = rendered
		}
		e.SpeedupVsSequential = seqWall / e.WallMs
		e.TablesIdentical = rendered == seqTables
		out = append(out, e)
	}
	return out, nil
}
