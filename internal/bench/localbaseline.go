package bench

// LocalBenchBaseline returns the recorded selection cost of the
// pre-kernel map-based path (per-call index slice, per-comparison map
// k lookup, per-call output allocation), measured once on the
// reference container (2026-08-05, linux/amd64) when the palette
// kernel landed. It is the fixed anchor BENCH_local.json compares the
// current kernel against; it is not re-measured by `make bench-local`.
func LocalBenchBaseline() []LocalBenchEntry {
	return []LocalBenchEntry{
		{Workload: "delta16", Impl: ImplMapRef, Lambda: 16, P: 8, Space: 32, NsPerOp: 1371, BytesPerOp: 248, AllocsPerOp: 4.0, SelectionOps: 66},
		{Workload: "delta64", Impl: ImplMapRef, Lambda: 64, P: 8, Space: 128, NsPerOp: 9914, BytesPerOp: 632, AllocsPerOp: 4.0, SelectionOps: 414},
		{Workload: "delta128", Impl: ImplMapRef, Lambda: 128, P: 8, Space: 256, NsPerOp: 23790, BytesPerOp: 1144, AllocsPerOp: 4.0, SelectionOps: 989},
		{Workload: "delta256", Impl: ImplMapRef, Lambda: 256, P: 8, Space: 512, NsPerOp: 51946, BytesPerOp: 2168, AllocsPerOp: 4.0, SelectionOps: 2192},
	}
}
