package bench

// localbench.go measures the node-local Phase-I selection kernel,
// independent of the simulator: one selection (the per-node local
// computation Lemma 3.3 charges O(Λ log Λ) for) is driven in a
// calibrated loop over representative list sizes, for both the
// production palette-kernel path and the retained map-based reference
// implementation. cmd/benchtab -local renders the result as
// BENCH_local.json, the local-computation perf record the Makefile's
// bench-local target refreshes; the Benchmark functions in
// localbench_test.go reuse the same workloads so `go test -bench` and
// the JSON agree.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"listcolor/internal/baseline"
	"listcolor/internal/palette"
)

// LocalWorkload is one selection-benchmark shape: a Λ-color list over
// a color space of size Space with selection budget P.
type LocalWorkload struct {
	Name   string
	Lambda int
	P      int
	Space  int
	Seed   int64
}

// LocalWorkloads returns the selection benchmark shapes: Λ = Δ lists
// over a 2Δ color space with the paper's p = 8 budget, for the degree
// range the experiments sweep. Quick keeps the two smallest shapes for
// smoke runs.
func LocalWorkloads(quick bool) []LocalWorkload {
	deltas := []int{16, 64, 128, 256}
	if quick {
		deltas = []int{16, 64}
	}
	ws := make([]LocalWorkload, 0, len(deltas))
	for _, d := range deltas {
		ws = append(ws, LocalWorkload{
			Name:   fmt.Sprintf("delta%d", d),
			Lambda: d,
			P:      8,
			Space:  2 * d,
			Seed:   int64(d),
		})
	}
	return ws
}

// Materialize builds the deterministic selection input of w: a sorted
// list of Λ distinct colors from [0, Space), per-color defects, and
// the k counts in both representations (the map for the reference
// path, the kernel Counter for the palette path).
func (w LocalWorkload) Materialize() (list, defects []int, km map[int]int, kc *palette.Counter) {
	rng := rand.New(rand.NewSource(w.Seed))
	list = rng.Perm(w.Space)[:w.Lambda]
	sort.Ints(list)
	defects = make([]int, w.Lambda)
	km = make(map[int]int, w.Lambda)
	kc = palette.NewCounter(w.Space)
	for i, x := range list {
		defects[i] = rng.Intn(8)
		kv := rng.Intn(5)
		km[x] = kv
		kc.AddN(x, kv)
	}
	return list, defects, km, kc
}

// LocalBenchEntry is one (workload, implementation) measurement.
// SelectionOps is the deterministic comparison count the selection
// reports — identical across implementations by construction, recorded
// so shape drift in the JSON is visible.
type LocalBenchEntry struct {
	Workload     string  `json:"workload"`
	Impl         string  `json:"impl"`
	Lambda       int     `json:"lambda"`
	P            int     `json:"p"`
	Space        int     `json:"space"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	SelectionOps int64   `json:"selection_ops"`
}

// ImplMapRef and ImplPalette name the two measured selection paths.
const (
	ImplMapRef  = "map-ref"
	ImplPalette = "palette"
)

// MeasureSelection times one selection implementation on w: a warmup,
// then a loop calibrated to ≳20 ms, bracketed by MemStats reads. The
// palette path reuses one scratch across iterations (the per-node
// arena lifecycle), so its steady state is allocation-free; the
// reference path allocates per call, exactly as the pre-kernel solvers
// did per selection.
func MeasureSelection(w LocalWorkload, impl string) (LocalBenchEntry, error) {
	list, defects, km, kc := w.Materialize()
	var op func() int64
	switch impl {
	case ImplMapRef:
		op = func() int64 { return baseline.SelectSort(list, defects, km, w.P).Ops }
	case ImplPalette:
		scratch := palette.NewSelectScratch()
		op = func() int64 { _, ops := scratch.SelectTopP(list, defects, kc, w.P); return ops }
	default:
		return LocalBenchEntry{}, fmt.Errorf("bench: unknown selection impl %q", impl)
	}
	selOps := op() // warmup + recorded ops count

	// Calibrate the iteration count to a ≳20 ms measured window.
	iters := 1
	for {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			op()
		}
		if time.Since(t0) > 20*time.Millisecond || iters > 1<<22 {
			break
		}
		iters *= 4
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		op()
	}
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)
	n := float64(iters)
	return LocalBenchEntry{
		Workload:     w.Name,
		Impl:         impl,
		Lambda:       w.Lambda,
		P:            w.P,
		Space:        w.Space,
		NsPerOp:      float64(dt.Nanoseconds()) / n,
		BytesPerOp:   float64(m1.TotalAlloc-m0.TotalAlloc) / n,
		AllocsPerOp:  float64(m1.Mallocs-m0.Mallocs) / n,
		SelectionOps: selOps,
	}, nil
}

// LocalBenchReport is the BENCH_local.json document: the measurements
// from this machine/build plus the recorded pre-kernel baseline the
// repo's perf trajectory is anchored to.
type LocalBenchReport struct {
	GeneratedAt string            `json:"generated_at"`
	Note        string            `json:"note"`
	Baseline    []LocalBenchEntry `json:"baseline"`
	Current     []LocalBenchEntry `json:"current"`
}

// RunLocalBench measures every (workload, impl) pair: the map-based
// reference and the palette kernel side by side, so the speedup is one
// division away in the JSON.
func RunLocalBench(quick bool) ([]LocalBenchEntry, error) {
	var out []LocalBenchEntry
	for _, w := range LocalWorkloads(quick) {
		for _, impl := range []string{ImplMapRef, ImplPalette} {
			e, err := MeasureSelection(w, impl)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}
