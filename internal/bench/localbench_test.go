package bench

import (
	"testing"

	"listcolor/internal/baseline"
	"listcolor/internal/palette"
)

// BenchmarkSelection drives the same workloads BENCH_local.json
// records through `go test -bench`, so the two measurement paths agree.
func BenchmarkSelection(b *testing.B) {
	for _, w := range LocalWorkloads(false) {
		list, defects, km, kc := w.Materialize()
		b.Run(w.Name+"/map-ref", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baseline.SelectSort(list, defects, km, w.P)
			}
		})
		b.Run(w.Name+"/palette", func(b *testing.B) {
			scratch := palette.NewSelectScratch()
			scratch.SelectTopP(list, defects, kc, w.P) // warm the arena
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scratch.SelectTopP(list, defects, kc, w.P)
			}
		})
	}
}

// TestMeasureSelectionAgreement pins the harness itself: both
// implementations must report identical SelectionOps on every
// workload, and the palette path must be allocation-free in steady
// state.
func TestMeasureSelectionAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("calibrated timing loops")
	}
	for _, w := range LocalWorkloads(true) {
		ref, err := MeasureSelection(w, ImplMapRef)
		if err != nil {
			t.Fatal(err)
		}
		pal, err := MeasureSelection(w, ImplPalette)
		if err != nil {
			t.Fatal(err)
		}
		if ref.SelectionOps != pal.SelectionOps {
			t.Fatalf("%s: ops diverge: map-ref %d, palette %d", w.Name, ref.SelectionOps, pal.SelectionOps)
		}
		if pal.AllocsPerOp > 0.01 {
			t.Errorf("%s: palette selection allocates %.3f/op", w.Name, pal.AllocsPerOp)
		}
	}
	if _, err := MeasureSelection(LocalWorkloads(true)[0], "bogus"); err == nil {
		t.Error("unknown impl accepted")
	}
}
