package bench

// scheduler.go is the parallel sweep scheduler: every experiment is a
// declarative list of self-contained Cells, and RunCells fans them out
// across a bounded worker pool with results reassembled in declaration
// order. Determinism contract: a cell's Run must be a pure function of
// its seed (plus the Options-level constants it closes over) — no wall
// clock, no shared mutable state, no dependence on execution order —
// and its seed derives purely from (Options.Seed, experiment ID, cell
// index) via splitmix64. Under that contract every table is
// bit-identical for any worker count, which TestParallelDeterminism
// and the CI parallel-vs-sequential diff enforce. Timing belongs in
// the BENCH_*.json harness benches, never in table cells.

import (
	"hash/fnv"
	"runtime"
	"sync"

	"listcolor/internal/graph"
	"listcolor/internal/workload"
)

// Cell is one self-contained sweep point of an experiment: typically
// one graph generation plus one full simulator run, emitting one or
// more table rows.
type Cell struct {
	// Name labels the cell in failures and traces.
	Name string
	// Run executes the cell under its derived seed.
	Run func(seed int64) CellOut
}

// CellOut is what a cell produced: its rows, in the order they should
// appear in the table, plus an optional (X, Y) sample for
// experiment-level curve fitting (the power-law notes of E4/E5).
type CellOut struct {
	Rows [][]string
	// X, Y is a fit sample; only read when HasPoint is set.
	X, Y     float64
	HasPoint bool
}

// splitmix64 is the SplitMix64 output function — the standard 64-bit
// finalizer whose avalanche guarantees that adjacent cell indices and
// experiment IDs land on statistically independent seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// CellSeed derives the seed of cell idx of the named experiment from
// the harness seed. It is a pure function — bit-identical results
// regardless of execution order or worker count depend on nothing
// else — and it is part of the recorded-table contract: changing it
// changes every table in EXPERIMENTS.md.
func CellSeed(base int64, expID string, idx int) int64 {
	x := splitmix64(uint64(base))
	x = splitmix64(x ^ hash64(expID))
	x = splitmix64(x ^ uint64(idx+1))
	return int64(x)
}

// GraphSeed derives the generation seed of a cached family build
// purely from the harness seed and the family's own parameters —
// deliberately NOT from the experiment or cell — so any two cells, in
// any experiments, that sweep the same (family, n, degree, …) point
// converge on one shared graph in the workload cache. variant keeps
// intentionally distinct graphs of the same shape apart (E2's
// per-trial G(n,p) draws).
func GraphSeed(base int64, family string, p workload.Params, variant int64) int64 {
	x := splitmix64(uint64(base))
	x = splitmix64(x ^ hash64(family))
	x = splitmix64(x ^ uint64(p.N)<<32 ^ uint64(p.Degree))
	x = splitmix64(x ^ uint64(int64(p.Prob*1e9)) ^ uint64(int64(p.Radius*1e9))<<16)
	x = splitmix64(x ^ uint64(variant))
	return int64(x)
}

// parallelism resolves the worker budget: 0 means GOMAXPROCS.
func (opt Options) parallelism() int {
	if opt.Parallel > 0 {
		return opt.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// shared returns opt with the cross-experiment resources (workload
// cache, worker semaphore) populated, creating them when the caller
// did not. All and Run call it once at the top so every cell of a
// harness run draws from one pool and one cache.
func (opt Options) shared() Options {
	if opt.Cache == nil {
		opt.Cache = workload.NewCache()
	}
	if opt.sem == nil {
		opt.sem = make(chan struct{}, opt.parallelism())
	}
	return opt
}

// RunCells executes the experiment's cells and returns their outputs
// in declaration order. With Parallel == 1 the cells run sequentially
// on the calling goroutine — the exact legacy harness behavior. With
// a larger budget each cell runs on its own goroutine, throttled by
// the run-wide semaphore, so cell- and experiment-level parallelism
// share one GOMAXPROCS-sized pool instead of multiplying.
func RunCells(opt Options, expID string, cells []Cell) []CellOut {
	out := make([]CellOut, len(cells))
	if opt.parallelism() <= 1 || len(cells) <= 1 {
		for i, c := range cells {
			out[i] = c.Run(CellSeed(opt.Seed, expID, i))
		}
		return out
	}
	opt = opt.shared()
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opt.sem <- struct{}{}
			defer func() { <-opt.sem }()
			out[i] = cells[i].Run(CellSeed(opt.Seed, expID, i))
		}(i)
	}
	wg.Wait()
	return out
}

// rowsOf flattens cell outputs into table rows, declaration order.
func rowsOf(outs []CellOut) [][]string {
	var rows [][]string
	for _, o := range outs {
		rows = append(rows, o.Rows...)
	}
	return rows
}

// pointsOf collects the fit samples of cell outputs, declaration
// order.
func pointsOf(outs []CellOut) (xs, ys []float64) {
	for _, o := range outs {
		if o.HasPoint {
			xs = append(xs, o.X)
			ys = append(ys, o.Y)
		}
	}
	return xs, ys
}

// cachedGraph builds (or fetches) the shared family graph whose
// generation seed depends only on (opt.Seed, family, params, variant).
// Harness workloads are constructed to satisfy every family
// precondition, so an error is a bug and panics like the other
// harness helpers.
func (opt Options) cachedGraph(family string, p workload.Params, variant int64) *graph.Graph {
	p.Seed = GraphSeed(opt.Seed, family, p, variant)
	g, err := opt.Cache.Build(family, p)
	if err != nil {
		panic("bench: " + err.Error())
	}
	return g
}

// orientID returns the shared OrientByID orientation of a cached
// graph.
func (opt Options) orientID(g *graph.Graph) *graph.Digraph {
	return opt.Cache.Derived(g, "orient:id", func() any {
		return graph.OrientByID(g)
	}).(*graph.Digraph)
}

// orientDegeneracy returns the shared degeneracy orientation of a
// cached graph.
func (opt Options) orientDegeneracy(g *graph.Graph) *graph.Digraph {
	return opt.Cache.Derived(g, "orient:degeneracy", func() any {
		return graph.OrientByDegeneracy(g)
	}).(*graph.Digraph)
}
