package bench

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"listcolor/internal/workload"
)

// TestParallelDeterminism is the scheduler's core contract: every
// experiment's rendered table is byte-identical whether its cells run
// sequentially, under a small explicit budget, or at GOMAXPROCS.
// Under -race this doubles as the scheduler+cache race test — all
// cell goroutines share one workload cache and semaphore.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry determinism sweep skipped in -short mode")
	}
	budgets := []int{1, 4, 0} // 0 = GOMAXPROCS
	for _, e := range Registry() {
		var want string
		for i, par := range budgets {
			tb := e.Run(Options{Seed: 1, Quick: true, Parallel: par}.shared())
			got := tb.Format()
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: table bytes differ between Parallel=%d and Parallel=%d:\n--- sequential:\n%s--- parallel:\n%s",
					e.ID, budgets[0], par, want, got)
			}
		}
	}
}

// TestAllParallelDeterminism checks the experiment-level fan-out too:
// bench.All at GOMAXPROCS workers returns the same tables in the same
// order as the sequential harness.
func TestAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke run skipped in -short mode")
	}
	seq := All(Options{Seed: 3, Quick: true, Parallel: 1})
	par := All(Options{Seed: 3, Quick: true, Parallel: runtime.GOMAXPROCS(0) * 2})
	if len(seq) != len(par) {
		t.Fatalf("table counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Format() != par[i].Format() {
			t.Errorf("table %d (%s) differs between sequential and parallel All", i, seq[i].ID)
		}
	}
}

// TestCellSeedStable pins the seed-derivation functions: they are part
// of the recorded-table contract (EXPERIMENTS.md, the cmd/benchtab
// goldens), so any change to splitmix64 chaining or parameter folding
// must show up as a deliberate test update here.
func TestCellSeedStable(t *testing.T) {
	pins := []struct {
		got, want int64
	}{
		{CellSeed(1, "E1", 0), 4644072591285112226},
		{CellSeed(1, "E1", 1), 4856012308768706359},
		{CellSeed(7, "E12/inst", 0), -7327678301847568121},
		{GraphSeed(1, "regular", workload.Params{N: 64, Degree: 4}, 0), -619196745413253749},
		{GraphSeed(1, "gnp", workload.Params{N: 80, Prob: 0.1}, 2), -3746133557592507418},
	}
	for i, p := range pins {
		if p.got != p.want {
			t.Errorf("pin %d: seed = %d, want %d (seed derivation changed — every recorded table shifts)", i, p.got, p.want)
		}
	}
}

// TestCellSeedDistinct spot-checks avalanche: nearby cell indices and
// experiment ids must not collide.
func TestCellSeedDistinct(t *testing.T) {
	seen := map[int64]string{}
	for _, id := range []string{"E1", "E2", "E10", "E12/inst"} {
		for idx := 0; idx < 32; idx++ {
			s := CellSeed(1, id, idx)
			key := fmt.Sprintf("%s/%d", id, idx)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	if a, b := GraphSeed(1, "regular", workload.Params{N: 64, Degree: 4}, 0),
		GraphSeed(1, "regular", workload.Params{N: 64, Degree: 4}, 1); a == b {
		t.Error("variant does not separate graph seeds")
	}
	if a, b := GraphSeed(1, "regular", workload.Params{N: 64, Degree: 4}, 0),
		GraphSeed(1, "regular", workload.Params{N: 64, Degree: 8}, 0); a == b {
		t.Error("degree does not separate graph seeds")
	}
}

// TestGraphSeedIgnoresParamSeed documents the cache-sharing rule: the
// caller's incoming Params.Seed must not leak into GraphSeed, so two
// experiments sweeping the same family point converge on one build.
func TestGraphSeedIgnoresParamSeed(t *testing.T) {
	p := workload.Params{N: 64, Degree: 4}
	a := GraphSeed(1, "regular", p, 0)
	p.Seed = 999
	if b := GraphSeed(1, "regular", p, 0); a != b {
		t.Error("GraphSeed depends on the incoming Params.Seed; cross-experiment sharing is broken")
	}
}

// TestRunCellsOrderAndSeeds drives the scheduler directly: outputs
// come back in declaration order with the declared per-index seeds,
// regardless of worker budget, and the semaphore admits every cell.
func TestRunCellsOrderAndSeeds(t *testing.T) {
	const n = 64
	for _, par := range []int{1, 3, 16} {
		var ran atomic.Int64
		cells := make([]Cell, n)
		for i := range cells {
			i := i
			cells[i] = Cell{
				Name: fmt.Sprintf("c%d", i),
				Run: func(seed int64) CellOut {
					ran.Add(1)
					return CellOut{Rows: [][]string{{fmt.Sprintf("%d:%d", i, seed)}}}
				},
			}
		}
		outs := RunCells(Options{Seed: 5, Parallel: par}.shared(), "EX", cells)
		if ran.Load() != n {
			t.Fatalf("Parallel=%d: %d cells ran, want %d", par, ran.Load(), n)
		}
		for i, o := range outs {
			want := fmt.Sprintf("%d:%d", i, CellSeed(5, "EX", i))
			if len(o.Rows) != 1 || o.Rows[0][0] != want {
				t.Errorf("Parallel=%d: out[%d] = %v, want row %q", par, i, o.Rows, want)
			}
		}
	}
}
