package bench

// servicebench.go measures the incremental coloring service: churn
// throughput (updates/sec through the single-writer apply loop),
// recolor locality (nodes touched per update, the paper's locality
// argument made measurable), and read latency through the real HTTP
// stack while a writer goroutine keeps applying batches — the numbers
// recorded as the `service` section of BENCH_harness.json and
// refreshed by `make bench-service`.

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/service"
)

// ServiceBenchEntry is one churn-workload measurement.
type ServiceBenchEntry struct {
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Updates  int    `json:"updates"`
	Batches  int    `json:"batches"`
	// UpdatesPerSec is applied updates over the churn phase's wall time
	// (repair included — it is the maintenance cost being priced).
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// Locality quantiles are over per-batch recolored-per-update
	// ratios; the mean is total recolored over total updates.
	LocalityMean  float64 `json:"locality_mean"`
	LocalityP50   float64 `json:"locality_p50"`
	LocalityP95   float64 `json:"locality_p95"`
	LocalityMax   float64 `json:"locality_max"`
	HardConflicts int64   `json:"hard_conflicts"`
	Recolored     int64   `json:"recolored"`
	Fallbacks     int64   `json:"fallbacks"`
	Compactions   int64   `json:"compactions"`
	// Read latency is measured via GET /v1/color/{node} against a
	// net/http/httptest server while a writer goroutine applies
	// batches continuously (lock-free snapshot reads under write load).
	Reads     int     `json:"reads"`
	ReadP50Us float64 `json:"read_p50_us"`
	ReadP99Us float64 `json:"read_p99_us"`
	// Valid is the post-run full conflict scan verdict.
	Valid bool `json:"valid"`
}

// serviceWorkload parameterizes one churn measurement.
type serviceWorkload struct {
	name    string
	build   func() *graph.CSR
	updates int
	batch   int
	reads   int
}

// ServiceWorkloads returns the measured workloads: a million-node
// streamed ring (the soak shape) and a sparse GNP, scaled down under
// quick.
func ServiceWorkloads(quick bool) []serviceWorkload {
	if quick {
		return []serviceWorkload{
			{name: "ring-churn", build: func() *graph.CSR { return graph.StreamedRing(50_000) }, updates: 10_000, batch: 500, reads: 300},
			{name: "gnp-churn", build: func() *graph.CSR { return graph.StreamedGNP(20_000, 1e-4, 11) }, updates: 5_000, batch: 500, reads: 300},
		}
	}
	return []serviceWorkload{
		{name: "ring-churn", build: func() *graph.CSR { return graph.StreamedRing(1_000_000) }, updates: 100_000, batch: 1000, reads: 2000},
		{name: "gnp-churn", build: func() *graph.CSR { return graph.StreamedGNP(200_000, 2e-5, 11) }, updates: 50_000, batch: 1000, reads: 2000},
	}
}

// RunServiceBench measures every service workload.
func RunServiceBench(quick bool) ([]ServiceBenchEntry, error) {
	var out []ServiceBenchEntry
	for _, w := range ServiceWorkloads(quick) {
		e, err := measureServiceWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("service bench %s: %w", w.name, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// servicePalette builds the shared full-palette proper instance churn
// benchmarks run over.
func servicePalette(n, space int) *coloring.Instance {
	full := make([]int, space)
	for i := range full {
		full[i] = i
	}
	zeros := make([]int, space)
	inst := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = zeros
	}
	return inst
}

// churnBatch generates one feasibility-guarded batch of random edge
// inserts/deletes against the service's current topology.
func churnBatch(svc *service.Service, rng *rand.Rand, space, size int) []service.Op {
	type ekey [2]int
	pending := make(map[ekey]bool)
	degDelta := make(map[int]int)
	ops := make([]service.Op, 0, size)
	for len(ops) < size {
		u, v := rng.Intn(svc.N()), rng.Intn(svc.N())
		if u == v {
			continue
		}
		k := ekey{u, v}
		if u > v {
			k = ekey{v, u}
		}
		present, seen := pending[k]
		if !seen {
			present = svc.HasEdge(u, v)
		}
		switch {
		case present:
			ops = append(ops, service.Op{Action: service.OpRemoveEdge, U: u, V: v})
			pending[k] = false
			degDelta[u]--
			degDelta[v]--
		case svc.DegreeOf(u)+degDelta[u] < space-2 && svc.DegreeOf(v)+degDelta[v] < space-2:
			ops = append(ops, service.Op{Action: service.OpAddEdge, U: u, V: v})
			pending[k] = true
			degDelta[u]++
			degDelta[v]++
		}
	}
	return ops
}

func measureServiceWorkload(w serviceWorkload) (ServiceBenchEntry, error) {
	base := w.build()
	space := base.RawMaxDegree() + 4
	if space < 6 {
		space = 6
	}
	svc, err := service.New(base, servicePalette(base.N(), space), nil, service.Options{})
	if err != nil {
		return ServiceBenchEntry{}, err
	}
	e := ServiceBenchEntry{Workload: w.name, Nodes: base.N()}

	// Phase 1: churn throughput + per-batch locality.
	rng := rand.New(rand.NewSource(23))
	var localities []float64
	start := time.Now()
	for e.Updates < w.updates {
		ops := churnBatch(svc, rng, space, w.batch)
		rep, err := svc.ApplyBatch(ops)
		if err != nil {
			return e, err
		}
		e.Updates += rep.Applied
		e.Batches++
		if rep.Applied > 0 {
			localities = append(localities, float64(rep.Recolored)/float64(rep.Applied))
		}
	}
	churnWall := time.Since(start).Seconds()
	if churnWall > 0 {
		e.UpdatesPerSec = float64(e.Updates) / churnWall
	}
	sort.Float64s(localities)
	e.LocalityP50 = benchQuantile(localities, 0.50)
	e.LocalityP95 = benchQuantile(localities, 0.95)
	e.LocalityMax = localities[len(localities)-1]

	// Phase 2: read latency through httptest under live write load.
	// The writer paces itself with a short inter-batch gap: a zero-gap
	// spin loop on a single-core host measures scheduler starvation,
	// not the read path — paced batches keep repair work in flight
	// while letting the server goroutine run.
	srv := httptest.NewServer(service.NewHandler(svc))
	var stop atomic.Bool
	var wg sync.WaitGroup
	var writerErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(29))
		for !stop.Load() {
			if _, err := svc.ApplyBatch(churnBatch(svc, wrng, space, w.batch/4+1)); err != nil {
				writerErr = err
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	client := srv.Client()
	lat := make([]float64, 0, w.reads)
	rrng := rand.New(rand.NewSource(31))
	for i := 0; i < w.reads; i++ {
		url := fmt.Sprintf("%s/v1/color/%d", srv.URL, rrng.Intn(base.N()))
		t0 := time.Now()
		resp, err := client.Get(url)
		dt := time.Since(t0)
		if err != nil {
			stop.Store(true)
			wg.Wait()
			srv.Close()
			return e, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			stop.Store(true)
			wg.Wait()
			srv.Close()
			return e, fmt.Errorf("read status %d", resp.StatusCode)
		}
		resp.Body.Close()
		lat = append(lat, float64(dt.Nanoseconds())/1e3)
	}
	stop.Store(true)
	wg.Wait()
	srv.Close()
	if writerErr != nil {
		return e, writerErr
	}
	sort.Float64s(lat)
	e.Reads = len(lat)
	e.ReadP50Us = benchQuantile(lat, 0.50)
	e.ReadP99Us = benchQuantile(lat, 0.99)

	st := svc.Stats()
	e.HardConflicts = st.HardConflicts
	e.Recolored = st.Recolored
	e.Fallbacks = st.Fallbacks
	e.Compactions = st.Compactions
	if st.Updates > 0 {
		e.LocalityMean = float64(st.Recolored) / float64(st.Updates)
	}
	e.Valid = svc.ValidateState() == nil
	return e, nil
}

// benchQuantile returns the q-quantile of a sorted sample (type-7
// linear interpolation, matching internal/stats).
func benchQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
