package bench

// shardbench.go measures the sharded service write path: the same
// deterministic spatially-local churn script replayed at increasing
// shard counts, recording throughput, how much of each batch ran on
// the parallel path (parallel batches, deferred ops, fallbacks), the
// degree-mass balance of the work each shard absorbed, and — the
// contract the sweep exists to verify — whether every shard count
// produced final colors byte-identical to the sequential run.
// Recorded as the `shard_sweep` section of BENCH_harness.json and
// refreshed by `make bench-service-shards`.

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"time"

	"listcolor/internal/graph"
	"listcolor/internal/service"
)

// ShardSweepEntry is one (workload, shard count) measurement.
type ShardSweepEntry struct {
	Workload string `json:"workload"`
	Nodes    int    `json:"nodes"`
	Shards   int    `json:"shards"`
	Updates  int    `json:"updates"`
	Batches  int    `json:"batches"`
	// UpdatesPerSec is applied updates over the replay's wall time;
	// SpeedupVsSeq divides the shards=1 entry's wall time by this
	// entry's (1.0 for the sequential entry itself). On a single-CPU
	// host the speedup is bounded by 1 — the work-distribution columns
	// below are the deterministic signal there.
	UpdatesPerSec float64 `json:"updates_per_sec"`
	SpeedupVsSeq  float64 `json:"speedup_vs_seq"`
	// ParallelBatches counts batches that committed through the
	// sharded path; DeferredOps the ops routed to the sequential
	// epilogue; the fallback counters the batches that discarded
	// parallel work and replayed sequentially.
	ParallelBatches int64 `json:"parallel_batches"`
	DeferredOps     int64 `json:"deferred_ops"`
	ApplyFallbacks  int64 `json:"apply_fallbacks"`
	RepairFallbacks int64 `json:"repair_fallbacks"`
	// ShardBalance is min/max over the per-shard applied-op counters
	// (1.0 = perfectly even, 0 when a shard saw no regional work).
	ShardBalance float64 `json:"shard_balance"`
	// IdenticalToSeq reports whether the final color vector (and every
	// per-batch report) matched the shards=1 replay byte for byte.
	IdenticalToSeq bool `json:"identical_to_seq"`
	// Valid is the post-run full conflict scan verdict.
	Valid bool `json:"valid"`
}

// shardWorkload parameterizes one sweep: a base graph plus a
// deterministic spatially-local churn script.
type shardWorkload struct {
	name    string
	build   func() *graph.CSR
	batches int
	batch   int
	seed    int64
}

// ShardSweepWorkloads returns the swept workloads. Locality matters
// here: mostly-short edges keep ops inside one degree-mass region, so
// the parallel path engages instead of deferring everything.
func ShardSweepWorkloads(quick bool) []shardWorkload {
	if quick {
		return []shardWorkload{
			{name: "ring-local", build: func() *graph.CSR { return graph.StreamedRing(20_000) }, batches: 30, batch: 200, seed: 41},
			{name: "powerlaw-local", build: func() *graph.CSR { return graph.StreamedPowerLaw(10_000, 3, 7) }, batches: 20, batch: 200, seed: 43},
		}
	}
	return []shardWorkload{
		{name: "ring-local", build: func() *graph.CSR { return graph.StreamedRing(500_000) }, batches: 100, batch: 1000, seed: 41},
		{name: "powerlaw-local", build: func() *graph.CSR { return graph.StreamedPowerLaw(200_000, 3, 7) }, batches: 60, batch: 1000, seed: 43},
	}
}

// ShardSweepShards returns the swept shard counts: sequential first,
// then powers of two up to GOMAXPROCS, deduplicated.
func ShardSweepShards() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	var out []int
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// localChurnScript generates a deterministic batched op stream whose
// edge inserts are short-range (offset ≤ 8), biased toward the
// spatially-local churn the paper's repair-locality argument covers.
// The generator tracks topology in a private mirror so the script
// does not depend on service state — the same script replays against
// every shard count.
func localChurnScript(base *graph.CSR, batches, batchSize int, seed int64, space int) [][]service.Op {
	n := base.N()
	rng := rand.New(rand.NewSource(seed))
	// Mirror: base topology plus the script's own toggles.
	toggled := make(map[[2]int]bool) // key -> present (overrides base)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = base.Degree(v)
	}
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	hasEdge := func(u, v int) bool {
		if present, ok := toggled[key(u, v)]; ok {
			return present
		}
		return base.HasEdge(u, v)
	}
	var script [][]service.Op
	var recentAdds [][2]int
	for b := 0; b < batches; b++ {
		ops := make([]service.Op, 0, batchSize)
		for len(ops) < batchSize {
			u := rng.Intn(n)
			switch {
			case len(recentAdds) > 0 && rng.Intn(100) < 30:
				// Remove a previously-added edge.
				i := rng.Intn(len(recentAdds))
				k := recentAdds[i]
				recentAdds[i] = recentAdds[len(recentAdds)-1]
				recentAdds = recentAdds[:len(recentAdds)-1]
				if !hasEdge(k[0], k[1]) {
					continue
				}
				ops = append(ops, service.Op{Action: service.OpRemoveEdge, U: k[0], V: k[1]})
				toggled[k] = false
				deg[k[0]]--
				deg[k[1]]--
			default:
				// Short-range insert.
				v := (u + 1 + rng.Intn(8)) % n
				if u == v || hasEdge(u, v) || deg[u] >= space-2 || deg[v] >= space-2 {
					continue
				}
				ops = append(ops, service.Op{Action: service.OpAddEdge, U: u, V: v})
				toggled[key(u, v)] = true
				deg[u]++
				deg[v]++
				recentAdds = append(recentAdds, key(u, v))
			}
		}
		script = append(script, ops)
	}
	return script
}

// RunShardSweepBench replays each workload's script at every shard
// count and verifies byte-identity against the sequential replay.
func RunShardSweepBench(quick bool) ([]ShardSweepEntry, error) {
	var out []ShardSweepEntry
	shards := ShardSweepShards()
	for _, w := range ShardSweepWorkloads(quick) {
		base := w.build()
		space := base.RawMaxDegree() + 4
		if space < 6 {
			space = 6
		}
		script := localChurnScript(base, w.batches, w.batch, w.seed, space)

		var seqColors []int
		var seqReports []service.BatchReport
		var seqWall float64
		for _, s := range shards {
			svc, err := service.New(base, servicePalette(base.N(), space), nil, service.Options{Shards: s})
			if err != nil {
				return nil, fmt.Errorf("shard sweep %s/s=%d: %w", w.name, s, err)
			}
			e := ShardSweepEntry{Workload: w.name, Nodes: base.N(), Shards: s, Batches: len(script)}
			var reports []service.BatchReport
			start := time.Now()
			for bi, ops := range script {
				rep, err := svc.ApplyBatch(ops)
				if err != nil {
					return nil, fmt.Errorf("shard sweep %s/s=%d batch %d: %w", w.name, s, bi, err)
				}
				e.Updates += rep.Applied
				reports = append(reports, rep)
			}
			wall := time.Since(start).Seconds()
			if wall > 0 {
				e.UpdatesPerSec = float64(e.Updates) / wall
			}
			colors := svc.Snapshot().Colors
			if s == 1 {
				seqColors, seqReports, seqWall = colors, reports, wall
			}
			e.SpeedupVsSeq = seqWall / wall
			e.IdenticalToSeq = reflect.DeepEqual(colors, seqColors) &&
				reflect.DeepEqual(reports, seqReports)

			st := svc.Stats()
			e.ParallelBatches = st.ParallelBatches
			e.DeferredOps = st.DeferredOps
			e.ApplyFallbacks = st.ApplyFallbacks
			e.RepairFallbacks = st.RepairFallbacks
			if len(st.ShardApplied) > 0 {
				min, max := st.ShardApplied[0], st.ShardApplied[0]
				for _, a := range st.ShardApplied[1:] {
					if a < min {
						min = a
					}
					if a > max {
						max = a
					}
				}
				if max > 0 {
					e.ShardBalance = float64(min) / float64(max)
				}
			}
			e.Valid = svc.ValidateState() == nil
			out = append(out, e)
		}
	}
	return out, nil
}
