package bench

// SimBenchBaseline returns the recorded round-throughput of the
// pre-arena router (per-round `make([][]Message, n)`, per-message
// target slice, per-inbox `sort.SliceStable`), measured once on the
// reference container (2026-08-05, linux/amd64) before the arena
// rewrite landed. It is the fixed anchor BENCH_sim.json compares the
// current engine against; it is not re-measured by `make bench-sim`.
func SimBenchBaseline() []SimBenchEntry {
	return []SimBenchEntry{
		{Workload: "ring", Driver: "lockstep", Nodes: 256, Edges: 256, Rounds: 4096, MsgsPerRound: 512, RoundsPerSec: 18160, NsPerRound: 55067, BytesPerRound: 49550, AllocsPerRound: 1281.3},
		{Workload: "ring", Driver: "goroutines", Nodes: 256, Edges: 256, Rounds: 4096, MsgsPerRound: 512, RoundsPerSec: 4997, NsPerRound: 200115, BytesPerRound: 49579, AllocsPerRound: 1281.6},
		{Workload: "ring", Driver: "workers", Nodes: 256, Edges: 256, Rounds: 4096, MsgsPerRound: 512, RoundsPerSec: 19245, NsPerRound: 51962, BytesPerRound: 53889, AllocsPerRound: 1294.3},
		{Workload: "gnp", Driver: "lockstep", Nodes: 256, Edges: 1623, Rounds: 4096, MsgsPerRound: 3246, RoundsPerSec: 4341, NsPerRound: 230381, BytesPerRound: 238350, AllocsPerRound: 2050.3},
		{Workload: "gnp", Driver: "goroutines", Nodes: 256, Edges: 1623, Rounds: 4096, MsgsPerRound: 3246, RoundsPerSec: 2769, NsPerRound: 361196, BytesPerRound: 238379, AllocsPerRound: 2050.6},
		{Workload: "gnp", Driver: "workers", Nodes: 256, Edges: 1623, Rounds: 4096, MsgsPerRound: 3246, RoundsPerSec: 6138, NsPerRound: 162926, BytesPerRound: 242689, AllocsPerRound: 2063.3},
		{Workload: "complete", Driver: "lockstep", Nodes: 64, Edges: 2016, Rounds: 1024, MsgsPerRound: 4032, RoundsPerSec: 9656, NsPerRound: 103565, BytesPerRound: 227598, AllocsPerRound: 641.3},
		{Workload: "complete", Driver: "goroutines", Nodes: 64, Edges: 2016, Rounds: 1024, MsgsPerRound: 4032, RoundsPerSec: 6912, NsPerRound: 144681, BytesPerRound: 227623, AllocsPerRound: 641.6},
		{Workload: "complete", Driver: "workers", Nodes: 64, Edges: 2016, Rounds: 1024, MsgsPerRound: 4032, RoundsPerSec: 11192, NsPerRound: 89353, BytesPerRound: 228865, AllocsPerRound: 652.3},
	}
}
