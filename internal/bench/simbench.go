package bench

// simbench.go measures the simulator engine itself, independent of any
// coloring algorithm: a fixed chatter protocol (every node broadcasts a
// constant-size payload each round) is driven for a known number of
// rounds on representative topologies, and the harness reports round
// throughput and per-round allocation behavior. cmd/benchtab -sim
// renders the result as BENCH_sim.json, the perf-trajectory record the
// Makefile's bench-sim target refreshes; internal/sim's
// BenchmarkRoundThroughput benchmarks reuse the same workloads and
// protocol so `go test -bench` and the JSON agree.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// SimWorkload is one engine-benchmark topology.
type SimWorkload struct {
	Name string
	// Rounds is how many protocol rounds a measured run executes.
	Rounds int
	Build  func() *graph.Graph
}

// SimWorkloads returns the benchmark topologies: a sparse ring (router
// overhead dominates), a random G(n,p) (mixed degrees), and a complete
// graph (delivery-bound, Θ(n²) messages per round). Quick shrinks
// sizes and round counts for smoke runs.
func SimWorkloads(quick bool) []SimWorkload {
	ringN, gnpN, compN := 256, 256, 64
	rounds := 4096
	if quick {
		ringN, gnpN, compN = 64, 64, 16
		rounds = 256
	}
	return []SimWorkload{
		{Name: "ring", Rounds: rounds, Build: func() *graph.Graph { return graph.Ring(ringN) }},
		{Name: "gnp", Rounds: rounds, Build: func() *graph.Graph {
			return graph.GNP(gnpN, 0.05, rand.New(rand.NewSource(1)))
		}},
		{Name: "complete", Rounds: rounds / 4, Build: func() *graph.Graph { return graph.Complete(compN) }},
	}
}

// chatter is the engine-benchmark protocol: broadcast one fixed-size
// payload per round for a set number of rounds, reading (but not
// retaining) the inbox. The outbox slice and its payload are built once
// in Init so steady-state rounds perform no protocol-side allocation —
// any allocation the benchmark observes is the engine's.
type chatter struct {
	rounds int
	outbox []sim.Outgoing
	sink   int
}

func (c *chatter) Init(ctx *sim.Context) []sim.Outgoing {
	c.outbox = []sim.Outgoing{{To: sim.Broadcast, Payload: sim.IntPayload{Value: ctx.ID, Domain: 1 << 16}}}
	return c.outbox
}

func (c *chatter) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for i := range inbox {
		c.sink += inbox[i].From
	}
	if round >= c.rounds {
		return nil, true
	}
	return c.outbox, false
}

// ChatterNodes returns n chatter nodes that terminate after the given
// round. Shared by the JSON harness and internal/sim's benchmarks.
func ChatterNodes(n, rounds int) []sim.Node {
	nodes := make([]sim.Node, n)
	for v := range nodes {
		nodes[v] = &chatter{rounds: rounds}
	}
	return nodes
}

// SimBenchEntry is one (workload, driver) measurement.
type SimBenchEntry struct {
	Workload       string  `json:"workload"`
	Driver         string  `json:"driver"`
	Nodes          int     `json:"nodes"`
	Edges          int     `json:"edges"`
	Rounds         int     `json:"rounds"`
	MsgsPerRound   int     `json:"messages_per_round"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	NsPerRound     float64 `json:"ns_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
}

// MeasureRoundThroughput runs the chatter protocol for w.Rounds rounds
// under the given driver and reports per-round time and allocation.
// One warmup run precedes the measured run; the measured figures still
// include the engine's one-time per-run setup (contexts, inbox arena),
// amortized over the round count — steady-state-allocation-free
// engines therefore report allocs/round ≪ 1, not exactly 0.
func MeasureRoundThroughput(w SimWorkload, driver sim.Driver) (SimBenchEntry, error) {
	g := w.Build()
	nw := sim.NewNetwork(g)
	run := func() (sim.Result, error) {
		return sim.Run(nw, ChatterNodes(g.N(), w.Rounds), sim.Config{Driver: driver})
	}
	if _, err := run(); err != nil { // warmup
		return SimBenchEntry{}, fmt.Errorf("bench: sim warmup %s/%s: %w", w.Name, driver, err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res, err := run()
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return SimBenchEntry{}, fmt.Errorf("bench: sim run %s/%s: %w", w.Name, driver, err)
	}
	if res.Rounds != w.Rounds {
		return SimBenchEntry{}, fmt.Errorf("bench: sim run %s/%s: %d rounds, want %d", w.Name, driver, res.Rounds, w.Rounds)
	}
	rounds := float64(w.Rounds)
	return SimBenchEntry{
		Workload:       w.Name,
		Driver:         driver.String(),
		Nodes:          g.N(),
		Edges:          g.M(),
		Rounds:         w.Rounds,
		MsgsPerRound:   res.Messages / res.Rounds,
		RoundsPerSec:   rounds / dt.Seconds(),
		NsPerRound:     float64(dt.Nanoseconds()) / rounds,
		BytesPerRound:  float64(m1.TotalAlloc-m0.TotalAlloc) / rounds,
		AllocsPerRound: float64(m1.Mallocs-m0.Mallocs) / rounds,
	}, nil
}

// SimBenchReport is the BENCH_sim.json document: the measurements from
// this machine/build plus the recorded pre-arena baseline the repo's
// perf trajectory is anchored to.
type SimBenchReport struct {
	GeneratedAt string          `json:"generated_at"`
	Note        string          `json:"note"`
	Baseline    []SimBenchEntry `json:"baseline"`
	Current     []SimBenchEntry `json:"current"`
	// Scale holds the web-scale rows (streamed CSR builds at 10⁶–10⁷
	// nodes; see simscale.go and docs/MEMORY.md).
	Scale []SimScaleEntry `json:"scale"`
	// GraphBuild holds the parallel-substrate rows: segmented
	// multi-core CSR builds and the range-partitioned defect audit vs
	// their sequential references, with byte-identity and
	// work-distribution verdicts (see graphbench.go).
	GraphBuild []GraphBuildEntry `json:"graph_build"`
}

// RunSimBench measures every (workload, driver) pair.
func RunSimBench(quick bool) ([]SimBenchEntry, error) {
	var out []SimBenchEntry
	for _, w := range SimWorkloads(quick) {
		for _, d := range sim.AllDrivers() {
			e, err := MeasureRoundThroughput(w, d)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}
