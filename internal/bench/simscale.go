package bench

// simscale.go measures the web-scale simulation path: streamed
// CSR-native builds at 10⁶–10⁷ nodes driven through the chatter
// protocol, reporting build time, round throughput, per-round
// allocation, and process peak RSS. cmd/benchtab -sim renders the
// result as the "scale" section of BENCH_sim.json; the memory budget
// these rows are checked against is derived in docs/MEMORY.md.

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// SimScaleWorkload is one scale-benchmark instance: a streamed CSR
// build plus the round count and shard count its measured run uses.
type SimScaleWorkload struct {
	Name   string
	Rounds int
	Shards int
	Build  func() *graph.CSR
}

// SimScaleWorkloads returns the scale instances. Full mode is the
// BENCH_sim.json tier: a 10⁶-node ring, a 10⁶-node G(n,p) at average
// degree 8, and a 10⁷-node ring. Quick shrinks n to smoke-test the
// same code path in CI.
func SimScaleWorkloads(quick bool) []SimScaleWorkload {
	if quick {
		return []SimScaleWorkload{
			{Name: "ring20k", Rounds: 32, Shards: 4, Build: func() *graph.CSR { return graph.StreamedRing(20_000) }},
			{Name: "gnp20k", Rounds: 32, Shards: 4, Build: func() *graph.CSR {
				return graph.StreamedGNP(20_000, 8.0/20_000, 1)
			}},
		}
	}
	return []SimScaleWorkload{
		{Name: "ring1e6", Rounds: 8, Shards: 8, Build: func() *graph.CSR { return graph.StreamedRing(1_000_000) }},
		{Name: "gnp1e6", Rounds: 8, Shards: 8, Build: func() *graph.CSR {
			return graph.StreamedGNP(1_000_000, 8.0/1_000_000, 1)
		}},
		{Name: "ring1e7", Rounds: 4, Shards: 8, Build: func() *graph.CSR { return graph.StreamedRing(10_000_000) }},
	}
}

// SimScaleEntry is one (workload, driver) scale measurement.
type SimScaleEntry struct {
	Workload       string  `json:"workload"`
	Driver         string  `json:"driver"`
	Shards         int     `json:"shards"`
	Nodes          int     `json:"nodes"`
	Edges          int64   `json:"edges"`
	Rounds         int     `json:"rounds"`
	BuildSec       float64 `json:"build_sec"`
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	// HeapLiveBytes is HeapAlloc sampled at the instant the run
	// returns, while the topology, nodes, contexts, and inbox arena are
	// all still reachable — the figure docs/MEMORY.md budgets as
	// bytes/node + bytes/edge.
	HeapLiveBytes uint64  `json:"heap_live_bytes"`
	BytesPerNode  float64 `json:"bytes_per_node"`
	// PeakRSSBytes is the process high-water RSS (VmHWM) at the end of
	// the measurement. It is monotone across the benchmark run, so each
	// row reports the peak up to and including its own workload.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

// PeakRSSBytes returns the process peak resident set size from
// /proc/self/status (VmHWM), falling back to runtime MemStats.Sys —
// the OS-reserved virtual footprint — where procfs is unavailable.
func PeakRSSBytes() uint64 {
	f, err := os.Open("/proc/self/status")
	if err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					return kb << 10
				}
			}
		}
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Sys
}

// MeasureScaleThroughput streams the workload's CSR build, runs the
// chatter protocol on it once under the given driver, and reports
// build time, round throughput, allocation, and memory. Unlike the
// small-graph harness there is no warmup run — a 10⁷-node run is too
// expensive to execute twice, and the one-time setup cost is exactly
// what the build_sec and per-round split is reporting.
func MeasureScaleThroughput(w SimScaleWorkload, driver sim.Driver) (SimScaleEntry, error) {
	runtime.GC()
	b0 := time.Now()
	c := w.Build()
	buildSec := time.Since(b0).Seconds()
	nw := sim.NewCSRNetwork(c)
	nodes := ChatterNodes(c.N(), w.Rounds)
	shards := 1
	if driver == sim.Workers {
		shards = w.Shards
	}
	cfg := sim.Config{Driver: driver, Shards: shards}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	res, err := sim.Run(nw, nodes, cfg)
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)
	if err != nil {
		return SimScaleEntry{}, fmt.Errorf("bench: scale run %s/%s: %w", w.Name, driver, err)
	}
	if res.Rounds != w.Rounds {
		return SimScaleEntry{}, fmt.Errorf("bench: scale run %s/%s: %d rounds, want %d", w.Name, driver, res.Rounds, w.Rounds)
	}
	rounds := float64(w.Rounds)
	e := SimScaleEntry{
		Workload:       w.Name,
		Driver:         driver.String(),
		Shards:         shards,
		Nodes:          c.N(),
		Edges:          c.M(),
		Rounds:         w.Rounds,
		BuildSec:       buildSec,
		RoundsPerSec:   rounds / dt.Seconds(),
		NsPerRound:     float64(dt.Nanoseconds()) / rounds,
		AllocsPerRound: float64(m1.Mallocs-m0.Mallocs) / rounds,
		HeapLiveBytes:  m1.HeapAlloc,
		BytesPerNode:   float64(m1.HeapAlloc) / float64(c.N()),
		PeakRSSBytes:   PeakRSSBytes(),
	}
	runtime.KeepAlive(nw)
	runtime.KeepAlive(nodes)
	return e, nil
}

// RunSimScale measures every scale workload under the lockstep
// reference and the sharded workers driver. The goroutine-per-node
// driver is deliberately absent: 10⁷ goroutine stacks are a memory
// benchmark of the runtime, not of the engine.
func RunSimScale(quick bool) ([]SimScaleEntry, error) {
	var out []SimScaleEntry
	for _, w := range SimScaleWorkloads(quick) {
		for _, d := range []sim.Driver{sim.Lockstep, sim.Workers} {
			e, err := MeasureScaleThroughput(w, d)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	return out, nil
}
