// Package classic implements the classical defective-coloring
// constructions the paper generalizes, as described in its
// introduction:
//
//   - the sequential greedy d-arbdefective coloring with
//     ⌈(Δ+1)/(d+1)⌉ colors [BE10] and its distributed single-sweep
//     variant (one round per initial color class);
//   - Claim 4.1's corollary: on graphs of neighborhood independence θ,
//     the single sweep yields a (2d+1)·θ-DEFECTIVE coloring;
//   - the Two-Sweep *product* construction [BE09, BHL+19]: two sweeps
//     in opposite order over the initial color classes, final color =
//     (first-sweep color, second-sweep color) ∈ [c]², giving a
//     defective coloring with c² colors whose defect is at most
//     2·⌊Δ/c⌋ (the paper's Algorithm 1 is the list generalization of
//     exactly this scheme).
//
// These serve as baselines (benchmark E13) and as executable
// documentation of where Algorithm 1 comes from.
package classic

import (
	"fmt"

	"listcolor/internal/graph"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
)

// GreedyArb computes a d-arbdefective coloring with c = ⌈(Δ+1)/(d+1)⌉
// colors by one sequential sweep in id order: each node picks the
// color least used among already-colored neighbors (≤ ⌊deg/c⌋ ≤ d of
// them) and orients its monochromatic edges toward them. Returns the
// colors and the orientation arcs.
func GreedyArb(g *graph.Graph, d int) (colors []int, arcs [][2]int, c int) {
	if d < 0 {
		panic("classic: negative defect")
	}
	delta := g.RawMaxDegree()
	c = (delta + 1 + d) / (d + 1) // ⌈(Δ+1)/(d+1)⌉
	n := g.N()
	colors = make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	counts := palette.NewCounter(c)
	for v := 0; v < n; v++ {
		counts.Reset()
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				counts.Add(colors[u])
			}
		}
		best := counts.ArgMin(c)
		colors[v] = best
		for _, u := range g.Neighbors(v) {
			if colors[u] == best && u < v {
				arcs = append(arcs, [2]int{v, u})
			}
		}
	}
	return colors, arcs, c
}

// sweepArbNode is the distributed single-sweep node: at its initial
// color class's turn it picks the least-used color among
// earlier-decided neighbors and broadcasts it.
type sweepArbNode struct {
	q, c   int
	init   int
	counts *palette.Counter
	result *int
}

var _ sim.Node = (*sweepArbNode)(nil)

func (s *sweepArbNode) Init(ctx *sim.Context) []sim.Outgoing { return nil }

func (s *sweepArbNode) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for _, m := range inbox {
		if p, ok := m.Payload.(sim.IntPayload); ok {
			s.counts.Add(p.Value) // corrupted payloads fail the assertion and are ignored
		}
	}
	if round != s.init+1 {
		return nil, false
	}
	best := s.counts.ArgMin(s.c)
	*s.result = best
	return []sim.Outgoing{{To: sim.Broadcast, Payload: sim.IntPayload{Value: best, Domain: s.c}}}, true
}

// SweepArb is the distributed single-sweep d-arbdefective coloring:
// given a proper q-coloring, it sweeps the classes in ascending order
// (one round each); every node ends with at most d earlier-decided
// neighbors of its color, the arcs pointing at them. O(q) rounds,
// c = ⌈(Δ+1)/(d+1)⌉ colors.
func SweepArb(g *graph.Graph, initColors []int, q, d int, cfg sim.Config) (colors []int, arcs [][2]int, c int, stats sim.Result, err error) {
	if err := checkInit(g, initColors, q); err != nil {
		return nil, nil, 0, sim.Result{}, err
	}
	delta := g.RawMaxDegree()
	c = (delta + 1 + d) / (d + 1)
	n := g.N()
	colors = make([]int, n)
	nodes := make([]sim.Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &sweepArbNode{q: q, c: c, init: initColors[v], counts: palette.NewCounter(c), result: &colors[v]}
	}
	stats, err = sim.Run(sim.NewNetwork(g), nodes, cfg)
	if err != nil {
		return nil, nil, 0, stats, fmt.Errorf("classic: %w", err)
	}
	// Orient monochromatic edges toward the earlier class (ties are
	// impossible: the initial coloring is proper).
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			if initColors[e[0]] > initColors[e[1]] {
				arcs = append(arcs, [2]int{e[0], e[1]})
			} else {
				arcs = append(arcs, [2]int{e[1], e[0]})
			}
		}
	}
	return colors, arcs, c, stats, nil
}

// productNode runs both sweeps of the classical product construction:
// ascending classes decide the first coordinate, descending classes
// the second; the final color is first·c + second.
type productNode struct {
	q, c    int
	init    int
	counts1 *palette.Counter // earlier neighbors' first coordinates
	counts2 *palette.Counter // later neighbors' second coordinates
	first   int
	result  *int
}

var _ sim.Node = (*productNode)(nil)

// firstPayload and secondPayload distinguish sweep coordinates on the
// wire.
type firstPayload struct{ sim.IntPayload }
type secondPayload struct{ sim.IntPayload }

func (p *productNode) Init(ctx *sim.Context) []sim.Outgoing { return nil }

func (p *productNode) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	for _, m := range inbox {
		switch pay := m.Payload.(type) {
		case firstPayload:
			p.counts1.Add(pay.Value)
		case secondPayload:
			p.counts2.Add(pay.Value)
		}
	}
	switch round {
	case p.init + 1:
		// Ascending sweep: minimize over earlier neighbors' first
		// coordinates.
		p.first = p.counts1.ArgMin(p.c)
		return []sim.Outgoing{{To: sim.Broadcast, Payload: firstPayload{sim.IntPayload{Value: p.first, Domain: p.c}}}}, false
	case 2*p.q - p.init:
		// Descending sweep: minimize over later neighbors' second
		// coordinates.
		second := p.counts2.ArgMin(p.c)
		*p.result = p.first*p.c + second
		return []sim.Outgoing{{To: sim.Broadcast, Payload: secondPayload{sim.IntPayload{Value: second, Domain: p.c}}}}, true
	default:
		return nil, false
	}
}

// ProductDefective is the classical two-sweep product construction
// [BE09, BHL+19]: a defective coloring with c² colors in which every
// node has at most 2·⌊Δ/c⌋ same-colored neighbors (the first sweep
// bounds conflicts toward earlier classes, the second toward later
// ones; a neighbor conflicts only if both coordinates collide). The
// paper's Algorithm 1 generalizes exactly this scheme to lists.
func ProductDefective(g *graph.Graph, initColors []int, q, c int, cfg sim.Config) (colors []int, stats sim.Result, err error) {
	if c < 1 {
		return nil, sim.Result{}, fmt.Errorf("classic: need ≥ 1 color per sweep")
	}
	if err := checkInit(g, initColors, q); err != nil {
		return nil, sim.Result{}, err
	}
	n := g.N()
	colors = make([]int, n)
	nodes := make([]sim.Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &productNode{
			q: q, c: c, init: initColors[v],
			counts1: palette.NewCounter(c), counts2: palette.NewCounter(c),
			result: &colors[v],
		}
	}
	stats, err = sim.Run(sim.NewNetwork(g), nodes, cfg)
	if err != nil {
		return nil, stats, fmt.Errorf("classic: %w", err)
	}
	return colors, stats, nil
}

func checkInit(g *graph.Graph, initColors []int, q int) error {
	if len(initColors) != g.N() {
		return fmt.Errorf("classic: %d init colors for %d nodes", len(initColors), g.N())
	}
	for v, col := range initColors {
		if col < 0 || col >= q {
			return fmt.Errorf("classic: node %d initial color %d outside [0,%d)", v, col, q)
		}
	}
	if err := graph.IsProperColoring(g, initColors); err != nil {
		return fmt.Errorf("classic: initial coloring not proper: %w", err)
	}
	return nil
}
