package classic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

func properColoring(t testing.TB, g *graph.Graph) ([]int, int) {
	t.Helper()
	res, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Colors, res.Palette
}

// arbInstance wraps a uniform-defect arbdefective expectation as an
// Instance so the shared validator can be used.
func arbInstance(n, c, d int) *coloring.Instance {
	in := &coloring.Instance{Space: c, Lists: make([][]int, n), Defects: make([][]int, n)}
	full := make([]int, c)
	for i := range full {
		full[i] = i
	}
	defs := make([]int, c)
	for i := range defs {
		defs[i] = d
	}
	for v := 0; v < n; v++ {
		in.Lists[v] = full
		in.Defects[v] = defs
	}
	return in
}

func TestGreedyArbBound(t *testing.T) {
	f := func(seed int64, rawN, rawD uint8) bool {
		n := int(rawN%40) + 5
		d := int(rawD % 5)
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.3, rng)
		colors, arcs, c := GreedyArb(g, d)
		if c != (g.RawMaxDegree()+1+d)/(d+1) {
			return false
		}
		if graph.MaxColor(colors) >= c {
			return false
		}
		return coloring.ValidateListArbdefective(g, arbInstance(n, c, d),
			coloring.ArbResult{Colors: colors, Arcs: arcs}) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyArbZeroDefectIsProper(t *testing.T) {
	// d = 0 ⇒ Δ+1 colors, proper coloring.
	g := graph.Complete(6)
	colors, arcs, c := GreedyArb(g, 0)
	if c != 6 {
		t.Errorf("c = %d, want 6", c)
	}
	if len(arcs) != 0 {
		t.Errorf("zero-defect run produced %d arcs", len(arcs))
	}
	if err := graph.IsProperColoring(g, colors); err != nil {
		t.Error(err)
	}
}

func TestSweepArbMatchesGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{0, 1, 3} {
		g := graph.RandomRegular(60, 6, rng)
		init, q := properColoring(t, g)
		colors, arcs, c, stats, err := SweepArb(g, init, q, d, sim.Config{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := coloring.ValidateListArbdefective(g, arbInstance(g.N(), c, d),
			coloring.ArbResult{Colors: colors, Arcs: arcs}); err != nil {
			t.Errorf("d=%d: %v", d, err)
		}
		if stats.Rounds > q+1 {
			t.Errorf("d=%d: %d rounds for a single sweep over q=%d classes", d, stats.Rounds, q)
		}
	}
}

func TestSweepArbClaim41(t *testing.T) {
	// Claim 4.1: on a graph of neighborhood independence θ, the
	// d-arbdefective sweep is a (2d+1)·θ-DEFECTIVE coloring.
	rng := rand.New(rand.NewSource(2))
	base := graph.RandomRegular(16, 4, rng)
	lg, _ := graph.LineGraph(base) // θ ≤ 2
	theta := 2
	init, q := properColoring(t, lg)
	for _, d := range []int{0, 1, 2} {
		colors, _, _, _, err := SweepArb(lg, init, q, d, sim.Config{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		mono := graph.MonochromaticDegree(lg, colors)
		for v, m := range mono {
			if m > (2*d+1)*theta {
				t.Errorf("d=%d: node %d has defect %d > (2d+1)θ = %d", d, v, m, (2*d+1)*theta)
			}
		}
	}
}

func TestProductDefectiveBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		g *graph.Graph
		c int
	}{
		{graph.RandomRegular(80, 8, rng), 3},
		{graph.GNP(60, 0.2, rng), 4},
		{graph.Ring(30), 2},
	} {
		init, q := properColoring(t, tc.g)
		colors, stats, err := ProductDefective(tc.g, init, q, tc.c, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", tc.g, err)
		}
		if mc := graph.MaxColor(colors); mc >= tc.c*tc.c {
			t.Errorf("%v: color %d outside c² = %d", tc.g, mc, tc.c*tc.c)
		}
		allowed := 2 * (tc.g.RawMaxDegree() / tc.c)
		mono := graph.MonochromaticDegree(tc.g, colors)
		for v, m := range mono {
			if m > allowed {
				t.Errorf("%v: node %d defect %d > 2⌊Δ/c⌋ = %d", tc.g, v, m, allowed)
			}
		}
		if stats.Rounds > 2*q+1 {
			t.Errorf("%v: %d rounds for two sweeps over q=%d", tc.g, stats.Rounds, q)
		}
	}
}

func TestProductDefectiveOneColor(t *testing.T) {
	// c = 1: everything monochromatic, defect = deg — still "valid"
	// for the 2⌊Δ/1⌋ bound.
	g := graph.Ring(8)
	init, q := properColoring(t, g)
	colors, _, err := ProductDefective(g, init, q, 1, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range colors {
		if c != 0 {
			t.Error("c=1 must produce the all-zero coloring")
		}
	}
}

func TestInputValidation(t *testing.T) {
	g := graph.Ring(4)
	if _, _, _, _, err := SweepArb(g, []int{0, 0, 1, 0}, 2, 1, sim.Config{}); err == nil {
		t.Error("accepted improper initial coloring")
	}
	if _, _, _, _, err := SweepArb(g, []int{0, 1}, 2, 1, sim.Config{}); err == nil {
		t.Error("accepted short initial coloring")
	}
	if _, _, err := ProductDefective(g, []int{0, 1, 0, 1}, 2, 0, sim.Config{}); err == nil {
		t.Error("accepted c = 0")
	}
	if _, _, err := ProductDefective(g, []int{0, 5, 0, 1}, 2, 2, sim.Config{}); err == nil {
		t.Error("accepted out-of-range initial color")
	}
	defer func() {
		if recover() == nil {
			t.Error("GreedyArb(-1) did not panic")
		}
	}()
	GreedyArb(g, -1)
}

func TestDriversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.GNP(30, 0.3, rng)
	init, q := properColoring(t, g)
	a, _, _, _, err := SweepArb(g, init, q, 2, sim.Config{Driver: sim.Lockstep})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, _, err := SweepArb(g, init, q, 2, sim.Config{Driver: sim.Goroutines})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("drivers disagree")
		}
	}
}
