package coloring

// Parallel validity/defect audit: the whole-graph conflict scan every
// layer above the substrate runs — conformance cells, the incremental
// service's between-batch validation (`colord -churn -verify`), the
// churn soaks, and the quality metrics — as one read-only,
// range-partitioned kernel. W workers scan contiguous vertex ranges of
// the topology; per-range partial reports merge deterministically
// (counters sum, maxima max, and the surviving violation is the one at
// the smallest node id, because ranges merge in ascending order and
// each range scans ascending), so the report — including the exact
// violation error text — is identical at every worker count. The
// sequential Audit is the reference the equivalence tests pin
// AuditParallel against.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Topology is the read-only adjacency an audit scans: satisfied by
// graph.Graph, graph.CSR, graph.Overlay, and graph.TopoView (the
// service's lock-free snapshots), so one kernel serves the static and
// the churned worlds.
type Topology interface {
	N() int
	Neighbors(v int) []int
}

// auditMinN is the auto-mode threshold below which AuditParallel
// (workers ≤ 0) stays sequential: conformance-sized instances must pay
// zero goroutine overhead (BenchmarkAuditSmallN pins the regression).
const auditMinN = 2048

// auditParallelRuns counts audits that took the parallel path —
// white-box instrumentation for the auto-fallback tests.
var auditParallelRuns atomic.Int64

// AuditReport is the outcome of a whole-graph validity/defect scan.
// All fields are independent of the worker count that produced them.
type AuditReport struct {
	// Nodes is the scanned vertex count; ScannedArcs is the number of
	// adjacency entries visited (2·m on a full scan).
	Nodes       int
	ScannedArcs int64
	// Conflicts is Σ_v (same-colored neighbors of v): every
	// monochromatic edge counts once per endpoint.
	Conflicts int64
	// Absorbed is the conflict mass soaked up by defect budgets — the
	// Σ of per-node conflict counts over nodes within budget.
	Absorbed int64
	// HardNodes counts nodes whose conflicts exceed their budget;
	// OffList counts nodes wearing a color outside their list. Either
	// being non-zero makes the coloring invalid.
	HardNodes int
	OffList   int
	// TightNodes counts nodes at exactly their (positive) budget;
	// MaxDefect is the largest realized per-node conflict count.
	TightNodes int
	MaxDefect  int
	// Violation is the first (smallest node id) constraint violation,
	// nil when the coloring is valid. The error text matches the
	// sequential validators' vocabulary (ErrViolation-wrapped).
	Violation error
}

// Valid reports whether the scan found no violation.
func (r AuditReport) Valid() bool { return r.Violation == nil }

// Err returns the first violation (nil when valid) — the drop-in form
// for callers that used a sequential validator.
func (r AuditReport) Err() error { return r.Violation }

// Audit runs the sequential whole-graph scan — the reference
// AuditParallel must match field-for-field at every worker count.
func Audit(topo Topology, inst *Instance, colors []int) AuditReport {
	return AuditInto(topo, inst, colors, nil, 1)
}

// AuditParallel runs the range-partitioned scan. workers ≤ 0 selects
// GOMAXPROCS and auto-falls back to the sequential path when that is 1
// or the graph is below auditMinN; an explicit workers > 1 forces the
// parallel machinery (equivalence tests and single-CPU benchmark
// containers rely on that).
func AuditParallel(topo Topology, inst *Instance, colors []int, workers int) AuditReport {
	return AuditInto(topo, inst, colors, nil, workers)
}

// AuditInto is AuditParallel with an optional per-node conflict sink:
// when conflicts is non-nil (length N), conflicts[v] receives v's
// same-colored-neighbor count — each range writes only its own
// disjoint span, so the fill is race-free and worker-independent. The
// quality metrics feed on it instead of re-walking adjacency.
func AuditInto(topo Topology, inst *Instance, colors []int, conflicts []int, workers int) AuditReport {
	n := topo.N()
	if inst.N() != n || len(colors) != n || (conflicts != nil && len(conflicts) != n) {
		return AuditReport{
			Nodes: n,
			Violation: fmt.Errorf("%w: %d nodes, %d constraints, %d colors",
				ErrViolation, n, inst.N(), len(colors)),
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if n < auditMinN {
			workers = 1
		}
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return auditRange(topo, inst, colors, conflicts, 0, n)
	}
	auditParallelRuns.Add(1)
	parts := make([]AuditReport, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			parts[w] = auditRange(topo, inst, colors, conflicts, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := AuditReport{Nodes: n}
	for _, p := range parts {
		out.ScannedArcs += p.ScannedArcs
		out.Conflicts += p.Conflicts
		out.Absorbed += p.Absorbed
		out.HardNodes += p.HardNodes
		out.OffList += p.OffList
		out.TightNodes += p.TightNodes
		if p.MaxDefect > out.MaxDefect {
			out.MaxDefect = p.MaxDefect
		}
		if out.Violation == nil {
			out.Violation = p.Violation // ranges merge ascending: smallest id wins
		}
	}
	return out
}

// auditRange scans vertices [lo, hi), ascending, recording the range's
// first violation. Nodes outside their list still have their conflict
// count taken (the quality sink wants realized monochromatic degrees
// for every node), but are excluded from the budget bookkeeping.
func auditRange(topo Topology, inst *Instance, colors []int, conflicts []int, lo, hi int) AuditReport {
	r := AuditReport{Nodes: topo.N()}
	for v := lo; v < hi; v++ {
		x := colors[v]
		nbrs := topo.Neighbors(v)
		r.ScannedArcs += int64(len(nbrs))
		conf := 0
		for _, u := range nbrs {
			if colors[u] == x {
				conf++
			}
		}
		if conflicts != nil {
			conflicts[v] = conf
		}
		r.Conflicts += int64(conf)
		if conf > r.MaxDefect {
			r.MaxDefect = conf
		}
		allowed, ok := inst.DefectOf(v, x)
		switch {
		case !ok:
			r.OffList++
			if r.Violation == nil {
				r.Violation = fmt.Errorf("%w: node %d chose color %d ∉ L_v", ErrViolation, v, x)
			}
		case conf > allowed:
			r.HardNodes++
			if r.Violation == nil {
				r.Violation = fmt.Errorf("%w: node %d color %d has %d conflicting neighbors > defect %d",
					ErrViolation, v, x, conf, allowed)
			}
		default:
			r.Absorbed += int64(conf)
			if conf == allowed && allowed > 0 {
				r.TightNodes++
			}
		}
	}
	return r
}

// AuditReportsEqual reports whether two audit reports agree on every
// field, comparing violations by presence and text — the equivalence
// predicate of the seq-vs-par conformance checks and the graph_build
// benchmark rows.
func AuditReportsEqual(a, b AuditReport) bool {
	if a.Nodes != b.Nodes || a.ScannedArcs != b.ScannedArcs ||
		a.Conflicts != b.Conflicts || a.Absorbed != b.Absorbed ||
		a.HardNodes != b.HardNodes || a.OffList != b.OffList ||
		a.TightNodes != b.TightNodes || a.MaxDefect != b.MaxDefect {
		return false
	}
	if (a.Violation == nil) != (b.Violation == nil) {
		return false
	}
	if a.Violation != nil && a.Violation.Error() != b.Violation.Error() {
		return false
	}
	return true
}
