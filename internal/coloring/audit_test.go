package coloring

import (
	"errors"
	"strings"
	"testing"

	"listcolor/internal/graph"
)

// auditInstance gives every node the sorted list [0, space) with a
// uniform defect budget.
func auditInstance(n, space, defect int) *Instance {
	list := make([]int, space)
	defs := make([]int, space)
	for i := range list {
		list[i] = i
		defs[i] = defect
	}
	in := &Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		in.Lists[v] = list
		in.Defects[v] = defs
	}
	return in
}

// ringColors colors the n-cycle properly for n even, with one
// monochromatic edge for n odd — handy known ground truth.
func ringColors(n int) []int {
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v % 2
	}
	return colors
}

func auditWorkerCounts() []int { return []int{2, 3, 4, 7, 16} }

func TestAuditValidColoring(t *testing.T) {
	n := 100
	g := graph.StreamedRing(n)
	in := auditInstance(n, 3, 0)
	rep := Audit(g, in, ringColors(n))
	if !rep.Valid() || rep.Err() != nil {
		t.Fatalf("valid coloring audited invalid: %v", rep.Violation)
	}
	if rep.Nodes != n || rep.ScannedArcs != 2*int64(n) {
		t.Fatalf("Nodes=%d ScannedArcs=%d, want %d and %d", rep.Nodes, rep.ScannedArcs, n, 2*n)
	}
	if rep.Conflicts != 0 || rep.MaxDefect != 0 || rep.HardNodes != 0 || rep.OffList != 0 {
		t.Fatalf("clean audit carries violations: %+v", rep)
	}
}

func TestAuditCountsDefects(t *testing.T) {
	// Odd ring with alternating colors: nodes n-1 and 0 share color 0,
	// giving exactly one monochromatic edge = 2 conflict endpoints.
	n := 9
	g := graph.StreamedRing(n)
	colors := ringColors(n)

	strict := Audit(g, auditInstance(n, 3, 0), colors)
	if strict.Valid() {
		t.Fatal("odd-ring alternation audited valid under zero budgets")
	}
	if strict.Conflicts != 2 || strict.HardNodes != 2 || strict.MaxDefect != 1 {
		t.Fatalf("Conflicts=%d HardNodes=%d MaxDefect=%d, want 2, 2, 1",
			strict.Conflicts, strict.HardNodes, strict.MaxDefect)
	}
	if !errors.Is(strict.Violation, ErrViolation) || !strings.Contains(strict.Violation.Error(), "node 0") {
		t.Fatalf("first violation should name node 0 (smallest id): %v", strict.Violation)
	}

	slack := Audit(g, auditInstance(n, 3, 1), colors)
	if !slack.Valid() {
		t.Fatalf("budget-1 audit rejected: %v", slack.Violation)
	}
	if slack.Absorbed != 2 || slack.TightNodes != 2 {
		t.Fatalf("Absorbed=%d TightNodes=%d, want 2 and 2", slack.Absorbed, slack.TightNodes)
	}
}

func TestAuditOffListColor(t *testing.T) {
	n := 10
	g := graph.StreamedRing(n)
	colors := ringColors(n)
	colors[4] = 99
	rep := Audit(g, auditInstance(n, 3, 0), colors)
	if rep.Valid() || rep.OffList != 1 {
		t.Fatalf("off-list color not flagged: %+v", rep)
	}
	want := "node 4 chose color 99 ∉ L_v"
	if !strings.Contains(rep.Violation.Error(), want) {
		t.Fatalf("violation %q does not mention %q", rep.Violation, want)
	}
}

func TestAuditShapeMismatch(t *testing.T) {
	g := graph.StreamedRing(10)
	rep := Audit(g, auditInstance(4, 3, 0), make([]int, 10))
	if rep.Valid() || !errors.Is(rep.Violation, ErrViolation) {
		t.Fatalf("shape mismatch not flagged: %+v", rep)
	}
}

// The tentpole invariant: the parallel audit reproduces the sequential
// report field-for-field — including the violation's exact text — at
// every worker count, on valid, defective, and invalid colorings.
func TestAuditParallelMatchesSequential(t *testing.T) {
	n := 3000
	g := graph.StreamedGNPSegmented(n, 4.0/float64(n), 7)
	colorings := map[string][]int{}

	tight := make([]int, n) // few colors: plenty of conflicts
	wild := make([]int, n)  // some off-list, some conflicted
	for v := 0; v < n; v++ {
		tight[v] = v % 3
		wild[v] = v % 5
	}
	wild[17], wild[2900] = 99, -1
	colorings["proper-ish"] = ringColors(n)
	colorings["tight"] = tight
	colorings["wild"] = wild

	for name, colors := range colorings {
		for _, defect := range []int{0, 1, 3} {
			in := auditInstance(n, 5, defect)
			seq := Audit(g, in, colors)
			for _, w := range auditWorkerCounts() {
				par := AuditParallel(g, in, colors, w)
				if !AuditReportsEqual(seq, par) {
					t.Fatalf("%s/defect=%d workers=%d: parallel report diverges:\nseq %+v\npar %+v",
						name, defect, w, seq, par)
				}
			}
		}
	}
}

// AuditInto's conflict sink must be the realized monochromatic degree
// of every node — off-list nodes included — independent of workers.
func TestAuditIntoFillsConflicts(t *testing.T) {
	n := 2500
	csr := graph.StreamedGNPSegmented(n, 5.0/float64(n), 3)
	g := csr.Graph()
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v % 4
	}
	colors[9] = 77 // off-list; its mono degree must still be recorded
	in := auditInstance(n, 4, 0)
	want := graph.MonochromaticDegree(g, colors)
	for _, w := range []int{1, 3, 8} {
		got := make([]int, n)
		AuditInto(csr, in, colors, got, w)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: conflicts[%d] = %d, want %d", w, v, got[v], want[v])
			}
		}
	}
}

// Auto-fallback: workers ≤ 0 below auditMinN (or on a single-core
// host) never starts goroutines; explicit workers > 1 always does.
func TestAuditParallelAutoFallback(t *testing.T) {
	n := auditMinN / 4
	g := graph.StreamedRing(n)
	in := auditInstance(n, 3, 0)
	colors := ringColors(n)
	before := auditParallelRuns.Load()
	AuditParallel(g, in, colors, 0)
	AuditParallel(g, in, colors, 1)
	Audit(g, in, colors)
	if got := auditParallelRuns.Load(); got != before {
		t.Fatalf("sequential-path audits took the parallel path %d times", got-before)
	}
	AuditParallel(g, in, colors, 2)
	if got := auditParallelRuns.Load(); got != before+1 {
		t.Fatalf("explicit workers=2 did not take the parallel path")
	}
}

// The audit's validity verdict must agree with the sequential
// validator on every coloring (the violation chosen may differ when
// off-list and over-budget nodes coexist — the validator does two
// passes, the audit one — but valid/invalid never disagrees).
func TestAuditAgreesWithValidator(t *testing.T) {
	n := 60
	csr := graph.StreamedGNPSegmented(n, 0.1, 5)
	g := csr.Graph()
	for _, defect := range []int{0, 2} {
		in := auditInstance(n, 4, defect)
		for variant := 0; variant < 8; variant++ {
			colors := make([]int, n)
			for v := range colors {
				colors[v] = (v*7 + variant*3) % (4 + variant%2) // variant 1,3,.. can go off-list
			}
			rep := Audit(csr, in, colors)
			err := ValidateListDefective(g, in, colors)
			if rep.Valid() != (err == nil) {
				t.Fatalf("defect=%d variant=%d: audit valid=%v, validator err=%v",
					defect, variant, rep.Valid(), err)
			}
		}
	}
}

func BenchmarkAuditSequential(b *testing.B) {
	n := 100000
	g := graph.StreamedGNPSegmented(n, 8.0/float64(n), 2)
	in := auditInstance(n, 12, 1)
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v % 12
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Audit(g, in, colors)
	}
}

// The no-regression guarantee of the auto-fallback at conformance
// sizes: AuditParallel with workers ≤ 0 on n ≤ 1024 is the sequential
// scan plus one branch.
func BenchmarkAuditAutoSmallN(b *testing.B) {
	n := 1024
	g := graph.StreamedRing(n)
	in := auditInstance(n, 3, 0)
	colors := ringColors(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AuditParallel(g, in, colors, 0)
	}
}
