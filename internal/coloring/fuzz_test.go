package coloring

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the instance parser never panics and only
// accepts structurally valid instances, which then round-trip.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"space":3,"nodes":[{"colors":[0,2],"defects":[1,0]}]}`)
	f.Add(`{"space":0,"nodes":[]}`)
	f.Add(`{"space":-1,"nodes":[{"colors":[0],"defects":[0]}]}`)
	f.Add(`{}`)
	f.Add(`[`)
	f.Add(`{"space":2,"nodes":[{"colors":[1,0],"defects":[0,0]}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		in, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("accepted invalid instance: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, in); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		in2, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if in2.N() != in.N() || in2.Space != in.Space {
			t.Fatal("round trip changed shape")
		}
	})
}
