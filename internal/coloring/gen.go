package coloring

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"listcolor/internal/graph"
)

// SampleColors returns k distinct colors from [0, space), sorted.
func SampleColors(space, k int, rng *rand.Rand) []int {
	if k > space {
		panic(fmt.Sprintf("coloring: cannot sample %d distinct colors from space %d", k, space))
	}
	if space <= 4*k {
		perm := rng.Perm(space)[:k]
		sort.Ints(perm)
		return perm
	}
	seen := make(map[int]struct{}, k)
	for len(seen) < k {
		seen[rng.Intn(space)] = struct{}{}
	}
	out := make([]int, 0, k)
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// distributeBudget fills defects (aligned with a list of length k) so
// that Σ(d+1) = budget exactly, distributing the excess budget-k
// uniformly at random. budget must be ≥ k.
func distributeBudget(k, budget int, rng *rand.Rand) []int {
	if budget < k {
		panic(fmt.Sprintf("coloring: budget %d below list size %d", budget, k))
	}
	d := make([]int, k)
	for extra := budget - k; extra > 0; extra-- {
		d[rng.Intn(k)]++
	}
	return d
}

// Uniform returns an instance where every node gets listSize random
// distinct colors from [0, space), all with the same defect.
func Uniform(n, space, listSize, defect int, rng *rand.Rand) *Instance {
	in := &Instance{
		Lists:   make([][]int, n),
		Defects: make([][]int, n),
		Space:   space,
	}
	for v := 0; v < n; v++ {
		in.Lists[v] = SampleColors(space, listSize, rng)
		in.Defects[v] = make([]int, listSize)
		for i := range in.Defects[v] {
			in.Defects[v][i] = defect
		}
	}
	return in
}

// DegreePlusOne returns the (deg+1)-list coloring instance of
// Theorem 1.3: node v gets deg(v)+1 random distinct colors from
// [0, space) and all defects are zero. space must be > Δ(G).
func DegreePlusOne(g *graph.Graph, space int, rng *rand.Rand) *Instance {
	if space <= g.RawMaxDegree() {
		panic(fmt.Sprintf("coloring: space %d too small for Δ=%d", space, g.RawMaxDegree()))
	}
	n := g.N()
	in := &Instance{Lists: make([][]int, n), Defects: make([][]int, n), Space: space}
	for v := 0; v < n; v++ {
		k := g.Degree(v) + 1
		in.Lists[v] = SampleColors(space, k, rng)
		in.Defects[v] = make([]int, k)
	}
	return in
}

// MinSlackOriented returns an adversarially tight OLDC instance for
// Theorem 1.1 with parameter p and ε: every node gets a list of size
// p² and a defect budget of exactly
// max(p², ⌊(1+ε)·p·β_v⌋ + 1), the smallest value satisfying the
// theorem's condition, distributed randomly over the colors.
func MinSlackOriented(d *graph.Digraph, space, p int, eps float64, rng *rand.Rand) *Instance {
	n := d.N()
	listSize := p * p
	if listSize > space {
		panic(fmt.Sprintf("coloring: p²=%d exceeds color space %d", listSize, space))
	}
	in := &Instance{Lists: make([][]int, n), Defects: make([][]int, n), Space: space}
	for v := 0; v < n; v++ {
		budget := int((1+eps)*float64(p)*float64(d.Beta(v))) + 1
		if budget < listSize {
			budget = listSize
		}
		in.Lists[v] = SampleColors(space, listSize, rng)
		in.Defects[v] = distributeBudget(listSize, budget, rng)
	}
	return in
}

// WithSlack returns a list defective coloring instance with slack
// (just above) S at every node: list sizes are chosen as
// min(space, max(1, ⌈S·deg(v)⌉+1)) capped at space, and the defect
// budget is ⌊S·deg(v)⌋ + 1 (at least the list size).
func WithSlack(g *graph.Graph, space int, s float64, rng *rand.Rand) *Instance {
	n := g.N()
	in := &Instance{Lists: make([][]int, n), Defects: make([][]int, n), Space: space}
	for v := 0; v < n; v++ {
		budget := int(s*float64(g.Degree(v))) + 1
		k := budget
		if k > space {
			k = space
		}
		if k < 1 {
			k = 1
		}
		if budget < k {
			budget = k
		}
		in.Lists[v] = SampleColors(space, k, rng)
		in.Defects[v] = distributeBudget(k, budget, rng)
	}
	return in
}

// WithOrientedSlack returns an OLDC instance whose slack mass at every
// node is just above S·outdeg(v): the defect budget is
// ⌈S·outdeg(v)⌉ + 1 distributed over a list of min(space, budget)
// random colors. This is the workload shape for Theorem 1.2
// (S = 3√C).
func WithOrientedSlack(d *graph.Digraph, space int, s float64, rng *rand.Rand) *Instance {
	n := d.N()
	in := &Instance{Lists: make([][]int, n), Defects: make([][]int, n), Space: space}
	for v := 0; v < n; v++ {
		budget := int(math.Ceil(s*float64(d.Outdeg(v)))) + 1
		k := budget
		if k > space {
			k = space
		}
		if k < 1 {
			k = 1
		}
		if budget < k {
			budget = k
		}
		in.Lists[v] = SampleColors(space, k, rng)
		in.Defects[v] = distributeBudget(k, budget, rng)
	}
	return in
}

// ThreeColor returns the list d-defective 3-coloring instance from the
// paper's discussion of [BHL+19]: every node has list {0,1,2} with
// uniform defect d. Feasible for the Two-Sweep algorithm whenever
// d > (2Δ-3)/3.
func ThreeColor(n, defect int) *Instance {
	in := &Instance{Lists: make([][]int, n), Defects: make([][]int, n), Space: 3}
	for v := 0; v < n; v++ {
		in.Lists[v] = []int{0, 1, 2}
		in.Defects[v] = []int{defect, defect, defect}
	}
	return in
}

// Restrict returns a copy of the instance where node v's list is
// filtered by keep(v, i, x, d): color x at index i with defect d is
// retained iff keep returns true. Used by the recursive algorithms
// when shrinking lists (color space reduction, defect reduction).
func (in *Instance) Restrict(keep func(v, i, x, d int) bool) *Instance {
	out := &Instance{
		Lists:   make([][]int, in.N()),
		Defects: make([][]int, in.N()),
		Space:   in.Space,
	}
	for v := range in.Lists {
		for i, x := range in.Lists[v] {
			if keep(v, i, x, in.Defects[v][i]) {
				out.Lists[v] = append(out.Lists[v], x)
				out.Defects[v] = append(out.Defects[v], in.Defects[v][i])
			}
		}
	}
	return out
}

// MapDefects returns a copy of the instance with every defect d_v(x)
// replaced by f(v, x, d_v(x)); colors whose new defect is negative are
// dropped from the list (the paper's L'_v construction).
func (in *Instance) MapDefects(f func(v, x, d int) int) *Instance {
	out := &Instance{
		Lists:   make([][]int, in.N()),
		Defects: make([][]int, in.N()),
		Space:   in.Space,
	}
	for v := range in.Lists {
		for i, x := range in.Lists[v] {
			nd := f(v, x, in.Defects[v][i])
			if nd >= 0 {
				out.Lists[v] = append(out.Lists[v], x)
				out.Defects[v] = append(out.Defects[v], nd)
			}
		}
	}
	return out
}
