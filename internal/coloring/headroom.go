package coloring

import (
	"math"

	"listcolor/internal/graph"
)

// Headroom describes how far a coloring sits inside its defect
// budgets: Min is the smallest remaining budget d_v(x_v) − conflicts_v
// over all nodes (negative iff the coloring violates a budget), MinAt
// the node attaining it, and Tight the number of nodes with zero
// remaining budget.
type Headroom struct {
	Min   int
	MinAt int
	Tight int
}

func budgetHeadroom(in *Instance, colors []int, conflicts func(v int) int) (Headroom, error) {
	allowed, err := checkColorsInLists(in, colors)
	if err != nil {
		return Headroom{}, err
	}
	h := Headroom{Min: math.MaxInt, MinAt: -1}
	for v := range colors {
		rem := allowed[v] - conflicts(v)
		if rem < h.Min {
			h.Min, h.MinAt = rem, v
		}
		if rem == 0 {
			h.Tight++
		}
	}
	if h.MinAt < 0 { // no nodes
		h.Min = 0
	}
	return h, nil
}

// OLDCHeadroom measures the oriented defect-budget headroom of a
// coloring: remaining budget counts same-colored OUT-neighbors. The
// coloring is OLDC-valid iff Min ≥ 0; conformance checks record Min so
// that a solver drifting toward its budget (or past it, off-by-one
// bugs) is visible with the exact node and margin.
func OLDCHeadroom(d *graph.Digraph, in *Instance, colors []int) (Headroom, error) {
	return budgetHeadroom(in, colors, func(v int) int {
		c := 0
		for _, u := range d.Out(v) {
			if colors[u] == colors[v] {
				c++
			}
		}
		return c
	})
}

// ListDefectiveHeadroom is OLDCHeadroom for the unoriented problem:
// remaining budget counts all same-colored neighbors.
func ListDefectiveHeadroom(g *graph.Graph, in *Instance, colors []int) (Headroom, error) {
	return budgetHeadroom(in, colors, func(v int) int {
		c := 0
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				c++
			}
		}
		return c
	})
}
