package coloring

import (
	"testing"

	"listcolor/internal/graph"
)

// pathInstance builds the 3-path 0-1-2 with every node holding list
// {0,1} and uniform defect def.
func pathInstance(def int) (*graph.Graph, *Instance) {
	g := graph.Path(3)
	in := &Instance{Space: 2}
	for v := 0; v < 3; v++ {
		in.Lists = append(in.Lists, []int{0, 1})
		in.Defects = append(in.Defects, []int{def, def})
	}
	return g, in
}

func TestOLDCHeadroom(t *testing.T) {
	g, in := pathInstance(1)
	d := graph.OrientByID(g)
	// Edges point toward the smaller id, so nodes 1 and 2 each have
	// one conflicting out-neighbor under an all-same coloring, budget
	// 1 ⇒ remaining 0; node 0 has outdeg 0 ⇒ 1.
	h, err := OLDCHeadroom(d, in, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 0 || h.Tight != 2 {
		t.Errorf("monochromatic path: %+v, want Min 0, Tight 2", h)
	}
	// Proper coloring: full budget left everywhere.
	h, err = OLDCHeadroom(d, in, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != 1 || h.Tight != 0 {
		t.Errorf("proper path: %+v, want Min 1, Tight 0", h)
	}
}

func TestOLDCHeadroomNegativeOnViolation(t *testing.T) {
	g, in := pathInstance(0)
	d := graph.OrientByID(g)
	h, err := OLDCHeadroom(d, in, []int{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != -1 || h.MinAt != 1 {
		t.Errorf("violating coloring: %+v, want Min -1 at node 1 (its out-neighbor 0 shares color 1)", h)
	}
	if ValidateOLDC(d, in, []int{1, 1, 0}) == nil {
		t.Error("validator disagrees with negative headroom")
	}
}

func TestListDefectiveHeadroom(t *testing.T) {
	g, in := pathInstance(1)
	// Middle node has two same-colored neighbors: budget 1 ⇒ −1.
	h, err := ListDefectiveHeadroom(g, in, []int{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if h.Min != -1 || h.MinAt != 1 {
		t.Errorf("monochromatic path: %+v, want Min -1 at node 1", h)
	}
}

func TestHeadroomRejectsOffListColor(t *testing.T) {
	g, in := pathInstance(1)
	if _, err := ListDefectiveHeadroom(g, in, []int{0, 2, 0}); err == nil {
		t.Error("accepted a color outside the list")
	}
}
