// Package coloring defines the list defective coloring problem family
// from the paper and validators for every variant:
//
//   - List defective coloring (LDC): node v gets list L_v ⊆ [0,C) and
//     defect function d_v; it must pick x ∈ L_v with at most d_v(x)
//     NEIGHBORS of the same color.
//   - Oriented list defective coloring (OLDC): edge orientation is
//     input; at most d_v(x) OUT-neighbors of the same color.
//   - List arbdefective coloring: the orientation of monochromatic
//     edges is part of the OUTPUT; at most d_v(x) out-neighbors of the
//     same color under the produced orientation.
//
// Instances carry per-node sorted color lists with aligned defect
// slices. The package also provides the slack notion of Definition 1.1
// and instance generators used by tests and benchmarks.
package coloring

import (
	"errors"
	"fmt"
	"sort"

	"listcolor/internal/graph"
)

// ErrInvalidInstance wraps structural problems with an instance.
var ErrInvalidInstance = errors.New("coloring: invalid instance")

// ErrViolation wraps violations of a coloring's guarantee.
var ErrViolation = errors.New("coloring: constraint violated")

// Instance is a list defective coloring instance: for each node v,
// a sorted color list Lists[v] with Defects[v][i] = d_v(Lists[v][i]).
type Instance struct {
	// Lists[v] is v's color list, sorted ascending, colors in [0, Space).
	Lists [][]int
	// Defects[v] is aligned with Lists[v]; entries are ≥ 0.
	Defects [][]int
	// Space is the size C of the global color space.
	Space int
}

// N returns the number of nodes the instance covers.
func (in *Instance) N() int { return len(in.Lists) }

// ListSize returns |L_v|.
func (in *Instance) ListSize(v int) int { return len(in.Lists[v]) }

// MaxListSize returns Λ := max_v |L_v|.
func (in *Instance) MaxListSize() int {
	m := 0
	for _, l := range in.Lists {
		if len(l) > m {
			m = len(l)
		}
	}
	return m
}

// DefectOf returns d_v(x) and whether x ∈ L_v.
func (in *Instance) DefectOf(v, x int) (int, bool) {
	l := in.Lists[v]
	i := sort.SearchInts(l, x)
	if i < len(l) && l[i] == x {
		return in.Defects[v][i], true
	}
	return 0, false
}

// SlackSum returns Σ_{x∈L_v} (d_v(x)+1), the quantity all of the
// paper's slack conditions are stated in.
func (in *Instance) SlackSum(v int) int {
	s := 0
	for _, d := range in.Defects[v] {
		s += d + 1
	}
	return s
}

// Slack returns the instance slack at v per Definition 1.1:
// SlackSum(v) / deg(v). For isolated nodes it returns SlackSum(v)
// (treating deg as 1) so the value stays meaningful.
func (in *Instance) Slack(g *graph.Graph, v int) float64 {
	deg := g.Degree(v)
	if deg == 0 {
		deg = 1
	}
	return float64(in.SlackSum(v)) / float64(deg)
}

// MinSlack returns min_v Slack(v), the S for which the instance is a
// P(S, C) member.
func (in *Instance) MinSlack(g *graph.Graph) float64 {
	if in.N() == 0 {
		return 0
	}
	minS := in.Slack(g, 0)
	for v := 1; v < in.N(); v++ {
		if s := in.Slack(g, v); s < minS {
			minS = s
		}
	}
	return minS
}

// Clone returns a deep copy.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Lists:   make([][]int, len(in.Lists)),
		Defects: make([][]int, len(in.Defects)),
		Space:   in.Space,
	}
	for v := range in.Lists {
		out.Lists[v] = append([]int(nil), in.Lists[v]...)
		out.Defects[v] = append([]int(nil), in.Defects[v]...)
	}
	return out
}

// Validate checks structural invariants: aligned slices, sorted
// duplicate-free lists, colors within [0, Space), non-negative defects.
func (in *Instance) Validate() error {
	if len(in.Lists) != len(in.Defects) {
		return fmt.Errorf("%w: %d lists vs %d defect rows", ErrInvalidInstance, len(in.Lists), len(in.Defects))
	}
	for v := range in.Lists {
		if len(in.Lists[v]) != len(in.Defects[v]) {
			return fmt.Errorf("%w: node %d has %d colors vs %d defects", ErrInvalidInstance, v, len(in.Lists[v]), len(in.Defects[v]))
		}
		prev := -1
		for i, x := range in.Lists[v] {
			if x < 0 || x >= in.Space {
				return fmt.Errorf("%w: node %d color %d outside [0,%d)", ErrInvalidInstance, v, x, in.Space)
			}
			if x <= prev {
				return fmt.Errorf("%w: node %d list not sorted/duplicate at %d", ErrInvalidInstance, v, x)
			}
			prev = x
			if in.Defects[v][i] < 0 {
				return fmt.Errorf("%w: node %d negative defect for color %d", ErrInvalidInstance, v, x)
			}
		}
	}
	return nil
}

// OrientedSlackOK reports whether the instance satisfies Theorem 1.1's
// condition Σ(d_v(x)+1) > (1+ε)·max{p, |L_v|/p}·β_v at every node of
// the oriented graph.
func (in *Instance) OrientedSlackOK(d *graph.Digraph, p int, eps float64) bool {
	for v := 0; v < in.N(); v++ {
		lOverP := float64(in.ListSize(v)) / float64(p)
		factor := float64(p)
		if lOverP > factor {
			factor = lOverP
		}
		need := (1 + eps) * factor * float64(d.Beta(v))
		if float64(in.SlackSum(v)) <= need {
			return false
		}
	}
	return true
}
