package coloring

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

func TestDefectOf(t *testing.T) {
	in := &Instance{
		Lists:   [][]int{{1, 3, 5}},
		Defects: [][]int{{0, 2, 1}},
		Space:   6,
	}
	if d, ok := in.DefectOf(0, 3); !ok || d != 2 {
		t.Errorf("DefectOf(0,3) = %d,%v; want 2,true", d, ok)
	}
	if _, ok := in.DefectOf(0, 2); ok {
		t.Error("DefectOf reported membership for absent color")
	}
	if in.SlackSum(0) != 6 {
		t.Errorf("SlackSum = %d, want 6", in.SlackSum(0))
	}
}

func TestValidateStructure(t *testing.T) {
	good := &Instance{Lists: [][]int{{0, 1}}, Defects: [][]int{{0, 0}}, Space: 2}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []*Instance{
		{Lists: [][]int{{0, 1}}, Defects: [][]int{{0}}, Space: 2},     // misaligned
		{Lists: [][]int{{1, 0}}, Defects: [][]int{{0, 0}}, Space: 2},  // unsorted
		{Lists: [][]int{{0, 0}}, Defects: [][]int{{0, 0}}, Space: 2},  // duplicate
		{Lists: [][]int{{0, 2}}, Defects: [][]int{{0, 0}}, Space: 2},  // out of space
		{Lists: [][]int{{0, 1}}, Defects: [][]int{{0, -1}}, Space: 2}, // negative defect
		{Lists: [][]int{{0}}, Defects: [][]int{{0}, {1}}, Space: 2},   // row count
	}
	for i, in := range bad {
		if err := in.Validate(); !errors.Is(err, ErrInvalidInstance) {
			t.Errorf("bad instance %d: err = %v, want ErrInvalidInstance", i, err)
		}
	}
}

func TestSlackComputation(t *testing.T) {
	g := graph.Ring(4) // every degree 2
	in := &Instance{
		Lists:   [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {0, 1, 2}},
		Defects: [][]int{{1, 1, 1}, {0, 0, 0}, {2, 2, 2}, {1, 0, 0}},
		Space:   3,
	}
	// SlackSums: 6, 3, 9, 4 → slacks 3, 1.5, 4.5, 2.
	if s := in.Slack(g, 0); s != 3 {
		t.Errorf("Slack(0) = %v, want 3", s)
	}
	if s := in.MinSlack(g); s != 1.5 {
		t.Errorf("MinSlack = %v, want 1.5", s)
	}
}

func TestCloneDeep(t *testing.T) {
	in := Uniform(3, 10, 4, 1, rand.New(rand.NewSource(1)))
	c := in.Clone()
	c.Lists[0][0] = 99
	c.Defects[1][1] = 99
	if in.Lists[0][0] == 99 || in.Defects[1][1] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestOrientedSlackOK(t *testing.T) {
	g := graph.Ring(6)
	d := graph.OrientByID(g)
	rng := rand.New(rand.NewSource(2))
	p := 2
	in := MinSlackOriented(d, 50, p, 0, rng)
	if !in.OrientedSlackOK(d, p, 0) {
		t.Error("MinSlackOriented instance does not satisfy its own slack condition")
	}
	// Shrinking every defect by the full budget must break the condition.
	smaller := in.MapDefects(func(v, x, dd int) int { return -1 })
	_ = smaller
	zero := in.MapDefects(func(v, x, dd int) int { return 0 })
	// With all-zero defects Σ(d+1) = p² = 4 which is ≤ p·β_v = 4 for β_v=2.
	if zero.OrientedSlackOK(d, p, 0) {
		t.Error("zero-defect instance should fail the strict slack condition")
	}
}

func TestRestrictAndMapDefects(t *testing.T) {
	in := &Instance{
		Lists:   [][]int{{0, 2, 4}, {1, 3}},
		Defects: [][]int{{1, 2, 3}, {0, 5}},
		Space:   6,
	}
	evens := in.Restrict(func(v, i, x, d int) bool { return x%2 == 0 })
	if evens.ListSize(0) != 3 || evens.ListSize(1) != 0 {
		t.Errorf("Restrict evens: sizes %d,%d", evens.ListSize(0), evens.ListSize(1))
	}
	dec := in.MapDefects(func(v, x, d int) int { return d - 2 })
	// Node 0: defects 1,2,3 → -1,0,1 → colors 2,4 survive.
	if dec.ListSize(0) != 2 {
		t.Errorf("MapDefects: node 0 size %d, want 2", dec.ListSize(0))
	}
	if d0, ok := dec.DefectOf(0, 2); !ok || d0 != 0 {
		t.Errorf("MapDefects: d(2) = %d,%v", d0, ok)
	}
	// Original untouched.
	if in.ListSize(0) != 3 {
		t.Error("MapDefects mutated receiver")
	}
}

func TestGeneratorsStructurallyValid(t *testing.T) {
	f := func(seed int64, rawN, rawC, rawK uint8) bool {
		n := int(rawN%20) + 2
		space := int(rawC%40) + 5
		k := int(rawK)%space + 1
		if k > space {
			k = space
		}
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.4, rng)
		instances := []*Instance{
			Uniform(n, space, k, 2, rng),
			DegreePlusOne(g, n+space, rng),
			WithSlack(g, space+n, 2.5, rng),
			ThreeColor(n, 4),
		}
		for _, in := range instances {
			if in.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestWithSlackMeetsSlack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomRegular(20, 4, rng)
	in := WithSlack(g, 200, 3, rng)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if s := in.MinSlack(g); s <= 3 {
		t.Errorf("MinSlack = %v, want > 3", s)
	}
}

func TestDegreePlusOneShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Grid(4, 4)
	in := DegreePlusOne(g, 3*g.MaxDegree(), rng)
	for v := 0; v < g.N(); v++ {
		if in.ListSize(v) != g.Degree(v)+1 {
			t.Errorf("node %d list size %d, want deg+1=%d", v, in.ListSize(v), g.Degree(v)+1)
		}
		for _, d := range in.Defects[v] {
			if d != 0 {
				t.Error("DegreePlusOne must have zero defects")
			}
		}
	}
}

func TestSampleColorsDistinctSorted(t *testing.T) {
	f := func(seed int64, rawC, rawK uint8) bool {
		space := int(rawC%100) + 1
		k := int(rawK) % (space + 1)
		rng := rand.New(rand.NewSource(seed))
		got := SampleColors(space, k, rng)
		if len(got) != k {
			return false
		}
		for i := range got {
			if got[i] < 0 || got[i] >= space {
				return false
			}
			if i > 0 && got[i] <= got[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSampleColorsPanicsWhenInfeasible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SampleColors(3, 5) did not panic")
		}
	}()
	SampleColors(3, 5, rand.New(rand.NewSource(1)))
}

func TestMaxListSize(t *testing.T) {
	in := &Instance{Lists: [][]int{{0}, {0, 1, 2}, {0, 1}}, Defects: [][]int{{0}, {0, 0, 0}, {0, 0}}, Space: 3}
	if got := in.MaxListSize(); got != 3 {
		t.Errorf("MaxListSize = %d, want 3", got)
	}
}
