package coloring

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the on-disk form of an Instance.
type instanceJSON struct {
	Space int         `json:"space"`
	Nodes []nodeLists `json:"nodes"`
}

type nodeLists struct {
	Colors  []int `json:"colors"`
	Defects []int `json:"defects"`
}

// WriteJSON serializes the instance.
func WriteJSON(w io.Writer, in *Instance) error {
	doc := instanceJSON{Space: in.Space, Nodes: make([]nodeLists, in.N())}
	for v := range in.Lists {
		doc.Nodes[v] = nodeLists{Colors: in.Lists[v], Defects: in.Defects[v]}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("coloring: encoding instance: %w", err)
	}
	return nil
}

// ReadJSON parses an instance written by WriteJSON and validates it
// structurally.
func ReadJSON(r io.Reader) (*Instance, error) {
	var doc instanceJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("coloring: decoding instance: %w", err)
	}
	in := &Instance{
		Space:   doc.Space,
		Lists:   make([][]int, len(doc.Nodes)),
		Defects: make([][]int, len(doc.Nodes)),
	}
	for v, n := range doc.Nodes {
		in.Lists[v] = n.Colors
		in.Defects[v] = n.Defects
		if in.Lists[v] == nil {
			in.Lists[v] = []int{}
		}
		if in.Defects[v] == nil {
			in.Defects[v] = []int{}
		}
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}
