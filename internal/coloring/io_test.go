package coloring

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	f := func(seed int64, rawN, rawK uint8) bool {
		n := int(rawN%15) + 1
		space := 30
		k := int(rawK%10) + 1
		rng := rand.New(rand.NewSource(seed))
		in := Uniform(n, space, k, 2, rng)
		var buf bytes.Buffer
		if WriteJSON(&buf, in) != nil {
			return false
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if got.Space != in.Space || got.N() != in.N() {
			return false
		}
		for v := range in.Lists {
			if len(got.Lists[v]) != len(in.Lists[v]) {
				return false
			}
			for i := range in.Lists[v] {
				if got.Lists[v][i] != in.Lists[v][i] || got.Defects[v][i] != in.Defects[v][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadJSONValidates(t *testing.T) {
	cases := map[string]string{
		"not json":        "hello",
		"unsorted list":   `{"space":5,"nodes":[{"colors":[2,1],"defects":[0,0]}]}`,
		"misaligned":      `{"space":5,"nodes":[{"colors":[1,2],"defects":[0]}]}`,
		"negative defect": `{"space":5,"nodes":[{"colors":[1],"defects":[-1]}]}`,
		"out of space":    `{"space":2,"nodes":[{"colors":[5],"defects":[0]}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONEmptyLists(t *testing.T) {
	in, err := ReadJSON(strings.NewReader(`{"space":3,"nodes":[{},{"colors":[0],"defects":[1]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 2 || in.ListSize(0) != 0 || in.ListSize(1) != 1 {
		t.Errorf("parsed wrong shape: %+v", in)
	}
}
