package coloring

import (
	"fmt"

	"listcolor/internal/graph"
)

// checkColorsInLists verifies colors has the right length and every
// node picked a color from its own list, returning the looked-up
// defects.
func checkColorsInLists(in *Instance, colors []int) ([]int, error) {
	if len(colors) != in.N() {
		return nil, fmt.Errorf("%w: %d colors for %d nodes", ErrViolation, len(colors), in.N())
	}
	defects := make([]int, len(colors))
	for v, x := range colors {
		d, ok := in.DefectOf(v, x)
		if !ok {
			return nil, fmt.Errorf("%w: node %d chose color %d ∉ L_v", ErrViolation, v, x)
		}
		defects[v] = d
	}
	return defects, nil
}

// ValidateOLDC checks an oriented list defective coloring: every node
// v must have at most d_v(colors[v]) out-neighbors with its color.
func ValidateOLDC(d *graph.Digraph, in *Instance, colors []int) error {
	allowed, err := checkColorsInLists(in, colors)
	if err != nil {
		return err
	}
	for v := 0; v < in.N(); v++ {
		conflicts := 0
		for _, u := range d.Out(v) {
			if colors[u] == colors[v] {
				conflicts++
			}
		}
		if conflicts > allowed[v] {
			return fmt.Errorf("%w: node %d color %d has %d conflicting out-neighbors > defect %d",
				ErrViolation, v, colors[v], conflicts, allowed[v])
		}
	}
	return nil
}

// ValidateListDefective checks a (plain) list defective coloring:
// every node v must have at most d_v(colors[v]) neighbors with its
// color.
func ValidateListDefective(g *graph.Graph, in *Instance, colors []int) error {
	allowed, err := checkColorsInLists(in, colors)
	if err != nil {
		return err
	}
	for v := 0; v < in.N(); v++ {
		conflicts := 0
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				conflicts++
			}
		}
		if conflicts > allowed[v] {
			return fmt.Errorf("%w: node %d color %d has %d conflicting neighbors > defect %d",
				ErrViolation, v, colors[v], conflicts, allowed[v])
		}
	}
	return nil
}

// ArbResult is the output of a list arbdefective coloring: the colors
// plus an orientation Arcs of the monochromatic edges (each arc (u,v)
// means the monochromatic edge {u,v} is charged to u's defect).
type ArbResult struct {
	Colors []int
	Arcs   [][2]int
}

// ValidateListArbdefective checks a list arbdefective coloring: every
// monochromatic edge must appear in Arcs in exactly one direction, and
// each node v must have at most d_v(colors[v]) outgoing arcs.
func ValidateListArbdefective(g *graph.Graph, in *Instance, res ArbResult) error {
	allowed, err := checkColorsInLists(in, res.Colors)
	if err != nil {
		return err
	}
	type edge = [2]int
	canon := func(u, v int) edge {
		if u > v {
			u, v = v, u
		}
		return edge{u, v}
	}
	oriented := make(map[edge]bool, len(res.Arcs))
	outCount := make([]int, in.N())
	for _, a := range res.Arcs {
		u, v := a[0], a[1]
		if !g.HasEdge(u, v) {
			return fmt.Errorf("%w: arc (%d,%d) is not an edge", ErrViolation, u, v)
		}
		if res.Colors[u] != res.Colors[v] {
			return fmt.Errorf("%w: arc (%d,%d) orients a non-monochromatic edge", ErrViolation, u, v)
		}
		e := canon(u, v)
		if oriented[e] {
			return fmt.Errorf("%w: edge {%d,%d} oriented twice", ErrViolation, u, v)
		}
		oriented[e] = true
		outCount[u]++
	}
	// Every monochromatic edge must be covered.
	for _, e := range g.Edges() {
		if res.Colors[e[0]] == res.Colors[e[1]] && !oriented[e] {
			return fmt.Errorf("%w: monochromatic edge {%d,%d} left unoriented", ErrViolation, e[0], e[1])
		}
	}
	for v := 0; v < in.N(); v++ {
		if outCount[v] > allowed[v] {
			return fmt.Errorf("%w: node %d has %d outgoing monochromatic arcs > defect %d",
				ErrViolation, v, outCount[v], allowed[v])
		}
	}
	return nil
}

// ValidateProperList checks a proper list coloring (all defects
// irrelevant): every node picked from its list and no edge is
// monochromatic.
func ValidateProperList(g *graph.Graph, in *Instance, colors []int) error {
	if _, err := checkColorsInLists(in, colors); err != nil {
		return err
	}
	return graph.IsProperColoring(g, colors)
}
