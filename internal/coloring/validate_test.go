package coloring

import (
	"errors"
	"testing"

	"listcolor/internal/graph"
)

func ring4Instance(defect int) *Instance {
	in := &Instance{Space: 3}
	for v := 0; v < 4; v++ {
		in.Lists = append(in.Lists, []int{0, 1, 2})
		in.Defects = append(in.Defects, []int{defect, defect, defect})
	}
	return in
}

func TestValidateOLDC(t *testing.T) {
	g := graph.Ring(4)
	d := graph.OrientByID(g) // arcs: 1→0, 2→1, 3→2, 3→0
	in := ring4Instance(0)
	if err := ValidateOLDC(d, in, []int{0, 1, 0, 1}); err != nil {
		t.Errorf("proper coloring rejected: %v", err)
	}
	// 3 and 0 share a color; arc 3→0 violates 3's zero defect.
	if err := ValidateOLDC(d, in, []int{0, 1, 2, 0}); !errors.Is(err, ErrViolation) {
		t.Errorf("err = %v, want ErrViolation", err)
	}
	// With defect 1 the same coloring is fine.
	if err := ValidateOLDC(d, ring4Instance(1), []int{0, 1, 2, 0}); err != nil {
		t.Errorf("defect-1 coloring rejected: %v", err)
	}
	// Defect is only charged to out-neighbors: color 0,0 on nodes 0 and
	// 1 charges node 1 (arc 1→0), not node 0.
	inMixed := &Instance{
		Lists:   [][]int{{0}, {0}, {1}, {2}},
		Defects: [][]int{{0}, {1}, {0}, {0}},
		Space:   3,
	}
	if err := ValidateOLDC(d, inMixed, []int{0, 0, 1, 2}); err != nil {
		t.Errorf("in-neighbor conflict should not count: %v", err)
	}
}

func TestValidateOLDCColorNotInList(t *testing.T) {
	g := graph.Ring(4)
	d := graph.OrientByID(g)
	in := &Instance{
		Lists:   [][]int{{0}, {1}, {0}, {1}},
		Defects: [][]int{{0}, {0}, {0}, {0}},
		Space:   2,
	}
	if err := ValidateOLDC(d, in, []int{1, 0, 1, 0}); !errors.Is(err, ErrViolation) {
		t.Errorf("off-list colors accepted: %v", err)
	}
	if err := ValidateOLDC(d, in, []int{0, 1}); !errors.Is(err, ErrViolation) {
		t.Errorf("short color vector accepted: %v", err)
	}
}

func TestValidateListDefective(t *testing.T) {
	g := graph.Ring(4)
	in := ring4Instance(1)
	// All same color: every node has 2 conflicting neighbors > 1.
	if err := ValidateListDefective(g, in, []int{0, 0, 0, 0}); !errors.Is(err, ErrViolation) {
		t.Errorf("err = %v, want ErrViolation", err)
	}
	if err := ValidateListDefective(g, ring4Instance(2), []int{0, 0, 0, 0}); err != nil {
		t.Errorf("defect-2 monochromatic ring rejected: %v", err)
	}
	if err := ValidateListDefective(g, in, []int{0, 1, 0, 1}); err != nil {
		t.Errorf("proper coloring rejected: %v", err)
	}
}

func TestValidateListArbdefective(t *testing.T) {
	g := graph.Ring(4)
	in := ring4Instance(1)
	colors := []int{0, 0, 0, 0} // all edges monochromatic
	// Orient the 4-cycle cyclically: every node has out-defect 1.
	ok := ArbResult{Colors: colors, Arcs: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	if err := ValidateListArbdefective(g, in, ok); err != nil {
		t.Errorf("cyclic orientation rejected: %v", err)
	}
	// Node 0 taking both its edges violates defect 1... needs 2 arcs out of 0.
	bad := ArbResult{Colors: colors, Arcs: [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}}
	if err := ValidateListArbdefective(g, in, bad); !errors.Is(err, ErrViolation) {
		t.Errorf("overloaded node accepted: %v", err)
	}
	// Missing orientation for a monochromatic edge.
	missing := ArbResult{Colors: colors, Arcs: [][2]int{{0, 1}, {1, 2}, {2, 3}}}
	if err := ValidateListArbdefective(g, in, missing); !errors.Is(err, ErrViolation) {
		t.Errorf("unoriented monochromatic edge accepted: %v", err)
	}
	// Doubly-oriented edge.
	double := ArbResult{Colors: colors, Arcs: [][2]int{{0, 1}, {1, 0}, {1, 2}, {2, 3}, {3, 0}}}
	if err := ValidateListArbdefective(g, in, double); !errors.Is(err, ErrViolation) {
		t.Errorf("doubly-oriented edge accepted: %v", err)
	}
	// Arc on a non-monochromatic edge.
	colors2 := []int{0, 1, 0, 0}
	wrongArc := ArbResult{Colors: colors2, Arcs: [][2]int{{0, 1}, {2, 3}, {3, 0}}}
	if err := ValidateListArbdefective(g, in, wrongArc); !errors.Is(err, ErrViolation) {
		t.Errorf("arc on bichromatic edge accepted: %v", err)
	}
	// Arc that is not an edge at all.
	notEdge := ArbResult{Colors: colors, Arcs: [][2]int{{0, 2}, {0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	if err := ValidateListArbdefective(g, in, notEdge); !errors.Is(err, ErrViolation) {
		t.Errorf("non-edge arc accepted: %v", err)
	}
}

func TestValidateProperList(t *testing.T) {
	g := graph.Ring(4)
	in := ring4Instance(0)
	if err := ValidateProperList(g, in, []int{0, 1, 0, 2}); err != nil {
		t.Errorf("proper list coloring rejected: %v", err)
	}
	if err := ValidateProperList(g, in, []int{0, 0, 1, 2}); err == nil {
		t.Error("improper coloring accepted")
	}
}
