package conformance

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"listcolor/internal/adversary"
	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/quality"
	"listcolor/internal/sim"
)

// Options configures a matrix run.
type Options struct {
	// Seed drives all workload and instance generation.
	Seed int64
	// Heavy widens the workload matrix (the `conformance` test tier).
	Heavy bool
	// Faults additionally checks driver equivalence under a
	// deterministic message-drop schedule.
	Faults bool
	// Workloads / SolverFilter restrict the matrix to names containing
	// the substring (empty = all).
	WorkloadFilter, SolverFilter string
	// FaultMaxRounds caps fault-injected runs (drops can stall
	// composed protocols); 0 means DefaultFaultMaxRounds.
	FaultMaxRounds int
	// Parallel is the matrix worker budget: the maximum number of
	// cells checked concurrently. 0 means GOMAXPROCS; 1 runs the
	// matrix sequentially in declaration order. Every cell is already
	// seeded purely from (Seed, workload, solver) — see RunCell — so
	// the result list is identical for every value.
	Parallel int
}

// parallelism resolves the worker budget: 0 means GOMAXPROCS.
func (opt Options) parallelism() int {
	if opt.Parallel > 0 {
		return opt.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultFaultMaxRounds bounds fault-injected runs: long enough for
// every matrix protocol's clean round count, short enough that a
// protocol stalled by a dropped message fails fast (and identically
// under every driver).
const DefaultFaultMaxRounds = 2000

// CellResult is the outcome of one (workload, solver) cell.
type CellResult struct {
	Workload, Solver string
	// Skipped is non-empty when the pair is incompatible (with the
	// reason); the cell counts as neither passed nor failed.
	Skipped string
	// Checks are the recorded guarantee checks of the reference run.
	Checks []quality.GuaranteeCheck
	// Failures lists everything that went wrong (guarantee failures,
	// driver divergence, metamorphic or differential disagreement).
	Failures []string
}

// Passed reports whether the cell ran and every assertion held.
func (r CellResult) Passed() bool { return r.Skipped == "" && len(r.Failures) == 0 }

// skipReason returns why the solver cannot run on the workload, or "".
func skipReason(env *Env, s Solver) string {
	if s.NeedsTheta && env.Theta == 0 {
		return "needs a known θ bound"
	}
	if s.MaxN > 0 && env.G.N() > s.MaxN {
		return fmt.Sprintf("n=%d exceeds solver cap %d", env.G.N(), s.MaxN)
	}
	return ""
}

// dropFn returns a deterministic fault-injection predicate: a fixed
// pseudo-random ~7% of all (round, from, to) triples lose their
// message. Every driver sees the identical schedule.
func dropFn(seed int64) func(round, from, to int) bool {
	return func(round, from, to int) bool {
		x := uint64(seed) ^ uint64(round)*0x9e3779b97f4a7c15 ^ uint64(from)*0xbf58476d1ce4e5b9 ^ uint64(to)*0x94d049bb133111eb
		x ^= x >> 31
		x *= 0xd6e8feb86659fd93
		x ^= x >> 27
		return x%14 == 0
	}
}

// faultPlans is the adversary matrix every non-sequential cell must
// survive bit-identically on all drivers: one plan per fault type,
// derived deterministically from (workload graph, seed).
func faultPlans(env *Env, seed int64) []struct {
	name string
	plan adversary.Plan
} {
	return []struct {
		name string
		plan adversary.Plan
	}{
		{"crash-stop", adversary.UniformCrash(env.G, seed+101, 0.10, 2, 2)},
		{"crash-recover", adversary.CrashRecoverWindows(env.G, seed+102, 0.15, 2, 3)},
		{"partition", adversary.PartitionLinks(env.G, 2, 4)},
		{"corrupt", adversary.UniformCorrupt(seed+103, 0.15, 1, 0)},
	}
}

// diffFingerprints summarizes how two outputs diverge, for failure
// messages.
func diffFingerprints(a, b []byte) string {
	la := strings.Split(strings.TrimSpace(string(a)), "\n")
	lb := strings.Split(strings.TrimSpace(string(b)), "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("%q vs %q", truncate(la[i]), truncate(lb[i]))
		}
	}
	return fmt.Sprintf("lengths %d vs %d bytes", len(a), len(b))
}

func truncate(s string) string {
	if len(s) > 120 {
		return s[:117] + "..."
	}
	return s
}

// RunCell executes every conformance check of one matrix cell.
func RunCell(env *Env, s Solver, opt Options) CellResult {
	res := CellResult{Workload: env.W.Name, Solver: s.Name}
	if reason := skipReason(env, s); reason != "" {
		res.Skipped = reason
		return res
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ int64(hashString(env.W.Name+"/"+s.Name))))
	c, err := s.Prepare(env, rng)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("prepare: %v", err))
		return res
	}

	// (b) Reference run + validator + theorem guarantees with headroom.
	ref := s.Run(c, sim.Config{Driver: sim.Lockstep})
	res.Checks = append(res.Checks, quality.CheckHolds("run completes", ref.Err == nil))
	if ref.Err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("reference run: %v", ref.Err))
		return res
	}
	res.Checks = append(res.Checks, quality.CheckHolds("validator passes", s.Validate(c, ref) == nil))
	if err := s.Validate(c, ref); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("validator: %v", err))
	}
	res.Checks = append(res.Checks, s.Check(c, ref)...)

	// Parallel defect-audit equivalence: the range-partitioned audit
	// kernel must reproduce the sequential scan field-for-field — same
	// counters, same first violation text — on every cell's output.
	// Only par ≡ seq is asserted, not validity: OLDC cells judge their
	// output under orientation semantics the plain defect audit does
	// not model, so their audit may legitimately flag violations.
	if c.Inst != nil && c.G != nil && c.Inst.N() == c.G.N() && len(ref.Colors) == c.G.N() {
		seq := coloring.Audit(c.G, c.Inst, ref.Colors)
		agree := true
		for _, w := range []int{2, 3} {
			if !coloring.AuditReportsEqual(seq, coloring.AuditParallel(c.G, c.Inst, ref.Colors, w)) {
				agree = false
			}
		}
		res.Checks = append(res.Checks, quality.CheckHolds("parallel defect audit ≡ sequential", agree))
	}
	res.Failures = append(res.Failures, quality.Failures(res.Checks)...)

	// (a) Driver equivalence: byte-identical colors, rounds and
	// message-bit counts under every driver, clean and faulted.
	if !s.Sequential {
		refFP := Fingerprint(ref)
		for _, d := range sim.AllDrivers()[1:] {
			out := s.Run(c, sim.Config{Driver: d})
			if fp := Fingerprint(out); !bytes.Equal(fp, refFP) {
				res.Failures = append(res.Failures,
					fmt.Sprintf("driver %v diverges from lockstep: %s", d, diffFingerprints(refFP, fp)))
			}
		}
		if opt.Faults {
			maxRounds := opt.FaultMaxRounds
			if maxRounds == 0 {
				maxRounds = DefaultFaultMaxRounds
			}
			faultCfg := sim.Config{DropMessage: dropFn(opt.Seed), MaxRounds: maxRounds}
			faultRef := s.Run(c, faultCfg.WithDriver(sim.Lockstep))
			faultFP := Fingerprint(faultRef)
			for _, d := range sim.AllDrivers()[1:] {
				out := s.Run(c, faultCfg.WithDriver(d))
				if fp := Fingerprint(out); !bytes.Equal(fp, faultFP) {
					res.Failures = append(res.Failures,
						fmt.Sprintf("driver %v diverges from lockstep under fault injection: %s", d, diffFingerprints(faultFP, fp)))
				}
			}
			// Adversary plan matrix: one plan per fault type, every
			// driver bit-identical under each. Whatever damage a plan
			// does — stalls into the round limit included — it must do
			// identically everywhere.
			for _, fp := range faultPlans(env, opt.Seed) {
				cfg := fp.plan.Apply(sim.Config{MaxRounds: maxRounds})
				planRef := s.Run(c, cfg.WithDriver(sim.Lockstep))
				planFP := Fingerprint(planRef)
				for _, d := range sim.AllDrivers()[1:] {
					out := s.Run(c, cfg.WithDriver(d))
					if got := Fingerprint(out); !bytes.Equal(got, planFP) {
						res.Failures = append(res.Failures,
							fmt.Sprintf("driver %v diverges from lockstep under %s plan: %s", d, fp.name, diffFingerprints(planFP, got)))
					}
				}
			}
		}
	}

	// (c) Metamorphic: node-id relabeling.
	perm := rng.Perm(c.G.N())
	if c2, err := relabelCase(c, perm); err != nil {
		res.Failures = append(res.Failures, err.Error())
	} else {
		out2 := s.Run(c2, sim.Config{Driver: sim.Lockstep})
		if out2.Err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("relabeled run: %v", out2.Err))
		} else {
			if err := s.Validate(c2, out2); err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("relabeled run invalid: %v", err))
			}
			if s.RelabelRounds && out2.Stats.Rounds != ref.Stats.Rounds {
				res.Failures = append(res.Failures,
					fmt.Sprintf("relabeling changed rounds: %d vs %d", out2.Stats.Rounds, ref.Stats.Rounds))
			}
			if s.Equivariant {
				for v := range ref.Colors {
					if out2.Colors[perm[v]] != ref.Colors[v] {
						res.Failures = append(res.Failures,
							fmt.Sprintf("relabeling not equivariant at node %d: %d vs %d", v, out2.Colors[perm[v]], ref.Colors[v]))
						break
					}
				}
			}
		}
	}

	// (c) Metamorphic: color-space permutation.
	if s.ColorPerm && c.Inst != nil {
		pi := rng.Perm(c.Inst.Space)
		c3 := permuteColorsCase(c, pi)
		// Static: the permuted reference output must satisfy the
		// permuted instance without any rerun.
		mapped := Output{Colors: mapColors(pi, ref.Colors), Arcs: ref.Arcs}
		if err := s.Validate(c3, mapped); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("permuted reference output invalid: %v", err))
		}
		// Dynamic: rerunning on the permuted instance stays valid (and
		// keeps the pinned round count, where the algorithm pins one).
		out3 := s.Run(c3, sim.Config{Driver: sim.Lockstep})
		if out3.Err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("color-permuted run: %v", out3.Err))
		} else {
			if err := s.Validate(c3, out3); err != nil {
				res.Failures = append(res.Failures, fmt.Sprintf("color-permuted run invalid: %v", err))
			}
			if s.PermuteRounds && out3.Stats.Rounds != ref.Stats.Rounds {
				res.Failures = append(res.Failures,
					fmt.Sprintf("color permutation changed rounds: %d vs %d", out3.Stats.Rounds, ref.Stats.Rounds))
			}
		}
	}

	// (d) Differential: brute-force subset-search agreement on tiny
	// instances. The slack condition makes the instance solvable, so
	// the exponential baseline must agree that a solution exists, and
	// its solution must pass the same validator.
	if s.Differential && env.W.Tiny && c.Inst != nil {
		bfColors, ok := baseline.BruteForceOLDC(c.D, c.Inst)
		if !ok {
			res.Failures = append(res.Failures,
				"differential: brute force found no solution although Two-Sweep solved the instance")
		} else if err := coloring.ValidateOLDC(c.D, c.Inst, bfColors); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("differential: brute-force solution invalid: %v", err))
		}
		res.Checks = append(res.Checks, quality.CheckHolds("brute force agrees instance is solvable", ok))
	}
	return res
}

// RunMatrix executes the full workload × solver matrix. Each
// workload's environment is materialized exactly once and shared
// read-only by its solver cells (Materialize normalizes the graph up
// front so no lazy mutation survives into the fan-out). With a worker
// budget above 1 the cells run concurrently under a bounded
// semaphore; results always come back in declaration order, and each
// cell's randomness derives purely from (Seed, workload, solver), so
// the output is independent of scheduling.
func RunMatrix(opt Options) ([]CellResult, error) {
	type matrixCell struct {
		env *Env
		s   Solver
	}
	var cells []matrixCell
	for _, w := range Matrix(opt.Heavy) {
		if opt.WorkloadFilter != "" && !strings.Contains(w.Name, opt.WorkloadFilter) {
			continue
		}
		env, err := Materialize(w, opt.Seed)
		if err != nil {
			return nil, err
		}
		for _, s := range Solvers() {
			if opt.SolverFilter != "" && !strings.Contains(s.Name, opt.SolverFilter) {
				continue
			}
			cells = append(cells, matrixCell{env: env, s: s})
		}
	}
	results := make([]CellResult, len(cells))
	if opt.parallelism() <= 1 || len(cells) <= 1 {
		for i, c := range cells {
			results[i] = RunCell(c.env, c.s, opt)
		}
		return results, nil
	}
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = RunCell(cells[i].env, cells[i].s, opt)
		}(i)
	}
	wg.Wait()
	return results, nil
}

// FormatMatrix renders a pass/fail matrix (rows = workloads, columns
// = solvers) the way cmd/conform prints it.
func FormatMatrix(results []CellResult) string {
	var workloads []string
	var solvers []string
	seenW := map[string]bool{}
	seenS := map[string]bool{}
	cell := map[[2]string]CellResult{}
	for _, r := range results {
		if !seenW[r.Workload] {
			seenW[r.Workload] = true
			workloads = append(workloads, r.Workload)
		}
		if !seenS[r.Solver] {
			seenS[r.Solver] = true
			solvers = append(solvers, r.Solver)
		}
		cell[[2]string{r.Workload, r.Solver}] = r
	}
	wWidth := len("workload")
	for _, w := range workloads {
		if len(w) > wWidth {
			wWidth = len(w)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s", wWidth, "workload")
	for _, s := range solvers {
		fmt.Fprintf(&b, "  %s", s)
	}
	b.WriteByte('\n')
	for _, w := range workloads {
		fmt.Fprintf(&b, "%-*s", wWidth, w)
		for _, s := range solvers {
			r, ok := cell[[2]string{w, s}]
			mark := "-"
			if ok {
				switch {
				case r.Skipped != "":
					mark = "skip"
				case r.Passed():
					mark = "ok"
				default:
					mark = "FAIL"
				}
			}
			fmt.Fprintf(&b, "  %-*s", len(s), mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary counts the matrix outcome.
type Summary struct{ Passed, Failed, Skipped int }

// Summarize tallies a result set.
func Summarize(results []CellResult) Summary {
	var s Summary
	for _, r := range results {
		switch {
		case r.Skipped != "":
			s.Skipped++
		case r.Passed():
			s.Passed++
		default:
			s.Failed++
		}
	}
	return s
}
