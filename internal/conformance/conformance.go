// Package conformance is the repo's correctness net: one harness that
// runs every solver over a shared seeded workload matrix (graph family
// × orientation × instance generator × size) and asserts, per cell:
//
//   - driver equivalence — the lockstep, goroutine-per-node and
//     worker-pool simulator drivers produce byte-identical colors,
//     rounds and message-bit counts, with and without fault injection;
//   - validator pass — the output satisfies the matching
//     internal/coloring validator AND the theorem's defect/round
//     guarantee, with the constant-factor headroom recorded
//     (internal/quality.GuaranteeCheck);
//   - metamorphic invariance — node-id relabeling and color-space
//     permutation preserve validity (and round counts / exact outputs,
//     where the algorithm pins them);
//   - differential agreement — on tiny instances the Two-Sweep
//     algorithms' feasibility matches the brute-force subset-search
//     baseline ([FK23a]/[MT20]-style exponential local computation).
//
// The same harness backs the `go test` suites (the heavy tier behind
// the `conformance` build tag) and the cmd/conform binary, so CI and
// humans share one matrix. See docs/TESTING.md.
package conformance

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/quality"
	"listcolor/internal/sim"
	"listcolor/internal/workload"
)

// Workload is one column of the matrix: a named, seeded graph family
// plus the orientation the oriented solvers run under.
type Workload struct {
	Name   string
	Family string          // internal/workload family name
	Params workload.Params // Seed is filled from Options at build time
	Orient string          // "id", "degeneracy" or "random"
	// Theta, when positive, is a known neighborhood-independence bound
	// of the family (line graphs, unit-disk graphs, rings); solvers
	// with NeedsTheta only run where it is set.
	Theta int
	// Tiny marks workloads small enough for the exponential
	// brute-force differential check.
	Tiny bool
	// Heavy marks workloads that only run in the heavy tier
	// (`go test -tags conformance` or cmd/conform -heavy).
	Heavy bool
}

// Env is a materialized workload: the generated graph and its
// orientation.
type Env struct {
	W     Workload
	G     *graph.Graph
	D     *graph.Digraph
	Theta int
	Seed  int64
}

// Materialize builds the workload's graph and orientation with the
// given base seed. The returned Env is shared read-only across the
// workload's solver cells (concurrently, under RunMatrix's parallel
// mode), so the graph is normalized here — later lazy Normalize calls
// become pure reads of the sorted flag.
func Materialize(w Workload, seed int64) (*Env, error) {
	p := w.Params
	p.Seed = seed ^ int64(hashString(w.Name))
	g, err := workload.Build(w.Family, p)
	if err != nil {
		return nil, fmt.Errorf("conformance: workload %s: %w", w.Name, err)
	}
	g.Normalize()
	var d *graph.Digraph
	switch w.Orient {
	case "", "id":
		d = graph.OrientByID(g)
	case "degeneracy":
		d = graph.OrientByDegeneracy(g)
	case "random":
		d = graph.OrientRandom(g, rand.New(rand.NewSource(p.Seed+1)))
	default:
		return nil, fmt.Errorf("conformance: workload %s: unknown orientation %q", w.Name, w.Orient)
	}
	return &Env{W: w, G: g, D: d, Theta: w.Theta, Seed: p.Seed}, nil
}

// Case is a fully prepared solver input on an Env. The harness owns
// every field, which is what lets it apply the metamorphic transforms
// (node relabeling, color-space permutation) generically.
type Case struct {
	G    *graph.Graph
	D    *graph.Digraph
	Inst *coloring.Instance
	// Base is a proper Q-coloring handed to solvers that take one
	// (bootstrapped once in Prepare, so reruns and transforms reuse
	// it); nil for solvers that bootstrap internally from ids.
	Base []int
	Q    int
	// P, Eps, Theta are solver parameters (sublist size, slack
	// parameter / defect fraction, neighborhood independence).
	P     int
	Eps   float64
	Theta int
	// Seed is a per-cell deterministic seed for solvers that need one
	// (Luby).
	Seed int64
}

// Output is what a solver run produced. Err is recorded, not fatal:
// driver equivalence compares outcomes including failures.
type Output struct {
	Colors []int
	Arcs   [][2]int // arbdefective solvers; nil otherwise
	Stats  sim.Result
	// Palette and Depth carry solver-specific extras the guarantee
	// checks need (final palette; recursion levels / scales).
	Palette int
	Depth   int
	Err     error
}

// Solver is one row of the matrix.
type Solver struct {
	Name string
	// Sequential solvers never touch the simulator: driver and fault
	// equivalence are skipped.
	Sequential bool
	// NeedsTheta restricts the solver to workloads with a known θ.
	NeedsTheta bool
	// MaxN skips workloads with more vertices (0 = unlimited), for
	// solvers whose round complexity makes big cells too slow.
	MaxN int
	// RelabelRounds / PermuteRounds assert that round counts are
	// invariant under node relabeling / color-space permutation.
	RelabelRounds bool
	PermuteRounds bool
	// Equivariant asserts colors map exactly under node relabeling.
	Equivariant bool
	// ColorPerm enables the color-space-permutation metamorphic check
	// (instance-driven solvers only).
	ColorPerm bool
	// Differential enables the brute-force cross-check on Tiny cells.
	Differential bool

	// Prepare builds the solver's instance and base coloring on the
	// env; rng is deterministic per cell.
	Prepare func(env *Env, rng *rand.Rand) (*Case, error)
	// Run executes the full pipeline under cfg.
	Run func(c *Case, cfg sim.Config) Output
	// Validate checks pure output validity (the matching
	// internal/coloring validator); used on reference and transformed
	// runs alike.
	Validate func(c *Case, out Output) error
	// Check returns the theorem-guarantee checks (bounds with
	// headroom) for a reference run.
	Check func(c *Case, out Output) []quality.GuaranteeCheck
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Fingerprint encodes an output as bytes: colors, arcs, the
// simulator's round/message/bit counters, and the error text. Two
// runs are considered equivalent exactly when their fingerprints are
// byte-identical.
func Fingerprint(out Output) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "colors=%v\narcs=%v\nrounds=%d messages=%d bits=%d maxmsg=%d\npalette=%d depth=%d\n",
		out.Colors, out.Arcs, out.Stats.Rounds, out.Stats.Messages, out.Stats.TotalBits,
		out.Stats.MaxMessageBits, out.Palette, out.Depth)
	if out.Err != nil {
		fmt.Fprintf(&b, "err=%v\n", out.Err)
	}
	return b.Bytes()
}

// relabelCase returns the case under the node relabeling v → perm[v]:
// the isomorphic graph, the arc-for-arc relabeled orientation, and
// row-permuted instance and base coloring.
func relabelCase(c *Case, perm []int) (*Case, error) {
	g2 := graph.Relabel(c.G, perm)
	var arcs [][2]int
	for v := 0; v < c.D.N(); v++ {
		for _, u := range c.D.Out(v) {
			arcs = append(arcs, [2]int{perm[v], perm[u]})
		}
	}
	d2, err := graph.OrientArbitraryFrom(g2, arcs)
	if err != nil {
		return nil, fmt.Errorf("conformance: relabeling orientation: %w", err)
	}
	out := &Case{G: g2, D: d2, Q: c.Q, P: c.P, Eps: c.Eps, Theta: c.Theta, Seed: c.Seed}
	if c.Inst != nil {
		in2 := &coloring.Instance{
			Lists:   make([][]int, c.Inst.N()),
			Defects: make([][]int, c.Inst.N()),
			Space:   c.Inst.Space,
		}
		for v := range c.Inst.Lists {
			in2.Lists[perm[v]] = append([]int(nil), c.Inst.Lists[v]...)
			in2.Defects[perm[v]] = append([]int(nil), c.Inst.Defects[v]...)
		}
		out.Inst = in2
	}
	if c.Base != nil {
		base2 := make([]int, len(c.Base))
		for v, col := range c.Base {
			base2[perm[v]] = col
		}
		out.Base = base2
	}
	return out, nil
}

// permuteColorsCase returns the case with the color space permuted by
// x → pi[x]: every list is mapped and re-sorted with its defects kept
// aligned. The graph, orientation and base coloring are untouched.
func permuteColorsCase(c *Case, pi []int) *Case {
	in2 := &coloring.Instance{
		Lists:   make([][]int, c.Inst.N()),
		Defects: make([][]int, c.Inst.N()),
		Space:   c.Inst.Space,
	}
	for v := range c.Inst.Lists {
		type pair struct{ x, d int }
		pairs := make([]pair, len(c.Inst.Lists[v]))
		for i, x := range c.Inst.Lists[v] {
			pairs[i] = pair{pi[x], c.Inst.Defects[v][i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].x < pairs[b].x })
		for _, p := range pairs {
			in2.Lists[v] = append(in2.Lists[v], p.x)
			in2.Defects[v] = append(in2.Defects[v], p.d)
		}
	}
	return &Case{
		G: c.G, D: c.D, Inst: in2, Base: c.Base,
		Q: c.Q, P: c.P, Eps: c.Eps, Theta: c.Theta, Seed: c.Seed,
	}
}

// mapColors applies the color permutation to a coloring.
func mapColors(pi, colors []int) []int {
	out := make([]int, len(colors))
	for v, x := range colors {
		out[v] = pi[x]
	}
	return out
}
