package conformance

import (
	"math/rand"
	"strings"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/quality"
	"listcolor/internal/sim"
	"listcolor/internal/workload"
)

// TestLightMatrix runs the always-on tier of the full conformance
// matrix: every solver × every light workload, with driver
// equivalence (clean and fault-injected), validators, theorem
// guarantees, metamorphic transforms and the brute-force differential
// check on tiny cells.
func TestLightMatrix(t *testing.T) {
	opt := Options{Seed: 7, Faults: true}
	for _, w := range Matrix(false) {
		env, err := Materialize(w, opt.Seed)
		if err != nil {
			t.Fatalf("materialize %s: %v", w.Name, err)
		}
		for _, s := range Solvers() {
			t.Run(w.Name+"/"+s.Name, func(t *testing.T) {
				res := RunCell(env, s, opt)
				if res.Skipped != "" {
					t.Skip(res.Skipped)
				}
				for _, f := range res.Failures {
					t.Error(f)
				}
				if t.Failed() {
					t.Logf("checks:\n%s", quality.FormatChecks(res.Checks))
				}
			})
		}
	}
}

// TestMatrixShape pins the skip logic: θ-requiring solvers only run
// where a bound is declared, and size-capped solvers skip big cells.
func TestMatrixShape(t *testing.T) {
	env, err := Materialize(Workload{Name: "shape-gnp", Family: "gnp",
		Params: workload.Params{N: 24, Prob: 0.2}, Orient: "id"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var nb Solver
	for _, s := range Solvers() {
		if s.Name == "nbhood" {
			nb = s
		}
	}
	if nb.Name == "" {
		t.Fatal("nbhood solver not registered")
	}
	res := RunCell(env, nb, Options{Seed: 1})
	if res.Skipped == "" {
		t.Error("nbhood ran on a workload with no θ bound")
	}
	nb.MaxN = 4
	env.Theta = 2
	res = RunCell(env, nb, Options{Seed: 1})
	if res.Skipped == "" {
		t.Error("solver with MaxN=4 ran on a 24-node workload")
	}
}

// TestHeadroomRecorded asserts the harness records explicit
// constant-factor headroom for the theorem bounds, not just pass/fail.
func TestHeadroomRecorded(t *testing.T) {
	env := mustMaterialize(t, "ring16-id")
	s := mustSolver(t, "twosweep")
	res := RunCell(env, s, Options{Seed: 7})
	if len(res.Failures) > 0 {
		t.Fatalf("cell failed: %v", res.Failures)
	}
	var sawBudget, sawRounds bool
	for _, c := range res.Checks {
		if strings.Contains(c.Name, "defect-budget") {
			sawBudget = true
			if c.Headroom < 0 {
				t.Errorf("defect budget overdrawn: %v", c)
			}
		}
		if strings.Contains(c.Name, "rounds") {
			sawRounds = true
		}
	}
	if !sawBudget || !sawRounds {
		t.Errorf("missing budget/rounds checks in:\n%s", quality.FormatChecks(res.Checks))
	}
}

// TestInjectedBudgetOffByOneCaught is the acceptance demonstration: a
// solver with a deliberately injected defect-budget off-by-one must
// be caught by the Lemma 3.2 budget checker and the validator. On the
// oriented 3-path (arcs 1→0, 2→1) with lists {0,1} and defects {1,0},
// forcing every node to color 1 makes nodes 1 and 2 exceed color 1's
// zero budget by exactly one — what a `k+r ≤ d+1` bug in the sweep's
// final color choice would produce.
func TestInjectedBudgetOffByOneCaught(t *testing.T) {
	g := graph.Path(3)
	d := graph.OrientByID(g)
	inst := &coloring.Instance{
		Space:   2,
		Lists:   [][]int{{0, 1}, {0, 1}, {0, 1}},
		Defects: [][]int{{1, 0}, {1, 0}, {1, 0}},
	}
	env := &Env{W: Workload{Name: "inject-path3"}, G: g, D: d}
	s := mustSolver(t, "twosweep")
	buggy := s
	inner := s.Run
	buggy.Prepare = func(env *Env, rng *rand.Rand) (*Case, error) {
		return &Case{G: g, D: d, Inst: inst, Base: []int{0, 1, 2}, Q: 3, P: 2}, nil
	}
	buggy.Run = func(c *Case, cfg sim.Config) Output {
		out := inner(c, cfg)
		if out.Err == nil {
			out.Colors = []int{1, 1, 1}
		}
		return out
	}
	res := RunCell(env, buggy, Options{Seed: 7})
	if len(res.Failures) == 0 {
		t.Fatal("off-by-one budget overdraw was not caught")
	}
	var budgetCaught bool
	for _, c := range res.Checks {
		if strings.Contains(c.Name, "defect-budget") && !c.OK {
			budgetCaught = true
			if c.Headroom != -1 {
				t.Errorf("off-by-one should leave headroom -1, got %v", c)
			}
		}
	}
	if !budgetCaught {
		t.Errorf("budget checker did not flag the overdraw; failures: %v", res.Failures)
	}
	if err := coloring.ValidateOLDC(d, inst, []int{1, 1, 1}); err == nil {
		t.Error("validator accepted the overdrawn coloring")
	}
}

// TestDriverDivergenceCaught verifies the harness itself: a solver
// whose output depends on the driver must be flagged.
func TestDriverDivergenceCaught(t *testing.T) {
	env := mustMaterialize(t, "ring16-id")
	s := mustSolver(t, "twosweep")
	buggy := s
	inner := s.Run
	buggy.Run = func(c *Case, cfg sim.Config) Output {
		out := inner(c, cfg)
		if cfg.Driver == sim.Workers && len(out.Colors) > 0 {
			out = Output{Colors: append([]int(nil), out.Colors...), Arcs: out.Arcs,
				Stats: out.Stats, Palette: out.Palette, Depth: out.Depth, Err: out.Err}
			out.Stats.Rounds++ // a miscounting driver
		}
		return out
	}
	res := RunCell(env, buggy, Options{Seed: 7})
	var caught bool
	for _, f := range res.Failures {
		if strings.Contains(f, "diverges from lockstep") {
			caught = true
		}
	}
	if !caught {
		t.Errorf("driver divergence not flagged; failures: %v", res.Failures)
	}
}

// TestFingerprintSensitivity pins what "byte-identical" covers:
// colors, arcs, rounds, message count, total and max message bits.
func TestFingerprintSensitivity(t *testing.T) {
	base := Output{Colors: []int{1, 2}, Stats: sim.Result{Rounds: 3, Messages: 4, TotalBits: 5, MaxMessageBits: 2}}
	same := Output{Colors: []int{1, 2}, Stats: sim.Result{Rounds: 3, Messages: 4, TotalBits: 5, MaxMessageBits: 2}}
	if string(Fingerprint(base)) != string(Fingerprint(same)) {
		t.Fatal("identical outputs fingerprint differently")
	}
	mutations := []Output{
		{Colors: []int{2, 1}, Stats: base.Stats},
		{Colors: base.Colors, Arcs: [][2]int{{0, 1}}, Stats: base.Stats},
		{Colors: base.Colors, Stats: sim.Result{Rounds: 4, Messages: 4, TotalBits: 5, MaxMessageBits: 2}},
		{Colors: base.Colors, Stats: sim.Result{Rounds: 3, Messages: 5, TotalBits: 5, MaxMessageBits: 2}},
		{Colors: base.Colors, Stats: sim.Result{Rounds: 3, Messages: 4, TotalBits: 6, MaxMessageBits: 2}},
		{Colors: base.Colors, Stats: sim.Result{Rounds: 3, Messages: 4, TotalBits: 5, MaxMessageBits: 3}},
	}
	for i, m := range mutations {
		if string(Fingerprint(base)) == string(Fingerprint(m)) {
			t.Errorf("mutation %d not reflected in fingerprint", i)
		}
	}
}

// TestFormatMatrix pins the binary's matrix rendering.
func TestFormatMatrix(t *testing.T) {
	results := []CellResult{
		{Workload: "ring16-id", Solver: "twosweep"},
		{Workload: "ring16-id", Solver: "nbhood", Skipped: "needs θ"},
		{Workload: "gnp24-degen", Solver: "twosweep", Failures: []string{"boom"}},
		{Workload: "gnp24-degen", Solver: "nbhood"},
	}
	got := FormatMatrix(results)
	want := "" +
		"workload     twosweep  nbhood\n" +
		"ring16-id    ok        skip  \n" +
		"gnp24-degen  FAIL      ok    \n"
	if got != want {
		t.Errorf("matrix rendering:\n%s\nwant:\n%s", got, want)
	}
	sum := Summarize(results)
	if sum.Passed != 2 || sum.Failed != 1 || sum.Skipped != 1 {
		t.Errorf("summary %+v, want 2/1/1", sum)
	}
}

// -- helpers ------------------------------------------------------------

func mustMaterialize(t *testing.T, name string) *Env {
	t.Helper()
	for _, w := range Matrix(true) {
		if w.Name == name {
			env, err := Materialize(w, 7)
			if err != nil {
				t.Fatal(err)
			}
			return env
		}
	}
	t.Fatalf("workload %s not in matrix", name)
	return nil
}

func mustSolver(t *testing.T, name string) Solver {
	t.Helper()
	for _, s := range Solvers() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("solver %s not registered", name)
	return Solver{}
}
