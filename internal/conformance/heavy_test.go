//go:build conformance

package conformance

import (
	"testing"

	"listcolor/internal/quality"
)

// TestHeavyMatrix is the heavy conformance tier: the widened workload
// matrix (larger sizes, more families and orientations) with fault
// injection on. Run it with:
//
//	go test -tags conformance ./internal/conformance/...
func TestHeavyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy tier skipped in -short mode")
	}
	opt := Options{Seed: 3, Heavy: true, Faults: true}
	for _, w := range Matrix(true) {
		env, err := Materialize(w, opt.Seed)
		if err != nil {
			t.Fatalf("materialize %s: %v", w.Name, err)
		}
		for _, s := range Solvers() {
			t.Run(w.Name+"/"+s.Name, func(t *testing.T) {
				res := RunCell(env, s, opt)
				if res.Skipped != "" {
					t.Skip(res.Skipped)
				}
				for _, f := range res.Failures {
					t.Error(f)
				}
				if t.Failed() {
					t.Logf("checks:\n%s", quality.FormatChecks(res.Checks))
				}
			})
		}
	}
}

// TestHeavyMatrixSeeds reruns a slice of the heavy matrix under
// several seeds, so the guarantees are exercised on more than one
// instance draw per cell.
func TestHeavyMatrixSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy tier skipped in -short mode")
	}
	for _, seed := range []int64{11, 12, 13} {
		results, err := RunMatrix(Options{Seed: seed, WorkloadFilter: "gnp"})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			for _, f := range r.Failures {
				t.Errorf("seed %d %s/%s: %s", seed, r.Workload, r.Solver, f)
			}
		}
	}
}
