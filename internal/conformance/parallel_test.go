package conformance

import (
	"reflect"
	"testing"
)

// TestRunMatrixParallelEquivalence pins RunMatrix's scheduling
// contract: the result list — cell order, checks, failures, skip
// reasons — is identical whether the matrix runs sequentially or with
// its cells fanned out (each workload env shared read-only across its
// solver cells). Under -race this is also the matrix's concurrency
// test. Faults are on so the fault-injected driver-equivalence path
// runs concurrently too.
func TestRunMatrixParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix equivalence sweep skipped in -short mode")
	}
	opt := Options{Seed: 7, Faults: true}
	opt.Parallel = 1
	seq, err := RunMatrix(opt)
	if err != nil {
		t.Fatalf("sequential matrix: %v", err)
	}
	opt.Parallel = 8
	par, err := RunMatrix(opt)
	if err != nil {
		t.Fatalf("parallel matrix: %v", err)
	}
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d sequential, %d parallel", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cell %d (%s / %s) differs between sequential and parallel runs:\nseq: %+v\npar: %+v",
				i, seq[i].Workload, seq[i].Solver, seq[i], par[i])
		}
	}
	if FormatMatrix(seq) != FormatMatrix(par) {
		t.Error("formatted matrices differ")
	}
}
