package conformance

import "testing"

// TestPaletteKernelRaceCell drives one full workload cell — clean and
// fault-injected, all three drivers — through the solvers whose hot
// paths run on the internal/palette kernel. Its purpose is to put the
// kernel's node-local state (bitsets, counters, selection scratch)
// under the concurrent drivers so `go test -race` observes every
// cross-goroutine access pattern the port introduced; the CI race job
// runs exactly this package for that reason.
func TestPaletteKernelRaceCell(t *testing.T) {
	env := mustMaterialize(t, "gnp24-degen")
	opt := Options{Seed: 7, Faults: true}
	for _, name := range []string{"twosweep", "linial", "luby"} {
		t.Run(name, func(t *testing.T) {
			res := RunCell(env, mustSolver(t, name), opt)
			if res.Skipped != "" {
				t.Skipf("cell skipped: %s", res.Skipped)
			}
			for _, f := range res.Failures {
				t.Error(f)
			}
		})
	}
}
