package conformance

import (
	"fmt"
	"math"
	"math/rand"

	"listcolor/internal/baseline"
	"listcolor/internal/classic"
	"listcolor/internal/coloring"
	"listcolor/internal/csr"
	"listcolor/internal/defective"
	"listcolor/internal/deltaplus1"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/nbhood"
	"listcolor/internal/quality"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

// bootstrap runs the Linial bootstrap once (lockstep, outside any
// measured run) so the resulting proper coloring can live in the Case
// and be transformed alongside it.
func bootstrap(env *Env) ([]int, int, error) {
	res, err := linial.ColorFromIDs(env.G, sim.Config{})
	if err != nil {
		return nil, 0, fmt.Errorf("conformance: bootstrap: %w", err)
	}
	return res.Colors, res.Palette, nil
}

// oldcBudgetCheck records the minimum remaining defect budget: the
// Lemma 3.2 guarantee holds iff no node overdraws (actual overuse 0).
func oldcBudgetCheck(d *graph.Digraph, inst *coloring.Instance, colors []int) quality.GuaranteeCheck {
	h, err := coloring.OLDCHeadroom(d, inst, colors)
	if err != nil {
		return quality.CheckHolds("defect budget readable (Lemma 3.2)", false)
	}
	over := 0.0
	if h.Min < 0 {
		over = float64(-h.Min)
	}
	c := quality.CheckUpper("defect-budget overuse = 0 (Lemma 3.2)", over, 0)
	c.Headroom = float64(h.Min) // remaining budget at the tightest node
	return c
}

// Solvers returns the matrix rows: every algorithm family in the
// repo, adapted to the shared harness.
func Solvers() []Solver {
	return []Solver{
		linialSolver(),
		defectiveSolver(),
		twoSweepSolver(),
		fastTwoSweepSolver(),
		csrSolver(),
		degPlusOneSolver(),
		nbhoodSolver(),
		nbhoodGeneralSolver(),
		classicSolver(),
		lubySolver(),
		greedySolver(),
	}
}

// SolverNames lists the registered solver names in matrix order.
func SolverNames() []string {
	ss := Solvers()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name
	}
	return out
}

// -- Linial color reduction (bootstrap, [Lin87]) ------------------------

func linialSolver() Solver {
	return Solver{
		Name:          "linial",
		RelabelRounds: true, // schedule depends only on (n, Δ)
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			return &Case{G: env.G, D: env.D}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := linial.ColorFromIDs(c.G, cfg)
			return Output{Colors: res.Colors, Stats: res.Stats, Palette: res.Palette, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return graph.IsProperColoring(c.G, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			steps := linial.ProperSchedule(c.G.N(), c.G.MaxDegree())
			palBound := c.G.N()
			if len(steps) > 0 {
				palBound = steps[len(steps)-1].ColorsOut()
			}
			return []quality.GuaranteeCheck{
				quality.CheckUpper("rounds ≤ |schedule|+1 = O(log* n)", float64(out.Stats.Rounds), float64(len(steps)+1)),
				quality.CheckUpper("palette ≤ schedule fixed point = O(Δ²)", float64(out.Palette), float64(palBound)),
			}
		},
	}
}

// -- Defective coloring (Lemma 3.4, [Kuh09, KS18]) ----------------------

func defectiveSolver() Solver {
	const alpha = 0.25
	return Solver{
		Name:          "defective",
		RelabelRounds: true,
		Equivariant:   true, // argmin over F_q points depends only on neighbor colors
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			base, q, err := bootstrap(env)
			if err != nil {
				return nil, err
			}
			return &Case{G: env.G, D: env.D, Base: base, Q: q, Eps: alpha}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := defective.ColorOriented(c.D, c.Base, c.Q, c.Eps, cfg)
			return Output{Colors: res.Colors, Stats: res.Stats, Palette: res.Palette, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			for v := 0; v < c.D.N(); v++ {
				allowed := int(math.Floor(c.Eps * float64(c.D.Beta(v))))
				conflicts := 0
				for _, u := range c.D.Out(v) {
					if out.Colors[u] == out.Colors[v] {
						conflicts++
					}
				}
				if conflicts > allowed {
					return fmt.Errorf("node %d has %d same-colored out-neighbors > ⌊α·β⌋ = %d", v, conflicts, allowed)
				}
			}
			return nil
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			steps := linial.DefectiveSchedule(c.Q, c.D.MaxBeta(), c.Eps)
			return []quality.GuaranteeCheck{
				quality.CheckUpper("rounds ≤ |schedule|+1 = O(log* q)", float64(out.Stats.Rounds), float64(len(steps)+1)),
				quality.CheckUpper("palette ≤ O(1/α²) fixed point", float64(out.Palette), float64(defective.Palette(c.Q, c.D.MaxBeta(), c.Eps))),
			}
		},
	}
}

// -- Two-Sweep, Algorithm 1 (Theorem 1.1, ε = 0) ------------------------

func twoSweepSolver() Solver {
	const p = 2
	return Solver{
		Name:          "twosweep",
		RelabelRounds: true,
		PermuteRounds: true, // rounds are exactly 2q+1 regardless of lists
		Equivariant:   true,
		ColorPerm:     true,
		Differential:  true,
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			base, q, err := bootstrap(env)
			if err != nil {
				return nil, err
			}
			inst := coloring.MinSlackOriented(env.D, 4*p*p+16, p, 0, rng)
			return &Case{G: env.G, D: env.D, Inst: inst, Base: base, Q: q, P: p}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := twosweep.Solve(c.D, c.Inst, c.Base, c.Q, c.P, cfg)
			return Output{Colors: res.Colors, Stats: res.Stats, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateOLDC(c.D, c.Inst, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			rounds := quality.CheckEqual("rounds = 2q+1 (Lemma 3.3)", float64(out.Stats.Rounds), float64(2*c.Q+1))
			if c.G.M() == 0 {
				rounds = quality.CheckEqual("rounds = 1 (edgeless short-circuit)", float64(out.Stats.Rounds), 1)
			}
			return []quality.GuaranteeCheck{
				rounds,
				oldcBudgetCheck(c.D, c.Inst, out.Colors),
				quality.CheckUpper("max message ≤ p colors", float64(out.Stats.MaxMessageBits),
					float64((c.P+1)*(sim.BitsFor(c.Inst.Space)+1)+sim.BitsFor(c.Q))),
			}
		},
	}
}

// -- Fast-Two-Sweep, Algorithm 2 (Theorem 1.1, ε > 0) -------------------

func fastTwoSweepSolver() Solver {
	const (
		p   = 2
		eps = 0.5
	)
	return Solver{
		Name:          "fast-twosweep",
		RelabelRounds: true,
		PermuteRounds: true,
		Equivariant:   true,
		ColorPerm:     true,
		Differential:  true,
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			base, q, err := bootstrap(env)
			if err != nil {
				return nil, err
			}
			inst := coloring.MinSlackOriented(env.D, 4*p*p+16, p, eps, rng)
			return &Case{G: env.G, D: env.D, Inst: inst, Base: base, Q: q, P: p, Eps: eps}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := twosweep.SolveFast(c.D, c.Inst, c.Base, c.Q, c.P, c.Eps, cfg)
			return Output{Colors: res.Colors, Stats: res.Stats, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateOLDC(c.D, c.Inst, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			// The composition bound: either the plain sweep (2q+1) or
			// the defective split (schedule+1) plus a sweep over its
			// K = O((p/ε)²) classes (2K+1) — Theorem 1.1's
			// O(min{q, (p/ε)² + log* q}) with explicit constants.
			pOverEps := float64(c.P) / c.Eps
			bound := float64(2*c.Q + 1)
			if float64(c.Q) > pOverEps*pOverEps+float64(logstar.LogStar(c.Q)) {
				alpha := c.Eps / float64(c.P)
				k := defective.Palette(c.Q, c.D.MaxBeta(), alpha)
				sched := linial.DefectiveSchedule(c.Q, c.D.MaxBeta(), alpha)
				bound = float64(len(sched)+1) + float64(2*k+1)
			}
			return []quality.GuaranteeCheck{
				quality.CheckUpper("rounds ≤ min{2q+1, defective+sweep} (Thm 1.1)", float64(out.Stats.Rounds), bound),
				oldcBudgetCheck(c.D, c.Inst, out.Colors),
			}
		},
	}
}

// -- Color space reduction (Theorem 1.2) --------------------------------

func csrSolver() Solver {
	const space = 64
	return Solver{
		Name:          "csr",
		RelabelRounds: true,
		ColorPerm:     true, // validity only: blocks are numeric ranges, so rounds may shift
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			base, q, err := bootstrap(env)
			if err != nil {
				return nil, err
			}
			inst := coloring.WithOrientedSlack(env.D, space, 3*math.Sqrt(space), rng)
			return &Case{G: env.G, D: env.D, Inst: inst, Base: base, Q: q}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := csr.Solve(c.D, c.Inst, c.Base, c.Q, cfg)
			return Output{Colors: res.Colors, Stats: res.Stats, Depth: res.Levels, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateOLDC(c.D, c.Inst, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			logC := float64(logstar.CeilLog2(c.Inst.Space))
			logStarQ := float64(logstar.LogStar(c.Q))
			return []quality.GuaranteeCheck{
				quality.CheckUpper("rounds ≤ 64·(log³C + logC·log*q) (Thm 1.2)",
					float64(out.Stats.Rounds), 64*(logC*logC*logC+logC*logStarQ)+64),
				quality.CheckUpper("max message bits ≤ 32·(log q + log C) (Thm 1.2)",
					float64(out.Stats.MaxMessageBits),
					32*(float64(logstar.CeilLog2(c.Q))+logC)+32),
				quality.CheckUpper("levels = ⌈log₄C⌉", float64(out.Depth), math.Ceil(logC/2)),
				oldcBudgetCheck(c.D, c.Inst, out.Colors),
			}
		},
	}
}

// -- (deg+1)-list coloring (Theorem 1.3) --------------------------------

func degPlusOneSolver() Solver {
	return Solver{
		Name:      "deg+1",
		MaxN:      100,
		ColorPerm: true, // validity only: class processing follows color values
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			inst := coloring.DegreePlusOne(env.G, env.G.RawMaxDegree()+2, rng)
			return &Case{G: env.G, D: env.D, Inst: inst}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := deltaplus1.Solve(c.G, c.Inst, cfg)
			return Output{Colors: res.Colors, Stats: res.Stats, Depth: res.Scales, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateProperList(c.G, c.Inst, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			delta := c.G.RawMaxDegree()
			return []quality.GuaranteeCheck{
				quality.CheckUpper("scales ≤ ⌈log Δ⌉+2 (Lemma A.1)",
					float64(out.Depth), float64(logstar.CeilLog2(max(2, delta))+2)),
			}
		},
	}
}

// -- Bounded neighborhood independence (Theorem 1.5) --------------------

func nbhoodSolver() Solver {
	return Solver{
		Name:       "nbhood",
		NeedsTheta: true,
		MaxN:       100,
		ColorPerm:  true,
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			inst := coloring.DegreePlusOne(env.G, env.G.RawMaxDegree()+2, rng)
			return &Case{G: env.G, D: env.D, Inst: inst, Theta: env.Theta}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := nbhood.SolveArb(c.G, c.Inst, c.Theta, cfg)
			return Output{Colors: res.Arb.Colors, Arcs: res.Arb.Arcs, Stats: res.Stats, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateListArbdefective(c.G, c.Inst, coloring.ArbResult{Colors: out.Colors, Arcs: out.Arcs})
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			// Zero-defect instance ⇒ the arbdefective solution is a
			// proper list coloring with no arcs.
			return []quality.GuaranteeCheck{
				quality.CheckEqual("no monochromatic arcs on a zero-defect instance", float64(len(out.Arcs)), 0),
			}
		},
	}
}

func nbhoodGeneralSolver() Solver {
	return Solver{
		Name:      "nbhood-general",
		MaxN:      40, // Õ(C·log Δ) rounds: keep cells small
		ColorPerm: true,
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			inst := coloring.DegreePlusOne(env.G, env.G.RawMaxDegree()+2, rng)
			return &Case{G: env.G, D: env.D, Inst: inst}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			res, err := nbhood.SolveArbGeneral(c.G, c.Inst, cfg)
			return Output{Colors: res.Arb.Colors, Arcs: res.Arb.Arcs, Stats: res.Stats, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateListArbdefective(c.G, c.Inst, coloring.ArbResult{Colors: out.Colors, Arcs: out.Arcs})
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			return []quality.GuaranteeCheck{
				quality.CheckEqual("no monochromatic arcs on a zero-defect instance", float64(len(out.Arcs)), 0),
			}
		},
	}
}

// -- Classical single-sweep arbdefective ([BE10]) -----------------------

func classicSolver() Solver {
	const def = 2
	return Solver{
		Name:          "classic-sweep",
		RelabelRounds: true,
		Equivariant:   true, // color choice depends only on earlier neighbors' colors
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			base, q, err := bootstrap(env)
			if err != nil {
				return nil, err
			}
			// The validation instance: every node may wear any of the
			// c = ⌈(Δ+1)/(d+1)⌉ colors with uniform defect d.
			c := (env.G.RawMaxDegree() + 1 + def) / (def + 1)
			inst := &coloring.Instance{Space: c}
			for v := 0; v < env.G.N(); v++ {
				list := make([]int, c)
				defs := make([]int, c)
				for i := range list {
					list[i] = i
					defs[i] = def
				}
				inst.Lists = append(inst.Lists, list)
				inst.Defects = append(inst.Defects, defs)
			}
			return &Case{G: env.G, D: env.D, Inst: inst, Base: base, Q: q, P: def}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			colors, arcs, palette, stats, err := classic.SweepArb(c.G, c.Base, c.Q, c.P, cfg)
			return Output{Colors: colors, Arcs: arcs, Stats: stats, Palette: palette, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateListArbdefective(c.G, c.Inst, coloring.ArbResult{Colors: out.Colors, Arcs: out.Arcs})
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			return []quality.GuaranteeCheck{
				quality.CheckUpper("rounds ≤ q+1 ([BE10] sweep)", float64(out.Stats.Rounds), float64(c.Q+1)),
				quality.CheckUpper("palette = ⌈(Δ+1)/(d+1)⌉", float64(out.Palette),
					float64((c.G.RawMaxDegree()+1+c.P)/(c.P+1))),
			}
		},
	}
}

// -- Randomized baseline (Luby-style (Δ+1)-coloring) --------------------

func lubySolver() Solver {
	return Solver{
		Name: "luby",
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			return &Case{G: env.G, D: env.D, Seed: rng.Int63()}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			colors, stats, err := baseline.Luby(c.G, c.Seed, cfg)
			return Output{Colors: colors, Stats: stats, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return graph.IsProperColoring(c.G, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck {
			maxColor := 0
			for _, x := range out.Colors {
				if x > maxColor {
					maxColor = x
				}
			}
			return []quality.GuaranteeCheck{
				quality.CheckUpper("palette ≤ Δ+1", float64(maxColor+1), float64(c.G.RawMaxDegree()+1)),
			}
		},
	}
}

// -- Sequential baseline (greedy list coloring) -------------------------

func greedySolver() Solver {
	return Solver{
		Name:       "greedy",
		Sequential: true,
		ColorPerm:  true,
		Prepare: func(env *Env, rng *rand.Rand) (*Case, error) {
			inst := coloring.DegreePlusOne(env.G, env.G.RawMaxDegree()+2, rng)
			return &Case{G: env.G, D: env.D, Inst: inst}, nil
		},
		Run: func(c *Case, cfg sim.Config) Output {
			colors, err := baseline.GreedyList(c.G, c.Inst)
			return Output{Colors: colors, Err: err}
		},
		Validate: func(c *Case, out Output) error {
			return coloring.ValidateProperList(c.G, c.Inst, out.Colors)
		},
		Check: func(c *Case, out Output) []quality.GuaranteeCheck { return nil },
	}
}
