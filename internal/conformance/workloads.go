package conformance

import "listcolor/internal/workload"

// Matrix returns the workload columns. The light tier (always on) is
// small enough for every push; the heavy tier (build tag
// `conformance`, cmd/conform -heavy) widens families, orientations
// and sizes.
func Matrix(heavy bool) []Workload {
	ws := []Workload{
		// -- light tier -------------------------------------------------
		{Name: "ring16-id", Family: "ring", Params: workload.Params{N: 16}, Orient: "id", Theta: 2},
		{Name: "gnp24-degen", Family: "gnp", Params: workload.Params{N: 24, Prob: 0.18}, Orient: "degeneracy"},
		{Name: "regular24-id", Family: "regular", Params: workload.Params{N: 24, Degree: 4}, Orient: "id"},
		{Name: "tree21-random", Family: "tree", Params: workload.Params{N: 21, Degree: 2}, Orient: "random"},
		{Name: "hyperline12-id", Family: "hyperline", Params: workload.Params{N: 12, Degree: 3}, Orient: "id", Theta: 3},
		{Name: "tiny-gnp8", Family: "gnp", Params: workload.Params{N: 8, Prob: 0.3}, Orient: "random", Tiny: true},

		// -- heavy tier --------------------------------------------------
		{Name: "grid64-id", Family: "grid", Params: workload.Params{N: 64}, Orient: "id", Heavy: true},
		{Name: "hypercube32-degen", Family: "hypercube", Params: workload.Params{N: 32}, Orient: "degeneracy", Heavy: true},
		{Name: "powerlaw48-degen", Family: "powerlaw", Params: workload.Params{N: 48, Degree: 3}, Orient: "degeneracy", Heavy: true},
		{Name: "udg64-id", Family: "udg", Params: workload.Params{N: 64, Radius: 0.18}, Orient: "id", Theta: 5, Heavy: true},
		{Name: "linegraph40-id", Family: "linegraph", Params: workload.Params{N: 20, Degree: 4}, Orient: "id", Theta: 2, Heavy: true},
		{Name: "complete12-random", Family: "complete", Params: workload.Params{N: 12}, Orient: "random", Heavy: true},
		{Name: "gnp96-id", Family: "gnp", Params: workload.Params{N: 96, Prob: 0.08}, Orient: "id", Heavy: true},
		{Name: "regular96-degen", Family: "regular", Params: workload.Params{N: 96, Degree: 6}, Orient: "degeneracy", Heavy: true},
		{Name: "ring200-id", Family: "ring", Params: workload.Params{N: 200}, Orient: "id", Theta: 2, Heavy: true},
		{Name: "tiny-ring6", Family: "ring", Params: workload.Params{N: 6}, Orient: "id", Theta: 2, Tiny: true, Heavy: true},
	}
	if heavy {
		return ws
	}
	light := ws[:0:0]
	for _, w := range ws {
		if !w.Heavy {
			light = append(light, w)
		}
	}
	return light
}
