// Package csr implements the color space reduction of Lemma 3.5
// (Theorem 3 of [FK23a], specialized) and uses it to prove
// Theorem 1.2: an oriented list defective coloring algorithm that,
// under the slack condition Σ(d_v(x)+1) ≥ 3·√C·β_v, runs in
// O(log³C + log* q) rounds with messages of O(log q + log C) bits.
//
// The generic combinator lives in ReduceSpace (general.go): it turns
// any solver for λ-sized color spaces with per-node slack β_v·κ into a
// solver for arbitrary C with slack β_v·κ^⌈log_λ C⌉. Theorem 1.2
// instantiates it with λ = 4, κ = 2(1+ε), ε = 1/(3⌈log₄C⌉), and the
// Fast-Two-Sweep algorithm with p = 2 as the λ-space solver. The
// per-level solver runs with ε' = ε/2, which turns the paper's
// non-strict budget chain into the strict inequality Algorithm 1's
// Lemma 3.1 needs at no asymptotic cost (κ^k ≤ 2e^{1/3}√C < 3√C still
// holds). Each level's messages carry a defective color plus ≤ 2
// block indices — O(log q + log C) bits — and each level costs
// O((p/ε')² + log* q) = O(log²C + log* q) rounds, giving Theorem 1.2's
// O(log³C + log C·log* q) shape overall.
package csr

import (
	"errors"
	"fmt"
	"math"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

// ErrSlack is returned when the instance violates Theorem 1.2's slack
// condition Σ(d_v(x)+1) ≥ 3·√C·β_v.
var ErrSlack = errors.New("csr: slack condition Σ(d+1) ≥ 3√C·β_v violated")

// Result is the outcome of a color-space-reduction run.
type Result struct {
	Colors []int
	Stats  sim.Result
	// Levels is the number of recursion levels (⌈log₄C⌉).
	Levels int
}

// CheckSlack verifies Theorem 1.2's condition (zero-out-degree nodes
// need only a non-empty list).
func CheckSlack(d *graph.Digraph, inst *coloring.Instance) error {
	sqrtC := math.Sqrt(float64(inst.Space))
	for v := 0; v < inst.N(); v++ {
		if d.Outdeg(v) == 0 {
			if inst.ListSize(v) == 0 {
				return fmt.Errorf("%w: node %d has an empty list", ErrSlack, v)
			}
			continue
		}
		if float64(inst.SlackSum(v)) < 3*sqrtC*float64(d.Outdeg(v)) {
			return fmt.Errorf("%w: node %d has Σ(d+1)=%d < 3√C·β=%v",
				ErrSlack, v, inst.SlackSum(v), 3*sqrtC*float64(d.Outdeg(v)))
		}
	}
	return nil
}

// Solve runs the Theorem 1.2 algorithm on the oriented graph d.
// initColors must be a proper q-coloring and inst must satisfy
// CheckSlack. The result is a valid OLDC coloring.
func Solve(d *graph.Digraph, inst *coloring.Instance, initColors []int, q int, cfg sim.Config) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if err := CheckSlack(d, inst); err != nil {
		return Result{}, err
	}
	k := 0
	for pow := 1; pow < inst.Space; pow *= 4 {
		k++
	}
	eps := 1.0
	if k > 0 {
		eps = 1.0 / float64(3*k)
	}
	kappa := 2 * (1 + eps)
	inner := fastTwoSweepSolver(2, eps/2, innerCfg(cfg))
	colors, stats, err := reduceSpaceSpanned(4, kappa, inner, d, inst, initColors, q, cfg.Span)
	if err != nil {
		return Result{}, err
	}
	cfg.Span.Done(stats)
	return Result{Colors: colors, Stats: stats, Levels: k}, nil
}

// innerCfg strips the span from a config handed to inner solvers (the
// span tree is structured by the recursion itself, not by the leaves).
func innerCfg(cfg sim.Config) sim.Config {
	cfg.Span = nil
	return cfg
}

// fastTwoSweepSolver adapts the Fast-Two-Sweep algorithm (Theorem 1.1)
// to the Solver interface, with fixed p and ε.
func fastTwoSweepSolver(p int, eps float64, cfg sim.Config) Solver {
	return func(d *graph.Digraph, inst *coloring.Instance, initColors []int, q int) ([]int, sim.Result, error) {
		res, err := twosweep.SolveFast(d, inst, initColors, q, p, eps, cfg)
		if err != nil {
			return nil, sim.Result{}, err
		}
		return res.Colors, res.Stats, nil
	}
}
