package csr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

func properColoring(t testing.TB, g *graph.Graph) ([]int, int) {
	t.Helper()
	res, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Colors, res.Palette
}

func TestSolveValidOLDC(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		g     *graph.Graph
		space int
	}{
		{graph.RandomRegular(40, 4, rng), 64},
		{graph.Grid(6, 6), 100},
		{graph.GNP(30, 0.2, rng), 17}, // non-power-of-4 space
		{graph.Ring(24), 256},
	} {
		d := graph.OrientByID(tc.g)
		init, q := properColoring(t, tc.g)
		inst := coloring.WithOrientedSlack(d, tc.space, 3*math.Sqrt(float64(tc.space)), rng)
		res, err := Solve(d, inst, init, q, sim.Config{})
		if err != nil {
			t.Fatalf("space=%d: %v", tc.space, err)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			t.Errorf("space=%d: %v", tc.space, err)
		}
	}
}

func TestSolveTinySpace(t *testing.T) {
	// C ≤ 4 exercises the base-only path; C = 1 the k = 0 path.
	rng := rand.New(rand.NewSource(2))
	g := graph.Ring(8)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)

	inst4 := coloring.WithOrientedSlack(d, 4, 6, rng)
	res, err := Solve(d, inst4, init, q, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst4, res.Colors); err != nil {
		t.Error(err)
	}
	if res.Levels != 1 {
		t.Errorf("Levels = %d, want 1", res.Levels)
	}

	inst1 := &coloring.Instance{Space: 1, Lists: make([][]int, 8), Defects: make([][]int, 8)}
	for v := 0; v < 8; v++ {
		inst1.Lists[v] = []int{0}
		inst1.Defects[v] = []int{6} // 7 ≥ 3·√1·2
	}
	res1, err := Solve(d, inst1, init, q, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst1, res1.Colors); err != nil {
		t.Error(err)
	}
	if res1.Levels != 0 {
		t.Errorf("Levels = %d, want 0", res1.Levels)
	}
}

func TestSlackRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Ring(10)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	// Slack 1 ≪ 3√64 = 24.
	inst := coloring.WithOrientedSlack(d, 64, 1, rng)
	if _, err := Solve(d, inst, init, q, sim.Config{}); !errors.Is(err, ErrSlack) {
		t.Errorf("err = %v, want ErrSlack", err)
	}
}

func TestMessageSizeTheorem12(t *testing.T) {
	// Theorem 1.2: messages of O(log q + log C) bits. Enforce a cap of
	// that shape and make sure the run completes.
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomRegular(60, 6, rng)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	space := 1024
	inst := coloring.WithOrientedSlack(d, space, 3*math.Sqrt(float64(space)), rng)
	cap := 4*sim.BitsFor(q*q) + 4*sim.BitsFor(space) + 16
	res, err := Solve(d, inst, init, q, sim.Config{BandwidthBits: cap})
	if err != nil {
		t.Fatalf("exceeded O(log q + log C) messages: %v", err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
}

func TestRoundsPolylogC(t *testing.T) {
	// Rounds must grow polylogarithmically in C, not like √C or C: the
	// whole point of Theorem 1.2 over plain Two-Sweep.
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomRegular(40, 4, rng)
	d := graph.OrientByID(g)
	init, q := properColoring(t, g)
	var prev int
	for _, space := range []int{16, 256, 4096} {
		inst := coloring.WithOrientedSlack(d, space, 3*math.Sqrt(float64(space)), rng)
		res, err := Solve(d, inst, init, q, sim.Config{})
		if err != nil {
			t.Fatalf("space=%d: %v", space, err)
		}
		lc := math.Log2(float64(space))
		bound := int(10*lc*lc*lc) + 200
		if res.Stats.Rounds > bound {
			t.Errorf("space=%d: rounds %d exceed polylog bound %d", space, res.Stats.Rounds, bound)
		}
		if prev > 0 && res.Stats.Rounds > 30*prev {
			t.Errorf("rounds exploded with C: %d → %d", prev, res.Stats.Rounds)
		}
		prev = res.Stats.Rounds
	}
}

func TestSolveQuick(t *testing.T) {
	f := func(seed int64, rawN, rawC uint8) bool {
		n := int(rawN%30) + 8
		space := []int{8, 20, 64, 100}[rawC%4]
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.25, rng)
		d := graph.OrientRandom(g, rng)
		initRes, err := linial.ColorFromIDs(g, sim.Config{})
		if err != nil {
			return false
		}
		inst := coloring.WithOrientedSlack(d, space, 3*math.Sqrt(float64(space)), rng)
		res, err := Solve(d, inst, initRes.Colors, initRes.Palette, sim.Config{})
		if err != nil {
			return false
		}
		return coloring.ValidateOLDC(d, inst, res.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
