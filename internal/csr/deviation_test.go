package csr

import (
	"math"
	"math/rand"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

// Regression tests for the DESIGN.md deviation "Strictness constants":
// Theorem 1.2's recursion runs its per-level Fast-Two-Sweep solver
// with ε' = ε/2. The paper's budget chain is non-strict — a per-level
// instance has slack exactly β·κ = 2(1+ε)β — so a per-level solver
// demanding the full ε can be rejected by Algorithm 1's strict Eq. 2
// precondition at minimum slack; halving ε restores strictness at no
// asymptotic cost (κ^k ≤ 2e^{1/3}√C < 3√C still holds).

// boundaryCases builds minimum-slack Theorem 1.2 instances (slack
// exactly 3√C·β) on a few graph shapes and seeds.
func boundaryCases(t *testing.T) []struct {
	name string
	d    *graph.Digraph
	inst *coloring.Instance
	base []int
	q    int
} {
	t.Helper()
	const space = 64
	var cases []struct {
		name string
		d    *graph.Digraph
		inst *coloring.Instance
		base []int
		q    int
	}
	add := func(name string, g *graph.Graph, seed int64) {
		d := graph.OrientByID(g)
		inst := coloring.WithOrientedSlack(d, space, 3*math.Sqrt(space), rand.New(rand.NewSource(seed)))
		base := make([]int, g.N())
		for v := range base {
			base[v] = v
		}
		cases = append(cases, struct {
			name string
			d    *graph.Digraph
			inst *coloring.Instance
			base []int
			q    int
		}{name, d, inst, base, g.N()})
	}
	add("ring24", graph.Ring(24), 1)
	add("gnp20", graph.GNP(20, 0.3, rand.New(rand.NewSource(2))), 2)
	add("complete8", graph.Complete(8), 3)
	return cases
}

// TestSolveAtMinimumSlack pins that the shipped recursion (with the
// ε/2 repair) handles instances at the exact slack floor.
func TestSolveAtMinimumSlack(t *testing.T) {
	for _, tc := range boundaryCases(t) {
		res, err := Solve(tc.d, tc.inst, tc.base, tc.q, sim.Config{})
		if err != nil {
			t.Errorf("%s: Solve at minimum slack: %v", tc.name, err)
			continue
		}
		if err := coloring.ValidateOLDC(tc.d, tc.inst, res.Colors); err != nil {
			t.Errorf("%s: output invalid: %v", tc.name, err)
		}
	}
}

// TestPerLevelBoundaryNeedsHalfEpsilon demonstrates WHY the repair
// exists, at the exact boundary the recursion produces. A level-local
// instance over space λ = 4 with per-node slack exactly κ·β =
// 2(1+ε)·β makes Fast-Two-Sweep's strict Eq. 2 check fail with
// EQUALITY under the full ε — sum·p = (1+ε)·max(p²,|L|)·β — while
// ε' = ε/2 accepts it. Concretely, with ε = 1/3 (one level), β = 3
// and uniform defect 1 over 4 colors: Σ(d+1) = 8 = 2(1+ε)·3. If the
// full-ε rejection ever stops holding here, the non-strict chain has
// become safe and the ε/2 deviation can be revisited.
func TestPerLevelBoundaryNeedsHalfEpsilon(t *testing.T) {
	const eps = 1.0 / 3
	g := graph.Complete(4)
	d := graph.OrientByID(g) // node 3 has out-degree 3
	inst := &coloring.Instance{Space: 4}
	for v := 0; v < 4; v++ {
		inst.Lists = append(inst.Lists, []int{0, 1, 2, 3})
		inst.Defects = append(inst.Defects, []int{1, 1, 1, 1})
	}
	if err := twosweep.CheckSlack(d, inst, 2, eps); err == nil {
		t.Error("full-ε slack check accepted the exact per-level boundary; ε/2 repair may be obsolete")
	}
	if err := twosweep.CheckSlack(d, inst, 2, eps/2); err != nil {
		t.Errorf("ε/2 slack check rejected the per-level boundary instance: %v", err)
	}
	// And the repaired solver actually solves it.
	res, err := twosweep.SolveFast(d, inst, []int{0, 1, 2, 3}, 4, 2, eps/2, sim.Config{})
	if err != nil {
		t.Fatalf("SolveFast at the boundary: %v", err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Fatalf("boundary output invalid: %v", err)
	}
}

// TestEpsilonHalfKeepsTheoremConstant pins the comment's arithmetic:
// with ε = 1/(3k) and κ = 2(1+ε), the accumulated slack demand
// κ^k stays below the advertised 3√C for every space up to 2^20.
func TestEpsilonHalfKeepsTheoremConstant(t *testing.T) {
	for space := 2; space <= 1<<20; space *= 2 {
		k := 0
		for pow := 1; pow < space; pow *= 4 {
			k++
		}
		eps := 1.0
		if k > 0 {
			eps = 1.0 / float64(3*k)
		}
		kappa := 2 * (1 + eps)
		if math.Pow(kappa, float64(k)) >= 3*math.Sqrt(float64(space)) {
			t.Errorf("space %d: κ^k = %v is not < 3√C = %v",
				space, math.Pow(kappa, float64(k)), 3*math.Sqrt(float64(space)))
		}
	}
}
