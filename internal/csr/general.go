package csr

import (
	"fmt"
	"math"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// Solver solves OLDC instances on (sub)graphs: given an orientation, a
// structurally valid instance, and a proper q-coloring, it returns a
// coloring with at most d_v(x_v) same-colored out-neighbors per node.
// A Solver declares its slack requirement out of band (the κ of
// Lemma 3.5).
type Solver func(d *graph.Digraph, inst *coloring.Instance, initColors []int, q int) ([]int, sim.Result, error)

// ReduceSpace implements Lemma 3.5 (Theorem 3 of [FK23a], specialized
// to this library's solvers): given a Solver a that handles OLDC
// instances over color spaces of size ≤ lambda whenever
// Σ(d_v(x)+1) ≥ β_v·kappa, it returns a Solver that handles ARBITRARY
// color spaces C whenever Σ(d_v(x)+1) ≥ β_v·kappa^⌈log_λ C⌉.
//
// The space is padded to λ^k (k = ⌈log_λ C⌉) and recursively split
// into λ blocks per level. Each level, every group of nodes sharing a
// current block solves a λ-color OLDC instance — choosing its
// sub-block, with block defects δ_{v,i} = ⌊W_{v,i}/κ^{j−1}⌋ where
// W_{v,i} is the slack mass of block i — using a. The OLDC guarantee
// (at most δ out-neighbors choose the same block) sustains the
// invariant W ≥ β·κ^j on vertex-disjoint subgraphs, which run in
// parallel. At the bottom, blocks have ≤ λ colors and a assigns the
// final colors directly.
//
// Round cost: ⌈log_λ C⌉ sequential levels, each the parallel maximum
// of the group runs — O(T_a·log_λ C), as Lemma 3.5 states.
func ReduceSpace(lambda int, kappa float64, a Solver) Solver {
	if lambda < 2 {
		panic(fmt.Sprintf("csr: split parameter λ=%d must be ≥ 2", lambda))
	}
	if kappa <= 1 {
		panic(fmt.Sprintf("csr: κ=%v must exceed 1", kappa))
	}
	return func(d *graph.Digraph, inst *coloring.Instance, initColors []int, q int) ([]int, sim.Result, error) {
		return reduceSpace(lambda, kappa, a, d, inst, initColors, q)
	}
}

// group is one vertex-disjoint recursion cell: the nodes (original
// ids) currently assigned to the color block [blockLo, blockLo+size).
type group struct {
	nodes   []int
	blockLo int
}

func reduceSpace(lambda int, kappa float64, a Solver, d *graph.Digraph, inst *coloring.Instance, initColors []int, q int) ([]int, sim.Result, error) {
	return reduceSpaceSpanned(lambda, kappa, a, d, inst, initColors, q, nil)
}

func reduceSpaceSpanned(lambda int, kappa float64, a Solver, d *graph.Digraph, inst *coloring.Instance, initColors []int, q int, cfgSpan *sim.Span) ([]int, sim.Result, error) {
	n := d.N()
	// k = ⌈log_λ C⌉ levels; the space is treated as padded to λ^k.
	k := 0
	for pow := 1; pow < inst.Space; pow *= lambda {
		k++
	}
	out := make([]int, n)
	var total sim.Result
	groups := []group{{nodes: allNodes(n), blockLo: 0}}
	for level := k; level >= 1; level-- {
		blockSize := powInt(lambda, level)
		subSize := blockSize / lambda
		levelSpan := cfgSpan.Child(fmt.Sprintf("level %d: %d group(s), blocks of %d", level, len(groups), blockSize))
		var levelStats sim.Result
		var next []group
		for _, grp := range groups {
			grpSpan := levelSpan.Child(fmt.Sprintf("block@%d (%d nodes)", grp.blockLo, len(grp.nodes)))
			var stats sim.Result
			var err error
			if level == 1 {
				stats, err = solveBase(a, d, inst, initColors, q, grp, lambda, out)
			} else {
				var children []group
				children, stats, err = solveChoice(a, d, inst, initColors, q, grp, lambda, subSize, kappa, float64(level-1))
				next = append(next, children...)
			}
			if err != nil {
				return nil, sim.Result{}, err
			}
			grpSpan.Done(stats)
			levelStats = sim.Par(levelStats, stats)
		}
		levelSpan.Done(levelStats)
		total = sim.Seq(total, levelStats)
		groups = next
	}
	if k == 0 {
		// C ≤ 1: every node takes its single color (callers validate
		// non-empty lists).
		for v := 0; v < n; v++ {
			if inst.ListSize(v) == 0 {
				return nil, sim.Result{}, fmt.Errorf("csr: node %d has an empty list", v)
			}
			out[v] = inst.Lists[v][0]
		}
	}
	return out, total, nil
}

// solveChoice runs one level's block-choice OLDC on a group and
// returns the child groups.
func solveChoice(a Solver, d *graph.Digraph, inst *coloring.Instance, initColors []int, q int, grp group, lambda, subSize int, kappa, levelsBelow float64) ([]group, sim.Result, error) {
	dInd, orig := graph.InduceDigraph(d, grp.nodes)
	weightDiv := math.Pow(kappa, levelsBelow) // κ^{j-1}
	choice := &coloring.Instance{
		Lists:   make([][]int, len(orig)),
		Defects: make([][]int, len(orig)),
		Space:   lambda,
	}
	for i, v := range orig {
		for blk := 0; blk < lambda; blk++ {
			w := blockWeight(inst, v, grp.blockLo+blk*subSize, subSize)
			if w == 0 {
				continue // empty block: not a valid choice
			}
			choice.Lists[i] = append(choice.Lists[i], blk)
			choice.Defects[i] = append(choice.Defects[i], int(math.Floor(float64(w)/weightDiv)))
		}
	}
	initInd := induceInts(initColors, orig)
	colors, stats, err := a(dInd, choice, initInd, q)
	if err != nil {
		return nil, sim.Result{}, fmt.Errorf("csr: block choice (block %d, size %d·%d): %w", grp.blockLo, lambda, subSize, err)
	}
	if err := coloring.ValidateOLDC(dInd, choice, colors); err != nil {
		return nil, sim.Result{}, fmt.Errorf("csr: block choice produced invalid OLDC: %w", err)
	}
	children := make(map[int][]int, lambda)
	for i, blk := range colors {
		children[blk] = append(children[blk], orig[i])
	}
	out := make([]group, 0, len(children))
	for blk := 0; blk < lambda; blk++ {
		if nodes, ok := children[blk]; ok {
			out = append(out, group{nodes: nodes, blockLo: grp.blockLo + blk*subSize})
		}
	}
	return out, stats, nil
}

// solveBase assigns actual colors within a block of ≤ lambda colors,
// remapping to [0, lambda) so the inner solver sees a λ-sized space.
func solveBase(a Solver, d *graph.Digraph, inst *coloring.Instance, initColors []int, q int, grp group, lambda int, out []int) (sim.Result, error) {
	dInd, orig := graph.InduceDigraph(d, grp.nodes)
	sub := &coloring.Instance{
		Lists:   make([][]int, len(orig)),
		Defects: make([][]int, len(orig)),
		Space:   lambda,
	}
	for i, v := range orig {
		for li, x := range inst.Lists[v] {
			if x >= grp.blockLo && x < grp.blockLo+lambda {
				sub.Lists[i] = append(sub.Lists[i], x-grp.blockLo)
				sub.Defects[i] = append(sub.Defects[i], inst.Defects[v][li])
			}
		}
	}
	initInd := induceInts(initColors, orig)
	colors, stats, err := a(dInd, sub, initInd, q)
	if err != nil {
		return sim.Result{}, fmt.Errorf("csr: base level (block %d): %w", grp.blockLo, err)
	}
	if err := coloring.ValidateOLDC(dInd, sub, colors); err != nil {
		return sim.Result{}, fmt.Errorf("csr: base level produced invalid OLDC: %w", err)
	}
	for i, v := range orig {
		out[v] = colors[i] + grp.blockLo
	}
	return stats, nil
}

// blockWeight returns W_{v,block} = Σ_{x ∈ L_v ∩ [lo, lo+size)} (d_v(x)+1).
func blockWeight(inst *coloring.Instance, v, lo, size int) int {
	w := 0
	for i, x := range inst.Lists[v] {
		if x >= lo && x < lo+size {
			w += inst.Defects[v][i] + 1
		}
	}
	return w
}

func allNodes(n int) []int {
	out := make([]int, n)
	for v := range out {
		out[v] = v
	}
	return out
}

func induceInts(vals []int, orig []int) []int {
	out := make([]int, len(orig))
	for i, v := range orig {
		out[i] = vals[v]
	}
	return out
}

func powInt(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}
