package csr

import (
	"math"
	"math/rand"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
	"listcolor/internal/twosweep"
)

// TestReduceSpaceOtherLambdas instantiates Lemma 3.5 with λ ∈ {9, 16}
// (p = 3, 4): the combinator is generic, not hard-wired to λ = 4.
func TestReduceSpaceOtherLambdas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(40, 4, rng)
	d := graph.OrientByID(g)
	base, q := properColoring(t, g)
	for _, lambda := range []int{9, 16} {
		p := int(math.Sqrt(float64(lambda)))
		space := lambda * lambda * lambda // three levels
		// κ for the Fast-Two-Sweep inner solver with parameter p:
		// max{p, λ/p} = p, so it needs Σ(d+1) > (1+ε)·p·β. Budget with
		// κ = (1+ε)·p·(1+margin) and run at ε' = ε/2 for strictness.
		eps := 0.5
		kappa := (1 + eps) * float64(p)
		inner := fastTwoSweepSolver(p, eps/2, sim.Config{})
		solver := ReduceSpace(lambda, kappa, inner)
		// Instance with slack κ^3 per unit of out-degree.
		need := math.Pow(kappa, 3)
		inst := coloring.WithOrientedSlack(d, space, need, rng)
		colors, stats, err := solver(d, inst, base, q)
		if err != nil {
			t.Fatalf("λ=%d: %v", lambda, err)
		}
		if err := coloring.ValidateOLDC(d, inst, colors); err != nil {
			t.Errorf("λ=%d: %v", lambda, err)
		}
		if stats.Rounds <= 0 {
			t.Errorf("λ=%d: no rounds recorded", lambda)
		}
	}
}

// TestReduceSpaceClusteredLists is the adversarial case for the block
// choice: every node's entire list lives in ONE block, so the choice
// instance degenerates to single-block lists and all slack mass must
// survive the descent.
func TestReduceSpaceClusteredLists(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomRegular(30, 4, rng)
	d := graph.OrientByID(g)
	base, q := properColoring(t, g)
	space := 256
	need := int(math.Ceil(3*math.Sqrt(float64(space)))) + 1
	inst := &coloring.Instance{Space: space, Lists: make([][]int, 30), Defects: make([][]int, 30)}
	for v := 0; v < 30; v++ {
		// All of v's colors inside one random 16-color block.
		blockLo := 16 * rng.Intn(space/16)
		budget := need*d.Outdeg(v) + 1
		k := budget
		if k > 16 {
			k = 16
		}
		if budget < k {
			budget = k
		}
		for i := 0; i < k; i++ {
			inst.Lists[v] = append(inst.Lists[v], blockLo+i)
			inst.Defects[v] = append(inst.Defects[v], 0)
		}
		rem := budget - k
		for i := 0; rem > 0; i = (i + 1) % k {
			inst.Defects[v][i]++
			rem--
		}
	}
	res, err := Solve(d, inst, base, q, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
		t.Error(err)
	}
}

// TestReduceSpaceParameterPanics pins the combinator's guardrails.
func TestReduceSpaceParameterPanics(t *testing.T) {
	inner := fastTwoSweepSolver(2, 0.1, sim.Config{})
	for name, fn := range map[string]func(){
		"lambda < 2": func() { ReduceSpace(1, 2, inner) },
		"kappa ≤ 1":  func() { ReduceSpace(4, 1, inner) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestReduceSpaceSingleColorSpace covers the k = 0 corner with an
// empty-list rejection.
func TestReduceSpaceSingleColorSpace(t *testing.T) {
	g := graph.Ring(4)
	d := graph.OrientByID(g)
	base, q := properColoring(t, g)
	inner := fastTwoSweepSolver(2, 0.1, sim.Config{})
	solver := ReduceSpace(4, 2.5, inner)
	bad := &coloring.Instance{Space: 1, Lists: [][]int{{0}, {}, {0}, {0}}, Defects: [][]int{{5}, {}, {5}, {5}}}
	if _, _, err := solver(d, bad, base, q); err == nil {
		t.Error("empty list at C=1 accepted")
	}
}

// TestRoundsGrowWithLambdaTradeoff verifies the Lemma 3.5 trade-off:
// larger λ means fewer levels. (Rounds per level grow with λ, so this
// only checks the level count, which the combinator controls exactly.)
func TestLevelCount(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Ring(16)
	d := graph.OrientByID(g)
	base, q := properColoring(t, g)
	for _, tc := range []struct {
		space      int
		wantLevels int
	}{
		{1, 0}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {256, 4}, {257, 5},
	} {
		inst := coloring.WithOrientedSlack(d, tc.space, 3*math.Sqrt(float64(tc.space)), rng)
		res, err := Solve(d, inst, base, q, sim.Config{})
		if err != nil {
			t.Fatalf("C=%d: %v", tc.space, err)
		}
		if res.Levels != tc.wantLevels {
			t.Errorf("C=%d: Levels = %d, want %d", tc.space, res.Levels, tc.wantLevels)
		}
		if err := coloring.ValidateOLDC(d, inst, res.Colors); err != nil {
			t.Errorf("C=%d: %v", tc.space, err)
		}
	}
}

// TestInnerSolverErrorPropagates ensures a failing inner solver
// surfaces with context instead of being swallowed.
func TestInnerSolverErrorPropagates(t *testing.T) {
	g := graph.Ring(6)
	d := graph.OrientByID(g)
	base, q := properColoring(t, g)
	failing := func(*graph.Digraph, *coloring.Instance, []int, int) ([]int, sim.Result, error) {
		return nil, sim.Result{}, twosweep.ErrSlack
	}
	rng := rand.New(rand.NewSource(4))
	inst := coloring.WithOrientedSlack(d, 64, 24, rng)
	if _, _, err := ReduceSpace(4, 2.5, failing)(d, inst, base, q); err == nil {
		t.Error("inner failure swallowed")
	}
}
