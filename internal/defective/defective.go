// Package defective implements Lemma 3.4 of the paper ([Kuh09, KS18]):
// given a proper m-coloring, compute in O(log* m) rounds a coloring
// with O(1/α²) colors in which every node has at most α·β_v
// monochromatic out-neighbors (oriented variant) or at most α·deg(v)
// monochromatic neighbors (undirected variant).
//
// This is the preprocessing step of the Fast-Two-Sweep algorithm
// (Algorithm 2): it replaces the expensive proper q-coloring with a
// cheap defective one, and the Two-Sweep algorithm then runs on the
// subgraph of bichromatic edges with slightly reduced defects.
//
// The implementation delegates to the defect-tolerant polynomial
// color-reduction machinery in package linial, whose per-node hot path
// (received-color table, point-value arrays, coefficient buffers) runs
// on the internal/palette kernel and allocates nothing per round.
package defective

import (
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

// ColorOriented computes a defective coloring of the oriented graph d
// from a proper m-coloring: the result has Θ(1/α²) colors and every
// node has at most ⌊α·β_v⌋ out-neighbors of its own color. Runs in
// O(log* m) rounds.
func ColorOriented(d *graph.Digraph, colors []int, m int, alpha float64, cfg sim.Config) (linial.Result, error) {
	steps := linial.DefectiveSchedule(m, d.MaxBeta(), alpha)
	return linial.Reduce(sim.NewOrientedNetwork(d), colors, m, steps, true, cfg)
}

// ColorUndirected computes a defective coloring of g from a proper
// m-coloring: the result has Θ(1/α²) colors and every node has at most
// ⌊α·deg(v)⌋ neighbors of its own color. Runs in O(log* m) rounds.
func ColorUndirected(g *graph.Graph, colors []int, m int, alpha float64, cfg sim.Config) (linial.Result, error) {
	steps := linial.DefectiveSchedule(m, g.MaxDegree(), alpha)
	return linial.Reduce(sim.NewNetwork(g), colors, m, steps, false, cfg)
}

// Palette returns the number of colors the defective coloring will
// use for the given parameters, without running the protocol — the
// K = O(1/α²) that downstream algorithms iterate over.
func Palette(m, beta int, alpha float64) int {
	steps := linial.DefectiveSchedule(m, beta, alpha)
	if len(steps) == 0 {
		return m
	}
	return steps[len(steps)-1].ColorsOut()
}
