package defective

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

// properIDs colors g properly via Linial from ids (test helper).
func properIDs(t *testing.T, g *graph.Graph) ([]int, int) {
	t.Helper()
	res, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Colors, res.Palette
}

func TestColorOrientedDefectBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, alpha := range []float64{1.0, 0.5, 0.25} {
		for _, g := range []*graph.Graph{
			graph.RandomRegular(100, 8, rng),
			graph.GNP(80, 0.12, rng),
			graph.Grid(10, 10),
		} {
			colors, m := properIDs(t, g)
			d := graph.OrientByID(g)
			res, err := ColorOriented(d, colors, m, alpha, sim.Config{})
			if err != nil {
				t.Fatalf("α=%v %v: %v", alpha, g, err)
			}
			mono := graph.MonochromaticOutDegree(d, res.Colors)
			for v := 0; v < g.N(); v++ {
				allowed := int(math.Floor(alpha * float64(d.Beta(v))))
				if mono[v] > allowed {
					t.Errorf("α=%v %v: node %d defect %d > ⌊α·β_v⌋=%d", alpha, g, v, mono[v], allowed)
				}
			}
			if limit := int(64.0/(alpha*alpha)) + 64; res.Palette > limit {
				t.Errorf("α=%v: palette %d > O(1/α²)=%d", alpha, res.Palette, limit)
			}
		}
	}
}

func TestColorUndirectedDefectBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomRegular(120, 10, rng)
	colors, m := properIDs(t, g)
	alpha := 0.5
	res, err := ColorUndirected(g, colors, m, alpha, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mono := graph.MonochromaticDegree(g, res.Colors)
	for v := 0; v < g.N(); v++ {
		allowed := int(math.Floor(alpha * float64(g.Degree(v))))
		if mono[v] > allowed {
			t.Errorf("node %d defect %d > ⌊α·deg⌋=%d", v, mono[v], allowed)
		}
	}
}

func TestRoundsLogStar(t *testing.T) {
	g := graph.Ring(512)
	colors, m := properIDs(t, g)
	res, err := ColorUndirected(g, colors, m, 0.5, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > logstar.LogStar(m)+6 {
		t.Errorf("defective coloring took %d rounds, want O(log* q)", res.Stats.Rounds)
	}
}

func TestPaletteMatchesRun(t *testing.T) {
	g := graph.Grid(6, 6)
	colors, m := properIDs(t, g)
	alpha := 0.5
	want := Palette(m, g.MaxDegree(), alpha)
	res, err := ColorUndirected(g, colors, m, alpha, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette != want {
		t.Errorf("Palette() = %d but run produced palette %d", want, res.Palette)
	}
	if mc := graph.MaxColor(res.Colors); mc >= want {
		t.Errorf("color %d outside predicted palette %d", mc, want)
	}
}

func TestDefectiveQuick(t *testing.T) {
	// Property: for random graphs, orientations and α, the defect bound
	// always holds.
	f := func(seed int64, rawN uint8, rawA uint8) bool {
		n := int(rawN%40) + 10
		alpha := []float64{1.0, 0.5, 0.25}[rawA%3]
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, 0.2, rng)
		res0, err := linial.ColorFromIDs(g, sim.Config{})
		if err != nil {
			return false
		}
		d := graph.OrientRandom(g, rng)
		res, err := ColorOriented(d, res0.Colors, res0.Palette, alpha, sim.Config{})
		if err != nil {
			return false
		}
		mono := graph.MonochromaticOutDegree(d, res.Colors)
		for v := 0; v < n; v++ {
			if mono[v] > int(math.Floor(alpha*float64(d.Beta(v)))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDefectiveCongestCompliant(t *testing.T) {
	g := graph.Ring(300)
	colors, m := properIDs(t, g)
	// Colors fit in O(log m) bits throughout.
	_, err := ColorUndirected(g, colors, m, 0.5, sim.Config{BandwidthBits: sim.BitsFor(m * m)})
	if err != nil {
		t.Errorf("not CONGEST compliant: %v", err)
	}
}
