package deltaplus1

import (
	"math/rand"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestPipelineCongestCompliant runs the whole (deg+1) pipeline under a
// hard per-message cap of the O(log n + log C) shape: every
// sub-protocol — bootstrap, defective splits, two-sweeps inside the
// Theorem 1.2 solver — must stay within it, or the engine fails the
// run. This is Theorem 1.3's CONGEST claim as an enforced property.
func TestPipelineCongestCompliant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(120, 6, rng)
	inst := coloring.DegreePlusOne(g, g.MaxDegree()+1, rng)
	// Generous multiple of log(n²) + log C — but a hard cap: a single
	// polynomial-size message would trip it.
	cap := 8 * (sim.BitsFor(g.N()*g.N()) + sim.BitsFor(inst.Space))
	res, err := Solve(g, inst, sim.Config{BandwidthBits: cap})
	if err != nil {
		t.Fatalf("pipeline exceeded the %d-bit CONGEST cap: %v", cap, err)
	}
	if err := coloring.ValidateProperList(g, inst, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxMessageBits > cap {
		t.Errorf("reported max message %d > cap %d", res.Stats.MaxMessageBits, cap)
	}
}

// TestPipelineDriverIndependent pins that the composed pipeline is
// deterministic across engine drivers.
func TestPipelineDriverIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GNP(60, 0.15, rng)
	inst := coloring.DegreePlusOne(g, g.MaxDegree()+2, rng)
	var prev []int
	for _, driver := range []sim.Driver{sim.Lockstep, sim.Goroutines, sim.Workers} {
		res, err := Solve(g, inst, sim.Config{Driver: driver})
		if err != nil {
			t.Fatalf("driver %d: %v", driver, err)
		}
		if prev != nil {
			for v := range prev {
				if prev[v] != res.Colors[v] {
					t.Fatalf("driver %d disagrees at node %d", driver, v)
				}
			}
		}
		prev = res.Colors
	}
}
