// Package deltaplus1 computes proper (deg+1)-list colorings in the
// CONGEST model (the problem of Theorem 1.3): every node v has a list
// L_v of at least deg(v)+1 colors from a space of size C = O(Δ) and
// must pick a color differing from all neighbors.
//
// Pipeline (all pieces from the paper):
//
//  1. Linial bootstrap (O(log* n) rounds): proper q = O(Δ²) coloring.
//  2. Degree-halving scales (Lemma A.1's structure): in each scale,
//     compute a defective coloring of the uncolored subgraph H with
//     α = 1/(2μ), μ = ⌈3√C⌉ (Lemma 3.4), giving K = O(μ²) classes
//     where each node has at most deg_H(v)/(2μ) same-class neighbors.
//  3. Process classes sequentially. A node is active at its class's
//     turn if at most half of its H-neighbors have been colored this
//     scale. Its pruned list (minus colors taken by colored
//     neighbors) then has ≥ deg_H(v)/2 + 1 colors while its active
//     same-class degree is ≤ deg_H(v)/(2μ) — slack ≥ μ ≥ 3√C, exactly
//     what the Theorem 1.2 solver (package csr) needs to color the
//     class subgraph properly in O(log³C + log* q) rounds.
//  4. Nodes never activated during a scale have more than half their
//     H-neighbors colored, so the uncolored subgraph's degrees halve
//     every scale: ≤ ⌈log Δ⌉ + 2 scales in total.
//
// Complexity note: this is the paper's own Lemma A.1 reduction and
// costs O(C·log Δ) calls of the Theorem 1.2 solver — Õ(Δ·log Δ)
// rounds overall. Theorem 1.3's stronger Õ(√Δ) + O(log* n) bound
// plugs Theorem 1.2 into the framework of [FK23a, Theorem 4], whose
// internals the paper cites but does not describe; EXPERIMENTS.md
// records the measured shape of this implementation against both
// bounds.
package deltaplus1

import (
	"errors"
	"fmt"
	"math"

	"listcolor/internal/coloring"
	"listcolor/internal/csr"
	"listcolor/internal/defective"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
)

// ErrNotDegPlusOne is returned when the instance is not a valid
// (deg+1)-list coloring instance (non-zero defects or short lists).
var ErrNotDegPlusOne = errors.New("deltaplus1: not a (deg+1)-list instance")

// Result is the outcome of a (deg+1)-list coloring run.
type Result struct {
	Colors []int
	Stats  sim.Result
	// Scales is the number of degree-halving scales used.
	Scales int
	// OLDCCalls counts invocations of the Theorem 1.2 solver.
	OLDCCalls int
}

// Check verifies the (deg+1)-list preconditions: zero defects and
// |L_v| ≥ deg(v)+1.
func Check(g *graph.Graph, inst *coloring.Instance) error {
	if inst.N() != g.N() {
		return fmt.Errorf("%w: %d lists for %d nodes", ErrNotDegPlusOne, inst.N(), g.N())
	}
	for v := 0; v < g.N(); v++ {
		if inst.ListSize(v) < g.Degree(v)+1 {
			return fmt.Errorf("%w: node %d has %d colors for degree %d", ErrNotDegPlusOne, v, inst.ListSize(v), g.Degree(v))
		}
		for _, d := range inst.Defects[v] {
			if d != 0 {
				return fmt.Errorf("%w: node %d has non-zero defect", ErrNotDegPlusOne, v)
			}
		}
	}
	return nil
}

// Solve colors the (deg+1)-list instance properly.
func Solve(g *graph.Graph, inst *coloring.Instance, cfg sim.Config) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if err := Check(g, inst); err != nil {
		return Result{}, err
	}
	n := g.N()
	// Step 1: Linial bootstrap.
	rootSpan := cfg.Span
	cfg.Span = nil // sub-steps attach their own labeled spans below
	bootSpan := rootSpan.Child("Linial bootstrap (log* n)")
	base, err := linial.ColorFromIDs(g, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("deltaplus1: bootstrap: %w", err)
	}
	bootSpan.Done(base.Stats)
	res := Result{Colors: make([]int, n), Stats: base.Stats}
	for v := range res.Colors {
		res.Colors[v] = -1
	}

	mu := int(math.Ceil(3 * math.Sqrt(float64(inst.Space))))
	alpha := 1 / float64(2*mu)
	maxScales := logstar.CeilLog2(g.MaxDegree()) + 3

	uncolored := make([]int, n)
	for v := range uncolored {
		uncolored[v] = v
	}
	for len(uncolored) > 0 {
		res.Scales++
		if res.Scales > maxScales {
			return Result{}, fmt.Errorf("deltaplus1: degree halving failed to converge after %d scales", maxScales)
		}
		scaleSpan := rootSpan.Child(fmt.Sprintf("scale %d: %d uncolored", res.Scales, len(uncolored)))
		remaining, scaleStats, calls, err := runScale(g, inst, base, res.Colors, uncolored, mu, alpha, cfg, scaleSpan)
		if err != nil {
			return Result{}, err
		}
		scaleSpan.Done(scaleStats)
		res.Stats = sim.Seq(res.Stats, scaleStats)
		res.OLDCCalls += calls
		uncolored = remaining
	}
	return res, nil
}

// runScale executes one degree-halving scale over the uncolored nodes
// and returns the still-uncolored set.
func runScale(g *graph.Graph, inst *coloring.Instance, base linial.Result, colors []int, uncolored []int, mu int, alpha float64, cfg sim.Config, span *sim.Span) ([]int, sim.Result, int, error) {
	h, origH := g.InducedSubgraph(uncolored)
	// origH is ascending (uncolored is maintained in id order), so a
	// binary-search rank table replaces the per-scale map.
	indexH := palette.NewIndex(origH)
	baseH := make([]int, len(origH))
	for i, v := range origH {
		baseH[i] = base.Colors[v]
	}
	// Defective coloring of H: K = O(μ²) classes, ≤ deg_H/(2μ)
	// same-class neighbors per node.
	psi, err := defective.ColorUndirected(h, baseH, base.Palette, alpha, cfg)
	if err != nil {
		return nil, sim.Result{}, 0, fmt.Errorf("deltaplus1: defective split: %w", err)
	}
	span.Child(fmt.Sprintf("defective split α=%.3g → %d classes", alpha, psi.Palette)).Done(psi.Stats)
	stats := psi.Stats
	calls := 0

	coloredInScale := make([]int, len(origH)) // H-neighbors colored this scale
	done := make([]bool, len(origH))
	for class := 0; class < psi.Palette; class++ {
		// Active: class members with ≤ half their H-neighbors colored
		// this scale.
		var active []int // original ids
		for i, v := range origH {
			if !done[i] && psi.Colors[i] == class && 2*coloredInScale[i] <= h.Degree(i) {
				active = append(active, v)
			}
		}
		if len(active) == 0 {
			continue
		}
		classStats, err := colorActive(g, inst, base, colors, active, cfg)
		if err != nil {
			return nil, sim.Result{}, 0, err
		}
		span.Child(fmt.Sprintf("class %d: %d active (Thm 1.2 solver)", class, len(active))).Done(classStats)
		calls++
		// One extra round for announcing the new colors to neighbors
		// outside the class subgraph: one O(log C)-bit message per
		// incident edge end.
		announce := sim.Result{Rounds: 1, MaxMessageBits: sim.BitsFor(inst.Space)}
		for _, v := range active {
			announce.Messages += g.Degree(v)
		}
		announce.TotalBits = announce.Messages * announce.MaxMessageBits
		stats = sim.Seq(stats, sim.Seq(classStats, announce))
		for _, v := range active {
			if i, ok := indexH.Rank(v); ok {
				done[i] = true
			}
			for _, u := range g.Neighbors(v) {
				if j, ok := indexH.Rank(u); ok {
					coloredInScale[j]++
				}
			}
		}
	}
	var remaining []int
	for i, v := range origH {
		if !done[i] {
			remaining = append(remaining, v)
		}
	}
	return remaining, stats, calls, nil
}

// colorActive properly colors the induced subgraph over active using
// pruned lists and the Theorem 1.2 solver, writing into colors.
func colorActive(g *graph.Graph, inst *coloring.Instance, base linial.Result, colors []int, active []int, cfg sim.Config) (sim.Result, error) {
	sub, orig := g.InducedSubgraph(active)
	d := graph.OrientByID(sub)
	subInst := &coloring.Instance{
		Lists:   make([][]int, len(orig)),
		Defects: make([][]int, len(orig)),
		Space:   inst.Space,
	}
	used := palette.NewSet(inst.Space)
	for i, v := range orig {
		used.Clear()
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used.Insert(colors[u])
			}
		}
		for _, x := range inst.Lists[v] {
			if !used.Contains(x) {
				subInst.Lists[i] = append(subInst.Lists[i], x)
				subInst.Defects[i] = append(subInst.Defects[i], 0)
			}
		}
	}
	initSub := make([]int, len(orig))
	for i, v := range orig {
		initSub[i] = base.Colors[v]
	}
	// Re-bootstrap: the class subgraph has degree ≤ deg_H/(2μ), so
	// O(log* q) rounds of Linial shrink its proper coloring from the
	// global q = O(Δ²) to O(Δ_sub²) classes — the two-sweep phases
	// inside the solver then sweep over far fewer classes.
	reb, err := linial.ReduceProperUndirected(sub, initSub, base.Palette, cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("deltaplus1: class re-bootstrap: %w", err)
	}
	r, err := csr.Solve(d, subInst, reb.Colors, reb.Palette, cfg)
	if err != nil {
		return sim.Result{}, fmt.Errorf("deltaplus1: class coloring: %w", err)
	}
	if err := coloring.ValidateProperList(sub, subInst, r.Colors); err != nil {
		return sim.Result{}, fmt.Errorf("deltaplus1: class coloring invalid: %w", err)
	}
	for i, v := range orig {
		colors[v] = r.Colors[i]
	}
	return sim.Seq(reb.Stats, r.Stats), nil
}
