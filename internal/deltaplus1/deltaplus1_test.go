package deltaplus1

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

func TestSolveProper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{
		graph.Ring(30),
		graph.Grid(5, 6),
		graph.RandomRegular(40, 6, rng),
		graph.GNP(35, 0.2, rng),
		graph.Complete(9),
		graph.CompleteKaryTree(3, 4),
	} {
		space := g.MaxDegree() + 1
		inst := coloring.DegreePlusOne(g, space, rng)
		res, err := Solve(g, inst, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := coloring.ValidateProperList(g, inst, res.Colors); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		if res.Scales > logstar.CeilLog2(g.MaxDegree())+3 {
			t.Errorf("%v: %d scales, want ≤ ⌈logΔ⌉+3", g, res.Scales)
		}
	}
}

func TestSolveDeltaPlusOneColors(t *testing.T) {
	// With lists = [0, Δ+1) for every node this is classical
	// (Δ+1)-coloring.
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomRegular(50, 5, rng)
	delta := g.RawMaxDegree()
	inst := &coloring.Instance{Space: delta + 1, Lists: make([][]int, g.N()), Defects: make([][]int, g.N())}
	full := make([]int, delta+1)
	for i := range full {
		full[i] = i
	}
	for v := 0; v < g.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = make([]int, delta+1)
	}
	res, err := Solve(g, inst, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.IsProperColoring(g, res.Colors); err != nil {
		t.Error(err)
	}
	if mc := graph.MaxColor(res.Colors); mc > delta {
		t.Errorf("used color %d > Δ = %d", mc, delta)
	}
}

func TestCheckRejections(t *testing.T) {
	g := graph.Ring(6)
	rng := rand.New(rand.NewSource(3))
	short := coloring.Uniform(6, 10, 2, 0, rng) // lists of size 2 < deg+1 = 3
	if _, err := Solve(g, short, sim.Config{}); !errors.Is(err, ErrNotDegPlusOne) {
		t.Errorf("err = %v, want ErrNotDegPlusOne", err)
	}
	defects := coloring.Uniform(6, 10, 3, 1, rng) // non-zero defects
	if _, err := Solve(g, defects, sim.Config{}); !errors.Is(err, ErrNotDegPlusOne) {
		t.Errorf("err = %v, want ErrNotDegPlusOne", err)
	}
	wrongSize := coloring.Uniform(5, 10, 3, 0, rng)
	if _, err := Solve(g, wrongSize, sim.Config{}); !errors.Is(err, ErrNotDegPlusOne) {
		t.Errorf("err = %v, want ErrNotDegPlusOne", err)
	}
}

func TestSolveQuick(t *testing.T) {
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%40) + 5
		p := 0.1 + float64(rawP%5)/10
		rng := rand.New(rand.NewSource(seed))
		g := graph.GNP(n, p, rng)
		inst := coloring.DegreePlusOne(g, g.MaxDegree()+5, rng)
		res, err := Solve(g, inst, sim.Config{})
		if err != nil {
			return false
		}
		return coloring.ValidateProperList(g, inst, res.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSolveEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Empty graph: every node just takes a color from its list.
	g := graph.New(5)
	inst := coloring.DegreePlusOne(g, 3, rng)
	res, err := Solve(g, inst, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateProperList(g, inst, res.Colors); err != nil {
		t.Error(err)
	}
	// Single edge.
	g2 := graph.Path(2)
	inst2 := coloring.DegreePlusOne(g2, 4, rng)
	res2, err := Solve(g2, inst2, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateProperList(g2, inst2, res2.Colors); err != nil {
		t.Error(err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// n ≫ Δ² so the Linial bootstrap and the defective split actually
	// engage (on tiny graphs every class is a singleton and nothing
	// needs to be sent).
	g := graph.RandomRegular(400, 4, rng)
	inst := coloring.DegreePlusOne(g, g.MaxDegree()+1, rng)
	res, err := Solve(g, inst, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds <= 0 || res.Stats.Messages <= 0 {
		t.Errorf("stats not accumulated: %+v", res.Stats)
	}
	if res.OLDCCalls <= 0 {
		t.Error("no OLDC calls recorded")
	}
}
