// Package gf implements the modest finite-field toolkit that the
// Linial-style color-reduction algorithms need: prime selection,
// arithmetic in prime fields F_p, and evaluation of the polynomials
// whose point-value pairs serve as new colors.
//
// The color-reduction step of [Lin87] (and its defect-tolerant variant
// from [Kuh09, KS18]) identifies each current color m with the
// polynomial over F_q whose coefficients are the base-q digits of m.
// A node's new color is a point-value pair (a, f_m(a)) ∈ F_q × F_q,
// encoded as the integer a·q + f_m(a). Two distinct polynomials of
// degree ≤ d agree on at most d points, which is the combinatorial
// heart of the reduction.
package gf

// NextPrime returns the smallest prime ≥ n. It panics for n < 2 being
// asked to exceed 2^31 (the color spaces in this library never get
// anywhere near that).
func NextPrime(n int) int {
	if n <= 2 {
		return 2
	}
	if n > 1<<31 {
		panic("gf: NextPrime argument out of supported range")
	}
	candidate := n
	if candidate%2 == 0 {
		candidate++
	}
	for !IsPrime(candidate) {
		candidate += 2
	}
	return candidate
}

// IsPrime reports whether n is prime, by trial division. The fields
// used by the coloring algorithms have size O(Δ·polylog), so trial
// division is more than fast enough and keeps the package dependency-
// free.
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	if n < 4 {
		return true
	}
	if n%2 == 0 {
		return false
	}
	for f := 3; f*f <= n; f += 2 {
		if n%f == 0 {
			return false
		}
	}
	return true
}

// Poly is a polynomial over F_q with coefficients Coeffs[i] for x^i.
// The zero-length polynomial is the zero polynomial.
type Poly struct {
	Q      int   // field modulus (prime)
	Coeffs []int // little-endian coefficients, each in [0, Q)
}

// PolyFromInt returns the polynomial over F_q whose coefficients are
// the base-q digits of m (least significant digit = constant term),
// padded with zeros to exactly degree+1 coefficients. It panics if m
// does not fit, i.e. m ≥ q^(degree+1), or if m < 0.
func PolyFromInt(m, q, degree int) Poly {
	return PolyFromIntInto(m, q, degree, nil)
}

// PolyFromIntInto is PolyFromInt writing the coefficients into buf
// (reallocated only if its capacity is short), so per-round polynomial
// decoding can reuse one node-local buffer instead of allocating.
func PolyFromIntInto(m, q, degree int, buf []int) Poly {
	if m < 0 {
		panic("gf: PolyFromInt of negative value")
	}
	if q < 2 {
		panic("gf: PolyFromInt with field size < 2")
	}
	if cap(buf) < degree+1 {
		buf = make([]int, degree+1)
	}
	coeffs := buf[:degree+1]
	v := m
	for i := 0; i <= degree; i++ {
		coeffs[i] = v % q
		v /= q
	}
	if v != 0 {
		panic("gf: PolyFromInt value does not fit in q^(degree+1)")
	}
	return Poly{Q: q, Coeffs: coeffs}
}

// Int returns the integer whose base-q digits are the coefficients of
// p — the inverse of PolyFromInt.
func (p Poly) Int() int {
	v := 0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*p.Q + p.Coeffs[i]
	}
	return v
}

// Degree returns the formal degree of p, i.e. len(Coeffs)-1. (Trailing
// zero coefficients are not trimmed: the reduction cares about the
// degree bound, not the exact degree.)
func (p Poly) Degree() int {
	return len(p.Coeffs) - 1
}

// Eval returns p(a) in F_q, by Horner's rule.
func (p Poly) Eval(a int) int {
	a %= p.Q
	if a < 0 {
		a += p.Q
	}
	v := 0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = (v*a + p.Coeffs[i]) % p.Q
	}
	return v
}

// Agreements returns the number of points a ∈ F_q with p(a) == other(a).
// For distinct polynomials of degree ≤ d this is at most d; for equal
// polynomials it is q. It panics if the two polynomials live in
// different fields.
func (p Poly) Agreements(other Poly) int {
	if p.Q != other.Q {
		panic("gf: Agreements across different fields")
	}
	n := 0
	for a := 0; a < p.Q; a++ {
		if p.Eval(a) == other.Eval(a) {
			n++
		}
	}
	return n
}

// Equal reports whether p and other are the same polynomial over the
// same field (comparing coefficient values; lengths may differ if the
// extra coefficients are zero).
func (p Poly) Equal(other Poly) bool {
	if p.Q != other.Q {
		return false
	}
	longest := len(p.Coeffs)
	if len(other.Coeffs) > longest {
		longest = len(other.Coeffs)
	}
	for i := 0; i < longest; i++ {
		var a, b int
		if i < len(p.Coeffs) {
			a = p.Coeffs[i]
		}
		if i < len(other.Coeffs) {
			b = other.Coeffs[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// PointValue encodes the point-value pair (a, v) over F_q as a single
// integer in [0, q²): a·q + v. This is the "new color" of the Linial
// reduction step.
func PointValue(a, v, q int) int {
	return a*q + v
}

// SplitPointValue inverts PointValue.
func SplitPointValue(code, q int) (a, v int) {
	return code / q, code % q
}
