package gf

import (
	"testing"
	"testing/quick"
)

func TestIsPrime(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 97, 101, 7919}
	composites := []int{-7, 0, 1, 4, 6, 9, 15, 91, 7917}
	for _, p := range primes {
		if !IsPrime(p) {
			t.Errorf("IsPrime(%d) = false, want true", p)
		}
	}
	for _, c := range composites {
		if IsPrime(c) {
			t.Errorf("IsPrime(%d) = true, want false", c)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {7900, 7901},
	}
	for _, c := range cases {
		if got := NextPrime(c.n); got != c.want {
			t.Errorf("NextPrime(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestNextPrimeQuick(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw)
		p := NextPrime(n)
		if p < n || !IsPrime(p) {
			return false
		}
		// No prime strictly between n and p.
		for k := n; k < p; k++ {
			if IsPrime(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPolyRoundTrip(t *testing.T) {
	f := func(rawM uint16, rawQ, rawD uint8) bool {
		q := NextPrime(int(rawQ%50) + 2)
		d := int(rawD%4) + 1
		limit := 1
		for i := 0; i <= d; i++ {
			limit *= q
		}
		m := int(rawM) % limit
		p := PolyFromInt(m, q, d)
		return p.Int() == m && p.Degree() == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyFromIntPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PolyFromInt with overflowing value did not panic")
			}
		}()
		PolyFromInt(1000, 3, 1) // 1000 ≥ 3² = 9
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PolyFromInt with negative value did not panic")
			}
		}()
		PolyFromInt(-1, 3, 1)
	}()
}

func TestEvalHorner(t *testing.T) {
	// p(x) = 2 + 3x + x² over F_7.
	p := Poly{Q: 7, Coeffs: []int{2, 3, 1}}
	want := []int{2, 6, 5, 6, 2, 0, 0} // p(0..6) mod 7
	for a, w := range want {
		if got := p.Eval(a); got != w {
			t.Errorf("p(%d) = %d, want %d", a, got, w)
		}
	}
	// Negative and ≥ q inputs reduce mod q.
	if p.Eval(-1) != p.Eval(6) || p.Eval(8) != p.Eval(1) {
		t.Error("Eval does not reduce argument modulo q")
	}
}

func TestAgreementsBound(t *testing.T) {
	// Distinct degree-≤d polynomials agree on at most d points.
	f := func(rawA, rawB uint16, rawQ, rawD uint8) bool {
		q := NextPrime(int(rawQ%30) + 5)
		d := int(rawD%3) + 1
		limit := 1
		for i := 0; i <= d; i++ {
			limit *= q
		}
		a := PolyFromInt(int(rawA)%limit, q, d)
		b := PolyFromInt(int(rawB)%limit, q, d)
		agr := a.Agreements(b)
		if a.Equal(b) {
			return agr == q
		}
		return agr <= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPointValueRoundTrip(t *testing.T) {
	f := func(rawA, rawV, rawQ uint8) bool {
		q := int(rawQ%100) + 2
		a := int(rawA) % q
		v := int(rawV) % q
		code := PointValue(a, v, q)
		if code < 0 || code >= q*q {
			return false
		}
		ga, gv := SplitPointValue(code, q)
		return ga == a && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEqualIgnoresTrailingZeros(t *testing.T) {
	a := Poly{Q: 5, Coeffs: []int{1, 2}}
	b := Poly{Q: 5, Coeffs: []int{1, 2, 0, 0}}
	c := Poly{Q: 5, Coeffs: []int{1, 2, 1}}
	if !a.Equal(b) {
		t.Error("polynomials differing only in trailing zeros should be equal")
	}
	if a.Equal(c) {
		t.Error("distinct polynomials reported equal")
	}
	d := Poly{Q: 7, Coeffs: []int{1, 2}}
	if a.Equal(d) {
		t.Error("polynomials over different fields reported equal")
	}
}

func BenchmarkPolyEval(b *testing.B) {
	p := PolyFromInt(123456, 101, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Eval(i % 101)
	}
}
