package graph

import (
	"math/rand"
	"testing"
)

func TestDegreesMatchesDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := GNP(40, 0.2, rng)
	deg := g.Degrees()
	if len(deg) != g.N() {
		t.Fatalf("Degrees length %d, want %d", len(deg), g.N())
	}
	sum := 0
	for v := 0; v < g.N(); v++ {
		if deg[v] != g.Degree(v) {
			t.Errorf("Degrees()[%d] = %d, Degree = %d", v, deg[v], g.Degree(v))
		}
		sum += deg[v]
	}
	if sum != 2*g.M() {
		t.Errorf("degree sum %d, want 2m = %d", sum, 2*g.M())
	}
	// The slice is a copy: mutating it must not corrupt the graph.
	if g.N() > 0 {
		deg[0] = -1
		if g.Degree(0) == -1 {
			t.Error("Degrees returned an aliased slice")
		}
	}
}

func TestCSRMatchesNeighbors(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":    New(0),
		"isolated": New(5),
		"ring":     Ring(9),
		"complete": Complete(6),
		"gnp":      GNP(30, 0.15, rand.New(rand.NewSource(3))),
	}
	for name, g := range graphs {
		rowPtr, col := g.CSR()
		if len(rowPtr) != g.N()+1 {
			t.Fatalf("%s: rowPtr length %d, want %d", name, len(rowPtr), g.N()+1)
		}
		if rowPtr[g.N()] != 2*g.M() || len(col) != 2*g.M() {
			t.Fatalf("%s: rowPtr[n]=%d len(col)=%d, want 2m=%d", name, rowPtr[g.N()], len(col), 2*g.M())
		}
		for v := 0; v < g.N(); v++ {
			row := col[rowPtr[v]:rowPtr[v+1]]
			nbrs := g.Neighbors(v)
			if len(row) != len(nbrs) {
				t.Fatalf("%s: node %d row length %d, want %d", name, v, len(row), len(nbrs))
			}
			for i := range row {
				if row[i] != nbrs[i] {
					t.Errorf("%s: node %d csr row %v != neighbors %v", name, v, row, nbrs)
					break
				}
			}
		}
	}
}
