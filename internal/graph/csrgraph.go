package graph

import (
	"errors"
	"fmt"
	"sort"
)

// CSR is an immutable simple undirected graph in compressed-sparse-row
// form: the sorted adjacency lists of vertices 0..n-1 concatenated into
// one flat column array, with row offsets held as int64 so directed
// edge (arc) counts beyond 2³¹ stay representable even on platforms
// where int is 32 bits. It is the native topology representation of
// the web-scale simulation path: generators stream edges directly into
// the two arrays (see StreamCSR and stream.go), the simulator's
// network, router and inbox arena index it without ever materializing
// per-node slices or adjacency maps, and a 10⁷-node instance costs
// exactly 8 bytes per vertex of row offsets plus 8 bytes per arc of
// column storage.
//
// The column array itself is indexed by int, so a build whose arc
// count exceeds the platform's int range is refused with
// ErrCSROverflow instead of silently wrapping — see checkArcCount for
// the guard and its regression test.
type CSR struct {
	n      int
	rowPtr []int64 // len n+1; row v is col[rowPtr[v]:rowPtr[v+1]]
	col    []int   // sorted neighbor ids, concatenated in vertex order
}

// ErrCSROverflow is returned when a CSR build's arc count does not fit
// the platform's int (the index type of the column array). On 64-bit
// platforms this is unreachable in practice; on 32-bit platforms it
// turns the latent offset truncation beyond 2³¹ arcs into a refusal.
var ErrCSROverflow = errors.New("graph: CSR arc count overflows int indexing")

// ErrParallelEdge is returned when a streamed build emits the same
// undirected edge twice.
var ErrParallelEdge = errors.New("graph: parallel edge")

// ErrStreamDiverged is returned when the two passes of a streamed
// build emit different edge sequences; EdgeStream producers must be
// replayable.
var ErrStreamDiverged = errors.New("graph: edge stream not replayable")

// maxIntArcs is the largest arc count the column array can index.
const maxIntArcs = int64(^uint(0) >> 1)

// checkArcCount is the int32/int overflow guard for CSR offset
// indexing: arcs is the directed-edge count about to be used as a
// column length, and limit is the platform's maximum int (parameterized
// so the 2³¹ boundary is testable on 64-bit builds).
func checkArcCount(arcs, limit int64) error {
	if arcs < 0 || arcs > limit {
		return fmt.Errorf("%w: %d arcs, index limit %d", ErrCSROverflow, arcs, limit)
	}
	return nil
}

// EdgeStream is a deterministic, replayable edge producer: it calls
// emit exactly once per undirected edge {u, v}. StreamCSR invokes the
// stream twice — a counting pass that sizes the row offsets and a fill
// pass that writes the column array — and both passes must produce the
// identical edge sequence (generators achieve this by reseeding their
// RNG inside the stream function).
type EdgeStream func(emit func(u, v int))

// StreamCSR builds a CSR graph on n vertices from a replayable edge
// stream without materializing adjacency maps, per-node slices, or an
// intermediate edge list: the counting pass accumulates degrees
// directly into the row-offset array, the fill pass places each arc at
// its row cursor (reusing the offset array as the cursor and shifting
// it back afterwards), and rows that arrive out of order are sorted in
// place. Self-loops, out-of-range endpoints, duplicate edges, and
// non-replayable streams are errors.
func StreamCSR(n int, stream EdgeStream) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative vertex count %d", ErrVertexRange, n)
	}
	rowPtr := make([]int64, n+1)
	var streamErr error
	edges := int64(0)
	stream(func(u, v int) {
		if streamErr != nil {
			return
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			streamErr = fmt.Errorf("%w: edge {%d,%d} in graph on %d vertices", ErrVertexRange, u, v, n)
			return
		}
		if u == v {
			streamErr = fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
			return
		}
		rowPtr[u+1]++
		rowPtr[v+1]++
		edges++
	})
	if streamErr != nil {
		return nil, streamErr
	}
	arcs := 2 * edges
	if err := checkArcCount(arcs, maxIntArcs); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		rowPtr[v+1] += rowPtr[v]
	}
	col := make([]int, arcs)
	filled := int64(0)
	stream(func(u, v int) {
		if streamErr != nil {
			return
		}
		// Divergence detection is best-effort: a fill pass that emits a
		// different sequence than the counting pass is caught when it
		// overruns a cursor, changes the total arc count, or breaks the
		// sorted/duplicate-free row invariant below.
		if u < 0 || u >= n || v < 0 || v >= n || u == v ||
			rowPtr[u] >= arcs || rowPtr[v] >= arcs || filled+2 > arcs {
			streamErr = ErrStreamDiverged
			return
		}
		col[rowPtr[u]] = v
		rowPtr[u]++
		col[rowPtr[v]] = u
		rowPtr[v]++
		filled += 2
	})
	if streamErr != nil {
		return nil, streamErr
	}
	if filled != arcs {
		return nil, fmt.Errorf("%w: counted %d arcs, filled %d", ErrStreamDiverged, arcs, filled)
	}
	// Each row cursor now sits at its row's end, i.e. rowPtr[v] holds
	// what rowPtr[v+1] should be; shift right to restore the offsets
	// (copy is overlap-safe).
	copy(rowPtr[1:], rowPtr[:n])
	rowPtr[0] = 0
	c := &CSR{n: n, rowPtr: rowPtr, col: col}
	for v := 0; v < n; v++ {
		row := c.Row(v)
		if !sort.IntsAreSorted(row) {
			sort.Ints(row)
		}
		for i := 1; i < len(row); i++ {
			if row[i] == row[i-1] {
				return nil, fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, v, row[i])
			}
		}
	}
	return c, nil
}

// CSRFromGraph converts an adjacency-list graph to CSR form. The
// returned CSR owns fresh arrays; the graph is left normalized but
// otherwise untouched.
func CSRFromGraph(g *Graph) *CSR {
	g.Normalize()
	n := g.N()
	rowPtr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		rowPtr[v+1] = rowPtr[v] + int64(len(g.adj[v]))
	}
	col := make([]int, rowPtr[n])
	for v := 0; v < n; v++ {
		copy(col[rowPtr[v]:rowPtr[v+1]], g.adj[v])
	}
	return &CSR{n: n, rowPtr: rowPtr, col: col}
}

// N returns the number of vertices.
func (c *CSR) N() int { return c.n }

// M returns the number of undirected edges.
func (c *CSR) M() int64 { return c.rowPtr[c.n] / 2 }

// Arcs returns the directed-edge (delivery-slot) count 2·M.
func (c *CSR) Arcs() int64 { return c.rowPtr[c.n] }

// Degree returns the degree of v.
func (c *CSR) Degree(v int) int { return int(c.rowPtr[v+1] - c.rowPtr[v]) }

// RowStart returns the offset of v's row in the column array. The
// simulator's inbox arena uses it to mirror the CSR layout exactly.
func (c *CSR) RowStart(v int) int64 { return c.rowPtr[v] }

// Row returns v's sorted neighbor list as a subslice of the shared
// column array: zero-copy, owned by the CSR, and must not be modified.
func (c *CSR) Row(v int) []int { return c.col[c.rowPtr[v]:c.rowPtr[v+1]] }

// Neighbors is Row under the name the adjacency-list Graph uses, so a
// CSR satisfies the same read-only topology interfaces (repair.Heal,
// the incremental service) without conversion.
func (c *CSR) Neighbors(v int) []int { return c.Row(v) }

// HasEdge reports whether the edge {u, v} is present, by binary search
// over the shorter of the two rows.
func (c *CSR) HasEdge(u, v int) bool {
	if u < 0 || u >= c.n || v < 0 || v >= c.n || u == v {
		return false
	}
	a, b := u, v
	if c.Degree(a) > c.Degree(b) {
		a, b = b, a
	}
	row := c.Row(a)
	i := sort.SearchInts(row, b)
	return i < len(row) && row[i] == b
}

// MaxDegree returns Δ as defined in the paper: max(2, max degree).
func (c *CSR) MaxDegree() int {
	d := c.RawMaxDegree()
	if d < 2 {
		return 2
	}
	return d
}

// RawMaxDegree returns the actual maximum vertex degree.
func (c *CSR) RawMaxDegree() int {
	d := 0
	for v := 0; v < c.n; v++ {
		if dv := c.Degree(v); dv > d {
			d = dv
		}
	}
	return d
}

// Fingerprint returns the same 64-bit FNV-1a structure hash as
// Graph.Fingerprint: a CSR and a Graph with identical labeled
// structure produce identical fingerprints, which is what lets the
// streaming-build fuzz tests and the sharded-execution conformance
// checks compare the two representations byte-for-byte.
func (c *CSR) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x int) {
		u := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	mix(c.n)
	for v := 0; v < c.n; v++ {
		mix(c.Degree(v))
		for _, w := range c.Row(v) {
			mix(w)
		}
	}
	return h
}

// Graph materializes an adjacency-list copy of the CSR. It exists for
// the validation and diagnostics paths that predate the CSR-native
// substrate (proper-coloring checks, induced subgraphs); it allocates
// per-node slices and a full copy of the column data, so scale paths
// must not call it.
func (c *CSR) Graph() *Graph {
	g := New(c.n)
	g.edges = int(c.M())
	for v := 0; v < c.n; v++ {
		g.adj[v] = append([]int(nil), c.Row(v)...)
	}
	g.sorted = true
	return g
}

// Validate checks the CSR invariants — monotone offsets, sorted
// duplicate-free rows, no self-loops, in-range neighbors, symmetry —
// and returns an error describing the first violation. The large-n
// generator property tests run it on million-node streamed builds.
func (c *CSR) Validate() error {
	if len(c.rowPtr) != c.n+1 || c.rowPtr[0] != 0 {
		return fmt.Errorf("graph: CSR rowPtr malformed (len %d, first %d)", len(c.rowPtr), c.rowPtr[0])
	}
	if c.rowPtr[c.n] != int64(len(c.col)) {
		return fmt.Errorf("graph: CSR rowPtr[n]=%d, len(col)=%d", c.rowPtr[c.n], len(c.col))
	}
	for v := 0; v < c.n; v++ {
		if c.rowPtr[v] > c.rowPtr[v+1] {
			return fmt.Errorf("graph: CSR offsets decrease at vertex %d", v)
		}
		row := c.Row(v)
		prev := -1
		for _, w := range row {
			if w == v {
				return fmt.Errorf("%w at vertex %d", ErrSelfLoop, v)
			}
			if w < 0 || w >= c.n {
				return fmt.Errorf("%w: neighbor %d of %d", ErrVertexRange, w, v)
			}
			if w == prev {
				return fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, v, w)
			}
			if w < prev {
				return fmt.Errorf("graph: CSR row %d not sorted", v)
			}
			prev = w
			if !c.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric adjacency %d->%d", v, w)
			}
		}
	}
	return nil
}

// String returns a short human-readable summary.
func (c *CSR) String() string {
	return fmt.Sprintf("CSR(n=%d, m=%d, Δ=%d)", c.n, c.M(), c.RawMaxDegree())
}
