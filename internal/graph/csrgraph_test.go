package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildReference constructs the map/adjacency-list reference graph by
// replaying the same edge stream through AddEdge, the build path the
// streamed CSR must match byte-for-byte.
func buildReference(t *testing.T, n int, stream EdgeStream) *Graph {
	t.Helper()
	g := New(n)
	stream(func(u, v int) { g.MustAddEdge(u, v) })
	g.Normalize()
	return g
}

// assertCSREqualsGraph checks the streamed CSR against the reference:
// identical rowPtr/col content and identical structure fingerprints.
func assertCSREqualsGraph(t *testing.T, c *CSR, g *Graph) {
	t.Helper()
	if c.N() != g.N() {
		t.Fatalf("n: csr %d, graph %d", c.N(), g.N())
	}
	if c.M() != int64(g.M()) {
		t.Fatalf("m: csr %d, graph %d", c.M(), g.M())
	}
	rowPtr, col := g.CSR()
	if int64(len(col)) != c.Arcs() {
		t.Fatalf("arcs: csr %d, graph %d", c.Arcs(), len(col))
	}
	for v := 0; v < g.N(); v++ {
		if int64(rowPtr[v]) != c.rowPtr[v] {
			t.Fatalf("rowPtr[%d]: csr %d, graph %d", v, c.rowPtr[v], rowPtr[v])
		}
		row := c.Row(v)
		ref := col[rowPtr[v]:rowPtr[v+1]]
		if len(row) != len(ref) {
			t.Fatalf("row %d length: csr %d, graph %d", v, len(row), len(ref))
		}
		for i := range ref {
			if row[i] != ref[i] {
				t.Fatalf("row %d slot %d: csr %d, graph %d", v, i, row[i], ref[i])
			}
		}
	}
	if cf, gf := c.Fingerprint(), g.Fingerprint(); cf != gf {
		t.Fatalf("fingerprint: csr %x, graph %x", cf, gf)
	}
}

func TestCSRFromGraphMatchesGraph(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":    New(0),
		"isolated": New(7),
		"ring":     Ring(11),
		"complete": Complete(6),
		"gnp":      GNP(40, 0.12, rand.New(rand.NewSource(3))),
		"powerlaw": PowerLaw(50, 3, rand.New(rand.NewSource(4))),
	}
	for name, g := range graphs {
		c := CSRFromGraph(g)
		t.Run(name, func(t *testing.T) {
			assertCSREqualsGraph(t, c, g)
			if err := c.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

func TestCSRAccessors(t *testing.T) {
	g := GNP(60, 0.1, rand.New(rand.NewSource(9)))
	c := CSRFromGraph(g)
	if c.MaxDegree() != g.MaxDegree() || c.RawMaxDegree() != g.RawMaxDegree() {
		t.Fatalf("degree mismatch: csr (%d,%d), graph (%d,%d)",
			c.MaxDegree(), c.RawMaxDegree(), g.MaxDegree(), g.RawMaxDegree())
	}
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if c.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) diverges", u, v)
			}
		}
		if c.Degree(u) != g.Degree(u) {
			t.Fatalf("Degree(%d): csr %d, graph %d", u, c.Degree(u), g.Degree(u))
		}
	}
	// Out-of-range and self queries are false, not panics.
	if c.HasEdge(-1, 2) || c.HasEdge(2, 500) || c.HasEdge(3, 3) {
		t.Fatal("out-of-range HasEdge returned true")
	}
	back := c.Graph()
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatal("Graph() round-trip changed the structure")
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("materialized graph invalid: %v", err)
	}
}

func TestStreamCSRRejectsBadStreams(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		stream EdgeStream
		want   error
	}{
		{"self-loop", 4, func(emit func(u, v int)) { emit(2, 2) }, ErrSelfLoop},
		{"out of range", 4, func(emit func(u, v int)) { emit(0, 9) }, ErrVertexRange},
		{"negative", 4, func(emit func(u, v int)) { emit(-1, 2) }, ErrVertexRange},
		{"parallel edge", 4, func(emit func(u, v int)) { emit(0, 1); emit(1, 0) }, ErrParallelEdge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := StreamCSR(tc.n, tc.stream); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestStreamCSRDetectsDivergence feeds a stream that emits different
// edges on its second invocation; the builder must refuse it instead
// of producing a corrupted CSR.
func TestStreamCSRDetectsDivergence(t *testing.T) {
	pass := 0
	diverging := func(emit func(u, v int)) {
		pass++
		if pass == 1 {
			emit(0, 1)
			emit(1, 2)
		} else {
			emit(0, 1) // second edge missing
		}
	}
	if _, err := StreamCSR(3, diverging); !errors.Is(err, ErrStreamDiverged) {
		t.Fatalf("err = %v, want ErrStreamDiverged", err)
	}
}

// TestCSROffsetOverflowGuard is the regression test for the int32/int
// offset-indexing boundary: with a simulated 32-bit index limit, an
// arc count of 2³¹−1 passes the guard and 2³¹ is refused, so a build
// that would silently truncate offsets on a 32-bit platform errors out
// instead.
func TestCSROffsetOverflowGuard(t *testing.T) {
	const limit32 = int64(math.MaxInt32)
	if err := checkArcCount(limit32, limit32); err != nil {
		t.Fatalf("2³¹−1 arcs must pass a 32-bit guard: %v", err)
	}
	if err := checkArcCount(limit32+1, limit32); !errors.Is(err, ErrCSROverflow) {
		t.Fatalf("2³¹ arcs must trip a 32-bit guard, got %v", err)
	}
	if err := checkArcCount(-1, limit32); !errors.Is(err, ErrCSROverflow) {
		t.Fatalf("negative arc count must trip the guard, got %v", err)
	}
	// The platform guard in StreamCSR uses the real int limit.
	if err := checkArcCount(123, maxIntArcs); err != nil {
		t.Fatalf("small arc count tripped the platform guard: %v", err)
	}
}
