package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// Digraph is an edge-oriented view of an undirected graph: every edge
// of the underlying graph is given exactly one direction. The oriented
// list defective coloring problems (Section 3 of the paper) take such
// an orientation as input; the arbdefective problems produce one as
// output.
type Digraph struct {
	g   *Graph
	out [][]int
	in  [][]int
}

// Underlying returns the undirected graph this orientation is over.
func (d *Digraph) Underlying() *Graph { return d.g }

// N returns the number of vertices.
func (d *Digraph) N() int { return d.g.n }

// Out returns the sorted out-neighbor list of v (owned by the digraph;
// read-only for callers).
func (d *Digraph) Out(v int) []int { return d.out[v] }

// In returns the sorted in-neighbor list of v (owned by the digraph;
// read-only for callers).
func (d *Digraph) In(v int) []int { return d.in[v] }

// Outdeg returns the out-degree of v.
func (d *Digraph) Outdeg(v int) int { return len(d.out[v]) }

// Beta returns β_v := max(1, outdeg(v)), the paper's Section 2
// convention that keeps slack conditions well defined for sinks.
func (d *Digraph) Beta(v int) int {
	if len(d.out[v]) == 0 {
		return 1
	}
	return len(d.out[v])
}

// MaxBeta returns β(G) := max_v β_v.
func (d *Digraph) MaxBeta() int {
	b := 1
	for v := range d.out {
		if len(d.out[v]) > b {
			b = len(d.out[v])
		}
	}
	return b
}

// HasArc reports whether the edge {u,v} is oriented u → v.
func (d *Digraph) HasArc(u, v int) bool {
	if u < 0 || u >= d.g.n || v < 0 || v >= d.g.n {
		return false
	}
	lst := d.out[u]
	i := sort.SearchInts(lst, v)
	return i < len(lst) && lst[i] == v
}

// OrientByRank orients each edge {u,v} from the higher-ranked endpoint
// to the lower-ranked one: u → v iff rank[u] > rank[v]. Ranks must be
// distinct per adjacent pair (typically a permutation or unique IDs);
// equal ranks on an edge are an error because the edge would be left
// unoriented.
//
// This matches the paper's greedy convention of orienting edges toward
// earlier-processed (lower-rank) nodes, which bounds out-degrees by the
// number of already-processed neighbors.
func OrientByRank(g *Graph, rank []int) (*Digraph, error) {
	if len(rank) != g.n {
		return nil, fmt.Errorf("graph: rank length %d != n %d", len(rank), g.n)
	}
	g.Normalize()
	d := &Digraph{g: g, out: make([][]int, g.n), in: make([][]int, g.n)}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				switch {
				case rank[u] > rank[v]:
					d.out[u] = append(d.out[u], v)
					d.in[v] = append(d.in[v], u)
				case rank[v] > rank[u]:
					d.out[v] = append(d.out[v], u)
					d.in[u] = append(d.in[u], v)
				default:
					return nil, fmt.Errorf("graph: edge {%d,%d} has equal ranks %d", u, v, rank[u])
				}
			}
		}
	}
	d.sortLists()
	return d, nil
}

// OrientByID orients every edge toward the smaller vertex id. It is
// the canonical deterministic orientation used as a default in tests
// and examples.
func OrientByID(g *Graph) *Digraph {
	rank := make([]int, g.n)
	for v := range rank {
		rank[v] = v
	}
	d, err := OrientByRank(g, rank)
	if err != nil {
		// Unreachable: identity ranks are distinct.
		panic(err)
	}
	return d
}

// OrientRandom orients every edge in a uniformly random direction
// drawn from rng.
func OrientRandom(g *Graph, rng *rand.Rand) *Digraph {
	g.Normalize()
	d := &Digraph{g: g, out: make([][]int, g.n), in: make([][]int, g.n)}
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				a, b := u, v
				if rng.Intn(2) == 0 {
					a, b = v, u
				}
				d.out[a] = append(d.out[a], b)
				d.in[b] = append(d.in[b], a)
			}
		}
	}
	d.sortLists()
	return d
}

// OrientByDegeneracy orients every edge along a degeneracy order so
// that the maximum out-degree equals the degeneracy of g — the
// smallest possible maximum out-degree over all acyclic orientations.
func OrientByDegeneracy(g *Graph) *Digraph {
	_, order := Degeneracy(g)
	// order[i] is the i-th vertex removed; orient edges from
	// later-removed to earlier-removed so out-neighbors of v are the
	// neighbors still present when v was removed... inverted: the
	// degeneracy guarantee is that when v is removed, it has at most k
	// remaining neighbors; those must be v's OUT-neighbors, and they
	// are removed after v. So orient v → u iff v is removed before u.
	pos := make([]int, g.n)
	for i, v := range order {
		pos[v] = i
	}
	rank := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		rank[v] = g.n - pos[v] // earlier-removed ⇒ higher rank ⇒ arcs point outward from it
	}
	d, err := OrientByRank(g, rank)
	if err != nil {
		panic(err) // unreachable: positions are a permutation
	}
	return d
}

// OrientArbitraryFrom builds a Digraph over g from an explicit arc
// set: arcs[i] = (u, v) means u → v. Every edge of g must appear in
// exactly one direction.
func OrientArbitraryFrom(g *Graph, arcs [][2]int) (*Digraph, error) {
	g.Normalize()
	if len(arcs) != g.edges {
		return nil, fmt.Errorf("graph: %d arcs for %d edges", len(arcs), g.edges)
	}
	d := &Digraph{g: g, out: make([][]int, g.n), in: make([][]int, g.n)}
	seen := make(map[[2]int]bool, len(arcs))
	for _, a := range arcs {
		u, v := a[0], a[1]
		if !g.HasEdge(u, v) {
			return nil, fmt.Errorf("graph: arc (%d,%d) is not an edge", u, v)
		}
		key := [2]int{u, v}
		if u > v {
			key = [2]int{v, u}
		}
		if seen[key] {
			return nil, fmt.Errorf("graph: edge {%d,%d} oriented twice", u, v)
		}
		seen[key] = true
		d.out[u] = append(d.out[u], v)
		d.in[v] = append(d.in[v], u)
	}
	d.sortLists()
	return d, nil
}

// InduceDigraph returns the subgraph of d induced by keep, preserving
// arc directions, together with the mapping orig[i] = original id of
// new vertex i.
func InduceDigraph(d *Digraph, keep []int) (*Digraph, []int) {
	sub, orig := d.g.InducedSubgraph(keep)
	index := make(map[int]int, len(keep))
	for i, v := range orig {
		index[v] = i
	}
	var arcs [][2]int
	for i, v := range orig {
		for _, w := range d.out[v] {
			if j, ok := index[w]; ok {
				arcs = append(arcs, [2]int{i, j})
			}
		}
	}
	sd, err := OrientArbitraryFrom(sub, arcs)
	if err != nil {
		panic(err) // unreachable: arcs are exactly the induced edges
	}
	return sd, orig
}

func (d *Digraph) sortLists() {
	for v := range d.out {
		sort.Ints(d.out[v])
		sort.Ints(d.in[v])
	}
}

// Validate checks that the orientation covers every edge exactly once.
func (d *Digraph) Validate() error {
	if err := d.g.Validate(); err != nil {
		return err
	}
	arcs := 0
	for u := 0; u < d.g.n; u++ {
		arcs += len(d.out[u])
		for _, v := range d.out[u] {
			if !d.g.HasEdge(u, v) {
				return fmt.Errorf("graph: arc (%d,%d) without underlying edge", u, v)
			}
			if d.HasArc(v, u) {
				return fmt.Errorf("graph: edge {%d,%d} oriented both ways", u, v)
			}
			// In-list consistency.
			lst := d.in[v]
			i := sort.SearchInts(lst, u)
			if i >= len(lst) || lst[i] != u {
				return fmt.Errorf("graph: arc (%d,%d) missing from in-list", u, v)
			}
		}
	}
	if arcs != d.g.edges {
		return fmt.Errorf("graph: %d arcs for %d edges", arcs, d.g.edges)
	}
	return nil
}

// String returns a short human-readable summary.
func (d *Digraph) String() string {
	return fmt.Sprintf("Digraph(n=%d, m=%d, β=%d)", d.g.n, d.g.edges, d.MaxBeta())
}
