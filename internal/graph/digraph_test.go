package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOrientByID(t *testing.T) {
	g := Ring(5)
	d := OrientByID(g)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every arc points to the smaller endpoint.
	for u := 0; u < 5; u++ {
		for _, v := range d.Out(u) {
			if v > u {
				t.Errorf("arc (%d,%d) points to larger id", u, v)
			}
		}
	}
	// Vertex 0 is a sink: its paper-convention β is still 1.
	if d.Outdeg(0) != 0 {
		t.Errorf("Outdeg(0) = %d, want 0", d.Outdeg(0))
	}
	if d.Beta(0) != 1 {
		t.Errorf("Beta(0) = %d, want 1 (paper convention)", d.Beta(0))
	}
}

func TestOrientByRankRejectsTies(t *testing.T) {
	g := Path(3)
	if _, err := OrientByRank(g, []int{1, 1, 2}); err == nil {
		t.Error("OrientByRank accepted tied ranks on an edge")
	}
	if _, err := OrientByRank(g, []int{1, 2}); err == nil {
		t.Error("OrientByRank accepted wrong rank length")
	}
}

func TestOrientationPartitionsEdges(t *testing.T) {
	f := func(seed int64, rawN, rawD uint8) bool {
		n := int(rawN%30) + 6
		dEdge := int(rawD%4) + 1
		if (n*dEdge)%2 != 0 {
			n++
		}
		rng := rand.New(rand.NewSource(seed))
		g := RandomRegular(n, dEdge, rng)
		for _, d := range []*Digraph{OrientByID(g), OrientRandom(g, rng), OrientByDegeneracy(g)} {
			if d.Validate() != nil {
				return false
			}
			// outdeg + indeg == degree at every vertex.
			for v := 0; v < n; v++ {
				if len(d.Out(v))+len(d.In(v)) != g.Degree(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOrientByDegeneracyAchievesDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range []*Graph{Ring(20), Grid(5, 6), GNP(40, 0.2, rng), Complete(8)} {
		k, _ := Degeneracy(g)
		d := OrientByDegeneracy(g)
		if got := d.MaxBeta(); got > k && !(g.M() == 0 && got == 1) {
			t.Errorf("%v: degeneracy orientation has β=%d > degeneracy %d", g, got, k)
		}
	}
}

func TestOrientArbitraryFrom(t *testing.T) {
	g := Path(3) // edges {0,1},{1,2}
	d, err := OrientArbitraryFrom(g, [][2]int{{1, 0}, {1, 2}})
	if err != nil {
		t.Fatalf("OrientArbitraryFrom: %v", err)
	}
	if d.Outdeg(1) != 2 || d.Outdeg(0) != 0 || d.Outdeg(2) != 0 {
		t.Error("arc set not respected")
	}
	if !d.HasArc(1, 0) || d.HasArc(0, 1) {
		t.Error("HasArc inconsistent with arc set")
	}

	if _, err := OrientArbitraryFrom(g, [][2]int{{0, 1}}); err == nil {
		t.Error("accepted incomplete arc set")
	}
	if _, err := OrientArbitraryFrom(g, [][2]int{{0, 1}, {1, 0}}); err == nil {
		t.Error("accepted doubly-oriented edge")
	}
	if _, err := OrientArbitraryFrom(g, [][2]int{{0, 1}, {0, 2}}); err == nil {
		t.Error("accepted arc that is not an edge")
	}
}

func TestMaxBeta(t *testing.T) {
	g := New(4) // no edges: β is 1 by convention
	d := OrientByID(g)
	if d.MaxBeta() != 1 {
		t.Errorf("MaxBeta(empty) = %d, want 1", d.MaxBeta())
	}
	star := New(5)
	for v := 1; v < 5; v++ {
		star.MustAddEdge(0, v)
	}
	// Orient all leaves toward the center: rank center lowest.
	dd, err := OrientByRank(star, []int{0, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dd.MaxBeta() != 1 {
		t.Errorf("star toward center: MaxBeta = %d, want 1", dd.MaxBeta())
	}
	// Orient all edges away from the center.
	dd2, err := OrientByRank(star, []int{10, 1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if dd2.MaxBeta() != 4 {
		t.Errorf("star from center: MaxBeta = %d, want 4", dd2.MaxBeta())
	}
}

func TestUnderlying(t *testing.T) {
	g := Ring(4)
	if OrientByID(g).Underlying() != g {
		t.Error("Underlying does not return the original graph")
	}
}
