package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// FuzzOrientRoundTrip feeds parsed edge lists through every
// orientation strategy and checks the structural invariants plus two
// round trips: arcs → OrientArbitraryFrom reproduces the orientation,
// and relabeling by a permutation and by its inverse restores the
// original graph.
func FuzzOrientRoundTrip(f *testing.F) {
	f.Add("3 3\n0 1\n1 2\n0 2\n", uint64(0))
	f.Add("5 4\n0 1\n1 2\n2 3\n3 4\n", uint64(1))
	f.Add("4 0\n", uint64(2))
	f.Add("1 0\n", uint64(3))
	f.Add("6 7\n0 1\n0 2\n1 2\n2 3\n3 4\n4 5\n3 5\n", uint64(4))
	f.Fuzz(func(t *testing.T, input string, mode uint64) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var d *Digraph
		switch mode % 3 {
		case 0:
			d = OrientByID(g)
		case 1:
			d = OrientByDegeneracy(g)
		case 2:
			d = OrientRandom(g, rand.New(rand.NewSource(int64(mode))))
		}
		// Every edge is oriented exactly one way, and Out/In agree.
		var arcs [][2]int
		outCount := 0
		for v := 0; v < d.N(); v++ {
			for _, u := range d.Out(v) {
				if !g.HasEdge(v, u) {
					t.Fatalf("arc %d->%d is not an edge", v, u)
				}
				for _, w := range d.Out(u) {
					if w == v {
						t.Fatalf("edge %d-%d oriented both ways", v, u)
					}
				}
				arcs = append(arcs, [2]int{v, u})
			}
			outCount += d.Outdeg(v)
			if got := d.Beta(v); got != max(1, d.Outdeg(v)) {
				t.Fatalf("Beta(%d) = %d with outdeg %d", v, got, d.Outdeg(v))
			}
		}
		if outCount != g.M() {
			t.Fatalf("%d arcs for %d edges", outCount, g.M())
		}
		// Arc round trip.
		d2, err := OrientArbitraryFrom(g, arcs)
		if err != nil {
			t.Fatalf("re-orienting own arcs: %v", err)
		}
		for v := 0; v < d.N(); v++ {
			a, b := d.Out(v), d2.Out(v)
			if len(a) != len(b) {
				t.Fatalf("node %d: out-degree changed %d -> %d", v, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("node %d: out set changed", v)
				}
			}
		}
		// Relabel round trip.
		perm := rand.New(rand.NewSource(int64(mode) + 1)).Perm(g.N())
		inv := make([]int, len(perm))
		for i, p := range perm {
			inv[p] = i
		}
		back := Relabel(Relabel(g, perm), inv)
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("relabel round trip changed shape")
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e[0], e[1]) {
				t.Fatalf("relabel round trip lost edge %v", e)
			}
		}
	})
}
