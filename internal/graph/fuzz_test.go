package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the parser never panics and that every
// accepted graph is structurally valid and round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("3 3\n0 1\n1 2\n0 2\n")
	f.Add("1 0\n")
	f.Add("# comment\n2 1\n0 1\n")
	f.Add("")
	f.Add("4 2\n0 1\n")
	f.Add("-1 -1\n")
	f.Add("2 1\n1 1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}
