package graph

import (
	"fmt"
	"math/rand"
)

// Ring returns the n-cycle (n ≥ 3). Rings are the classical hard
// instance for the Ω(log* n) lower bound and appear throughout the
// experiments.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: Ring needs n ≥ 3")
	}
	g := New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n)
	}
	g.Normalize()
	return g
}

// Path returns the path on n vertices (n ≥ 1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1)
	}
	g.Normalize()
	return g
}

// Complete returns K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	return g
}

// CompleteBipartite returns K_{a,b}: vertices 0..a-1 on one side,
// a..a+b-1 on the other.
func CompleteBipartite(a, b int) *Graph {
	g := New(a + b)
	for u := 0; u < a; u++ {
		for v := a; v < a+b; v++ {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	return g
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	g.Normalize()
	return g
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices.
func Hypercube(d int) *Graph {
	if d < 0 || d > 24 {
		panic("graph: Hypercube dimension out of range")
	}
	n := 1 << uint(d)
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << uint(b))
			if v < u {
				g.MustAddEdge(v, u)
			}
		}
	}
	g.Normalize()
	return g
}

// CompleteKaryTree returns a complete k-ary tree with the given number
// of levels (levels ≥ 1; one level is a single root).
func CompleteKaryTree(k, levels int) *Graph {
	if k < 1 || levels < 1 {
		panic("graph: CompleteKaryTree needs k ≥ 1 and levels ≥ 1")
	}
	n := 0
	width := 1
	for l := 0; l < levels; l++ {
		n += width
		width *= k
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(v, (v-1)/k)
	}
	g.Normalize()
	return g
}

// GNP returns an Erdős–Rényi random graph G(n, p) drawn from rng.
func GNP(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GNP probability %v out of [0,1]", p))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	g.Normalize()
	return g
}

// GNM returns a uniformly random simple graph with n vertices and m
// edges. It panics if m exceeds the number of possible edges.
func GNM(n, m int, rng *rand.Rand) *Graph {
	maxEdges := n * (n - 1) / 2
	if m < 0 || m > maxEdges {
		panic(fmt.Sprintf("graph: GNM needs 0 ≤ m ≤ %d, got %d", maxEdges, m))
	}
	g := New(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	g.Normalize()
	return g
}

// RandomRegular returns a random d-regular graph on n vertices. n·d
// must be even and 0 ≤ d < n. The graph is built deterministically as
// a circulant and then randomized by degree-preserving double-edge
// swaps, which always succeeds (unlike rejection sampling on the
// configuration model, which stalls for dense small graphs).
func RandomRegular(n, d int, rng *rand.Rand) *Graph {
	if d < 0 || d >= n || (n*d)%2 != 0 {
		panic(fmt.Sprintf("graph: RandomRegular(%d,%d) infeasible", n, d))
	}
	if d == 0 {
		return New(n)
	}
	g := circulant(n, d)
	// Randomize: attempt ~20 swaps per edge, maintaining the edge list
	// incrementally so the whole pass is O(m·Δ).
	edges := g.Edges()
	canon := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for attempt := 0; attempt < 20*len(edges); attempt++ {
		i1 := rng.Intn(len(edges))
		i2 := rng.Intn(len(edges))
		a, b := edges[i1][0], edges[i1][1]
		c, dd := edges[i2][0], edges[i2][1]
		if rng.Intn(2) == 0 {
			c, dd = dd, c
		}
		// Swap {a,b},{c,dd} → {a,c},{b,dd} when it keeps the graph simple.
		if a == c || a == dd || b == c || b == dd {
			continue
		}
		if g.HasEdge(a, c) || g.HasEdge(b, dd) {
			continue
		}
		g.RemoveEdge(a, b)
		g.RemoveEdge(c, dd)
		g.MustAddEdge(a, c)
		g.MustAddEdge(b, dd)
		edges[i1] = canon(a, c)
		edges[i2] = canon(b, dd)
	}
	g.Normalize()
	return g
}

// circulant returns the canonical d-regular circulant on n vertices:
// v is adjacent to v±k for k = 1..⌊d/2⌋, plus the antipodal vertex
// v + n/2 when d is odd (n is even in that case since n·d is even).
func circulant(n, d int) *Graph {
	g := New(n)
	for v := 0; v < n; v++ {
		for k := 1; k <= d/2; k++ {
			g.MustAddEdge(v, (v+k)%n)
		}
		if d%2 == 1 {
			g.MustAddEdge(v, (v+n/2)%n)
		}
	}
	return g
}

// PowerLaw returns a preferential-attachment graph (Barabási–Albert
// style): vertices arrive one at a time and attach to k existing
// vertices chosen proportionally to degree (+1 smoothing). Produces
// the skewed degree distributions used to stress per-node slack
// conditions.
func PowerLaw(n, k int, rng *rand.Rand) *Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("graph: PowerLaw(%d,%d) infeasible", n, k))
	}
	g := New(n)
	// Seed clique on k+1 vertices.
	targets := make([]int, 0, 2*n*k) // degree-weighted sampling pool
	for u := 0; u <= k; u++ {
		for v := u + 1; v <= k; v++ {
			g.MustAddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	for v := k + 1; v < n; v++ {
		chosen := make(map[int]bool, k)
		var order []int // insertion order, so edge insertion (and hence
		// future degree-weighted sampling) is deterministic — iterating
		// the map directly would randomize it per run.
		for len(chosen) < k {
			var t int
			if len(targets) == 0 || rng.Float64() < 0.05 {
				t = rng.Intn(v) // smoothing: occasionally uniform
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if t != v && !chosen[t] {
				chosen[t] = true
				order = append(order, t)
			}
		}
		for _, t := range order {
			g.MustAddEdge(v, t)
			targets = append(targets, v, t)
		}
	}
	g.Normalize()
	return g
}

// LineGraph returns the line graph L(g): one vertex per edge of g, two
// line-graph vertices adjacent iff the underlying edges share an
// endpoint. Also returns edgeOf, mapping line-graph vertex i to its
// underlying edge (u, v) with u < v. The line graph of any graph has
// neighborhood independence θ ≤ 2, which makes these the canonical
// workload for the Section 4 algorithms: a proper vertex coloring of
// L(g) is an edge coloring of g.
func LineGraph(g *Graph) (lg *Graph, edgeOf [][2]int) {
	g.Normalize()
	edgeOf = g.Edges()
	index := make(map[[2]int]int, len(edgeOf))
	for i, e := range edgeOf {
		index[e] = i
	}
	lg = New(len(edgeOf))
	edgeKey := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for v := 0; v < g.n; v++ {
		nb := g.adj[v]
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				e1 := index[edgeKey(v, nb[i])]
				e2 := index[edgeKey(v, nb[j])]
				lg.MustAddEdge(e1, e2)
			}
		}
	}
	lg.Normalize()
	return lg, edgeOf
}

// Disjoint union: Union returns the disjoint union of the given
// graphs, with the vertices of graphs[i] offset by the total size of
// the earlier graphs.
func Union(graphs ...*Graph) *Graph {
	total := 0
	for _, g := range graphs {
		total += g.n
	}
	out := New(total)
	offset := 0
	for _, g := range graphs {
		for _, e := range g.Edges() {
			out.MustAddEdge(e[0]+offset, e[1]+offset)
		}
		offset += g.n
	}
	out.Normalize()
	return out
}
