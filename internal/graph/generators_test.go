package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRing(t *testing.T) {
	g := Ring(5)
	if g.N() != 5 || g.M() != 5 {
		t.Fatalf("Ring(5): n=%d m=%d", g.N(), g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Errorf("Ring degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPathAndComplete(t *testing.T) {
	p := Path(6)
	if p.M() != 5 {
		t.Errorf("Path(6) has %d edges, want 5", p.M())
	}
	k := Complete(6)
	if k.M() != 15 {
		t.Errorf("K6 has %d edges, want 15", k.M())
	}
	if k.RawMaxDegree() != 5 {
		t.Errorf("K6 max degree %d, want 5", k.RawMaxDegree())
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(2, 3)
	if g.N() != 5 || g.M() != 6 {
		t.Fatalf("K23: n=%d m=%d", g.N(), g.M())
	}
	if g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Error("intra-side edge present")
	}
	if err := IsProperColoring(g, []int{0, 0, 1, 1, 1}); err != nil {
		t.Errorf("bipartition should be proper: %v", err)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("Grid(3,4): n=%d", g.N())
	}
	// m = rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17
	if g.M() != 17 {
		t.Fatalf("Grid(3,4): m=%d, want 17", g.M())
	}
	if g.RawMaxDegree() != 4 {
		t.Errorf("Grid max degree %d, want 4", g.RawMaxDegree())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.N() != 16 || g.M() != 32 {
		t.Fatalf("Q4: n=%d m=%d, want 16, 32", g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Errorf("Q4 degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	// Hypercubes are bipartite: parity coloring is proper.
	colors := make([]int, g.N())
	for v := range colors {
		x := v
		par := 0
		for x > 0 {
			par ^= x & 1
			x >>= 1
		}
		colors[v] = par
	}
	if err := IsProperColoring(g, colors); err != nil {
		t.Errorf("parity coloring of hypercube not proper: %v", err)
	}
}

func TestCompleteKaryTree(t *testing.T) {
	g := CompleteKaryTree(2, 3) // 1 + 2 + 4 = 7 vertices
	if g.N() != 7 || g.M() != 6 {
		t.Fatalf("binary tree: n=%d m=%d", g.N(), g.M())
	}
	k, _ := Degeneracy(g)
	if k != 1 {
		t.Errorf("tree degeneracy = %d, want 1", k)
	}
}

func TestRandomRegularDegrees(t *testing.T) {
	f := func(seed int64, rawN, rawD uint8) bool {
		n := int(rawN%40) + 6
		d := int(rawD%5) + 1
		if (n*d)%2 != 0 {
			n++
		}
		rng := rand.New(rand.NewSource(seed))
		g := RandomRegular(n, d, rng)
		if g.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomRegularZero(t *testing.T) {
	g := RandomRegular(10, 0, rand.New(rand.NewSource(1)))
	if g.M() != 0 {
		t.Errorf("0-regular graph has %d edges", g.M())
	}
}

func TestGNMEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GNM(20, 50, rng)
	if g.M() != 50 {
		t.Errorf("GNM(20,50) has %d edges", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPowerLawShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := PowerLaw(300, 3, rng)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment: every non-seed vertex has degree ≥ k,
	// and the max degree should be well above the minimum.
	minDeg := g.N()
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < minDeg {
			minDeg = g.Degree(v)
		}
	}
	if minDeg < 3 {
		t.Errorf("PowerLaw min degree %d < k=3", minDeg)
	}
	if g.RawMaxDegree() < 3*3 {
		t.Errorf("PowerLaw max degree %d suspiciously small (no skew)", g.RawMaxDegree())
	}
}

func TestLineGraphStructure(t *testing.T) {
	// L(C_n) = C_n.
	lg, edgeOf := LineGraph(Ring(6))
	if lg.N() != 6 || lg.M() != 6 {
		t.Fatalf("L(C6): n=%d m=%d, want 6,6", lg.N(), lg.M())
	}
	for v := 0; v < lg.N(); v++ {
		if lg.Degree(v) != 2 {
			t.Errorf("L(C6) degree(%d) = %d", v, lg.Degree(v))
		}
	}
	if len(edgeOf) != 6 {
		t.Fatalf("edgeOf length %d", len(edgeOf))
	}
	// L(K4): each of the 6 edges meets 4 others: 3-regular on 6? No —
	// in K4 each edge shares an endpoint with 4 other edges.
	lg4, _ := LineGraph(Complete(4))
	if lg4.N() != 6 {
		t.Fatalf("L(K4): n=%d", lg4.N())
	}
	for v := 0; v < lg4.N(); v++ {
		if lg4.Degree(v) != 4 {
			t.Errorf("L(K4) degree(%d) = %d, want 4", v, lg4.Degree(v))
		}
	}
	// L(star with k leaves) = K_k.
	lgs, _ := LineGraph(CompleteBipartite(1, 5))
	if lgs.N() != 5 || lgs.M() != 10 {
		t.Fatalf("L(K_{1,5}): n=%d m=%d, want K5", lgs.N(), lgs.M())
	}
}

func TestLineGraphAdjacencyMeaning(t *testing.T) {
	g := Grid(2, 3)
	lg, edgeOf := LineGraph(g)
	for u := 0; u < lg.N(); u++ {
		for _, v := range lg.Neighbors(u) {
			e1, e2 := edgeOf[u], edgeOf[v]
			share := e1[0] == e2[0] || e1[0] == e2[1] || e1[1] == e2[0] || e1[1] == e2[1]
			if !share {
				t.Errorf("line graph edge between disjoint edges %v and %v", e1, e2)
			}
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Ring(2)", func() { Ring(2) })
	mustPanic("GNP p>1", func() { GNP(5, 1.5, rand.New(rand.NewSource(1))) })
	mustPanic("RandomRegular odd", func() { RandomRegular(5, 3, rand.New(rand.NewSource(1))) })
	mustPanic("RandomRegular d≥n", func() { RandomRegular(4, 4, rand.New(rand.NewSource(1))) })
	mustPanic("GNM too many", func() { GNM(3, 10, rand.New(rand.NewSource(1))) })
	mustPanic("PowerLaw small", func() { PowerLaw(3, 3, rand.New(rand.NewSource(1))) })
	mustPanic("Hypercube(-1)", func() { Hypercube(-1) })
	mustPanic("KaryTree(0,1)", func() { CompleteKaryTree(0, 1) })
}

func TestGeneratorDeterminism(t *testing.T) {
	a := GNP(30, 0.3, rand.New(rand.NewSource(99)))
	b := GNP(30, 0.3, rand.New(rand.NewSource(99)))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}
