package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// GeometricGraph is a unit-disk graph: points in the unit square,
// adjacent iff their distance is at most the radius. Unit-disk graphs
// have neighborhood independence θ ≤ 5 (at most five pairwise-distant
// points fit in a disk around a center they are all adjacent to), so
// they are a natural realistic workload for the Section 4 algorithms —
// wireless networks are their classical motivation.
type GeometricGraph struct {
	*Graph
	X, Y   []float64
	Radius float64
}

// RandomGeometric returns a unit-disk graph on n uniformly random
// points in [0,1]² with the given connection radius.
func RandomGeometric(n int, radius float64, rng *rand.Rand) *GeometricGraph {
	if radius < 0 {
		panic(fmt.Sprintf("graph: negative radius %v", radius))
	}
	gg := &GeometricGraph{
		Graph:  New(n),
		X:      make([]float64, n),
		Y:      make([]float64, n),
		Radius: radius,
	}
	for v := 0; v < n; v++ {
		gg.X[v] = rng.Float64()
		gg.Y[v] = rng.Float64()
	}
	// Grid-bucket the points so edge construction is O(n + m) for
	// reasonable radii instead of O(n²).
	cell := radius
	if cell <= 0 || cell > 1 {
		cell = 1
	}
	cols := int(1/cell) + 1
	buckets := make(map[[2]int][]int)
	key := func(v int) [2]int {
		return [2]int{int(gg.X[v] / cell), int(gg.Y[v] / cell)}
	}
	for v := 0; v < n; v++ {
		k := key(v)
		buckets[k] = append(buckets[k], v)
	}
	r2 := radius * radius
	for v := 0; v < n; v++ {
		k := key(v)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				nk := [2]int{k[0] + dx, k[1] + dy}
				if nk[0] < 0 || nk[1] < 0 || nk[0] > cols || nk[1] > cols {
					continue
				}
				for _, u := range buckets[nk] {
					if u <= v {
						continue
					}
					ddx, ddy := gg.X[v]-gg.X[u], gg.Y[v]-gg.Y[u]
					if ddx*ddx+ddy*ddy <= r2 {
						gg.MustAddEdge(v, u)
					}
				}
			}
		}
	}
	gg.Normalize()
	return gg
}

// Distance returns the Euclidean distance between vertices u and v.
func (gg *GeometricGraph) Distance(u, v int) float64 {
	dx, dy := gg.X[u]-gg.X[v], gg.Y[u]-gg.Y[v]
	return math.Sqrt(dx*dx + dy*dy)
}
