package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomGeometricAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gg := RandomGeometric(150, 0.15, rng)
	if err := gg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Adjacency must be exactly the distance predicate.
	for u := 0; u < gg.N(); u++ {
		for v := u + 1; v < gg.N(); v++ {
			want := gg.Distance(u, v) <= gg.Radius
			if gg.HasEdge(u, v) != want {
				t.Fatalf("edge (%d,%d): HasEdge=%v dist=%v radius=%v",
					u, v, gg.HasEdge(u, v), gg.Distance(u, v), gg.Radius)
			}
		}
	}
}

func TestUnitDiskThetaAtMostFive(t *testing.T) {
	// The structural fact the Section 4 workloads rely on: unit-disk
	// graphs have neighborhood independence at most 5.
	f := func(seed int64, rawR uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		radius := 0.1 + float64(rawR%20)/100
		gg := RandomGeometric(60, radius, rng)
		if gg.RawMaxDegree() > 22 {
			return true // θ computation too slow; skip dense draws
		}
		return NeighborhoodIndependence(gg.Graph) <= 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRandomGeometricExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Radius 0: no edges.
	if g := RandomGeometric(30, 0, rng); g.M() != 0 {
		t.Errorf("radius 0 produced %d edges", g.M())
	}
	// Radius √2: complete graph.
	if g := RandomGeometric(20, 1.5, rng); g.M() != 20*19/2 {
		t.Errorf("radius 1.5 produced %d edges, want complete", g.M())
	}
	// Negative radius panics.
	defer func() {
		if recover() == nil {
			t.Error("negative radius did not panic")
		}
	}()
	RandomGeometric(5, -0.1, rng)
}

func TestRandomGeometricDeterministic(t *testing.T) {
	a := RandomGeometric(80, 0.12, rand.New(rand.NewSource(9)))
	b := RandomGeometric(80, 0.12, rand.New(rand.NewSource(9)))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
}
