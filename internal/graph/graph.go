// Package graph provides the graph substrate for the distributed
// coloring algorithms: simple undirected graphs, edge orientations
// (directed views used by the oriented list defective coloring
// problems), generators for the families the experiments run on, and
// structural properties (maximum degree, degeneracy, neighborhood
// independence).
//
// Vertices are integers 0..n-1. Graphs are simple: no self-loops, no
// parallel edges. Adjacency lists are kept sorted so that algorithms
// iterating over neighborhoods are deterministic.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrVertexRange is returned when an operation references a vertex
// outside [0, n).
var ErrVertexRange = errors.New("graph: vertex out of range")

// ErrSelfLoop is returned when an edge {v, v} is added.
var ErrSelfLoop = errors.New("graph: self-loop")

// Graph is a simple undirected graph with vertices 0..n-1.
type Graph struct {
	n      int
	adj    [][]int
	edges  int
	sorted bool
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int, n), sorted: true}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.edges }

// AddEdge inserts the undirected edge {u, v}. Adding an edge that is
// already present is a silent no-op, so generators can be written
// without duplicate bookkeeping. Self-loops and out-of-range vertices
// are errors.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: edge {%d,%d} in graph on %d vertices", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	g.sorted = false
	return nil
}

// MustAddEdge is AddEdge that panics on error; generators use it for
// edges they construct themselves.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// RemoveEdge deletes the undirected edge {u, v} and reports whether it
// was present.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	remove := func(list []int, x int) []int {
		for i, w := range list {
			if w == x {
				return append(list[:i], list[i+1:]...)
			}
		}
		return list
	}
	g.adj[u] = remove(g.adj[u], v)
	g.adj[v] = remove(g.adj[v], u)
	g.edges--
	return true
}

// HasEdge reports whether the edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	// Search the shorter list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	if g.sorted {
		lst := g.adj[a]
		i := sort.SearchInts(lst, b)
		return i < len(lst) && lst[i] == b
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Normalize sorts all adjacency lists. Generators call it once after
// construction; AddEdge marks the graph dirty, and accessors that rely
// on sortedness call Normalize lazily.
func (g *Graph) Normalize() {
	if g.sorted {
		return
	}
	for v := range g.adj {
		sort.Ints(g.adj[v])
	}
	g.sorted = true
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice
// is owned by the graph and must not be modified; callers that need a
// mutable copy should use CopyNeighbors.
func (g *Graph) Neighbors(v int) []int {
	g.Normalize()
	return g.adj[v]
}

// CopyNeighbors returns a fresh copy of v's sorted adjacency list.
func (g *Graph) CopyNeighbors(v int) []int {
	g.Normalize()
	out := make([]int, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// Degrees returns the degree sequence deg[v] = |N(v)| as a fresh
// slice. Consumers that size per-node buffers from the topology (the
// simulator's inbox arena, batch schedulers) use it instead of calling
// Degree in a loop.
func (g *Graph) Degrees() []int {
	deg := make([]int, g.n)
	for v := range g.adj {
		deg[v] = len(g.adj[v])
	}
	return deg
}

// CSR returns the graph in compressed-sparse-row form: col holds the
// sorted adjacency lists concatenated in vertex order, and rowPtr has
// n+1 entries with v's neighbors at col[rowPtr[v]:rowPtr[v+1]]. The
// returned slices are fresh copies owned by the caller. rowPtr[n] is
// 2·M, the total directed-edge (delivery-slot) count.
func (g *Graph) CSR() (rowPtr, col []int) {
	g.Normalize()
	rowPtr = make([]int, g.n+1)
	col = make([]int, 0, 2*g.edges)
	for v := 0; v < g.n; v++ {
		rowPtr[v] = len(col)
		col = append(col, g.adj[v]...)
	}
	rowPtr[g.n] = len(col)
	return rowPtr, col
}

// Edges returns all edges as pairs (u, v) with u < v, sorted
// lexicographically.
func (g *Graph) Edges() [][2]int {
	g.Normalize()
	out := make([][2]int, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// MaxDegree returns Δ(G) as defined in the paper: the maximum of 2 and
// the maximum vertex degree. (The paper's convention avoids degenerate
// log Δ terms.)
func (g *Graph) MaxDegree() int {
	d := 2
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// RawMaxDegree returns the actual maximum vertex degree (0 for an
// empty graph), without the paper's max(2, ·) convention.
func (g *Graph) RawMaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// InducedSubgraph returns the subgraph induced by keep (a set of
// vertices), together with the mapping orig[i] = original id of new
// vertex i.
func (g *Graph) InducedSubgraph(keep []int) (sub *Graph, orig []int) {
	g.Normalize()
	index := make(map[int]int, len(keep))
	orig = make([]int, len(keep))
	for i, v := range keep {
		if v < 0 || v >= g.n {
			panic(fmt.Sprintf("graph: InducedSubgraph vertex %d out of range", v))
		}
		if _, dup := index[v]; dup {
			panic(fmt.Sprintf("graph: InducedSubgraph duplicate vertex %d", v))
		}
		index[v] = i
		orig[i] = v
	}
	sub = New(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := index[w]; ok && i < j {
				sub.MustAddEdge(i, j)
			}
		}
	}
	sub.Normalize()
	return sub, orig
}

// FilterEdges returns a copy of g that keeps only edges for which keep
// returns true.
func (g *Graph) FilterEdges(keep func(u, v int) bool) *Graph {
	g.Normalize()
	out := New(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v && keep(u, v) {
				out.MustAddEdge(u, v)
			}
		}
	}
	out.Normalize()
	return out
}

// Relabel returns the isomorphic graph in which vertex v of g becomes
// perm[v]. perm must be a permutation of 0..n-1.
func Relabel(g *Graph, perm []int) *Graph {
	if len(perm) != g.N() {
		panic(fmt.Sprintf("graph: permutation length %d != n %d", len(perm), g.N()))
	}
	seen := make([]bool, g.N())
	for _, p := range perm {
		if p < 0 || p >= g.N() || seen[p] {
			panic("graph: Relabel argument is not a permutation")
		}
		seen[p] = true
	}
	out := New(g.N())
	for _, e := range g.Edges() {
		out.MustAddEdge(perm[e[0]], perm[e[1]])
	}
	out.Normalize()
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	out.edges = g.edges
	out.sorted = g.sorted
	for v := range g.adj {
		out.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return out
}

// Fingerprint returns a 64-bit FNV-1a hash of the graph's structure
// (vertex count plus the CSR adjacency stream). Two graphs have equal
// fingerprints iff they are byte-identical as labeled graphs, which is
// what lets the workload cache's tests — and diagnostics over shared
// read-only builds — assert that a reused graph really is the same
// object-for-object structure a fresh generation would produce.
func (g *Graph) Fingerprint() uint64 {
	g.Normalize()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x int) {
		u := uint64(x)
		for i := 0; i < 8; i++ {
			h ^= u & 0xff
			h *= prime64
			u >>= 8
		}
	}
	mix(g.n)
	for v := 0; v < g.n; v++ {
		mix(len(g.adj[v]))
		for _, w := range g.adj[v] {
			mix(w)
		}
	}
	return h
}

// Validate checks internal invariants (symmetry, simplicity) and
// returns an error describing the first violation. It is used by tests
// and by generators with nontrivial construction logic.
func (g *Graph) Validate() error {
	g.Normalize()
	count := 0
	for u := 0; u < g.n; u++ {
		prev := -1
		for _, v := range g.adj[u] {
			if v == u {
				return fmt.Errorf("%w at vertex %d", ErrSelfLoop, u)
			}
			if v < 0 || v >= g.n {
				return fmt.Errorf("%w: neighbor %d of %d", ErrVertexRange, v, u)
			}
			if v == prev {
				return fmt.Errorf("graph: parallel edge {%d,%d}", u, v)
			}
			prev = v
			if !g.HasEdge(v, u) {
				return fmt.Errorf("graph: asymmetric adjacency %d->%d", u, v)
			}
			if u < v {
				count++
			}
		}
	}
	if count != g.edges {
		return fmt.Errorf("graph: edge count %d does not match adjacency (%d)", g.edges, count)
	}
	return nil
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, Δ=%d)", g.n, g.edges, g.RawMaxDegree())
}
