package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge(0,1): %v", err)
	}
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatalf("duplicate AddEdge should be a no-op, got %v", err)
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge reports nonexistent edge")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop error = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(0, 3); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out-of-range error = %v, want ErrVertexRange", err)
	}
	if err := g.AddEdge(-1, 0); !errors.Is(err, ErrVertexRange) {
		t.Errorf("negative vertex error = %v, want ErrVertexRange", err)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 4)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(0, 3)
	g.MustAddEdge(0, 1)
	nb := g.Neighbors(0)
	want := []int{1, 2, 3, 4}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
		}
	}
}

func TestCopyNeighborsIndependence(t *testing.T) {
	g := Ring(5)
	cp := g.CopyNeighbors(0)
	cp[0] = 99
	if g.Neighbors(0)[0] == 99 {
		t.Error("CopyNeighbors aliases internal storage")
	}
}

func TestEdgesListing(t *testing.T) {
	g := New(4)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 3)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {1, 3}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	sub, orig := g.InducedSubgraph([]int{1, 3, 4})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced K3: n=%d m=%d", sub.N(), sub.M())
	}
	wantOrig := []int{1, 3, 4}
	for i := range wantOrig {
		if orig[i] != wantOrig[i] {
			t.Fatalf("orig = %v, want %v", orig, wantOrig)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("induced subgraph invalid: %v", err)
	}
}

func TestInducedSubgraphEmpty(t *testing.T) {
	g := Complete(4)
	sub, orig := g.InducedSubgraph(nil)
	if sub.N() != 0 || sub.M() != 0 || len(orig) != 0 {
		t.Error("empty induced subgraph not empty")
	}
}

func TestFilterEdges(t *testing.T) {
	g := Complete(4)
	// Keep only edges incident to vertex 0.
	f := g.FilterEdges(func(u, v int) bool { return u == 0 || v == 0 })
	if f.M() != 3 {
		t.Fatalf("filtered M = %d, want 3", f.M())
	}
	if f.N() != 4 {
		t.Fatalf("filtered N = %d, want 4 (vertex set preserved)", f.N())
	}
	if err := f.Validate(); err != nil {
		t.Errorf("filtered graph invalid: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := Ring(6)
	c := g.Clone()
	c.MustAddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Error("Clone shares storage with original")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original corrupted by clone mutation: %v", err)
	}
}

func TestValidateCatchesAsymmetry(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	// Corrupt: remove the back-pointer.
	g.adj[1] = nil
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted asymmetric adjacency")
	}
}

func TestMaxDegreeConvention(t *testing.T) {
	// The paper's Δ(G) is max(2, max degree).
	if d := Path(2).MaxDegree(); d != 2 {
		t.Errorf("MaxDegree(P2) = %d, want 2 (paper convention)", d)
	}
	if d := Path(2).RawMaxDegree(); d != 1 {
		t.Errorf("RawMaxDegree(P2) = %d, want 1", d)
	}
	if d := New(5).MaxDegree(); d != 2 {
		t.Errorf("MaxDegree(empty) = %d, want 2", d)
	}
	if d := Complete(7).MaxDegree(); d != 6 {
		t.Errorf("MaxDegree(K7) = %d, want 6", d)
	}
}

func TestRandomGraphsValidQuick(t *testing.T) {
	// Property: every generated random graph passes Validate and the
	// HasEdge/Edges views agree.
	f := func(seed int64, rawN uint8, rawP uint8) bool {
		n := int(rawN%40) + 2
		p := float64(rawP%100) / 100
		rng := rand.New(rand.NewSource(seed))
		g := GNP(n, p, rng)
		if g.Validate() != nil {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnion(t *testing.T) {
	u := Union(Ring(3), Ring(4))
	if u.N() != 7 || u.M() != 7 {
		t.Fatalf("Union: n=%d m=%d, want 7,7", u.N(), u.M())
	}
	if u.HasEdge(2, 3) {
		t.Error("Union connected disjoint components")
	}
	if !u.HasEdge(3, 4) || !u.HasEdge(0, 1) {
		t.Error("Union lost edges")
	}
}

func TestStringSummaries(t *testing.T) {
	g := Ring(5)
	if got := g.String(); got != "Graph(n=5, m=5, Δ=2)" {
		t.Errorf("String() = %q", got)
	}
	d := OrientByID(g)
	if got := d.String(); got != "Digraph(n=5, m=5, β=2)" {
		t.Errorf("Digraph.String() = %q", got)
	}
}
