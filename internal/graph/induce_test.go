package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInduceDigraphBasics(t *testing.T) {
	g := Complete(5)
	d := OrientByID(g)
	sub, orig := InduceDigraph(d, []int{1, 3, 4})
	if sub.N() != 3 {
		t.Fatalf("sub N = %d", sub.N())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Arc directions preserved: in the original, higher id → lower id.
	for i := 0; i < 3; i++ {
		for _, j := range sub.Out(i) {
			if orig[i] < orig[j] {
				t.Errorf("arc (%d,%d) flipped: orig %d → %d", i, j, orig[i], orig[j])
			}
		}
	}
}

func TestInduceDigraphQuick(t *testing.T) {
	// Property: the induced digraph has exactly the arcs between kept
	// vertices, in the original direction.
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%20) + 5
		rng := rand.New(rand.NewSource(seed))
		g := GNP(n, 0.4, rng)
		d := OrientRandom(g, rng)
		keep := make([]int, 0, n/2)
		for v := 0; v < n; v += 2 {
			keep = append(keep, v)
		}
		sub, orig := InduceDigraph(d, keep)
		if sub.Validate() != nil {
			return false
		}
		// Every sub arc exists in the original.
		for i := 0; i < sub.N(); i++ {
			for _, j := range sub.Out(i) {
				if !d.HasArc(orig[i], orig[j]) {
					return false
				}
			}
		}
		// Every original arc between kept vertices appears.
		index := make(map[int]int)
		for i, v := range orig {
			index[v] = i
		}
		for _, v := range keep {
			for _, w := range d.Out(v) {
				if j, ok := index[w]; ok {
					if !sub.HasArc(index[v], j) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInduceDigraphEmpty(t *testing.T) {
	g := Ring(4)
	d := OrientByID(g)
	sub, orig := InduceDigraph(d, nil)
	if sub.N() != 0 || len(orig) != 0 {
		t.Error("empty induce not empty")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := Ring(5)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("existing edge not removed")
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("double removal reported success")
	}
	if g.M() != 4 || g.HasEdge(0, 1) {
		t.Errorf("after removal: m=%d", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
