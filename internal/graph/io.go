package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// MaxEdgeListVertices bounds the vertex count ReadEdgeList accepts, so
// a corrupt header cannot force a multi-gigabyte allocation.
const MaxEdgeListVertices = 1 << 24

// WriteEdgeList serializes g in the common whitespace edge-list
// format: a header line "n m" followed by one "u v" line per edge
// (u < v, sorted). Lines starting with '#' are comments on input.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
			return fmt.Errorf("graph: writing edge: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Blank lines
// and '#' comments are skipped; the declared edge count is validated.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var g *Graph
	declared := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var a, b int
		if _, err := fmt.Sscanf(line, "%d %d", &a, &b); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if g == nil {
			if a < 0 || b < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header", lineNo)
			}
			if a > MaxEdgeListVertices {
				return nil, fmt.Errorf("graph: line %d: header declares %d vertices (limit %d)", lineNo, a, MaxEdgeListVertices)
			}
			if a > 0 && b > a*(a-1)/2 {
				return nil, fmt.Errorf("graph: line %d: header declares %d edges for %d vertices", lineNo, b, a)
			}
			g = New(a)
			declared = b
			continue
		}
		if err := g.AddEdge(a, b); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if g.M() != declared {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", declared, g.M())
	}
	g.Normalize()
	return g, nil
}
