package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%30) + 2
		rng := rand.New(rand.NewSource(seed))
		g := GNP(n, 0.3, rng)
		var buf bytes.Buffer
		if WriteEdgeList(&buf, g) != nil {
			return false
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if got.N() != g.N() || got.M() != g.M() {
			return false
		}
		ea, eb := g.Edges(), got.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListCommentsAndBlanks(t *testing.T) {
	in := `# a triangle
3 3

0 1
# middle comment
1 2
0 2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Errorf("got n=%d m=%d", g.N(), g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "x y\n",
		"negative header": "-1 0\n",
		"edge mismatch":   "3 2\n0 1\n",
		"self loop":       "3 1\n1 1\n",
		"out of range":    "3 1\n0 5\n",
		"bad edge":        "3 1\nzero one\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadEdgeListHeaderLimits(t *testing.T) {
	// Absurd vertex counts must be rejected before allocation (found
	// by FuzzReadEdgeList).
	if _, err := ReadEdgeList(strings.NewReader("455555555 1\n0 1\n")); err == nil {
		t.Error("accepted header beyond MaxEdgeListVertices")
	}
	// More edges than a simple graph can have.
	if _, err := ReadEdgeList(strings.NewReader("3 100\n0 1\n")); err == nil {
		t.Error("accepted infeasible edge count")
	}
}

func TestWriteEdgeListFormat(t *testing.T) {
	g := Path(3)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	want := "3 2\n0 1\n1 2\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}
