package graph

// Overlay is the mutable delta-adjacency layer over an immutable CSR:
// the incremental coloring service's topology under streaming churn.
// Reads on untouched vertices are zero-copy views into the base CSR's
// column array — the 10⁶-node substrate stays flat — while a vertex
// touched by an insert or delete gets a private copy-on-write row
// (sorted, duplicate-free, exactly the CSR row invariants). Vertices
// appended beyond the base are pure patch rows; removing a vertex
// detaches all incident edges and leaves an isolated tombstone so ids
// stay stable for the color arrays layered on top.
//
// The patch map grows with the touched-vertex count, not the update
// count; Compact folds everything back into a fresh CSR (via the same
// two-pass StreamCSR build as the streaming generators) so a
// long-running service can bound overlay memory by compacting
// periodically.
//
// An Overlay is not safe for concurrent use; the service layer
// serializes writers and hands readers immutable snapshots instead.

import (
	"fmt"
	"sort"
)

// Overlay layers per-vertex insert/delete patches over a base CSR.
type Overlay struct {
	base *CSR
	// rows holds the private adjacency of every patched vertex,
	// including all vertices ≥ base.N(). A present entry fully
	// replaces the base row (copy-on-write semantics).
	rows map[int][]int
	n    int
	arcs int64
}

// NewOverlay returns an overlay with no patches over base.
func NewOverlay(base *CSR) *Overlay {
	return &Overlay{base: base, rows: make(map[int][]int), n: base.N(), arcs: base.Arcs()}
}

// N returns the current vertex count (base plus appended vertices).
func (o *Overlay) N() int { return o.n }

// M returns the current undirected edge count.
func (o *Overlay) M() int64 { return o.arcs / 2 }

// Arcs returns the directed-edge count 2·M.
func (o *Overlay) Arcs() int64 { return o.arcs }

// Patched returns the number of vertices with a private row — the
// overlay memory the next Compact reclaims.
func (o *Overlay) Patched() int { return len(o.rows) }

// Base returns the immutable CSR under the patches.
func (o *Overlay) Base() *CSR { return o.base }

// Neighbors returns v's sorted neighbor list: a zero-copy view into
// the base CSR for unpatched vertices, the private patch row
// otherwise. The slice is owned by the overlay and must not be
// modified; it is valid until the next mutation of v or Compact.
func (o *Overlay) Neighbors(v int) []int {
	if row, ok := o.rows[v]; ok {
		return row
	}
	return o.base.Row(v)
}

// Degree returns the degree of v.
func (o *Overlay) Degree(v int) int {
	if row, ok := o.rows[v]; ok {
		return len(row)
	}
	return o.base.Degree(v)
}

// HasEdge reports whether the edge {u, v} is present, by binary search
// on u's current row.
func (o *Overlay) HasEdge(u, v int) bool {
	if u < 0 || u >= o.n || v < 0 || v >= o.n || u == v {
		return false
	}
	row := o.Neighbors(u)
	i := sort.SearchInts(row, v)
	return i < len(row) && row[i] == v
}

// row returns v's private patch row, creating it as a copy of the base
// row on first mutation.
func (o *Overlay) row(v int) []int {
	if r, ok := o.rows[v]; ok {
		return r
	}
	var r []int
	if v < o.base.N() {
		r = append([]int(nil), o.base.Row(v)...)
	}
	o.rows[v] = r
	return r
}

// AddNode appends an isolated vertex and returns its id.
func (o *Overlay) AddNode() int {
	v := o.n
	o.n++
	o.rows[v] = nil
	return v
}

// AddEdge inserts the undirected edge {u, v}. Self-loops, out-of-range
// endpoints and duplicate edges are errors (the CSR invariants).
func (o *Overlay) AddEdge(u, v int) error {
	if u < 0 || u >= o.n || v < 0 || v >= o.n {
		return fmt.Errorf("%w: edge {%d,%d} in overlay on %d vertices", ErrVertexRange, u, v, o.n)
	}
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, u, v)
	}
	o.insert(u, v)
	o.insert(v, u)
	o.arcs += 2
	return nil
}

// RemoveEdge deletes the undirected edge {u, v}; it reports whether
// the edge was present.
func (o *Overlay) RemoveEdge(u, v int) bool {
	if !o.HasEdge(u, v) {
		return false
	}
	o.remove(u, v)
	o.remove(v, u)
	o.arcs -= 2
	return true
}

// RemoveNode detaches every edge incident to v, leaving v as an
// isolated tombstone (ids never shift). It returns v's former
// neighbors — the churn dirty set the caller reclassifies — or nil
// when v is out of range or already isolated.
func (o *Overlay) RemoveNode(v int) []int {
	if v < 0 || v >= o.n {
		return nil
	}
	old := o.Neighbors(v)
	if len(old) == 0 {
		return nil
	}
	former := append([]int(nil), old...)
	for _, w := range former {
		o.remove(w, v)
	}
	o.rows[v] = []int{}
	o.arcs -= 2 * int64(len(former))
	return former
}

// insert places w into v's private row, keeping it sorted.
func (o *Overlay) insert(v, w int) {
	row := o.row(v)
	i := sort.SearchInts(row, w)
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = w
	o.rows[v] = row
}

// remove deletes w from v's private row.
func (o *Overlay) remove(v, w int) {
	row := o.row(v)
	i := sort.SearchInts(row, w)
	if i < len(row) && row[i] == w {
		o.rows[v] = append(row[:i], row[i+1:]...)
	}
}

// EdgeStream returns a replayable stream of the overlay's current
// edges ({u,v} with u < v, emitted in ascending u then v) — the input
// Compact feeds to the two-pass CSR build. Mutating the overlay
// between the two replays is the caller's bug (StreamCSR detects the
// divergence).
func (o *Overlay) EdgeStream() EdgeStream {
	return func(emit func(u, v int)) {
		for u := 0; u < o.n; u++ {
			for _, v := range o.Neighbors(u) {
				if v > u {
					emit(u, v)
				}
			}
		}
	}
}

// Compact folds base plus patches into a fresh CSR and resets the
// overlay onto it: patch memory is released and every subsequent read
// is a zero-copy base read again.
func (o *Overlay) Compact() (*CSR, error) {
	c, err := StreamCSR(o.n, o.EdgeStream())
	if err != nil {
		return nil, err
	}
	o.base = c
	o.rows = make(map[int][]int)
	o.arcs = c.Arcs()
	return c, nil
}

// Graph materializes an adjacency-list copy of the overlay's current
// state — validation and differential-test paths only (it allocates
// per-node slices).
func (o *Overlay) Graph() *Graph {
	g := New(o.n)
	for v := 0; v < o.n; v++ {
		for _, w := range o.Neighbors(v) {
			if w > v {
				g.MustAddEdge(v, w)
			}
		}
	}
	g.Normalize()
	return g
}

// Validate checks the overlay invariants: sorted duplicate-free rows,
// no self-loops, in-range neighbors, symmetry, and an arc count
// matching the rows.
func (o *Overlay) Validate() error {
	var arcs int64
	for v := 0; v < o.n; v++ {
		row := o.Neighbors(v)
		arcs += int64(len(row))
		prev := -1
		for _, w := range row {
			if w == v {
				return fmt.Errorf("%w at vertex %d", ErrSelfLoop, v)
			}
			if w < 0 || w >= o.n {
				return fmt.Errorf("%w: neighbor %d of %d", ErrVertexRange, w, v)
			}
			if w == prev {
				return fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, v, w)
			}
			if w < prev {
				return fmt.Errorf("graph: overlay row %d not sorted", v)
			}
			prev = w
			if !o.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric overlay adjacency %d->%d", v, w)
			}
		}
	}
	if arcs != o.arcs {
		return fmt.Errorf("graph: overlay arc count %d, rows sum to %d", o.arcs, arcs)
	}
	return nil
}

// String returns a short human-readable summary.
func (o *Overlay) String() string {
	return fmt.Sprintf("Overlay(n=%d, m=%d, patched=%d)", o.n, o.M(), len(o.rows))
}
