package graph

// Overlay is the mutable delta-adjacency layer over an immutable CSR:
// the incremental coloring service's topology under streaming churn.
// Reads on untouched vertices are zero-copy views into the base CSR's
// column array — the 10⁶-node substrate stays flat — while a vertex
// touched by an insert or delete gets a private copy-on-write row
// (sorted, duplicate-free, exactly the CSR row invariants). Vertices
// appended beyond the base are pure patch rows; removing a vertex
// detaches all incident edges and leaves an isolated tombstone so ids
// stay stable for the color arrays layered on top.
//
// The patch map grows with the touched-vertex count, not the update
// count; Compact folds everything back into a fresh CSR (via the same
// two-pass StreamCSR build as the streaming generators) so a
// long-running service can bound overlay memory by compacting
// periodically. The service moves that fold off the write path with
// Freeze (a shallow immutable copy a background goroutine compacts)
// and Rebase (swap the finished CSR in, keeping only the rows mutated
// since the freeze).
//
// In snapshot mode (EnableSnapshots, used by the service) rows become
// generational copy-on-write: CommitDelta seals every row mutated in
// the batch just applied and hands them out as an immutable delta map
// for a lock-free TopoView, and the first mutation of a sealed row in
// a later batch clones it first. Replaced private row buffers are
// recycled through a small pool so steady-state churn does not
// allocate per insert.
//
// An Overlay is not safe for concurrent use; the service layer
// serializes writers and hands readers immutable snapshots instead.

import (
	"fmt"
)

// Overlay layers per-vertex insert/delete patches over a base CSR.
type Overlay struct {
	base *CSR
	// rows holds the private adjacency of every patched vertex,
	// including all vertices ≥ base.N(). A present entry fully
	// replaces the base row (copy-on-write semantics).
	rows map[int][]int
	n    int
	arcs int64

	// Snapshot-mode state: gen counts committed batches (0 = snapshots
	// disabled), rowGen[v] is the batch generation that owns v's row
	// buffer, touched lists the rows mutated in the current batch, and
	// freezeTouched (non-nil while a background compaction is in
	// flight) accumulates rows mutated since the freeze.
	gen          int
	rowGen       map[int]int
	touched      []int
	freezeTouched map[int]bool

	// pool recycles retired private row buffers (rows replaced before
	// ever being published) so steady-state churn stays allocation-free
	// on the insert path.
	pool [][]int
}

// NewOverlay returns an overlay with no patches over base.
func NewOverlay(base *CSR) *Overlay {
	return &Overlay{base: base, rows: make(map[int][]int), n: base.N(), arcs: base.Arcs()}
}

// EnableSnapshots switches the overlay into generational copy-on-write
// mode: from now on CommitDelta seals each batch's mutated rows for
// publication in immutable TopoViews. Must be called before any
// mutation is published.
func (o *Overlay) EnableSnapshots() {
	if o.gen == 0 {
		o.gen = 1
		o.rowGen = make(map[int]int)
	}
}

// N returns the current vertex count (base plus appended vertices).
func (o *Overlay) N() int { return o.n }

// M returns the current undirected edge count.
func (o *Overlay) M() int64 { return o.arcs / 2 }

// Arcs returns the directed-edge count 2·M.
func (o *Overlay) Arcs() int64 { return o.arcs }

// Patched returns the number of vertices with a private row — the
// overlay memory the next Compact reclaims.
func (o *Overlay) Patched() int { return len(o.rows) }

// Base returns the immutable CSR under the patches.
func (o *Overlay) Base() *CSR { return o.base }

// Neighbors returns v's sorted neighbor list: a zero-copy view into
// the base CSR for unpatched vertices, the private patch row
// otherwise. The slice is owned by the overlay and must not be
// modified; it is valid until the next mutation of v or Compact.
func (o *Overlay) Neighbors(v int) []int {
	if row, ok := o.rows[v]; ok {
		return row
	}
	return o.base.Row(v)
}

// Degree returns the degree of v.
func (o *Overlay) Degree(v int) int {
	if row, ok := o.rows[v]; ok {
		return len(row)
	}
	return o.base.Degree(v)
}

// HasEdge reports whether the edge {u, v} is present, by binary search
// on u's current row.
func (o *Overlay) HasEdge(u, v int) bool {
	if u < 0 || u >= o.n || v < 0 || v >= o.n || u == v {
		return false
	}
	row := o.Neighbors(u)
	i := searchInts(row, v)
	return i < len(row) && row[i] == v
}

// markTouched records that v's row buffer is owned by the current
// batch generation (snapshot mode only).
func (o *Overlay) markTouched(v int) {
	if o.gen == 0 {
		return
	}
	if o.rowGen[v] != o.gen {
		o.rowGen[v] = o.gen
		o.touched = append(o.touched, v)
	}
	if o.freezeTouched != nil {
		o.freezeTouched[v] = true
	}
}

// getBuf returns a row buffer with capacity ≥ want, recycling the
// pool when possible.
func (o *Overlay) getBuf(want int) []int {
	for i := len(o.pool) - 1; i >= 0; i-- {
		if cap(o.pool[i]) >= want {
			r := o.pool[i]
			o.pool[i] = o.pool[len(o.pool)-1]
			o.pool = o.pool[:len(o.pool)-1]
			return r[:0]
		}
	}
	return make([]int, 0, want+4)
}

// recycle returns a retired private buffer to the pool. Only buffers
// that were never published into a snapshot may be recycled.
func (o *Overlay) recycle(r []int) {
	if cap(r) == 0 || len(o.pool) >= 64 {
		return
	}
	o.pool = append(o.pool, r[:0])
}

// cloneRow copies src into a pooled private buffer.
func (o *Overlay) cloneRow(src []int) []int {
	r := o.getBuf(len(src) + 1)
	return append(r, src...)
}

// row returns v's private patch row, creating it as a copy of the base
// row on first mutation, and re-cloning a row sealed by a published
// snapshot (copy-on-write across batch generations).
func (o *Overlay) row(v int) []int {
	if r, ok := o.rows[v]; ok {
		if o.gen != 0 && o.rowGen[v] != o.gen {
			r = o.cloneRow(r)
			o.rows[v] = r
			o.markTouched(v)
		}
		return r
	}
	var r []int
	if v < o.base.N() {
		r = o.cloneRow(o.base.Row(v))
	}
	o.rows[v] = r
	o.markTouched(v)
	return r
}

// AddNode appends an isolated vertex and returns its id.
func (o *Overlay) AddNode() int {
	v := o.n
	o.n++
	o.rows[v] = nil
	o.markTouched(v)
	return v
}

// AddEdge inserts the undirected edge {u, v}. Self-loops, out-of-range
// endpoints and duplicate edges are errors (the CSR invariants).
func (o *Overlay) AddEdge(u, v int) error {
	if u < 0 || u >= o.n || v < 0 || v >= o.n {
		return fmt.Errorf("%w: edge {%d,%d} in overlay on %d vertices", ErrVertexRange, u, v, o.n)
	}
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if o.HasEdge(u, v) {
		return fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, u, v)
	}
	o.insert(u, v)
	o.insert(v, u)
	o.arcs += 2
	return nil
}

// RemoveEdge deletes the undirected edge {u, v}; it reports whether
// the edge was present.
func (o *Overlay) RemoveEdge(u, v int) bool {
	if !o.HasEdge(u, v) {
		return false
	}
	o.remove(u, v)
	o.remove(v, u)
	o.arcs -= 2
	return true
}

// RemoveNode detaches every edge incident to v, leaving v as an
// isolated tombstone (ids never shift). It returns v's former
// neighbors — the churn dirty set the caller reclassifies — or nil
// when v is out of range or already isolated.
func (o *Overlay) RemoveNode(v int) []int {
	if v < 0 || v >= o.n {
		return nil
	}
	old := o.Neighbors(v)
	if len(old) == 0 {
		return nil
	}
	former := append([]int(nil), old...)
	for _, w := range former {
		o.remove(w, v)
	}
	if r, ok := o.rows[v]; ok && (o.gen == 0 || o.rowGen[v] == o.gen) {
		o.recycle(r)
	}
	o.rows[v] = []int{}
	o.markTouched(v)
	o.arcs -= 2 * int64(len(former))
	return former
}

// insert places w into v's private row, keeping it sorted. A growth
// past capacity retires the old private buffer into the pool.
func (o *Overlay) insert(v, w int) {
	row := o.row(v)
	i := searchInts(row, w)
	if len(row) == cap(row) {
		grown := o.getBuf(2*len(row) + 1)
		grown = append(grown, row...)
		o.recycle(row)
		row = grown
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = w
	o.rows[v] = row
}

// remove deletes w from v's private row.
func (o *Overlay) remove(v, w int) {
	row := o.row(v)
	i := searchInts(row, w)
	if i < len(row) && row[i] == w {
		o.rows[v] = append(row[:i], row[i+1:]...)
	}
}

// CommitDelta seals the current batch's mutated rows and returns them
// as an immutable delta map for TopoView.Extend (nil when the batch
// mutated nothing). Snapshot mode only; after the call the returned
// rows are copy-on-write — the next mutation of any of them clones
// first.
func (o *Overlay) CommitDelta() map[int][]int {
	if o.gen == 0 {
		return nil
	}
	var delta map[int][]int
	if len(o.touched) > 0 {
		delta = make(map[int][]int, len(o.touched))
		for _, v := range o.touched {
			delta[v] = o.rows[v]
		}
	}
	o.touched = o.touched[:0]
	o.gen++
	return delta
}

// RowsSnapshot returns a shallow copy of the patch map (row slices
// shared). Only valid at a batch boundary in snapshot mode, when every
// row is sealed.
func (o *Overlay) RowsSnapshot() map[int][]int {
	rows := make(map[int][]int, len(o.rows))
	for v, r := range o.rows {
		rows[v] = r
	}
	return rows
}

// Freeze returns an immutable shallow copy of the overlay's current
// state — base reference, patch map, counts — for a background
// Compact, and begins recording the rows mutated afterwards so Rebase
// can rebase them onto the finished CSR. Only valid at a batch
// boundary in snapshot mode (every row sealed by CommitDelta); the
// returned overlay must not be mutated except via Compact.
func (o *Overlay) Freeze() *Overlay {
	frozen := &Overlay{base: o.base, rows: o.RowsSnapshot(), n: o.n, arcs: o.arcs}
	o.freezeTouched = make(map[int]bool)
	return frozen
}

// Rebase swaps the overlay onto a CSR compacted from a Freeze copy:
// rows untouched since the freeze are baked into c and dropped, rows
// touched since stay as patches over the new base. Counts are already
// maintained incrementally and carry over.
func (o *Overlay) Rebase(c *CSR) {
	rows := make(map[int][]int, len(o.freezeTouched))
	for v := range o.freezeTouched {
		rows[v] = o.rows[v]
	}
	o.base = c
	o.rows = rows
	o.freezeTouched = nil
	if o.gen != 0 {
		// Every surviving row is sealed (published); fresh rowGen forces
		// copy-on-write on the next mutation.
		o.rowGen = make(map[int]int, len(rows))
	}
	o.pool = nil
}

// EdgeStream returns a replayable stream of the overlay's current
// edges ({u,v} with u < v, emitted in ascending u then v) — the input
// Compact feeds to the two-pass CSR build. Mutating the overlay
// between the two replays is the caller's bug (StreamCSR detects the
// divergence).
func (o *Overlay) EdgeStream() EdgeStream {
	return func(emit func(u, v int)) {
		for u := 0; u < o.n; u++ {
			for _, v := range o.Neighbors(u) {
				if v > u {
					emit(u, v)
				}
			}
		}
	}
}

// Compact folds base plus patches into a fresh CSR and resets the
// overlay onto it: patch memory is released and every subsequent read
// is a zero-copy base read again.
func (o *Overlay) Compact() (*CSR, error) {
	c, err := StreamCSR(o.n, o.EdgeStream())
	if err != nil {
		return nil, err
	}
	o.base = c
	o.rows = make(map[int][]int)
	if o.gen != 0 {
		o.rowGen = make(map[int]int)
		o.touched = o.touched[:0]
	}
	o.freezeTouched = nil
	o.pool = nil
	o.arcs = c.Arcs()
	return c, nil
}

// Graph materializes an adjacency-list copy of the overlay's current
// state — validation and differential-test paths only (it allocates
// per-node slices).
func (o *Overlay) Graph() *Graph {
	g := New(o.n)
	for v := 0; v < o.n; v++ {
		for _, w := range o.Neighbors(v) {
			if w > v {
				g.MustAddEdge(v, w)
			}
		}
	}
	g.Normalize()
	return g
}

// Validate checks the overlay invariants: sorted duplicate-free rows,
// no self-loops, in-range neighbors, symmetry, and an arc count
// matching the rows.
func (o *Overlay) Validate() error {
	var arcs int64
	for v := 0; v < o.n; v++ {
		row := o.Neighbors(v)
		arcs += int64(len(row))
		prev := -1
		for _, w := range row {
			if w == v {
				return fmt.Errorf("%w at vertex %d", ErrSelfLoop, v)
			}
			if w < 0 || w >= o.n {
				return fmt.Errorf("%w: neighbor %d of %d", ErrVertexRange, w, v)
			}
			if w == prev {
				return fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, v, w)
			}
			if w < prev {
				return fmt.Errorf("graph: overlay row %d not sorted", v)
			}
			prev = w
			if !o.HasEdge(w, v) {
				return fmt.Errorf("graph: asymmetric overlay adjacency %d->%d", v, w)
			}
		}
	}
	if arcs != o.arcs {
		return fmt.Errorf("graph: overlay arc count %d, rows sum to %d", o.arcs, arcs)
	}
	return nil
}

// String returns a short human-readable summary.
func (o *Overlay) String() string {
	return fmt.Sprintf("Overlay(n=%d, m=%d, patched=%d)", o.n, o.M(), len(o.rows))
}

// RegionBounds partitions vertices [0, n) into s contiguous ranges
// balanced by base-CSR degree mass, mirroring the receiver-range
// sharding of the workers driver (internal/sim/shard.go): boundary i
// is the first vertex whose base row starts at or past arcs·i/s.
// Vertices appended beyond the base carry no base mass and land in the
// last range. Boundaries are a function of (base, n, s) only, so every
// batch at a given shard count partitions identically.
func RegionBounds(base *CSR, n, s int) []int {
	if s > n && n > 0 {
		s = n
	}
	if s < 1 {
		s = 1
	}
	b := make([]int, s+1)
	arcs := base.Arcs()
	bn := base.N()
	v := 0
	for i := 1; i < s; i++ {
		target := arcs * int64(i) / int64(s)
		for v < bn && base.RowStart(v) < target {
			v++
		}
		b[i] = v
	}
	b[s] = n
	return b
}

// RegionOf returns the index of the bounds range containing v (the
// last range for vertices at or past the final boundary, which is
// where appended vertices land).
func RegionOf(bounds []int, v int) int {
	s := len(bounds) - 1
	lo, hi := 0, s-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if bounds[mid+1] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
