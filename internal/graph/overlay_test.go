package graph

import (
	"errors"
	"math/rand"
	"testing"
)

// TestOverlayZeroCopyReads pins the overlay's core memory contract:
// reading an untouched vertex returns the base CSR's row (same backing
// array), and only mutated vertices acquire patch rows.
func TestOverlayZeroCopyReads(t *testing.T) {
	c := StreamedRing(16)
	o := NewOverlay(c)
	base := c.Row(3)
	got := o.Neighbors(3)
	if &got[0] != &base[0] {
		t.Fatal("unpatched read is not a zero-copy view into the base CSR")
	}
	if err := o.AddEdge(3, 8); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if o.Patched() != 2 {
		t.Fatalf("Patched = %d after one insert, want 2", o.Patched())
	}
	if &o.Neighbors(5)[0] != &c.Row(5)[0] {
		t.Fatal("vertex 5 lost its zero-copy view")
	}
}

// TestOverlayMutations drives inserts, deletes, node appends and node
// removals and checks the overlay against a map-built reference graph
// after every operation.
func TestOverlayMutations(t *testing.T) {
	c := StreamedRing(10)
	o := NewOverlay(c)
	ref := c.Graph()

	check := func(step string) {
		t.Helper()
		if err := o.Validate(); err != nil {
			t.Fatalf("%s: overlay invalid: %v", step, err)
		}
		if o.N() != ref.N() {
			t.Fatalf("%s: n = %d, want %d", step, o.N(), ref.N())
		}
		if o.M() != int64(ref.M()) {
			t.Fatalf("%s: m = %d, want %d", step, o.M(), ref.M())
		}
		if o.Graph().Fingerprint() != ref.Fingerprint() {
			t.Fatalf("%s: structure diverged from reference", step)
		}
	}

	if err := o.AddEdge(0, 5); err != nil {
		t.Fatalf("AddEdge(0,5): %v", err)
	}
	ref.MustAddEdge(0, 5)
	check("insert chord")

	if !o.RemoveEdge(2, 3) {
		t.Fatal("RemoveEdge(2,3) reported absent")
	}
	ref.RemoveEdge(2, 3)
	check("delete ring edge")

	if o.RemoveEdge(2, 3) {
		t.Fatal("double RemoveEdge(2,3) reported present")
	}

	v := o.AddNode()
	if v != 10 {
		t.Fatalf("AddNode id = %d, want 10", v)
	}
	ref2 := New(11)
	for _, e := range ref.Edges() {
		ref2.MustAddEdge(e[0], e[1])
	}
	ref = ref2
	check("append node")

	if err := o.AddEdge(v, 4); err != nil {
		t.Fatalf("AddEdge(new,4): %v", err)
	}
	ref.MustAddEdge(v, 4)
	check("attach new node")

	former := o.RemoveNode(1)
	if len(former) != 2 {
		t.Fatalf("RemoveNode(1) former neighbors = %v, want 2 entries", former)
	}
	for _, w := range former {
		ref.RemoveEdge(1, w)
	}
	check("remove node")
	if o.Degree(1) != 0 {
		t.Fatalf("tombstone degree = %d", o.Degree(1))
	}
	if got := o.RemoveNode(1); got != nil {
		t.Fatalf("second RemoveNode(1) = %v, want nil", got)
	}
}

// TestOverlayRejects pins the error cases: self-loops, out-of-range
// endpoints, duplicate edges.
func TestOverlayRejects(t *testing.T) {
	o := NewOverlay(StreamedRing(6))
	if err := o.AddEdge(2, 2); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self-loop: %v", err)
	}
	if err := o.AddEdge(0, 6); !errors.Is(err, ErrVertexRange) {
		t.Errorf("out of range: %v", err)
	}
	if err := o.AddEdge(0, 1); !errors.Is(err, ErrParallelEdge) {
		t.Errorf("duplicate ring edge: %v", err)
	}
	if o.HasEdge(-1, 0) || o.HasEdge(0, 0) {
		t.Error("HasEdge accepted junk endpoints")
	}
}

// TestOverlayCompact checks that compaction folds patches into a fresh
// CSR with identical structure, releases the patch map, and keeps the
// overlay usable afterwards.
func TestOverlayCompact(t *testing.T) {
	o := NewOverlay(StreamedRing(12))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 8; i++ {
		u, v := rng.Intn(12), rng.Intn(12)
		if u != v && !o.HasEdge(u, v) {
			if err := o.AddEdge(u, v); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		}
	}
	o.RemoveEdge(0, 1)
	nv := o.AddNode()
	if err := o.AddEdge(nv, 0); err != nil {
		t.Fatalf("AddEdge(new,0): %v", err)
	}
	want := o.Graph().Fingerprint()
	wantM := o.M()

	c, err := o.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if o.Patched() != 0 {
		t.Fatalf("Patched = %d after Compact", o.Patched())
	}
	if c.Graph().Fingerprint() != want || o.Graph().Fingerprint() != want {
		t.Fatal("Compact changed the structure")
	}
	if o.M() != wantM || c.M() != wantM {
		t.Fatalf("edge count drifted: overlay %d, csr %d, want %d", o.M(), c.M(), wantM)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("compacted CSR invalid: %v", err)
	}
	// The overlay keeps working on the new base.
	if err := o.AddEdge(2, 7); err != nil && !errors.Is(err, ErrParallelEdge) {
		t.Fatalf("post-compact AddEdge: %v", err)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("post-compact overlay invalid: %v", err)
	}
}

// TestOverlayRandomChurnDifferential runs a long random op stream on
// the overlay and a map-built reference in parallel, with periodic
// compaction, and demands identical structure throughout.
func TestOverlayRandomChurnDifferential(t *testing.T) {
	const n = 40
	o := NewOverlay(StreamedGNP(n, 0.1, 7))
	ref := o.Graph()
	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 2000; step++ {
		switch k := rng.Intn(100); {
		case k < 45:
			u, v := rng.Intn(o.N()), rng.Intn(o.N())
			if u == v || o.HasEdge(u, v) {
				continue
			}
			if err := o.AddEdge(u, v); err != nil {
				t.Fatalf("step %d AddEdge: %v", step, err)
			}
			ref.MustAddEdge(u, v)
		case k < 85:
			u, v := rng.Intn(o.N()), rng.Intn(o.N())
			got := o.RemoveEdge(u, v)
			want := ref.RemoveEdge(u, v)
			if got != want {
				t.Fatalf("step %d RemoveEdge(%d,%d) = %v, reference %v", step, u, v, got, want)
			}
		case k < 92:
			v := rng.Intn(o.N())
			former := o.RemoveNode(v)
			for _, w := range former {
				ref.RemoveEdge(v, w)
			}
		case k < 97:
			o.AddNode()
			g2 := New(ref.N() + 1)
			for _, e := range ref.Edges() {
				g2.MustAddEdge(e[0], e[1])
			}
			ref = g2
		default:
			if _, err := o.Compact(); err != nil {
				t.Fatalf("step %d Compact: %v", step, err)
			}
		}
		if step%250 == 0 {
			if err := o.Validate(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if o.Graph().Fingerprint() != ref.Fingerprint() {
				t.Fatalf("step %d: structure diverged", step)
			}
		}
	}
	if o.Graph().Fingerprint() != ref.Fingerprint() {
		t.Fatal("final structure diverged")
	}
}
