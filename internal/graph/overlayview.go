package graph

// OverlayView is a writable delta view over an Overlay: all mutations
// land in a private row map and the underlying overlay is never
// touched, so several views over disjoint vertex regions can be
// mutated concurrently by the service's sharded write path and merged
// (or discarded wholesale) afterwards. Reads resolve newest-first:
// the view's own delta, then an optional extra lookup layer (the
// sequential epilogue stacks the region deltas under itself this
// way), then the overlay's patch rows, then the base CSR.
//
// A view deliberately mirrors Overlay's mutation semantics and error
// text exactly — the sharded service path must be byte-identical to
// the single-writer path, so any divergence here is a bug.

import "fmt"

// OverlayView is a private write layer over an Overlay.
type OverlayView struct {
	o *Overlay
	// extra, when non-nil, resolves rows committed by deeper view
	// layers (present entry wins over the overlay).
	extra func(v int) ([]int, bool)
	// delta holds this view's mutated rows; a present entry fully
	// replaces deeper rows.
	delta map[int][]int
	n     int
	// arcsDelta tracks the net directed-edge change relative to the
	// overlay at view creation.
	arcsDelta int64
}

// View returns a fresh writable delta view over the overlay. extra may
// be nil; when set it is consulted between the view's delta and the
// overlay's rows.
func (o *Overlay) View(extra func(v int) ([]int, bool)) *OverlayView {
	return &OverlayView{o: o, extra: extra, delta: make(map[int][]int), n: o.n}
}

// N returns the vertex count as seen by the view (overlay count plus
// vertices added through this view).
func (v *OverlayView) N() int { return v.n }

// ArcsDelta returns the net directed-edge change accumulated in the
// view.
func (v *OverlayView) ArcsDelta() int64 { return v.arcsDelta }

// Delta returns the view's mutated rows, vertex count, and arc delta
// for Overlay.ApplyDeltas. Ownership of the map transfers to the
// caller.
func (v *OverlayView) Delta() (rows map[int][]int, n int, arcsDelta int64) {
	return v.delta, v.n, v.arcsDelta
}

// current resolves u's row newest-first without copying.
func (v *OverlayView) current(u int) []int {
	if row, ok := v.delta[u]; ok {
		return row
	}
	if v.extra != nil {
		if row, ok := v.extra(u); ok {
			return row
		}
	}
	if row, ok := v.o.rows[u]; ok {
		return row
	}
	if u < v.o.base.N() {
		return v.o.base.Row(u)
	}
	return nil
}

// Neighbors returns u's sorted neighbor list as seen by the view. The
// slice must not be modified and is valid until the next mutation of
// u through the view.
func (v *OverlayView) Neighbors(u int) []int { return v.current(u) }

// Degree returns the degree of u as seen by the view.
func (v *OverlayView) Degree(u int) int { return len(v.current(u)) }

// HasEdge reports whether {u, w} is present as seen by the view.
func (v *OverlayView) HasEdge(u, w int) bool {
	if u < 0 || u >= v.n || w < 0 || w >= v.n || u == w {
		return false
	}
	row := v.current(u)
	i := searchInts(row, w)
	return i < len(row) && row[i] == w
}

// mutable returns u's row in the view's delta, cloning the deeper row
// on first mutation.
func (v *OverlayView) mutable(u int) []int {
	if row, ok := v.delta[u]; ok {
		return row
	}
	src := v.current(u)
	row := make([]int, len(src), len(src)+1)
	copy(row, src)
	v.delta[u] = row
	return row
}

// AddNode appends an isolated vertex through the view and returns its
// id.
func (v *OverlayView) AddNode() int {
	u := v.n
	v.n++
	v.delta[u] = nil
	return u
}

// AddEdge inserts the undirected edge {u, w} into the view, with
// Overlay.AddEdge's exact semantics and error text.
func (v *OverlayView) AddEdge(u, w int) error {
	if u < 0 || u >= v.n || w < 0 || w >= v.n {
		return fmt.Errorf("%w: edge {%d,%d} in overlay on %d vertices", ErrVertexRange, u, w, v.n)
	}
	if u == w {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, w)
	}
	if v.HasEdge(u, w) {
		return fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, u, w)
	}
	v.insert(u, w)
	v.insert(w, u)
	v.arcsDelta += 2
	return nil
}

// RemoveEdge deletes the undirected edge {u, w} from the view; it
// reports whether the edge was present.
func (v *OverlayView) RemoveEdge(u, w int) bool {
	if !v.HasEdge(u, w) {
		return false
	}
	v.remove(u, w)
	v.remove(w, u)
	v.arcsDelta -= 2
	return true
}

// RemoveNode detaches every edge incident to u as seen by the view,
// leaving an isolated tombstone; it returns u's former neighbors (nil
// when out of range or already isolated), exactly like
// Overlay.RemoveNode.
func (v *OverlayView) RemoveNode(u int) []int {
	if u < 0 || u >= v.n {
		return nil
	}
	old := v.current(u)
	if len(old) == 0 {
		return nil
	}
	former := append([]int(nil), old...)
	for _, w := range former {
		v.remove(w, u)
	}
	v.delta[u] = []int{}
	v.arcsDelta -= 2 * int64(len(former))
	return former
}

// insert places w into u's view row, keeping it sorted.
func (v *OverlayView) insert(u, w int) {
	row := v.mutable(u)
	i := searchInts(row, w)
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = w
	v.delta[u] = row
}

// remove deletes w from u's view row.
func (v *OverlayView) remove(u, w int) {
	row := v.mutable(u)
	i := searchInts(row, w)
	if i < len(row) && row[i] == w {
		v.delta[u] = append(row[:i], row[i+1:]...)
	}
}

// ApplyDeltas merges committed view deltas into the overlay (later
// maps win on row collisions — callers pass region deltas first and
// the epilogue delta last) and sets the post-batch vertex and arc
// counts. Row slices transfer ownership to the overlay; in snapshot
// mode each merged row is owned by the current batch generation.
func (o *Overlay) ApplyDeltas(n int, arcs int64, deltas ...map[int][]int) {
	for _, d := range deltas {
		for u, row := range d {
			if old, ok := o.rows[u]; ok && (o.gen == 0 || o.rowGen[u] == o.gen) {
				o.recycle(old)
			}
			o.rows[u] = row
			o.markTouched(u)
		}
	}
	o.n = n
	o.arcs = arcs
}
