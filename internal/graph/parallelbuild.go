package graph

// Multi-core CSR construction: the segmented two-pass build behind
// BuildCSRParallel. The sequential StreamCSR (csrgraph.go) counts
// degrees in one pass and fills row cursors in a second; here W
// workers do both passes on disjoint replayable segments of the same
// edge sequence, and an exclusive prefix sum over the (segment ×
// vertex) degree histograms assigns every segment a deterministic
// write window inside each row:
//
//	slot(s, v, i) = rowPtr[v] + Σ_{s'<s} count[s'][v] + i
//
// Segment s's i-th arc of row v lands exactly where the sequential
// fill would have put it, because the segments concatenate to the
// sequential emission order — so the column array is byte-identical to
// StreamCSR's *before* the row-normalization sweep even runs, and the
// sweep (sort + duplicate detection, itself range-parallel here) is
// identical on identical bytes. Build errors are deterministic too:
// the counting pass surfaces the first bad edge of the lowest-indexed
// failing segment, which in concatenation order is precisely the first
// bad edge the sequential build would have reported, with the same
// message.
//
// Peak build memory exceeds the sequential build's (which peaks at the
// final CSR size) by the per-segment histograms: 4·k·n bytes for k
// segments — the price of deterministic write windows; docs/MEMORY.md
// carries the figures.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// parallelBuildMinN is the auto-mode threshold below which
// BuildCSRParallel (workers ≤ 0) keeps the sequential path: at small n
// the histogram setup and goroutine handoff cost more than the build,
// and conformance-sized instances must pay zero overhead
// (BenchmarkBuildCSRParallelSmallN pins the regression).
const parallelBuildMinN = 4096

// parallelArcLimit parameterizes the int-indexing overflow guard the
// same way StreamCSR's checkArcCount limit is parameterized: tests
// inject a small limit to exercise the 2³¹ boundary on 64-bit builds.
var parallelArcLimit = maxIntArcs

// parallelBuildRuns counts builds that took the parallel path —
// white-box instrumentation for the auto-fallback tests, which assert
// small-n and single-core builds never get here.
var parallelBuildRuns atomic.Int64

// BuildCSRParallel builds the same CSR as StreamCSR(n, ss.Stream()) —
// byte-identical rowPtr and column arrays, identical error on invalid
// streams — using up to `workers` cores over the stream's segments.
//
// workers ≤ 0 selects GOMAXPROCS and auto-falls back to the sequential
// build when that is 1 or n < parallelBuildMinN, so small instances
// pay zero goroutine overhead; an explicit workers > 1 forces the
// segmented machinery (the equivalence tests and single-CPU benchmark
// containers rely on that). Streams that cannot split (a single
// segment) and vertex counts beyond int32 (the histogram index type)
// also use the sequential path.
func BuildCSRParallel(n int, ss SegmentedStream, workers int) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative vertex count %d", ErrVertexRange, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if n < parallelBuildMinN {
			workers = 1
		}
	}
	if workers == 1 || int64(n) > int64(math.MaxInt32) {
		return StreamCSR(n, ss.Stream())
	}
	segs := ss.Segments(workers)
	if len(segs) <= 1 {
		return StreamCSR(n, ss.Stream())
	}
	parallelBuildRuns.Add(1)
	k := len(segs)

	// Counting pass: every segment counts its degrees into a private
	// histogram. Errors record per segment; the lowest-indexed failing
	// segment holds the stream's first bad edge.
	counts := make([][]int32, k)
	segArcs := make([]int64, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for s := range segs {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			hist := make([]int32, n)
			var segErr error
			arcs := int64(0)
			segs[s](func(u, v int) {
				if segErr != nil {
					return
				}
				if u < 0 || u >= n || v < 0 || v >= n {
					segErr = fmt.Errorf("%w: edge {%d,%d} in graph on %d vertices", ErrVertexRange, u, v, n)
					return
				}
				if u == v {
					segErr = fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
					return
				}
				hist[u]++
				hist[v]++
				arcs += 2
			})
			counts[s], segArcs[s], errs[s] = hist, arcs, segErr
		}(s)
	}
	wg.Wait()
	for s := 0; s < k; s++ {
		if errs[s] != nil {
			return nil, errs[s]
		}
	}
	arcs := int64(0)
	for s := 0; s < k; s++ {
		arcs += segArcs[s]
	}
	if err := checkArcCount(arcs, parallelArcLimit); err != nil {
		return nil, err
	}

	// Offset pass: per vertex, the exclusive prefix sum across segments
	// turns each histogram entry into the segment's write offset within
	// the row, and the per-vertex total feeds the row-pointer prefix
	// sum. The across-segments scan is range-parallel; the across-
	// vertices scan stays sequential (n dependent additions).
	rowPtr := make([]int64, n+1)
	forRanges(n, workers, &wg, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			var run int32
			for s := 0; s < k; s++ {
				c := counts[s][v]
				counts[s][v] = run
				run += c
			}
			rowPtr[v+1] = int64(run)
		}
	})
	for v := 0; v < n; v++ {
		rowPtr[v+1] += rowPtr[v]
	}

	// Fill pass: each segment replays into its own write windows. The
	// divergence guards mirror the sequential best-effort contract: a
	// cursor escaping its row, an edge the counting pass never saw, or
	// a per-segment arc-count change all surface ErrStreamDiverged.
	col := make([]int, arcs)
	for s := range segs {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			off := counts[s]
			var segErr error
			filled := int64(0)
			segs[s](func(u, v int) {
				if segErr != nil {
					return
				}
				if u < 0 || u >= n || v < 0 || v >= n || u == v {
					segErr = ErrStreamDiverged
					return
				}
				iu := rowPtr[u] + int64(off[u])
				iv := rowPtr[v] + int64(off[v])
				if iu >= rowPtr[u+1] || iv >= rowPtr[v+1] {
					segErr = ErrStreamDiverged
					return
				}
				col[iu] = v
				off[u]++
				col[iv] = u
				off[v]++
				filled += 2
			})
			if segErr == nil && filled != segArcs[s] {
				segErr = fmt.Errorf("%w: counted %d arcs, filled %d", ErrStreamDiverged, segArcs[s], filled)
			}
			errs[s] = segErr
		}(s)
	}
	wg.Wait()
	for s := 0; s < k; s++ {
		if errs[s] != nil {
			return nil, errs[s]
		}
	}

	// Row normalization, range-parallel: identical bytes in, identical
	// bytes out — each row is sorted iff the sequential build would
	// have sorted it, and the first duplicate of the lowest range is
	// the first duplicate of the whole sweep.
	c := &CSR{n: n, rowPtr: rowPtr, col: col}
	rangeErrs := make([]error, workers)
	forRangesIndexed(n, workers, &wg, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			row := c.Row(v)
			if !sort.IntsAreSorted(row) {
				sort.Ints(row)
			}
			for i := 1; i < len(row); i++ {
				if row[i] == row[i-1] {
					rangeErrs[w] = fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, v, row[i])
					return
				}
			}
		}
	})
	for w := 0; w < workers; w++ {
		if rangeErrs[w] != nil {
			return nil, rangeErrs[w]
		}
	}
	return c, nil
}

// EqualBytes reports whether two CSRs are byte-identical: same vertex
// count, same row offsets, same column array. Stronger than
// Fingerprint equality (no hashing involved); the parallel-build
// equivalence tests and the graph_build benchmark rows assert it.
func (c *CSR) EqualBytes(o *CSR) bool {
	if c.n != o.n || len(c.rowPtr) != len(o.rowPtr) || len(c.col) != len(o.col) {
		return false
	}
	for i := range c.rowPtr {
		if c.rowPtr[i] != o.rowPtr[i] {
			return false
		}
	}
	for i := range c.col {
		if c.col[i] != o.col[i] {
			return false
		}
	}
	return true
}

// forRanges runs fn over `workers` contiguous near-equal vertex ranges
// concurrently and waits for all of them.
func forRanges(n, workers int, wg *sync.WaitGroup, fn func(lo, hi int)) {
	forRangesIndexed(n, workers, wg, func(_, lo, hi int) { fn(lo, hi) })
}

// forRangesIndexed is forRanges with the range index passed through,
// for callers that keep per-range results.
func forRangesIndexed(n, workers int, wg *sync.WaitGroup, fn func(w, lo, hi int)) {
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
