package graph

import (
	"errors"
	"runtime"
	"testing"
)

// sliceSegmented is the adversarial SegmentedStream of the build
// tests: explicit edge slices as segments, including empty segments
// and invalid edges, with Segments grouping the parts contiguously —
// exactly the shapes a generator's fixed chunk grid can produce.
type sliceSegmented struct{ parts [][][2]int }

func (s sliceSegmented) Stream() EdgeStream {
	return func(emit func(u, v int)) {
		for _, part := range s.parts {
			for _, e := range part {
				emit(e[0], e[1])
			}
		}
	}
}

func (s sliceSegmented) Segments(want int) []EdgeStream {
	return groupChunks(len(s.parts), want, func(c int) EdgeStream {
		return func(emit func(u, v int)) {
			for _, e := range s.parts[c] {
				emit(e[0], e[1])
			}
		}
	})
}

// workerCounts is the pinned matrix of the equivalence tests: the
// boundary (1), small powers of two, a prime that does not divide the
// chunk grid, and whatever the host offers.
func workerCounts() []int {
	return []int{1, 2, 4, 7, runtime.GOMAXPROCS(0)}
}

// assertBuildsIdentical builds ss sequentially and in parallel at
// every pinned worker count and demands byte-identity (raw arrays, not
// just fingerprints) or identical error text.
func assertBuildsIdentical(t *testing.T, n int, ss SegmentedStream) {
	t.Helper()
	seq, seqErr := StreamCSR(n, ss.Stream())
	for _, w := range workerCounts() {
		par, parErr := BuildCSRParallel(n, ss, w)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("workers=%d: sequential err %v, parallel err %v", w, seqErr, parErr)
		}
		if seqErr != nil {
			if seqErr.Error() != parErr.Error() {
				t.Fatalf("workers=%d: error text diverges:\n  seq: %v\n  par: %v", w, seqErr, parErr)
			}
			continue
		}
		if !par.EqualBytes(seq) {
			t.Fatalf("workers=%d: parallel build is not byte-identical to StreamCSR", w)
		}
		if par.Fingerprint() != seq.Fingerprint() {
			t.Fatalf("workers=%d: fingerprint diverges", w)
		}
	}
}

func TestBuildCSRParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		n    int
		ss   SegmentedStream
	}{
		{"ring", 10000, RingSegmented(10000)},
		{"ring/min", 3, RingSegmented(3)},
		{"gnp", 5000, GNPSegmented(5000, 0.002, 17)},
		{"gnp/dense", 300, GNPSegmented(300, 0.3, 23)},
		{"gnp/empty", 1000, GNPSegmented(1000, 0, 3)},
		{"powerlaw/single-segment", 2000, SingleSegment(PowerLawStream(2000, 4, 9))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { assertBuildsIdentical(t, tc.n, tc.ss) })
	}
}

// Adversarial segment boundaries: empty segments, all arcs in one
// segment, unsorted emission order (exercising the parallel
// normalization sweep), and invalid edges whose error text must match
// the sequential build's exactly.
func TestBuildCSRParallelAdversarialSegments(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		parts [][][2]int
	}{
		{"empty-segments", 50, [][][2]int{
			{}, {{0, 1}, {1, 2}}, {}, {}, {{2, 3}, {3, 4}}, {},
		}},
		{"all-in-one-segment", 40, [][][2]int{
			{}, {}, {{0, 1}, {1, 2}, {2, 3}, {0, 39}, {5, 6}}, {}, {},
		}},
		{"unsorted-rows", 30, [][][2]int{
			{{9, 0}, {5, 0}}, {{0, 3}, {29, 0}, {0, 1}},
		}},
		{"out-of-range", 20, [][][2]int{
			{{0, 1}}, {{1, 2}, {3, 25}}, {{4, 5}},
		}},
		{"negative-vertex", 20, [][][2]int{
			{{0, 1}}, {}, {{-1, 2}},
		}},
		{"self-loop", 20, [][][2]int{
			{{0, 1}, {2, 2}}, {{3, 4}},
		}},
		{"parallel-edge-within-segment", 20, [][][2]int{
			{{0, 1}, {1, 0}}, {{2, 3}},
		}},
		{"parallel-edge-across-segments", 20, [][][2]int{
			{{0, 1}, {2, 3}}, {{3, 2}},
		}},
		{"two-errors-lowest-segment-wins", 20, [][][2]int{
			{{0, 1}}, {{7, 7}}, {{-3, 1}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertBuildsIdentical(t, tc.n, sliceSegmented{parts: tc.parts})
		})
	}
}

func TestBuildCSRParallelRejectsNegativeN(t *testing.T) {
	if _, err := BuildCSRParallel(-1, RingSegmented(3), 2); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("err = %v, want ErrVertexRange", err)
	}
}

// The 2³¹ boundary guard: with the injected arc limit the parallel
// build must refuse exactly like the sequential one (same sentinel,
// same text).
func TestBuildCSRParallelArcLimitGuard(t *testing.T) {
	defer func(old int64) { parallelArcLimit = old }(parallelArcLimit)
	parallelArcLimit = 10 // ring on 6 vertices needs 12 arcs
	seqErr := checkArcCount(12, 10)
	if seqErr == nil || !errors.Is(seqErr, ErrCSROverflow) {
		t.Fatalf("checkArcCount sanity: %v", seqErr)
	}
	_, err := BuildCSRParallel(6, RingSegmented(6), 2)
	if !errors.Is(err, ErrCSROverflow) {
		t.Fatalf("err = %v, want ErrCSROverflow", err)
	}
	if err.Error() != seqErr.Error() {
		t.Fatalf("error text diverges: %q vs %q", err, seqErr)
	}
}

// divergingSegmented emits a different sequence on its second replay —
// the fill pass must surface ErrStreamDiverged, never corrupt memory.
// The divergent shapes are chosen so every write still lands inside a
// counted row window (fewer edges, or an edge rejected before any
// write), keeping the test race-free by construction.
type divergingSegmented struct {
	n     int
	drop  bool // second replay drops the last edge of segment 0
	stray bool // second replay swaps in an out-of-range edge
}

func (d divergingSegmented) Stream() EdgeStream { return d.Segments(2)[0] }

func (d divergingSegmented) Segments(want int) []EdgeStream {
	replays := make([]int, 2)
	seg := func(s int, edges [][2]int) EdgeStream {
		return func(emit func(u, v int)) {
			replays[s]++
			second := replays[s] > 1
			for i, e := range edges {
				if s == 0 && second {
					if d.drop && i == len(edges)-1 {
						continue
					}
					if d.stray && i == 0 {
						e = [2]int{0, d.n + 5}
					}
				}
				emit(e[0], e[1])
			}
		}
	}
	return []EdgeStream{
		seg(0, [][2]int{{0, 1}, {1, 2}}),
		seg(1, [][2]int{{3, 4}}),
	}
}

func TestBuildCSRParallelDetectsDivergence(t *testing.T) {
	for _, tc := range []struct {
		name string
		ss   divergingSegmented
	}{
		{"dropped-edge", divergingSegmented{n: 10, drop: true}},
		{"stray-edge", divergingSegmented{n: 10, stray: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := BuildCSRParallel(10, tc.ss, 2); !errors.Is(err, ErrStreamDiverged) {
				t.Fatalf("err = %v, want ErrStreamDiverged", err)
			}
		})
	}
}

// Auto-fallback: workers ≤ 0 on a small graph (or a single-core host)
// must never start the segmented machinery, while an explicit
// workers > 1 must always force it — that is what keeps the parallel
// path exercised on single-CPU CI hosts.
func TestBuildCSRParallelAutoFallback(t *testing.T) {
	n := parallelBuildMinN / 4
	before := parallelBuildRuns.Load()
	if _, err := BuildCSRParallel(n, RingSegmented(n), 0); err != nil {
		t.Fatalf("auto build: %v", err)
	}
	if _, err := BuildCSRParallel(n, RingSegmented(n), 1); err != nil {
		t.Fatalf("workers=1 build: %v", err)
	}
	if _, err := BuildCSRParallel(n, SingleSegment(RingStream(n)), 8); err != nil {
		t.Fatalf("single-segment build: %v", err)
	}
	if got := parallelBuildRuns.Load(); got != before {
		t.Fatalf("sequential-path builds took the parallel path %d times", got-before)
	}
	if _, err := BuildCSRParallel(n, RingSegmented(n), 2); err != nil {
		t.Fatalf("workers=2 build: %v", err)
	}
	if got := parallelBuildRuns.Load(); got != before+1 {
		t.Fatalf("explicit workers=2 did not take the parallel path (%d runs)", got-before)
	}
}

// FuzzParallelCSRBuild pins the tentpole invariant: for arbitrary
// segment partitions — including empty, pathological and invalid ones
// — the parallel build is byte-identical to StreamCSR on the
// concatenated stream, or fails with the identical error text, at
// every worker count.
func FuzzParallelCSRBuild(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(30), uint8(5), uint8(0))
	f.Add(int64(2), uint8(3), uint8(1), uint8(1), uint8(3))
	f.Add(int64(3), uint8(200), uint8(255), uint8(64), uint8(7))
	f.Add(int64(4), uint8(50), uint8(0), uint8(9), uint8(1)) // zero edges
	f.Add(int64(5), uint8(7), uint8(40), uint8(2), uint8(2)) // dense + invalid
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, partsRaw, badRaw uint8) {
		n := 2 + int(nRaw)%220
		m := int(mRaw)
		parts := 1 + int(partsRaw)%66
		x := uint64(seed)
		next := func(mod int) int {
			x = splitmix64(x)
			return int(x % uint64(mod))
		}
		edges := make([][2]int, m)
		for i := range edges {
			u, v := next(n), next(n)
			if badRaw > 0 && next(97) == 0 {
				switch next(3) {
				case 0:
					v = u // self-loop
				case 1:
					v = n + next(5) // out of range
				case 2:
					u = -1 - next(3) // negative
				}
			}
			edges[i] = [2]int{u, v}
		}
		// Cut the edge list into `parts` segments at derived positions
		// (duplicates collapse to empty segments).
		cuts := make([]int, parts+1)
		cuts[parts] = m
		for i := 1; i < parts; i++ {
			cuts[i] = next(m + 1)
		}
		for i := 1; i < parts; i++ { // insertion-sort the cut points
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		segs := make([][][2]int, parts)
		for i := 0; i < parts; i++ {
			segs[i] = edges[cuts[i]:cuts[i+1]]
		}
		ss := sliceSegmented{parts: segs}

		seq, seqErr := StreamCSR(n, ss.Stream())
		for _, w := range []int{1, 2, 3, 7, 64} {
			par, parErr := BuildCSRParallel(n, ss, w)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("workers=%d: seq err %v, par err %v", w, seqErr, parErr)
			}
			if seqErr != nil {
				if seqErr.Error() != parErr.Error() {
					t.Fatalf("workers=%d: error text diverges:\n  seq: %v\n  par: %v", w, seqErr, parErr)
				}
				continue
			}
			if !par.EqualBytes(seq) {
				t.Fatalf("workers=%d: bytes diverge on n=%d m=%d parts=%d", w, n, m, parts)
			}
		}
	})
}

// The no-regression guarantee of the auto-fallback: at conformance
// sizes (n ≤ 1024) BuildCSRParallel with workers ≤ 0 must cost the
// same as StreamCSR — it IS StreamCSR plus one branch.
func BenchmarkBuildCSRSequentialSmallN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := StreamCSR(1024, RingSegmented(1024).Stream()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCSRParallelAutoSmallN(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildCSRParallel(1024, RingSegmented(1024), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildCSRParallelForcedW4(b *testing.B) {
	ss := GNPSegmented(100000, 4.0/100000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCSRParallel(100000, ss, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// allocDelta measures the heap bytes fn allocates (single-goroutine
// accounting via TotalAlloc, the codec tests' technique).
func allocDelta(fn func()) int64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fn()
	runtime.ReadMemStats(&after)
	return int64(after.TotalAlloc - before.TotalAlloc)
}

// Guard for the satellite fix: PowerLawStream replays must reuse the
// pooled sampling scratch instead of reallocating the ≈8·k·n-byte
// pool per replay. Asserted via allocation accounting over repeated
// builds after a warm-up populates the pool; the generous bound (one
// CSR's worth of output per build, plus slack) fails loudly if the
// per-replay make([]int32, ...) ever returns.
func TestPowerLawStreamScratchReuse(t *testing.T) {
	n, k := 20000, 4
	StreamedPowerLaw(n, k, 1) // warm the pool

	const builds = 4
	poolBytes := int64(8 * k * n) // one pool reallocation would cost ≈ this
	// Steady-state cost per build: rowPtr (8(n+1)) + col (8·arcs) for
	// two CSRs (count+fill temp is the CSR itself) plus RNG + slack.
	csrBytes := int64(8*(n+1)) + 8*int64(2*((n-k-1)*k+k*(k+1)/2))
	budget := builds * (csrBytes + poolBytes/4)

	var delta int64
	for attempt := 0; attempt < 5; attempt++ {
		delta = allocDelta(func() {
			for i := 0; i < builds; i++ {
				StreamedPowerLaw(n, k, int64(2+i))
			}
		})
		if delta <= budget {
			return
		}
		// A GC between warm-up and measurement can empty the pool;
		// re-warm and retry before declaring a regression.
		StreamedPowerLaw(n, k, 1)
	}
	t.Fatalf("%d builds allocated %d bytes, budget %d (scratch pool not reused?)", builds, delta, budget)
}
