package graph

import "fmt"

// Degeneracy returns the degeneracy k of g together with a removal
// order witnessing it: repeatedly removing a minimum-degree vertex,
// each removed vertex has at most k neighbors still present. Runs in
// O(n + m) via bucket queues.
func Degeneracy(g *Graph) (k int, order []int) {
	g.Normalize()
	n := g.n
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = len(g.adj[v])
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	removed := make([]bool, n)
	order = make([]int, 0, n)
	cur := 0
	for len(order) < n {
		// Find the lowest non-empty bucket. Degrees only decrease by
		// one per removal, so cur never needs to back up by more than
		// one step at a time; we simply rescan from min(cur, updated).
		for cur > 0 && len(buckets[cur-1]) > 0 {
			cur--
		}
		for cur <= maxDeg && len(buckets[cur]) == 0 {
			cur++
		}
		b := buckets[cur]
		v := b[len(b)-1]
		buckets[cur] = b[:len(b)-1]
		if removed[v] || deg[v] != cur {
			continue // stale bucket entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > k {
			k = cur
		}
		for _, u := range g.adj[v] {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
			}
		}
	}
	return k, order
}

// NeighborhoodIndependence returns θ(G): the maximum, over all
// vertices v, of the independence number of the subgraph induced by
// N(v). It is computed exactly by branch and bound within each
// neighborhood, which is exponential in Δ in the worst case; the
// experiments only call it on graphs with moderate Δ (≲ 24) or on line
// graphs where θ is structurally bounded. For an empty graph θ is 0.
func NeighborhoodIndependence(g *Graph) int {
	g.Normalize()
	theta := 0
	for v := 0; v < g.n; v++ {
		nb := g.adj[v]
		if len(nb) <= theta {
			continue // cannot beat current best
		}
		sub, _ := g.InducedSubgraph(nb)
		if is := IndependenceNumber(sub); is > theta {
			theta = is
		}
	}
	return theta
}

// IndependenceNumber returns the size of a maximum independent set of
// g, by branch and bound on the vertex of maximum degree. Exponential
// in the worst case; intended for the small neighborhood subgraphs of
// NeighborhoodIndependence.
func IndependenceNumber(g *Graph) int {
	g.Normalize()
	alive := make([]bool, g.n)
	for i := range alive {
		alive[i] = true
	}
	return misBranch(g, alive)
}

func misBranch(g *Graph, alive []bool) int {
	// Find an alive vertex of maximum alive-degree; vertices with
	// alive-degree ≤ 1 can be taken greedily.
	best, bestDeg := -1, -1
	for v := 0; v < g.n; v++ {
		if !alive[v] {
			continue
		}
		d := 0
		for _, u := range g.adj[v] {
			if alive[u] {
				d++
			}
		}
		if d <= 1 {
			// Take v: remove v and its (at most one) alive neighbor.
			alive[v] = false
			removedNeighbor := -1
			for _, u := range g.adj[v] {
				if alive[u] {
					alive[u] = false
					removedNeighbor = u
					break
				}
			}
			r := 1 + misBranch(g, alive)
			alive[v] = true
			if removedNeighbor >= 0 {
				alive[removedNeighbor] = true
			}
			return r
		}
		if d > bestDeg {
			best, bestDeg = v, d
		}
	}
	if best < 0 {
		return 0 // no alive vertices
	}
	// Branch 1: exclude best.
	alive[best] = false
	r1 := misBranch(g, alive)
	// Branch 2: include best, excluding its alive neighbors.
	var excluded []int
	for _, u := range g.adj[best] {
		if alive[u] {
			alive[u] = false
			excluded = append(excluded, u)
		}
	}
	r2 := 1 + misBranch(g, alive)
	for _, u := range excluded {
		alive[u] = true
	}
	alive[best] = true
	if r1 > r2 {
		return r1
	}
	return r2
}

// GreedyThetaUpperBound returns an upper bound on θ(G) via greedy
// clique covers of each neighborhood. Cheap (polynomial) and used by
// the benchmark harness on graphs too large for the exact computation.
func GreedyThetaUpperBound(g *Graph) int {
	g.Normalize()
	bound := 0
	for v := 0; v < g.n; v++ {
		nb := g.adj[v]
		if len(nb) <= bound {
			continue
		}
		sub, _ := g.InducedSubgraph(nb)
		// Greedily peel cliques: the number of cliques needed to cover
		// the neighborhood upper-bounds its independence number.
		covered := make([]bool, sub.n)
		cliques := 0
		for remaining := sub.n; remaining > 0; {
			cliques++
			var clique []int
			for u := 0; u < sub.n; u++ {
				if covered[u] {
					continue
				}
				ok := true
				for _, c := range clique {
					if !sub.HasEdge(u, c) {
						ok = false
						break
					}
				}
				if ok {
					clique = append(clique, u)
				}
			}
			for _, c := range clique {
				covered[c] = true
			}
			remaining -= len(clique)
		}
		if cliques > bound {
			bound = cliques
		}
	}
	return bound
}

// IsProperColoring reports whether colors is a proper vertex coloring
// of g, i.e. no edge is monochromatic, together with the first
// violating edge if not. colors must have length n.
func IsProperColoring(g *Graph, colors []int) error {
	if len(colors) != g.n {
		return fmt.Errorf("graph: coloring length %d != n %d", len(colors), g.n)
	}
	g.Normalize()
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if u < v && colors[u] == colors[v] {
				return fmt.Errorf("graph: monochromatic edge {%d,%d} (color %d)", u, v, colors[u])
			}
		}
	}
	return nil
}

// CountColors returns the number of distinct values in colors.
func CountColors(colors []int) int {
	seen := make(map[int]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// MaxColor returns the maximum value in colors, or -1 for an empty
// slice. Algorithms that promise a coloring with colors in [0, C) are
// tested via MaxColor < C.
func MaxColor(colors []int) int {
	maxc := -1
	for _, c := range colors {
		if c > maxc {
			maxc = c
		}
	}
	return maxc
}

// MonochromaticDegree returns, for each vertex, the number of
// neighbors sharing its color — the defect vector of the coloring.
func MonochromaticDegree(g *Graph, colors []int) []int {
	g.Normalize()
	out := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if colors[u] == colors[v] {
				out[u]++
			}
		}
	}
	return out
}

// MonochromaticOutDegree returns, for each vertex, the number of
// out-neighbors (under d) sharing its color.
func MonochromaticOutDegree(d *Digraph, colors []int) []int {
	out := make([]int, d.N())
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			if colors[u] == colors[v] {
				out[u]++
			}
		}
	}
	return out
}
