package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegeneracyKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"ring", Ring(10), 2},
		{"path", Path(10), 1},
		{"K5", Complete(5), 4},
		{"tree", CompleteKaryTree(3, 4), 1},
		{"grid", Grid(4, 5), 2},
		{"empty", New(7), 0},
	}
	for _, c := range cases {
		k, order := Degeneracy(c.g)
		if k != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.name, k, c.want)
		}
		if len(order) != c.g.N() {
			t.Errorf("%s: order length %d != n %d", c.name, len(order), c.g.N())
		}
		// Witness check: when each vertex is removed, at most k
		// neighbors remain.
		pos := make([]int, c.g.N())
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < c.g.N(); v++ {
			later := 0
			for _, u := range c.g.Neighbors(v) {
				if pos[u] > pos[v] {
					later++
				}
			}
			if later > k {
				t.Errorf("%s: vertex %d has %d later neighbors > degeneracy %d", c.name, v, later, k)
			}
		}
	}
}

func TestDegeneracyOrderIsPermutation(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%50) + 1
		rng := rand.New(rand.NewSource(seed))
		g := GNP(n, 0.3, rng)
		_, order := Degeneracy(g)
		seen := make([]bool, n)
		for _, v := range order {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(order) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIndependenceNumberKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K4", Complete(4), 1},
		{"empty5", New(5), 5},
		{"C5", Ring(5), 2},
		{"C6", Ring(6), 3},
		{"P4", Path(4), 2},
		{"K33", CompleteBipartite(3, 3), 3},
		{"petersen-ish grid", Grid(3, 3), 5},
	}
	for _, c := range cases {
		if got := IndependenceNumber(c.g); got != c.want {
			t.Errorf("%s: α = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestNeighborhoodIndependenceKnownValues(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"K5", Complete(5), 1}, // neighborhoods are cliques
		{"C6", Ring(6), 2},     // two non-adjacent neighbors
		{"star", CompleteBipartite(1, 5), 5},
		{"K33", CompleteBipartite(3, 3), 3},
		{"empty", New(4), 0},
	}
	for _, c := range cases {
		if got := NeighborhoodIndependence(c.g); got != c.want {
			t.Errorf("%s: θ = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestLineGraphThetaAtMostTwo(t *testing.T) {
	// θ(L(G)) ≤ 2 for every graph G — the structural fact Section 4's
	// edge-coloring application rests on.
	rng := rand.New(rand.NewSource(42))
	for _, g := range []*Graph{Ring(8), Grid(3, 4), GNP(15, 0.3, rng), Complete(6)} {
		lg, _ := LineGraph(g)
		if lg.M() == 0 {
			continue
		}
		if theta := NeighborhoodIndependence(lg); theta > 2 {
			t.Errorf("line graph of %v has θ = %d > 2", g, theta)
		}
	}
}

func TestGreedyThetaUpperBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*Graph{Ring(10), Grid(4, 4), GNP(18, 0.25, rng), CompleteBipartite(3, 4)} {
		exact := NeighborhoodIndependence(g)
		bound := GreedyThetaUpperBound(g)
		if bound < exact {
			t.Errorf("%v: greedy bound %d below exact θ %d", g, bound, exact)
		}
	}
}

func TestIsProperColoring(t *testing.T) {
	g := Ring(4)
	if err := IsProperColoring(g, []int{0, 1, 0, 1}); err != nil {
		t.Errorf("valid 2-coloring rejected: %v", err)
	}
	if err := IsProperColoring(g, []int{0, 0, 1, 1}); err == nil {
		t.Error("improper coloring accepted")
	}
	if err := IsProperColoring(g, []int{0, 1}); err == nil {
		t.Error("wrong-length coloring accepted")
	}
}

func TestMonochromaticDegrees(t *testing.T) {
	g := Ring(4)
	colors := []int{0, 0, 0, 1}
	mono := MonochromaticDegree(g, colors)
	want := []int{1, 2, 1, 0}
	for v := range want {
		if mono[v] != want[v] {
			t.Errorf("MonochromaticDegree[%d] = %d, want %d", v, mono[v], want[v])
		}
	}
	d := OrientByID(g)
	monoOut := MonochromaticOutDegree(d, colors)
	// Arcs: 1→0, 2→1, 3→0 (ring edges {0,1},{1,2},{2,3},{3,0}; toward smaller id: 1→0, 2→1, 3→2, 3→0).
	wantOut := []int{0, 1, 1, 0}
	for v := range wantOut {
		if monoOut[v] != wantOut[v] {
			t.Errorf("MonochromaticOutDegree[%d] = %d, want %d", v, monoOut[v], wantOut[v])
		}
	}
}

func TestColorStats(t *testing.T) {
	colors := []int{3, 1, 4, 1, 5, 9, 2, 6}
	if got := CountColors(colors); got != 7 {
		t.Errorf("CountColors = %d, want 7", got)
	}
	if got := MaxColor(colors); got != 9 {
		t.Errorf("MaxColor = %d, want 9", got)
	}
	if got := MaxColor(nil); got != -1 {
		t.Errorf("MaxColor(nil) = %d, want -1", got)
	}
}

func TestMonochromaticConsistencyQuick(t *testing.T) {
	// Sum over vertices of monochromatic degree = 2 × number of
	// monochromatic edges; and out+in monochromatic counts sum to the
	// undirected one under any orientation.
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%25) + 3
		rng := rand.New(rand.NewSource(seed))
		g := GNP(n, 0.4, rng)
		colors := make([]int, n)
		for v := range colors {
			colors[v] = rng.Intn(3)
		}
		mono := MonochromaticDegree(g, colors)
		total := 0
		for _, m := range mono {
			total += m
		}
		if total%2 != 0 {
			return false
		}
		d := OrientRandom(g, rng)
		monoOut := MonochromaticOutDegree(d, colors)
		outTotal := 0
		for _, m := range monoOut {
			outTotal += m
		}
		return outTotal*2 == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
