package graph

// Range-keyed segmented edge streams: the contract that lets
// BuildCSRParallel (parallelbuild.go) count and fill disjoint pieces
// of one replayable edge sequence on separate cores while producing
// the exact bytes of the sequential StreamCSR build.
//
// A SegmentedStream is an EdgeStream that can split itself into
// ordered replayable segments. The one rule that makes the whole
// parallel substrate deterministic: the segment *boundaries and
// contents* must be a pure function of the generator's own parameters
// — never of the requested segment count, GOMAXPROCS, or any runtime
// state — so that concatenating Segments(w) reproduces Stream()'s
// exact edge sequence for every w. Generators achieve this by fixing a
// chunk grid up front (segmentChunks row blocks, each with its own
// splitmix64-derived seed) and letting Segments(w) merely group
// consecutive chunks; the grouping changes which goroutine replays a
// chunk, not what the chunk emits.
//
// RingSegmented is seekable exactly: any vertex range replays its part
// of the cycle with no RNG at all. GNPSegmented re-keys each row chunk
// with its own derived seed, so a chunk is replayable in isolation —
// its sequential form (Stream, equal to StreamedGNPSegmented's input)
// is the canonical scale workload of the parallel substrate. The
// preferential-attachment PowerLawStream stays sequential by
// construction: every arrival samples the global degree-weighted pool,
// so no prefix of the stream is independent of the rest; wrap it in
// SingleSegment and BuildCSRParallel degrades to the sequential build.

import (
	"fmt"
	"math"
	"math/rand"
)

// SegmentedStream is a replayable edge stream that can split itself
// into ordered replayable segments for the parallel CSR build.
type SegmentedStream interface {
	// Stream returns the full sequential edge stream — the byte-identity
	// reference of every parallel build.
	Stream() EdgeStream
	// Segments returns at least one and at most want ordered replayable
	// segment streams whose concatenation emits exactly Stream()'s edge
	// sequence. Implementations must derive segment contents
	// independently of want (fixed chunk grids, grouped contiguously),
	// so builds are identical at every worker count.
	Segments(want int) []EdgeStream
}

// segmentChunks is the fixed chunk-grid resolution segmented
// generators use: fine enough to balance up to 64 workers, coarse
// enough that per-chunk reseeding stays negligible. The grid depends
// only on n — never on the requested segment count — which is what
// keeps seq/par byte-identity independent of GOMAXPROCS.
const segmentChunks = 64

// splitmix64 is the SplitMix64 output function — the same mixer the
// sweep scheduler uses for cell seeds (internal/bench/scheduler.go),
// reproduced here so per-chunk generator seeds follow the one seed-
// derivation scheme of the repo.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// chunkSeed derives the RNG seed of chunk c from the generator seed:
// chunk streams must be replayable in isolation, so each chunk owns an
// independent splitmix64-derived stream position.
func chunkSeed(seed int64, c int) int64 {
	x := splitmix64(uint64(seed))
	x = splitmix64(x ^ uint64(c+1))
	return int64(x)
}

// chunkBounds returns the fixed chunk grid over [0, n): chunks
// contiguous row ranges of near-equal size (empty ranges when
// n < chunks). Boundaries depend only on (n, chunks).
func chunkBounds(n, chunks int) []int {
	if chunks < 1 {
		chunks = 1
	}
	b := make([]int, chunks+1)
	for i := 1; i < chunks; i++ {
		b[i] = n * i / chunks
	}
	b[chunks] = n
	return b
}

// groupChunks groups k fixed chunks into at most want contiguous
// segments, each segment replaying its chunks in order. want below 1
// is treated as 1.
func groupChunks(k, want int, chunk func(c int) EdgeStream) []EdgeStream {
	if want < 1 {
		want = 1
	}
	if want > k {
		want = k
	}
	segs := make([]EdgeStream, want)
	for s := 0; s < want; s++ {
		lo, hi := k*s/want, k*(s+1)/want
		segs[s] = func(emit func(u, v int)) {
			for c := lo; c < hi; c++ {
				chunk(c)(emit)
			}
		}
	}
	return segs
}

// singleSegment adapts any replayable EdgeStream to the
// SegmentedStream contract as one indivisible segment.
type singleSegment struct{ s EdgeStream }

// SingleSegment wraps a stream that cannot split — the preferential-
// attachment PowerLawStream, whose every arrival samples the global
// degree-weighted pool and therefore admits no independent prefix —
// so it can flow through BuildCSRParallel (which degrades to the
// sequential StreamCSR build on a single segment).
func SingleSegment(s EdgeStream) SegmentedStream { return singleSegment{s} }

func (w singleSegment) Stream() EdgeStream             { return w.s }
func (w singleSegment) Segments(want int) []EdgeStream { return []EdgeStream{w.s} }

// ringSegmented is the exactly-seekable segmented n-cycle.
type ringSegmented struct{ n int }

// RingSegmented returns the n-cycle (n ≥ 3) as a segmented stream:
// the ring is seekable exactly — vertex range [lo, hi) emits its edges
// (v, v+1 mod n) with no RNG and no state — so any partition of the
// vertex range concatenates to RingStream(n)'s exact sequence.
func RingSegmented(n int) SegmentedStream {
	if n < 3 {
		panic("graph: RingSegmented needs n ≥ 3")
	}
	return ringSegmented{n: n}
}

func (r ringSegmented) Stream() EdgeStream { return RingStream(r.n) }

func (r ringSegmented) Segments(want int) []EdgeStream {
	b := chunkBounds(r.n, segmentChunks)
	return groupChunks(segmentChunks, want, func(c int) EdgeStream {
		lo, hi := b[c], b[c+1]
		return func(emit func(u, v int)) {
			for v := lo; v < hi; v++ {
				emit(v, (v+1)%r.n)
			}
		}
	})
}

// gnpSegmented is the chunk-reseeded segmented G(n, p).
type gnpSegmented struct {
	n    int
	p    float64
	seed int64
}

// GNPSegmented returns a range-keyed Erdős–Rényi G(n, p) family drawn
// deterministically from seed: the strictly-upper-triangular pair
// space is cut into segmentChunks fixed row chunks, each skip-sampled
// under its own splitmix64-derived seed (chunkSeed), so every chunk is
// replayable in isolation and the emitted sequence is identical
// whether the chunks run back to back on one core (Stream) or grouped
// across W workers (Segments) — for every W. It is a different (and
// equally valid) member of the G(n, p) distribution than GNPStream,
// which threads one RNG through all rows and therefore cannot split;
// the segmented family is the canonical workload of the parallel
// substrate's scale tier.
func GNPSegmented(n int, p float64, seed int64) SegmentedStream {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GNPSegmented probability %v out of [0,1]", p))
	}
	return gnpSegmented{n: n, p: p, seed: seed}
}

// chunk returns the skip-sampled stream of rows [lo, hi): the same
// geometric-skip walk as GNPStream, entered at row lo and exited when
// the walk leaves row hi-1.
func (g gnpSegmented) chunk(c int, b []int) EdgeStream {
	lo, hi := b[c], b[c+1]
	seed := chunkSeed(g.seed, c)
	n, p := g.n, g.p
	return func(emit func(u, v int)) {
		if p == 0 || n < 2 || lo >= hi {
			return
		}
		if p == 1 {
			for u := lo; u < hi; u++ {
				for v := u + 1; v < n; v++ {
					emit(u, v)
				}
			}
			return
		}
		rng := rand.New(rand.NewSource(seed))
		logq := math.Log1p(-p)
		u, v := lo, lo // v ≤ u means "before the first pair of row u"
		for {
			r := rng.Float64()
			if r == 0 { // log(0) would skip to infinity, i.e. no more edges
				return
			}
			skip := 1 + int(math.Floor(math.Log(r)/logq))
			if skip < 1 { // guard rounding at p → 1
				skip = 1
			}
			v += skip
			for v >= n {
				u++
				if u >= hi || u >= n-1 {
					return
				}
				v = u + 1 + (v - n)
			}
			emit(u, v)
		}
	}
}

func (g gnpSegmented) Stream() EdgeStream {
	b := chunkBounds(g.n, segmentChunks)
	return func(emit func(u, v int)) {
		for c := 0; c < segmentChunks; c++ {
			g.chunk(c, b)(emit)
		}
	}
}

func (g gnpSegmented) Segments(want int) []EdgeStream {
	b := chunkBounds(g.n, segmentChunks)
	return groupChunks(segmentChunks, want, func(c int) EdgeStream { return g.chunk(c, b) })
}

// StreamedGNPSegmented builds the range-keyed G(n, p) sequentially in
// CSR form — the byte-identity reference BuildCSRParallel must match
// at every worker count.
func StreamedGNPSegmented(n int, p float64, seed int64) *CSR {
	c, err := StreamCSR(n, GNPSegmented(n, p, seed).Stream())
	if err != nil {
		panic(err) // unreachable: per-chunk skip sampling emits each pair at most once
	}
	return c
}
