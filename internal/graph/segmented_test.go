package graph

import (
	"testing"
)

// collectEdges replays a stream into an explicit edge list.
func collectEdges(s EdgeStream) [][2]int {
	var out [][2]int
	s(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// concatSegments replays every segment in order into one edge list.
func concatSegments(segs []EdgeStream) [][2]int {
	var out [][2]int
	for _, s := range segs {
		s(func(u, v int) { out = append(out, [2]int{u, v}) })
	}
	return out
}

func edgeListsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The one rule of the SegmentedStream contract: concatenating
// Segments(w) reproduces Stream()'s exact edge sequence for every w —
// including w above the chunk-grid resolution and w = 1.
func TestSegmentedConcatenationInvariance(t *testing.T) {
	cases := []struct {
		name string
		ss   SegmentedStream
	}{
		{"ring/67", RingSegmented(67)},
		{"ring/4096", RingSegmented(4096)},
		{"gnp/500", GNPSegmented(500, 0.02, 11)},
		{"gnp/sparse", GNPSegmented(5000, 3.0/5000, 7)},
		{"gnp/p0", GNPSegmented(300, 0, 1)},
		{"gnp/p1", GNPSegmented(40, 1, 1)},
		{"gnp/tiny", GNPSegmented(3, 0.5, 9)}, // n < segmentChunks: empty chunks
		{"single", SingleSegment(PowerLawStream(200, 3, 5))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := collectEdges(tc.ss.Stream())
			for _, w := range []int{1, 2, 3, 5, 7, 64, 100} {
				segs := tc.ss.Segments(w)
				if len(segs) < 1 || len(segs) > w {
					t.Fatalf("Segments(%d) returned %d segments", w, len(segs))
				}
				if got := concatSegments(segs); !edgeListsEqual(got, want) {
					t.Fatalf("Segments(%d) concatenation diverges from Stream(): %d vs %d edges",
						w, len(got), len(want))
				}
			}
		})
	}
}

// The ring is exactly seekable: its segmented Stream() is the plain
// RingStream sequence, so the segmented build is byte-identical to
// StreamedRing.
func TestRingSegmentedMatchesRingStream(t *testing.T) {
	n := 1000
	if got, want := collectEdges(RingSegmented(n).Stream()), collectEdges(RingStream(n)); !edgeListsEqual(got, want) {
		t.Fatalf("RingSegmented.Stream() diverges from RingStream")
	}
	seq := StreamedRing(n)
	par, err := BuildCSRParallel(n, RingSegmented(n), 4)
	if err != nil {
		t.Fatalf("BuildCSRParallel: %v", err)
	}
	if !par.EqualBytes(seq) {
		t.Fatal("parallel segmented ring build is not byte-identical to StreamedRing")
	}
}

// SingleSegment never splits, whatever the caller asks for.
func TestSingleSegmentIsIndivisible(t *testing.T) {
	ss := SingleSegment(RingStream(10))
	for _, w := range []int{0, 1, 5, 100} {
		if got := len(ss.Segments(w)); got != 1 {
			t.Fatalf("SingleSegment.Segments(%d) = %d segments, want 1", w, got)
		}
	}
}

// GNPSegmented must stay a plausible G(n, p) member: edge count within
// a loose band of the expectation, rows valid CSR (sorted, dedup'd,
// symmetric — Validate checks all of it).
func TestGNPSegmentedDensityAndValidity(t *testing.T) {
	n, p := 20000, 0.001
	c := StreamedGNPSegmented(n, p, 42)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	want := p * float64(n) * float64(n-1) / 2
	m := float64(c.M())
	if m < 0.9*want || m > 1.1*want {
		t.Fatalf("m = %.0f, want within 10%% of %.0f", m, want)
	}
	// Different seeds give different graphs.
	if c2 := StreamedGNPSegmented(n, p, 43); c2.Fingerprint() == c.Fingerprint() {
		t.Fatal("seeds 42 and 43 produced identical graphs")
	}
	// Same seed reproduces exactly.
	if c3 := StreamedGNPSegmented(n, p, 42); !c3.EqualBytes(c) {
		t.Fatal("same seed did not reproduce the identical CSR")
	}
}

// Per-chunk seeds must differ from each other and from the raw seed —
// identical chunk streams would correlate rows across the grid.
func TestChunkSeedsAreDistinct(t *testing.T) {
	seen := map[int64]bool{1: true}
	for c := 0; c < segmentChunks; c++ {
		s := chunkSeed(1, c)
		if seen[s] {
			t.Fatalf("chunk %d reuses seed %d", c, s)
		}
		seen[s] = true
	}
}

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 3, 63, 64, 65, 1000} {
		b := chunkBounds(n, segmentChunks)
		if b[0] != 0 || b[segmentChunks] != n {
			t.Fatalf("n=%d: bounds [%d, %d], want [0, %d]", n, b[0], b[segmentChunks], n)
		}
		for i := 0; i < segmentChunks; i++ {
			if b[i] > b[i+1] {
				t.Fatalf("n=%d: bounds not monotone at %d", n, i)
			}
		}
	}
}
