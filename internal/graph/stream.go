package graph

// Streaming generators for the web-scale simulation path: each returns
// a replayable EdgeStream (or the CSR built from one) that emits edges
// directly into StreamCSR's preallocated arrays, so a 10⁷-node
// instance never materializes adjacency maps, per-node slices, or an
// intermediate edge list. Replayability comes from reseeding the RNG
// inside the stream function: both of StreamCSR's passes observe the
// identical edge sequence.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// RingStream returns the edge stream of the n-cycle (n ≥ 3).
func RingStream(n int) EdgeStream {
	if n < 3 {
		panic("graph: RingStream needs n ≥ 3")
	}
	return func(emit func(u, v int)) {
		for v := 0; v < n; v++ {
			emit(v, (v+1)%n)
		}
	}
}

// StreamedRing builds the n-cycle directly in CSR form.
func StreamedRing(n int) *CSR {
	c, err := StreamCSR(n, RingStream(n))
	if err != nil {
		panic(err) // unreachable: the ring stream is simple and replayable
	}
	return c
}

// GNPStream returns the edge stream of an Erdős–Rényi G(n, p) graph
// drawn deterministically from seed. It uses geometric skip sampling —
// O(m) work and O(1) state instead of the O(n²) coin flips of the
// map-built GNP — and emits edges (u, v), u < v, in lexicographic
// order, so the streamed rows arrive already sorted.
func GNPStream(n int, p float64, seed int64) EdgeStream {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GNPStream probability %v out of [0,1]", p))
	}
	return func(emit func(u, v int)) {
		if p == 0 || n < 2 {
			return
		}
		if p == 1 {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					emit(u, v)
				}
			}
			return
		}
		rng := rand.New(rand.NewSource(seed))
		logq := math.Log1p(-p)
		// Walk the strictly-upper-triangular pair space in skips of
		// geometrically distributed length: each skip lands on the next
		// present edge.
		u, v := 0, 0 // v ≤ u means "row exhausted, advance"
		for {
			r := rng.Float64()
			skip := 1
			if r > 0 { // log(0) would skip to infinity, i.e. no more edges
				skip = 1 + int(math.Floor(math.Log(r)/logq))
				if skip < 1 { // guard rounding at p → 1
					skip = 1
				}
			} else {
				return
			}
			v += skip
			for v >= n {
				u++
				if u >= n-1 {
					return
				}
				v = u + 1 + (v - n)
			}
			emit(u, v)
		}
	}
}

// StreamedGNP builds G(n, p) directly in CSR form from seed.
func StreamedGNP(n int, p float64, seed int64) *CSR {
	c, err := StreamCSR(n, GNPStream(n, p, seed))
	if err != nil {
		panic(err) // unreachable: skip sampling emits each pair at most once
	}
	return c
}

// powerLawScratch is the reusable working memory of one
// PowerLawStream replay: the degree-weighted sampling pool (4 bytes
// per attachment endpoint, int32 entries) and the per-arrival chosen
// set. Pooled across replays — the pool is by far the dominant build
// allocation (≈ 8·k·n bytes per replay, and StreamCSR replays twice) —
// the same lifecycle pattern as palette.SelectScratch's arena;
// TestPowerLawStreamScratchReuse guards the allocation bound.
type powerLawScratch struct {
	targets []int32
	chosen  []int32
}

var powerLawScratchPool = sync.Pool{New: func() any { return new(powerLawScratch) }}

// PowerLawStream returns the edge stream of a preferential-attachment
// (Barabási–Albert style) graph on n vertices drawn deterministically
// from seed: after a seed clique on k+1 vertices, each arriving vertex
// attaches to k distinct existing vertices chosen proportionally to
// degree with 5% uniform smoothing — the same skewed-degree family as
// PowerLaw, in streaming form. Each replay rebuilds its state from a
// pooled scratch (reset, never reread), so replays stay independent
// while steady-state builds stop reallocating the sampling pool; n
// must stay below 2³¹ (int32 pool entries).
//
// The stream is sequential by construction: every arrival samples the
// global degree-weighted pool, so no prefix is independent of the
// rest — there is no segmented form (wrap in SingleSegment for
// BuildCSRParallel, which then takes the sequential build path).
func PowerLawStream(n, k int, seed int64) EdgeStream {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("graph: PowerLawStream(%d,%d) infeasible", n, k))
	}
	if int64(n) > int64(math.MaxInt32) {
		panic("graph: PowerLawStream needs n < 2³¹ (int32 sampling pool)")
	}
	return func(emit func(u, v int)) {
		rng := rand.New(rand.NewSource(seed))
		sc := powerLawScratchPool.Get().(*powerLawScratch)
		defer powerLawScratchPool.Put(sc)
		if need := 2*(n-k-1)*k + k*(k+1); cap(sc.targets) < need {
			sc.targets = make([]int32, 0, need)
		}
		if cap(sc.chosen) < k {
			sc.chosen = make([]int32, 0, k)
		}
		targets := sc.targets[:0]
		for u := 0; u <= k; u++ {
			for v := u + 1; v <= k; v++ {
				emit(u, v)
				targets = append(targets, int32(u), int32(v))
			}
		}
		chosen := sc.chosen[:0]
		for v := k + 1; v < n; v++ {
			chosen = chosen[:0]
			for len(chosen) < k {
				// Both draw branches produce a bare candidate; acceptance
				// is decided by attachAccept alone, so the self/dup
				// rejection covers each branch by construction rather than
				// by the incidental ranges of the draws (the uniform draw
				// is bounded by v and the pool only holds vertices that
				// arrived before v, but neither branch is trusted for it).
				var t int32
				if len(targets) == 0 || rng.Float64() < 0.05 {
					t = int32(rng.Intn(v)) // smoothing: occasionally uniform
				} else {
					t = targets[rng.Intn(len(targets))]
				}
				if attachAccept(chosen, t, int32(v)) {
					chosen = append(chosen, t)
				}
			}
			for _, t := range chosen {
				emit(v, int(t))
				targets = append(targets, int32(v), t)
			}
		}
	}
}

// attachAccept is PowerLawStream's rejection predicate: candidate t
// may join arriving vertex v's attachment set iff it is not v itself
// (no self-loops) and not already chosen in this arrival (no duplicate
// attachment edges). Every draw branch must pass through it — the
// predicate deliberately assumes nothing about where t came from.
func attachAccept(chosen []int32, t, v int32) bool {
	if t == v {
		return false
	}
	for _, c := range chosen {
		if c == t {
			return false
		}
	}
	return true
}

// StreamedPowerLaw builds the preferential-attachment graph directly
// in CSR form from seed.
func StreamedPowerLaw(n, k int, seed int64) *CSR {
	c, err := StreamCSR(n, PowerLawStream(n, k, seed))
	if err != nil {
		panic(err) // unreachable: per-vertex targets are distinct by construction
	}
	return c
}
