package graph

import (
	"testing"
)

// TestStreamedGeneratorsMatchReference replays each streaming
// generator's edge stream through the adjacency-list build path and
// demands the streamed CSR be byte-identical to it (offsets, columns,
// fingerprint) on small instances.
func TestStreamedGeneratorsMatchReference(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		csr    *CSR
		stream EdgeStream
	}{
		{"ring3", 3, StreamedRing(3), RingStream(3)},
		{"ring17", 17, StreamedRing(17), RingStream(17)},
		{"gnp sparse", 64, StreamedGNP(64, 0.07, 5), GNPStream(64, 0.07, 5)},
		{"gnp dense", 24, StreamedGNP(24, 0.6, 6), GNPStream(24, 0.6, 6)},
		{"gnp empty", 20, StreamedGNP(20, 0, 7), GNPStream(20, 0, 7)},
		{"gnp complete", 9, StreamedGNP(9, 1, 8), GNPStream(9, 1, 8)},
		{"powerlaw k1", 40, StreamedPowerLaw(40, 1, 9), PowerLawStream(40, 1, 9)},
		{"powerlaw k3", 60, StreamedPowerLaw(60, 3, 10), PowerLawStream(60, 3, 10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := buildReference(t, tc.n, tc.stream)
			assertCSREqualsGraph(t, tc.csr, ref)
			if err := tc.csr.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

// TestStreamedGNPIsComplete pins the skip-sampling boundary p=1: every
// pair must be present.
func TestStreamedGNPIsComplete(t *testing.T) {
	c := StreamedGNP(12, 1, 1)
	if c.M() != 12*11/2 {
		t.Fatalf("p=1 edges = %d, want %d", c.M(), 12*11/2)
	}
}

// TestStreamedGNPDensity sanity-checks the skip sampler against the
// expected edge count (binomial mean ± 6σ) so a systematically biased
// skip formula cannot hide behind replay consistency.
func TestStreamedGNPDensity(t *testing.T) {
	n, p := 2000, 0.01
	c := StreamedGNP(n, p, 42)
	pairs := float64(n) * float64(n-1) / 2
	mean := pairs * p
	sigma := 140.6 // sqrt(pairs·p·(1−p)) ≈ 140.6
	got := float64(c.M())
	if got < mean-6*sigma || got > mean+6*sigma {
		t.Fatalf("G(%d,%v) has %v edges, want %v ± %v", n, p, got, mean, 6*sigma)
	}
}

// TestStreamedPowerLawShape checks the attachment invariants: exact
// edge count and minimum degree k.
func TestStreamedPowerLawShape(t *testing.T) {
	n, k := 300, 3
	c := StreamedPowerLaw(n, k, 11)
	wantEdges := int64(k*(k+1)/2 + (n-k-1)*k)
	if c.M() != wantEdges {
		t.Fatalf("edges = %d, want %d", c.M(), wantEdges)
	}
	for v := 0; v < n; v++ {
		if c.Degree(v) < k {
			t.Fatalf("vertex %d degree %d < k=%d", v, c.Degree(v), k)
		}
	}
}

// TestAttachAccept pins PowerLawStream's rejection predicate directly:
// both draw branches route through it, so self-loops and duplicate
// attachments are excluded by the predicate itself, not by the ranges
// the draws happen to produce.
func TestAttachAccept(t *testing.T) {
	cases := []struct {
		name   string
		chosen []int32
		t, v   int32
		want   bool
	}{
		{"fresh target", []int32{1, 4}, 2, 9, true},
		{"self-loop", nil, 9, 9, false},
		{"duplicate", []int32{1, 4}, 4, 9, false},
		{"duplicate first", []int32{4, 1}, 4, 9, false},
		{"empty chosen", nil, 0, 9, true},
		{"self with chosen", []int32{1}, 9, 9, false},
		// The predicate must not trust the draw: a candidate above v
		// (impossible from either branch today) is still only rejected
		// for self/dup reasons, never accepted as a duplicate or self.
		{"future vertex", []int32{1}, 11, 9, true},
	}
	for _, tc := range cases {
		if got := attachAccept(tc.chosen, tc.t, tc.v); got != tc.want {
			t.Errorf("%s: attachAccept(%v, %d, %d) = %v, want %v", tc.name, tc.chosen, tc.t, tc.v, got, tc.want)
		}
	}
}

// TestPowerLawStreamAttachmentInvariantMillion is the satellite's
// million-node invariant: replay the raw attachment stream (not the
// deduplicating CSR build) and assert every arriving vertex contributes
// exactly k attachment edges with no self-loop and no duplicate target
// — per arrival, at stream level, where a rejection bug would actually
// surface. Skipped in -short mode (docs/TESTING.md §Scale tests).
func TestPowerLawStreamAttachmentInvariantMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const (
		n = 1_000_000
		k = 3
	)
	var (
		cur     = -1            // arriving vertex currently being checked
		seen    [k]int32        // targets of the current arrival
		cnt     = 0             // attachments of the current arrival
		badness = 0             // total violations (capped reporting)
		edges   = int64(0)
	)
	flush := func() {
		if cur > k && cnt != k {
			badness++
			if badness < 10 {
				t.Errorf("vertex %d attached %d times, want %d", cur, cnt, k)
			}
		}
	}
	PowerLawStream(n, k, 77)(func(u, v int) {
		edges++
		if u == v {
			badness++
			if badness < 10 {
				t.Errorf("self-loop at vertex %d", u)
			}
		}
		if u <= k && v <= k {
			return // seed clique
		}
		// Attachment edges are emitted (arriving vertex, target),
		// grouped by arrival in ascending order.
		if u != cur {
			flush()
			cur, cnt = u, 0
		}
		if v >= u {
			badness++
			if badness < 10 {
				t.Errorf("vertex %d attached to non-prior vertex %d", u, v)
			}
		}
		for i := 0; i < cnt && i < k; i++ {
			if seen[i] == int32(v) {
				badness++
				if badness < 10 {
					t.Errorf("vertex %d attached to %d twice", u, v)
				}
			}
		}
		if cnt < k {
			seen[cnt] = int32(v)
		}
		cnt++
	})
	flush()
	wantEdges := int64(k*(k+1)/2 + (n-k-1)*k)
	if edges != wantEdges {
		t.Fatalf("stream emitted %d edges, want %d", edges, wantEdges)
	}
	if badness > 0 {
		t.Fatalf("%d attachment invariant violations", badness)
	}
}

// TestStreamedGeneratorInvariantsLarge runs the structural invariants
// the fuzz target checks on small n — degree sum, sortedness,
// simplicity, symmetry — on million-node streamed builds, where the
// map-built reference would be too slow to compare against. Skipped in
// -short mode (docs/TESTING.md §Scale tests).
func TestStreamedGeneratorInvariantsLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const n = 1_000_000
	cases := []struct {
		name string
		csr  *CSR
	}{
		{"ring", StreamedRing(n)},
		{"gnp", StreamedGNP(n, 4.0/float64(n), 21)},
		{"powerlaw", StreamedPowerLaw(n, 3, 22)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.csr
			if c.N() != n {
				t.Fatalf("n = %d", c.N())
			}
			var degSum int64
			for v := 0; v < n; v++ {
				degSum += int64(c.Degree(v))
			}
			if degSum != c.Arcs() || degSum != 2*c.M() {
				t.Fatalf("degree sum %d, arcs %d, 2m %d", degSum, c.Arcs(), 2*c.M())
			}
			if err := c.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
		})
	}
}

// FuzzStreamingCSRBuild decodes arbitrary bytes into an edge stream
// (deduplicated, self-loop-free, so both build paths accept it) and
// asserts the streamed CSR is byte-identical to the map-built
// reference: same offsets, same columns, same fingerprint.
func FuzzStreamingCSRBuild(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0})
	f.Add([]byte{9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			data = []byte{0}
		}
		n := int(data[0])%32 + 1
		type edge struct{ u, v int }
		seen := make(map[edge]bool)
		var edges []edge
		for i := 1; i+1 < len(data); i += 2 {
			u, v := int(data[i])%n, int(data[i+1])%n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			e := edge{u, v}
			if seen[e] {
				continue
			}
			seen[e] = true
			edges = append(edges, e)
		}
		stream := func(emit func(u, v int)) {
			for _, e := range edges {
				emit(e.u, e.v)
			}
		}
		c, err := StreamCSR(n, stream)
		if err != nil {
			t.Fatalf("StreamCSR rejected a clean stream: %v", err)
		}
		ref := buildReference(t, n, stream)
		assertCSREqualsGraph(t, c, ref)
		if err := c.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	})
}
