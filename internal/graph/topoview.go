package graph

// TopoView is the immutable, lock-free topology snapshot the
// incremental coloring service publishes next to each color snapshot:
// a base CSR plus a chain of per-batch delta maps (the rows each batch
// mutated). Readers resolve a row by walking the chain newest-first
// and falling back to the base — no locks, no copies — while the
// writer keeps mutating its own overlay, because overlay rows become
// copy-on-write the moment they are published into a view.
//
// The chain depth is bounded: it grows by one per batch and collapses
// to a single delta map whenever the service rebases onto a freshly
// compacted CSR, or eagerly once it exceeds collapseDepth (so a
// service configured never to compact still reads in O(1) map probes).
type TopoView struct {
	base   *CSR
	parent *TopoView
	// delta holds the rows the producing batch mutated. A present
	// entry fully replaces deeper rows (nil means isolated). The map
	// and its row slices are immutable once the view is constructed.
	delta map[int][]int
	n     int
	arcs  int64
	depth int
}

// collapseDepth caps the delta-chain length; beyond it Extend merges
// the chain into one map so read cost stays bounded between
// compactions. Every snapshot read of a patched-or-not row probes up
// to depth maps before falling through to the CSR, so the cap is kept
// small: collapsing merges only the accumulated patch union (cheap,
// amortized over the window) while each extra level taxes every read.
const collapseDepth = 8

// NewTopoView returns a view of the bare CSR (no deltas).
func NewTopoView(base *CSR) *TopoView {
	return &TopoView{base: base, n: base.N(), arcs: base.Arcs()}
}

// Extend layers one batch's mutated rows over the view. The delta map
// and its row slices transfer ownership to the view and must not be
// mutated afterwards. An empty delta with unchanged counts returns
// the receiver unchanged.
func (t *TopoView) Extend(delta map[int][]int, n int, arcs int64) *TopoView {
	if len(delta) == 0 && n == t.n && arcs == t.arcs {
		return t
	}
	nt := &TopoView{base: t.base, parent: t, delta: delta, n: n, arcs: arcs, depth: t.depth + 1}
	if nt.depth > collapseDepth {
		return nt.Collapse()
	}
	return nt
}

// Rebase returns a fresh single-level view over a newly compacted
// CSR: rows holds the patches still live over the new base (ownership
// transfers).
func RebasedTopoView(base *CSR, rows map[int][]int, n int, arcs int64) *TopoView {
	return &TopoView{base: base, delta: rows, n: n, arcs: arcs}
}

// Collapse merges the delta chain into a single-level view (newest
// entry wins per row). The receiver is unchanged.
func (t *TopoView) Collapse() *TopoView {
	merged := make(map[int][]int)
	for v := t; v != nil; v = v.parent {
		for id, row := range v.delta {
			if _, ok := merged[id]; !ok {
				merged[id] = row
			}
		}
	}
	return &TopoView{base: t.base, delta: merged, n: t.n, arcs: t.arcs}
}

// N returns the vertex count at the view's version.
func (t *TopoView) N() int { return t.n }

// M returns the undirected edge count at the view's version.
func (t *TopoView) M() int64 { return t.arcs / 2 }

// Arcs returns the directed-edge count 2·M.
func (t *TopoView) Arcs() int64 { return t.arcs }

// Depth returns the delta-chain length (diagnostics).
func (t *TopoView) Depth() int { return t.depth }

// Row returns v's sorted neighbor list at the view's version: the
// newest delta entry covering v, else the base row. The slice is
// owned by the view and must not be modified. Out-of-range vertices
// yield nil.
func (t *TopoView) Row(v int) []int {
	if v < 0 || v >= t.n {
		return nil
	}
	for view := t; view != nil; view = view.parent {
		if row, ok := view.delta[v]; ok {
			return row
		}
	}
	if v < t.base.N() {
		return t.base.Row(v)
	}
	return nil
}

// Neighbors is Row under the repair.Topology method name.
func (t *TopoView) Neighbors(v int) []int { return t.Row(v) }

// Degree returns the degree of v at the view's version (0 when out of
// range).
func (t *TopoView) Degree(v int) int { return len(t.Row(v)) }

// HasEdge reports whether {u, v} is present at the view's version, by
// binary search on u's row.
func (t *TopoView) HasEdge(u, v int) bool {
	if u < 0 || u >= t.n || v < 0 || v >= t.n || u == v {
		return false
	}
	row := t.Row(u)
	i := searchInts(row, v)
	return i < len(row) && row[i] == v
}

// searchInts is sort.SearchInts without the interface indirection —
// the view read path stays allocation-free and inlinable.
func searchInts(row []int, x int) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
