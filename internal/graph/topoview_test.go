package graph

import (
	"reflect"
	"testing"
)

// mirrorView checks a TopoView row-for-row against an overlay.
func mirrorView(t *testing.T, view *TopoView, ov *Overlay, label string) {
	t.Helper()
	if view.N() != ov.N() || view.Arcs() != ov.Arcs() {
		t.Fatalf("%s: view n=%d arcs=%d, overlay n=%d arcs=%d", label, view.N(), view.Arcs(), ov.N(), ov.Arcs())
	}
	for v := 0; v < ov.N(); v++ {
		if !reflect.DeepEqual(append([]int{}, view.Row(v)...), append([]int{}, ov.Neighbors(v)...)) {
			t.Fatalf("%s: row %d: view %v, overlay %v", label, v, view.Row(v), ov.Neighbors(v))
		}
	}
}

// TestTopoViewTracksOverlay drives an overlay through batched churn
// with CommitDelta/Extend after every batch and checks each published
// view matches the overlay state at its version — including stale
// older views staying frozen (immutability across COW generations).
func TestTopoViewTracksOverlay(t *testing.T) {
	base := StreamedRing(24)
	ov := NewOverlay(base)
	ov.EnableSnapshots()
	view := NewTopoView(base)

	type versioned struct {
		view *TopoView
		rows [][]int
	}
	var history []versioned

	record := func() {
		rows := make([][]int, ov.N())
		for v := 0; v < ov.N(); v++ {
			rows[v] = append([]int(nil), ov.Neighbors(v)...)
		}
		history = append(history, versioned{view: view, rows: rows})
	}

	batches := [][]func() error{
		{func() error { return ov.AddEdge(0, 5) }, func() error { return ov.AddEdge(3, 9) }},
		{func() error { ov.RemoveEdge(0, 1); return nil }, func() error { ov.AddNode(); return ov.AddEdge(24, 2) }},
		{func() error { ov.RemoveNode(5); return nil }},
		{func() error { return ov.AddEdge(5, 7) }, func() error { return ov.AddEdge(10, 14) }},
	}
	for bi, batch := range batches {
		for _, op := range batch {
			if err := op(); err != nil {
				t.Fatalf("batch %d: %v", bi, err)
			}
		}
		delta := ov.CommitDelta()
		view = view.Extend(delta, ov.N(), ov.Arcs())
		mirrorView(t, view, ov, "live")
		record()
	}

	// Older views must still reflect their version exactly.
	for i, h := range history {
		for v := 0; v < h.view.N(); v++ {
			got := append([]int{}, h.view.Row(v)...)
			if !reflect.DeepEqual(got, append([]int{}, h.rows[v]...)) {
				t.Fatalf("version %d row %d changed: %v vs %v", i, v, got, h.rows[v])
			}
		}
	}

	// HasEdge/Degree consistency plus out-of-range behavior.
	if view.HasEdge(5, 7) != ov.HasEdge(5, 7) || view.Degree(24) != ov.Degree(24) {
		t.Fatal("HasEdge/Degree diverge from overlay")
	}
	if view.Row(-1) != nil || view.Row(view.N()) != nil || view.HasEdge(0, 999) {
		t.Fatal("out-of-range reads not nil/false")
	}
}

// TestTopoViewCollapse pins the depth bound: a long Extend chain
// collapses past collapseDepth and the collapsed view is
// row-identical to the chained one.
func TestTopoViewCollapse(t *testing.T) {
	base := StreamedRing(16)
	ov := NewOverlay(base)
	ov.EnableSnapshots()
	view := NewTopoView(base)
	for i := 0; i < collapseDepth+10; i++ {
		u := i % 16
		w := (u + 3 + i%5) % 16
		if u != w && !ov.HasEdge(u, w) {
			if err := ov.AddEdge(u, w); err != nil {
				t.Fatal(err)
			}
		} else if ov.HasEdge(u, w) {
			ov.RemoveEdge(u, w)
		}
		view = view.Extend(ov.CommitDelta(), ov.N(), ov.Arcs())
	}
	if view.Depth() > collapseDepth {
		t.Fatalf("depth %d exceeds bound %d", view.Depth(), collapseDepth)
	}
	mirrorView(t, view, ov, "collapsed")
	collapsed := view.Collapse()
	mirrorView(t, collapsed, ov, "explicit collapse")
	// Extend with an empty delta and unchanged counts is a no-op.
	if view.Extend(nil, ov.N(), ov.Arcs()) != view {
		t.Fatal("empty Extend did not return the receiver")
	}
}

// TestOverlayViewMirrorsOverlay applies the same op sequence to an
// overlay directly and through an OverlayView, then merges the delta
// and checks the results are identical — including arc accounting,
// former-neighbor returns, and error text.
func TestOverlayViewMirrorsOverlay(t *testing.T) {
	mk := func() (*Overlay, *Overlay) {
		return NewOverlay(StreamedRing(20)), NewOverlay(StreamedRing(20))
	}
	direct, viaView := mk()
	view := viaView.View(nil)

	type step struct {
		name string
		dir  func() (any, error)
		vw   func() (any, error)
	}
	steps := []step{
		{"add 0-7", func() (any, error) { return nil, direct.AddEdge(0, 7) }, func() (any, error) { return nil, view.AddEdge(0, 7) }},
		{"dup 0-7", func() (any, error) { return nil, direct.AddEdge(7, 0) }, func() (any, error) { return nil, view.AddEdge(7, 0) }},
		{"self", func() (any, error) { return nil, direct.AddEdge(3, 3) }, func() (any, error) { return nil, view.AddEdge(3, 3) }},
		{"range", func() (any, error) { return nil, direct.AddEdge(3, 99) }, func() (any, error) { return nil, view.AddEdge(3, 99) }},
		{"rm 1-2", func() (any, error) { return direct.RemoveEdge(1, 2), nil }, func() (any, error) { return view.RemoveEdge(1, 2), nil }},
		{"rm absent", func() (any, error) { return direct.RemoveEdge(1, 2), nil }, func() (any, error) { return view.RemoveEdge(1, 2), nil }},
		{"addnode", func() (any, error) { return direct.AddNode(), nil }, func() (any, error) { return view.AddNode(), nil }},
		{"edge to new", func() (any, error) { return nil, direct.AddEdge(20, 4) }, func() (any, error) { return nil, view.AddEdge(20, 4) }},
		{"rmnode 7", func() (any, error) { return direct.RemoveNode(7), nil }, func() (any, error) { return view.RemoveNode(7), nil }},
		{"rmnode again", func() (any, error) { return direct.RemoveNode(7), nil }, func() (any, error) { return view.RemoveNode(7), nil }},
		{"rmnode range", func() (any, error) { return direct.RemoveNode(-1), nil }, func() (any, error) { return view.RemoveNode(-1), nil }},
	}
	for _, st := range steps {
		dv, derr := st.dir()
		vv, verr := st.vw()
		if !reflect.DeepEqual(dv, vv) {
			t.Fatalf("%s: direct %v, view %v", st.name, dv, vv)
		}
		dmsg, vmsg := "", ""
		if derr != nil {
			dmsg = derr.Error()
		}
		if verr != nil {
			vmsg = verr.Error()
		}
		if dmsg != vmsg {
			t.Fatalf("%s: error %q, view error %q", st.name, dmsg, vmsg)
		}
	}

	rows, n, arcsDelta := view.Delta()
	viaView.ApplyDeltas(n, viaView.Arcs()+arcsDelta, rows)
	if direct.N() != viaView.N() || direct.Arcs() != viaView.Arcs() {
		t.Fatalf("counts: direct n=%d arcs=%d, view n=%d arcs=%d", direct.N(), direct.Arcs(), viaView.N(), viaView.Arcs())
	}
	for v := 0; v < direct.N(); v++ {
		if !reflect.DeepEqual(append([]int{}, direct.Neighbors(v)...), append([]int{}, viaView.Neighbors(v)...)) {
			t.Fatalf("row %d: direct %v, merged %v", v, direct.Neighbors(v), viaView.Neighbors(v))
		}
	}
	if err := viaView.Validate(); err != nil {
		t.Fatalf("merged overlay invalid: %v", err)
	}
}

// TestOverlayViewLayering pins the epilogue lookup order: a view with
// an extra layer sees the extra rows over the overlay, and its own
// mutations over both, while the overlay never changes until
// ApplyDeltas.
func TestOverlayViewLayering(t *testing.T) {
	ov := NewOverlay(StreamedRing(10))
	regionRows := map[int][]int{2: {5, 7}} // pretend region delta: 2's row rewritten
	view := ov.View(func(v int) ([]int, bool) {
		r, ok := regionRows[v]
		return r, ok
	})
	if got := view.Neighbors(2); !reflect.DeepEqual(got, []int{5, 7}) {
		t.Fatalf("layered read = %v, want [5 7]", got)
	}
	if got := view.Neighbors(3); !reflect.DeepEqual(got, []int{2, 4}) {
		t.Fatalf("fallthrough read = %v, want ring row", got)
	}
	if !view.RemoveEdge(2, 5) {
		t.Fatal("RemoveEdge through layered row failed")
	}
	if got := view.Neighbors(2); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("post-remove layered read = %v, want [7]", got)
	}
	// The extra layer and the overlay are untouched.
	if !reflect.DeepEqual(regionRows[2], []int{5, 7}) {
		t.Fatal("view mutated the extra layer's row")
	}
	if !reflect.DeepEqual(append([]int{}, ov.Neighbors(2)...), []int{1, 3}) {
		t.Fatal("view mutated the overlay")
	}
}

// TestOverlayFreezeRebase pins the background-compaction handoff: the
// frozen copy compacts to the freeze-time state while the live
// overlay keeps mutating; Rebase keeps exactly the rows touched since
// the freeze and the rebased overlay reads identically to an overlay
// that never compacted.
func TestOverlayFreezeRebase(t *testing.T) {
	ref := NewOverlay(StreamedRing(32)) // never compacts: the oracle
	ov := NewOverlay(StreamedRing(32))
	ov.EnableSnapshots()

	both := func(f func(o *Overlay) error) {
		if err := f(ref); err != nil {
			t.Fatal(err)
		}
		if err := f(ov); err != nil {
			t.Fatal(err)
		}
	}

	both(func(o *Overlay) error { return o.AddEdge(0, 9) })
	both(func(o *Overlay) error { return o.AddEdge(4, 13) })
	both(func(o *Overlay) error { o.RemoveEdge(20, 21); return nil })
	ov.CommitDelta()

	frozen := ov.Freeze()
	frozenArcs := frozen.Arcs()

	// Post-freeze churn on the live overlay only.
	both(func(o *Overlay) error { return o.AddEdge(9, 27) })
	both(func(o *Overlay) error { o.RemoveNode(13); return nil })
	both(func(o *Overlay) error { o.AddNode(); return o.AddEdge(32, 0) })
	ov.CommitDelta()

	csr, err := frozen.Compact()
	if err != nil {
		t.Fatalf("frozen compact: %v", err)
	}
	if csr.Arcs() != frozenArcs {
		t.Fatalf("compacted CSR arcs %d, frozen had %d", csr.Arcs(), frozenArcs)
	}
	ov.Rebase(csr)

	if ov.N() != ref.N() || ov.Arcs() != ref.Arcs() {
		t.Fatalf("rebased counts n=%d arcs=%d, want n=%d arcs=%d", ov.N(), ov.Arcs(), ref.N(), ref.Arcs())
	}
	for v := 0; v < ref.N(); v++ {
		if !reflect.DeepEqual(append([]int{}, ov.Neighbors(v)...), append([]int{}, ref.Neighbors(v)...)) {
			t.Fatalf("row %d: rebased %v, reference %v", v, ov.Neighbors(v), ref.Neighbors(v))
		}
	}
	if err := ov.Validate(); err != nil {
		t.Fatalf("rebased overlay invalid: %v", err)
	}
	// Only post-freeze rows survive as patches.
	if p := ov.Patched(); p == 0 || p > 8 {
		t.Fatalf("rebased patch count %d, want the post-freeze touched rows only", p)
	}
	// And the rebased overlay keeps working under further churn.
	both(func(o *Overlay) error { return o.AddEdge(1, 16) })
	ov.CommitDelta()
	for v := 0; v < ref.N(); v++ {
		if !reflect.DeepEqual(append([]int{}, ov.Neighbors(v)...), append([]int{}, ref.Neighbors(v)...)) {
			t.Fatalf("post-rebase churn row %d diverged", v)
		}
	}
}

// TestRegionBounds pins the degree-mass partition: bounds are
// monotone, cover [0, n], depend only on the base for interior
// boundaries, and RegionOf inverts them.
func TestRegionBounds(t *testing.T) {
	base := StreamedPowerLaw(500, 3, 9)
	for _, s := range []int{1, 2, 4, 7, 16} {
		b := RegionBounds(base, 520, s) // 20 appended vertices
		if len(b) != s+1 {
			t.Fatalf("s=%d: %d bounds", s, len(b))
		}
		if b[0] != 0 || b[s] != 520 {
			t.Fatalf("s=%d: bounds %v not covering [0,520]", s, b)
		}
		for i := 1; i <= s; i++ {
			if b[i] < b[i-1] {
				t.Fatalf("s=%d: bounds %v not monotone", s, b)
			}
		}
		for _, v := range []int{0, 1, 250, 499, 500, 519} {
			r := RegionOf(b, v)
			if v < b[r] || (r+1 < len(b) && v >= b[r+1] && r != s-1) {
				t.Fatalf("s=%d: RegionOf(%d) = %d with bounds %v", s, v, r, b)
			}
		}
		// Appended vertices land in the last region.
		if r := RegionOf(b, 510); r != s-1 {
			t.Fatalf("s=%d: appended vertex in region %d", s, r)
		}
	}
	// Degenerate shapes.
	if b := RegionBounds(base, 500, 0); len(b) != 2 {
		t.Fatalf("s=0 bounds %v", b)
	}
	if b := RegionBounds(StreamedRing(3), 3, 8); len(b) != 4 {
		t.Fatalf("s>n bounds %v", b)
	}
}

// TestOverlayUnpatchedReadAllocs is the satellite pin: steady-state
// reads on unpatched rows — the overwhelming majority on a compacted
// substrate — allocate nothing.
func TestOverlayUnpatchedReadAllocs(t *testing.T) {
	ov := NewOverlay(StreamedRing(1024))
	ov.EnableSnapshots()
	if err := ov.AddEdge(0, 2); err != nil { // one patched row pair
		t.Fatal(err)
	}
	ov.CommitDelta()
	sink := 0
	allocs := testing.AllocsPerRun(200, func() {
		for v := 100; v < 140; v++ {
			sink += len(ov.Neighbors(v))
			if ov.HasEdge(v, v+1) {
				sink++
			}
			sink += ov.Degree(v)
		}
	})
	if allocs != 0 {
		t.Fatalf("unpatched reads allocate %.1f/op, want 0", allocs)
	}
	view := NewTopoView(ov.Base()).Extend(map[int][]int{0: ov.Neighbors(0)}, ov.N(), ov.Arcs())
	allocs = testing.AllocsPerRun(200, func() {
		for v := 100; v < 140; v++ {
			sink += len(view.Row(v))
			if view.HasEdge(v, v+1) {
				sink++
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("TopoView reads allocate %.1f/op, want 0", allocs)
	}
	_ = sink
}

// TestOverlayInsertPoolSteadyState pins the pooled write path: after
// warm-up, repeatedly toggling edges on already-patched rows
// allocates nothing per op (row buffers cycle through the pool
// instead of the heap).
func TestOverlayInsertPoolSteadyState(t *testing.T) {
	ov := NewOverlay(StreamedRing(256))
	// No snapshot mode: buffers stay private, pool handles growth.
	for v := 0; v < 64; v++ {
		if err := ov.AddEdge(v, v+100); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < 64; v++ {
			ov.RemoveEdge(v, v+100)
			if err := ov.AddEdge(v, v+100); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0.5 {
		t.Fatalf("steady-state edge toggles allocate %.2f/op, want ~0", allocs)
	}
}

func BenchmarkOverlayNeighborsUnpatched(b *testing.B) {
	ov := NewOverlay(StreamedRing(1 << 16))
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += len(ov.Neighbors(i & 0xffff))
	}
	_ = sink
}

func BenchmarkOverlayNeighborsPatched(b *testing.B) {
	ov := NewOverlay(StreamedRing(1 << 16))
	for v := 0; v < 1<<16; v += 2 {
		if err := ov.AddEdge(v, (v+7)&0xffff); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += len(ov.Neighbors(i & 0xffff))
	}
	_ = sink
}

func BenchmarkOverlayHasEdgeUnpatched(b *testing.B) {
	ov := NewOverlay(StreamedRing(1 << 16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := i & 0xffff
		ov.HasEdge(v, (v+1)&0xffff)
	}
}

func BenchmarkOverlayHasEdgePatched(b *testing.B) {
	ov := NewOverlay(StreamedRing(1 << 16))
	for v := 0; v < 1<<16; v += 2 {
		if err := ov.AddEdge(v, (v+7)&0xffff); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i & 0xffff
		ov.HasEdge(v, (v+1)&0xffff)
	}
}
