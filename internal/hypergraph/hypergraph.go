// Package hypergraph provides rank-bounded hypergraphs and their line
// graphs. The line graph of a rank-r hypergraph has neighborhood
// independence θ ≤ r, which makes these the canonical generator for
// the bounded-neighborhood-independence workloads of Section 4 of the
// paper: coloring the vertices of the line graph is coloring the
// hyperedges of the hypergraph.
package hypergraph

import (
	"fmt"
	"math/rand"
	"sort"

	"listcolor/internal/graph"
)

// Hypergraph is a hypergraph on vertices 0..n-1 whose hyperedges are
// vertex sets of size ≥ 2.
type Hypergraph struct {
	n     int
	edges [][]int // each sorted, no duplicate vertices
}

// New returns an empty hypergraph on n vertices.
func New(n int) *Hypergraph {
	if n < 0 {
		panic("hypergraph: negative vertex count")
	}
	return &Hypergraph{n: n}
}

// N returns the number of vertices.
func (h *Hypergraph) N() int { return h.n }

// M returns the number of hyperedges.
func (h *Hypergraph) M() int { return len(h.edges) }

// AddEdge inserts a hyperedge over the given vertices. The vertex set
// is copied, deduplicated and sorted. Hyperedges need at least two
// distinct vertices; duplicate hyperedges are allowed (they are
// distinct parallel hyperedges, and become distinct adjacent vertices
// of the line graph).
func (h *Hypergraph) AddEdge(vertices ...int) error {
	set := make(map[int]struct{}, len(vertices))
	for _, v := range vertices {
		if v < 0 || v >= h.n {
			return fmt.Errorf("hypergraph: vertex %d out of range [0,%d)", v, h.n)
		}
		set[v] = struct{}{}
	}
	if len(set) < 2 {
		return fmt.Errorf("hypergraph: hyperedge needs ≥ 2 distinct vertices, got %v", vertices)
	}
	edge := make([]int, 0, len(set))
	for v := range set {
		edge = append(edge, v)
	}
	sort.Ints(edge)
	h.edges = append(h.edges, edge)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (h *Hypergraph) MustAddEdge(vertices ...int) {
	if err := h.AddEdge(vertices...); err != nil {
		panic(err)
	}
}

// Edge returns the sorted vertex set of hyperedge i (owned by the
// hypergraph; read-only for callers).
func (h *Hypergraph) Edge(i int) []int { return h.edges[i] }

// Rank returns the maximum hyperedge size (0 if there are no edges).
func (h *Hypergraph) Rank() int {
	r := 0
	for _, e := range h.edges {
		if len(e) > r {
			r = len(e)
		}
	}
	return r
}

// VertexDegree returns the number of hyperedges containing v.
func (h *Hypergraph) VertexDegree(v int) int {
	d := 0
	for _, e := range h.edges {
		i := sort.SearchInts(e, v)
		if i < len(e) && e[i] == v {
			d++
		}
	}
	return d
}

// LineGraph returns the line graph: one vertex per hyperedge, two
// adjacent iff the hyperedges intersect. The neighborhood independence
// of the result is at most Rank(): the hyperedges adjacent to e each
// contain one of e's ≤ r vertices, and hyperedges sharing a vertex are
// mutually adjacent, so e's neighborhood is covered by r cliques.
func (h *Hypergraph) LineGraph() *graph.Graph {
	lg := graph.New(len(h.edges))
	// Bucket hyperedges by vertex: edges sharing a bucket are adjacent.
	byVertex := make([][]int, h.n)
	for i, e := range h.edges {
		for _, v := range e {
			byVertex[v] = append(byVertex[v], i)
		}
	}
	for _, bucket := range byVertex {
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				lg.MustAddEdge(bucket[i], bucket[j])
			}
		}
	}
	lg.Normalize()
	return lg
}

// Random returns a random hypergraph on n vertices with m hyperedges,
// each over a uniformly random vertex set of size between 2 and rank.
func Random(n, m, rank int, rng *rand.Rand) *Hypergraph {
	if rank < 2 || rank > n {
		panic(fmt.Sprintf("hypergraph: Random rank %d infeasible for n=%d", rank, n))
	}
	h := New(n)
	for i := 0; i < m; i++ {
		size := 2 + rng.Intn(rank-1)
		verts := make(map[int]struct{}, size)
		for len(verts) < size {
			verts[rng.Intn(n)] = struct{}{}
		}
		flat := make([]int, 0, size)
		for v := range verts {
			flat = append(flat, v)
		}
		h.MustAddEdge(flat...)
	}
	return h
}

// RandomRegularRank returns a random hypergraph where every hyperedge
// has exactly rank vertices and every vertex is in roughly
// m·rank/n hyperedges.
func RandomRegularRank(n, m, rank int, rng *rand.Rand) *Hypergraph {
	if rank < 2 || rank > n {
		panic(fmt.Sprintf("hypergraph: RandomRegularRank rank %d infeasible for n=%d", rank, n))
	}
	h := New(n)
	perm := rng.Perm(n)
	cursor := 0
	for i := 0; i < m; i++ {
		verts := make(map[int]struct{}, rank)
		// Take the next vertices from a rotating permutation to balance
		// degrees, then fill with random ones on wrap-collisions.
		for len(verts) < rank {
			if cursor >= len(perm) {
				rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
				cursor = 0
			}
			verts[perm[cursor]] = struct{}{}
			cursor++
		}
		flat := make([]int, 0, rank)
		for v := range verts {
			flat = append(flat, v)
		}
		h.MustAddEdge(flat...)
	}
	return h
}

// FromGraph returns the rank-2 hypergraph whose hyperedges are the
// edges of g; its LineGraph is exactly graph.LineGraph(g).
func FromGraph(g *graph.Graph) *Hypergraph {
	h := New(g.N())
	for _, e := range g.Edges() {
		h.MustAddEdge(e[0], e[1])
	}
	return h
}
