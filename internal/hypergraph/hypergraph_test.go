package hypergraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
)

func TestAddEdgeValidation(t *testing.T) {
	h := New(5)
	if err := h.AddEdge(0, 1, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := h.AddEdge(0, 0); err == nil {
		t.Error("accepted hyperedge with < 2 distinct vertices")
	}
	if err := h.AddEdge(0, 7); err == nil {
		t.Error("accepted out-of-range vertex")
	}
	if h.M() != 1 {
		t.Errorf("M() = %d, want 1", h.M())
	}
}

func TestEdgeDeduplicatesAndSorts(t *testing.T) {
	h := New(5)
	h.MustAddEdge(3, 1, 3, 2)
	e := h.Edge(0)
	want := []int{1, 2, 3}
	if len(e) != 3 {
		t.Fatalf("Edge(0) = %v, want %v", e, want)
	}
	for i := range want {
		if e[i] != want[i] {
			t.Fatalf("Edge(0) = %v, want %v", e, want)
		}
	}
}

func TestRankAndDegree(t *testing.T) {
	h := New(6)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2, 3)
	h.MustAddEdge(0, 2, 4, 5)
	if h.Rank() != 4 {
		t.Errorf("Rank = %d, want 4", h.Rank())
	}
	if h.VertexDegree(0) != 2 || h.VertexDegree(1) != 2 || h.VertexDegree(5) != 1 {
		t.Error("VertexDegree wrong")
	}
	if New(3).Rank() != 0 {
		t.Error("empty hypergraph rank should be 0")
	}
}

func TestLineGraphMatchesGraphLineGraph(t *testing.T) {
	// For rank-2 hypergraphs, LineGraph must coincide with the plain
	// graph line graph.
	g := graph.Grid(3, 3)
	h := FromGraph(g)
	hl := h.LineGraph()
	gl, _ := graph.LineGraph(g)
	if hl.N() != gl.N() || hl.M() != gl.M() {
		t.Fatalf("line graphs differ: (%d,%d) vs (%d,%d)", hl.N(), hl.M(), gl.N(), gl.M())
	}
	for _, e := range gl.Edges() {
		if !hl.HasEdge(e[0], e[1]) {
			t.Fatalf("hypergraph line graph missing edge %v", e)
		}
	}
}

func TestLineGraphThetaBoundedByRank(t *testing.T) {
	// θ(L(H)) ≤ rank(H) — the structural property Section 4 uses.
	f := func(seed int64, rawN, rawM, rawR uint8) bool {
		n := int(rawN%12) + 6
		m := int(rawM%15) + 3
		r := int(rawR%3) + 2
		if r > n {
			r = n
		}
		rng := rand.New(rand.NewSource(seed))
		h := Random(n, m, r, rng)
		lg := h.LineGraph()
		if lg.Validate() != nil {
			return false
		}
		return graph.NeighborhoodIndependence(lg) <= h.Rank()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLineGraphAdjacencyMeansIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := Random(12, 20, 4, rng)
	lg := h.LineGraph()
	intersects := func(a, b []int) bool {
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] == b[j]:
				return true
			case a[i] < b[j]:
				i++
			default:
				j++
			}
		}
		return false
	}
	for u := 0; u < lg.N(); u++ {
		for v := 0; v < lg.N(); v++ {
			if u == v {
				continue
			}
			want := intersects(h.Edge(u), h.Edge(v))
			if lg.HasEdge(u, v) != want {
				t.Fatalf("line graph adjacency (%d,%d)=%v, intersection=%v", u, v, lg.HasEdge(u, v), want)
			}
		}
	}
}

func TestParallelHyperedgesAreAdjacent(t *testing.T) {
	h := New(4)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(0, 1) // parallel hyperedge
	lg := h.LineGraph()
	if !lg.HasEdge(0, 1) {
		t.Error("parallel hyperedges should be adjacent in the line graph")
	}
}

func TestRandomRegularRankShape(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	h := RandomRegularRank(20, 30, 3, rng)
	if h.M() != 30 {
		t.Fatalf("M = %d, want 30", h.M())
	}
	for i := 0; i < h.M(); i++ {
		if len(h.Edge(i)) != 3 {
			t.Errorf("hyperedge %d has size %d, want 3", i, len(h.Edge(i)))
		}
	}
	// Degrees should be balanced: 30·3/20 = 4.5 average; allow [1, 9].
	for v := 0; v < 20; v++ {
		d := h.VertexDegree(v)
		if d < 1 || d > 9 {
			t.Errorf("vertex %d degree %d outside balanced range", v, d)
		}
	}
}

func TestRandomPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Random with rank < 2 did not panic")
		}
	}()
	Random(5, 3, 1, rand.New(rand.NewSource(1)))
}
