// Package linial implements Linial's O(log* n)-round color reduction
// [Lin87] as a message-passing protocol, in both its proper and its
// defect-tolerant form (the latter is Lemma 3.4 of the paper, due to
// [Kuh09, KS18]).
//
// One reduction step identifies each current color m with a degree-d
// polynomial over F_q (coefficients = base-q digits of m, package gf).
// Every node picks an evaluation point a and adopts the point-value
// pair (a, f(a)) ∈ F_q × F_q as its new color. Distinct degree-≤d
// polynomials agree on at most d points, so
//
//   - proper reduction: with q > d·β there is a point where a node's
//     polynomial disagrees with all β conflict-relevant neighbors,
//     keeping the coloring proper while shrinking the palette from m
//     to q²;
//   - defective reduction: with q ≥ d/α the best point creates at most
//     ⌊d·β_v/q⌋ ≤ α·β_v new monochromatic out-edges, allowing far
//     smaller palettes (O(1/α²) at the fixed point).
//
// Iterating with a precomputed schedule of (d, q) pairs collapses any
// initial m-coloring in O(log* m) steps. All nodes derive the same
// schedule from the public parameters (m, β, α), so no coordination
// rounds are needed.
package linial

import (
	"fmt"

	"listcolor/internal/gf"
)

// Step is one color-reduction step: current colors are interpreted as
// degree-Degree polynomials over F_Q; the step maps a ColorsIn-coloring
// to a Q²-coloring. AllowFrac is the fraction α_i of β_v that this
// step may newly make monochromatic (0 for a proper step).
type Step struct {
	Q         int
	Degree    int
	ColorsIn  int
	AllowFrac float64
}

// ColorsOut returns the palette size after the step.
func (s Step) ColorsOut() int { return s.Q * s.Q }

// feasibleStep returns the cheapest (smallest Q²) single step that
// reduces an m-coloring given conflict bound beta, with per-step
// defect fraction alpha (0 = proper). ok is false when no step makes
// progress (q² < m).
func feasibleStep(m, beta int, alpha float64) (Step, bool) {
	best := Step{}
	found := false
	for d := 1; ; d++ {
		var qMin int
		if alpha == 0 {
			qMin = d*beta + 1 // q > d·β
		} else {
			qMin = int(float64(d) / alpha) // q ≥ d/α
			if float64(qMin)*alpha < float64(d) {
				qMin++
			}
		}
		if qMin < 2 {
			qMin = 2
		}
		q := gf.NextPrime(qMin)
		// Representability: q^(d+1) ≥ m.
		rep := 1
		feasible := false
		for i := 0; i <= d; i++ {
			rep *= q
			if rep >= m {
				feasible = true
				break
			}
		}
		if feasible {
			// qMin grows with d while representability only improves, so
			// the first feasible d yields the smallest q — stop here.
			best = Step{Q: q, Degree: d, ColorsIn: m, AllowFrac: alpha}
			found = true
			break
		}
		if d > 64 {
			break // unreachable for sane inputs; avoid infinite loop
		}
	}
	if !found || best.ColorsOut() >= m {
		return Step{}, false
	}
	return best, true
}

// ProperSchedule returns the sequence of proper reduction steps that
// collapses an m-coloring on a graph with conflict degree beta to the
// fixed-point palette (Θ(β²) colors), in O(log* m) steps.
func ProperSchedule(m, beta int) []Step {
	var steps []Step
	for {
		s, ok := feasibleStep(m, beta, 0)
		if !ok {
			return steps
		}
		steps = append(steps, s)
		m = s.ColorsOut()
	}
}

// DefectiveSchedule returns reduction steps that collapse an
// m-coloring to a Θ(1/α²) palette while creating at most α·β_v
// monochromatic out-edges per node in total. Per-step budgets increase
// geometrically (α/2^{k}, …, α/4, α/2) so the final, palette-defining
// step gets half the budget; the number of steps k is found by a
// fixpoint search.
func DefectiveSchedule(m, beta int, alpha float64) []Step {
	if alpha <= 0 {
		panic("linial: DefectiveSchedule needs alpha > 0")
	}
	for k := 1; ; k++ {
		steps, ok := tryDefectiveSchedule(m, beta, alpha, k)
		if ok {
			return steps
		}
		if k > 40 {
			panic(fmt.Sprintf("linial: no defective schedule for m=%d beta=%d alpha=%v", m, beta, alpha))
		}
	}
}

// tryDefectiveSchedule builds a schedule with the k increasing budgets
// α/2^k, …, α/4, α/2 (total < α). A budget that cannot make progress
// is skipped (its allowance is simply never spent). The schedule is
// accepted iff, after the horizon, not even the final budget α/2 could
// shrink the palette further.
func tryDefectiveSchedule(m, beta int, alpha float64, k int) ([]Step, bool) {
	var steps []Step
	cur := m
	for i := 1; i <= k; i++ {
		ai := alpha / float64(int(1)<<uint(k-i+1))
		if s, ok := feasibleStep(cur, beta, ai); ok {
			steps = append(steps, s)
			cur = s.ColorsOut()
		}
	}
	if _, ok := feasibleStep(cur, beta, alpha/2); ok {
		return nil, false
	}
	return steps, true
}
