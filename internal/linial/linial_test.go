package linial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

func TestProperScheduleInvariants(t *testing.T) {
	f := func(rawM uint32, rawB uint8) bool {
		m := int(rawM%1_000_000) + 10
		beta := int(rawB%20) + 1
		steps := ProperSchedule(m, beta)
		cur := m
		for _, s := range steps {
			if s.ColorsIn != cur {
				return false
			}
			if s.Q <= s.Degree*beta { // must have q > d·β
				return false
			}
			// Representability q^(d+1) ≥ colorsIn.
			rep := 1
			ok := false
			for i := 0; i <= s.Degree; i++ {
				rep *= s.Q
				if rep >= cur {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
			if s.ColorsOut() >= cur { // progress
				return false
			}
			cur = s.ColorsOut()
		}
		// Terminal palette is Θ(β²): generous constant 16.
		return cur <= 16*(beta+1)*(beta+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProperScheduleLengthLogStar(t *testing.T) {
	// Schedule length should track log*(m): tiny even for huge m.
	for _, m := range []int{100, 10_000, 1_000_000, 1 << 40} {
		steps := ProperSchedule(m, 4)
		if len(steps) > logstar.LogStar(m)+4 {
			t.Errorf("m=%d: %d steps, want ≤ log*(m)+4 = %d", m, len(steps), logstar.LogStar(m)+4)
		}
	}
}

func TestDefectiveScheduleBudget(t *testing.T) {
	for _, tc := range []struct {
		m    int
		beta int
		a    float64
	}{
		{1000, 8, 0.5}, {100000, 16, 0.25}, {50, 3, 1.0}, {1 << 30, 32, 0.125},
	} {
		steps := DefectiveSchedule(tc.m, tc.beta, tc.a)
		total := 0.0
		cur := tc.m
		for _, s := range steps {
			total += s.AllowFrac
			if s.ColorsOut() >= cur {
				t.Errorf("m=%d β=%d α=%v: non-progressing step", tc.m, tc.beta, tc.a)
			}
			cur = s.ColorsOut()
		}
		if total > tc.a {
			t.Errorf("m=%d β=%d α=%v: total budget %v exceeds α", tc.m, tc.beta, tc.a, total)
		}
		// Terminal palette Θ(1/α²): generous constant 64.
		limit := int(64.0/(tc.a*tc.a)) + 64
		if cur > limit {
			t.Errorf("m=%d β=%d α=%v: palette %d > %d", tc.m, tc.beta, tc.a, cur, limit)
		}
	}
}

func TestDefectivePaletteIndependentOfBeta(t *testing.T) {
	// The defective palette is O(1/α²) — it must not blow up with β.
	p8 := DefectiveSchedule(1<<20, 8, 0.5)
	p64 := DefectiveSchedule(1<<20, 64, 0.5)
	last := func(s []Step) int {
		if len(s) == 0 {
			return 1 << 20
		}
		return s[len(s)-1].ColorsOut()
	}
	if last(p64) > 4*last(p8) {
		t.Errorf("palette grows with β: β=8→%d, β=64→%d", last(p8), last(p64))
	}
}

func TestColorFromIDsProper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{
		graph.Ring(64),
		graph.Grid(8, 8),
		graph.RandomRegular(60, 6, rng),
		graph.GNP(50, 0.15, rng),
		graph.CompleteKaryTree(3, 4),
	} {
		res, err := ColorFromIDs(g, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := graph.IsProperColoring(g, res.Colors); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		delta := g.MaxDegree()
		if res.Palette > 16*(delta+1)*(delta+1) {
			t.Errorf("%v: palette %d not O(Δ²)", g, res.Palette)
		}
		if mc := graph.MaxColor(res.Colors); mc >= res.Palette {
			t.Errorf("%v: color %d outside palette %d", g, mc, res.Palette)
		}
		if res.Stats.Rounds > logstar.LogStar(g.N())+6 {
			t.Errorf("%v: %d rounds, want O(log* n)", g, res.Stats.Rounds)
		}
	}
}

func TestReduceProperOriented(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomRegular(80, 8, rng)
	d := graph.OrientByID(g) // β up to 8
	ids := make([]int, g.N())
	for v := range ids {
		ids[v] = v
	}
	res, err := ReduceProperOriented(d, ids, g.N(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.IsProperColoring(g, res.Colors); err != nil {
		t.Errorf("oriented reduction not proper: %v", err)
	}
	beta := d.MaxBeta()
	if res.Palette > 16*(beta+1)*(beta+1) {
		t.Errorf("palette %d not O(β²) for β=%d", res.Palette, beta)
	}
	// Oriented palette should be much smaller than the Δ-based one when
	// β ≪ Δ.
	dg := graph.OrientByDegeneracy(graph.CompleteBipartite(3, 40))
	ids2 := make([]int, dg.N())
	for v := range ids2 {
		ids2[v] = v
	}
	res2, err := ReduceProperOriented(dg, ids2, dg.N(), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.IsProperColoring(dg.Underlying(), res2.Colors); err != nil {
		t.Error(err)
	}
	if res2.Palette > 16*(dg.MaxBeta()+1)*(dg.MaxBeta()+1) {
		t.Errorf("palette %d not O(β²), β=%d", res2.Palette, dg.MaxBeta())
	}
}

func TestReduceInputValidation(t *testing.T) {
	g := graph.Ring(4)
	nw := sim.NewNetwork(g)
	if _, err := Reduce(nw, []int{0, 1}, 4, nil, false, sim.Config{}); err == nil {
		t.Error("accepted wrong color count")
	}
	if _, err := Reduce(nw, []int{0, 1, 2, 9}, 4, nil, false, sim.Config{}); err == nil {
		t.Error("accepted out-of-range initial color")
	}
	if _, err := Reduce(nw, []int{0, 1, 2, 3}, 4, nil, true, sim.Config{}); err == nil {
		t.Error("accepted avoidOut on unoriented network")
	}
	// An IMPROPER input coloring must be rejected whenever a reduction
	// step would actually run (the polynomial argument needs distinct
	// polynomials on neighbors).
	steps := ProperSchedule(4, g.MaxDegree())
	if len(steps) == 0 {
		steps = []Step{{Q: 3, Degree: 1, ColorsIn: 4}}
	}
	if _, err := Reduce(nw, []int{0, 0, 1, 2}, 4, steps, false, sim.Config{}); err == nil {
		t.Error("accepted improper input coloring")
	}
}

func TestReduceEmptySchedule(t *testing.T) {
	g := graph.Ring(4)
	res, err := Reduce(sim.NewNetwork(g), []int{0, 1, 0, 1}, 2, nil, false, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1}
	for v := range want {
		if res.Colors[v] != want[v] {
			t.Errorf("empty schedule changed colors: %v", res.Colors)
		}
	}
	if res.Palette != 2 {
		t.Errorf("Palette = %d, want 2", res.Palette)
	}
}

func TestReduceCongestCompliant(t *testing.T) {
	// Messages carry one color: O(log m) bits. Enforce a strict cap.
	g := graph.Ring(200)
	ids := make([]int, 200)
	for v := range ids {
		ids[v] = v
	}
	steps := ProperSchedule(200, g.MaxDegree())
	maxDomainBits := sim.BitsFor(200)
	for _, s := range steps {
		if b := sim.BitsFor(s.ColorsOut()); b > maxDomainBits {
			maxDomainBits = b
		}
	}
	_, err := Reduce(sim.NewNetwork(g), ids, 200, steps, false, sim.Config{BandwidthBits: maxDomainBits})
	if err != nil {
		t.Errorf("reduction not CONGEST-compliant: %v", err)
	}
}

func TestReduceDriversAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := graph.GNP(40, 0.2, rng)
	ids := make([]int, g.N())
	for v := range ids {
		ids[v] = v
	}
	a, err := ColorFromIDs(g, sim.Config{Driver: sim.Lockstep})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColorFromIDs(g, sim.Config{Driver: sim.Goroutines})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatalf("drivers disagree at node %d: %d vs %d", v, a.Colors[v], b.Colors[v])
		}
	}
	if a.Stats != b.Stats {
		t.Errorf("driver stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}
