package linial

import (
	"fmt"

	"listcolor/internal/gf"
	"listcolor/internal/graph"
	"listcolor/internal/palette"
	"listcolor/internal/sim"
)

// Result is the output of a color-reduction run.
type Result struct {
	// Colors is the final coloring, one entry per node, in [0, Palette).
	Colors []int
	// Palette is the size of the final color space.
	Palette int
	// Stats are the simulator's round/message/bit counts.
	Stats sim.Result
}

// reduceNode executes a reduction schedule at one node. All per-round
// scratch (the received-color table indexed by neighbor rank, the
// point-value arrays, the polynomial coefficient buffers) is allocated
// once in Init and reused, so steady-state rounds allocate nothing.
type reduceNode struct {
	steps    []Step
	color    int
	avoidOut bool // conflict set = out-neighbors (else all neighbors)
	result   *int

	nbr       palette.Index // rank over ctx.Neighbors (sorted)
	recv      []int         // received color per neighbor rank, -1 = missing
	myVals    []int         // my polynomial evaluated at each point
	conflicts []int         // per-point agreement counts
	mineBuf   []int         // coefficient scratch for my polynomial
	theirsBuf []int         // coefficient scratch for neighbor polynomials
}

var _ sim.Node = (*reduceNode)(nil)

func (n *reduceNode) Init(ctx *sim.Context) []sim.Outgoing {
	if len(n.steps) == 0 {
		return nil
	}
	n.nbr = palette.NewIndex(ctx.Neighbors)
	n.recv = make([]int, n.nbr.Len())
	maxQ, maxDeg := 0, 0
	for _, step := range n.steps {
		if step.Q > maxQ {
			maxQ = step.Q
		}
		if step.Degree > maxDeg {
			maxDeg = step.Degree
		}
	}
	n.myVals = make([]int, maxQ)
	n.conflicts = make([]int, maxQ)
	n.mineBuf = make([]int, maxDeg+1)
	n.theirsBuf = make([]int, maxDeg+1)
	return []sim.Outgoing{{To: sim.Broadcast, Payload: sim.IntPayload{Value: n.color, Domain: n.steps[0].ColorsIn}}}
}

func (n *reduceNode) Round(ctx *sim.Context, round int, inbox []sim.Message) ([]sim.Outgoing, bool) {
	if len(n.steps) == 0 {
		*n.result = n.color
		return nil, true
	}
	step := n.steps[round-1]
	for i := range n.recv {
		n.recv[i] = -1
	}
	for _, m := range inbox {
		j, ok := n.nbr.Rank(m.From)
		if !ok {
			continue
		}
		// A corrupted payload fails the assertion and is treated as
		// garbage — equivalent to the message having been dropped.
		if p, ok := m.Payload.(sim.IntPayload); ok {
			n.recv[j] = p.Value
		}
	}
	avoid := ctx.Neighbors
	if n.avoidOut {
		avoid = ctx.Out
	}
	mine := gf.PolyFromIntInto(n.color, step.Q, step.Degree, n.mineBuf)
	// Evaluate every conflict-relevant neighbor's polynomial at every
	// point and pick the point with the fewest agreements with mine.
	// Neighbors that currently share our color agree everywhere and
	// shift every point's count equally, so they never affect the
	// argmin — but for the proper (α=0) invariant check we must ignore
	// them... they cannot exist when the input coloring is proper.
	bestA, bestConflicts := 0, int(^uint(0)>>1)
	myVals := n.myVals[:step.Q]
	for a := 0; a < step.Q; a++ {
		myVals[a] = mine.Eval(a)
	}
	conflicts := n.conflicts[:step.Q]
	for a := range conflicts {
		conflicts[a] = 0
	}
	for _, u := range avoid {
		j, inNbr := n.nbr.Rank(u)
		if !inNbr || n.recv[j] < 0 {
			// A neighbor's color is missing — lost or corrupted in
			// transit. The reliable-network model guarantees this never
			// happens; under fault injection the node degrades
			// deterministically by ignoring that neighbor (its conflicts
			// go uncounted) and lets the validators catch any damage.
			continue
		}
		theirs := gf.PolyFromIntInto(n.recv[j], step.Q, step.Degree, n.theirsBuf)
		for a := 0; a < step.Q; a++ {
			if theirs.Eval(a) == myVals[a] {
				conflicts[a]++
			}
		}
	}
	for a := 0; a < step.Q; a++ {
		if conflicts[a] < bestConflicts {
			bestA, bestConflicts = a, conflicts[a]
		}
	}
	// When q > d·β and the coloring is proper, a proper (AllowFrac=0)
	// step always finds a conflict-free point; bestConflicts > 0 here
	// would mean a broken schedule or input coloring, or fault-induced
	// damage. Proceeding with the best available point keeps the run
	// deterministic either way — the validators are the safety net.
	n.color = gf.PointValue(bestA, myVals[bestA], step.Q)
	if round == len(n.steps) {
		*n.result = n.color
		return nil, true
	}
	return []sim.Outgoing{{To: sim.Broadcast, Payload: sim.IntPayload{Value: n.color, Domain: step.ColorsOut()}}}, false
}

// Reduce runs the given schedule on the network, starting from the
// given m-coloring. If avoidOut is true the conflict set of each node
// is its out-neighbor set (the network must be oriented); otherwise it
// is the full neighborhood. cfg.BandwidthBits can enforce CONGEST.
func Reduce(nw *sim.Network, colors []int, m int, steps []Step, avoidOut bool, cfg sim.Config) (Result, error) {
	n := nw.N()
	if len(colors) != n {
		return Result{}, fmt.Errorf("linial: %d colors for %d nodes", len(colors), n)
	}
	for v, c := range colors {
		if c < 0 || c >= m {
			return Result{}, fmt.Errorf("linial: node %d initial color %d outside [0,%d)", v, c, m)
		}
	}
	if avoidOut && nw.Digraph() == nil {
		return Result{}, fmt.Errorf("linial: avoidOut requires an oriented network")
	}
	if len(steps) > 0 {
		// Both the proper and the defect-tolerant reduction assume a
		// PROPER input coloring (same-colored neighbors share a
		// polynomial and could stay merged forever, breaking the defect
		// accounting).
		if err := graph.IsProperColoring(nw.Graph(), colors); err != nil {
			return Result{}, fmt.Errorf("linial: input coloring: %w", err)
		}
	}
	out := make([]int, n)
	nodes := make([]sim.Node, n)
	for v := 0; v < n; v++ {
		nodes[v] = &reduceNode{steps: steps, color: colors[v], avoidOut: avoidOut, result: &out[v]}
	}
	stats, err := sim.Run(nw, nodes, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("linial: %w", err)
	}
	palette := m
	if len(steps) > 0 {
		palette = steps[len(steps)-1].ColorsOut()
	}
	return Result{Colors: out, Palette: palette, Stats: stats}, nil
}

// ReduceProperOriented reduces a proper m-coloring of the oriented
// graph d to a proper Θ(β²)-coloring in O(log* m) rounds, where
// β = d.MaxBeta().
func ReduceProperOriented(d *graph.Digraph, colors []int, m int, cfg sim.Config) (Result, error) {
	steps := ProperSchedule(m, d.MaxBeta())
	return Reduce(sim.NewOrientedNetwork(d), colors, m, steps, true, cfg)
}

// ReduceProperUndirected reduces a proper m-coloring of g to a proper
// Θ(Δ²)-coloring in O(log* m) rounds.
func ReduceProperUndirected(g *graph.Graph, colors []int, m int, cfg sim.Config) (Result, error) {
	steps := ProperSchedule(m, g.MaxDegree())
	return Reduce(sim.NewNetwork(g), colors, m, steps, false, cfg)
}

// ColorFromIDs computes a proper Θ(Δ²)-coloring of g from scratch,
// using node ids as the initial n-coloring — the standard O(log* n)
// bootstrap every algorithm in the paper assumes.
func ColorFromIDs(g *graph.Graph, cfg sim.Config) (Result, error) {
	n := g.N()
	ids := make([]int, n)
	for v := range ids {
		ids[v] = v
	}
	return ReduceProperUndirected(g, ids, n, cfg)
}
