package linial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestScheduleQuickInvariants fuzzes ProperSchedule and
// DefectiveSchedule jointly across wide parameter ranges.
func TestScheduleQuickInvariants(t *testing.T) {
	f := func(rawM uint32, rawB, rawA uint8) bool {
		m := int(rawM%(1<<22)) + 4
		beta := int(rawB%30) + 1
		alpha := []float64{2, 1, 0.5, 0.25, 0.125}[rawA%5]

		proper := ProperSchedule(m, beta)
		cur := m
		for _, s := range proper {
			if s.AllowFrac != 0 || s.Q <= s.Degree*beta || s.ColorsOut() >= cur {
				return false
			}
			cur = s.ColorsOut()
		}

		def := DefectiveSchedule(m, beta, alpha)
		total := 0.0
		cur = m
		for _, s := range def {
			total += s.AllowFrac
			if s.ColorsOut() >= cur {
				return false
			}
			cur = s.ColorsOut()
		}
		return total <= alpha
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDefectiveSchedulePanicsOnZeroAlpha pins the guardrail.
func TestDefectiveSchedulePanicsOnZeroAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha = 0 did not panic")
		}
	}()
	DefectiveSchedule(100, 4, 0)
}

// TestReduceOnDirectedStar exercises the oriented reduction where one
// node has ALL the out-degree: the hub must avoid every leaf while the
// leaves (out-degree 0) are unconstrained.
func TestReduceOnDirectedStar(t *testing.T) {
	n := 20
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v)
	}
	rank := make([]int, n)
	rank[0] = n // hub highest: all arcs hub → leaf
	for v := 1; v < n; v++ {
		rank[v] = v
	}
	d, err := graph.OrientByRank(g, rank)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, n)
	for v := range ids {
		ids[v] = v
	}
	res, err := ReduceProperOriented(d, ids, n, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.IsProperColoring(g, res.Colors); err != nil {
		t.Error(err)
	}
}

// TestReduceStepByStep drives Reduce with a single handcrafted step
// and checks the point-value encoding of the new colors.
func TestReduceStepByStep(t *testing.T) {
	g := graph.Ring(6)
	ids := []int{0, 1, 2, 3, 4, 5}
	// One proper step: m = 6, β = Δ = 2, d = 1 ⇒ q > 2 prime with
	// q² ≥ 6: q = 3 gives 9 ≥ 6 ✓ and q > d·β = 2 ✓.
	steps := []Step{{Q: 3, Degree: 1, ColorsIn: 6}}
	res, err := Reduce(sim.NewNetwork(g), ids, 6, steps, false, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Palette != 9 {
		t.Errorf("palette = %d, want 9", res.Palette)
	}
	if err := graph.IsProperColoring(g, res.Colors); err != nil {
		t.Error(err)
	}
	for _, c := range res.Colors {
		if c < 0 || c >= 9 {
			t.Errorf("color %d outside [0,9)", c)
		}
	}
}

// TestDefectiveAccumulationAcrossSteps verifies that a multi-step
// defective schedule keeps the TOTAL defect within α·deg even though
// each step adds its own conflicts.
func TestDefectiveAccumulationAcrossSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomRegular(200, 8, rng)
	ids := make([]int, g.N())
	for v := range ids {
		ids[v] = v
	}
	alpha := 0.5
	steps := DefectiveSchedule(g.N(), g.MaxDegree(), alpha)
	if len(steps) < 2 {
		t.Skip("schedule too short to test accumulation")
	}
	res, err := Reduce(sim.NewNetwork(g), ids, g.N(), steps, false, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mono := graph.MonochromaticDegree(g, res.Colors)
	for v, m := range mono {
		if float64(m) > alpha*float64(g.Degree(v)) {
			t.Errorf("node %d defect %d > α·deg = %v", v, m, alpha*float64(g.Degree(v)))
		}
	}
}
