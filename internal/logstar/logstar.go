// Package logstar provides the small integer-logarithm utilities used
// throughout the coloring algorithms: ceiling base-2 logarithms, the
// iterated logarithm log*, and the tower function that inverts it.
package logstar

import "math"

// CeilLog2 returns ⌈log₂(x)⌉ for x ≥ 1. CeilLog2(1) = 0.
// It panics if x < 1: the algorithms never take logarithms of
// non-positive quantities and a silent 0 would mask a slack-arithmetic
// bug upstream.
func CeilLog2(x int) int {
	if x < 1 {
		panic("logstar: CeilLog2 of non-positive value")
	}
	l := 0
	for v := x - 1; v > 0; v >>= 1 {
		l++
	}
	return l
}

// FloorLog2 returns ⌊log₂(x)⌋ for x ≥ 1. FloorLog2(1) = 0.
func FloorLog2(x int) int {
	if x < 1 {
		panic("logstar: FloorLog2 of non-positive value")
	}
	l := -1
	for v := x; v > 0; v >>= 1 {
		l++
	}
	return l
}

// LogStar returns log*(x): the number of times the (real-valued) log₂
// must be iterated, starting from x, before the result is at most 1.
// LogStar(x) = 0 for x ≤ 1, LogStar(2) = 1, LogStar(16) = 3,
// LogStar(65536) = 4.
func LogStar(x int) int {
	n := 0
	for v := float64(x); v > 1; v = math.Log2(v) {
		n++
	}
	return n
}

// Tower returns the tower function 2↑↑k (2^2^...^2, k twos), the
// functional inverse of LogStar. It panics for k that would overflow a
// 64-bit int (k ≥ 6).
func Tower(k int) int {
	if k < 0 {
		panic("logstar: Tower of negative height")
	}
	if k >= 6 {
		panic("logstar: Tower overflows int64")
	}
	v := 1
	for i := 0; i < k; i++ {
		v = 1 << uint(v)
	}
	return v
}

// Pow returns base^exp for non-negative exp using integer
// exponentiation by squaring. It does not guard against overflow; the
// callers use it only for small color-space arithmetic.
func Pow(base, exp int) int {
	if exp < 0 {
		panic("logstar: Pow with negative exponent")
	}
	result := 1
	for exp > 0 {
		if exp&1 == 1 {
			result *= base
		}
		base *= base
		exp >>= 1
	}
	return result
}
