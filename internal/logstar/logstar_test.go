package logstar

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct{ x, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {7, 3}, {8, 3}, {9, 4},
		{1023, 10}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := CeilLog2(c.x); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := []struct{ x, want int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
	}
	for _, c := range cases {
		if got := FloorLog2(c.x); got != c.want {
			t.Errorf("FloorLog2(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestLogConsistencyQuick(t *testing.T) {
	// For all x ≥ 1: 2^FloorLog2(x) ≤ x ≤ 2^CeilLog2(x), and the two
	// differ by at most one (equal exactly at powers of two).
	f := func(raw uint16) bool {
		x := int(raw) + 1
		fl, cl := FloorLog2(x), CeilLog2(x)
		if 1<<uint(fl) > x || x > 1<<uint(cl) {
			return false
		}
		if x&(x-1) == 0 { // power of two
			return fl == cl
		}
		return cl == fl+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogStar(t *testing.T) {
	cases := []struct{ x, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {16, 3}, {17, 4},
		{65536, 4}, {65537, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.x); got != c.want {
			t.Errorf("LogStar(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestTower(t *testing.T) {
	want := []int{1, 2, 4, 16, 65536}
	for k, w := range want {
		if got := Tower(k); got != w {
			t.Errorf("Tower(%d) = %d, want %d", k, got, w)
		}
	}
}

func TestTowerLogStarInverse(t *testing.T) {
	// LogStar(Tower(k)) == k for k in the representable range.
	for k := 0; k <= 4; k++ {
		if got := LogStar(Tower(k)); got != k {
			t.Errorf("LogStar(Tower(%d)) = %d, want %d", k, got, k)
		}
	}
}

func TestTowerPanics(t *testing.T) {
	for _, k := range []int{-1, 6, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tower(%d) did not panic", k)
				}
			}()
			Tower(k)
		}()
	}
}

func TestCeilLog2PanicsOnNonPositive(t *testing.T) {
	for _, x := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CeilLog2(%d) did not panic", x)
				}
			}()
			CeilLog2(x)
		}()
	}
}

func TestPow(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {1, 100, 1}, {10, 6, 1000000},
		{0, 0, 1}, {0, 3, 0}, {7, 1, 7},
	}
	for _, c := range cases {
		if got := Pow(c.b, c.e); got != c.want {
			t.Errorf("Pow(%d,%d) = %d, want %d", c.b, c.e, got, c.want)
		}
	}
}

func TestPowMatchesMathPow(t *testing.T) {
	f := func(b, e uint8) bool {
		base := int(b%9) + 1
		exp := int(e % 8)
		return Pow(base, exp) == int(math.Round(math.Pow(float64(base), float64(exp))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
