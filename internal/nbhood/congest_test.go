package nbhood

import (
	"testing"

	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// TestEdgeColorCongestCompliant runs the full Theorem 1.5 pipeline
// under a hard per-message cap of the CONGEST shape. Theorem 1.5 is a
// CONGEST result: the only information exchanged are colors and small
// lists, so an O(log n)-scale cap must never trip.
func TestEdgeColorCongestCompliant(t *testing.T) {
	g := graph.Grid(3, 4)
	lg, _ := graph.LineGraph(g)
	n := lg.N()
	cap := 8 * sim.BitsFor(n*n)
	colors, palette, stats, err := EdgeColor(g, sim.Config{BandwidthBits: cap})
	if err != nil {
		t.Fatalf("pipeline exceeded the %d-bit CONGEST cap: %v", cap, err)
	}
	if len(colors) != g.M() || palette != 2*g.MaxDegree()-1 {
		t.Errorf("malformed result: %d colors, palette %d", len(colors), palette)
	}
	if stats.MaxMessageBits > cap {
		t.Errorf("reported max message %d > cap %d", stats.MaxMessageBits, cap)
	}
}
