package nbhood

import (
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// Regression tests for the DESIGN.md deviation "Strictness constants":
// Lemma 4.5's block defects use d_{v,i} = ⌊σ·deg·W_i/W⌋, not the
// paper's Eq. 19 ⌈·⌉, so that the per-block slack direction
// W_i ≥ d_{v,i}·W/(σ·deg) holds exactly.

// TestBlockDefectFloorInvariant sweeps the arithmetic over a grid of
// (σ·deg, W_i, W) values: the floor always satisfies
// d_{v,i}·W ≤ σ·deg·W_i, and the ceiling variant violates it whenever
// σ·deg·W_i/W is fractional — which is why the floor deviation exists.
func TestBlockDefectFloorInvariant(t *testing.T) {
	ceilBreaks := false
	for sd := 1; sd <= 40; sd++ { // σ·deg
		for w := 1; w <= 30; w++ {
			for wi := 1; wi <= w; wi++ {
				floor := sd * wi / w
				if floor*w > sd*wi {
					t.Fatalf("floor variant broke the invariant: σ·deg=%d W_i=%d W=%d d=%d", sd, wi, w, floor)
				}
				ceil := (sd*wi + w - 1) / w
				if ceil*w > sd*wi {
					ceilBreaks = true
				}
			}
		}
	}
	if !ceilBreaks {
		t.Error("ceiling variant never violated W_i ≥ d·W/(σ·deg) on the grid; the floor deviation may be unnecessary")
	}
}

// TestArb2AtMinimumSlack drives the slack-2 recursion entry (arb2,
// the production path into spaceReduce's floored block defects) at the
// true minimum slack Σ(d+1) = 2·deg + 1, over a space large enough
// that the Lemma 4.4 + 4.5 splitting actually runs. The floored block
// defects must keep every level solvable and the output valid.
func TestArb2AtMinimumSlack(t *testing.T) {
	g := graph.Ring(8)
	s := &solver{theta: 2, cfg: sim.Config{}}
	c := 9 // space > 2, so arb2 reduces via μ = 2σ and spaceReduce splits into 3 blocks
	inst := &coloring.Instance{Space: c}
	for v := 0; v < g.N(); v++ {
		w := 2*g.Degree(v) + 1 // minimum slack-2 budget: Σ(d+1) = 5
		lists := make([]int, w)
		for i := range lists {
			lists[i] = (v + i) % c // zero-defect lists, deliberately overlapping
		}
		// Lists must be sorted.
		for i := 1; i < len(lists); i++ {
			for j := i; j > 0 && lists[j] < lists[j-1]; j-- {
				lists[j], lists[j-1] = lists[j-1], lists[j]
			}
		}
		inst.Lists = append(inst.Lists, lists)
		inst.Defects = append(inst.Defects, make([]int, w))
	}
	base := make([]int, g.N())
	for v := range base {
		base[v] = v
	}
	res, _, err := s.arb2(g, inst, base, g.N())
	if err != nil {
		t.Fatalf("arb2 at minimum slack 2: %v", err)
	}
	if err := coloring.ValidateListArbdefective(g, inst, res); err != nil {
		t.Fatalf("output invalid: %v", err)
	}
}

// TestSpaceReduceRejectsBelowMinimum pins the strict admission check:
// W = 2σ·deg must be rejected, and the error must name the node.
func TestSpaceReduceRejectsBelowMinimum(t *testing.T) {
	g := graph.Ring(8)
	theta := 2
	s := &solver{theta: theta, cfg: sim.Config{}}
	sigma := Theorem14Slack(theta, g.MaxDegree(), 2)
	c := 9
	inst := &coloring.Instance{Space: c}
	for v := 0; v < g.N(); v++ {
		w := 2 * sigma * g.Degree(v) // one below admission
		lists := make([]int, c)
		defs := make([]int, c)
		per := (w - c) / c
		rem := (w - c) % c
		for i := range lists {
			lists[i] = i
			defs[i] = per
			if i < rem {
				defs[i]++
			}
		}
		inst.Lists = append(inst.Lists, lists)
		inst.Defects = append(inst.Defects, defs)
	}
	base := make([]int, g.N())
	for v := range base {
		base[v] = v
	}
	if _, _, err := s.spaceReduce(g, inst, base, g.N()); err == nil {
		t.Fatal("spaceReduce accepted W = 2σ·deg (needs strict >)")
	}
}
