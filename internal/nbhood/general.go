package nbhood

import (
	"fmt"
	"math"

	"listcolor/internal/coloring"
	"listcolor/internal/csr"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

// OLDCAsArb adapts the Theorem 1.2 OLDC solver into an ArbSolver: the
// graph is oriented by id, the OLDC is solved, and the monochromatic
// edges inherit the input orientation (an OLDC solution IS a valid
// arbdefective solution under its own orientation). The adapter
// requires slack > ⌈3√C⌉ (so that Σ(d+1) ≥ 3√C·β_v holds for the
// id-orientation, whose out-degrees are bounded by the degrees).
func OLDCAsArb(cfg sim.Config) ArbSolver {
	return func(g *graph.Graph, inst *coloring.Instance, base []int, q int) (coloring.ArbResult, sim.Result, error) {
		d := graph.OrientByID(g)
		res, err := csr.Solve(d, inst, base, q, cfg)
		if err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: OLDC adapter: %w", err)
		}
		var arcs [][2]int
		for v := 0; v < g.N(); v++ {
			for _, u := range d.Out(v) {
				if res.Colors[v] == res.Colors[u] {
					arcs = append(arcs, [2]int{v, u})
				}
			}
		}
		return coloring.ArbResult{Colors: res.Colors, Arcs: arcs}, res.Stats, nil
	}
}

// GeneralArb2Solver returns a slack-2 list arbdefective solver that
// works on EVERY graph (no neighborhood-independence assumption): it
// reduces slack 2 → μ = ⌈3√C⌉ via Lemma 4.4 and solves the high-slack
// classes with Theorem 1.2. This is the "via the proof of Theorem 1.3"
// solver the Theorem 1.5 proof plugs in at recursion depth i = 1
// (Equation 20).
func GeneralArb2Solver(cfg sim.Config) ArbSolver {
	return func(g *graph.Graph, inst *coloring.Instance, base []int, q int) (coloring.ArbResult, sim.Result, error) {
		mu := int(math.Ceil(3 * math.Sqrt(float64(inst.Space))))
		return SlackReduce2(g, inst, base, q, mu, OLDCAsArb(cfg), cfg)
	}
}

// SolveArbGeneral solves a slack-1 list arbdefective instance on an
// arbitrary graph: Lemma A.1 (μ = 2) over the general slack-2 solver.
// Its round complexity is Õ(C·log Δ·polylog C) — the general-graph
// counterpart of SolveArb, trading Theorem 1.5's bounded-θ requirement
// for a higher round count.
func SolveArbGeneral(g *graph.Graph, inst *coloring.Instance, cfg sim.Config) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	base, err := linial.ColorFromIDs(g, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("nbhood: bootstrap: %w", err)
	}
	arb, stats, err := SlackReduce1(g, inst, base.Colors, base.Palette, 2, GeneralArb2Solver(cfg), cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{Arb: arb, Stats: sim.Seq(base.Stats, stats)}, nil
}

// SolveArbBranch2 implements the second branch of Theorem 1.5's
// min{...} (Equation 20): ONE level of slack reduction + color space
// splitting (to space ⌈√C⌉), with the sub-instances solved by the
// general-graph solver — O(θ²·Δ^{1/4}·polylog) rounds instead of the
// quasi-polylog recursion. Preferable when θ is large relative to Δ.
func SolveArbBranch2(g *graph.Graph, inst *coloring.Instance, theta int, cfg sim.Config) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if theta < 1 {
		return Result{}, fmt.Errorf("nbhood: theta must be ≥ 1, got %d", theta)
	}
	base, err := linial.ColorFromIDs(g, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("nbhood: bootstrap: %w", err)
	}
	s := &solver{theta: theta, cfg: cfg, inner: GeneralArb2Solver(cfg)}
	arb, stats, err := SlackReduce1(g, inst, base.Colors, base.Palette, 2, s.arb2, cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{Arb: arb, Stats: sim.Seq(base.Stats, stats)}, nil
}
