package nbhood

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

func TestOLDCAsArb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(40, 4, rng)
	base, q := properColoring(t, g)
	space := 36
	need := math.Ceil(3 * math.Sqrt(float64(space)))
	inst := coloring.WithSlack(g, space, need+1, rng)
	res, _, err := OLDCAsArb(sim.Config{})(g, inst, base, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateListArbdefective(g, inst, res); err != nil {
		t.Error(err)
	}
}

func TestGeneralArb2Solver(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// General graphs: no θ bound — GNP and complete graphs included.
	for _, g := range []*graph.Graph{
		graph.GNP(40, 0.3, rng),
		graph.Complete(10),
		graph.Grid(5, 5),
	} {
		base, q := properColoring(t, g)
		inst := coloring.WithSlack(g, 30, 2.3, rng)
		res, _, err := GeneralArb2Solver(sim.Config{})(g, inst, base, q)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := coloring.ValidateListArbdefective(g, inst, res); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestSolveArbGeneralProperColoring(t *testing.T) {
	// Zero-defect (deg+1)-lists on arbitrary graphs → proper coloring,
	// without any neighborhood-independence assumption.
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*graph.Graph{
		graph.GNP(30, 0.3, rng),
		graph.Complete(8),
	} {
		inst := coloring.DegreePlusOne(g, g.MaxDegree()+2, rng)
		res, err := SolveArbGeneral(g, inst, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := coloring.ValidateProperList(g, inst, res.Arb.Colors); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		if len(res.Arb.Arcs) != 0 {
			t.Errorf("%v: zero-defect run produced arcs", g)
		}
	}
}

func TestSolveArbGeneralWithDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomRegular(36, 6, rng)
	inst := coloring.WithSlack(g, 20, 1.4, rng)
	res, err := SolveArbGeneral(g, inst, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateListArbdefective(g, inst, res.Arb); err != nil {
		t.Error(err)
	}
}

func TestSolveArbBranch2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Bounded-θ workloads: both branches must be valid; this pins the
	// Equation 20 branch.
	lg, _ := graph.LineGraph(graph.Grid(2, 4))
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		theta int
	}{
		{"ring(14)", graph.Ring(14), 2},
		{"L(grid(2,4))", lg, 2},
	} {
		inst := coloring.WithSlack(tc.g, 18, 1.4, rng)
		res, err := SolveArbBranch2(tc.g, inst, tc.theta, sim.Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := coloring.ValidateListArbdefective(tc.g, inst, res.Arb); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func TestBranchesAgreeOnValidity(t *testing.T) {
	// Both Theorem 1.5 branches and the general solver produce valid
	// results on the same bounded-θ workload (colors may differ).
	f := func(seed int64, rawN uint8) bool {
		n := int(rawN%10)*2 + 8
		rng := rand.New(rand.NewSource(seed))
		g := graph.Ring(n)
		inst := coloring.WithSlack(g, 16, 1.3, rng)
		r1, err := SolveArb(g, inst.Clone(), 2, sim.Config{})
		if err != nil || coloring.ValidateListArbdefective(g, inst, r1.Arb) != nil {
			return false
		}
		r2, err := SolveArbBranch2(g, inst.Clone(), 2, sim.Config{})
		if err != nil || coloring.ValidateListArbdefective(g, inst, r2.Arb) != nil {
			return false
		}
		r3, err := SolveArbGeneral(g, inst.Clone(), sim.Config{})
		if err != nil || coloring.ValidateListArbdefective(g, inst, r3.Arb) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
