package nbhood

import (
	"math/rand"
	"testing"

	"listcolor/internal/graph"
	"listcolor/internal/hypergraph"
	"listcolor/internal/sim"
)

func TestHyperedgeColorProper(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name string
		h    *hypergraph.Hypergraph
	}{
		{"rank3-random", hypergraph.RandomRegularRank(12, 10, 3, rng)},
		{"rank4-random", hypergraph.RandomRegularRank(14, 8, 4, rng)},
	} {
		colors, palette, stats, err := HyperedgeColor(tc.h, sim.Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(colors) != tc.h.M() {
			t.Fatalf("%s: %d colors for %d hyperedges", tc.name, len(colors), tc.h.M())
		}
		// Intersecting hyperedges must differ.
		for i := 0; i < tc.h.M(); i++ {
			if colors[i] < 0 || colors[i] >= palette {
				t.Errorf("%s: color %d outside palette %d", tc.name, colors[i], palette)
			}
			for j := i + 1; j < tc.h.M(); j++ {
				if colors[i] == colors[j] && intersect(tc.h.Edge(i), tc.h.Edge(j)) {
					t.Errorf("%s: intersecting hyperedges %d,%d share color %d", tc.name, i, j, colors[i])
				}
			}
		}
		if stats.Rounds <= 0 {
			t.Errorf("%s: no rounds recorded", tc.name)
		}
	}
}

func TestHyperedgeColorMatchesEdgeColorOnGraphs(t *testing.T) {
	// For rank-2 hypergraphs built from a graph, the palette bound
	// r·(D−1)+1 = 2(Δ−1)+1 = 2Δ−1 coincides with EdgeColor's.
	g := graph.Ring(10)
	h := hypergraph.FromGraph(g)
	_, palette, _, err := HyperedgeColor(h, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*g.MaxDegree() - 1; palette != want {
		t.Errorf("palette = %d, want 2Δ−1 = %d", palette, want)
	}
}

func TestHyperedgeColorRejectsEmpty(t *testing.T) {
	h := hypergraph.New(5)
	if _, _, _, err := HyperedgeColor(h, sim.Config{}); err == nil {
		t.Error("empty hypergraph accepted")
	}
}

func TestHyperedgeColorParallelEdges(t *testing.T) {
	// Parallel hyperedges blow past the r(D−1)+1 bound; the palette
	// must widen to the line-graph degree.
	h := hypergraph.New(4)
	for i := 0; i < 5; i++ {
		h.MustAddEdge(0, 1, 2)
	}
	colors, palette, _, err := HyperedgeColor(h, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range colors {
		if seen[c] {
			t.Fatal("parallel hyperedges share a color")
		}
		seen[c] = true
	}
	if palette < 5 {
		t.Errorf("palette %d too small for 5 parallel hyperedges", palette)
	}
}

func intersect(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
