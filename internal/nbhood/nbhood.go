// Package nbhood implements Section 4 of the paper: list (arb)defective
// coloring for graphs of bounded neighborhood independence θ, and the
// recursive framework of Theorem 1.5.
//
// The building blocks, each following the paper's construction:
//
//   - DefectiveFromArb (Theorem 1.4): solves list DEFECTIVE instances
//     of slack 21·θ·(⌈log Δ⌉+1)·S using a list ARBdefective solver of
//     slack S, in ⌈log Δ⌉+1 iterations with geometrically shrinking
//     per-iteration defects d_i = 2^i − 1.
//   - SlackReduce2 (Lemma 4.4): solves slack-2 arbdefective instances
//     with a slack-μ solver by sequencing over the O(μ²) classes of a
//     defective coloring (Lemma 3.4) with ε = 1/μ.
//   - SlackReduce1 (Lemma A.1): same for slack-1 instances, with an
//     extra degree-halving loop (O(log Δ) scales).
//   - spaceReduce (Lemmas 4.5/4.6): splits the color space into
//     p = ⌈√C⌉ blocks; the block choice is a list defective instance
//     solved via Theorem 1.4, and the per-block sub-instances recurse
//     on color space ⌈√C⌉.
//   - SolveArb / Theorem 1.5: the assembled recursion, giving
//     (θ·log Δ)^{O(log log Δ)} + O(log* n)-round list arbdefective
//     coloring with slack 1 — and with all-zero defects, proper
//     (deg+1)-list coloring. EdgeColor applies it to line graphs for
//     (2Δ−1)-edge coloring.
//
// All reductions are centralized orchestrations of genuine
// message-passing sub-protocols; rounds are charged per the paper's
// accounting (sequential classes add, disjoint blocks take the max).
package nbhood

import (
	"errors"
	"fmt"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

// ArbSolver solves a list arbdefective coloring instance on g, given a
// proper q-coloring base, returning colors plus an orientation of the
// monochromatic edges. Implementations state their slack requirement.
type ArbSolver func(g *graph.Graph, inst *coloring.Instance, base []int, q int) (coloring.ArbResult, sim.Result, error)

// ErrSlack is returned when an instance violates the slack
// precondition of the reduction being applied.
var ErrSlack = errors.New("nbhood: slack condition violated")

// ErrUncolored is returned when a reduction fails to color every node
// — impossible under the preconditions, so it indicates they were
// bypassed or an internal bug.
var ErrUncolored = errors.New("nbhood: nodes left uncolored")

// Theorem14Slack returns the slack Theorem 1.4 requires of its input
// instance: 21·θ·(⌈log Δ⌉+1)·S (Eq. 9).
func Theorem14Slack(theta, delta, s int) int {
	return 21 * theta * (logstar.CeilLog2(delta) + 1) * s
}

// DefectiveFromArb implements Theorem 1.4: it solves a list defective
// coloring instance of slack > Theorem14Slack(θ, Δ, S) on g, using arb
// to solve list arbdefective instances of slack S on subgraphs of g.
// base must be a proper q-coloring of g.
func DefectiveFromArb(g *graph.Graph, inst *coloring.Instance, base []int, q, theta, s int, arb ArbSolver) ([]int, sim.Result, error) {
	n := g.N()
	delta := g.MaxDegree()
	iterTop := logstar.CeilLog2(delta) // iterations ⌈log Δ⌉ .. 0
	need := Theorem14Slack(theta, delta, s)
	for v := 0; v < n; v++ {
		if inst.SlackSum(v) <= need*g.Degree(v) {
			return nil, sim.Result{}, fmt.Errorf("%w: node %d has Σ(d+1)=%d ≤ %d·deg (Eq. 9)",
				ErrSlack, v, inst.SlackSum(v), need)
		}
	}
	// d'_v(x) = ⌈(min(d,Δ)+1)/(7θ)⌉ − 1 (Eq. 10; defects are clamped
	// to Δ, which never weakens the produced coloring).
	dPrime := make([][]int, n)
	for v := 0; v < n; v++ {
		dPrime[v] = make([]int, inst.ListSize(v))
		for i, dv := range inst.Defects[v] {
			if dv > delta {
				dv = delta
			}
			dPrime[v][i] = (dv+1+7*theta-1)/(7*theta) - 1
		}
	}
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	offered := make([]map[int]bool, n) // colors already placed in some L_{v,j}
	aCount := make([]map[int]int, n)   // a_v(x): colored neighbors with color x
	for v := 0; v < n; v++ {
		offered[v] = make(map[int]bool)
		aCount[v] = make(map[int]int)
	}
	var stats sim.Result
	for iter := iterTop; iter >= 0; iter-- {
		di := (1 << uint(iter)) - 1
		// Build L_{v,i} for every uncolored node (Eq. 12) and mark the
		// colors as offered regardless of whether v joins H_i.
		lists := make([][]int, n)
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			for li, x := range inst.Lists[v] {
				if offered[v][x] {
					continue
				}
				if dPrime[v][li]-aCount[v][x] >= di {
					lists[v] = append(lists[v], x)
					offered[v][x] = true
				}
			}
		}
		// H_i: uncolored nodes with enough slack at this defect level
		// (Eq. 13): (d_i+1)·|L_{v,i}| > S·(deg(v) − colored neighbors).
		var members []int
		for v := 0; v < n; v++ {
			if colors[v] >= 0 {
				continue
			}
			coloredNbrs := 0
			for _, u := range g.Neighbors(v) {
				if colors[u] >= 0 {
					coloredNbrs++
				}
			}
			if (di+1)*len(lists[v]) > s*(g.Degree(v)-coloredNbrs) {
				members = append(members, v)
			}
		}
		if len(members) > 0 {
			sub, orig := g.InducedSubgraph(members)
			subInst := &coloring.Instance{
				Lists:   make([][]int, len(orig)),
				Defects: make([][]int, len(orig)),
				Space:   inst.Space,
			}
			for i, v := range orig {
				subInst.Lists[i] = lists[v]
				subInst.Defects[i] = uniformInts(len(lists[v]), di)
			}
			baseSub := induceInts(base, orig)
			res, subStats, err := arb(sub, subInst, baseSub, q)
			if err != nil {
				return nil, sim.Result{}, fmt.Errorf("nbhood: Thm 1.4 iteration %d: %w", iter, err)
			}
			if err := coloring.ValidateListArbdefective(sub, subInst, res); err != nil {
				return nil, sim.Result{}, fmt.Errorf("nbhood: Thm 1.4 iteration %d sub-result: %w", iter, err)
			}
			stats = sim.Seq(stats, subStats)
			for i, v := range orig {
				colors[v] = res.Colors[i]
			}
			// Update a_v(x) at the uncolored neighbors.
			for _, v := range orig {
				for _, u := range g.Neighbors(v) {
					if colors[u] < 0 {
						aCount[u][colors[v]]++
					}
				}
			}
		}
		// One coordination round per iteration (color announcements).
		stats.Rounds++
		if len(members) > 0 {
			a := announceStats(g, members, inst.Space)
			a.Rounds = 0 // already charged above
			stats = sim.Seq(stats, a)
		}
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return nil, sim.Result{}, fmt.Errorf("%w: node %d (Lemma 4.2 violated)", ErrUncolored, v)
		}
	}
	return colors, stats, nil
}

func uniformInts(n, val int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = val
	}
	return out
}

func induceInts(vals []int, orig []int) []int {
	out := make([]int, len(orig))
	for i, v := range orig {
		out[i] = vals[v]
	}
	return out
}
