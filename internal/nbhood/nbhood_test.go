package nbhood

import (
	"errors"
	"math/rand"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

// simpleArb is a sequential-greedy arbdefective solver used as the
// plug-in subroutine when testing the reductions in isolation: it
// processes nodes in id order, picking the color minimizing the
// residual defect usage among already-decided neighbors. It is valid
// for any instance with slack ≥ 1 (a color with d_v(x) ≥ #decided
// same-color neighbors always exists by pigeonhole).
func simpleArb(g *graph.Graph, inst *coloring.Instance, base []int, q int) (coloring.ArbResult, sim.Result, error) {
	n := g.N()
	colors := make([]int, n)
	var arcs [][2]int
	for v := 0; v < n; v++ {
		counts := make(map[int]int)
		for _, u := range g.Neighbors(v) {
			if u < v {
				counts[colors[u]]++
			}
		}
		chosen := -1
		for i, x := range inst.Lists[v] {
			if counts[x] <= inst.Defects[v][i] {
				chosen = x
				break
			}
		}
		if chosen < 0 {
			return coloring.ArbResult{}, sim.Result{}, errors.New("simpleArb: stuck")
		}
		colors[v] = chosen
		for _, u := range g.Neighbors(v) {
			if u < v && colors[u] == chosen {
				arcs = append(arcs, [2]int{v, u})
			}
		}
	}
	return coloring.ArbResult{Colors: colors, Arcs: arcs}, sim.Result{Rounds: 1}, nil
}

func properColoring(t testing.TB, g *graph.Graph) ([]int, int) {
	t.Helper()
	res, err := linial.ColorFromIDs(g, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Colors, res.Palette
}

func TestDefectiveFromArb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		name  string
		g     *graph.Graph
		theta int
	}{
		{"ring", graph.Ring(20), 2},
		{"lineK4", mustLine(graph.Complete(4)), 2},
		{"lineGrid", mustLine(graph.Grid(3, 3)), 2},
	} {
		g := tc.g
		base, q := properColoring(t, g)
		s := 2
		need := Theorem14Slack(tc.theta, g.MaxDegree(), s)
		inst := coloring.WithSlack(g, 4*need*g.MaxDegree()+20, float64(need)+1, rng)
		colors, _, err := DefectiveFromArb(g, inst, base, q, tc.theta, s, simpleArb)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := coloring.ValidateListDefective(g, inst, colors); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
	}
}

func mustLine(g *graph.Graph) *graph.Graph {
	lg, _ := graph.LineGraph(g)
	return lg
}

func TestDefectiveFromArbSlackRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.Ring(10)
	base, q := properColoring(t, g)
	inst := coloring.WithSlack(g, 30, 2, rng) // slack 2 ≪ 21θ(logΔ+1)S
	if _, _, err := DefectiveFromArb(g, inst, base, q, 2, 1, simpleArb); !errors.Is(err, ErrSlack) {
		t.Errorf("err = %v, want ErrSlack", err)
	}
}

func TestSlackReduce2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomRegular(30, 4, rng)
	base, q := properColoring(t, g)
	inst := coloring.WithSlack(g, 100, 2.2, rng)
	res, _, err := SlackReduce2(g, inst, base, q, 3, simpleArb, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateListArbdefective(g, inst, res); err != nil {
		t.Error(err)
	}
}

func TestSlackReduce2Rejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.Ring(10)
	base, q := properColoring(t, g)
	inst := coloring.WithSlack(g, 20, 1.2, rng)
	if _, _, err := SlackReduce2(g, inst, base, q, 3, simpleArb, sim.Config{}); !errors.Is(err, ErrSlack) {
		t.Errorf("err = %v, want ErrSlack", err)
	}
}

func TestSlackReduce1(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*graph.Graph{
		graph.Ring(24),
		graph.RandomRegular(30, 4, rng),
		graph.Grid(4, 5),
	} {
		base, q := properColoring(t, g)
		inst := coloring.WithSlack(g, 120, 1.1, rng)
		res, _, err := SlackReduce1(g, inst, base, q, 2, simpleArb, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := coloring.ValidateListArbdefective(g, inst, res); err != nil {
			t.Errorf("%v: %v", g, err)
		}
	}
}

func TestTrivialArb(t *testing.T) {
	g := graph.Ring(6)
	inst := &coloring.Instance{Space: 2, Lists: make([][]int, 6), Defects: make([][]int, 6)}
	for v := 0; v < 6; v++ {
		inst.Lists[v] = []int{0, 1}
		inst.Defects[v] = []int{2, 2} // Σ(d+1) = 6 > 2·deg = 4
	}
	res, _, err := trivialArb(g, inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateListArbdefective(g, inst, res); err != nil {
		t.Error(err)
	}
	// Insufficient slack at the base must be rejected.
	bad := &coloring.Instance{Space: 2, Lists: [][]int{{0}}, Defects: [][]int{{0}}}
	gBad := graph.Path(2)
	badFull := &coloring.Instance{Space: 2, Lists: [][]int{{0}, {0}}, Defects: [][]int{{0}, {0}}}
	_ = bad
	if _, _, err := trivialArb(gBad, badFull); !errors.Is(err, ErrSlack) {
		t.Errorf("err = %v, want ErrSlack", err)
	}
}

func TestSolveArbProperOnLineGraphs(t *testing.T) {
	// Zero-defect (deg+1)-list instances on line graphs (θ ≤ 2): the
	// Theorem 1.5 pipeline must produce a proper list coloring.
	rng := rand.New(rand.NewSource(6))
	for _, base := range []*graph.Graph{
		graph.Ring(8),
		graph.Complete(4),
		graph.Grid(2, 4),
	} {
		lg, _ := graph.LineGraph(base)
		inst := coloring.DegreePlusOne(lg, lg.MaxDegree()+3, rng)
		res, err := SolveArb(lg, inst, 2, sim.Config{})
		if err != nil {
			t.Fatalf("L(%v): %v", base, err)
		}
		if err := coloring.ValidateListArbdefective(lg, inst, res.Arb); err != nil {
			t.Errorf("L(%v): %v", base, err)
		}
		if err := coloring.ValidateProperList(lg, inst, res.Arb.Colors); err != nil {
			t.Errorf("L(%v): zero-defect result not proper: %v", base, err)
		}
	}
}

func TestSolveArbWithDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Ring(16) // θ = 2
	inst := coloring.WithSlack(g, 24, 1.5, rng)
	res, err := SolveArb(g, inst, 2, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coloring.ValidateListArbdefective(g, inst, res.Arb); err != nil {
		t.Error(err)
	}
}

func TestEdgeColor(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Ring(10),
		graph.Complete(5),
		graph.Grid(3, 3),
	} {
		edgeColors, palette, _, err := EdgeColor(g, sim.Config{})
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if palette != 2*g.MaxDegree()-1 {
			t.Errorf("%v: palette %d, want 2Δ−1 = %d", g, palette, 2*g.MaxDegree()-1)
		}
		// No two incident edges share a color.
		edges := g.Edges()
		if len(edgeColors) != len(edges) {
			t.Fatalf("%v: %d colors for %d edges", g, len(edgeColors), len(edges))
		}
		for i := range edges {
			if edgeColors[i] < 0 || edgeColors[i] >= palette {
				t.Errorf("%v: edge color %d outside palette", g, edgeColors[i])
			}
			for j := i + 1; j < len(edges); j++ {
				share := edges[i][0] == edges[j][0] || edges[i][0] == edges[j][1] ||
					edges[i][1] == edges[j][0] || edges[i][1] == edges[j][1]
				if share && edgeColors[i] == edgeColors[j] {
					t.Errorf("%v: incident edges %v,%v share color %d", g, edges[i], edges[j], edgeColors[i])
				}
			}
		}
	}
}

func TestTheorem14SlackFormula(t *testing.T) {
	// 21·θ·(⌈logΔ⌉+1)·S
	if got := Theorem14Slack(2, 8, 1); got != 21*2*4 {
		t.Errorf("Theorem14Slack(2,8,1) = %d, want %d", got, 21*2*4)
	}
	if got := Theorem14Slack(1, 2, 3); got != 21*1*2*3 {
		t.Errorf("Theorem14Slack(1,2,3) = %d, want %d", got, 21*6)
	}
}
