package nbhood

import (
	"fmt"
	"math"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/hypergraph"
	"listcolor/internal/linial"
	"listcolor/internal/sim"
)

// trivialArb solves slack-2 instances over a color space of at most
// two colors in O(1) rounds: with Σ(d_v(x)+1) > 2·deg(v) over ≤ 2
// colors, the best color has d_v(x) ≥ deg(v), so every node picks its
// maximum-defect color and any orientation of the monochromatic edges
// (here: toward the smaller id) respects all defects.
func trivialArb(g *graph.Graph, inst *coloring.Instance) (coloring.ArbResult, sim.Result, error) {
	n := g.N()
	colors := make([]int, n)
	for v := 0; v < n; v++ {
		if inst.ListSize(v) == 0 {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("%w: node %d has an empty list", ErrSlack, v)
		}
		best, bestD := inst.Lists[v][0], inst.Defects[v][0]
		for i := 1; i < inst.ListSize(v); i++ {
			if inst.Defects[v][i] > bestD {
				best, bestD = inst.Lists[v][i], inst.Defects[v][i]
			}
		}
		if bestD < g.Degree(v) {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("%w: node %d max defect %d < deg %d at base (space ≤ 2)",
				ErrSlack, v, bestD, g.Degree(v))
		}
		colors[v] = best
	}
	var arcs [][2]int
	for _, e := range g.Edges() {
		if colors[e[0]] == colors[e[1]] {
			arcs = append(arcs, [2]int{e[1], e[0]}) // toward smaller id
		}
	}
	return coloring.ArbResult{Colors: colors, Arcs: arcs}, sim.Result{Rounds: 1}, nil
}

// solver carries the fixed parameters of the Theorem 1.5 recursion.
// When inner is nil the recursion is self-referential (the
// (θ·logΔ)^{O(loglogΔ)} branch); setting inner to another slack-2
// solver runs just one splitting level above it (the Equation 20
// branch).
type solver struct {
	theta int
	cfg   sim.Config
	inner ArbSolver
}

// next returns the solver used for the reduced sub-instances: the
// injected inner solver, or arb2 itself for the full recursion.
func (s *solver) next() ArbSolver {
	if s.inner != nil {
		return s.inner
	}
	return s.arb2
}

// arb2 solves slack-2 list arbdefective instances; it is the
// T_A(2, C) of the Theorem 1.5 proof. For C ≤ 2 it uses the O(1)
// base; otherwise it reduces slack 2 → μ = 2σ (Lemma 4.4) and hands
// the high-slack instances to the color space reduction.
func (s *solver) arb2(g *graph.Graph, inst *coloring.Instance, base []int, q int) (coloring.ArbResult, sim.Result, error) {
	if g.M() == 0 {
		return edgelessArb(inst)
	}
	if inst.Space <= 2 {
		return trivialArb(g, inst)
	}
	sigma := Theorem14Slack(s.theta, g.MaxDegree(), 2)
	mu := 2 * sigma
	high := func(g2 *graph.Graph, inst2 *coloring.Instance, base2 []int, q2 int) (coloring.ArbResult, sim.Result, error) {
		return s.spaceReduce(g2, inst2, base2, q2)
	}
	return SlackReduce2(g, inst, base, q, mu, high, s.cfg)
}

// spaceReduce implements Lemmas 4.5/4.6: it solves instances of slack
// > 2σ (σ = Theorem14Slack(θ, Δ(g), 2)) over color space C by
// splitting into p = ⌈√C⌉ blocks. The block choice is a list defective
// instance of slack > σ over the p block indices, solved via
// Theorem 1.4 whose arbdefective sub-instances recurse into arb2 at
// color space p; the per-block sub-instances have slack > 2 over
// space ⌈C/p⌉ ≤ p and also recurse into arb2.
func (s *solver) spaceReduce(g *graph.Graph, inst *coloring.Instance, base []int, q int) (coloring.ArbResult, sim.Result, error) {
	n := g.N()
	c := inst.Space
	p := int(math.Ceil(math.Sqrt(float64(c))))
	blockSize := (c + p - 1) / p
	sigma := Theorem14Slack(s.theta, g.MaxDegree(), 2)

	// Block-choice instance over space p (Eq. 18/19, with ⌊·⌋ so the
	// per-block slack W_i ≥ d_{v,i}·W/(σ·deg) is exact).
	choice := &coloring.Instance{
		Lists:   make([][]int, n),
		Defects: make([][]int, n),
		Space:   p,
	}
	for v := 0; v < n; v++ {
		w := inst.SlackSum(v)
		if w <= 2*sigma*g.Degree(v) {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("%w: node %d has Σ(d+1)=%d ≤ 2σ·deg=%d (Lemma 4.5)",
				ErrSlack, v, w, 2*sigma*g.Degree(v))
		}
		for blk := 0; blk < p; blk++ {
			wi := blockWeight(inst, v, blk*blockSize, blockSize)
			if wi == 0 {
				continue
			}
			dvi := sigma * g.Degree(v) * wi / w // ⌊σ·deg·W_i/W⌋
			choice.Lists[v] = append(choice.Lists[v], blk)
			choice.Defects[v] = append(choice.Defects[v], dvi)
		}
	}
	chosen, choiceStats, err := DefectiveFromArb(g, choice, base, q, s.theta, 2, s.next())
	if err != nil {
		return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: block choice (C=%d): %w", c, err)
	}
	if err := coloring.ValidateListDefective(g, choice, chosen); err != nil {
		return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: block choice invalid: %w", err)
	}
	// Per-block sub-instances run in parallel on disjoint subgraphs;
	// blocks have disjoint color ranges, so no cross-block conflicts
	// and no cross-block arcs.
	colors := make([]int, n)
	var arcs [][2]int
	var blockStats sim.Result
	for blk := 0; blk < p; blk++ {
		var members []int
		for v := 0; v < n; v++ {
			if chosen[v] == blk {
				members = append(members, v)
			}
		}
		if len(members) == 0 {
			continue
		}
		lo := blk * blockSize
		sub, orig := g.InducedSubgraph(members)
		subInst := &coloring.Instance{
			Lists:   make([][]int, len(orig)),
			Defects: make([][]int, len(orig)),
			Space:   blockSize,
		}
		for i, v := range orig {
			for li, x := range inst.Lists[v] {
				if x >= lo && x < lo+blockSize {
					subInst.Lists[i] = append(subInst.Lists[i], x-lo)
					subInst.Defects[i] = append(subInst.Defects[i], inst.Defects[v][li])
				}
			}
		}
		res, st, err := s.next()(sub, subInst, induceInts(base, orig), q)
		if err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: block %d (C=%d): %w", blk, c, err)
		}
		if err := coloring.ValidateListArbdefective(sub, subInst, res); err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: block %d sub-result: %w", blk, err)
		}
		blockStats = sim.Par(blockStats, st)
		for i, v := range orig {
			colors[v] = res.Colors[i] + lo
		}
		for _, a := range res.Arcs {
			arcs = append(arcs, [2]int{orig[a[0]], orig[a[1]]})
		}
	}
	return coloring.ArbResult{Colors: colors, Arcs: arcs}, sim.Seq(choiceStats, blockStats), nil
}

// blockWeight returns W_{v,block} = Σ_{x ∈ L_v ∩ [lo, lo+size)} (d_v(x)+1).
func blockWeight(inst *coloring.Instance, v, lo, size int) int {
	w := 0
	for i, x := range inst.Lists[v] {
		if x >= lo && x < lo+size {
			w += inst.Defects[v][i] + 1
		}
	}
	return w
}

// ArbSlack2Solver returns the Theorem 1.5 recursion's solver for
// slack-2 list arbdefective instances on graphs of neighborhood
// independence ≤ theta — the T_A(2, C) routine. It is exposed so the
// benchmark harness can exercise the reductions (Theorem 1.4,
// Lemmas 4.4/A.1) with the paper's actual subroutine plugged in.
func ArbSlack2Solver(theta int, cfg sim.Config) ArbSolver {
	s := &solver{theta: theta, cfg: cfg}
	return s.arb2
}

// Result is the output of the Theorem 1.5 pipeline.
type Result struct {
	Arb   coloring.ArbResult
	Stats sim.Result
}

// SolveArb implements Theorem 1.5: it solves a slack-1 list
// arbdefective instance (P_A(1, C)) on a graph of neighborhood
// independence ≤ theta, in (θ·log Δ)^{O(log log Δ)} + O(log* n)
// simulated rounds. With an all-zero-defect (deg+1)-list instance the
// result is a proper list coloring.
func SolveArb(g *graph.Graph, inst *coloring.Instance, theta int, cfg sim.Config) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if theta < 1 {
		return Result{}, fmt.Errorf("nbhood: theta must be ≥ 1, got %d", theta)
	}
	base, err := linial.ColorFromIDs(g, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("nbhood: bootstrap: %w", err)
	}
	s := &solver{theta: theta, cfg: cfg}
	arb, stats, err := SlackReduce1(g, inst, base.Colors, base.Palette, 2, s.arb2, cfg)
	if err != nil {
		return Result{}, err
	}
	return Result{Arb: arb, Stats: sim.Seq(base.Stats, stats)}, nil
}

// HyperedgeColor properly colors the hyperedges of a rank-r
// hypergraph (intersecting hyperedges get different colors) by
// running the Theorem 1.5 pipeline on its line graph, whose
// neighborhood independence is at most r — the second application the
// paper names for Section 4. The palette has r·(D−1)+1 colors, where
// D is the maximum vertex degree of the hypergraph (every hyperedge
// intersects at most r·(D−1) others), generalizing the (2Δ−1)-edge
// coloring of graphs (r = 2, D = Δ).
func HyperedgeColor(h *hypergraph.Hypergraph, cfg sim.Config) (edgeColors []int, palette int, stats sim.Result, err error) {
	lg := h.LineGraph()
	rank := h.Rank()
	if rank < 2 {
		return nil, 0, sim.Result{}, fmt.Errorf("nbhood: hypergraph has no hyperedges")
	}
	maxVertexDeg := 1
	for v := 0; v < h.N(); v++ {
		if d := h.VertexDegree(v); d > maxVertexDeg {
			maxVertexDeg = d
		}
	}
	palette = rank*(maxVertexDeg-1) + 1
	if lgDelta := lg.RawMaxDegree(); palette < lgDelta+1 {
		palette = lgDelta + 1 // parallel hyperedges can exceed the bound
	}
	full := make([]int, palette)
	for i := range full {
		full[i] = i
	}
	inst := &coloring.Instance{
		Lists:   make([][]int, lg.N()),
		Defects: make([][]int, lg.N()),
		Space:   palette,
	}
	for v := 0; v < lg.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = make([]int, palette)
	}
	res, err := SolveArb(lg, inst, rank, cfg)
	if err != nil {
		return nil, 0, sim.Result{}, fmt.Errorf("nbhood: hyperedge coloring: %w", err)
	}
	if len(res.Arb.Arcs) > 0 {
		return nil, 0, sim.Result{}, fmt.Errorf("nbhood: hyperedge coloring produced intersecting same-color hyperedges")
	}
	return res.Arb.Colors, palette, res.Stats, nil
}

// EdgeColor computes a (2Δ−1)-edge coloring of g by running the
// Theorem 1.5 pipeline on the line graph of g (neighborhood
// independence ≤ 2). It returns one color per edge of g.Edges(), the
// palette size 2Δ−1, and the simulation statistics.
func EdgeColor(g *graph.Graph, cfg sim.Config) (edgeColors []int, palette int, stats sim.Result, err error) {
	lg, _ := graph.LineGraph(g)
	palette = 2*g.MaxDegree() - 1
	full := make([]int, palette)
	for i := range full {
		full[i] = i
	}
	inst := &coloring.Instance{
		Lists:   make([][]int, lg.N()),
		Defects: make([][]int, lg.N()),
		Space:   palette,
	}
	for v := 0; v < lg.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = make([]int, palette)
	}
	res, err := SolveArb(lg, inst, 2, cfg)
	if err != nil {
		return nil, 0, sim.Result{}, fmt.Errorf("nbhood: edge coloring: %w", err)
	}
	if len(res.Arb.Arcs) > 0 {
		return nil, 0, sim.Result{}, fmt.Errorf("nbhood: edge coloring produced monochromatic incidences")
	}
	return res.Arb.Colors, palette, res.Stats, nil
}
