package nbhood

import (
	"fmt"

	"listcolor/internal/coloring"
	"listcolor/internal/defective"
	"listcolor/internal/graph"
	"listcolor/internal/linial"
	"listcolor/internal/logstar"
	"listcolor/internal/sim"
)

// edgelessArb colors an edgeless (sub)graph in one round: with no
// neighbors, any list color satisfies any defect, so every node takes
// its first. Returns ok=false when some list is empty.
func edgelessArb(inst *coloring.Instance) (coloring.ArbResult, sim.Result, error) {
	colors := make([]int, inst.N())
	for v := 0; v < inst.N(); v++ {
		if inst.ListSize(v) == 0 {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("%w: node %d has an empty list", ErrSlack, v)
		}
		colors[v] = inst.Lists[v][0]
	}
	return coloring.ArbResult{Colors: colors}, sim.Result{Rounds: 1}, nil
}

// prunedInstance returns, for the given nodes (original ids), the
// residual instance after subtracting already-committed neighbor
// colors: d'_v(x) = d_v(x) − a_v(x), colors with negative residual
// defect dropped (the paper's L'_v / d'_v construction used by
// Lemmas 4.4 and A.1).
func prunedInstance(g *graph.Graph, inst *coloring.Instance, colors []int, nodes []int) *coloring.Instance {
	out := &coloring.Instance{
		Lists:   make([][]int, len(nodes)),
		Defects: make([][]int, len(nodes)),
		Space:   inst.Space,
	}
	for i, v := range nodes {
		a := make(map[int]int)
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				a[colors[u]]++
			}
		}
		for li, x := range inst.Lists[v] {
			if nd := inst.Defects[v][li] - a[x]; nd >= 0 {
				out.Lists[i] = append(out.Lists[i], x)
				out.Defects[i] = append(out.Defects[i], nd)
			}
		}
	}
	return out
}

// announceStats is the cost of the one round in which a batch of
// newly colored nodes broadcasts its colors to all neighbors: one
// O(log C)-bit message per incident edge end.
func announceStats(g *graph.Graph, orig []int, space int) sim.Result {
	bits := sim.BitsFor(space)
	msgs := 0
	for _, v := range orig {
		msgs += g.Degree(v)
	}
	return sim.Result{Rounds: 1, Messages: msgs, TotalBits: msgs * bits, MaxMessageBits: bits}
}

// rebootstrap re-reduces a proper q-coloring restricted to a subgraph
// down to O(Δ_sub²) classes with Linial's algorithm (O(log* q)
// rounds). The class subgraphs of the slack reductions have much
// smaller degrees than the parent graph, so the sweeps inside the
// sub-solvers then iterate over far fewer classes.
func rebootstrap(sub *graph.Graph, base []int, q int, cfg sim.Config) ([]int, int, sim.Result, error) {
	res, err := linial.ReduceProperUndirected(sub, base, q, cfg)
	if err != nil {
		return nil, 0, sim.Result{}, err
	}
	return res.Colors, res.Palette, res.Stats, nil
}

// commitBatch writes a sub-result back into the global coloring and
// arc list: sub arcs are remapped, and each newly colored node gets an
// outgoing arc to every earlier-colored neighbor sharing its color
// (those conflicts were pre-paid by the defect reduction in
// prunedInstance).
func commitBatch(g *graph.Graph, colors []int, orig []int, res coloring.ArbResult, arcs *[][2]int) {
	batch := make(map[int]bool, len(orig))
	for _, v := range orig {
		batch[v] = true
	}
	for i, v := range orig {
		colors[v] = res.Colors[i]
	}
	for _, a := range res.Arcs {
		*arcs = append(*arcs, [2]int{orig[a[0]], orig[a[1]]})
	}
	for _, v := range orig {
		for _, u := range g.Neighbors(v) {
			if !batch[u] && colors[u] >= 0 && colors[u] == colors[v] {
				*arcs = append(*arcs, [2]int{v, u})
			}
		}
	}
}

// SlackReduce2 implements Lemma 4.4: it solves a slack-2 list
// arbdefective instance using arb, a solver for slack-μ instances, by
// sequencing over the O(μ²) classes of a defective coloring with
// ε = 1/μ. base must be a proper q-coloring of g.
func SlackReduce2(g *graph.Graph, inst *coloring.Instance, base []int, q, mu int, arb ArbSolver, cfg sim.Config) (coloring.ArbResult, sim.Result, error) {
	if g.M() == 0 {
		return edgelessArb(inst)
	}
	n := g.N()
	for v := 0; v < n; v++ {
		if inst.SlackSum(v) <= 2*g.Degree(v) {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("%w: node %d has Σ(d+1)=%d ≤ 2·deg=%d (Lemma 4.4)",
				ErrSlack, v, inst.SlackSum(v), 2*g.Degree(v))
		}
	}
	rootSpan := cfg.Span
	cfg.Span = nil
	psi, err := defective.ColorUndirected(g, base, q, 1/float64(mu), cfg)
	if err != nil {
		return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma 4.4 split: %w", err)
	}
	rootSpan.Child(fmt.Sprintf("Lemma 4.4 split ε=1/%d → %d classes", mu, psi.Palette)).Done(psi.Stats)
	stats := psi.Stats
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	var arcs [][2]int
	for class := 0; class < psi.Palette; class++ {
		var members []int
		for v := 0; v < n; v++ {
			if psi.Colors[v] == class {
				members = append(members, v)
			}
		}
		if len(members) == 0 {
			continue
		}
		sub, orig := g.InducedSubgraph(members)
		subInst := prunedInstance(g, inst, colors, orig)
		subBase, subQ, rebStats, err := rebootstrap(sub, induceInts(base, orig), q, cfg)
		if err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma 4.4 class %d re-bootstrap: %w", class, err)
		}
		res, subStats, err := arb(sub, subInst, subBase, subQ)
		if err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma 4.4 class %d: %w", class, err)
		}
		subStats = sim.Seq(rebStats, subStats)
		if err := coloring.ValidateListArbdefective(sub, subInst, res); err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma 4.4 class %d sub-result: %w", class, err)
		}
		rootSpan.Child(fmt.Sprintf("class %d: %d nodes (slack-μ solver)", class, len(members))).Done(subStats)
		stats = sim.Seq(stats, sim.Seq(subStats, announceStats(g, orig, inst.Space)))
		commitBatch(g, colors, orig, res, &arcs)
	}
	rootSpan.Done(stats)
	return coloring.ArbResult{Colors: colors, Arcs: arcs}, stats, nil
}

// SlackReduce1 implements Lemma A.1: it solves a slack-1 list
// arbdefective instance using arb, a solver for slack-μ instances. It
// runs O(log Δ) degree-halving scales; within a scale, a node is
// processed at its defective-class turn only if at most half of its
// scale-start neighbors have been colored, which both preserves the
// slack the sub-solver needs and halves the uncolored degrees between
// scales.
func SlackReduce1(g *graph.Graph, inst *coloring.Instance, base []int, q, mu int, arb ArbSolver, cfg sim.Config) (coloring.ArbResult, sim.Result, error) {
	if g.M() == 0 {
		return edgelessArb(inst)
	}
	n := g.N()
	for v := 0; v < n; v++ {
		if inst.SlackSum(v) <= g.Degree(v) {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("%w: node %d has Σ(d+1)=%d ≤ deg=%d (Lemma A.1)",
				ErrSlack, v, inst.SlackSum(v), g.Degree(v))
		}
	}
	colors := make([]int, n)
	for v := range colors {
		colors[v] = -1
	}
	var arcs [][2]int
	var stats sim.Result
	uncolored := make([]int, n)
	for v := range uncolored {
		uncolored[v] = v
	}
	maxScales := logstar.CeilLog2(g.MaxDegree()) + 3
	for scale := 0; len(uncolored) > 0; scale++ {
		if scale > maxScales {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma A.1 did not converge in %d scales", maxScales)
		}
		h, origH := g.InducedSubgraph(uncolored)
		indexH := make(map[int]int, len(origH))
		for i, v := range origH {
			indexH[v] = i
		}
		psi, err := defective.ColorUndirected(h, induceInts(base, origH), q, 1/float64(2*mu), cfg)
		if err != nil {
			return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma A.1 split: %w", err)
		}
		stats = sim.Seq(stats, psi.Stats)
		coloredInScale := make([]int, len(origH))
		done := make([]bool, len(origH))
		for class := 0; class < psi.Palette; class++ {
			var active []int
			for i, v := range origH {
				if !done[i] && psi.Colors[i] == class && 2*coloredInScale[i] <= h.Degree(i) {
					active = append(active, v)
				}
			}
			if len(active) == 0 {
				continue
			}
			sub, orig := g.InducedSubgraph(active)
			subInst := prunedInstance(g, inst, colors, orig)
			subBase, subQ, rebStats, err := rebootstrap(sub, induceInts(base, orig), q, cfg)
			if err != nil {
				return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma A.1 scale %d class %d re-bootstrap: %w", scale, class, err)
			}
			res, subStats, err := arb(sub, subInst, subBase, subQ)
			if err != nil {
				return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma A.1 scale %d class %d: %w", scale, class, err)
			}
			subStats = sim.Seq(rebStats, subStats)
			if err := coloring.ValidateListArbdefective(sub, subInst, res); err != nil {
				return coloring.ArbResult{}, sim.Result{}, fmt.Errorf("nbhood: Lemma A.1 scale %d class %d sub-result: %w", scale, class, err)
			}
			stats = sim.Seq(stats, sim.Seq(subStats, announceStats(g, orig, inst.Space)))
			commitBatch(g, colors, orig, res, &arcs)
			for _, v := range active {
				done[indexH[v]] = true
				for _, u := range g.Neighbors(v) {
					if j, ok := indexH[u]; ok {
						coloredInScale[j]++
					}
				}
			}
		}
		var remaining []int
		for i, v := range origH {
			if !done[i] {
				remaining = append(remaining, v)
			}
		}
		uncolored = remaining
	}
	return coloring.ArbResult{Colors: colors, Arcs: arcs}, stats, nil
}
