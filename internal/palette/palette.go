// Package palette is the shared node-local color-set kernel: a
// word-packed bitset (Set), a dense per-color counter with
// O(touched) reset (Counter), and a rank table over sorted neighbor
// ids (Index). Every solver's hot path — Phase-I sublist selection in
// twosweep, pruned-list construction in deltaplus1, the received-color
// table in linial, greedy conflict counting in classic and baseline —
// runs on these three primitives instead of per-round `map[int]int`
// rebuilds.
//
// All state is meant to be allocated once per node (at protocol Init
// or solver setup) and reused across rounds: Reset/Clear recycle the
// backing arrays, so steady-state operation performs no allocation.
// SelectScratch (select.go) is the pooled arena of one node's Phase-I
// selection; DESIGN.md §"Palette kernel" documents the lifecycle and
// the ops-accounting contract.
package palette

import "math/bits"

const wordBits = 64

// Set is a word-packed bitset over the dense color universe
// [0, space). The zero value is unusable; call NewSet.
type Set struct {
	words []uint64
	space int
}

// NewSet returns an empty set over [0, space).
func NewSet(space int) *Set {
	if space < 0 {
		panic("palette: negative space")
	}
	return &Set{words: make([]uint64, (space+wordBits-1)/wordBits), space: space}
}

// Space returns the universe size the set was created with.
func (s *Set) Space() int { return s.space }

func (s *Set) check(x int) {
	if x < 0 || x >= s.space {
		panic("palette: color out of range")
	}
}

// Insert adds x to the set.
func (s *Set) Insert(x int) {
	s.check(x)
	s.words[x/wordBits] |= 1 << uint(x%wordBits)
}

// InsertList adds every color of xs to the set.
func (s *Set) InsertList(xs []int) {
	for _, x := range xs {
		s.Insert(x)
	}
}

// Remove deletes x from the set (a no-op if absent).
func (s *Set) Remove(x int) {
	s.check(x)
	s.words[x/wordBits] &^= 1 << uint(x%wordBits)
}

// Contains reports whether x is in the set.
func (s *Set) Contains(x int) bool {
	s.check(x)
	return s.words[x/wordBits]&(1<<uint(x%wordBits)) != 0
}

// Len returns the number of colors in the set (popcount).
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear empties the set, keeping the backing array.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill inserts every color of the universe.
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// trim zeroes the bits above space-1 in the last word so that
// popcounts and word-wise operations stay exact.
func (s *Set) trim() {
	if r := s.space % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(r)) - 1
	}
}

// CopyFrom makes s an exact copy of o (universes must match).
func (s *Set) CopyFrom(o *Set) {
	if s.space != o.space {
		panic("palette: CopyFrom across universes")
	}
	copy(s.words, o.words)
}

// IntersectWith removes from s every color not in o.
func (s *Set) IntersectWith(o *Set) {
	if s.space != o.space {
		panic("palette: IntersectWith across universes")
	}
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// SubtractWith removes from s every color in o.
func (s *Set) SubtractWith(o *Set) {
	if s.space != o.space {
		panic("palette: SubtractWith across universes")
	}
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// NextSet returns the smallest member ≥ from, or (0, false) if none.
func (s *Set) NextSet(from int) (int, bool) {
	if from < 0 {
		from = 0
	}
	if from >= s.space {
		return 0, false
	}
	i := from / wordBits
	w := s.words[i] >> uint(from%wordBits)
	if w != 0 {
		return from + bits.TrailingZeros64(w), true
	}
	for i++; i < len(s.words); i++ {
		if s.words[i] != 0 {
			return i*wordBits + bits.TrailingZeros64(s.words[i]), true
		}
	}
	return 0, false
}

// NthSet returns the i-th smallest member (0-indexed), or (0, false)
// if the set holds fewer than i+1 colors.
func (s *Set) NthSet(i int) (int, bool) {
	if i < 0 {
		return 0, false
	}
	for wi, w := range s.words {
		c := bits.OnesCount64(w)
		if i >= c {
			i -= c
			continue
		}
		for ; w != 0; w &= w - 1 {
			if i == 0 {
				return wi*wordBits + bits.TrailingZeros64(w), true
			}
			i--
		}
	}
	return 0, false
}

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(x int)) {
	for wi, w := range s.words {
		for ; w != 0; w &= w - 1 {
			f(wi*wordBits + bits.TrailingZeros64(w))
		}
	}
}

// AppendTo appends the members in ascending order to dst.
func (s *Set) AppendTo(dst []int) []int {
	s.ForEach(func(x int) { dst = append(dst, x) })
	return dst
}

// MinExcluded returns the smallest color ≥ 0 not in the set — space if
// the set holds the whole universe. Full words are skipped with one
// comparison each, so the scan is O(space/64) even on dense sets.
func (s *Set) MinExcluded() int {
	for wi, w := range s.words {
		if w == ^uint64(0) {
			continue
		}
		x := wi*wordBits + bits.TrailingZeros64(^w)
		if x > s.space {
			return s.space
		}
		return x
	}
	return s.space
}

// Counter is a dense per-color counter over [0, space) with an
// O(touched) Reset: only the colors actually incremented since the
// last Reset are re-zeroed, so a node whose lists are much smaller
// than the color space pays for its own traffic, not the universe.
type Counter struct {
	counts  []int32
	touched []int32
}

// NewCounter returns a zeroed counter over [0, space).
func NewCounter(space int) *Counter {
	if space < 0 {
		panic("palette: negative space")
	}
	return &Counter{counts: make([]int32, space)}
}

// Space returns the universe size the counter was created with.
func (c *Counter) Space() int { return len(c.counts) }

// Add increments the count of x by one.
func (c *Counter) Add(x int) { c.AddN(x, 1) }

// AddN increments the count of x by n.
func (c *Counter) AddN(x, n int) {
	if c.counts[x] == 0 && n != 0 {
		c.touched = append(c.touched, int32(x))
	}
	c.counts[x] += int32(n)
}

// Get returns the count of x.
func (c *Counter) Get(x int) int { return int(c.counts[x]) }

// Reset zeroes the counter, touching only the colors counted since
// the previous Reset.
func (c *Counter) Reset() {
	for _, x := range c.touched {
		c.counts[x] = 0
	}
	c.touched = c.touched[:0]
}

// ArgMin returns the smallest color in [0, limit) with the minimum
// count — the greedy "least-used color" choice of the classical
// sweeps.
func (c *Counter) ArgMin(limit int) int {
	best := 0
	for x := 1; x < limit; x++ {
		if c.counts[x] < c.counts[best] {
			best = x
		}
	}
	return best
}

// Index is a rank table over a sorted id list: it maps a global
// neighbor id to its dense position, so per-neighbor state lives in
// flat slices instead of maps. The id slice is referenced, not
// copied, and must stay sorted ascending and unmodified.
type Index struct {
	ids []int
}

// NewIndex returns an index over the sorted ids. It panics if ids is
// not strictly ascending.
func NewIndex(ids []int) Index {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			panic("palette: NewIndex ids not strictly ascending")
		}
	}
	return Index{ids: ids}
}

// Len returns the number of indexed ids.
func (ix Index) Len() int { return len(ix.ids) }

// Rank returns the dense position of id and whether it is present.
func (ix Index) Rank(id int) (int, bool) {
	lo, hi := 0, len(ix.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ix.ids) && ix.ids[lo] == id {
		return lo, true
	}
	return 0, false
}
