package palette

import (
	"math/rand"
	"sort"
	"testing"
)

// TestSetColorZeroAndWordBoundaries pins the edge colors: 0, the last
// bit of a word (63), the first bit of the next word (64), and the
// last color of a non-multiple-of-64 universe.
func TestSetColorZeroAndWordBoundaries(t *testing.T) {
	s := NewSet(130)
	for _, x := range []int{0, 63, 64, 127, 128, 129} {
		if s.Contains(x) {
			t.Fatalf("fresh set contains %d", x)
		}
		s.Insert(x)
		if !s.Contains(x) {
			t.Fatalf("inserted %d not contained", x)
		}
	}
	if got := s.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if got := s.AppendTo(nil); !equalInts(got, []int{0, 63, 64, 127, 128, 129}) {
		t.Fatalf("AppendTo = %v", got)
	}
	s.Remove(64)
	s.Remove(64) // removing an absent color is a no-op
	if s.Contains(64) || s.Len() != 5 {
		t.Fatalf("remove(64) failed: %v", s.AppendTo(nil))
	}
	if x, ok := s.NextSet(1); !ok || x != 63 {
		t.Fatalf("NextSet(1) = %d,%v", x, ok)
	}
	if x, ok := s.NextSet(128); !ok || x != 128 {
		t.Fatalf("NextSet(128) = %d,%v", x, ok)
	}
	if _, ok := s.NextSet(130); ok {
		t.Fatal("NextSet past the universe returned a member")
	}
}

// TestSetCrossWordIntersectSubtract exercises word-wise set algebra on
// universes spanning several words, including the ragged last word.
func TestSetCrossWordIntersectSubtract(t *testing.T) {
	const space = 200
	a, b := NewSet(space), NewSet(space)
	for x := 0; x < space; x += 3 {
		a.Insert(x)
	}
	for x := 0; x < space; x += 5 {
		b.Insert(x)
	}
	inter := NewSet(space)
	inter.CopyFrom(a)
	inter.IntersectWith(b)
	diff := NewSet(space)
	diff.CopyFrom(a)
	diff.SubtractWith(b)
	for x := 0; x < space; x++ {
		wantInter := x%3 == 0 && x%5 == 0
		wantDiff := x%3 == 0 && x%5 != 0
		if inter.Contains(x) != wantInter {
			t.Fatalf("intersect wrong at %d", x)
		}
		if diff.Contains(x) != wantDiff {
			t.Fatalf("subtract wrong at %d", x)
		}
	}
	if inter.Len()+diff.Len() != a.Len() {
		t.Fatalf("algebra lost members: %d + %d != %d", inter.Len(), diff.Len(), a.Len())
	}
}

// TestMinExcludedFullWords pins the mex scan on fully-set words: the
// answer must skip whole 64-bit words and equal space on a full
// universe, including universes that are exact word multiples.
func TestMinExcludedFullWords(t *testing.T) {
	for _, space := range []int{1, 64, 65, 128, 130} {
		s := NewSet(space)
		if got := s.MinExcluded(); got != 0 {
			t.Fatalf("space %d: empty mex = %d", space, got)
		}
		s.Fill()
		if got := s.MinExcluded(); got != space {
			t.Fatalf("space %d: full mex = %d, want %d", space, got, space)
		}
		if got := s.Len(); got != space {
			t.Fatalf("space %d: Fill left Len = %d", space, got)
		}
		s.Remove(space - 1)
		if got := s.MinExcluded(); got != space-1 {
			t.Fatalf("space %d: mex after removing last = %d", space, got)
		}
		if space > 64 {
			s.Fill()
			s.Remove(64) // first bit of the second word
			if got := s.MinExcluded(); got != 64 {
				t.Fatalf("space %d: mex across a full first word = %d", space, got)
			}
		}
	}
}

// TestNthSetMatchesSortedOrder checks the select-i-th operation against
// the ascending member list on random sets spanning word boundaries.
func TestNthSetMatchesSortedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewSet(300)
	want := map[int]bool{}
	for i := 0; i < 90; i++ {
		x := rng.Intn(300)
		s.Insert(x)
		want[x] = true
	}
	var sorted []int
	for x := range want {
		sorted = append(sorted, x)
	}
	sort.Ints(sorted)
	for i, x := range sorted {
		got, ok := s.NthSet(i)
		if !ok || got != x {
			t.Fatalf("NthSet(%d) = %d,%v, want %d", i, got, ok, x)
		}
	}
	if _, ok := s.NthSet(len(sorted)); ok {
		t.Fatal("NthSet past the end returned a member")
	}
	if _, ok := s.NthSet(-1); ok {
		t.Fatal("NthSet(-1) returned a member")
	}
}

// TestCounterTouchedReset pins the O(touched) reset: counts zero out,
// colors never counted stay untouched, and the counter is reusable.
func TestCounterTouchedReset(t *testing.T) {
	c := NewCounter(100)
	c.Add(0)
	c.AddN(64, 3)
	c.Add(99)
	c.AddN(99, 2)
	if c.Get(0) != 1 || c.Get(64) != 3 || c.Get(99) != 3 || c.Get(50) != 0 {
		t.Fatalf("counts wrong: %d %d %d %d", c.Get(0), c.Get(64), c.Get(99), c.Get(50))
	}
	c.Reset()
	for x := 0; x < 100; x++ {
		if c.Get(x) != 0 {
			t.Fatalf("Reset left count at %d", x)
		}
	}
	// Reuse after Reset: the touched list must rebuild correctly.
	c.Add(7)
	c.Add(7)
	if c.Get(7) != 2 {
		t.Fatalf("count after reuse = %d", c.Get(7))
	}
	if got := c.ArgMin(8); got != 0 {
		t.Fatalf("ArgMin(8) = %d, want 0", got)
	}
	c.AddN(0, 5)
	c.AddN(1, 5)
	if got := c.ArgMin(2); got != 0 {
		t.Fatalf("ArgMin tie = %d, want smallest index 0", got)
	}
}

// TestIndexRank pins the rank table against linear search, including
// absent ids below, between and above the indexed range.
func TestIndexRank(t *testing.T) {
	ids := []int{2, 5, 9, 64, 128}
	ix := NewIndex(ids)
	if ix.Len() != 5 {
		t.Fatalf("Len = %d", ix.Len())
	}
	for want, id := range ids {
		got, ok := ix.Rank(id)
		if !ok || got != want {
			t.Fatalf("Rank(%d) = %d,%v, want %d", id, got, ok, want)
		}
	}
	for _, id := range []int{-1, 0, 3, 10, 127, 1000} {
		if _, ok := ix.Rank(id); ok {
			t.Fatalf("Rank(%d) found an absent id", id)
		}
	}
	// Empty index.
	if _, ok := NewIndex(nil).Rank(0); ok {
		t.Fatal("empty index found a rank")
	}
}

// TestSelectScratchArenaReuse pins the selection arena lifecycle: the
// second and later selections on one scratch allocate nothing, results
// survive until the next call, and Reset-style reuse across different
// list sizes is safe.
func TestSelectScratchArenaReuse(t *testing.T) {
	sc := NewSelectScratch()
	k := NewCounter(64)
	k.Add(4)
	list := []int{0, 4, 8, 12, 16, 20, 24, 28}
	defects := []int{1, 7, 3, 5, 0, 2, 6, 4}
	// Warm up, then require allocation-free steady state.
	sc.SelectTopP(list, defects, k, 3)
	allocs := testing.AllocsPerRun(50, func() {
		sc.SelectTopP(list, defects, k, 3)
	})
	if allocs != 0 {
		t.Fatalf("steady-state selection allocates %.1f/op", allocs)
	}
	got, ops := sc.SelectTopP(list, defects, k, 3)
	if len(got) != 3 || ops <= 0 {
		t.Fatalf("selection = %v ops %d", got, ops)
	}
	// Shrinking and growing the list must reuse / regrow cleanly.
	short, shortOps := sc.SelectTopP(list[:2], defects[:2], k, 3)
	if len(short) != 2 || shortOps <= 0 {
		t.Fatalf("short selection = %v", short)
	}
	long := make([]int, 40)
	longDef := make([]int, 40)
	for i := range long {
		long[i] = i
		longDef[i] = i % 7
	}
	kk := NewCounter(64)
	full, _ := sc.SelectTopP(long, longDef, kk, 5)
	if len(full) != 5 {
		t.Fatalf("grown selection = %v", full)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
