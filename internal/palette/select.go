package palette

import "sort"

// SelectScratch is the pooled arena of one node's Phase-I sublist
// selection: the index permutation the stable sort runs on and the
// output color buffer. A node allocates one scratch at Init and
// reuses it for every selection, so steady-state selection performs
// no allocation. The slice returned by SelectTopP aliases the scratch
// and stays valid until the next SelectTopP call — exactly the
// lifetime the Two-Sweep protocol needs, since each node selects once
// per run and broadcasts the result unchanged.
type SelectScratch struct {
	sorter selSorter
	out    []int
}

// NewSelectScratch returns an empty scratch; buffers grow on first
// use and are reused afterwards.
func NewSelectScratch() *SelectScratch { return &SelectScratch{} }

// selSorter is the sort.Interface the selection sorts through. It
// reproduces the retained map-based reference selector
// (baseline.SelectSort) comparison for comparison: sort.Stable and
// sort.SliceStable share one stable-sort implementation, and the
// scores are precomputed before sorting, so the comparison sequence —
// and with it the deterministic `ops` count benchmarks E6/E15 report —
// is exactly the reference's. Do not change the sort call or the Less
// logic without updating the reference selectors in internal/baseline
// and the differential tests in internal/twosweep.
type selSorter struct {
	idx    []int
	scores []int
	ops    int64
}

func (s *selSorter) Len() int      { return len(s.idx) }
func (s *selSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

func (s *selSorter) Less(a, b int) bool {
	s.ops++
	return s.scores[s.idx[a]] > s.scores[s.idx[b]]
}

// SelectTopP is the paper's Phase-I selection on the kernel: sort L_v
// by d_v(x) − k_v(x) descending (stable, so ties go to the smaller
// color) and take the first p colors, returned sorted ascending.
// Identical colors and identical ops as the map-based reference
// selector; zero allocations once the scratch has warmed up.
func (sc *SelectScratch) SelectTopP(list, defects []int, k *Counter, p int) ([]int, int64) {
	n := len(list)
	if cap(sc.sorter.idx) < n {
		sc.sorter.idx = make([]int, n)
		sc.sorter.scores = make([]int, n)
	}
	idx := sc.sorter.idx[:n]
	scores := sc.sorter.scores[:n]
	for i := range idx {
		idx[i] = i
		scores[i] = defects[i] - k.Get(list[i])
	}
	sc.sorter.idx, sc.sorter.scores = idx, scores
	sc.sorter.ops = 0
	sort.Stable(&sc.sorter)
	take := p
	if n < take {
		take = n
	}
	if cap(sc.out) < take {
		sc.out = make([]int, 0, take)
	}
	out := sc.out[:0]
	for _, i := range idx[:take] {
		sc.sorter.ops++
		out = append(out, list[i])
	}
	sort.Ints(out)
	sc.out = out
	return out, sc.sorter.ops
}
