package quality

import (
	"fmt"
	"math"
	"strings"
)

// GuaranteeCheck records one theorem-guarantee assertion together with
// the constant-factor headroom the implementation actually had. The
// paper's claims are asymptotic; conformance tests pin each one to a
// concrete bound with an explicit constant and record Bound/Actual so
// that a regression eating into the margin is visible before it
// becomes a failure.
type GuaranteeCheck struct {
	// Name identifies the guarantee, e.g. "rounds = 2q+1 (Lemma 3.3)".
	Name string
	// Actual is the measured value, Bound the asserted limit.
	Actual, Bound float64
	// OK reports whether the assertion held.
	OK bool
	// Headroom is Bound/Actual (+Inf when Actual is 0). For equality
	// checks it is 1 when the check passes.
	Headroom float64
}

func headroom(actual, bound float64) float64 {
	if actual == 0 {
		return math.Inf(1)
	}
	return bound / actual
}

// CheckUpper asserts actual ≤ bound.
func CheckUpper(name string, actual, bound float64) GuaranteeCheck {
	return GuaranteeCheck{
		Name:     name,
		Actual:   actual,
		Bound:    bound,
		OK:       actual <= bound,
		Headroom: headroom(actual, bound),
	}
}

// CheckEqual asserts actual == want exactly (round counts that the
// implementation pins to a closed form, not just an O(·) bound).
func CheckEqual(name string, actual, want float64) GuaranteeCheck {
	return GuaranteeCheck{
		Name:     name,
		Actual:   actual,
		Bound:    want,
		OK:       actual == want,
		Headroom: headroom(actual, want),
	}
}

// CheckHolds records a boolean property (typically "validator
// passed"); Actual is 1 when it holds.
func CheckHolds(name string, ok bool) GuaranteeCheck {
	actual := 0.0
	if ok {
		actual = 1
	}
	return GuaranteeCheck{Name: name, Actual: actual, Bound: 1, OK: ok, Headroom: 1}
}

// String renders the check as a one-line report.
func (c GuaranteeCheck) String() string {
	status := "ok"
	if !c.OK {
		status = "FAIL"
	}
	h := ""
	if !math.IsInf(c.Headroom, 1) && c.Bound != 1 {
		h = fmt.Sprintf(", headroom %.2fx", c.Headroom)
	}
	return fmt.Sprintf("%s: %s (actual %.6g, bound %.6g%s)", status, c.Name, c.Actual, c.Bound, h)
}

// Failures returns the failing checks' reports, empty when all hold.
func Failures(checks []GuaranteeCheck) []string {
	var out []string
	for _, c := range checks {
		if !c.OK {
			out = append(out, c.String())
		}
	}
	return out
}

// MinHeadroom returns the smallest headroom across the checks (the
// tightest margin), or +Inf for an empty slice.
func MinHeadroom(checks []GuaranteeCheck) float64 {
	min := math.Inf(1)
	for _, c := range checks {
		if c.Headroom < min {
			min = c.Headroom
		}
	}
	return min
}

// FormatChecks renders all checks, one per line.
func FormatChecks(checks []GuaranteeCheck) string {
	var b strings.Builder
	for _, c := range checks {
		b.WriteString("  " + c.String() + "\n")
	}
	return b.String()
}
