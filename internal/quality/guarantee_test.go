package quality

import (
	"math"
	"strings"
	"testing"
)

func TestCheckUpper(t *testing.T) {
	c := CheckUpper("rounds", 10, 40)
	if !c.OK || c.Headroom != 4 {
		t.Errorf("CheckUpper(10,40) = %+v", c)
	}
	if c := CheckUpper("rounds", 41, 40); c.OK {
		t.Errorf("CheckUpper(41,40) passed: %+v", c)
	}
	if c := CheckUpper("rounds", 0, 40); !math.IsInf(c.Headroom, 1) {
		t.Errorf("zero actual should give +Inf headroom, got %v", c.Headroom)
	}
}

func TestCheckEqual(t *testing.T) {
	if c := CheckEqual("rounds = 2q+1", 21, 21); !c.OK || c.Headroom != 1 {
		t.Errorf("CheckEqual exact = %+v", c)
	}
	if c := CheckEqual("rounds = 2q+1", 20, 21); c.OK {
		t.Errorf("CheckEqual mismatch passed: %+v", c)
	}
}

func TestCheckHolds(t *testing.T) {
	if c := CheckHolds("validator", true); !c.OK {
		t.Errorf("CheckHolds(true) = %+v", c)
	}
	if c := CheckHolds("validator", false); c.OK {
		t.Errorf("CheckHolds(false) = %+v", c)
	}
}

func TestFailuresAndMinHeadroom(t *testing.T) {
	checks := []GuaranteeCheck{
		CheckUpper("a", 10, 40),
		CheckUpper("b", 50, 40),
		CheckUpper("c", 20, 40),
	}
	fails := Failures(checks)
	if len(fails) != 1 || !strings.Contains(fails[0], "b") {
		t.Errorf("Failures = %v", fails)
	}
	if h := MinHeadroom(checks); h != 0.8 {
		t.Errorf("MinHeadroom = %v, want 0.8", h)
	}
	if h := MinHeadroom(nil); !math.IsInf(h, 1) {
		t.Errorf("MinHeadroom(nil) = %v", h)
	}
	if out := FormatChecks(checks); !strings.Contains(out, "FAIL: b") {
		t.Errorf("FormatChecks missing failure line:\n%s", out)
	}
}
