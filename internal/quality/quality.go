// Package quality computes diagnostic reports about colorings: how
// much of each node's defect budget a solution actually uses, how
// balanced the color classes are, and how far the palette was
// exploited. The reports feed colorsim's -analyze flag and give
// experiments a quality dimension beyond mere validity.
package quality

import (
	"fmt"
	"sort"
	"strings"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/stats"
)

// Report summarizes a list defective coloring against its instance.
type Report struct {
	// ColorsUsed is the number of distinct colors in the solution.
	ColorsUsed int
	// Space is the instance's color space size.
	Space int
	// LargestClass and SmallestClass are the extreme non-empty color
	// class sizes; Imbalance is their ratio.
	LargestClass, SmallestClass int
	// Defect summarizes the realized per-node conflict counts.
	Defect stats.Summary
	// Utilization summarizes conflicts/allowed per node with a non-zero
	// budget (1.0 = budget fully used; conflicts on zero-budget nodes
	// would be validation failures, not utilization).
	Utilization stats.Summary
	// TightNodes counts nodes whose realized conflicts equal their
	// allowed defect exactly.
	TightNodes int
}

// Analyze builds a report for an (undirected) list defective coloring.
// The coloring must already be valid for the instance; call a
// validator first.
func Analyze(g *graph.Graph, inst *coloring.Instance, colors []int) (Report, error) {
	if len(colors) != g.N() {
		return Report{}, fmt.Errorf("quality: %d colors for %d nodes", len(colors), g.N())
	}
	classes := make(map[int]int)
	var defects, utils []float64
	r := Report{Space: inst.Space}
	// Realized per-node conflict counts come from the shared defect-
	// audit kernel (auto worker count — one whole-graph scan instead of
	// a second adjacency walk); the audit fills mono even for off-list
	// nodes, so the error paths below stay intact.
	mono := make([]int, g.N())
	coloring.AuditInto(g, inst, colors, mono, 0)
	for v := 0; v < g.N(); v++ {
		classes[colors[v]]++
		allowed, ok := inst.DefectOf(v, colors[v])
		if !ok {
			return Report{}, fmt.Errorf("quality: node %d wears color %d outside its list", v, colors[v])
		}
		defects = append(defects, float64(mono[v]))
		if allowed > 0 {
			utils = append(utils, float64(mono[v])/float64(allowed))
		}
		if mono[v] == allowed && allowed > 0 {
			r.TightNodes++
		}
	}
	r.ColorsUsed = len(classes)
	r.SmallestClass = g.N()
	for _, sz := range classes {
		if sz > r.LargestClass {
			r.LargestClass = sz
		}
		if sz < r.SmallestClass {
			r.SmallestClass = sz
		}
	}
	if len(classes) == 0 {
		r.SmallestClass = 0
	}
	if len(defects) > 0 {
		r.Defect = stats.Summarize(defects)
	}
	if len(utils) > 0 {
		r.Utilization = stats.Summarize(utils)
	}
	return r, nil
}

// Format renders the report as a short human-readable block.
func (r Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "colors used: %d of %d (largest class %d, smallest %d)\n",
		r.ColorsUsed, r.Space, r.LargestClass, r.SmallestClass)
	fmt.Fprintf(&b, "realized defect: mean %.2f, max %.0f\n", r.Defect.Mean, r.Defect.Max)
	if r.Utilization.N > 0 {
		fmt.Fprintf(&b, "budget utilization (nodes with budget): mean %.0f%%, p90 %.0f%%\n",
			100*r.Utilization.Mean, 100*r.Utilization.P90)
	}
	fmt.Fprintf(&b, "nodes at exactly their budget: %d\n", r.TightNodes)
	return b.String()
}

// ClassSizes returns the sorted (descending) sizes of the non-empty
// color classes.
func ClassSizes(colors []int) []int {
	classes := make(map[int]int)
	for _, c := range colors {
		classes[c]++
	}
	out := make([]int, 0, len(classes))
	for _, sz := range classes {
		out = append(out, sz)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
