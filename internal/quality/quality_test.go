package quality

import (
	"math/rand"
	"strings"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

func TestAnalyzeProperColoring(t *testing.T) {
	g := graph.Ring(6)
	inst := coloring.ThreeColor(6, 0)
	colors := []int{0, 1, 0, 1, 0, 1}
	r, err := Analyze(g, inst, colors)
	if err != nil {
		t.Fatal(err)
	}
	if r.ColorsUsed != 2 || r.Space != 3 {
		t.Errorf("ColorsUsed=%d Space=%d", r.ColorsUsed, r.Space)
	}
	if r.Defect.Max != 0 || r.TightNodes != 0 {
		t.Errorf("proper coloring should have zero defects: %+v", r.Defect)
	}
	if r.LargestClass != 3 || r.SmallestClass != 3 {
		t.Errorf("class sizes: %d/%d", r.LargestClass, r.SmallestClass)
	}
}

func TestAnalyzeDefective(t *testing.T) {
	// Monochromatic ring with defect budget 2: every node uses its full
	// budget.
	g := graph.Ring(4)
	inst := coloring.ThreeColor(4, 2)
	colors := []int{0, 0, 0, 0}
	r, err := Analyze(g, inst, colors)
	if err != nil {
		t.Fatal(err)
	}
	if r.ColorsUsed != 1 {
		t.Errorf("ColorsUsed = %d", r.ColorsUsed)
	}
	if r.Defect.Mean != 2 || r.Defect.Max != 2 {
		t.Errorf("defect summary: %+v", r.Defect)
	}
	if r.Utilization.Mean != 1 {
		t.Errorf("utilization mean = %v, want 1", r.Utilization.Mean)
	}
	if r.TightNodes != 4 {
		t.Errorf("TightNodes = %d, want 4", r.TightNodes)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	g := graph.Ring(4)
	inst := coloring.ThreeColor(4, 1)
	if _, err := Analyze(g, inst, []int{0, 1}); err == nil {
		t.Error("short coloring accepted")
	}
	if _, err := Analyze(g, inst, []int{0, 1, 0, 9}); err == nil {
		t.Error("off-list color accepted")
	}
}

func TestFormatContainsEverything(t *testing.T) {
	g := graph.Ring(4)
	inst := coloring.ThreeColor(4, 2)
	r, err := Analyze(g, inst, []int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := r.Format()
	for _, want := range []string{"colors used", "realized defect", "utilization", "budget: 4"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestClassSizes(t *testing.T) {
	sizes := ClassSizes([]int{1, 1, 2, 2, 2, 5})
	want := []int{3, 2, 1}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
}

func TestAnalyzeOnRealRun(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomRegular(40, 4, rng)
	inst := coloring.WithSlack(g, 30, 2.5, rng)
	// Build a trivially valid coloring: give everyone their
	// highest-defect color, then check Analyze only if it validates.
	colors := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		best, bestD := inst.Lists[v][0], inst.Defects[v][0]
		for i, x := range inst.Lists[v] {
			if inst.Defects[v][i] > bestD {
				best, bestD = x, inst.Defects[v][i]
			}
		}
		colors[v] = best
	}
	if coloring.ValidateListDefective(g, inst, colors) != nil {
		t.Skip("max-defect heuristic not valid on this seed; nothing to analyze")
	}
	r, err := Analyze(g, inst, colors)
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization.Max > 1 {
		t.Errorf("valid coloring with utilization > 1: %+v", r.Utilization)
	}
}
