package repair

// heal.go generalizes the undirected repair loop from fault recovery
// to churn maintenance: the same classifier (defect-budget-absorbed vs
// hard conflicts) and the same bounded deterministic recolor schedule,
// but over an abstract read-only Topology — so it runs equally on the
// adjacency-list graph.Graph, the immutable graph.CSR, and the
// incremental service's mutable graph.Overlay — and with a *seeded*
// entry point, HealLocal, that scans only a frontier instead of the
// whole vertex set.
//
// Schedule equality (the locality contract the incremental service
// depends on): a node's hardness is a function of its own color, its
// list constraints, and its neighbors' colors, so one repair round
// changes hardness only on recolored ∪ N(recolored); and churn on an
// edge {u,v} changes conflict counts only at u and v. Therefore, as
// long as the seed set covers every hard node, the frontier
//
//	candidates(r+1) = dirty(r) ∪ N(eligible(r))
//
// contains every node that can be hard in round r+1, and HealLocal
// computes the exact dirty set — hence the exact eligible set, the
// exact recolors, and byte-identical final colors — that the global
// full-scan Heal computes. TestHealLocalMatchesHeal pins this.

import (
	"sort"

	"listcolor/internal/coloring"
	"listcolor/internal/sim"
)

// Topology is the read-only adjacency view the heal core works over:
// vertex count, degrees, and sorted neighbor lists. graph.Graph,
// graph.CSR and graph.Overlay all satisfy it.
type Topology interface {
	N() int
	Degree(v int) int
	Neighbors(v int) []int
}

// HealOptions bounds a heal run.
type HealOptions struct {
	// RoundBudget caps repair rounds; 0 means DefaultBudget(n).
	RoundBudget int
}

// HealReport is the outcome and bill of one heal run.
type HealReport struct {
	// Rounds is the number of repair rounds driven (0 when the seeds
	// were already clean).
	Rounds int
	// Hard is the number of hard nodes found at entry — the damage the
	// run started from.
	Hard int
	// Recolored is the total number of recolor operations (the
	// service's locality numerator: nodes touched per update batch).
	Recolored int
	// Fallbacks counts recolors for which no budget-respecting list
	// color existed, so the least-overdrawn color was taken instead.
	// Zero fallbacks is the precondition of the incremental-vs-global
	// equivalence the service's differential test checks.
	Fallbacks int
	// Scanned is the total number of candidate evaluations across all
	// rounds — the work the frontier saved shows up as Scanned ≪ n·Rounds.
	Scanned int
	// Messages/Bits bill the recolor broadcasts: deg(v) messages of
	// BitsFor(Space) bits per recoloring node, exactly as
	// Report.RepairMessages/RepairBits.
	Messages, Bits int
	// Converged reports that no hard node remained within the budget.
	Converged bool
}

// Heal drives the global repair schedule: every vertex is a seed, so
// round one is a full hardness scan and the run is byte-identical to
// the pre-Topology repair loop (TestHealMatchesReferenceLoop pins
// this). Colors are mutated in place.
func Heal(topo Topology, inst *coloring.Instance, colors []int, opt HealOptions) HealReport {
	seeds := make([]int, topo.N())
	for v := range seeds {
		seeds[v] = v
	}
	return healCore(topo, inst, colors, seeds, opt.RoundBudget)
}

// HealLocal drives the seeded repair schedule: only the seeds are
// scanned in round one, and the frontier grows by the neighborhoods of
// recolored nodes. When the seeds cover every hard node — which churn
// guarantees for the dirty set of an update batch, since inserting or
// deleting an edge changes conflict counts only at its endpoints —
// HealLocal produces byte-identical colors to Heal at a fraction of
// the scan cost. Out-of-range and duplicate seeds are ignored.
func HealLocal(topo Topology, inst *coloring.Instance, colors []int, seeds []int, opt HealOptions) HealReport {
	return healCore(topo, inst, colors, seeds, opt.RoundBudget)
}

// healCore is the shared schedule: per round, dirty = hard nodes among
// the candidates; eligible = dirty nodes that are the id-maximum of
// their dirty closed neighborhood (an independent set, never empty
// while dirty is non-empty); each eligible node recolors to the list
// color minimizing (excess over budget, conflicts, list order); the
// next candidate set is dirty ∪ N(eligible).
func healCore(topo Topology, inst *coloring.Instance, colors []int, seeds []int, budget int) HealReport {
	n := topo.N()
	var hr HealReport
	if len(colors) != n || inst.N() != n {
		return hr
	}
	if budget <= 0 {
		budget = DefaultBudget(n)
	}
	colorBits := sim.BitsFor(inst.Space)
	const maxInt = int(^uint(0) >> 1)

	conflicts := func(v int) int {
		c := 0
		for _, u := range topo.Neighbors(v) {
			if colors[u] == colors[v] {
				c++
			}
		}
		return c
	}
	isHard := func(v int) bool {
		allowed, ok := inst.DefectOf(v, colors[v])
		if !ok {
			return true
		}
		return conflicts(v) > allowed
	}
	// recolor re-enters v with its residual list and reports whether it
	// had to overdraw the budget (no compliant color existed).
	recolor := func(v int) bool {
		list := inst.Lists[v]
		if len(list) == 0 {
			return true
		}
		defects := inst.Defects[v]
		bestX, bestExcess, bestConf := list[0], maxInt, maxInt
		for i, x := range list {
			colors[v] = x
			conf := conflicts(v)
			excess := conf - defects[i]
			if excess < 0 {
				excess = 0
			}
			if excess < bestExcess || (excess == bestExcess && conf < bestConf) {
				bestX, bestExcess, bestConf = x, excess, conf
			}
		}
		colors[v] = bestX
		return bestExcess > 0
	}

	hard := make([]bool, n)
	mark := make([]bool, n)
	cand := make([]int, 0, len(seeds))
	for _, v := range seeds {
		if v >= 0 && v < n && !mark[v] {
			mark[v] = true
			cand = append(cand, v)
		}
	}
	for _, v := range cand {
		mark[v] = false
	}
	sort.Ints(cand)

	scan := func() []int {
		var dirty []int
		for _, v := range cand {
			h := isHard(v)
			hard[v] = h
			if h {
				dirty = append(dirty, v)
			}
		}
		hr.Scanned += len(cand)
		return dirty
	}

	dirty := scan()
	hr.Hard = len(dirty)
	var next []int
	for len(dirty) > 0 && hr.Rounds < budget {
		hr.Rounds++
		// eligible: id-maxima of dirty closed neighborhoods. Adjacent
		// dirty nodes cannot both qualify, so the set is independent
		// and within-round recolor order is immaterial.
		var eligible []int
		for _, v := range dirty {
			ok := true
			for _, u := range topo.Neighbors(v) {
				if hard[u] && u > v {
					ok = false
					break
				}
			}
			if ok {
				eligible = append(eligible, v)
			}
		}
		next = next[:0]
		for _, v := range dirty {
			if !mark[v] {
				mark[v] = true
				next = append(next, v)
			}
		}
		for _, v := range eligible {
			if recolor(v) {
				hr.Fallbacks++
			}
			hr.Recolored++
			d := topo.Degree(v)
			hr.Messages += d
			hr.Bits += d * colorBits
			for _, u := range topo.Neighbors(v) {
				if !mark[u] {
					mark[u] = true
					next = append(next, u)
				}
			}
		}
		cand = append(cand[:0], next...)
		for _, v := range cand {
			mark[v] = false
		}
		sort.Ints(cand)
		dirty = scan()
	}
	hr.Converged = len(dirty) == 0
	return hr
}

// GreedyColors builds the deterministic id-ascending greedy coloring:
// each vertex in turn takes the list color minimizing (excess over
// budget, conflicts, list order) against its already-colored lower-id
// neighbors. For proper instances with deg+1 lists the result is
// already valid; for defective instances later vertices can push
// earlier ones over budget, so callers follow with Heal — the pair is
// the incremental service's initializer. (The first-list-color
// baseline is unusable at scale here: on a ring it makes every node
// hard and the id-max rule recolors one node per round.)
func GreedyColors(topo Topology, inst *coloring.Instance) []int {
	n := topo.N()
	colors := make([]int, n)
	done := make([]bool, n)
	const maxInt = int(^uint(0) >> 1)
	for v := 0; v < n; v++ {
		list := inst.Lists[v]
		if len(list) == 0 {
			done[v] = true
			continue
		}
		defects := inst.Defects[v]
		bestX, bestExcess, bestConf := list[0], maxInt, maxInt
		for i, x := range list {
			conf := 0
			for _, u := range topo.Neighbors(v) {
				if done[u] && colors[u] == x {
					conf++
				}
			}
			excess := conf - defects[i]
			if excess < 0 {
				excess = 0
			}
			if excess < bestExcess || (excess == bestExcess && conf < bestConf) {
				bestX, bestExcess, bestConf = x, excess, conf
				if excess == 0 && conf == 0 {
					break
				}
			}
		}
		colors[v] = bestX
		done[v] = true
	}
	return colors
}
