package repair

import (
	"math/rand"
	"reflect"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// referenceHealLoop is a frozen copy of the pre-Topology undirected
// repair loop (full rescan of all n vertices every round): the oracle
// that pins the heal-core delegation as byte-for-byte
// behavior-preserving.
func referenceHealLoop(g *graph.Graph, inst *coloring.Instance, colors []int, budget int) (rounds, msgs, bits int) {
	n := g.N()
	colorBits := sim.BitsFor(inst.Space)
	conflicts := func(v int) int {
		c := 0
		for _, u := range g.Neighbors(v) {
			if colors[u] == colors[v] {
				c++
			}
		}
		return c
	}
	hardAt := func(v int) bool {
		allowed, ok := inst.DefectOf(v, colors[v])
		if !ok {
			return true
		}
		return conflicts(v) > allowed
	}
	recolor := func(v int) {
		list := inst.Lists[v]
		if len(list) == 0 {
			return
		}
		defects := inst.Defects[v]
		const maxInt = int(^uint(0) >> 1)
		bestX, bestExcess, bestConf := list[0], maxInt, maxInt
		for i, x := range list {
			colors[v] = x
			conf := conflicts(v)
			excess := conf - defects[i]
			if excess < 0 {
				excess = 0
			}
			if excess < bestExcess || (excess == bestExcess && conf < bestConf) {
				bestX, bestExcess, bestConf = x, excess, conf
			}
		}
		colors[v] = bestX
	}
	dirty := make([]bool, n)
	var dirtyIDs []int
	rescan := func() {
		dirtyIDs = dirtyIDs[:0]
		for v := 0; v < n; v++ {
			dirty[v] = hardAt(v)
			if dirty[v] {
				dirtyIDs = append(dirtyIDs, v)
			}
		}
	}
	rescan()
	for len(dirtyIDs) > 0 && rounds < budget {
		rounds++
		var eligible []int
		for _, v := range dirtyIDs {
			ok := true
			for _, u := range g.Neighbors(v) {
				if dirty[u] && u > v {
					ok = false
					break
				}
			}
			if ok {
				eligible = append(eligible, v)
			}
		}
		for _, v := range eligible {
			recolor(v)
			msgs += g.Degree(v)
			bits += g.Degree(v) * colorBits
		}
		rescan()
	}
	return rounds, msgs, bits
}

// damagedColoring returns a coloring where each node takes a random
// list color, and a few nodes are poisoned with an out-of-list color.
func damagedColoring(inst *coloring.Instance, rng *rand.Rand) []int {
	colors := make([]int, inst.N())
	for v := range colors {
		if len(inst.Lists[v]) == 0 {
			continue
		}
		colors[v] = inst.Lists[v][rng.Intn(len(inst.Lists[v]))]
		if rng.Intn(10) == 0 {
			colors[v] = inst.Space + 1 + rng.Intn(3)
		}
	}
	return colors
}

// TestHealMatchesReferenceLoop pins Heal (all vertices seeded) against
// the frozen pre-refactor loop across random graphs, instances, and
// damaged colorings: identical colors, rounds, and billing.
func TestHealMatchesReferenceLoop(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		g := graph.GNP(n, 0.05+rng.Float64()*0.2, rng)
		inst := coloring.DegreePlusOne(g, g.RawMaxDegree()+2+rng.Intn(5), rng)
		start := damagedColoring(inst, rng)

		want := append([]int(nil), start...)
		wantRounds, wantMsgs, wantBits := referenceHealLoop(g, inst, want, DefaultBudget(n))

		got := append([]int(nil), start...)
		hr := Heal(g, inst, got, HealOptions{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: Heal colors diverge from reference loop", seed)
		}
		if hr.Rounds != wantRounds || hr.Messages != wantMsgs || hr.Bits != wantBits {
			t.Fatalf("seed %d: Heal (rounds=%d, msgs=%d, bits=%d), reference (%d, %d, %d)",
				seed, hr.Rounds, hr.Messages, hr.Bits, wantRounds, wantMsgs, wantBits)
		}
		if !hr.Converged {
			t.Fatalf("seed %d: deg+1 instance did not converge", seed)
		}
		if err := coloring.ValidateListDefective(g, inst, got); err != nil {
			t.Fatalf("seed %d: healed coloring invalid: %v", seed, err)
		}
	}
}

// TestHealTopologyGeneric runs the same heal on the adjacency-list
// graph and its CSR twin: the Topology abstraction must not leak into
// the schedule.
func TestHealTopologyGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := graph.GNP(40, 0.12, rng)
	inst := coloring.DegreePlusOne(g, g.RawMaxDegree()+3, rng)
	start := damagedColoring(inst, rng)

	a := append([]int(nil), start...)
	b := append([]int(nil), start...)
	ha := Heal(g, inst, a, HealOptions{})
	hb := Heal(graph.CSRFromGraph(g), inst, b, HealOptions{})
	if !reflect.DeepEqual(a, b) || ha != hb {
		t.Fatalf("Graph vs CSR heal diverged: %+v vs %+v", ha, hb)
	}
}

// TestHealLocalMatchesHeal is the locality contract: under random edge
// churn on an overlay, HealLocal seeded with only the dirty endpoints
// produces byte-identical colors — and an identical report modulo the
// scan count — to the global full-scan Heal, while scanning less.
func TestHealLocalMatchesHeal(t *testing.T) {
	base := graph.StreamedGNP(60, 0.08, 5)
	ov := graph.NewOverlay(base)
	n := ov.N()
	// Shared palette with generous headroom so churned degrees stay
	// below the list size and repair never needs a fallback.
	space := 2*base.RawMaxDegree() + 8
	inst := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	full := make([]int, space)
	for i := range full {
		full[i] = i
	}
	zeros := make([]int, space)
	for v := 0; v < n; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = zeros
	}

	colors := GreedyColors(ov, inst)
	if hr := Heal(ov, inst, colors, HealOptions{}); !hr.Converged {
		t.Fatalf("initial coloring did not converge: %+v", hr)
	}

	rng := rand.New(rand.NewSource(11))
	totalLocal, totalGlobal := 0, 0
	for batch := 0; batch < 30; batch++ {
		var dirty []int
		for op := 0; op < 5; op++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if ov.HasEdge(u, v) {
				ov.RemoveEdge(u, v)
				dirty = append(dirty, u, v)
			} else if ov.Degree(u) < space-2 && ov.Degree(v) < space-2 {
				if err := ov.AddEdge(u, v); err != nil {
					t.Fatalf("batch %d AddEdge: %v", batch, err)
				}
				dirty = append(dirty, u, v)
			}
		}
		local := append([]int(nil), colors...)
		global := append([]int(nil), colors...)
		hl := HealLocal(ov, inst, local, dirty, HealOptions{})
		hg := Heal(ov, inst, global, HealOptions{})
		if !reflect.DeepEqual(local, global) {
			t.Fatalf("batch %d: HealLocal colors diverge from global Heal", batch)
		}
		if hl.Rounds != hg.Rounds || hl.Recolored != hg.Recolored ||
			hl.Fallbacks != hg.Fallbacks || hl.Messages != hg.Messages || hl.Bits != hg.Bits {
			t.Fatalf("batch %d: reports diverge: local %+v, global %+v", batch, hl, hg)
		}
		if !hl.Converged || hl.Fallbacks != 0 {
			t.Fatalf("batch %d: local heal converged=%v fallbacks=%d", batch, hl.Converged, hl.Fallbacks)
		}
		if hl.Scanned > hg.Scanned {
			t.Fatalf("batch %d: frontier scanned %d > global %d", batch, hl.Scanned, hg.Scanned)
		}
		totalLocal += hl.Scanned
		totalGlobal += hg.Scanned
		colors = local
		if err := coloring.ValidateListDefective(ov.Graph(), inst, colors); err != nil {
			t.Fatalf("batch %d: maintained coloring invalid: %v", batch, err)
		}
	}
	if totalLocal*2 > totalGlobal {
		t.Errorf("frontier saved too little: local scans %d vs global %d", totalLocal, totalGlobal)
	}
}

// TestGreedyColorsInitializer checks the service initializer: greedy
// alone is valid on proper deg+1 instances, greedy+Heal is valid on
// defective ones, and on a large ring greedy needs no repair at all
// (the first-list baseline would recolor one node per round there).
func TestGreedyColorsInitializer(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.GNP(80, 0.1, rng)
	inst := coloring.DegreePlusOne(g, g.RawMaxDegree()+4, rng)
	colors := GreedyColors(g, inst)
	if err := coloring.ValidateListDefective(g, inst, colors); err != nil {
		t.Fatalf("greedy on proper deg+1 lists invalid: %v", err)
	}
	if hr := Heal(g, inst, colors, HealOptions{}); hr.Rounds != 0 || !hr.Converged {
		t.Fatalf("valid greedy coloring still triggered repair: %+v", hr)
	}

	// Defective instance: short lists, budget 1 per color. Greedy can
	// leave early nodes over budget; Heal must finish the job.
	n := 60
	gd := graph.GNP(n, 0.15, rng)
	instD := &coloring.Instance{Space: 8, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		k := 3 + gd.Degree(v)/2
		if k > 8 {
			k = 8
		}
		list := make([]int, k)
		defs := make([]int, k)
		for i := range list {
			list[i] = (v + i) % 8
			defs[i] = 1
		}
		instD.Lists[v] = list
		instD.Defects[v] = defs
	}
	colorsD := GreedyColors(gd, instD)
	hr := Heal(gd, instD, colorsD, HealOptions{})
	if hr.Converged {
		if err := coloring.ValidateListDefective(gd, instD, colorsD); err != nil {
			t.Fatalf("converged but invalid: %v", err)
		}
	}

	ring := graph.StreamedRing(5000)
	ri := &coloring.Instance{Space: 3, Lists: make([][]int, 5000), Defects: make([][]int, 5000)}
	for v := 0; v < 5000; v++ {
		ri.Lists[v] = []int{0, 1, 2}
		ri.Defects[v] = []int{0, 0, 0}
	}
	rc := GreedyColors(ring, ri)
	if hr := Heal(ring, ri, rc, HealOptions{}); hr.Rounds != 0 {
		t.Fatalf("greedy ring coloring needed %d repair rounds", hr.Rounds)
	}
}

// TestHealSeedHygiene: out-of-range and duplicate seeds are ignored,
// an empty seed set is a no-op, and mismatched lengths return a zero
// report instead of panicking.
func TestHealSeedHygiene(t *testing.T) {
	g := graph.Ring(8)
	inst := coloring.DegreePlusOne(g, 4, rand.New(rand.NewSource(1)))
	colors := GreedyColors(g, inst)
	hr := HealLocal(g, inst, colors, []int{-3, 2, 2, 99, 2}, HealOptions{})
	if hr.Scanned != 1 || hr.Rounds != 0 || !hr.Converged {
		t.Fatalf("seed hygiene: %+v", hr)
	}
	if hr := HealLocal(g, inst, colors, nil, HealOptions{}); !hr.Converged || hr.Scanned != 0 {
		t.Fatalf("empty seeds: %+v", hr)
	}
	if hr := Heal(g, inst, make([]int, 3), HealOptions{}); hr.Converged || hr.Rounds != 0 {
		t.Fatalf("length mismatch not rejected: %+v", hr)
	}
}
