package repair

// region.go is the sharded write path's repair kernel: healCore's
// exact schedule restricted to a contiguous vertex region [lo, hi).
// The service runs one HealRegion per shard region concurrently over
// the same colors slice — safe because a region run only ever reads
// and writes colors of region vertices.
//
// Exactness: a regional run scans a candidate only after verifying
// its whole neighborhood lies inside the region. Under that
// containment, every read (conflict counts, hardness flags,
// eligibility) and every write (recolors) of the regional schedule
// touches region vertices only, so the global seeded schedule
// HealLocal(seeds_1 ∪ … ∪ seeds_s) decomposes exactly into the
// per-region schedules: per-round dirty sets are the disjoint unions
// of the regional ones, cross-region eligible nodes have disjoint
// neighborhoods so recolor interleaving is immaterial, and the report
// fields merge as Hard/Recolored/Fallbacks/Scanned/Messages/Bits = Σ,
// Rounds = max, Converged = ∧ (every region runs under the same
// round budget the global run would use). TestHealRegionMatchesLocal
// pins this.
//
// The moment containment would be violated — a candidate's frontier
// reaches outside [lo, hi) — the run rolls its own recolors back and
// reports !ok; the service then rolls back every other region's undo
// log and falls back to one global HealLocal, which is byte-identical
// to the sequential path by the seeded-equals-global contract. Either
// way the caller ends at exactly the sequential result.

import (
	"sort"

	"listcolor/internal/coloring"
	"listcolor/internal/sim"
)

// Recolor is one undo-log entry: vertex V held color Old before the
// recolor. Applying a log in reverse order restores the pre-run
// colors exactly (later entries for the same vertex are undone
// first).
type Recolor struct {
	V, Old int
}

// Rollback restores colors from an undo log (reverse application).
func Rollback(colors []int, undo []Recolor) {
	for i := len(undo) - 1; i >= 0; i-- {
		colors[undo[i].V] = undo[i].Old
	}
}

// HealRegion drives the seeded repair schedule confined to vertices
// [lo, hi): byte-identical decisions to the global schedule as long
// as every candidate's neighborhood stays inside the region. seeds
// must lie in [lo, hi). budget ≤ 0 means DefaultBudget(topo.N()) —
// the same resolution the global run uses, so regional and global
// runs always share one round budget.
//
// On success (ok=true) colors hold the regional result and undo is
// the recolor log (for the caller to roll back if a sibling region
// aborts). On abort (ok=false) this region's recolors have already
// been rolled back, colors are untouched relative to entry, and the
// report is meaningless.
func HealRegion(topo Topology, inst *coloring.Instance, colors []int, seeds []int, lo, hi, budget int) (hr HealReport, undo []Recolor, ok bool) {
	n := topo.N()
	if len(colors) != n || inst.N() != n {
		return hr, nil, false
	}
	if lo < 0 || hi > n || lo > hi {
		return hr, nil, false
	}
	if budget <= 0 {
		budget = DefaultBudget(n)
	}
	colorBits := sim.BitsFor(inst.Space)
	const maxInt = int(^uint(0) >> 1)

	conflicts := func(v int) int {
		c := 0
		for _, u := range topo.Neighbors(v) {
			if colors[u] == colors[v] {
				c++
			}
		}
		return c
	}
	isHard := func(v int) bool {
		allowed, ok := inst.DefectOf(v, colors[v])
		if !ok {
			return true
		}
		return conflicts(v) > allowed
	}
	recolor := func(v int) bool {
		list := inst.Lists[v]
		if len(list) == 0 {
			return true
		}
		undo = append(undo, Recolor{V: v, Old: colors[v]})
		defects := inst.Defects[v]
		bestX, bestExcess, bestConf := list[0], maxInt, maxInt
		for i, x := range list {
			colors[v] = x
			conf := conflicts(v)
			excess := conf - defects[i]
			if excess < 0 {
				excess = 0
			}
			if excess < bestExcess || (excess == bestExcess && conf < bestConf) {
				bestX, bestExcess, bestConf = x, excess, conf
			}
		}
		colors[v] = bestX
		return bestExcess > 0
	}

	// hard/mark are region-local, indexed v-lo, so s concurrent regions
	// allocate n flags total — the same footprint as one global run.
	span := hi - lo
	hard := make([]bool, span)
	mark := make([]bool, span)
	cand := make([]int, 0, len(seeds))
	for _, v := range seeds {
		if v < lo || v >= hi {
			return hr, nil, false
		}
		if !mark[v-lo] {
			mark[v-lo] = true
			cand = append(cand, v)
		}
	}
	for _, v := range cand {
		mark[v-lo] = false
	}
	sort.Ints(cand)

	abort := func() (HealReport, []Recolor, bool) {
		Rollback(colors, undo)
		return HealReport{}, nil, false
	}

	// scan mirrors healCore's scan, plus the containment gate: a
	// candidate whose neighborhood leaves the region aborts the run
	// before any of its neighbors' colors are read for a decision.
	contained := true
	scan := func() []int {
		var dirty []int
		for _, v := range cand {
			for _, u := range topo.Neighbors(v) {
				if u < lo || u >= hi {
					contained = false
					return nil
				}
			}
			h := isHard(v)
			hard[v-lo] = h
			if h {
				dirty = append(dirty, v)
			}
		}
		hr.Scanned += len(cand)
		return dirty
	}

	dirty := scan()
	if !contained {
		return abort()
	}
	hr.Hard = len(dirty)
	var next []int
	for len(dirty) > 0 && hr.Rounds < budget {
		hr.Rounds++
		var eligible []int
		for _, v := range dirty {
			okv := true
			for _, u := range topo.Neighbors(v) {
				if hard[u-lo] && u > v {
					okv = false
					break
				}
			}
			if okv {
				eligible = append(eligible, v)
			}
		}
		next = next[:0]
		for _, v := range dirty {
			if !mark[v-lo] {
				mark[v-lo] = true
				next = append(next, v)
			}
		}
		for _, v := range eligible {
			if recolor(v) {
				hr.Fallbacks++
			}
			hr.Recolored++
			d := topo.Degree(v)
			hr.Messages += d
			hr.Bits += d * colorBits
			for _, u := range topo.Neighbors(v) {
				if !mark[u-lo] {
					mark[u-lo] = true
					next = append(next, u)
				}
			}
		}
		cand = append(cand[:0], next...)
		for _, v := range cand {
			mark[v-lo] = false
		}
		sort.Ints(cand)
		dirty = scan()
		if !contained {
			return abort()
		}
	}
	hr.Converged = len(dirty) == 0
	return hr, undo, true
}

// MergeRegionReports folds per-region heal reports into the report
// the single global seeded run would have produced: additive fields
// sum, Rounds is the max, and the run converged iff every region did.
func MergeRegionReports(reports []HealReport) HealReport {
	var out HealReport
	out.Converged = true
	for _, r := range reports {
		out.Hard += r.Hard
		out.Recolored += r.Recolored
		out.Fallbacks += r.Fallbacks
		out.Scanned += r.Scanned
		out.Messages += r.Messages
		out.Bits += r.Bits
		if r.Rounds > out.Rounds {
			out.Rounds = r.Rounds
		}
		out.Converged = out.Converged && r.Converged
	}
	return out
}
