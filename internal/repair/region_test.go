package repair

import (
	"math/rand"
	"reflect"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

// regionInstance gives every node the full palette with budget 1.
func regionInstance(n, space int) *coloring.Instance {
	full := make([]int, space)
	for i := range full {
		full[i] = i
	}
	ones := make([]int, space)
	for i := range ones {
		ones[i] = 1
	}
	inst := &coloring.Instance{Space: space, Lists: make([][]int, n), Defects: make([][]int, n)}
	for v := 0; v < n; v++ {
		inst.Lists[v] = full
		inst.Defects[v] = ones
	}
	return inst
}

// TestHealRegionMatchesLocal is the exact-decomposition contract the
// sharded service write path rests on: when every region's repair
// frontier stays contained, running HealRegion per region over
// disjoint seed partitions produces byte-identical colors to one
// global HealLocal over the union, and the reports merge as Σ /
// max(Rounds) / ∧(Converged).
func TestHealRegionMatchesLocal(t *testing.T) {
	const n, space = 240, 6
	base := graph.StreamedRing(n)
	inst := regionInstance(n, space)
	rng := rand.New(rand.NewSource(5))

	for trial := 0; trial < 50; trial++ {
		colors := make([]int, n)
		for v := range colors {
			colors[v] = rng.Intn(space)
		}
		// Damage two interior pockets, far from the region boundary at
		// n/2 so the frontiers stay contained.
		var seeds []int
		for i := 0; i < 6; i++ {
			seeds = append(seeds, 40+rng.Intn(30), n/2+40+rng.Intn(30))
		}

		globalColors := append([]int(nil), colors...)
		want := HealLocal(graph.NewTopoView(base), inst, globalColors, seeds, HealOptions{})

		var loSeeds, hiSeeds []int
		for _, v := range seeds {
			if v < n/2 {
				loSeeds = append(loSeeds, v)
			} else {
				hiSeeds = append(hiSeeds, v)
			}
		}
		topo := graph.NewTopoView(base)
		r1, undo1, ok1 := HealRegion(topo, inst, colors, loSeeds, 0, n/2, 0)
		if !ok1 {
			t.Fatalf("trial %d: lo region aborted", trial)
		}
		r2, _, ok2 := HealRegion(topo, inst, colors, hiSeeds, n/2, n, 0)
		if !ok2 {
			t.Fatalf("trial %d: hi region aborted", trial)
		}
		if !reflect.DeepEqual(colors, globalColors) {
			t.Fatalf("trial %d: regional colors diverge from global", trial)
		}
		got := MergeRegionReports([]HealReport{r1, r2})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged report %+v, want %+v", trial, got, want)
		}
		// The undo log must rebuild the pre-repair state exactly: roll
		// region 1 back and re-run it — same report, same colors.
		rerun := append([]int(nil), colors...)
		Rollback(rerun, undo1)
		r1b, _, okb := HealRegion(topo, inst, rerun, loSeeds, 0, n/2, 0)
		if !okb || !reflect.DeepEqual(r1b, r1) || !reflect.DeepEqual(rerun, colors) {
			t.Fatalf("trial %d: rollback+rerun diverged (ok=%v)", trial, okb)
		}
	}
}

// TestHealRegionAbortRestores pins the abort path: a seed whose
// neighborhood crosses the region boundary aborts the run with colors
// restored bit-exact, so the caller's global fallback starts from the
// pristine pre-repair state.
func TestHealRegionAbortRestores(t *testing.T) {
	const n, space = 64, 4
	base := graph.StreamedRing(n)
	inst := regionInstance(n, space)
	colors := make([]int, n)
	for v := range colors {
		colors[v] = v % 2 // heavy conflicts: every node hard
	}
	before := append([]int(nil), colors...)

	// Region [0, 32): seeding near the boundary guarantees the scan
	// meets a candidate with a neighbor at 32 (or n-1 wrapping), so
	// the run must abort — after possibly recoloring interior nodes
	// first.
	_, undo, ok := HealRegion(base, inst, colors, []int{28, 29, 30, 31}, 0, 32, 0)
	if ok {
		t.Fatal("expected abort: frontier must escape [0,32) on a ring")
	}
	if undo != nil {
		t.Fatalf("abort returned a %d-entry undo log, want nil", len(undo))
	}
	if !reflect.DeepEqual(colors, before) {
		t.Fatal("abort did not restore colors")
	}
}

// TestHealRegionSeedValidation pins the guard rails: out-of-range
// seeds and malformed bounds abort without touching colors.
func TestHealRegionSeedValidation(t *testing.T) {
	const n, space = 20, 4
	base := graph.StreamedRing(n)
	inst := regionInstance(n, space)
	colors := make([]int, n)
	before := append([]int(nil), colors...)

	if _, _, ok := HealRegion(base, inst, colors, []int{15}, 0, 10, 0); ok {
		t.Fatal("seed outside [lo,hi) accepted")
	}
	if _, _, ok := HealRegion(base, inst, colors, []int{5}, 10, 5, 0); ok {
		t.Fatal("inverted bounds accepted")
	}
	if _, _, ok := HealRegion(base, inst, colors, nil, 0, n+5, 0); ok {
		t.Fatal("hi > n accepted")
	}
	if !reflect.DeepEqual(colors, before) {
		t.Fatal("validation failures mutated colors")
	}
}

// TestRollbackOrder pins reverse application: multiple recolors of
// the same vertex unwind newest-first, restoring the oldest value.
func TestRollbackOrder(t *testing.T) {
	colors := []int{9, 9, 9}
	undo := []Recolor{{V: 1, Old: 3}, {V: 1, Old: 5}, {V: 2, Old: 7}}
	Rollback(colors, undo)
	if colors[1] != 3 || colors[2] != 7 || colors[0] != 9 {
		t.Fatalf("rollback produced %v", colors)
	}
}
