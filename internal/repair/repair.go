// Package repair is the self-healing layer over the fault adversary:
// it runs any solver under an adversary.Plan, classifies the damage in
// the output coloring into conflicts *absorbed by the defect budget*
// (a node with defect d_v(x) tolerates up to d_v(x) same-colored
// conflicts — the slack Theorems 1.1–1.3 leave on the table, used here
// as a fault-tolerance resource) versus *hard conflicts* (budget
// exceeded, or a color outside the node's list), and drives bounded
// local repair rounds in which conflicted nodes re-enter with their
// residual lists — the same greedy structure as the paper's two-sweep
// final phase — until the coloring validates or the round budget is
// exhausted.
//
// Every step is deterministic: the repair schedule depends only on
// (graph, instance, damaged coloring). Each repair round is
// realizable in O(1) CONGEST rounds — conflicted nodes learn their
// neighbors' colors and dirty status from the previous round's
// broadcasts, an independent set of them recolors locally, and each
// recoloring node broadcasts its new color (deg(v) messages of
// ⌈log C⌉ bits, which Report bills as RepairMessages/RepairBits).
// The package executes that schedule directly as a round-structured
// local algorithm rather than through the simulator, so repair cost
// accounting never mixes with the faulted solve's own statistics.
//
// Termination: under an acyclic orientation a dirty node with no
// dirty out-neighbor recolors against stabilized out-neighbors, so
// nodes settle in reverse topological order (≤ longest-path rounds);
// in the undirected d=0 case a recoloring node always finds a free
// color (deg+1 lists) and never creates new conflicts, so the dirty
// set strictly shrinks. DefaultBudget = 2n+16 covers both with slack;
// instances whose lists carry the paper's pigeonhole slack
// (Σ_x (d_v(x)+1) > β_v) always admit a repair color regardless of
// neighbor behavior.
package repair

import (
	"fmt"

	"listcolor/internal/adversary"
	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/quality"
	"listcolor/internal/sim"
)

// Target is a solver wired for faulted execution: the topology, the
// instance whose defect budgets absorb damage, and the solve closure.
type Target struct {
	// Name labels the target in reports and experiment rows.
	Name string
	G    *graph.Graph
	// D, when non-nil, switches to OLDC semantics: conflicts are
	// counted over out-neighbors and validated with ValidateOLDC.
	// When nil, conflicts cover the full neighborhood
	// (ValidateListDefective).
	D    *graph.Digraph
	Inst *coloring.Instance
	// Solve runs the solver under cfg (which carries the compiled
	// fault hooks). A nil Solve, an error, or a wrong-length coloring
	// falls back to the deterministic baseline coloring
	// (every node takes the first color of its list) — the repair
	// layer then recovers from that, too.
	Solve func(cfg sim.Config) ([]int, sim.Result, error)
}

// Options bounds the faulted solve and the repair loop.
type Options struct {
	// Base is the solve configuration the plan's fault hooks are
	// installed into — bandwidth caps, tracing, an OnRound hook all
	// pass through to the faulted run. The zero Base is the plain
	// LOCAL lockstep configuration.
	Base sim.Config
	// Driver for the solve run; overrides Base.Driver when non-zero
	// (Lockstep is the zero driver, so an explicit Base.Driver wins
	// only over an unset field here).
	Driver sim.Driver
	// MaxRounds caps the faulted solve (crash-stalled protocols hit
	// it deterministically); overrides Base.MaxRounds when non-zero.
	// 0 in both means sim.DefaultMaxRounds.
	MaxRounds int
	// RoundBudget caps repair rounds; 0 means DefaultBudget(n).
	RoundBudget int
}

// DefaultBudget is the documented repair round budget: 2n+16 covers
// the reverse-topological settling bound of acyclic orientations and
// the strictly-shrinking dirty set of the proper (d=0) case, with
// headroom.
func DefaultBudget(n int) int { return 2*n + 16 }

// Classification splits a damaged coloring's conflicts by whether the
// defect budget absorbs them.
type Classification struct {
	// Hard is the number of nodes in hard violation: defect budget
	// exceeded or color outside the list.
	Hard int
	// HardExcess is the total conflict count beyond the budgets
	// (summed over hard nodes with a list color).
	HardExcess int
	// Absorbed is the total conflict count the budgets absorb — for
	// each node, min(conflicts, allowed defect).
	Absorbed int
	// Uncolored is the number of nodes whose color is outside their
	// list (crash-stopped mid-protocol, or fault-poisoned); always
	// hard.
	Uncolored int
}

// Report is the outcome of one faulted run plus repair.
type Report struct {
	// Before/After classify the coloring at solver exit and after
	// repair.
	Before, After Classification
	// RecoveryRounds is the number of repair rounds driven (0 when
	// the faulted output already validated).
	RecoveryRounds int
	// AbsorbedConflicts is the post-repair absorbed conflict total —
	// the defect slack actively soaking up fault damage.
	AbsorbedConflicts int
	// ResidualDefect is the worst per-node conflict count remaining
	// after repair (≤ that node's budget whenever Converged).
	ResidualDefect int
	// Converged reports that the final coloring passes the matching
	// coloring validator.
	Converged bool
	// Colors is the final (repaired) coloring.
	Colors []int
	// SolveStats/SolveErr record the faulted solver run. SolveErr is
	// data, not a failure: a crash-stalled run surfaces
	// sim.ErrRoundLimit here and repair proceeds from the fallback.
	SolveStats sim.Result
	SolveErr   error
	// UsedFallback reports that the solver produced no usable
	// coloring and repair started from the first-list-color baseline.
	UsedFallback bool
	// RepairMessages/RepairBits bill the repair layer's own
	// communication: every recoloring broadcasts deg(v) messages of
	// BitsFor(Space) bits.
	RepairMessages, RepairBits int
	// Quality is the post-repair quality report (nil unless
	// converged).
	Quality *quality.Report
}

// Run executes the target under the plan and repairs the result.
// The returned error covers structural problems only (nil topology,
// broken instance); fault damage is reported, never returned.
func Run(t Target, plan adversary.Plan, opt Options) (Report, error) {
	if t.G == nil || t.Inst == nil {
		return Report{}, fmt.Errorf("repair: target needs G and Inst")
	}
	if err := plan.Validate(); err != nil {
		return Report{}, err
	}
	n := t.G.N()
	if t.Inst.N() != n {
		return Report{}, fmt.Errorf("repair: instance covers %d nodes, graph has %d", t.Inst.N(), n)
	}
	var rep Report
	base := opt.Base
	if opt.Driver != 0 {
		base.Driver = opt.Driver
	}
	if opt.MaxRounds != 0 {
		base.MaxRounds = opt.MaxRounds
	}
	cfg := plan.Apply(base)
	var colors []int
	if t.Solve != nil {
		colors, rep.SolveStats, rep.SolveErr = t.Solve(cfg)
	}
	if len(colors) != n {
		// No usable output (solver errored out, crashed wholesale, or
		// no Solve given): start from the deterministic baseline and
		// let repair do all the work.
		rep.UsedFallback = true
		colors = make([]int, n)
		for v := 0; v < n; v++ {
			if len(t.Inst.Lists[v]) > 0 {
				colors[v] = t.Inst.Lists[v][0]
			}
		}
	} else {
		colors = append([]int(nil), colors...) // never mutate the solver's slice
	}
	rep.Before = Classify(t, colors)

	budget := opt.RoundBudget
	if budget == 0 {
		budget = DefaultBudget(n)
	}
	rep.RecoveryRounds = t.repairLoop(colors, budget, &rep)

	rep.After = Classify(t, colors)
	rep.AbsorbedConflicts = rep.After.Absorbed
	for v := 0; v < n; v++ {
		if c := t.conflicts(colors, v); c > rep.ResidualDefect {
			rep.ResidualDefect = c
		}
	}
	rep.Colors = colors
	rep.Converged = t.validate(colors) == nil
	if rep.Converged {
		if q, err := quality.Analyze(t.G, t.Inst, colors); err == nil {
			rep.Quality = &q
		}
	}
	return rep, nil
}

// validate applies the matching coloring validator.
func (t Target) validate(colors []int) error {
	if t.D != nil {
		return coloring.ValidateOLDC(t.D, t.Inst, colors)
	}
	return coloring.ValidateListDefective(t.G, t.Inst, colors)
}

// conflicts counts v's same-colored conflict neighbors under the
// target's semantics.
func (t Target) conflicts(colors []int, v int) int {
	c := 0
	if t.D != nil {
		for _, u := range t.D.Out(v) {
			if colors[u] == colors[v] {
				c++
			}
		}
		return c
	}
	for _, u := range t.G.Neighbors(v) {
		if colors[u] == colors[v] {
			c++
		}
	}
	return c
}

// hard reports whether v is in hard violation.
func (t Target) hard(colors []int, v int) bool {
	allowed, ok := t.Inst.DefectOf(v, colors[v])
	if !ok {
		return true
	}
	return t.conflicts(colors, v) > allowed
}

// Classify splits the coloring's conflicts into absorbed vs hard.
func Classify(t Target, colors []int) Classification {
	var cl Classification
	for v := range colors {
		allowed, ok := t.Inst.DefectOf(v, colors[v])
		if !ok {
			cl.Uncolored++
			cl.Hard++
			continue
		}
		conf := t.conflicts(colors, v)
		if conf > allowed {
			cl.Hard++
			cl.HardExcess += conf - allowed
			cl.Absorbed += allowed
		} else {
			cl.Absorbed += conf
		}
	}
	return cl
}

// repairLoop drives repair rounds until clean or out of budget,
// mutating colors in place; returns the rounds driven and bills the
// recoloring broadcasts into rep. The undirected case delegates to the
// shared Topology heal core (heal.go) — Heal with every vertex seeded
// runs the identical full-scan schedule, so the delegation is
// byte-for-byte behavior-preserving (TestHealMatchesReferenceLoop);
// the oriented case keeps its sink-first schedule here.
func (t Target) repairLoop(colors []int, budget int, rep *Report) int {
	if t.D == nil {
		hr := Heal(t.G, t.Inst, colors, HealOptions{RoundBudget: budget})
		rep.RepairMessages += hr.Messages
		rep.RepairBits += hr.Bits
		return hr.Rounds
	}
	n := t.G.N()
	dirty := make([]bool, n)
	var dirtyIDs []int
	rescan := func() {
		dirtyIDs = dirtyIDs[:0]
		for v := 0; v < n; v++ {
			dirty[v] = t.hard(colors, v)
			if dirty[v] {
				dirtyIDs = append(dirtyIDs, v)
			}
		}
	}
	rescan()
	colorBits := sim.BitsFor(t.Inst.Space)
	rounds := 0
	for len(dirtyIDs) > 0 && rounds < budget {
		rounds++
		eligible := t.eligible(dirty, dirtyIDs)
		for _, v := range eligible {
			t.recolor(colors, v)
			rep.RepairMessages += t.G.Degree(v)
			rep.RepairBits += t.G.Degree(v) * colorBits
		}
		rescan()
	}
	return rounds
}

// eligible picks the independent set of dirty nodes that recolors
// this round on the oriented path (the undirected path lives in
// heal.go): dirty nodes with no dirty out-neighbor — the sink-most
// layer of the dirty sub-DAG, so nodes settle in reverse topological
// order (every edge is oriented, hence the set is independent).
// Cyclic orientations can starve the rule; the smallest dirty id then
// recolors alone so the loop always makes progress within its budget.
func (t Target) eligible(dirty []bool, dirtyIDs []int) []int {
	var out []int
	for _, v := range dirtyIDs {
		ok := true
		for _, u := range t.D.Out(v) {
			if dirty[u] {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		out = append(out, dirtyIDs[0])
	}
	return out
}

// recolor re-enters v with its residual list: among the list colors,
// pick the one minimizing (excess over budget, conflicts, color) —
// i.e. a budget-respecting color when one exists (guaranteed under
// the paper's pigeonhole slack Σ(d+1) > β_v), otherwise the least
// overdrawn one.
func (t Target) recolor(colors []int, v int) {
	list := t.Inst.Lists[v]
	if len(list) == 0 {
		return
	}
	defects := t.Inst.Defects[v]
	bestX, bestExcess, bestConf := list[0], int(^uint(0)>>1), int(^uint(0)>>1)
	for i, x := range list {
		colors[v] = x
		conf := t.conflicts(colors, v)
		excess := conf - defects[i]
		if excess < 0 {
			excess = 0
		}
		if excess < bestExcess || (excess == bestExcess && conf < bestConf) {
			bestX, bestExcess, bestConf = x, excess, conf
		}
	}
	colors[v] = bestX
}
