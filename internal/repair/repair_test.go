package repair

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"listcolor/internal/adversary"
	"listcolor/internal/baseline"
	"listcolor/internal/coloring"
	"listcolor/internal/graph"
	"listcolor/internal/sim"
)

// lubyTarget wires baseline.Luby to a DegreePlusOne instance: the
// solver outputs a proper coloring with colors in [0, Δ+1), which is
// then mapped into each node's list by index — but Luby colors are not
// list colors, so for repair tests we instead use the fallback path or
// synthetic solvers. This helper builds the topology + instance only.
func degPlusOneTarget(t *testing.T, n int, p float64, seed int64) Target {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.GNP(n, p, rng)
	inst := coloring.DegreePlusOne(g, g.RawMaxDegree()+1+4, rng)
	return Target{Name: "deg+1", G: g, Inst: inst}
}

func TestRepairFromFallbackConverges(t *testing.T) {
	// No solver at all: every node starts on its first list color (a
	// heavily conflicted coloring) and repair alone must reach a valid
	// proper list coloring within the default budget.
	tgt := degPlusOneTarget(t, 60, 0.15, 1)
	rep, err := Run(tgt, adversary.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.UsedFallback {
		t.Error("expected the fallback start without a solver")
	}
	if !rep.Converged {
		t.Fatalf("repair did not converge: after = %+v, rounds = %d", rep.After, rep.RecoveryRounds)
	}
	if rep.After.Hard != 0 || rep.After.Uncolored != 0 {
		t.Errorf("converged but After = %+v", rep.After)
	}
	if rep.ResidualDefect != 0 {
		t.Errorf("proper instance converged with residual defect %d", rep.ResidualDefect)
	}
	if rep.RecoveryRounds < 1 || rep.RecoveryRounds > DefaultBudget(tgt.G.N()) {
		t.Errorf("RecoveryRounds = %d outside (0, %d]", rep.RecoveryRounds, DefaultBudget(tgt.G.N()))
	}
	if rep.Before.Hard <= rep.After.Hard {
		t.Errorf("no measured improvement: before %+v, after %+v", rep.Before, rep.After)
	}
	if rep.Quality == nil {
		t.Error("converged run missing quality report")
	}
	if rep.RepairMessages == 0 || rep.RepairBits == 0 {
		t.Error("recoloring broadcasts not billed")
	}
}

func TestRepairValidSolverOutputUntouched(t *testing.T) {
	// A solver that already returns a valid coloring: zero recovery
	// rounds, zero repair traffic, colors passed through.
	g := graph.Ring(6)
	inst := &coloring.Instance{Space: 2,
		Lists:   [][]int{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}},
		Defects: [][]int{{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}},
	}
	want := []int{0, 1, 0, 1, 0, 1}
	tgt := Target{G: g, Inst: inst, Solve: func(cfg sim.Config) ([]int, sim.Result, error) {
		return want, sim.Result{Rounds: 3}, nil
	}}
	rep, err := Run(tgt, adversary.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecoveryRounds != 0 || rep.RepairMessages != 0 {
		t.Errorf("valid output still repaired: rounds=%d msgs=%d", rep.RecoveryRounds, rep.RepairMessages)
	}
	if !rep.Converged || !reflect.DeepEqual(rep.Colors, want) {
		t.Errorf("colors = %v, converged = %v", rep.Colors, rep.Converged)
	}
	if rep.SolveStats.Rounds != 3 {
		t.Errorf("solver stats not propagated: %+v", rep.SolveStats)
	}
}

func TestRepairRecoversFromCrashedSolve(t *testing.T) {
	// A real solver under a crash plan: Luby stalls into ErrRoundLimit,
	// repair starts from whatever survives and must still converge.
	rng := rand.New(rand.NewSource(4))
	g := graph.GNP(40, 0.2, rng)
	inst := coloring.DegreePlusOne(g, g.RawMaxDegree()+8, rng)
	plan := adversary.UniformCrash(g, 31, 0.15, 2, 2)
	solveCalls := 0
	tgt := Target{
		Name: "luby", G: g, Inst: inst,
		Solve: func(cfg sim.Config) ([]int, sim.Result, error) {
			solveCalls++
			// Luby's colors are MIS layer indices — map them into the
			// node's list so damage is list-relative.
			colors, res, err := baseline.Luby(g, 7, cfg)
			if err != nil {
				return nil, res, err
			}
			out := make([]int, len(colors))
			for v, c := range colors {
				l := inst.Lists[v]
				out[v] = l[c%len(l)]
			}
			return out, res, err
		},
	}
	rep, err := Run(tgt, plan, Options{MaxRounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	if solveCalls != 1 {
		t.Fatalf("solver ran %d times", solveCalls)
	}
	if !rep.Converged {
		t.Fatalf("no convergence after crash faults: after = %+v", rep.After)
	}
	if rep.RecoveryRounds > DefaultBudget(g.N()) {
		t.Errorf("RecoveryRounds %d over budget", rep.RecoveryRounds)
	}
	if err := coloring.ValidateListDefective(g, inst, rep.Colors); err != nil {
		t.Errorf("reported convergence but validator says: %v", err)
	}
}

func TestRepairOrientedSinkFirst(t *testing.T) {
	// OLDC semantics on an id-oriented path: start all-same-color; the
	// dirty sub-DAG must settle sink-first and converge.
	g := graph.Path(8)
	d := graph.OrientByID(g)
	inst := &coloring.Instance{Space: 2, Lists: make([][]int, 8), Defects: make([][]int, 8)}
	for v := 0; v < 8; v++ {
		inst.Lists[v] = []int{0, 1}
		inst.Defects[v] = []int{0, 0}
	}
	damaged := make([]int, 8) // all color 0
	tgt := Target{G: g, D: d, Inst: inst, Solve: func(cfg sim.Config) ([]int, sim.Result, error) {
		return damaged, sim.Result{}, nil
	}}
	rep, err := Run(tgt, adversary.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("oriented repair failed: %+v", rep.After)
	}
	if err := coloring.ValidateOLDC(d, inst, rep.Colors); err != nil {
		t.Errorf("OLDC validator: %v", err)
	}
	// An id-oriented path has longest path ≤ n; well under budget.
	if rep.RecoveryRounds > 8 {
		t.Errorf("sink-first repair took %d rounds on an 8-path", rep.RecoveryRounds)
	}
}

func TestClassifyAbsorbedVsHard(t *testing.T) {
	// Triangle, everyone color 0. Defect budgets: node 0 absorbs 2,
	// node 1 absorbs 1 (hard by 1), node 2 absorbs 0 (hard by 2).
	g := graph.Complete(3)
	inst := &coloring.Instance{Space: 3,
		Lists:   [][]int{{0}, {0}, {0}},
		Defects: [][]int{{2}, {1}, {0}},
	}
	cl := Classify(Target{G: g, Inst: inst}, []int{0, 0, 0})
	want := Classification{Hard: 2, HardExcess: 1 + 2, Absorbed: 2 + 1 + 0, Uncolored: 0}
	if cl != want {
		t.Errorf("Classify = %+v, want %+v", cl, want)
	}
	// A color outside the list is uncolored and hard.
	cl2 := Classify(Target{G: g, Inst: inst}, []int{0, 0, 2})
	if cl2.Uncolored != 1 || cl2.Hard < 1 {
		t.Errorf("off-list color: %+v", cl2)
	}
}

func TestRepairAbsorbedConflictsReported(t *testing.T) {
	// A triangle whose budgets absorb one monochromatic edge: the
	// final coloring can keep a conflict and must report it absorbed.
	g := graph.Complete(3)
	inst := &coloring.Instance{Space: 2,
		Lists:   [][]int{{0, 1}, {0, 1}, {0, 1}},
		Defects: [][]int{{1, 1}, {1, 1}, {1, 1}},
	}
	tgt := Target{G: g, Inst: inst}
	rep, err := Run(tgt, adversary.Plan{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("triangle with defect-1 budgets must converge: %+v", rep.After)
	}
	// 3 nodes, 2 colors: some edge is monochromatic, so the absorbed
	// count is ≥ 2 (both endpoints) and residual defect is 1.
	if rep.AbsorbedConflicts < 2 {
		t.Errorf("AbsorbedConflicts = %d, want ≥ 2", rep.AbsorbedConflicts)
	}
	if rep.ResidualDefect != 1 {
		t.Errorf("ResidualDefect = %d, want 1", rep.ResidualDefect)
	}
}

func TestRepairBudgetExhaustion(t *testing.T) {
	// Unsatisfiable: a triangle with single-color lists and zero
	// defect. Repair must stop at the budget, not spin.
	g := graph.Complete(3)
	inst := &coloring.Instance{Space: 1,
		Lists:   [][]int{{0}, {0}, {0}},
		Defects: [][]int{{0}, {0}, {0}},
	}
	rep, err := Run(Target{G: g, Inst: inst}, adversary.Plan{}, Options{RoundBudget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Converged {
		t.Fatal("unsatisfiable instance reported converged")
	}
	if rep.RecoveryRounds != 5 {
		t.Errorf("RecoveryRounds = %d, want the full budget 5", rep.RecoveryRounds)
	}
	if rep.After.Hard == 0 {
		t.Errorf("After = %+v, want hard violations", rep.After)
	}
}

func TestRunStructuralErrors(t *testing.T) {
	g := graph.Ring(4)
	inst := coloring.DegreePlusOne(g, 8, rand.New(rand.NewSource(1)))
	if _, err := Run(Target{Inst: inst}, adversary.Plan{}, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(Target{G: g}, adversary.Plan{}, Options{}); err == nil {
		t.Error("nil instance accepted")
	}
	small := coloring.DegreePlusOne(graph.Ring(3), 8, rand.New(rand.NewSource(1)))
	if _, err := Run(Target{G: g, Inst: small}, adversary.Plan{}, Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
	bad := adversary.Plan{Events: []adversary.Event{{Kind: "meteor", Start: 1}}}
	if _, err := Run(Target{G: g, Inst: inst}, bad, Options{}); err == nil {
		t.Error("invalid plan accepted")
	}
}

// TestRepairDeterministicUnderConcurrency is the race-job test: many
// concurrent Run calls on the same shared (read-only) target must be
// data-race free and produce identical reports.
func TestRepairDeterministicUnderConcurrency(t *testing.T) {
	tgt := degPlusOneTarget(t, 30, 0.2, 9)
	plan := adversary.Merge(
		adversary.UniformCrash(tgt.G, 17, 0.1, 2, 1),
		adversary.UniformCorrupt(17, 0.2, 1, 0),
	)
	tgt.Solve = func(cfg sim.Config) ([]int, sim.Result, error) {
		colors, res, err := baseline.Luby(tgt.G, 3, cfg)
		if err != nil {
			return nil, res, err
		}
		out := make([]int, len(colors))
		for v, c := range colors {
			l := tgt.Inst.Lists[v]
			out[v] = l[c%len(l)]
		}
		return out, res, nil
	}
	const workers = 8
	reports := make([]Report, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := Run(tgt, plan, Options{MaxRounds: 150, Driver: sim.Driver(i%3 + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		a, b := reports[0], reports[i]
		// Error values may differ in identity; compare text.
		aErr, bErr := "", ""
		if a.SolveErr != nil {
			aErr = a.SolveErr.Error()
		}
		if b.SolveErr != nil {
			bErr = b.SolveErr.Error()
		}
		a.SolveErr, b.SolveErr = nil, nil
		if aErr != bErr || !reflect.DeepEqual(a, b) {
			t.Fatalf("concurrent run %d diverged:\n%+v\nvs\n%+v", i, reports[0], b)
		}
	}
}
