// admission.go is the overload valve in front of the single writer: a
// bounded ingest queue that turns "too much traffic" into fast, typed
// 503s instead of unbounded memory growth and collapse. The paper's
// algorithms survive bounded damage; the service survives bounded
// overload the same way — excess load is shed at the door with a
// Retry-After, reads keep serving the last published snapshot, and a
// graceful drain empties the queue before shutdown.
package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is the admission rejection: the bounded ingest queue is
// at capacity. HTTP maps it to 503 + Retry-After.
var ErrQueueFull = errors.New("service: ingest queue full")

// ErrDraining rejects writes submitted after a graceful drain began.
var ErrDraining = errors.New("service: draining")

// Health is the liveness/readiness state machine surfaced at /readyz:
// recovering (WAL replay in progress, reads degraded to the checkpoint
// snapshot) → ready → draining (shutdown in progress).
type Health struct {
	state atomic.Int32
}

// Health states, in lifecycle order.
const (
	HealthRecovering int32 = iota
	HealthReady
	HealthDraining
)

func (h *Health) SetRecovering() { h.state.Store(HealthRecovering) }
func (h *Health) SetReady()      { h.state.Store(HealthReady) }
func (h *Health) SetDraining()   { h.state.Store(HealthDraining) }

// State returns the current lifecycle state.
func (h *Health) State() int32 { return h.state.Load() }

// String renders the state for /readyz bodies and logs.
func (h *Health) String() string {
	switch h.state.Load() {
	case HealthRecovering:
		return "recovering"
	case HealthDraining:
		return "draining"
	}
	return "ready"
}

// IngestStats is the admission section of /v1/stats.
type IngestStats struct {
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Accepted      int64 `json:"accepted"`
	RejectedFull  int64 `json:"rejected_full"`
	Expired       int64 `json:"expired"`
	Draining      bool  `json:"draining"`
}

type ingestResult struct {
	rep BatchReport
	err error
}

type ingestItem struct {
	ctx   context.Context
	ops   []Op
	reply chan ingestResult
}

// Ingest is the bounded admission queue: submissions either enter the
// queue immediately or are rejected with ErrQueueFull — a full queue
// never blocks the HTTP handler. One worker goroutine dequeues in
// order and feeds the single writer, preserving the service's
// sequential batch semantics exactly.
type Ingest struct {
	apply func([]Op) (BatchReport, error)
	queue chan ingestItem

	depth    atomic.Int64 // queued + in-flight items
	accepted atomic.Int64
	rejected atomic.Int64
	expired  atomic.Int64
	draining atomic.Bool

	// mu fences Submit's channel send against Drain's close: senders
	// hold it shared, the close holds it exclusively.
	mu   sync.RWMutex
	done chan struct{}
}

// NewIngest starts the admission queue in front of apply (usually
// Durable.ApplyBatch or Service.ApplyBatch). capacity ≤ 0 means 64.
func NewIngest(apply func([]Op) (BatchReport, error), capacity int) *Ingest {
	if capacity <= 0 {
		capacity = 64
	}
	in := &Ingest{
		apply: apply,
		queue: make(chan ingestItem, capacity),
		done:  make(chan struct{}),
	}
	go in.worker()
	return in
}

func (in *Ingest) worker() {
	defer close(in.done)
	for item := range in.queue {
		// A request whose deadline passed while it sat in the queue is
		// skipped, not applied: the client has already given up, and
		// applying it anyway would surprise a retry.
		if item.ctx != nil && item.ctx.Err() != nil {
			in.expired.Add(1)
			item.reply <- ingestResult{err: item.ctx.Err()}
			in.depth.Add(-1)
			continue
		}
		rep, err := in.apply(item.ops)
		item.reply <- ingestResult{rep: rep, err: err}
		in.depth.Add(-1)
	}
}

// Submit enqueues a batch and waits for its result. A full queue
// fails fast with ErrQueueFull; after Drain begins, ErrDraining. The
// context governs queue wait: expiry before dequeue returns ctx.Err()
// without applying.
func (in *Ingest) Submit(ctx context.Context, ops []Op) (BatchReport, error) {
	item := ingestItem{ctx: ctx, ops: ops, reply: make(chan ingestResult, 1)}
	in.mu.RLock()
	if in.draining.Load() {
		in.mu.RUnlock()
		return BatchReport{}, ErrDraining
	}
	in.depth.Add(1)
	select {
	case in.queue <- item:
		in.mu.RUnlock()
	default:
		in.mu.RUnlock()
		in.depth.Add(-1)
		in.rejected.Add(1)
		return BatchReport{}, ErrQueueFull
	}
	in.accepted.Add(1)
	// The worker always replies — even for expired items — so this
	// wait is bounded by the queue ahead of us.
	res := <-item.reply
	return res.rep, res.err
}

// Saturated reports a full queue — the /readyz "shedding load" signal.
func (in *Ingest) Saturated() bool {
	return int(in.depth.Load()) >= cap(in.queue)
}

// Drain stops admission and waits until every already-accepted batch
// has been applied (or ctx expires). After Drain the queue is closed;
// further Submits fail with ErrDraining.
func (in *Ingest) Drain(ctx context.Context) error {
	in.mu.Lock()
	if !in.draining.Swap(true) {
		// The exclusive lock waits out every in-flight Submit send, so
		// the close cannot race a send; the worker loop ends after the
		// already-accepted items apply.
		close(in.queue)
	}
	in.mu.Unlock()
	select {
	case <-in.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns the admission counters, lock-free.
func (in *Ingest) Stats() IngestStats {
	return IngestStats{
		QueueDepth:    int(in.depth.Load()),
		QueueCapacity: cap(in.queue),
		Accepted:      in.accepted.Load(),
		RejectedFull:  in.rejected.Load(),
		Expired:       in.expired.Load(),
		Draining:      in.draining.Load(),
	}
}
