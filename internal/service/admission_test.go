package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"listcolor/internal/graph"
)

func TestIngestAppliesInOrder(t *testing.T) {
	s := mustService(t, graph.StreamedRing(32), slackInstance(graph.StreamedRing(32)), Options{})
	in := NewIngest(s.ApplyBatch, 8)
	for i := 0; i < 20; i++ {
		u := i % 32
		v := (u + 5) % 32
		rep, err := in.Submit(context.Background(), []Op{{Action: OpAddEdge, U: u, V: v}})
		if err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("submit %d: %v", i, err)
		}
		if err == nil && rep.Version != uint64(i+1) {
			t.Fatalf("submit %d applied at version %d", i, rep.Version)
		}
	}
	if err := in.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := in.Submit(context.Background(), nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v", err)
	}
	st := in.Stats()
	if st.Accepted != 20 || st.QueueDepth != 0 || !st.Draining {
		t.Fatalf("stats: %+v", st)
	}
}

// TestIngestQueueFull: with the worker wedged, capacity+1 concurrent
// submissions fit (capacity queued + one in flight) and the next is
// rejected fast with ErrQueueFull — the handler never blocks.
func TestIngestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	var started sync.WaitGroup
	apply := func(ops []Op) (BatchReport, error) {
		<-gate
		return BatchReport{}, nil
	}
	in := NewIngest(apply, 4)
	// One submission occupies the worker...
	started.Add(5)
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			in.Submit(context.Background(), nil)
		}()
	}
	started.Wait()
	// ...wait until the worker holds one and the queue holds four.
	deadline := time.Now().Add(2 * time.Second)
	for int(in.depth.Load()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", in.depth.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if !in.Saturated() {
		t.Fatal("full queue not reported saturated")
	}
	if _, err := in.Submit(context.Background(), nil); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v", err)
	}
	close(gate)
	wg.Wait()
	if st := in.Stats(); st.RejectedFull != 1 {
		t.Fatalf("stats: %+v", st)
	}
	in.Drain(context.Background())
}

// TestIngestExpiredInQueue: a request whose deadline passes while
// queued is skipped at dequeue, not applied.
func TestIngestExpiredInQueue(t *testing.T) {
	gate := make(chan struct{})
	var applied atomic.Int64
	in := NewIngest(func(ops []Op) (BatchReport, error) {
		<-gate
		applied.Add(1)
		return BatchReport{}, nil
	}, 4)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); in.Submit(context.Background(), nil) }() // wedges the worker
	for in.depth.Load() < 1 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	wg.Add(1)
	var expErr error
	go func() { defer wg.Done(); _, expErr = in.Submit(ctx, nil) }()
	for in.depth.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel() // expires while queued
	close(gate)
	wg.Wait()
	if !errors.Is(expErr, context.Canceled) {
		t.Fatalf("expired submit: %v", expErr)
	}
	if applied.Load() != 1 {
		t.Fatalf("expired batch was applied (%d applies)", applied.Load())
	}
	if st := in.Stats(); st.Expired != 1 {
		t.Fatalf("stats: %+v", st)
	}
	in.Drain(context.Background())
}

// TestConcurrentBackpressureSoak hammers a small queue from many
// goroutines while the writer applies real churn: every submission
// must resolve as applied, rejected-full, or op-rejected — no lost
// replies, no deadlock, and the service stays valid. Runs under the
// race detector in CI (the 'Concurrent' pattern).
func TestConcurrentBackpressureSoak(t *testing.T) {
	base := graph.StreamedRing(64)
	s := mustService(t, base, slackInstance(base), Options{})
	in := NewIngest(s.ApplyBatch, 4)
	script := churnScript(base, 64, 4, 21)
	fillSetLists(script, slackInstance(base).Space)
	var applied, full atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(script); i += 8 {
				_, err := in.Submit(context.Background(), script[i])
				switch {
				case err == nil, errors.Is(err, ErrOp):
					applied.Add(1)
				case errors.Is(err, ErrQueueFull):
					full.Add(1)
				default:
					t.Errorf("submit: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := applied.Load() + full.Load(); got != int64(len(script)) {
		t.Fatalf("lost submissions: %d of %d resolved", got, len(script))
	}
	if err := in.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatalf("state invalid after soak: %v", err)
	}
	t.Logf("soak: %d applied, %d shed", applied.Load(), full.Load())
}

// --- HTTP surface ---

func newOptsServer(t *testing.T, opts HandlerOptions) (*Service, *httptest.Server) {
	t.Helper()
	base := graph.StreamedRing(32)
	s := mustService(t, base, slackInstance(base), Options{})
	srv := httptest.NewServer(NewHandlerWithOptions(s, opts))
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHealthzReadyz(t *testing.T) {
	h := &Health{}
	h.SetRecovering()
	_, srv := newOptsServer(t, HandlerOptions{Health: h})

	get := func(path string) (int, map[string]string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != 200 || body["status"] != "ok" {
		t.Fatalf("healthz while recovering: %d %v", code, body)
	}
	if code, body := get("/readyz"); code != 503 || body["status"] != "recovering" {
		t.Fatalf("readyz while recovering: %d %v", code, body)
	}
	// Writes are refused with Retry-After while not ready.
	resp, err := http.Post(srv.URL+"/v1/updates", "application/json",
		strings.NewReader(`{"ops":[{"action":"add_edge","u":0,"v":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("write while recovering: %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	h.SetReady()
	if code, body := get("/readyz"); code != 200 || body["status"] != "ready" {
		t.Fatalf("readyz when ready: %d %v", code, body)
	}
	h.SetDraining()
	if code, body := get("/readyz"); code != 503 || body["status"] != "draining" {
		t.Fatalf("readyz while draining: %d %v", code, body)
	}
}

func TestUpdateBodyLimit(t *testing.T) {
	_, srv := newOptsServer(t, HandlerOptions{MaxBody: 256})
	big := fmt.Sprintf(`{"ops":[{"action":"set_list","node":1,"list":[%s]}]}`,
		strings.Repeat("1,", 400)+"1")
	resp, err := http.Post(srv.URL+"/v1/updates", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", resp.StatusCode)
	}
	// A body under the limit still works.
	resp, err = http.Post(srv.URL+"/v1/updates", "application/json",
		strings.NewReader(`{"ops":[{"action":"add_edge","u":0,"v":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("small body: %d", resp.StatusCode)
	}
}

func TestUpdatesThroughIngestQueue(t *testing.T) {
	base := graph.StreamedRing(32)
	s := mustService(t, base, slackInstance(base), Options{})
	in := NewIngest(s.ApplyBatch, 8)
	h := &Health{}
	h.SetReady()
	srv := httptest.NewServer(NewHandlerWithOptions(s, HandlerOptions{Ingest: in, Health: h}))
	defer srv.Close()
	defer in.Drain(context.Background())

	var body bytes.Buffer
	json.NewEncoder(&body).Encode(UpdateRequest{Ops: []Op{{Action: OpAddEdge, U: 1, V: 7}}})
	resp, err := http.Post(srv.URL+"/v1/updates", "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	var ur UpdateResponse
	json.NewDecoder(resp.Body).Decode(&ur)
	resp.Body.Close()
	if resp.StatusCode != 200 || ur.Version != 1 {
		t.Fatalf("queued write: %d %+v", resp.StatusCode, ur)
	}
	if !s.HasEdge(1, 7) {
		t.Fatal("edge not applied through the queue")
	}

	// Stats carry the ingest section.
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Ingest *IngestStats `json:"ingest"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if env.Ingest == nil || env.Ingest.Accepted != 1 || env.Ingest.QueueCapacity != 8 {
		t.Fatalf("stats ingest section: %+v", env.Ingest)
	}
}

// TestStatsDurabilitySection: with a Durable wired, /v1/stats gains
// the durability counters.
func TestStatsDurabilitySection(t *testing.T) {
	base := graph.StreamedRing(32)
	d := mustNewDurable(t, base, t.TempDir(), Options{}, DurableOptions{Sync: SyncBatch})
	defer d.Close()
	if _, err := d.ApplyBatch([]Op{{Action: OpAddEdge, U: 2, V: 9}}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandlerWithOptions(d.Service(), HandlerOptions{Durable: d}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Durability *DurabilityStats `json:"durability"`
	}
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if env.Durability == nil || env.Durability.WALRecords != 1 || env.Durability.SyncMode != "batch" {
		t.Fatalf("stats durability section: %+v", env.Durability)
	}
}
