package service

import (
	"sync"
	"testing"

	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

// Race soak for the parallel defect-audit kernel under churn: while a
// writer applies edge batches, readers continuously audit lock-free
// snapshots (Topo + Colors) with a reader-owned instance at several
// worker counts. Every snapshot is post-repair state, so every audit
// must come back valid AND identical across worker counts; the -race
// CI job runs this to prove the range-partitioned scan never touches
// writer state. (The instance is reader-owned because the service may
// mutate its own under the writer lock; audits are read-only over the
// published snapshot.)
func TestAuditParallelSnapshotRaceSoak(t *testing.T) {
	n, space := 600, 8
	s := mustService(t, graph.StreamedRing(n), palInstance(n, space), Options{})
	inst := palInstance(n, space) // reader-owned copy, never mutated

	const batches = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				seq := coloring.Audit(snap.Topo, inst, snap.Colors)
				if !seq.Valid() {
					t.Errorf("snapshot v%d audits invalid: %v", snap.Version, seq.Violation)
					return
				}
				for _, w := range []int{2, 5} {
					par := coloring.AuditParallel(snap.Topo, inst, snap.Colors, w)
					if !coloring.AuditReportsEqual(seq, par) {
						t.Errorf("snapshot v%d: workers=%d report diverges", snap.Version, w)
						return
					}
				}
			}
		}()
	}

	// Writer: toggle chord edges (v, v+2) on and off — degrees stay
	// ≤ 4, well inside the palette, so repair always succeeds.
	for b := 0; b < batches; b++ {
		var ops []Op
		action := OpAddEdge
		if b%2 == 1 {
			action = OpRemoveEdge // remove exactly what the previous batch added
		}
		for v := (b / 2) % 7; v < n-2; v += 7 {
			ops = append(ops, Op{Action: action, U: v, V: v + 2})
		}
		if _, err := s.ApplyBatch(ops); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	close(stop)
	wg.Wait()

	if err := s.ValidateState(); err != nil {
		t.Fatalf("final state invalid: %v", err)
	}
}
