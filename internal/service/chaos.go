// chaos.go executes an adversary.ChaosPlan against the durable
// service: for every seed-derived kill point it runs a deterministic
// churn script up to the kill, applies the point's damage (boundary
// kill, mid-record tear, byte flip, tail truncation), recovers via
// OpenDurable, and checks the recovered state byte-identically against
// an uninterrupted reference run at the recovered version — colors,
// canonical Stats, topology fingerprint, plus a full validity audit —
// then replays the remainder of the script and checks the final state
// too. This is `colord -chaos` and the `make chaos` matrix.
package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"

	"listcolor/internal/adversary"
	"listcolor/internal/coloring"
	"listcolor/internal/graph"
)

// ChaosConfig sizes the chaos matrix.
type ChaosConfig struct {
	// Nodes is the ring size of the churned graph; 0 means 64.
	Nodes int
	// Batches is the script length; 0 means 24.
	Batches int
	// BatchSize is ops per batch; 0 means 8.
	BatchSize int
	// Points is the kill-point count; 0 means 200.
	Points int
	// Seed drives the script and the kill schedule.
	Seed int64
	// CheckpointEvery is the durable checkpoint cadence; 0 means 7 (a
	// deliberately odd cadence so kills land on every phase of it).
	CheckpointEvery int
	// Dir hosts the per-point data dirs; "" means a temp dir.
	Dir string
	// Log, when set, receives per-point progress lines.
	Log func(format string, args ...any)
}

func (c *ChaosConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.Batches == 0 {
		c.Batches = 24
	}
	if c.BatchSize == 0 {
		c.BatchSize = 8
	}
	if c.Points == 0 {
		c.Points = 200
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 7
	}
}

// ChaosReport is the matrix outcome: how many points ran per mode and
// what recovery saw. Zero Failures is the acceptance criterion.
type ChaosReport struct {
	Points          int            `json:"points"`
	PerMode         map[string]int `json:"per_mode"`
	TailsDiscarded  int            `json:"tails_discarded"`
	ReplayedBatches int            `json:"replayed_batches"`
	Failures        int            `json:"failures"`
}

// chaosInstance is slackInstance without the *testing.T plumbing: a
// shared full palette with one defect of slack per color, sized to
// the base's max degree.
func chaosInstance(base *graph.CSR) *coloring.Instance {
	maxDeg := 0
	for v := 0; v < base.N(); v++ {
		if d := base.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	space := maxDeg + 4
	full := make([]int, space)
	ones := make([]int, space)
	for i := range full {
		full[i], ones[i] = i, 1
	}
	inst := &coloring.Instance{Space: space, Lists: make([][]int, base.N()), Defects: make([][]int, base.N())}
	for v := 0; v < base.N(); v++ {
		inst.Lists[v] = full
		inst.Defects[v] = ones
	}
	return inst
}

// chaosScript generates the deterministic churn script: every op
// derives from the seed via the adversary's splitmix64 discipline (no
// math/rand), with a local adjacency mirror keeping edge ops valid so
// batches exercise the full apply path instead of rejecting early.
func chaosScript(base *graph.CSR, batches, batchSize int, seed int64) [][]Op {
	n := base.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool, base.Degree(v))
		for _, u := range base.Row(v) {
			adj[v][u] = true
		}
	}
	draw := adversary.SplitMix64Stream(uint64(seed))
	space := chaosInstance(base).Space
	script := make([][]Op, 0, batches)
	for b := 0; b < batches; b++ {
		ops := make([]Op, 0, batchSize)
		for len(ops) < batchSize {
			switch x := draw(); x % 10 {
			case 0, 1, 2, 3: // add_edge
				u := int(draw() % uint64(len(adj)))
				v := (u + 2 + int(draw()%8)) % len(adj)
				if u == v || adj[u][v] {
					continue
				}
				adj[u][v], adj[v][u] = true, true
				ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
			case 4, 5, 6: // remove_edge (smallest neighbor: map order is
				// not deterministic, the script must be)
				u := int(draw() % uint64(len(adj)))
				found := false
				for d := 0; d < len(adj) && !found; d++ {
					w := (u + d) % len(adj)
					v := -1
					for cand := range adj[w] {
						if v < 0 || cand < v {
							v = cand
						}
					}
					if v < 0 {
						continue
					}
					delete(adj[w], v)
					delete(adj[v], w)
					ops = append(ops, Op{Action: OpRemoveEdge, U: w, V: v})
					found = true
				}
				if !found {
					continue
				}
			case 7: // add_node with the shared palette
				full := make([]int, space)
				ones := make([]int, space)
				for i := range full {
					full[i], ones[i] = i, 1
				}
				adj = append(adj, make(map[int]bool))
				ops = append(ops, Op{Action: OpAddNode, List: full, Defects: ones})
			case 8: // set_list: shrink a node's palette, keep slack
				v := int(draw() % uint64(len(adj)))
				list := make([]int, 0, space-1)
				defects := make([]int, 0, space-1)
				for c := 0; c < space; c++ {
					if c != int(x%uint64(space)) {
						list = append(list, c)
						defects = append(defects, 2)
					}
				}
				ops = append(ops, Op{Action: OpSetList, Node: v, List: list, Defects: defects})
			case 9: // deliberately rejected op: replay must reproduce it.
				// Only as a batch's last op, so the mirror stays in sync
				// with the partially-applied prefix.
				if len(ops) != batchSize-1 {
					continue
				}
				ops = append(ops, Op{Action: OpRemoveNode, Node: len(adj) + 1000})
			}
		}
		script = append(script, ops)
	}
	return script
}

// chaosRef is one reference version's observable state.
type chaosRef struct {
	colors []int
	stats  Stats
	fp     uint64
}

// RunChaos executes the kill-point matrix and returns its report. A
// non-nil error describes the first differential failure (the report
// still counts the rest).
func RunChaos(cfg ChaosConfig) (ChaosReport, error) {
	cfg.defaults()
	rep := ChaosReport{PerMode: map[string]int{}}
	base := graph.StreamedRing(cfg.Nodes)
	script := chaosScript(base, cfg.Batches, cfg.BatchSize, cfg.Seed)
	plan := adversary.NewChaosPlan(cfg.Seed, cfg.Batches, cfg.Points)
	if err := plan.Validate(); err != nil {
		return rep, err
	}

	// Uninterrupted reference run, state captured at every version.
	refSvc, err := New(base, chaosInstance(base), nil, Options{})
	if err != nil {
		return rep, err
	}
	refs := make([]chaosRef, 0, cfg.Batches+1)
	capture := func(s *Service) chaosRef {
		return chaosRef{
			colors: append([]int(nil), s.Snapshot().Colors...),
			stats:  CanonicalStats(s.Stats()),
			fp:     s.TopologyFingerprint(),
		}
	}
	refs = append(refs, capture(refSvc))
	for bi, ops := range script {
		if _, err := refSvc.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			return rep, fmt.Errorf("chaos reference batch %d: %w", bi, err)
		}
		refs = append(refs, capture(refSvc))
	}

	root := cfg.Dir
	if root == "" {
		root, err = os.MkdirTemp("", "chaos-")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(root)
	}

	var firstErr error
	for pi, pt := range plan.Points {
		rep.Points++
		rep.PerMode[string(pt.Mode)]++
		if err := runChaosPoint(pi, pt, base, script, refs, cfg, root, &rep); err != nil {
			rep.Failures++
			if firstErr == nil {
				firstErr = err
			}
			if cfg.Log != nil {
				cfg.Log("point %d FAIL: %v", pi, err)
			}
		}
		if cfg.Log != nil && (pi+1)%50 == 0 {
			cfg.Log("chaos: %d/%d points, %d failures", pi+1, len(plan.Points), rep.Failures)
		}
	}
	return rep, firstErr
}

// runChaosPoint executes one kill: churn to the kill point, damage,
// recover, differential-check, finish the script, check again.
func runChaosPoint(pi int, pt adversary.ChaosPoint, base *graph.CSR, script [][]Op,
	refs []chaosRef, cfg ChaosConfig, root string, rep *ChaosReport) error {
	dir := filepath.Join(root, fmt.Sprintf("pt-%04d", pi))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	svc, err := New(base, chaosInstance(base), nil, Options{})
	if err != nil {
		return err
	}
	dopts := DurableOptions{Dir: dir, Sync: SyncBatch, CheckpointEvery: cfg.CheckpointEvery}
	d, err := NewDurable(svc, dopts)
	if err != nil {
		return err
	}
	upTo := pt.Batch
	if pt.Mode == adversary.ChaosMidRecord {
		// One WAL append per batch, so arming append index Batch tears
		// exactly that batch's record.
		d.ArmCrash(pt.Batch, pt.Draw)
		upTo++ // the armed batch itself crashes mid-append
	}
	crashed := false
	for _, ops := range script[:upTo] {
		if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			if errors.Is(err, ErrWALCrashed) && pt.Mode == adversary.ChaosMidRecord {
				crashed = true
				break
			}
			return fmt.Errorf("point %d: apply: %w", pi, err)
		}
	}
	if pt.Mode == adversary.ChaosMidRecord && !crashed {
		return fmt.Errorf("point %d: armed crash never fired", pi)
	}
	d.Abort()

	switch pt.Mode {
	case adversary.ChaosFlipByte:
		if err := damageLastSegment(dir, func(img []byte) []byte {
			if len(img) <= 8 {
				return img
			}
			out := append([]byte(nil), img...)
			out[8+int(pt.Draw%uint64(len(img)-8))] ^= 0x20
			return out
		}); err != nil {
			return err
		}
	case adversary.ChaosTruncate:
		if err := damageLastSegment(dir, func(img []byte) []byte {
			cut := int(pt.Draw % uint64(len(img)+1))
			return img[:len(img)-cut]
		}); err != nil {
			return err
		}
	}

	d2, info, err := OpenDurable(Options{}, dopts)
	if err != nil {
		return fmt.Errorf("point %d (%s): recovery: %w", pi, pt.Mode, err)
	}
	defer d2.Close()
	if info.Tail != nil {
		rep.TailsDiscarded++
	}
	rep.ReplayedBatches += info.ReplayedBatches

	check := func(when string) error {
		s := d2.Service()
		v := s.Snapshot().Version
		if v >= uint64(len(refs)) {
			return fmt.Errorf("point %d (%s) %s: version %d beyond reference", pi, pt.Mode, when, v)
		}
		ref := refs[v]
		if !reflect.DeepEqual(s.Snapshot().Colors, ref.colors) {
			return fmt.Errorf("point %d (%s) %s: colors diverge at version %d", pi, pt.Mode, when, v)
		}
		if got := CanonicalStats(s.Stats()); !reflect.DeepEqual(got, ref.stats) {
			return fmt.Errorf("point %d (%s) %s: stats diverge at version %d", pi, pt.Mode, when, v)
		}
		if fp := s.TopologyFingerprint(); fp != ref.fp {
			return fmt.Errorf("point %d (%s) %s: fingerprint diverges at version %d", pi, pt.Mode, when, v)
		}
		if audit := s.AuditState(0); !audit.Valid() {
			return fmt.Errorf("point %d (%s) %s: audit: %w", pi, pt.Mode, when, audit.Err())
		}
		return nil
	}
	if err := check("recovered"); err != nil {
		return err
	}
	// Boundary kills under SyncBatch lose nothing: recovery must land
	// exactly on the kill batch.
	if pt.Mode == adversary.ChaosBoundary {
		if v := d2.Service().Snapshot().Version; v != uint64(pt.Batch) {
			return fmt.Errorf("point %d (boundary): recovered version %d, want %d", pi, v, pt.Batch)
		}
	}
	v := d2.Service().Snapshot().Version
	for _, ops := range script[v:] {
		if _, err := d2.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			return fmt.Errorf("point %d (%s): continue: %w", pi, pt.Mode, err)
		}
	}
	return check("final")
}

// damageLastSegment rewrites the newest WAL segment through damage.
func damageLastSegment(dir string, damage func([]byte) []byte) error {
	names, err := listWALSegments(dir)
	if err != nil {
		return err
	}
	if len(names) == 0 {
		return nil
	}
	path := filepath.Join(dir, names[len(names)-1])
	img, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, damage(img), 0o644)
}
