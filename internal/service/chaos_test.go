package service

import (
	"testing"

	"listcolor/internal/adversary"
	"listcolor/internal/graph"
)

// TestRunChaosMatrix runs a scaled-down kill-point matrix end to end:
// every seed-derived kill must recover to a reference-identical state
// with a clean audit. The full 200-point matrix is `make chaos`.
func TestRunChaosMatrix(t *testing.T) {
	points := 40
	if testing.Short() {
		points = 12
	}
	rep, err := RunChaos(ChaosConfig{Seed: 1, Points: points, Log: t.Logf})
	if err != nil {
		t.Fatalf("chaos matrix: %v", err)
	}
	if rep.Failures != 0 || rep.Points != points {
		t.Fatalf("report: %+v", rep)
	}
	// The seed-derived mode draw must exercise more than one damage
	// class at this matrix size.
	if len(rep.PerMode) < 3 {
		t.Fatalf("mode coverage too thin: %+v", rep.PerMode)
	}
	t.Logf("chaos: %+v", rep)
}

// TestRunChaosDeterministic: the same seed yields the same report —
// the whole matrix is a pure function of its config.
func TestRunChaosDeterministic(t *testing.T) {
	a, err := RunChaos(ChaosConfig{Seed: 9, Points: 8, Batches: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Seed: 9, Points: 8, Batches: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.TailsDiscarded != b.TailsDiscarded || a.ReplayedBatches != b.ReplayedBatches {
		t.Fatalf("matrix not deterministic: %+v vs %+v", a, b)
	}
}

// TestChaosScriptDeterministic pins the script generator: same seed,
// same ops, and a different seed diverges.
func TestChaosScriptDeterministic(t *testing.T) {
	base := graph.StreamedRing(64)
	s1 := chaosScript(base, 6, 8, 3)
	s2 := chaosScript(base, 6, 8, 3)
	s3 := chaosScript(base, 6, 8, 4)
	if len(s1) != 6 || len(s1[0]) != 8 {
		t.Fatalf("script shape: %d x %d", len(s1), len(s1[0]))
	}
	same := func(a, b [][]Op) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j].Action != b[i][j].Action || a[i][j].U != b[i][j].U || a[i][j].V != b[i][j].V {
					return false
				}
			}
		}
		return true
	}
	if !same(s1, s2) {
		t.Fatal("same seed diverged")
	}
	if same(s1, s3) {
		t.Fatal("different seeds agree")
	}
}

// TestChaosPlanRoundTrip: plans are pure data — JSON round-trips and
// validation rejects broken points.
func TestChaosPlanRoundTrip(t *testing.T) {
	p := adversary.NewChaosPlan(5, 24, 16)
	if err := p.Validate(); err != nil {
		t.Fatalf("derived plan invalid: %v", err)
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := adversary.UnmarshalChaosPlan(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(p.Points) || back.Points[3] != p.Points[3] {
		t.Fatalf("round trip drift: %+v vs %+v", back.Points[3], p.Points[3])
	}
	back.Points[0].Mode = "meteor-strike"
	if _, err := adversary.UnmarshalChaosPlan(mustMarshal(t, back)); err == nil {
		t.Fatal("unknown mode accepted")
	}
	back.Points[0].Mode = adversary.ChaosBoundary
	back.Points[0].Batch = 99
	if err := back.Validate(); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
}

func mustMarshal(t *testing.T, p adversary.ChaosPlan) []byte {
	t.Helper()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
