// checkpoint.go bounds WAL replay: every CheckpointEvery batches the
// Durable wrapper serializes the service's full state — version,
// colors, instance lists/defects, topology, running counters — into
// one checksummed file, written atomically (temp file + fsync +
// rename + directory fsync), and then drops the WAL segments the
// checkpoint supersedes. Recovery is load-checkpoint + replay-tail:
// because ApplyBatch is deterministic in the op stream, the recovered
// state is byte-identical to the uninterrupted run.
//
// The encoding is the same canonical varint discipline as the WAL
// records (and sim.EncodePayload): varints end to end, shared color
// lists deduplicated with a same-as-previous flag, topology rows
// delta-coded. A CRC-32C trailer rejects damaged checkpoints with a
// typed error instead of replaying garbage.
package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrCheckpoint wraps checkpoint load failures: a missing, truncated
// or corrupted checkpoint decodes to an error, never a panic.
var ErrCheckpoint = errors.New("service: bad checkpoint")

// checkpointMagic opens the checkpoint file; bumping it is a format
// break (old files are rejected, not misread).
var checkpointMagic = []byte("LCCKPT01")

const checkpointFile = "checkpoint.ckpt"

// checkpointState is the decoded durable image of a service at one
// batch boundary.
type checkpointState struct {
	version uint64
	colors  []int
	space   int
	lists   [][]int
	defects [][]int
	// rowsUp[v] holds v's neighbors w > v, ascending — each edge once.
	rowsUp [][]int
	totals Stats
	// walSegment is the index of the first WAL segment whose records
	// may exceed the checkpoint version (older segments are garbage).
	walSegment int
}

// appendIntsVarint writes len + elements.
func appendIntsVarint(b []byte, xs []int) []byte {
	b = binary.AppendUvarint(b, uint64(len(xs)))
	for _, x := range xs {
		b = binary.AppendVarint(b, int64(x))
	}
	return b
}

// encodeCheckpoint renders the state into the checkpoint payload
// (magic and CRC are added by writeCheckpoint).
func encodeCheckpoint(cs *checkpointState) []byte {
	n := len(cs.colors)
	buf := binary.AppendUvarint(nil, cs.version)
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, c := range cs.colors {
		buf = binary.AppendVarint(buf, int64(c))
	}
	buf = binary.AppendUvarint(buf, uint64(cs.space))
	// Lists/defects with same-as-previous dedup: under the shared-
	// palette instances colord serves, n nodes cost 1 byte each
	// instead of re-encoding the full palette n times.
	sameAsPrev := func(v int) bool {
		if v == 0 {
			return false
		}
		a, b := cs.lists[v], cs.lists[v-1]
		da, db := cs.defects[v], cs.defects[v-1]
		if len(a) != len(b) || len(da) != len(db) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		for i := range da {
			if da[i] != db[i] {
				return false
			}
		}
		return true
	}
	for v := 0; v < n; v++ {
		if sameAsPrev(v) {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = appendIntsVarint(buf, cs.lists[v])
		buf = appendIntsVarint(buf, cs.defects[v])
	}
	// Topology: per node, the neighbors above it, delta-coded (every
	// delta ≥ 1 since rows are sorted and strictly above v).
	for v := 0; v < n; v++ {
		row := cs.rowsUp[v]
		buf = binary.AppendUvarint(buf, uint64(len(row)))
		prev := v
		for _, w := range row {
			buf = binary.AppendUvarint(buf, uint64(w-prev))
			prev = w
		}
	}
	// Running counters, in a fixed documented order.
	for _, x := range cs.totals.counterList() {
		buf = binary.AppendVarint(buf, x)
	}
	buf = appendIntsVarint(buf, int64sToInts(cs.totals.ShardApplied))
	buf = appendIntsVarint(buf, int64sToInts(cs.totals.ShardRecolored))
	buf = binary.AppendUvarint(buf, uint64(cs.walSegment))
	return buf
}

// counterList is the checkpoint serialization order of the Stats
// counters (representation-independent fields only; Patched and the
// time-derived rates are recomputed after restore).
func (st *Stats) counterList() []int64 {
	return []int64{
		st.Batches, st.Updates, st.Rejected,
		st.HardConflicts, st.AbsorbedConflicts, st.Recolored,
		st.RepairRounds, st.Fallbacks,
		st.MaintenanceMessages, st.MaintenanceBits, st.Compactions,
		st.ParallelBatches, st.DeferredOps, st.ApplyFallbacks, st.RepairFallbacks,
	}
}

// setCounterList is counterList's decode mirror.
func (st *Stats) setCounterList(xs []int64) {
	st.Batches, st.Updates, st.Rejected = xs[0], xs[1], xs[2]
	st.HardConflicts, st.AbsorbedConflicts, st.Recolored = xs[3], xs[4], xs[5]
	st.RepairRounds, st.Fallbacks = xs[6], xs[7]
	st.MaintenanceMessages, st.MaintenanceBits, st.Compactions = xs[8], xs[9], xs[10]
	st.ParallelBatches, st.DeferredOps, st.ApplyFallbacks, st.RepairFallbacks = xs[11], xs[12], xs[13], xs[14]
}

func int64sToInts(xs []int64) []int {
	if xs == nil {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

func intsToInt64s(xs []int) []int64 {
	if xs == nil {
		return nil
	}
	out := make([]int64, len(xs))
	for i, x := range xs {
		out[i] = int64(x)
	}
	return out
}

// decodeCheckpoint parses a checkpoint payload. Corrupt input returns
// ErrCheckpoint — bounds are checked before any allocation is sized.
func decodeCheckpoint(data []byte) (*checkpointState, error) {
	rest := data
	fail := func(what string) error {
		return fmt.Errorf("%w: %s at byte %d", ErrCheckpoint, what, len(data)-len(rest))
	}
	readUvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	readVarint := func() (int64, bool) {
		v, n := binary.Varint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	readInts := func() ([]int, bool) {
		n, ok := readUvarint()
		if !ok || n > uint64(len(rest)) {
			return nil, false
		}
		if n == 0 {
			return nil, true
		}
		xs := make([]int, n)
		for i := range xs {
			v, ok := readVarint()
			if !ok {
				return nil, false
			}
			xs[i] = int(v)
		}
		return xs, true
	}

	cs := &checkpointState{}
	v, ok := readUvarint()
	if !ok {
		return nil, fail("version")
	}
	cs.version = v
	nu, ok := readUvarint()
	if !ok || nu > uint64(len(rest)) {
		return nil, fail("node count")
	}
	n := int(nu)
	cs.colors = make([]int, n)
	for i := range cs.colors {
		c, ok := readVarint()
		if !ok {
			return nil, fail("colors")
		}
		cs.colors[i] = int(c)
	}
	sp, ok := readUvarint()
	if !ok {
		return nil, fail("space")
	}
	cs.space = int(sp)
	cs.lists = make([][]int, n)
	cs.defects = make([][]int, n)
	for v := 0; v < n; v++ {
		if len(rest) == 0 {
			return nil, fail("list flag")
		}
		flag := rest[0]
		rest = rest[1:]
		switch flag {
		case 0:
			if v == 0 {
				return nil, fail("dangling same-as-previous flag")
			}
			cs.lists[v] = cs.lists[v-1]
			cs.defects[v] = cs.defects[v-1]
		case 1:
			var ok bool
			if cs.lists[v], ok = readInts(); !ok {
				return nil, fail("list")
			}
			if cs.defects[v], ok = readInts(); !ok {
				return nil, fail("defects")
			}
			if len(cs.lists[v]) != len(cs.defects[v]) {
				return nil, fail("list/defect length mismatch")
			}
		default:
			return nil, fail("unknown list flag")
		}
	}
	cs.rowsUp = make([][]int, n)
	for v := 0; v < n; v++ {
		deg, ok := readUvarint()
		if !ok || deg > uint64(len(rest)) {
			return nil, fail("row length")
		}
		if deg == 0 {
			continue
		}
		row := make([]int, deg)
		prev := v
		for i := range row {
			d, ok := readUvarint()
			if !ok || d == 0 {
				return nil, fail("row delta")
			}
			prev += int(d)
			if prev >= n {
				return nil, fail("neighbor out of range")
			}
			row[i] = prev
		}
		cs.rowsUp[v] = row
	}
	counters := make([]int64, len(cs.totals.counterList()))
	for i := range counters {
		c, ok := readVarint()
		if !ok {
			return nil, fail("counters")
		}
		counters[i] = c
	}
	cs.totals.setCounterList(counters)
	sa, ok := readInts()
	if !ok {
		return nil, fail("shard applied")
	}
	sr, ok := readInts()
	if !ok {
		return nil, fail("shard recolored")
	}
	cs.totals.ShardApplied = intsToInt64s(sa)
	cs.totals.ShardRecolored = intsToInt64s(sr)
	seg, ok := readUvarint()
	if !ok {
		return nil, fail("wal segment")
	}
	cs.walSegment = int(seg)
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCheckpoint, len(rest))
	}
	return cs, nil
}

// writeCheckpoint persists the state atomically: the full image goes
// to a temp file that is fsynced before an atomic rename over the
// live checkpoint, then the directory is fsynced — a crash at any
// point leaves either the old checkpoint or the new one, never a mix.
func writeCheckpoint(dir string, cs *checkpointState) error {
	payload := encodeCheckpoint(cs)
	img := make([]byte, 0, len(checkpointMagic)+len(payload)+4)
	img = append(img, checkpointMagic...)
	img = append(img, payload...)
	img = binary.LittleEndian.AppendUint32(img, crc32.Checksum(payload, walCRC))

	tmp := filepath.Join(dir, checkpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readCheckpoint loads and verifies the live checkpoint. A missing
// file returns os.ErrNotExist (fresh data dir); damage of any kind
// returns ErrCheckpoint.
func readCheckpoint(dir string) (*checkpointState, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		return nil, err
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return nil, fmt.Errorf("%w: missing magic", ErrCheckpoint)
	}
	payload := data[len(checkpointMagic) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if sum != crc32.Checksum(payload, walCRC) {
		return nil, fmt.Errorf("%w: crc mismatch", ErrCheckpoint)
	}
	return decodeCheckpoint(payload)
}
