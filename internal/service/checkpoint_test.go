package service

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"listcolor/internal/graph"
)

// churnedService builds a service and pushes it through some churn so
// checkpoints cover a non-trivial state (patched overlay, grown node
// set, rewritten lists).
func churnedService(t *testing.T, batches int, opts Options) *Service {
	t.Helper()
	base := graph.StreamedRing(64)
	inst := slackInstance(base)
	s := mustService(t, base, inst, opts)
	script := churnScript(base, batches, 16, 3)
	fillSetLists(script, inst.Space)
	for _, ops := range script {
		if _, err := s.ApplyBatch(ops); err != nil {
			t.Fatalf("churn batch: %v", err)
		}
	}
	return s
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := churnedService(t, 12, Options{})
	cs := s.stateImage()
	cs.walSegment = 5
	back, err := decodeCheckpoint(encodeCheckpoint(cs))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.version != cs.version || back.space != cs.space || back.walSegment != 5 {
		t.Fatalf("scalar drift: %+v vs %+v", back, cs)
	}
	if !reflect.DeepEqual(back.colors, cs.colors) {
		t.Fatal("colors drift")
	}
	if !reflect.DeepEqual(back.lists, cs.lists) || !reflect.DeepEqual(back.defects, cs.defects) {
		t.Fatal("constraint drift")
	}
	// rowsUp: nil and empty are the same row on the wire.
	for v := range cs.rowsUp {
		if len(cs.rowsUp[v]) == 0 && len(back.rowsUp[v]) == 0 {
			continue
		}
		if !reflect.DeepEqual(back.rowsUp[v], cs.rowsUp[v]) {
			t.Fatalf("row %d drift: %v vs %v", v, back.rowsUp[v], cs.rowsUp[v])
		}
	}
	if !reflect.DeepEqual(back.totals.counterList(), cs.totals.counterList()) {
		t.Fatal("counter drift")
	}
	if !reflect.DeepEqual(back.totals.ShardApplied, cs.totals.ShardApplied) {
		t.Fatal("shard counter drift")
	}
}

// TestCheckpointRestoreMatchesLive pins the restore path: a service
// rebuilt from its own checkpoint serves the same colors, canonical
// stats and topology fingerprint as the live one, and audits clean.
func TestCheckpointRestoreMatchesLive(t *testing.T) {
	for _, shards := range []int{0, 3} {
		s := churnedService(t, 12, Options{Shards: shards})
		cs := s.stateImage()
		r, err := restoreService(decodeMust(t, cs), Options{Shards: shards})
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		if !reflect.DeepEqual(r.Snapshot().Colors, s.Snapshot().Colors) {
			t.Fatalf("shards=%d: colors drift", shards)
		}
		if r.TopologyFingerprint() != s.TopologyFingerprint() {
			t.Fatalf("shards=%d: fingerprint drift", shards)
		}
		if got, want := CanonicalStats(r.Stats()), CanonicalStats(s.Stats()); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: stats drift:\n got %+v\nwant %+v", shards, got, want)
		}
		if err := r.ValidateState(); err != nil {
			t.Fatalf("shards=%d: restored state invalid: %v", shards, err)
		}
	}
}

func decodeMust(t *testing.T, cs *checkpointState) *checkpointState {
	t.Helper()
	back, err := decodeCheckpoint(encodeCheckpoint(cs))
	if err != nil {
		t.Fatalf("checkpoint round trip: %v", err)
	}
	return back
}

// TestCheckpointFileDamage: every damaged on-disk image is rejected
// with a typed error — truncation, byte flips, missing magic — and a
// missing file surfaces os.ErrNotExist for the caller's fresh-dir
// branch.
func TestCheckpointFileDamage(t *testing.T) {
	dir := t.TempDir()
	if _, err := readCheckpoint(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing checkpoint: %v", err)
	}
	s := churnedService(t, 6, Options{})
	cs := s.stateImage()
	if err := writeCheckpoint(dir, cs); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := readCheckpoint(dir); err != nil {
		t.Fatalf("clean read: %v", err)
	}
	path := filepath.Join(dir, checkpointFile)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string][]byte{
		"truncated":    img[:len(img)/2],
		"flipped byte": flipByte(img, len(img)/2),
		"flipped crc":  flipByte(img, len(img)-1),
		"wrong magic":  flipByte(img, 0),
		"only magic":   img[:8],
		"empty":        {},
	}
	for name, bad := range damage {
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := readCheckpoint(dir); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("%s: err = %v, want ErrCheckpoint", name, err)
		}
	}
	// Rewriting through writeCheckpoint replaces the damaged file
	// atomically; the re-read state matches.
	if err := writeCheckpoint(dir, cs); err != nil {
		t.Fatal(err)
	}
	back, err := readCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.version != cs.version || !reflect.DeepEqual(back.colors, cs.colors) {
		t.Fatal("rewritten checkpoint drift")
	}
}

// TestCheckpointDecodeHostileInput: declared lengths beyond the input
// are rejected before allocation, mirroring the WAL decoder's bound.
func TestCheckpointDecodeHostileInput(t *testing.T) {
	hostile := [][]byte{
		{},
		{0x01},                               // version only
		{0x01, 0xff, 0xff, 0xff, 0xff, 0x0f}, // ~4·10⁹ nodes, no bytes
		{0x01, 0x02, 0x00, 0x00, 0x04, 0x02}, // truncated mid-lists
	}
	for i, data := range hostile {
		if _, err := decodeCheckpoint(data); !errors.Is(err, ErrCheckpoint) {
			t.Fatalf("hostile %d: err = %v", i, err)
		}
	}
}
