// durable.go is the crash-safe shell around Service: a Durable logs
// every batch to the WAL before applying it, checkpoints the full
// state every CheckpointEvery batches, and recovers from a data dir by
// loading the checkpoint and replaying the WAL tail. The paper's
// defect slack lets the *coloring* absorb bounded damage; this layer
// gives the *process* the same property — a kill at any instant loses
// at most the unsynced tail, and what recovers is byte-identical to
// the uninterrupted run at the recovered version.
package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// DurableOptions tunes the durability layer (colord -data-dir,
// -wal-sync, -checkpoint-every).
type DurableOptions struct {
	// Dir is the data directory holding the checkpoint and WAL
	// segments. Required.
	Dir string
	// Sync is the WAL durability mode; the zero value is SyncOff, so
	// set SyncBatch explicitly for the usual process-crash guarantee.
	Sync SyncMode
	// CheckpointEvery is the number of batches between checkpoints
	// (bounding replay length); 0 means 256.
	CheckpointEvery int
	// SegmentBytes rotates the WAL at this segment size; 0 means 16 MiB.
	SegmentBytes int64
	// BeforeReplay, when set, runs after the checkpoint is restored
	// and before WAL replay begins — the hook colord uses to start
	// serving lock-free reads (readiness false) while recovery is
	// still replaying. pending is the number of batches about to
	// replay; the service must only be read, not written.
	BeforeReplay func(s *Service, pending int)
}

// DurabilityStats is the durability section of /v1/stats, safe to
// read concurrently with the writer.
type DurabilityStats struct {
	SyncMode              string `json:"sync_mode"`
	WALSegment            int    `json:"wal_segment"`
	WALRecords            int64  `json:"wal_records"`
	WALBytes              int64  `json:"wal_bytes"`
	Checkpoints           int64  `json:"checkpoints"`
	LastCheckpointVersion uint64 `json:"last_checkpoint_version"`
	CheckpointEvery       int    `json:"checkpoint_every"`
	RecoveredBatches      int    `json:"recovered_batches"`
	RecoveredOps          int    `json:"recovered_ops"`
	// WALTailDiscarded describes the torn tail recovery dropped, empty
	// when the log was clean.
	WALTailDiscarded string `json:"wal_tail_discarded,omitempty"`
}

// RecoveryInfo is the account of one OpenDurable: where the
// checkpoint stood, how much WAL replayed on top of it, and what (if
// anything) was discarded as a torn tail.
type RecoveryInfo struct {
	CheckpointVersion uint64
	Version           uint64 // recovered service version after replay
	ReplayedBatches   int
	ReplayedOps       int
	SkippedRecords    int // pre-checkpoint records in surviving segments
	// Tail is non-nil when a torn or corrupted record ended the
	// replay; everything before it recovered cleanly.
	Tail *WALTailError
}

// Durable is a Service whose batches survive crashes. All writes go
// through its ApplyBatch; reads go to Service() — they stay lock-free
// snapshot loads, untouched by the logging.
type Durable struct {
	svc  *Service
	opts DurableOptions

	mu        sync.Mutex
	wal       *walWriter
	dead      bool
	sinceCkpt int

	// lock-free mirrors for DurabilityStats
	walSegment    atomic.Int64
	walRecords    atomic.Int64
	walBytes      atomic.Int64
	checkpoints   atomic.Int64
	lastCkpt      atomic.Uint64
	recoveredB    int
	recoveredOps  int
	tailDiscarded string
}

// ckptEvery resolves the checkpoint cadence.
func (d *Durable) ckptEvery() int {
	if d.opts.CheckpointEvery > 0 {
		return d.opts.CheckpointEvery
	}
	return 256
}

// Service returns the wrapped service for the read path (Color,
// Snapshot, Stats, …). Do not call its ApplyBatch directly — writes
// that bypass the WAL are not recovered.
func (d *Durable) Service() *Service { return d.svc }

// NewDurable wraps an already-constructed service in a fresh data
// dir: the current state is checkpointed immediately (so recovery
// never needs the construction inputs), and the WAL opens for the
// first batch. A dir that already holds a checkpoint is refused —
// reopen it with OpenDurable instead.
func NewDurable(svc *Service, dopts DurableOptions) (*Durable, error) {
	if dopts.Dir == "" {
		return nil, fmt.Errorf("service: durable service needs a data dir")
	}
	if err := os.MkdirAll(dopts.Dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := os.Stat(filepath.Join(dopts.Dir, checkpointFile)); err == nil {
		return nil, fmt.Errorf("service: data dir %s already holds a checkpoint; open it with OpenDurable", dopts.Dir)
	}
	// No checkpoint means nothing in this dir was ever durable (the
	// v0 checkpoint lands before the first batch) — clear stale
	// segments a crashed initialization may have left.
	if names, err := listWALSegments(dopts.Dir); err == nil {
		for _, name := range names {
			os.Remove(filepath.Join(dopts.Dir, name))
		}
	}
	w, err := openWALWriter(dopts.Dir, dopts.Sync, dopts.SegmentBytes)
	if err != nil {
		return nil, err
	}
	d := &Durable{svc: svc, opts: dopts, wal: w}
	cs := svc.stateImage()
	cs.walSegment = w.index
	if err := writeCheckpoint(dopts.Dir, cs); err != nil {
		w.close()
		return nil, err
	}
	d.checkpoints.Add(1)
	d.lastCkpt.Store(cs.version)
	d.syncCounters()
	return d, nil
}

// OpenDurable recovers a durable service from its data dir: load the
// checkpoint, replay the WAL tail (torn or corrupted records discard
// the rest of the log, cleanly), and reopen the WAL for appending. A
// dir without a checkpoint returns os.ErrNotExist — the caller
// decides whether that means "initialize fresh". opts must match the
// options the service ran under (they are not persisted).
func OpenDurable(opts Options, dopts DurableOptions) (*Durable, *RecoveryInfo, error) {
	cs, err := readCheckpoint(dopts.Dir)
	if err != nil {
		return nil, nil, err
	}
	svc, err := restoreService(cs, opts)
	if err != nil {
		return nil, nil, err
	}
	records, tail, err := readWALDir(dopts.Dir)
	if err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{CheckpointVersion: cs.version, Tail: tail}
	pending := 0
	for _, rec := range records {
		if rec.Version > cs.version {
			pending++
		}
	}
	if dopts.BeforeReplay != nil {
		dopts.BeforeReplay(svc, pending)
	}
	next := cs.version + 1
	for _, rec := range records {
		if rec.Version <= cs.version {
			info.SkippedRecords++
			continue
		}
		if rec.Version != next {
			// A contiguity break past a CRC-valid record can only come
			// from outside interference; treat it as a torn tail rather
			// than replaying out of order.
			info.Tail = &WALTailError{Reason: TornBadPayload,
				Cause: fmt.Errorf("%w: version %d after %d", ErrWALRecord, rec.Version, next-1)}
			break
		}
		if _, err := svc.ApplyBatch(rec.Ops); err != nil && !errors.Is(err, ErrOp) {
			return nil, nil, fmt.Errorf("service: replaying batch %d: %w", rec.Version, err)
		}
		next++
		info.ReplayedBatches++
		info.ReplayedOps += len(rec.Ops)
	}
	info.Version = svc.Snapshot().Version
	w, err := openWALWriter(dopts.Dir, dopts.Sync, dopts.SegmentBytes)
	if err != nil {
		return nil, nil, err
	}
	d := &Durable{
		svc: svc, opts: dopts, wal: w,
		recoveredB: info.ReplayedBatches, recoveredOps: info.ReplayedOps,
	}
	if tail := info.Tail; tail != nil {
		d.tailDiscarded = tail.Error()
	}
	d.lastCkpt.Store(cs.version)
	d.syncCounters()
	return d, info, nil
}

// ApplyBatch logs the batch to the WAL (honoring the sync mode), then
// applies it to the service. An op-level rejection (ErrOp) is a
// client error and replays deterministically; a WAL write failure or
// an internal apply failure marks the Durable dead — the in-memory
// state can no longer be trusted to match the log, so every further
// write returns ErrWALCrashed until the dir is reopened through
// recovery.
func (d *Durable) ApplyBatch(ops []Op) (BatchReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return BatchReport{}, ErrWALCrashed
	}
	version := d.svc.Snapshot().Version + 1
	payload := EncodeWALBatch(version, ops)
	if err := d.wal.append(payload); err != nil {
		d.dead = true
		d.syncCounters()
		return BatchReport{}, err
	}
	d.syncCounters()
	rep, opErr := d.svc.ApplyBatch(ops)
	if opErr != nil && !errors.Is(opErr, ErrOp) {
		d.dead = true
		return rep, opErr
	}
	d.sinceCkpt++
	if d.sinceCkpt >= d.ckptEvery() {
		if err := d.checkpointLocked(); err != nil {
			d.dead = true
			return rep, err
		}
	}
	return rep, opErr
}

// Checkpoint forces a checkpoint now (colord uses it on graceful
// shutdown so restart replays nothing).
func (d *Durable) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return ErrWALCrashed
	}
	return d.checkpointLocked()
}

// checkpointLocked rotates the WAL (flushing and fsyncing the old
// segment), writes the checkpoint atomically, and deletes the
// segments it superseded. Caller holds d.mu.
func (d *Durable) checkpointLocked() error {
	if err := d.wal.rotate(); err != nil {
		return err
	}
	cs := d.svc.stateImage()
	cs.walSegment = d.wal.index
	if err := writeCheckpoint(d.opts.Dir, cs); err != nil {
		return err
	}
	if err := removeWALSegmentsBefore(d.opts.Dir, d.wal.index); err != nil {
		return err
	}
	d.sinceCkpt = 0
	d.checkpoints.Add(1)
	d.lastCkpt.Store(cs.version)
	d.syncCounters()
	return nil
}

// Close shuts the durable service down cleanly: a final checkpoint
// (unless the WAL already crashed) and a synced WAL close.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal == nil {
		return nil
	}
	var err error
	if !d.dead {
		err = d.checkpointLocked()
	}
	if cerr := d.wal.close(); err == nil {
		err = cerr
	}
	d.wal = nil
	return err
}

// Abort simulates a process kill: file handles drop, buffered bytes
// are lost, no checkpoint, no sync. The chaos harness's exit path;
// after Abort only OpenDurable can revive the data dir.
func (d *Durable) Abort() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead = true
	if d.wal != nil {
		d.wal.abort()
		d.wal = nil
	}
}

// ArmCrash arms a deterministic simulated crash: the appendIndex-th
// WAL append (0-based, counting from now) writes only draw%len bytes
// of its record and fails with ErrWALCrashed. Chaos-harness
// instrumentation — a real deployment never calls this.
func (d *Durable) ArmCrash(appendIndex int, draw uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.wal != nil {
		d.wal.crash = &crashPlan{appendIndex: d.wal.appends + appendIndex, draw: draw}
	}
}

// syncCounters mirrors the writer's counters into the lock-free
// stats fields. Caller holds d.mu.
func (d *Durable) syncCounters() {
	if d.wal == nil {
		return
	}
	d.walSegment.Store(int64(d.wal.index))
	d.walRecords.Store(d.wal.records)
	d.walBytes.Store(d.wal.bytes)
}

// DurabilityStats returns the durability counters, lock-free.
func (d *Durable) DurabilityStats() DurabilityStats {
	return DurabilityStats{
		SyncMode:              d.opts.Sync.String(),
		WALSegment:            int(d.walSegment.Load()),
		WALRecords:            d.walRecords.Load(),
		WALBytes:              d.walBytes.Load(),
		Checkpoints:           d.checkpoints.Load(),
		LastCheckpointVersion: d.lastCkpt.Load(),
		CheckpointEvery:       d.ckptEvery(),
		RecoveredBatches:      d.recoveredB,
		RecoveredOps:          d.recoveredOps,
		WALTailDiscarded:      d.tailDiscarded,
	}
}
