package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// UpdateRequest is the POST /v1/updates body.
type UpdateRequest struct {
	Ops []Op `json:"ops"`
}

// UpdateResponse wraps the batch report; Error carries the rejection
// message when the batch stopped early (HTTP 400, with the report of
// the prefix that did apply).
type UpdateResponse struct {
	BatchReport
	Error string `json:"error,omitempty"`
}

// colorResponse is the GET /v1/color/{node} body.
type colorResponse struct {
	Node    int    `json:"node"`
	Color   int    `json:"color"`
	Version uint64 `json:"version"`
}

// colorsResponse is the GET /v1/colors body; Colors[i] answers
// Nodes[i] from one consistent snapshot.
type colorsResponse struct {
	Nodes   []int  `json:"nodes"`
	Colors  []int  `json:"colors"`
	Version uint64 `json:"version"`
}

// HandlerOptions wires the durability and overload layers into the
// HTTP surface. The zero value reproduces the plain handler: direct
// ApplyBatch writes, default body limit, always-ready health.
type HandlerOptions struct {
	// Ingest, when set, routes POST /v1/updates through the bounded
	// admission queue; a full queue answers 503 + Retry-After.
	Ingest *Ingest
	// Health, when set, gates /readyz and rejects writes with 503
	// while recovering or draining.
	Health *Health
	// Durable, when set, contributes the durability section of
	// /v1/stats.
	Durable *Durable
	// DurableStats lazily supplies the durability section when the
	// Durable handle only exists after the handler (a server that
	// starts serving reads mid-recovery). Durable wins when both are
	// set; returning nil omits the section.
	DurableStats func() *DurabilityStats
	// MaxBody caps the POST /v1/updates body via http.MaxBytesReader;
	// oversized bodies get 413. 0 means 8 MiB.
	MaxBody int64
	// RequestTimeout bounds each write's total time in the queue +
	// apply; 0 means 30s.
	RequestTimeout time.Duration
}

func (o HandlerOptions) maxBody() int64 {
	if o.MaxBody > 0 {
		return o.MaxBody
	}
	return 8 << 20
}

func (o HandlerOptions) requestTimeout() time.Duration {
	if o.RequestTimeout > 0 {
		return o.RequestTimeout
	}
	return 30 * time.Second
}

// statsEnvelope is the /v1/stats body: the service account plus the
// durability and admission sections when those layers are wired.
type statsEnvelope struct {
	Stats
	Durability *DurabilityStats `json:"durability,omitempty"`
	Ingest     *IngestStats     `json:"ingest,omitempty"`
}

// NewHandler wires the plain service HTTP surface (no durability, no
// admission queue) — the zero-options form of NewHandlerWithOptions.
func NewHandler(s *Service) http.Handler {
	return NewHandlerWithOptions(s, HandlerOptions{})
}

// NewHandlerWithOptions wires the service's HTTP surface:
//
//	POST /v1/updates        batched ops, single-writer apply
//	GET  /v1/color/{node}   one color, lock-free snapshot read
//	GET  /v1/colors?nodes=  many colors from one snapshot
//	GET  /v1/colors         full dump, streamed in bounded chunks
//	GET  /v1/stats          running maintenance account
//	GET  /healthz           liveness (200 while the process serves)
//	GET  /readyz            readiness (503 while recovering, draining,
//	                        or shedding load)
//
// Reads never block on writes: they load the atomically-swapped
// snapshot the last batch published — including during WAL replay,
// when they serve the restored checkpoint while /readyz says 503.
func NewHandlerWithOptions(s *Service, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/updates", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, opts.maxBody())
		var req UpdateRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		if h := opts.Health; h != nil && h.State() != HealthReady {
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, fmt.Sprintf("writes unavailable: %s", h))
			return
		}
		var rep BatchReport
		var err error
		if opts.Ingest != nil {
			ctx, cancel := context.WithTimeout(r.Context(), opts.requestTimeout())
			rep, err = opts.Ingest.Submit(ctx, req.Ops)
			cancel()
			switch {
			case errors.Is(err, ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				httpError(w, http.StatusServiceUnavailable, err.Error())
				return
			case errors.Is(err, ErrDraining):
				httpError(w, http.StatusServiceUnavailable, err.Error())
				return
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				httpError(w, http.StatusServiceUnavailable, "request deadline expired in queue")
				return
			}
		} else {
			rep, err = s.ApplyBatch(req.Ops)
		}
		resp := UpdateResponse{BatchReport: rep}
		status := http.StatusOK
		if err != nil {
			resp.Error = err.Error()
			if errors.Is(err, ErrOp) {
				status = http.StatusBadRequest
			} else {
				status = http.StatusInternalServerError
			}
		}
		writeJSON(w, status, resp)
	})

	mux.HandleFunc("GET /v1/color/{node}", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.Atoi(r.PathValue("node"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "node must be an integer")
			return
		}
		color, version, ok := s.Color(v)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("node %d unknown", v))
			return
		}
		writeJSON(w, http.StatusOK, colorResponse{Node: v, Color: color, Version: version})
	})

	mux.HandleFunc("GET /v1/colors", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("nodes")
		if raw == "" {
			streamAllColors(w, s.Snapshot())
			return
		}
		parts := strings.Split(raw, ",")
		nodes := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad node %q", p))
				return
			}
			nodes = append(nodes, v)
		}
		colors, version, ok := s.ColorsOf(nodes)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown node in request")
			return
		}
		writeJSON(w, http.StatusOK, colorsResponse{Nodes: nodes, Colors: colors, Version: version})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		env := statsEnvelope{Stats: s.Stats()}
		if opts.Durable != nil {
			ds := opts.Durable.DurabilityStats()
			env.Durability = &ds
		} else if opts.DurableStats != nil {
			env.Durability = opts.DurableStats()
		}
		if opts.Ingest != nil {
			is := opts.Ingest.Stats()
			env.Ingest = &is
		}
		writeJSON(w, http.StatusOK, env)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		state := "ready"
		if opts.Health != nil {
			state = opts.Health.String()
		}
		status := http.StatusOK
		if state != "ready" {
			status = http.StatusServiceUnavailable
		} else if opts.Ingest != nil && opts.Ingest.Saturated() {
			state, status = "saturated", http.StatusServiceUnavailable
		}
		writeJSON(w, status, map[string]string{"status": state})
	})

	return mux
}

// streamAllColors writes the full color dump as one JSON document —
// {"version":V,"n":N,"colors":[...]} — in fixed-size chunks through
// the ResponseWriter's chunked encoding, so a 10⁶-node dump needs one
// scratch buffer instead of an O(n) intermediate encoding. The
// snapshot is immutable, so the stream is consistent even while
// batches keep applying.
func streamAllColors(w http.ResponseWriter, snap *Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	buf := make([]byte, 0, 16<<10)
	buf = append(buf, `{"version":`...)
	buf = strconv.AppendUint(buf, snap.Version, 10)
	buf = append(buf, `,"n":`...)
	buf = strconv.AppendInt(buf, int64(len(snap.Colors)), 10)
	buf = append(buf, `,"colors":[`...)
	flush := func() bool {
		if _, err := w.Write(buf); err != nil {
			return false
		}
		buf = buf[:0]
		return true
	}
	for i, c := range snap.Colors {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(c), 10)
		if len(buf) >= cap(buf)-24 {
			if !flush() {
				return
			}
		}
	}
	buf = append(buf, "]}\n"...)
	flush()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
