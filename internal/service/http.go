package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// UpdateRequest is the POST /v1/updates body.
type UpdateRequest struct {
	Ops []Op `json:"ops"`
}

// UpdateResponse wraps the batch report; Error carries the rejection
// message when the batch stopped early (HTTP 400, with the report of
// the prefix that did apply).
type UpdateResponse struct {
	BatchReport
	Error string `json:"error,omitempty"`
}

// colorResponse is the GET /v1/color/{node} body.
type colorResponse struct {
	Node    int    `json:"node"`
	Color   int    `json:"color"`
	Version uint64 `json:"version"`
}

// colorsResponse is the GET /v1/colors body; Colors[i] answers
// Nodes[i] from one consistent snapshot.
type colorsResponse struct {
	Nodes   []int  `json:"nodes"`
	Colors  []int  `json:"colors"`
	Version uint64 `json:"version"`
}

// NewHandler wires the service's HTTP surface:
//
//	POST /v1/updates        batched ops, single-writer apply
//	GET  /v1/color/{node}   one color, lock-free snapshot read
//	GET  /v1/colors?nodes=  many colors from one snapshot
//	GET  /v1/colors         full dump, streamed in bounded chunks
//	GET  /v1/stats          running maintenance account
//
// Reads never block on writes: they load the atomically-swapped
// snapshot the last batch published.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /v1/updates", func(w http.ResponseWriter, r *http.Request) {
		var req UpdateRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
			return
		}
		rep, err := s.ApplyBatch(req.Ops)
		resp := UpdateResponse{BatchReport: rep}
		status := http.StatusOK
		if err != nil {
			resp.Error = err.Error()
			if errors.Is(err, ErrOp) {
				status = http.StatusBadRequest
			} else {
				status = http.StatusInternalServerError
			}
		}
		writeJSON(w, status, resp)
	})

	mux.HandleFunc("GET /v1/color/{node}", func(w http.ResponseWriter, r *http.Request) {
		v, err := strconv.Atoi(r.PathValue("node"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "node must be an integer")
			return
		}
		color, version, ok := s.Color(v)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Sprintf("node %d unknown", v))
			return
		}
		writeJSON(w, http.StatusOK, colorResponse{Node: v, Color: color, Version: version})
	})

	mux.HandleFunc("GET /v1/colors", func(w http.ResponseWriter, r *http.Request) {
		raw := r.URL.Query().Get("nodes")
		if raw == "" {
			streamAllColors(w, s.Snapshot())
			return
		}
		parts := strings.Split(raw, ",")
		nodes := make([]int, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad node %q", p))
				return
			}
			nodes = append(nodes, v)
		}
		colors, version, ok := s.ColorsOf(nodes)
		if !ok {
			httpError(w, http.StatusNotFound, "unknown node in request")
			return
		}
		writeJSON(w, http.StatusOK, colorsResponse{Nodes: nodes, Colors: colors, Version: version})
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}

// streamAllColors writes the full color dump as one JSON document —
// {"version":V,"n":N,"colors":[...]} — in fixed-size chunks through
// the ResponseWriter's chunked encoding, so a 10⁶-node dump needs one
// scratch buffer instead of an O(n) intermediate encoding. The
// snapshot is immutable, so the stream is consistent even while
// batches keep applying.
func streamAllColors(w http.ResponseWriter, snap *Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	buf := make([]byte, 0, 16<<10)
	buf = append(buf, `{"version":`...)
	buf = strconv.AppendUint(buf, snap.Version, 10)
	buf = append(buf, `,"n":`...)
	buf = strconv.AppendInt(buf, int64(len(snap.Colors)), 10)
	buf = append(buf, `,"colors":[`...)
	flush := func() bool {
		if _, err := w.Write(buf); err != nil {
			return false
		}
		buf = buf[:0]
		return true
	}
	for i, c := range snap.Colors {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(c), 10)
		if len(buf) >= cap(buf)-24 {
			if !flush() {
				return
			}
		}
	}
	buf = append(buf, "]}\n"...)
	flush()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
