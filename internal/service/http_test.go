package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"listcolor/internal/graph"
)

func postUpdates(t *testing.T, url string, ops []Op) (UpdateResponse, int) {
	t.Helper()
	body, err := json.Marshal(UpdateRequest{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/updates", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

func TestHTTPEndpoints(t *testing.T) {
	s := mustService(t, graph.StreamedRing(16), palInstance(16, 4), Options{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	rep, code := postUpdates(t, srv.URL, []Op{
		{Action: OpAddEdge, U: 0, V: 8},
		{Action: OpAddNode},
	})
	if code != http.StatusOK || rep.Applied != 2 || rep.Version != 1 || rep.Error != "" {
		t.Fatalf("updates: code %d, resp %+v", code, rep)
	}
	if len(rep.NewNodes) != 1 || rep.NewNodes[0] != 16 {
		t.Fatalf("NewNodes = %v", rep.NewNodes)
	}

	var cr colorResponse
	if code := getJSON(t, srv.URL+"/v1/color/8", &cr); code != http.StatusOK {
		t.Fatalf("color: %d", code)
	}
	if cr.Node != 8 || cr.Version != 1 || cr.Color < 0 || cr.Color >= 4 {
		t.Fatalf("color resp %+v", cr)
	}

	var csr colorsResponse
	if code := getJSON(t, srv.URL+"/v1/colors?nodes=0,8,16", &csr); code != http.StatusOK {
		t.Fatalf("colors: %d", code)
	}
	if len(csr.Colors) != 3 || csr.Colors[0] == csr.Colors[1] {
		t.Fatalf("colors resp %+v (edge {0,8} monochromatic?)", csr)
	}

	var st Stats
	if code := getJSON(t, srv.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if st.Version != 1 || st.Nodes != 17 || st.Updates != 2 {
		t.Fatalf("stats resp %+v", st)
	}

	// Error surface.
	var e map[string]string
	if code := getJSON(t, srv.URL+"/v1/color/99", &e); code != http.StatusNotFound {
		t.Fatalf("unknown node: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/color/zap", &e); code != http.StatusBadRequest {
		t.Fatalf("junk node: %d", code)
	}
	// No nodes param: the full streamed dump.
	var dump struct {
		Version uint64 `json:"version"`
		N       int    `json:"n"`
		Colors  []int  `json:"colors"`
	}
	if code := getJSON(t, srv.URL+"/v1/colors", &dump); code != http.StatusOK {
		t.Fatalf("full dump: %d", code)
	}
	if dump.Version != 1 || dump.N != 17 || len(dump.Colors) != 17 {
		t.Fatalf("full dump resp version=%d n=%d len=%d", dump.Version, dump.N, len(dump.Colors))
	}
	snapColors := s.Snapshot().Colors
	for i, c := range dump.Colors {
		if c != snapColors[i] {
			t.Fatalf("dump color[%d] = %d, snapshot has %d", i, c, snapColors[i])
		}
	}
	if code := getJSON(t, srv.URL+"/v1/colors?nodes=1,zap", &e); code != http.StatusBadRequest {
		t.Fatalf("junk nodes param: %d", code)
	}
	if code := getJSON(t, srv.URL+"/v1/colors?nodes=1,99", &e); code != http.StatusNotFound {
		t.Fatalf("unknown in nodes param: %d", code)
	}

	resp, err := http.Post(srv.URL+"/v1/updates", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d", resp.StatusCode)
	}

	rep, code = postUpdates(t, srv.URL, []Op{
		{Action: OpAddEdge, U: 1, V: 9},
		{Action: OpAddEdge, U: 2, V: 2},
	})
	if code != http.StatusBadRequest || rep.Applied != 1 || rep.Error == "" {
		t.Fatalf("rejected batch: code %d, resp %+v", code, rep)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatal(err)
	}
}

// discardWriter is an http.ResponseWriter that counts bytes.
type discardWriter struct {
	header http.Header
	n      int64
}

func (d *discardWriter) Header() http.Header         { return d.header }
func (d *discardWriter) Write(p []byte) (int, error) { d.n += int64(len(p)); return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}

// TestStreamAllColorsAllocationBounded pins the full-dump satellite:
// streaming a million-color snapshot allocates O(1) — one scratch
// chunk plus header bookkeeping — not an O(n) intermediate document.
func TestStreamAllColorsAllocationBounded(t *testing.T) {
	colors := make([]int, 1<<20)
	for i := range colors {
		colors[i] = i % 7
	}
	snap := &Snapshot{Version: 42, Colors: colors}
	w := &discardWriter{}
	allocs := testing.AllocsPerRun(5, func() {
		w.header = http.Header{}
		w.n = 0
		streamAllColors(w, snap)
	})
	if allocs > 32 {
		t.Fatalf("streaming dump allocates %.0f/op — O(n) buffering crept back in", allocs)
	}
	if w.n < 1<<20 { // at least one byte per color
		t.Fatalf("dump wrote %d bytes for %d colors", w.n, len(colors))
	}

	// And the stream is valid JSON that round-trips the snapshot.
	var buf bytes.Buffer
	rec := httptest.NewRecorder()
	rec.Body = &buf
	streamAllColors(rec, &Snapshot{Version: 3, Colors: []int{4, 0, 2}})
	var dump struct {
		Version uint64 `json:"version"`
		N       int    `json:"n"`
		Colors  []int  `json:"colors"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if dump.Version != 3 || dump.N != 3 || !reflect.DeepEqual(dump.Colors, []int{4, 0, 2}) {
		t.Fatalf("dump round-trip %+v", dump)
	}
}

// TestHTTPConcurrentReads drives lock-free snapshot reads through the
// real HTTP stack while a writer applies batches — the transport-level
// twin of TestServiceConcurrentReadWrite, and the shape the p99
// read-latency benchmark measures.
func TestHTTPConcurrentReads(t *testing.T) {
	const n = 500
	s := mustService(t, graph.StreamedRing(n), palInstance(n, 5), Options{})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := srv.Client()
			for i := 0; !stop.Load(); i++ {
				resp, err := client.Get(fmt.Sprintf("%s/v1/color/%d", srv.URL, (r*131+i)%n))
				if err != nil {
					errs <- err
					return
				}
				var cr colorResponse
				err = json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if cr.Color < 0 || cr.Color >= 5 {
					errs <- fmt.Errorf("reader %d: color %d out of palette", r, cr.Color)
					return
				}
			}
		}(r)
	}

	for b := 0; b < 30; b++ {
		u := (b * 37) % n
		v := (u + n/2) % n
		var ops []Op
		if s.ov.HasEdge(u, v) {
			ops = append(ops, Op{Action: OpRemoveEdge, U: u, V: v})
		} else {
			ops = append(ops, Op{Action: OpAddEdge, U: u, V: v})
		}
		if rep, code := postUpdates(t, srv.URL, ops); code != http.StatusOK || !rep.Converged {
			t.Fatalf("batch %d: code %d rep %+v", b, code, rep)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := s.ValidateState(); err != nil {
		t.Fatal(err)
	}
}
