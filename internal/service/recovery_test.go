// recovery_test.go is the crash-recovery differential: at every kill
// point — each batch boundary and seed-drawn mid-record tears — the
// state OpenDurable recovers must be byte-identical (colors, canonical
// Stats, topology fingerprint) to an uninterrupted reference run at
// the recovered version, audit clean, and then replay the rest of the
// script to the same final state. This is the process-level analogue
// of the paper's locality claim: damage is bounded, detected, and
// repaired exactly.
package service

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"listcolor/internal/graph"
)

// refState is one version's observable state in the reference run.
type refState struct {
	colors []int
	stats  Stats
	fp     uint64
}

func captureRef(s *Service) refState {
	snap := s.Snapshot()
	return refState{
		colors: append([]int(nil), snap.Colors...),
		stats:  CanonicalStats(s.Stats()),
		fp:     s.TopologyFingerprint(),
	}
}

// referenceRun plays the whole script on a plain (non-durable)
// service and records the observable state at every version.
func referenceRun(t *testing.T, base *graph.CSR, script [][]Op, opts Options) []refState {
	t.Helper()
	s := mustService(t, base, slackInstance(base), opts)
	refs := []refState{captureRef(s)} // version 0
	for bi, ops := range script {
		if _, err := s.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("reference batch %d: %v", bi, err)
		}
		refs = append(refs, captureRef(s))
	}
	return refs
}

// diffAgainstRef asserts the recovered service matches the reference
// run at its recovered version.
func diffAgainstRef(t *testing.T, tag string, d *Durable, refs []refState) uint64 {
	t.Helper()
	s := d.Service()
	v := s.Snapshot().Version
	if v >= uint64(len(refs)) {
		t.Fatalf("%s: recovered version %d beyond reference run", tag, v)
	}
	ref := refs[v]
	if !reflect.DeepEqual(s.Snapshot().Colors, ref.colors) {
		t.Fatalf("%s: colors diverge from reference at version %d", tag, v)
	}
	if got := CanonicalStats(s.Stats()); !reflect.DeepEqual(got, ref.stats) {
		t.Fatalf("%s: stats diverge at version %d:\n got %+v\nwant %+v", tag, v, got, ref.stats)
	}
	if fp := s.TopologyFingerprint(); fp != ref.fp {
		t.Fatalf("%s: topology fingerprint diverges at version %d: %x vs %x", tag, v, fp, ref.fp)
	}
	if rep := s.AuditState(0); !rep.Valid() {
		t.Fatalf("%s: post-recovery audit: %v", tag, rep.Err())
	}
	return v
}

// mustNewDurable wraps a fresh service in a fresh data dir.
func mustNewDurable(t *testing.T, base *graph.CSR, dir string, opts Options, dopts DurableOptions) *Durable {
	t.Helper()
	dopts.Dir = dir
	d, err := NewDurable(mustService(t, base, slackInstance(base), opts), dopts)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	return d
}

// TestDurableLifecycle: the plain path — apply, close cleanly, reopen,
// nothing to replay, state intact, and writes resume.
func TestDurableLifecycle(t *testing.T) {
	base := graph.StreamedRing(48)
	script := churnScript(base, 10, 8, 11)
	fillSetLists(script, slackInstance(base).Space)
	refs := referenceRun(t, base, script, Options{})
	dir := t.TempDir()
	d := mustNewDurable(t, base, dir, Options{}, DurableOptions{Sync: SyncBatch, CheckpointEvery: 4})
	for _, ops := range script[:6] {
		if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("apply: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	d2, info, err := OpenDurable(Options{}, DurableOptions{Dir: dir, Sync: SyncBatch, CheckpointEvery: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// A clean close checkpoints, so nothing replays.
	if info.ReplayedBatches != 0 || info.Tail != nil {
		t.Fatalf("clean reopen replayed %d batches, tail %v", info.ReplayedBatches, info.Tail)
	}
	if v := diffAgainstRef(t, "clean reopen", d2, refs); v != 6 {
		t.Fatalf("recovered version %d, want 6", v)
	}
	for _, ops := range script[6:] {
		if _, err := d2.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("resume apply: %v", err)
		}
	}
	if v := diffAgainstRef(t, "resumed run", d2, refs); v != uint64(len(script)) {
		t.Fatalf("final version %d, want %d", v, len(script))
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	// Stats surface sanity.
	ds := d2.DurabilityStats()
	if ds.SyncMode != "batch" || ds.Checkpoints == 0 {
		t.Fatalf("durability stats: %+v", ds)
	}
}

// TestDurableRefusesReinit: NewDurable on a dir that already holds a
// checkpoint must refuse rather than clobber durable state.
func TestDurableRefusesReinit(t *testing.T) {
	base := graph.StreamedRing(16)
	dir := t.TempDir()
	d := mustNewDurable(t, base, dir, Options{}, DurableOptions{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := NewDurable(mustService(t, base, slackInstance(base), Options{}), DurableOptions{Dir: dir})
	if err == nil {
		t.Fatal("NewDurable clobbered an existing data dir")
	}
}

// TestRecoveryKillPointDifferential is the acceptance matrix: for
// every batch boundary the writer is killed at (Abort — the process
// is simply gone), recovery must land exactly on that boundary's
// reference state; the run then continues to the same final state the
// uninterrupted reference reaches.
func TestRecoveryKillPointDifferential(t *testing.T) {
	base := graph.StreamedRing(64)
	const batches = 18
	script := churnScript(base, batches, 10, 7)
	fillSetLists(script, slackInstance(base).Space)
	refs := referenceRun(t, base, script, Options{})
	for kill := 0; kill <= batches; kill++ {
		dir := t.TempDir()
		d := mustNewDurable(t, base, dir, Options{}, DurableOptions{Sync: SyncBatch, CheckpointEvery: 5})
		for _, ops := range script[:kill] {
			if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
				t.Fatalf("kill=%d: apply: %v", kill, err)
			}
		}
		d.Abort()
		d2, info, err := OpenDurable(Options{}, DurableOptions{Dir: dir, Sync: SyncBatch, CheckpointEvery: 5})
		if err != nil {
			t.Fatalf("kill=%d: open: %v", kill, err)
		}
		tag := fmt.Sprintf("kill=%d", kill)
		if v := diffAgainstRef(t, tag, d2, refs); v != uint64(kill) {
			// SyncBatch writes through per batch: a boundary kill loses
			// nothing.
			t.Fatalf("%s: recovered version %d, want %d (tail=%v ckpt=%d)",
				tag, v, kill, info.Tail, info.CheckpointVersion)
		}
		for _, ops := range script[kill:] {
			if _, err := d2.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
				t.Fatalf("%s: continue: %v", tag, err)
			}
		}
		diffAgainstRef(t, tag+" final", d2, refs)
		if v := d2.Service().Snapshot().Version; v != uint64(batches) {
			t.Fatalf("%s: final version %d", tag, v)
		}
		d2.Close()
	}
}

// TestRecoveryMidRecordTearDifferential kills the writer MID-RECORD:
// the armed crash puts a seed-drawn prefix of batch k's record on
// disk. Recovery must discard the torn tail and land on version k —
// the differential then continues the script from there.
func TestRecoveryMidRecordTearDifferential(t *testing.T) {
	base := graph.StreamedRing(64)
	const batches = 12
	script := churnScript(base, batches, 10, 9)
	fillSetLists(script, slackInstance(base).Space)
	refs := referenceRun(t, base, script, Options{})
	for kill := 0; kill < batches; kill++ {
		for _, draw := range []uint64{1, 0x9e3779b97f4a7c15, 1 << 40} {
			dir := t.TempDir()
			d := mustNewDurable(t, base, dir, Options{}, DurableOptions{Sync: SyncBatch, CheckpointEvery: 4})
			d.ArmCrash(kill, draw)
			var crashErr error
			for _, ops := range script {
				if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
					crashErr = err
					break
				}
			}
			if !errors.Is(crashErr, ErrWALCrashed) {
				t.Fatalf("kill=%d draw=%x: crash not reported: %v", kill, draw, crashErr)
			}
			// A dead Durable refuses further writes.
			if _, err := d.ApplyBatch(script[0]); !errors.Is(err, ErrWALCrashed) {
				t.Fatalf("kill=%d: dead durable accepted a write: %v", kill, err)
			}
			d.Abort()
			d2, info, err := OpenDurable(Options{}, DurableOptions{Dir: dir, Sync: SyncBatch, CheckpointEvery: 4})
			if err != nil {
				t.Fatalf("kill=%d draw=%x: open: %v", kill, draw, err)
			}
			tag := fmt.Sprintf("kill=%d draw=%x", kill, draw)
			v := diffAgainstRef(t, tag, d2, refs)
			if v != uint64(kill) {
				t.Fatalf("%s: recovered version %d, want %d (tail=%v)", tag, v, kill, info.Tail)
			}
			// A detected tear must carry its typed reason — never an
			// untyped discard.
			if info.Tail != nil && info.Tail.Reason == "" {
				t.Fatalf("%s: untyped tail", tag)
			}
			for _, ops := range script[kill:] {
				if _, err := d2.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
					t.Fatalf("%s: continue: %v", tag, err)
				}
			}
			diffAgainstRef(t, tag+" final", d2, refs)
			d2.Close()
		}
	}
}

// TestRecoverySyncOffLosesTailOnly: under SyncOff an abort loses the
// buffered records past the last checkpoint — but what recovers is
// still exactly a reference prefix, never a corrupted hybrid.
func TestRecoverySyncOffLosesTailOnly(t *testing.T) {
	base := graph.StreamedRing(48)
	const batches = 14
	script := churnScript(base, batches, 8, 5)
	fillSetLists(script, slackInstance(base).Space)
	refs := referenceRun(t, base, script, Options{})
	dir := t.TempDir()
	d := mustNewDurable(t, base, dir, Options{}, DurableOptions{Sync: SyncOff, CheckpointEvery: 6})
	for _, ops := range script {
		if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("apply: %v", err)
		}
	}
	d.Abort()
	d2, _, err := OpenDurable(Options{}, DurableOptions{Dir: dir, Sync: SyncOff, CheckpointEvery: 6})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	v := diffAgainstRef(t, "sync=off", d2, refs)
	// Checkpoints flush the log, so at most CheckpointEvery batches are
	// lost — and the last checkpoint is a floor.
	if v < uint64(batches-6) {
		t.Fatalf("sync=off lost too much: recovered version %d of %d", v, batches)
	}
	for _, ops := range script[v:] {
		if _, err := d2.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("continue: %v", err)
		}
	}
	diffAgainstRef(t, "sync=off final", d2, refs)
	d2.Close()
}

// TestRecoveryReadsDuringReplay: the BeforeReplay hook hands out the
// service while replay is still running — reads must serve the
// checkpoint snapshot immediately, versions only moving forward.
func TestRecoveryReadsDuringReplay(t *testing.T) {
	base := graph.StreamedRing(48)
	script := churnScript(base, 12, 8, 13)
	fillSetLists(script, slackInstance(base).Space)
	dir := t.TempDir()
	d := mustNewDurable(t, base, dir, Options{}, DurableOptions{Sync: SyncBatch, CheckpointEvery: 100})
	for _, ops := range script {
		if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("apply: %v", err)
		}
	}
	d.Abort() // no final checkpoint: everything past v0 replays
	sawPending := -1
	var versions []uint64
	d2, info, err := OpenDurable(Options{}, DurableOptions{
		Dir: dir, Sync: SyncBatch,
		BeforeReplay: func(s *Service, pending int) {
			sawPending = pending
			// Reads are live right now, mid-recovery.
			versions = append(versions, s.Snapshot().Version)
			if _, _, ok := s.Color(3); !ok {
				t.Error("Color read failed during recovery")
			}
		},
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if sawPending != len(script) {
		t.Fatalf("BeforeReplay saw %d pending, want %d", sawPending, len(script))
	}
	if info.ReplayedBatches != len(script) || info.CheckpointVersion != 0 {
		t.Fatalf("replay accounting: %+v", info)
	}
	if len(versions) != 1 || versions[0] != 0 {
		t.Fatalf("hook versions: %v", versions)
	}
	if ds := d2.DurabilityStats(); ds.RecoveredBatches != len(script) {
		t.Fatalf("durability stats after recovery: %+v", ds)
	}
	d2.Close()
}

// TestRecoveryFlippedWALByte: post-crash byte damage in an already-
// synced record is caught by the CRC; recovery truncates to the
// record before the flip and still matches the reference there.
func TestRecoveryFlippedWALByte(t *testing.T) {
	base := graph.StreamedRing(48)
	const batches = 8
	script := churnScript(base, batches, 8, 17)
	fillSetLists(script, slackInstance(base).Space)
	refs := referenceRun(t, base, script, Options{})
	dir := t.TempDir()
	d := mustNewDurable(t, base, dir, Options{}, DurableOptions{Sync: SyncBatch, CheckpointEvery: 100})
	for _, ops := range script {
		if _, err := d.ApplyBatch(ops); err != nil && !errors.Is(err, ErrOp) {
			t.Fatalf("apply: %v", err)
		}
	}
	d.Abort()
	// Flip one byte deep inside the live segment.
	names, err := listWALSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("segments: %v %v", names, err)
	}
	seg := filepath.Join(dir, names[len(names)-1])
	img, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, flipByte(img, len(img)*2/3), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, info, err := OpenDurable(Options{}, DurableOptions{Dir: dir, Sync: SyncBatch})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if info.Tail == nil {
		t.Fatal("flip not detected")
	}
	v := diffAgainstRef(t, "flipped byte", d2, refs)
	if v >= uint64(batches) {
		t.Fatalf("flip discarded nothing: version %d", v)
	}
	d2.Close()
}
